// Package models implements the workload models the paper evaluates or
// motivates (Table 1): a GPT-style autoregressive LLM (GPT-J-configurable),
// a convolutional vision network, a DLRM-style recommender, and a
// multi-modal fusion model. Each model captures its forward pass into SRGs
// with the semantics the frontend recognizers key on.
//
// Models run for real at small configurations (the correctness plane) and
// provide exact analytic accounting (weights, FLOPs, KV sizes) at paper
// scale (the simulation plane).
package models

import (
	"fmt"
	"math/rand"

	"genie/internal/lazy"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/tensor"
)

// GPTConfig describes a decoder-only transformer.
type GPTConfig struct {
	Layers int
	Dim    int
	Heads  int
	Hidden int
	Vocab  int
	MaxSeq int
	// WeightBytesPerParam is 2 for fp16 deployment (the paper's GPT-J),
	// 4 for fp32.
	WeightBytesPerParam int
}

// GPTJ6B is the paper's evaluation model (§4): 28 layers, d=4096,
// 16 heads, 50400 vocab, fp16 weights ≈ 12.1 GB.
var GPTJ6B = GPTConfig{
	Layers: 28, Dim: 4096, Heads: 16, Hidden: 16384,
	Vocab: 50400, MaxSeq: 2048, WeightBytesPerParam: 2,
}

// TinyGPT is the laptop-scale configuration used for real end-to-end
// execution in tests and examples.
var TinyGPT = GPTConfig{
	Layers: 2, Dim: 32, Heads: 4, Hidden: 64,
	Vocab: 96, MaxSeq: 64, WeightBytesPerParam: 4,
}

// ParamCount returns the exact parameter count.
func (c GPTConfig) ParamCount() int64 {
	perLayer := int64(4*c.Dim*c.Dim) + // attention projections
		int64(2*c.Dim*c.Hidden+c.Hidden+c.Dim) + // mlp (+biases)
		int64(4*c.Dim) // two layernorms
	return int64(c.Vocab)*int64(c.Dim) + // token embedding
		int64(c.MaxSeq)*int64(c.Dim) + // position embedding
		int64(c.Layers)*perLayer +
		int64(2*c.Dim) + // final layernorm
		int64(c.Dim)*int64(c.Vocab) // lm head
}

// WeightBytes returns the deployed weight footprint.
func (c GPTConfig) WeightBytes() int64 {
	return c.ParamCount() * int64(c.WeightBytesPerParam)
}

// KVBytesPerToken returns the per-token KV-cache growth across all layers
// (K and V rows, fp32 runtime cache — the paper's ~1.0 MB delta for
// GPT-J).
func (c GPTConfig) KVBytesPerToken() int64 {
	return int64(2 * c.Layers * c.Dim * 4)
}

// KVBytes returns the cache footprint after t tokens.
func (c GPTConfig) KVBytes(t int) int64 { return int64(t) * c.KVBytesPerToken() }

// LogitsBytes returns one position's logits row size.
func (c GPTConfig) LogitsBytes() int64 { return int64(c.Vocab) * 4 }

// PrefillFLOPs estimates the prompt-processing work for t tokens:
// 2·params per token plus the quadratic attention term.
func (c GPTConfig) PrefillFLOPs(t int) float64 {
	dense := 2 * float64(c.ParamCount()) * float64(t)
	attn := 4 * float64(c.Layers) * float64(t) * float64(t) * float64(c.Dim)
	return dense + attn
}

// DecodeFLOPs estimates one decode step's work at history length hist.
func (c GPTConfig) DecodeFLOPs(hist int) float64 {
	dense := 2 * float64(c.ParamCount())
	attn := 4 * float64(c.Layers) * float64(hist) * float64(c.Dim)
	return dense + attn
}

// DecodeBytesTouched returns the memory traffic of one decode step
// (weights + KV history), which makes decode memory-bound — the property
// the paper's phase-aware scheduling exploits.
func (c GPTConfig) DecodeBytesTouched(hist int) int64 {
	return c.WeightBytes() + c.KVBytes(hist)
}

// GPT is a runnable decoder-only transformer.
type GPT struct {
	Cfg    GPTConfig
	Embed  *nn.Embedding
	Pos    *nn.Embedding
	Blocks []*nn.Block
	LNF    *nn.LayerNorm
	Head   *nn.Linear
}

// NewGPT initializes real weights for the configuration (only call for
// small configs; GPT-J-scale accounting uses GPTConfig directly).
func NewGPT(rng *rand.Rand, cfg GPTConfig) *GPT {
	m := &GPT{
		Cfg:   cfg,
		Embed: nn.NewEmbedding(rng, cfg.Vocab, cfg.Dim),
		Pos:   nn.NewEmbedding(rng, cfg.MaxSeq, cfg.Dim),
		LNF:   nn.NewLayerNorm(cfg.Dim),
		Head:  nn.NewLinear(rng, cfg.Dim, cfg.Vocab, false),
	}
	for i := 0; i < cfg.Layers; i++ {
		m.Blocks = append(m.Blocks, nn.NewBlock(rng, cfg.Dim, cfg.Heads, cfg.Hidden))
	}
	return m
}

// cacheName is the in-module input name for a layer's cache half; the
// capture happens inside the "gpt" module scope, so the resulting leaf
// ref (and canonical remote-object key) is CacheRef.
func cacheName(layer int, half string) string {
	return fmt.Sprintf("kv.%d.%s", layer, half)
}

// CacheRef returns the canonical leaf ref / remote-object key for a
// layer's cache half ("k" or "v").
func CacheRef(layer int, half string) string {
	return "gpt." + cacheName(layer, half)
}

// LLMOutputs indexes the interesting nodes of a captured LLM graph.
type LLMOutputs struct {
	// Logits is the [t, vocab] head output node.
	Logits srg.NodeID
	// LastLogits is the final position's [1, vocab] logits row — the only
	// logits a generation loop actually needs, which a semantics-aware
	// runtime ships instead of the full matrix.
	LastLogits srg.NodeID
	// NextToken is the argmax over the final position.
	NextToken srg.NodeID
	// CacheK and CacheV hold, per layer, the node producing the full
	// cache contents after this call (new rows only for prefill; the
	// appended concat for decode).
	CacheK, CacheV []srg.NodeID
	// NewK and NewV hold, per layer, the node producing only the freshly
	// computed cache rows of this call — the ΔKV slice a prefix cache
	// inserts without shipping the (already resident) history back. At
	// prefill they coincide with CacheK/CacheV.
	NewK, NewV []srg.NodeID
}

// BuildPrefill captures the prompt pass over the given token ids. The
// returned builder owns the weights; outputs identify logits, next token,
// and the per-layer KV products (which a semantics-aware scheduler pins
// remotely).
func (m *GPT) BuildPrefill(tokens []int64) (*lazy.Builder, LLMOutputs) {
	if len(tokens) == 0 || len(tokens) > m.Cfg.MaxSeq {
		panic(fmt.Sprintf("models: prompt length %d out of range", len(tokens)))
	}
	b := lazy.NewBuilder("gpt.prefill")
	b.SetModality(srg.ModalityText)
	var out LLMOutputs
	b.InModule("gpt", func() {
		ids := b.Input("tokens", tensor.FromI64(tensor.Shape{len(tokens)}, tokens))
		x := m.Embed.Lookup(b, "wte", ids)
		pos := m.Pos.Lookup(b, "wpe",
			b.Input("positions", positions(0, len(tokens))))
		x = b.Add(x, pos)
		for i, blk := range m.Blocks {
			var k, v lazy.Value
			x, k, v = blk.ForwardKV(b, fmt.Sprintf("blocks.%d", i), x, lazy.Value{}, lazy.Value{})
			b.AnnotateStateful(k, CacheRef(i, "k"))
			b.AnnotateStateful(v, CacheRef(i, "v"))
			out.CacheK = append(out.CacheK, k.ID())
			out.CacheV = append(out.CacheV, v.ID())
			out.NewK = append(out.NewK, k.ID())
			out.NewV = append(out.NewV, v.ID())
		}
		x = m.LNF.Forward(b, "ln_f", x)
		logits := m.Head.Forward(b, "lm_head", x)
		b.MarkOutput(logits)
		last := b.SliceRows(logits, len(tokens)-1, len(tokens))
		b.MarkOutput(last)
		next := b.ArgmaxLast(logits)
		b.MarkOutput(next)
		out.Logits = logits.ID()
		out.LastLogits = last.ID()
		out.NextToken = next.ID()
	})
	return b, out
}

// BuildDecodeStep captures one autoregressive step: the new token at
// absolute position pos attends over per-layer caches of length pos.
// Caches enter the graph as stateful inputs bound to concrete data (Local
// and client-owned modes) or rebound to remote keys by the runtime
// (semantics-aware mode); histLen is their current length.
func (m *GPT) BuildDecodeStep(token int64, pos, histLen int, caches []*nn.KVCache) (*lazy.Builder, LLMOutputs) {
	if len(caches) != m.Cfg.Layers {
		panic(fmt.Sprintf("models: %d caches for %d layers", len(caches), m.Cfg.Layers))
	}
	b := lazy.NewBuilder("gpt.decode")
	b.SetModality(srg.ModalityText)
	var out LLMOutputs
	b.InModule("gpt", func() {
		ids := b.Input("token", tensor.FromI64(tensor.Shape{1}, []int64{token}))
		x := m.Embed.Lookup(b, "wte", ids)
		posv := m.Pos.Lookup(b, "wpe", b.Input("position", positions(pos, 1)))
		x = b.Add(x, posv)
		for i, blk := range m.Blocks {
			ck := cacheTensor(caches[i].K, histLen, m.Cfg.Dim)
			cv := cacheTensor(caches[i].V, histLen, m.Cfg.Dim)
			cacheK := b.StatefulInput(cacheName(i, "k"), ck)
			cacheV := b.StatefulInput(cacheName(i, "v"), cv)
			var k, v lazy.Value
			x, k, v = blk.ForwardKV(b, fmt.Sprintf("blocks.%d", i), x, cacheK, cacheV)
			// The appended caches are the concat nodes (cache ++ new).
			// Find them: they are the inputs of the attention's score
			// matmul; simpler, capture appended = concat captured inside
			// ForwardKV. We re-derive them as the concat consumers of the
			// stateful inputs.
			ak := appendedCache(b, cacheK.ID())
			av := appendedCache(b, cacheV.ID())
			b.AnnotateStatefulNode(ak, CacheRef(i, "k"))
			b.AnnotateStatefulNode(av, CacheRef(i, "v"))
			out.CacheK = append(out.CacheK, ak)
			out.CacheV = append(out.CacheV, av)
			out.NewK = append(out.NewK, k.ID())
			out.NewV = append(out.NewV, v.ID())
		}
		x = m.LNF.Forward(b, "ln_f", x)
		logits := m.Head.Forward(b, "lm_head", x)
		b.MarkOutput(logits)
		next := b.ArgmaxLast(logits)
		b.MarkOutput(next)
		out.Logits = logits.ID()
		out.LastLogits = logits.ID() // decode logits are already [1, vocab]
		out.NextToken = next.ID()
	})
	return b, out
}

// appendedCache finds the concat node consuming a stateful cache input —
// the node whose output is the updated cache.
func appendedCache(b *lazy.Builder, cacheLeaf srg.NodeID) srg.NodeID {
	g := b.Graph()
	for _, n := range g.Nodes() {
		if n.Op == "concat" && len(n.Inputs) >= 1 && n.Inputs[0] == cacheLeaf {
			return n.ID
		}
	}
	panic("models: cache leaf has no concat consumer")
}

// cacheTensor returns the concrete cache tensor, or a zero placeholder of
// the right shape when data is client-absent (remote-resident mode). The
// placeholder is never executed against — the runtime rebinds the leaf to
// a remote key — but the graph needs shapes for capture.
func cacheTensor(t *tensor.Tensor, histLen, dim int) *tensor.Tensor {
	if t != nil {
		return t
	}
	if histLen <= 0 {
		histLen = 1
	}
	return tensor.New(tensor.F32, histLen, dim)
}

// LayerStepOutputs indexes a per-layer subgraph (the unit a
// semantics-blind per-module dispatcher ships one RPC at a time).
type LayerStepOutputs struct {
	// Out is the layer's activation output.
	Out srg.NodeID
	// NewK and NewV are the freshly produced cache rows (the "delta
	// slice").
	NewK, NewV srg.NodeID
	// AppendedK and AppendedV are the full updated caches (concat nodes);
	// Invalid when the layer ran without a cache (prefill).
	AppendedK, AppendedV srg.NodeID
}

// BuildLayerStep captures a single transformer layer over activation x.
// When histLen > 0 the layer attends over a stateful cache of that
// length (cache data may be nil for remote-resident caches — the graph
// only needs shapes); when histLen == 0 it runs cache-less (prefill).
func (m *GPT) BuildLayerStep(layer int, x *tensor.Tensor, cache *nn.KVCache, histLen int) (*lazy.Builder, LayerStepOutputs) {
	b := lazy.NewBuilder(fmt.Sprintf("gpt.layer%d.step", layer))
	b.SetModality(srg.ModalityText)
	out := LayerStepOutputs{AppendedK: srg.Invalid, AppendedV: srg.Invalid}
	b.InModule("gpt", func() {
		xin := b.Input("x", x)
		var cacheK, cacheV lazy.Value
		if histLen > 0 {
			var ckData, cvData *tensor.Tensor
			if cache != nil {
				ckData, cvData = cache.K, cache.V
			}
			ck := cacheTensor(ckData, histLen, m.Cfg.Dim)
			cv := cacheTensor(cvData, histLen, m.Cfg.Dim)
			cacheK = b.StatefulInput(cacheName(layer, "k"), ck)
			cacheV = b.StatefulInput(cacheName(layer, "v"), cv)
		}
		o, k, v := m.Blocks[layer].ForwardKV(b, fmt.Sprintf("blocks.%d", layer), xin, cacheK, cacheV)
		b.MarkOutput(o)
		b.MarkOutput(k)
		b.MarkOutput(v)
		out.Out, out.NewK, out.NewV = o.ID(), k.ID(), v.ID()
		if histLen > 0 {
			out.AppendedK = appendedCache(b, cacheK.ID())
			out.AppendedV = appendedCache(b, cacheV.ID())
		}
	})
	return b, out
}

// BuildEmbedStep captures token+position embedding for a token span
// starting at absolute position startPos.
func (m *GPT) BuildEmbedStep(tokens []int64, startPos int) (*lazy.Builder, srg.NodeID) {
	b := lazy.NewBuilder("gpt.embed.step")
	b.SetModality(srg.ModalityText)
	var id srg.NodeID
	b.InModule("gpt", func() {
		ids := b.Input("tokens", tensor.FromI64(tensor.Shape{len(tokens)}, tokens))
		x := m.Embed.Lookup(b, "wte", ids)
		posv := m.Pos.Lookup(b, "wpe", b.Input("positions", positions(startPos, len(tokens))))
		x = b.Add(x, posv)
		b.MarkOutput(x)
		id = x.ID()
	})
	return b, id
}

// BuildHeadStep captures the final layernorm + lm head for one position.
func (m *GPT) BuildHeadStep(x *tensor.Tensor) (*lazy.Builder, srg.NodeID, srg.NodeID) {
	b := lazy.NewBuilder("gpt.head.step")
	b.SetModality(srg.ModalityText)
	var logitsID, nextID srg.NodeID
	b.InModule("gpt", func() {
		xin := b.Input("x", x)
		h := m.LNF.Forward(b, "ln_f", xin)
		logits := m.Head.Forward(b, "lm_head", h)
		next := b.ArgmaxLast(logits)
		b.MarkOutput(logits)
		b.MarkOutput(next)
		logitsID, nextID = logits.ID(), next.ID()
	})
	return b, logitsID, nextID
}

// SegmentSpec describes a contiguous slice of the forward pass — the
// unit one pool shard executes as a single fused RPC. A segment covers
// blocks [LoLayer, HiLayer); the first segment additionally runs the
// embeddings (its input is then token ids, not an activation) and the
// last one the final norm + lm head + argmax.
type SegmentSpec struct {
	// WithEmbed prepends token+position embedding; Tokens/StartPos feed
	// it. Otherwise X is the incoming [t, dim] activation.
	WithEmbed bool
	Tokens    []int64
	StartPos  int
	X         *tensor.Tensor
	// LoLayer..HiLayer-1 are the blocks captured.
	LoLayer, HiLayer int
	// WithHead appends ln_f + lm_head + argmax.
	WithHead bool
	// HistLen is the per-layer cache length (0 = prefill: blocks run
	// cache-less and their fresh KV rows become the caches).
	HistLen int
	// Caches optionally supplies concrete per-layer cache data (indexed by
	// absolute layer) for the HistLen > 0 stateful inputs. When nil the
	// inputs get zero placeholders of the right shape and the runtime must
	// rebind them to remote-resident keys; when set, the graph is directly
	// executable (the prefix-cache extend path binds gathered pages here).
	Caches []*nn.KVCache
}

// SegmentOutputs indexes a captured segment graph.
type SegmentOutputs struct {
	// Out is the boundary activation shipped to the next shard; Invalid
	// when WithHead (the segment ends in logits instead).
	Out srg.NodeID
	// LastLogits and NextToken are set when WithHead.
	LastLogits, NextToken srg.NodeID
	// CacheK/CacheV hold, per included layer (Layers[i] gives the
	// absolute index), the node producing the layer's full cache after
	// this call — fresh rows at prefill, the appended concat at decode.
	CacheK, CacheV []srg.NodeID
	// NewK/NewV hold, per included layer, the node producing only the
	// freshly computed rows (the ΔKV slice). Equal to CacheK/CacheV when
	// HistLen == 0.
	NewK, NewV []srg.NodeID
	Layers     []int
}

// BuildSegment captures one shard's slice of the forward pass. The
// capture mirrors BuildPrefill/BuildDecodeStep exactly — same ops, same
// module scopes, same cache annotations — so a pipeline of segments
// produces bit-identical tokens to the monolithic graphs.
func (m *GPT) BuildSegment(spec SegmentSpec) (*lazy.Builder, SegmentOutputs) {
	if spec.LoLayer < 0 || spec.HiLayer > m.Cfg.Layers || spec.LoLayer > spec.HiLayer {
		panic(fmt.Sprintf("models: segment layers [%d,%d) out of range", spec.LoLayer, spec.HiLayer))
	}
	b := lazy.NewBuilder(fmt.Sprintf("gpt.segment.%d-%d", spec.LoLayer, spec.HiLayer))
	b.SetModality(srg.ModalityText)
	var out SegmentOutputs
	out.Out, out.LastLogits, out.NextToken = srg.Invalid, srg.Invalid, srg.Invalid
	b.InModule("gpt", func() {
		var x lazy.Value
		var rows int
		if spec.WithEmbed {
			ids := b.Input("tokens", tensor.FromI64(tensor.Shape{len(spec.Tokens)}, spec.Tokens))
			x = m.Embed.Lookup(b, "wte", ids)
			posv := m.Pos.Lookup(b, "wpe",
				b.Input("positions", positions(spec.StartPos, len(spec.Tokens))))
			x = b.Add(x, posv)
			rows = len(spec.Tokens)
		} else {
			x = b.Input("x", spec.X)
			rows = spec.X.Shape()[0]
		}
		for i := spec.LoLayer; i < spec.HiLayer; i++ {
			var cacheK, cacheV lazy.Value
			if spec.HistLen > 0 {
				var ckData, cvData *tensor.Tensor
				if spec.Caches != nil && spec.Caches[i] != nil {
					ckData, cvData = spec.Caches[i].K, spec.Caches[i].V
				}
				cacheK = b.StatefulInput(cacheName(i, "k"),
					cacheTensor(ckData, spec.HistLen, m.Cfg.Dim))
				cacheV = b.StatefulInput(cacheName(i, "v"),
					cacheTensor(cvData, spec.HistLen, m.Cfg.Dim))
			}
			var k, v lazy.Value
			x, k, v = m.Blocks[i].ForwardKV(b, fmt.Sprintf("blocks.%d", i), x, cacheK, cacheV)
			if spec.HistLen > 0 {
				ak := appendedCache(b, cacheK.ID())
				av := appendedCache(b, cacheV.ID())
				b.AnnotateStatefulNode(ak, CacheRef(i, "k"))
				b.AnnotateStatefulNode(av, CacheRef(i, "v"))
				out.CacheK = append(out.CacheK, ak)
				out.CacheV = append(out.CacheV, av)
			} else {
				b.AnnotateStateful(k, CacheRef(i, "k"))
				b.AnnotateStateful(v, CacheRef(i, "v"))
				out.CacheK = append(out.CacheK, k.ID())
				out.CacheV = append(out.CacheV, v.ID())
			}
			out.NewK = append(out.NewK, k.ID())
			out.NewV = append(out.NewV, v.ID())
			out.Layers = append(out.Layers, i)
		}
		if spec.WithHead {
			x = m.LNF.Forward(b, "ln_f", x)
			logits := m.Head.Forward(b, "lm_head", x)
			b.MarkOutput(logits)
			last := b.SliceRows(logits, rows-1, rows)
			b.MarkOutput(last)
			next := b.ArgmaxLast(logits)
			b.MarkOutput(next)
			out.LastLogits = last.ID()
			out.NextToken = next.ID()
		} else {
			b.MarkOutput(x)
			out.Out = x.ID()
		}
	})
	return b, out
}

// BuildPrefillExtend captures a suffix-only prompt pass: the suffix
// tokens (absolute positions histLen..histLen+len(suffix)-1) attend over
// per-layer caches already holding the first histLen positions — the
// prefix-cache hit path, where the shared prefix's KV state is reused and
// only the novel suffix is computed. With concrete caches the graph runs
// locally as-is; with nil cache data the stateful inputs are placeholders
// for the runtime to rebind to remote-resident keys. Offset-based causal
// masking inside the blocks makes the result bit-identical to a full
// BuildPrefill over prefix+suffix.
func (m *GPT) BuildPrefillExtend(suffix []int64, histLen int, caches []*nn.KVCache) (*lazy.Builder, SegmentOutputs) {
	if len(suffix) == 0 || histLen <= 0 || histLen+len(suffix) > m.Cfg.MaxSeq {
		panic(fmt.Sprintf("models: extend of %d tokens over history %d out of range", len(suffix), histLen))
	}
	return m.BuildSegment(SegmentSpec{
		WithEmbed: true,
		Tokens:    suffix,
		StartPos:  histLen,
		LoLayer:   0,
		HiLayer:   m.Cfg.Layers,
		WithHead:  true,
		HistLen:   histLen,
		Caches:    caches,
	})
}

func positions(start, n int) *tensor.Tensor {
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(start + i)
	}
	return tensor.FromI64(tensor.Shape{n}, ids)
}

// NumParams returns the live model's actual parameter count (must agree
// with Cfg.ParamCount; a test asserts this).
func (m *GPT) NumParams() int64 {
	n := m.Embed.NumParams() + m.Pos.NumParams() + m.LNF.NumParams() + m.Head.NumParams()
	for _, b := range m.Blocks {
		n += b.NumParams()
	}
	return n
}
