package frontend

import (
	"fmt"
	"math/rand"
	"testing"

	"genie/internal/exec"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/tensor"
)

func TestDecodeRecognizerTagsDecodeGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := models.NewGPT(rng, models.TinyGPT)
	caches := prefillCaches(t, m, []int64{1, 2, 3})
	b, _ := m.BuildDecodeStep(4, 3, 3, caches)

	rep := Annotate(b.Graph())
	if rep.Tagged["kv_cache_decode"] == 0 {
		t.Fatal("decode recognizer missed the KV-append idiom")
	}
	// Every compute node should now be decode-phase.
	for _, n := range b.Graph().Nodes() {
		if n.Op != "param" && n.Op != "input" && n.Phase != srg.PhaseLLMDecode {
			t.Errorf("node %d (%s) phase %q", n.ID, n.Op, n.Phase)
		}
	}
	// The cache appends must be marked stateful.
	foundStateful := false
	for _, n := range b.Graph().Nodes() {
		if n.Op == "concat" && n.Residency == srg.ResidencyStatefulKVCache {
			foundStateful = true
		}
	}
	if !foundStateful {
		t.Error("cache append not marked stateful")
	}
}

func TestPrefillRecognizerTagsPrefillGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := models.NewGPT(rng, models.TinyGPT)
	b, _ := m.BuildPrefill([]int64{1, 2, 3, 4, 5})

	rep := Annotate(b.Graph())
	if rep.Tagged["attention_prefill"] == 0 {
		t.Fatal("prefill recognizer missed multi-row attention")
	}
	if rep.Tagged["kv_cache_decode"] != 0 {
		t.Error("decode recognizer fired on a prefill graph")
	}
	hasPrefill := false
	for _, p := range rep.Phases {
		if p == srg.PhaseLLMPrefill {
			hasPrefill = true
		}
	}
	if !hasPrefill {
		t.Errorf("phases = %v", rep.Phases)
	}
}

func TestConvPipelineRecognizerAssignsStages(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := models.NewCNN(rng, models.TinyCNN)
	img := tensor.New(tensor.F32, 3, 32, 32)
	b, _ := m.BuildForward(img)

	rep := Annotate(b.Graph())
	if rep.Tagged["conv_pipeline"] == 0 {
		t.Fatal("conv recognizer missed the CNN")
	}
	stages := map[string]bool{}
	for _, n := range b.Graph().Nodes() {
		if n.Op == "conv2d" {
			if n.Phase != srg.PhaseCVStage {
				t.Errorf("conv node %d phase %q", n.ID, n.Phase)
			}
			stages[n.Attrs["cv_stage"]] = true
		}
	}
	if len(stages) != 3 {
		t.Errorf("distinct stages %v, want 3", stages)
	}
}

func TestSparseDenseRecognizerOnDLRM(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := models.NewDLRM(rng, models.TinyDLRM)
	req := models.DLRMRequest{
		Dense:     tensor.New(tensor.F32, 1, 8),
		SparseIDs: [][]int64{{1, 2}, {3}, {4, 5, 6}},
	}
	b, out := m.BuildForward(req)
	rep := Annotate(b.Graph())
	if rep.Tagged["sparse_dense"] == 0 {
		t.Fatal("sparse recognizer missed embedding bags")
	}
	for _, id := range out.Lookups {
		if b.Graph().Node(id).Phase != srg.PhaseSparse {
			t.Errorf("lookup %d phase %q", id, b.Graph().Node(id).Phase)
		}
	}
}

func TestFusionRecognizerOnMultiModal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := models.NewMultiModal(rng, models.TinyCNN, 64, 16, 8)
	img := tensor.New(tensor.F32, 3, 32, 32)
	b, out := m.BuildForward(img, []int64{1, 2, 3})
	rep := Annotate(b.Graph())
	if rep.Tagged["modality_fusion"] == 0 {
		t.Fatal("fusion recognizer missed the merge point")
	}
	if b.Graph().Node(out.FusionNode).Phase != srg.PhaseFusion {
		t.Errorf("fusion node phase %q", b.Graph().Node(out.FusionNode).Phase)
	}
}

func TestExplicitAnnotationsRespectedByRecognizers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := models.NewGPT(rng, models.TinyGPT)
	b, _ := m.BuildPrefill([]int64{1, 2, 3})
	g := b.Graph()

	// Developer hook: tag a block explicitly before annotation.
	n := AnnotatePhase(g, "gpt.blocks.0", srg.PhaseLLMDecode)
	if n == 0 {
		t.Fatal("explicit annotation matched nothing")
	}
	Annotate(g)
	// Recognizers must not overwrite the explicit tag.
	for _, node := range g.Nodes() {
		if node.Module == "gpt.blocks.0.ln1" && node.Phase != srg.PhaseLLMDecode {
			t.Errorf("explicit phase overwritten on %s: %q", node.Module, node.Phase)
		}
	}
}

func TestAnnotateResidencyHook(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := models.NewGPT(rng, models.TinyGPT)
	b, _ := m.BuildPrefill([]int64{1})
	g := b.Graph()
	if err := AnnotateResidency(g, "gpt.wte.table", srg.ResidencyStatefulKVCache); err != nil {
		t.Fatal(err)
	}
	if err := AnnotateResidency(g, "no.such.ref", srg.ResidencyUnknown); err == nil {
		t.Error("unknown ref should error")
	}
}

func TestAnnotateModality(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := models.NewGPT(rng, models.TinyGPT)
	b, _ := m.BuildPrefill([]int64{1, 2})
	g := b.Graph()
	n := AnnotateModality(g, "gpt.lm_head", srg.ModalityDense)
	if n == 0 {
		t.Error("modality annotation matched nothing")
	}
}

func TestReductionRatesMarked(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := models.NewGPT(rng, models.TinyGPT)
	b, out := m.BuildPrefill([]int64{1, 2, 3, 4})
	g := b.Graph()
	Annotate(g)
	// The argmax edge reduces [t,vocab] to [1]: rate must be << 1.
	for _, e := range g.Edges() {
		if e.To == out.NextToken {
			if e.Rate >= 1 {
				t.Errorf("argmax edge rate %v, want < 1", e.Rate)
			}
		}
	}
}

func TestCriticalPathMarkedAfterAnnotate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := models.NewGPT(rng, models.TinyGPT)
	b, _ := m.BuildPrefill([]int64{1, 2, 3})
	g := b.Graph()
	Annotate(g)
	critical := 0
	for _, e := range g.Edges() {
		if e.Critical {
			critical++
		}
	}
	if critical == 0 {
		t.Error("no critical edges marked")
	}
}

func TestRecognizersIgnoreIrrelevantGraphs(t *testing.T) {
	g := srg.New("plain")
	in := g.MustAdd(&srg.Node{Op: "input", Ref: "x", Output: srg.TensorMeta{Shape: []int{4}}})
	g.MustAdd(&srg.Node{Op: "relu", Inputs: []srg.NodeID{in}, Output: srg.TensorMeta{Shape: []int{4}}})
	rep := Annotate(g)
	for name, count := range rep.Tagged {
		if count != 0 {
			t.Errorf("recognizer %s tagged %d nodes of a plain graph", name, count)
		}
	}
	if len(rep.Phases) != 0 {
		t.Errorf("phases %v on a plain graph", rep.Phases)
	}
}

// prefillCaches runs a real prefill to produce concrete caches for decode
// tests.
func prefillCaches(t *testing.T, m *models.GPT, prompt []int64) []*nn.KVCache {
	t.Helper()
	b, out := m.BuildPrefill(prompt)
	vals, err := exec.Graph(b.Graph(), func(op, ref string) (*tensor.Tensor, error) {
		if op == "param" {
			if tt, ok := b.ParamData(ref); ok {
				return tt, nil
			}
		} else if tt, ok := b.InputData(ref); ok {
			return tt, nil
		}
		return nil, fmt.Errorf("no data for %s %q", op, ref)
	})
	if err != nil {
		t.Fatal(err)
	}
	caches := make([]*nn.KVCache, len(out.CacheK))
	for i := range out.CacheK {
		caches[i] = &nn.KVCache{}
		caches[i].Append(vals[out.CacheK[i]], vals[out.CacheV[i]])
	}
	return caches
}
