package ops

import (
	"sync"

	"genie/internal/tensor"
)

// f16Table is a full 65536-entry half→single widening table. The scalar
// tensor.F16ToF32 branches on subnormals/Inf/NaN per element, which
// dominates the f16 kernels at decode shapes (the k·n widen pass is
// amortized over a single output row at m=1). The table turns every
// conversion into one L2-resident load; entries are computed with
// F16ToF32 itself, so kernel results stay bit-identical.
var (
	f16TabOnce sync.Once
	f16Tab     [1 << 16]float32
)

func f16Table() *[1 << 16]float32 {
	f16TabOnce.Do(func() {
		for i := range f16Tab {
			f16Tab[i] = tensor.F16ToF32(uint16(i))
		}
	})
	return &f16Tab
}
