package lineage

import (
	"fmt"
	"math/rand"
	"testing"

	"genie/internal/backend"
	"genie/internal/chaos"
	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/lazy"
	"genie/internal/metrics"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// pipeBackend is an in-process backend over a synchronous pipe, with
// explicit shutdown so goroutine-leak checks can run after teardown.
type pipeBackend struct {
	cli          *transport.Client
	srv          *backend.Server
	cconn, sconn *transport.Conn
}

func startPipeBackend() *pipeBackend {
	cconn, sconn := transport.Pipe(nil, nil)
	srv := backend.NewServer(device.A100)
	go func() { _ = srv.Serve(sconn) }()
	return &pipeBackend{cli: transport.NewClient(cconn), srv: srv, cconn: cconn, sconn: sconn}
}

func (p *pipeBackend) stop() {
	_ = p.cconn.Close()
	_ = p.sconn.Close()
}

// tepChainStep runs y = relu(2x) through the TrackedEndpoint, keeping y
// under stepKey; consecutive steps chain through resident state.
func tepChainStep(t *testing.T, tep *TrackedEndpoint, stepKey, prevKey string, first *tensor.Tensor) {
	t.Helper()
	b := lazy.NewBuilder("chain")
	var x lazy.Value
	if prevKey == "" {
		x = b.Input("x", first)
	} else {
		x = b.Input("prev", tensor.New(tensor.F32, first.Shape()...))
	}
	y := b.ReLU(b.Scale(x, 2))
	ex := &transport.Exec{
		Graph: b.Graph(),
		Keep:  map[srg.NodeID]string{y.ID(): stepKey},
	}
	if prevKey == "" {
		ex.Binds = []transport.Binding{{Ref: "x", Inline: first}}
	} else {
		ex.Binds = []transport.Binding{{Ref: "prev", Key: prevKey}}
	}
	if _, err := tep.Exec(ex); err != nil {
		t.Fatal(err)
	}
}

// TestTrackedEndpointFailover: kill the bound backend, fail over to a
// registered replacement, and read back bit-identical replayed state
// through the same endpoint handle.
func TestTrackedEndpointFailover(t *testing.T) {
	b0, b1 := startPipeBackend(), startPipeBackend()
	defer b0.stop()
	defer b1.stop()
	m := NewManager()
	m.RegisterEndpoint("gpu0", b0.cli)
	m.RegisterEndpoint("gpu1", b1.cli)

	tep, err := m.TrackedEndpoint("gpu0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.TrackedEndpoint("nope"); err == nil {
		t.Fatal("TrackedEndpoint accepted an unregistered name")
	}

	// One uploaded object plus a two-step exec chain, all tracked.
	w := tensor.FromF32(tensor.Shape{2}, []float32{5, 7})
	if _, err := tep.Upload("w", w); err != nil {
		t.Fatal(err)
	}
	seed := tensor.FromF32(tensor.Shape{3}, []float32{1, -2, 3})
	tepChainStep(t, tep, "s1", "", seed)
	tepChainStep(t, tep, "s2", "s1", seed)

	b0.srv.Crash()
	n, err := tep.Failover("gpu1")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("failover regenerated %d objects, want 3 (w, s1, s2)", n)
	}
	if tep.Name() != "gpu1" || tep.Rebinds() != 1 {
		t.Errorf("bound to %q after %d rebinds, want gpu1 after 1", tep.Name(), tep.Rebinds())
	}

	epoch, _ := m.EpochOf("s2")
	got, err := tep.Fetch("s2", epoch)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{4, 0, 12} // relu(2*relu(2*[1,-2,3]))
	for i, v := range got.F32() {
		if v != want[i] {
			t.Fatalf("replayed s2 = %v, want %v", got.F32(), want)
		}
	}
	ew, _ := m.EpochOf("w")
	if _, err := tep.Fetch("w", ew); err != nil {
		t.Fatalf("uploaded object not replayed: %v", err)
	}

	// Free drops both the remote object and its lineage, so a later
	// failover cannot resurrect released state.
	if err := tep.Free("s2"); err != nil {
		t.Fatal(err)
	}
	for _, k := range m.Tracked() {
		if k == "s2" {
			t.Fatal("Free left s2 in lineage")
		}
	}

	if _, err := tep.Failover("ghost"); err == nil {
		t.Fatal("Failover accepted an unregistered replacement")
	}
}

// TestKillBackendMidDecodeFailover is the end-to-end fault drill: a
// chaos plan crashes the serving backend between decode steps, the
// session rebinds to a cluster replacement with lineage replaying the
// lost weights and KV chains, and the generated token sequence is
// bit-identical to an unfaulted run. Run under -race; the goroutine
// snapshot proves recovery leaks nothing.
func TestKillBackendMidDecodeFailover(t *testing.T) {
	snap := metrics.SnapGoroutines()

	rng := rand.New(rand.NewSource(77))
	gpt := models.NewGPT(rng, models.TinyGPT)
	prompt := []int64{3, 14, 15, 9, 26}
	const steps = 6

	// Reference: same weights, healthy backend.
	ref := startPipeBackend()
	refRunner := &runtime.LLMRunner{Model: gpt, EP: ref.cli}
	want, err := refRunner.Generate(runtime.ModeSemAware, prompt, steps)
	if err != nil {
		t.Fatal(err)
	}
	ref.stop()

	// Faulted: gpu0 crashes on its 4th Exec — mid-decode (exec 1 is the
	// prefill; the crash lands between decode steps 2 and 3).
	b0, b1 := startPipeBackend(), startPipeBackend()
	plan := chaos.NewPlan(42, chaos.Config{CrashExecAt: 4})
	b0.srv.SetExecHook(plan.ExecHook(b0.srv.Crash))

	m := NewManager()
	m.RegisterEndpoint("gpu0", b0.cli)
	m.RegisterEndpoint("gpu1", b1.cli)
	tep, err := m.TrackedEndpoint("gpu0")
	if err != nil {
		t.Fatal(err)
	}

	pool := cluster.NewState()
	for _, id := range []cluster.AcceleratorID{"gpu0", "gpu1"} {
		if err := pool.AddAccelerator(&cluster.Accelerator{ID: id, Spec: device.A100}); err != nil {
			t.Fatal(err)
		}
	}

	var causes []error
	runner := &runtime.LLMRunner{
		Model: gpt,
		EP:    tep,
		Failover: &runtime.Failover{
			Rebind: func(cause error) error {
				failed := cluster.AcceleratorID(tep.Name())
				pool.MarkFailed(failed)
				repl := pool.Replacement(failed)
				if repl == nil {
					return fmt.Errorf("no healthy replacement for %s", failed)
				}
				_, ferr := tep.Failover(string(repl.ID))
				return ferr
			},
			OnRebind: func(cause error) { causes = append(causes, cause) },
		},
	}
	got, err := runner.Generate(runtime.ModeSemAware, prompt, steps)
	if err != nil {
		t.Fatalf("faulted run did not recover: %v", err)
	}

	if len(got.Tokens) != len(want.Tokens) {
		t.Fatalf("token count %d, want %d", len(got.Tokens), len(want.Tokens))
	}
	for i := range want.Tokens {
		if got.Tokens[i] != want.Tokens[i] {
			t.Fatalf("token[%d] = %d after failover, want %d (full: %v vs %v)",
				i, got.Tokens[i], want.Tokens[i], got.Tokens, want.Tokens)
		}
	}

	if n := plan.Injected()["crash_exec"]; n != 1 {
		t.Errorf("chaos injected %d crashes, want 1", n)
	}
	if tep.Rebinds() != 1 || tep.Name() != "gpu1" {
		t.Errorf("endpoint bound to %q after %d rebinds, want gpu1 after 1", tep.Name(), tep.Rebinds())
	}
	if len(causes) != 1 || !transport.IsStateLoss(causes[0]) {
		t.Errorf("OnRebind causes = %v, want one state-loss error", causes)
	}
	if pool.Healthy("gpu0") {
		t.Error("gpu0 still marked healthy after failover")
	}
	if repl := pool.Replacement("gpu1"); repl != nil {
		t.Errorf("Replacement offered failed backend %s", repl.ID)
	}

	b0.stop()
	b1.stop()
	snap.Check(t)
}
