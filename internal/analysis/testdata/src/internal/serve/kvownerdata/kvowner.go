// Package kvownerdata is genie-lint test fixture data for kvscope's
// ownership rule. Its pretend path (genie/internal/serve/...) is
// outside the plan-owner packages, so binding any CacheRef-derived key
// here — scoped or not — is cross-shard KV access behind the plan's
// back.
package kvownerdata

import (
	"genie/internal/models"
	"genie/internal/srg"
	"genie/internal/transport"
)

// crossShardKeep decides KV residency from the serving layer: even a
// properly scoped key is the plan owner's call, not serve's.
func crossShardKeep(ex *transport.Exec, scope string) {
	ex.Keep[srg.NodeID(1)] = scope + models.CacheRef(0, "k") // want "outside the plan-owner packages"
}

// crossShardBinding does the same through a Binding composite.
func crossShardBinding() transport.Binding {
	return transport.Binding{Ref: "kv", Key: models.CacheRef(1, "k")} // want "outside the plan-owner packages"
}

// plainKey is not session KV; weights and scratch keys are free.
func plainKey(ex *transport.Exec) {
	ex.Keep[srg.NodeID(2)] = "weights.head"
}

// inlineBinding carries data, not a key; none of kvscope's business.
func inlineBinding() transport.Binding {
	return transport.Binding{Ref: "x"}
}

// sendKey is the helper whose parameter reaches the sink.
func sendKey(ex *transport.Exec, key string) {
	ex.Binds = append(ex.Binds, transport.Binding{Ref: "kv", Key: key})
}

// crossShardViaHelper is the interprocedural form: the sink is one
// call away, the violation is at this call site.
func crossShardViaHelper(ex *transport.Exec, scope string) {
	sendKey(ex, scope+models.CacheRef(2, "v")) // want "outside the plan-owner packages.*through sendKey"
}
