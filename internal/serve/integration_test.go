package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"genie/internal/backend"
	"genie/internal/device"
	"genie/internal/metrics"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/transport"
)

const tcpSeed = 7

// startTCPRunner starts a real genie-server backend over TCP and returns
// a runner wired to it, sharing model weights with every other runner
// built from the same seed.
func startTCPRunner(t *testing.T) *runtime.LLMRunner {
	t.Helper()
	srv := backend.NewServer(device.A100)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = srv.Listen(l) }()
	conn, err := transport.Dial(l.Addr().String(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	client := transport.NewClient(conn)
	rng := rand.New(rand.NewSource(tcpSeed))
	return &runtime.LLMRunner{
		Model:    models.NewGPT(rng, models.TinyGPT),
		EP:       client,
		Counters: conn.Counters(),
	}
}

// e2ePrompt derives a deterministic per-request prompt.
func e2ePrompt(i int) []int64 {
	p := make([]int64, 4+i%3)
	for j := range p {
		p[j] = int64((i*13 + j*7) % 90)
	}
	return p
}

// TestGatewayEndToEnd is the acceptance test: in-process genie-server
// backends over real TCP, the serving engine in ModeSemAware, an
// httptest gateway in front, and ≥32 concurrent POST /v1/generate
// calls. Asserts (a) every response's tokens equal a direct
// runtime.Generate in the same mode, (b) continuous batching actually
// merged requests (occupancy > 1 at /stats), and (c) requests beyond
// the queue bound are shed with 429, not hung.
func TestGatewayEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full TCP gateway e2e; skipped with -short")
	}
	const (
		nReq      = 32
		maxTokens = 6
	)
	// Goroutine accounting brackets the whole test: registered before
	// the other cleanups so it runs last (LIFO), after the gateway,
	// listeners, and connections are torn down.
	snap := metrics.SnapGoroutines()
	t.Cleanup(func() {
		http.DefaultClient.CloseIdleConnections()
		snap.Check(t)
	})
	backends := []Backend{
		{Name: "b0", Runner: startTCPRunner(t)},
		{Name: "b1", Runner: startTCPRunner(t)},
	}
	e, err := NewEngine(Config{
		Mode:     runtime.ModeSemAware,
		MaxQueue: nReq, // exactly the burst: request nReq+1 must shed
		MaxBatch: 8,
	}, backends)
	if err != nil {
		t.Fatal(err)
	}
	gw := httptest.NewServer(NewHandler(e))
	t.Cleanup(gw.Close)

	// Ground truth: direct Generate on a fresh backend, same seed+mode.
	ref := startTCPRunner(t)
	want := make([][]int64, nReq)
	for i := range want {
		res, err := ref.Generate(runtime.ModeSemAware, e2ePrompt(i), maxTokens)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Tokens
	}

	post := func(i int) (*http.Response, GenerateResponse, error) {
		body, _ := json.Marshal(GenerateRequest{
			Tenant:    fmt.Sprintf("tenant%d", i%4),
			Prompt:    e2ePrompt(i),
			MaxTokens: maxTokens,
		})
		resp, err := http.Post(gw.URL+"/v1/generate", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, GenerateResponse{}, err
		}
		defer resp.Body.Close()
		var gr GenerateResponse
		if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
			return resp, gr, err
		}
		return resp, gr, nil
	}

	// Lanes not started yet: the burst lands wholly in the admission
	// queue, which makes the over-bound rejections deterministic.
	results := make([]GenerateResponse, nReq)
	statuses := make([]int, nReq)
	var wg sync.WaitGroup
	for i := 0; i < nReq; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, gr, err := post(i)
			if err != nil {
				t.Errorf("req %d: %v", i, err)
				return
			}
			statuses[i] = resp.StatusCode
			results[i] = gr
		}(i)
	}
	waitFor(t, func() bool { return e.Stats().Queued == nReq }, "queue fill")

	// (c) Beyond the bound: load-shed as 429, immediately.
	for i := 0; i < 4; i++ {
		resp, _, err := post(nReq + i)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-bound request got %d, want 429", resp.StatusCode)
		}
	}

	e.Start()
	wg.Wait()

	// (a) Token equality with direct Generate.
	for i := 0; i < nReq; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("req %d: status %d (%s)", i, statuses[i], results[i].Error)
		}
		assertTokens(t, fmt.Sprintf("req %d", i), results[i].Tokens, want[i])
	}

	// (b) Continuous batching merged concurrent requests.
	resp, err := http.Get(gw.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.MaxOccupancy <= 1 {
		t.Fatalf("max occupancy %d, want >1 (batching never merged requests)", st.MaxOccupancy)
	}
	if st.Completed != nReq || st.Shed != 4 {
		t.Fatalf("stats completed=%d shed=%d, want %d/4", st.Completed, st.Shed, nReq)
	}
	if st.TTFT.P95 <= 0 || st.Latency.P95 <= 0 || st.TokensPerSec <= 0 {
		t.Fatalf("latency telemetry missing: %+v", st)
	}

	// healthz flips 200 → 503 across drain.
	if code := getStatus(t, gw.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz %d, want 200", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := getStatus(t, gw.URL+"/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining %d, want 503", code)
	}
	e.Stop()
}

// TestGatewayStreaming exercises the NDJSON token stream: per-token
// events followed by a summary, tokens matching the non-streamed path.
func TestGatewayStreaming(t *testing.T) {
	rng := rand.New(rand.NewSource(tcpSeed))
	r := &runtime.LLMRunner{Model: models.NewGPT(rng, models.TinyGPT)}
	e, err := NewEngine(Config{Mode: runtime.ModeLocal}, []Backend{{Name: "local", Runner: r}})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	t.Cleanup(e.Stop)
	gw := httptest.NewServer(NewHandler(e))
	t.Cleanup(gw.Close)

	const maxTokens = 5
	prompt := e2ePrompt(1)
	body, _ := json.Marshal(GenerateRequest{Tenant: "s", Prompt: prompt, MaxTokens: maxTokens, Stream: true})
	resp, err := http.Post(gw.URL+"/v1/generate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type %q", ct)
	}

	var events []StreamEvent
	var summary GenerateResponse
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"index"`)) { // token event lines carry an index
			var ev StreamEvent
			if err := json.Unmarshal(line, &ev); err != nil {
				t.Fatalf("bad event line %q: %v", line, err)
			}
			events = append(events, ev)
			continue
		}
		if err := json.Unmarshal(line, &summary); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	ref := &runtime.LLMRunner{Model: models.NewGPT(rand.New(rand.NewSource(tcpSeed)), models.TinyGPT)}
	wantRes, err := ref.Generate(runtime.ModeLocal, prompt, maxTokens)
	if err != nil {
		t.Fatal(err)
	}
	assertTokens(t, "summary", summary.Tokens, wantRes.Tokens)
	if len(events) != maxTokens {
		t.Fatalf("streamed %d events, want %d", len(events), maxTokens)
	}
	for i, ev := range events {
		if ev.Index != i || ev.Token != wantRes.Tokens[i] {
			t.Fatalf("event %d = %+v, want index %d token %d", i, ev, i, wantRes.Tokens[i])
		}
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
