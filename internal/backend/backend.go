// Package backend implements the disaggregated accelerator server: it
// holds remote-resident objects (weights, KV caches) addressed by opaque
// keys with epochs, executes SRG subgraphs shipped by clients, and
// accounts modeled device busy time (§3.4 "Execution Backends").
//
// The same Server runs in-process (tests, examples) or behind TCP
// (cmd/genie-server). Failure injection (Crash) drops all resident state
// and advances the epoch so lineage recovery (§3.5) can be exercised.
package backend

import (
	"fmt"
	"strings"
	"sync"

	"genie/internal/device"
	"genie/internal/exec"
	"genie/internal/obs"
	"genie/internal/quant"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// Object is one remote-resident tensor.
type Object struct {
	Data  *tensor.Tensor
	Epoch uint32
}

// Server is one accelerator endpoint.
type Server struct {
	spec device.Spec

	mu        sync.Mutex
	store     map[string]Object
	epoch     uint32
	busyNs    int64
	execCalls int64
	resident  int64
	// failNextExecs makes the next n Exec calls fail (fault injection for
	// tests beyond full crashes).
	failNextExecs int
	// execHook, when set, observes every Exec with its 1-based call
	// number before execution and may veto it (see SetExecHook).
	execHook func(call int64) error

	// Wire features this server grants (wirefeat.go); content is the
	// upload dedup cache: content hash -> resident tensor. Both are
	// epoch-scoped like the store — Crash wipes the cache so a hash ref
	// can never resurrect pre-crash bytes. Entries alias store tensors
	// (uploads are immutable once resident) so the cache costs no data
	// memory.
	wireFeat uint32
	content  map[[transport.HashSize]byte]*tensor.Tensor

	// quantPolicy lowers rank-2 f32 weight uploads (keys ending ".w")
	// to the configured precision tier at admission (-quant on
	// genie-server).
	quantPolicy quant.Mode

	// Connection tracking for graceful drain (see serve.go). Guarded by
	// its own mutex so RPC handling never contends with store access.
	connMu   sync.Mutex
	conns    map[*transport.Conn]bool // conn -> request in flight
	draining bool

	// Observability: tracer parents server-side spans under wire-sent
	// trace context; inst mirrors store/exec counters into a metrics
	// registry. Both optional — nil means uninstrumented.
	tracer *obs.Tracer
	inst   *instruments
}

// instruments holds the server's registered metric handles.
type instruments struct {
	execs         *obs.Counter
	uploads       *obs.Counter
	crashes       *obs.Counter
	gpuBusyNs     *obs.Counter
	residentBytes *obs.Gauge
	residentObjs  *obs.Gauge
	epoch         *obs.Gauge
}

// SetTracer attaches a tracer; server spans parent under the trace
// context clients send in the wire envelope. Nil detaches.
func (s *Server) SetTracer(tr *obs.Tracer) { s.tracer = tr }

// Instrument registers backend metric families in reg and mirrors the
// server's counters into them from then on.
func (s *Server) Instrument(reg *obs.Registry) {
	inst := &instruments{
		execs:         reg.Counter("genie_backend_exec_total", "subgraph executions"),
		uploads:       reg.Counter("genie_backend_uploads_total", "objects stored via upload or keep"),
		crashes:       reg.Counter("genie_backend_crashes_total", "injected crashes"),
		gpuBusyNs:     reg.Counter("genie_backend_gpu_busy_ns_total", "modeled device busy time"),
		residentBytes: reg.Gauge("genie_backend_resident_bytes", "bytes resident in the object store"),
		residentObjs:  reg.Gauge("genie_backend_resident_objects", "objects resident in the store"),
		epoch:         reg.Gauge("genie_backend_epoch", "current store epoch"),
	}
	s.mu.Lock()
	s.inst = inst
	inst.residentBytes.Set(s.resident)
	inst.residentObjs.Set(int64(len(s.store)))
	inst.epoch.Set(int64(s.epoch))
	s.mu.Unlock()
}

// syncResidentLocked pushes store gauges; callers hold s.mu.
func (s *Server) syncResidentLocked() {
	if s.inst == nil {
		return
	}
	s.inst.residentBytes.Set(s.resident)
	s.inst.residentObjs.Set(int64(len(s.store)))
	s.inst.epoch.Set(int64(s.epoch))
}

// NewServer creates a backend modeling the given device. All wire
// features are supported by default; they still cost nothing until a
// client negotiates them.
func NewServer(spec device.Spec) *Server {
	return &Server{spec: spec, store: make(map[string]Object), epoch: 1, wireFeat: transport.FeatAll}
}

// SetWireFeatures restricts which wire features MsgHello may grant
// (0 forces every connection to the legacy protocol).
func (s *Server) SetWireFeatures(mask uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wireFeat = mask
}

// WireFeatures returns the grantable feature mask.
func (s *Server) WireFeatures() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.wireFeat
}

// SetQuantPolicy lowers future rank-2 f32 weight uploads (keys ending
// ".w") to the given precision tier as they are stored. Off restores
// full-precision admission; already-resident objects are untouched.
func (s *Server) SetQuantPolicy(m quant.Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quantPolicy = m
}

// maxContentCache bounds dedup-cache entries; a full reset past the
// cap keeps the map bounded without eviction bookkeeping (misses just
// re-upload).
const maxContentCache = 4096

// rememberContent records a resident tensor's bytes in the dedup cache.
func (s *Server) rememberContent(t *tensor.Tensor) {
	h := transport.ContentHash(t)
	s.mu.Lock()
	if s.content == nil || len(s.content) >= maxContentCache {
		s.content = make(map[[transport.HashSize]byte]*tensor.Tensor)
	}
	s.content[h] = t
	s.mu.Unlock()
}

// contentFor resolves a content hash to the tensor the server already
// holds (nil on miss). The hash was computed server-side at remember
// time, so a client can never alias a key onto bytes it did not send.
func (s *Server) contentFor(h [transport.HashSize]byte) *tensor.Tensor {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.content[h]
}

// maybeQuantize applies the admission quant policy to weight uploads.
func (s *Server) maybeQuantize(key string, t *tensor.Tensor) *tensor.Tensor {
	s.mu.Lock()
	mode := s.quantPolicy
	s.mu.Unlock()
	if mode == quant.Off || t.DType() != tensor.F32 || t.Shape().Rank() != 2 ||
		!strings.HasSuffix(key, ".w") {
		return t
	}
	switch mode {
	case quant.Int8:
		if q, err := quant.QuantizeLinear(t, 1); err == nil {
			return q
		}
	case quant.F16:
		return t.ToF16()
	}
	return t
}

// Spec returns the modeled device.
func (s *Server) Spec() device.Spec { return s.spec }

// Epoch returns the current store epoch.
func (s *Server) Epoch() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Upload stores a tensor under key in the current epoch. It fails when
// the object would not fit in device memory — disaggregated servers
// enforce capacity; clients see the refusal and can spill to another
// pool member instead of silently thrashing.
func (s *Server) Upload(key string, t *tensor.Tensor) (*transport.UploadOK, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	newBytes := int64(t.NumBytes())
	after := s.resident + newBytes
	if old, ok := s.store[key]; ok {
		after -= int64(old.Data.NumBytes())
	}
	if s.spec.MemBytes > 0 && after > s.spec.MemBytes {
		return nil, fmt.Errorf("backend: object %q (%d B) exceeds device capacity (%d of %d B resident)",
			key, newBytes, s.resident, s.spec.MemBytes)
	}
	if old, ok := s.store[key]; ok {
		s.resident -= int64(old.Data.NumBytes())
	}
	s.store[key] = Object{Data: t, Epoch: s.epoch}
	s.resident += newBytes
	if s.inst != nil {
		s.inst.uploads.Inc()
	}
	s.syncResidentLocked()
	return &transport.UploadOK{Epoch: s.epoch, Bytes: newBytes}, nil
}

// Lookup fetches a resident object, validating the epoch when epoch != 0.
func (s *Server) Lookup(key string, epoch uint32) (*tensor.Tensor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.store[key]
	if !ok {
		return nil, fmt.Errorf("backend: no resident object %q", key)
	}
	if epoch != 0 && o.Epoch != epoch {
		return nil, fmt.Errorf("backend: object %q is epoch %d, caller expected %d (stale handle)",
			key, o.Epoch, epoch)
	}
	return o.Data, nil
}

// Free drops a resident object (missing keys are a no-op).
func (s *Server) Free(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.store[key]; ok {
		s.resident -= int64(o.Data.NumBytes())
		delete(s.store, key)
	}
	s.syncResidentLocked()
}

// Crash simulates a device/host failure: every resident object is lost
// and the epoch advances, so stale handles held by clients are detected
// on next use.
func (s *Server) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store = make(map[string]Object)
	s.content = nil
	s.resident = 0
	s.epoch++
	if s.inst != nil {
		s.inst.crashes.Inc()
	}
	s.syncResidentLocked()
}

// FailNextExecs arms exec-level fault injection: the next n Exec calls
// return an error without executing.
func (s *Server) FailNextExecs(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failNextExecs = n
}

// SetExecHook installs fn to run at the top of every Exec with the
// 1-based call number; a non-nil return fails the call without
// executing. The hook runs outside the server's mutex, so it may call
// back into the server (chaos plans use this to Crash at exactly call
// N, reproducing a mid-decode backend loss deterministically). Nil
// removes the hook.
func (s *Server) SetExecHook(fn func(call int64) error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.execHook = fn
}

// Stats snapshots server counters.
func (s *Server) Stats() *transport.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &transport.Stats{
		Epoch:         s.epoch,
		ResidentBytes: s.resident,
		ResidentCount: int64(len(s.store)),
		GPUBusyNs:     s.busyNs,
		ExecCalls:     s.execCalls,
	}
}

// ResidentKeys lists the keys of all resident objects — diagnostics for
// tests and operators checking per-request state is released.
func (s *Server) ResidentKeys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]string, 0, len(s.store))
	for k := range s.store {
		keys = append(keys, k)
	}
	return keys
}

// Exec runs a subgraph: binds leaves from inline data or the resident
// store, interprets every node, retains Keep outputs under their keys,
// and returns Want values. Device busy time is accounted from the
// roofline model over node cost hints (real wall-clock of the Go kernels
// is not the experiment's GPU — the model is).
func (s *Server) Exec(x *transport.Exec) (*transport.ExecOK, error) {
	s.mu.Lock()
	if s.failNextExecs > 0 {
		s.failNextExecs--
		s.mu.Unlock()
		return nil, fmt.Errorf("backend: injected exec failure")
	}
	s.execCalls++
	call := s.execCalls
	hook := s.execHook
	if s.inst != nil {
		s.inst.execs.Inc()
	}
	s.mu.Unlock()
	if hook != nil {
		if err := hook(call); err != nil {
			return nil, fmt.Errorf("backend: %w", err)
		}
	}

	if err := x.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("backend: invalid graph: %w", err)
	}
	binds := make(map[string]transport.Binding, len(x.Binds))
	for _, b := range x.Binds {
		binds[b.Ref] = b
	}
	bind := func(op, ref string) (*tensor.Tensor, error) {
		b, ok := binds[ref]
		if !ok {
			// Fall back to a resident object under the ref itself
			// (weights installed once under their param refs).
			return s.Lookup(ref, 0)
		}
		if b.Inline != nil {
			return b.Inline, nil
		}
		return s.Lookup(b.Key, b.Epoch)
	}

	// Ephemeral evaluation: intermediates the client never asked for go
	// back to the scratch arena as soon as their last consumer runs, so
	// per-token decode subgraphs reuse activation buffers across calls.
	need := make(map[srg.NodeID]bool, len(x.Keep)+len(x.Want))
	for id := range x.Keep {
		need[id] = true
	}
	for _, id := range x.Want {
		need[id] = true
	}
	vals, err := exec.GraphEphemeral(x.Graph, bind, need)
	if err != nil {
		return nil, err
	}

	// Account modeled device time across compute nodes.
	var busy int64
	for _, n := range x.Graph.Nodes() {
		if n.Op == "param" || n.Op == "input" {
			continue
		}
		busy += int64(s.spec.KernelTime(n.Cost.FLOPs, n.Cost.Bytes))
	}
	s.mu.Lock()
	s.busyNs += busy
	if s.inst != nil {
		s.inst.gpuBusyNs.Add(busy)
	}
	epoch := s.epoch
	s.mu.Unlock()

	out := &transport.ExecOK{Epoch: epoch, GPUTimeNs: busy, GraphFP: x.Graph.Fingerprint()}
	if len(x.Keep) > 0 {
		out.Kept = make(map[string]int64, len(x.Keep))
		for id, key := range x.Keep {
			t, ok := vals[id]
			if !ok {
				return nil, fmt.Errorf("backend: keep of unknown node %d", id)
			}
			if _, err := s.Upload(key, t); err != nil {
				return nil, err
			}
			out.Kept[key] = int64(t.NumBytes())
		}
	}
	if len(x.Want) > 0 {
		out.Results = make(map[srg.NodeID]*tensor.Tensor, len(x.Want))
		for _, id := range x.Want {
			t, ok := vals[id]
			if !ok {
				return nil, fmt.Errorf("backend: want of unknown node %d", id)
			}
			out.Results[id] = t
		}
	}
	return out, nil
}

// GPUBusyNs returns accumulated modeled device time.
func (s *Server) GPUBusyNs() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.busyNs
}

// ResetAccounting zeroes busy-time and call counters (between experiment
// phases) without touching resident state.
func (s *Server) ResetAccounting() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.busyNs = 0
	s.execCalls = 0
}
