// Package ctxflow is genie-lint test fixture data: every `// want`
// comment is an expected diagnostic. The package pretends to live at
// genie/internal/ctxflow, inside ctxflow's library scope.
package ctxflow

import (
	"context"
	"time"
)

func submit(ctx context.Context, work func(context.Context)) { work(ctx) }

// mintRoot detaches itself from the caller: both root constructors are
// banned in library code.
func mintRoot(work func(context.Context)) {
	work(context.Background()) // want "context.Background\\(\\) in library code"
	work(context.TODO())       // want "context.TODO\\(\\) in library code"
}

// dropped accepts a context and never consults it.
func dropped(ctx context.Context, d time.Duration) { // want "context parameter \"ctx\" is never used"
	time.Sleep(d)
}

// blankCtx spells intent: an underscore parameter is not a finding.
func blankCtx(_ context.Context, d time.Duration) {
	time.Sleep(d)
}

// propagates uses its context; no finding.
func propagates(ctx context.Context, work func(context.Context)) error {
	work(ctx)
	return ctx.Err()
}

// deadlineOnly consults the context without forwarding it; consulting
// counts as use.
func deadlineOnly(ctx context.Context) bool {
	<-ctx.Done()
	return true
}

// ignored carries a justified suppression; the driver honors it and the
// harness expects no diagnostic here.
func ignored(work func(context.Context)) {
	//lint:ignore ctxflow fixture for the directive itself; root context is the point
	work(context.Background())
}
