// Command genie-server runs a disaggregated accelerator backend: it
// answers the Genie wire protocol on a TCP address, holding remote
// resident objects (weights, KV caches) and executing SRG subgraphs
// shipped by clients.
//
// SIGINT/SIGTERM triggers a graceful shutdown: the listener closes (no
// new connections), requests already in flight get their replies, then
// the process exits.
//
// With -metrics-addr set, a second HTTP listener serves GET /metrics
// (Prometheus text: exec/upload counters, GPU-busy time, resident
// bytes) and GET /debug/trace (Chrome trace JSON). Per-RPC spans carry
// the trace/span IDs clients send in frame envelopes, so a gateway's
// trace and the server's stitch into one tree.
//
// Usage:
//
//	genie-server -addr :7009 -device a100-80g -metrics-addr :9009
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"genie/internal/backend"
	"genie/internal/compute"
	"genie/internal/device"
	"genie/internal/obs"
	"genie/internal/quant"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7009", "TCP address to listen on")
	dev := flag.String("device", "a100-80g", "modeled device (a100-80g, h100-80g, a10g-24g, cpu-host)")
	kernelWorkers := flag.Int("kernel-workers", 0,
		"CPU kernel worker-pool width (0 = GOMAXPROCS or GENIE_KERNEL_WORKERS, 1 = serial)")
	metricsAddr := flag.String("metrics-addr", "",
		"HTTP address for GET /metrics and /debug/trace (empty = observability off)")
	traceCap := flag.Int("trace-cap", 4096, "span ring-buffer capacity (oldest spans overwritten)")
	memBytes := flag.Int64("mem-bytes", 0,
		"override the modeled device memory capacity in bytes (0 = device default; "+
			"small values force a pool gateway to shard the model across backends)")
	quantMode := flag.String("quant", "off",
		"weight quantization policy applied at upload admission: off, int8, f16 "+
			"(rank-2 f32 tensors under *.w keys are stored in the cheap dtype)")
	wireCompress := flag.Bool("wire-compress", true,
		"offer wire features (compression, dedup, delta uploads) to clients that negotiate; "+
			"false pins every connection to the legacy byte-identical protocol")
	flag.Parse()

	qm, err := quant.ParseMode(*quantMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	spec, err := device.ByName(*dev)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *memBytes > 0 {
		spec.MemBytes = *memBytes
	}
	if *kernelWorkers > 0 {
		compute.Configure(*kernelWorkers)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("genie-server: %v", err)
	}
	log.Printf("genie-server: %s backend listening on %s (%d kernel workers)",
		spec.Name, l.Addr(), compute.Workers())
	srv := backend.NewServer(spec)
	srv.SetQuantPolicy(qm)
	if !*wireCompress {
		srv.SetWireFeatures(0)
	}

	if *metricsAddr != "" {
		reg := obs.NewRegistry()
		srv.Instrument(reg)
		tracer := obs.NewTracer(obs.TracerConfig{Proc: "server", Capacity: *traceCap})
		defer tracer.Stop()
		srv.SetTracer(tracer)
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg)
		mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = obs.WriteChromeTrace(w, tracer.Snapshot())
		})
		go func() {
			if err := http.ListenAndServe(*metricsAddr, mux); err != nil {
				log.Printf("genie-server: metrics listener: %v", err)
			}
		}()
		log.Printf("genie-server: metrics on http://%s/metrics", *metricsAddr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		log.Printf("genie-server: %s, draining (in-flight requests finish, then exit)", sig)
		_ = l.Close() // stop accepting
		srv.Drain()   // close idle conns; busy conns finish their reply
	}()

	// Listen returns only after every per-connection Serve loop exits.
	if err := srv.Listen(l); err != nil {
		log.Fatalf("genie-server: %v", err)
	}
	log.Printf("genie-server: drained, exiting")
}
