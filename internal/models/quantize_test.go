package models

import (
	"math"
	"math/rand"
	"testing"

	"genie/internal/exec"
	"genie/internal/quant"
	"genie/internal/tensor"
)

// runPrefillLogits executes a prefill graph end-to-end and returns the
// final-position logits row.
func runPrefillLogits(t *testing.T, m *GPT, prompt []int64) []float32 {
	t.Helper()
	b, out := m.BuildPrefill(prompt)
	vals, err := exec.Graph(b.Graph(), bindAll(b))
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	logits := vals[out.LastLogits]
	got := make([]float32, logits.NumElements())
	copy(got, logits.F32())
	return got
}

func TestQuantizeInt8EndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := NewGPT(rng, TinyGPT)
	rng = rand.New(rand.NewSource(7))
	q := NewGPT(rng, TinyGPT)
	if err := Quantize(q, quant.Int8); err != nil {
		t.Fatal(err)
	}
	if got := q.Head.W.DType(); got != tensor.I8 {
		t.Fatalf("head weight dtype = %v, want i8", got)
	}
	if got := q.Blocks[0].MLP.FC.W.DType(); got != tensor.I8 {
		t.Fatalf("mlp fc weight dtype = %v, want i8", got)
	}
	prompt := []int64{1, 2, 3}
	want := runPrefillLogits(t, ref, prompt)
	got := runPrefillLogits(t, q, prompt)
	// Quantization error compounds through layers; the tiny model's
	// logits should still track f32 closely in an RMS sense.
	var num, den float64
	for i := range want {
		d := float64(got[i] - want[i])
		num += d * d
		den += float64(want[i]) * float64(want[i])
	}
	if rel := math.Sqrt(num) / (math.Sqrt(den) + 1e-12); rel > 0.15 {
		t.Fatalf("relative logits error %.4f too large for int8", rel)
	}
}

func TestQuantizeF16EndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := NewGPT(rng, TinyGPT)
	rng = rand.New(rand.NewSource(7))
	h := NewGPT(rng, TinyGPT)
	if err := Quantize(h, quant.F16); err != nil {
		t.Fatal(err)
	}
	if got := h.Blocks[0].Attn.WQ.W.DType(); got != tensor.F16 {
		t.Fatalf("attn wq weight dtype = %v, want f16", got)
	}
	prompt := []int64{4, 5}
	want := runPrefillLogits(t, ref, prompt)
	got := runPrefillLogits(t, h, prompt)
	for i := range want {
		if d := math.Abs(float64(got[i] - want[i])); d > 0.05 {
			t.Fatalf("logit %d: f16 drift %.5f", i, d)
		}
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewGPT(rng, TinyGPT)
	if err := Quantize(m, quant.Int8); err != nil {
		t.Fatal(err)
	}
	w := m.Head.W
	if err := Quantize(m, quant.Int8); err != nil {
		t.Fatal(err)
	}
	if m.Head.W != w {
		t.Fatal("second Quantize pass should leave converted weights untouched")
	}
	if err := Quantize(m, quant.Off); err != nil {
		t.Fatal(err)
	}
	if m.Head.W != w {
		t.Fatal("Off mode must be a no-op")
	}
}
