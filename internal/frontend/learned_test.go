package frontend

import (
	"math/rand"
	"testing"

	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/tensor"
)

func decodeGraphSeed(t *testing.T, seed int64, hist int) *srg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := models.NewGPT(rng, models.TinyGPT)
	caches := make([]*nn.KVCache, m.Cfg.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{
			K: tensor.New(tensor.F32, hist, m.Cfg.Dim),
			V: tensor.New(tensor.F32, hist, m.Cfg.Dim),
		}
	}
	b, _ := m.BuildDecodeStep(1, hist, hist, caches)
	return b.Graph()
}

func prefillGraphSeed(t *testing.T, seed int64, n int) *srg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := models.NewGPT(rng, models.TinyGPT)
	prompt := make([]int64, n)
	for i := range prompt {
		prompt[i] = int64(i % models.TinyGPT.Vocab)
	}
	b, _ := m.BuildPrefill(prompt)
	return b.Graph()
}

func cnnGraphSeed(t *testing.T, seed int64) *srg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := models.NewCNN(rng, models.TinyCNN)
	b, _ := m.BuildForward(tensor.New(tensor.F32, 3, 32, 32))
	return b.Graph()
}

func trainRecognizer(t *testing.T) *LearnedRecognizer {
	t.Helper()
	r := &LearnedRecognizer{}
	err := r.Train(map[srg.Phase][]*srg.Graph{
		srg.PhaseLLMDecode: {
			decodeGraphSeed(t, 1, 4), decodeGraphSeed(t, 2, 9),
		},
		srg.PhaseLLMPrefill: {
			prefillGraphSeed(t, 3, 6), prefillGraphSeed(t, 4, 12),
		},
		srg.PhaseCVStage: {
			cnnGraphSeed(t, 5),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestLearnedClassifiesHeldOutGraphs(t *testing.T) {
	r := trainRecognizer(t)
	cases := []struct {
		name string
		g    *srg.Graph
		want srg.Phase
	}{
		{"decode-unseen-hist", decodeGraphSeed(t, 99, 17), srg.PhaseLLMDecode},
		{"prefill-unseen-len", prefillGraphSeed(t, 98, 20), srg.PhaseLLMPrefill},
		{"cnn-unseen-seed", cnnGraphSeed(t, 97), srg.PhaseCVStage},
	}
	for _, c := range cases {
		phase, dist, ok := r.Classify(c.g)
		if !ok {
			t.Fatalf("%s: classifier untrained", c.name)
		}
		if phase != c.want {
			t.Errorf("%s: classified as %q (dist %.3f), want %q", c.name, phase, dist, c.want)
		}
	}
}

func TestLearnedRecognizerTagsUntaggedGraph(t *testing.T) {
	r := trainRecognizer(t)
	g := decodeGraphSeed(t, 77, 6)
	n := r.Apply(g)
	if n == 0 {
		t.Fatal("learned recognizer abstained on an in-distribution graph")
	}
	for _, node := range g.Nodes() {
		if node.Op != "param" && node.Op != "input" && node.Phase != srg.PhaseLLMDecode {
			t.Fatalf("node %d tagged %q", node.ID, node.Phase)
		}
	}
}

func TestLearnedRecognizerAbstainsFarFromCentroids(t *testing.T) {
	r := trainRecognizer(t)
	r.MaxDistance = 0.05 // very strict
	// A plain elementwise graph resembles nothing in training.
	g := srg.New("alien")
	in := g.MustAdd(&srg.Node{Op: "input", Ref: "x", Output: srg.TensorMeta{Shape: []int{4}}})
	a := g.MustAdd(&srg.Node{Op: "mul", Inputs: []srg.NodeID{in, in}})
	g.MustAdd(&srg.Node{Op: "sub", Inputs: []srg.NodeID{a, in}})
	if n := r.Apply(g); n != 0 {
		t.Errorf("recognizer tagged %d nodes of an alien graph", n)
	}
}

func TestLearnedRespectsExistingTags(t *testing.T) {
	r := trainRecognizer(t)
	g := decodeGraphSeed(t, 66, 5)
	AnnotatePhase(g, "gpt.blocks.0", srg.PhaseLLMPrefill) // explicit, odd
	r.Apply(g)
	for _, node := range g.Nodes() {
		if node.Module == "gpt.blocks.0.ln1" && node.Phase != srg.PhaseLLMPrefill {
			t.Error("learned recognizer overwrote an explicit tag")
		}
	}
}

func TestLearnedInAnnotationPipeline(t *testing.T) {
	// AnnotateWith composes the learned recognizer with edge passes.
	r := trainRecognizer(t)
	g := decodeGraphSeed(t, 55, 8)
	rep := AnnotateWith(g, []Recognizer{r})
	if rep.Tagged["learned"] == 0 {
		t.Error("pipeline did not run the learned recognizer")
	}
	if len(rep.Phases) == 0 {
		t.Error("no phases after learned annotation")
	}
}

func TestTrainValidation(t *testing.T) {
	r := &LearnedRecognizer{}
	if err := r.Train(nil); err == nil {
		t.Error("empty training set should fail")
	}
	if err := r.Train(map[srg.Phase][]*srg.Graph{srg.PhaseLLMDecode: {}}); err == nil {
		t.Error("phase without examples should fail")
	}
	if _, _, ok := r.Classify(srg.New("x")); ok {
		t.Error("untrained classifier should not classify")
	}
}

func TestFeaturesStable(t *testing.T) {
	g := decodeGraphSeed(t, 1, 4)
	f1 := Features(g)
	f2 := Features(g)
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("features must be deterministic")
		}
	}
	// Feature vector dimension is vocabulary + structural.
	if len(f1) != len(featureVocab)+numStructural {
		t.Errorf("feature dim %d", len(f1))
	}
	// Histogram entries normalized.
	for i := 0; i < len(featureVocab); i++ {
		if f1[i] < 0 || f1[i] > 1 {
			t.Errorf("feature %d = %v out of [0,1]", i, f1[i])
		}
	}
}
