package models

import (
	"fmt"

	"genie/internal/nn"
	"genie/internal/quant"
	"genie/internal/tensor"
)

// Quantize rewrites the model's matmul weights for the raw-speed tier
// (ROADMAP item 2, DESIGN.md §11): int8 mode replaces each Linear's W
// with a per-column symmetric-quantized tensor (axis 1, matching the
// kernel contract in ops.MatMul), f16 mode with a half-precision copy.
//
// Embeddings, layernorms, and biases stay f32 — they are gather/axpy
// operands, not GEMM panels, and carry a negligible share of the bytes.
// Already-converted weights are skipped, so Quantize is idempotent and
// safe to call on a model that is partially quantized after a prior
// failed pass.
func Quantize(m *GPT, mode quant.Mode) error {
	if mode == quant.Off {
		return nil
	}
	for i, bl := range m.Blocks {
		for _, l := range []*nn.Linear{bl.Attn.WQ, bl.Attn.WK, bl.Attn.WV, bl.Attn.WO, bl.MLP.FC, bl.MLP.Proj} {
			if err := quantizeLinear(l, mode); err != nil {
				return fmt.Errorf("models: quantize block %d: %w", i, err)
			}
		}
	}
	if err := quantizeLinear(m.Head, mode); err != nil {
		return fmt.Errorf("models: quantize head: %w", err)
	}
	return nil
}

func quantizeLinear(l *nn.Linear, mode quant.Mode) error {
	if l.W.DType() != tensor.F32 {
		return nil
	}
	switch mode {
	case quant.Int8:
		q, err := quant.QuantizeLinear(l.W, 1)
		if err != nil {
			return err
		}
		l.W = q
	case quant.F16:
		l.W = l.W.ToF16()
	}
	return nil
}
