package transport

import (
	"bytes"
	"math/rand"
	"testing"

	"genie/internal/srg"
	"genie/internal/tensor"
)

func benchTensor(dt tensor.DType, dims ...int) *tensor.Tensor {
	t := tensor.New(tensor.F32, dims...)
	t.RandN(rand.New(rand.NewSource(3)), 1)
	switch dt {
	case tensor.F32:
		return t
	case tensor.F16:
		return t.ToF16()
	}
	panic("unsupported bench dtype")
}

func benchExec() *Exec {
	g := srg.New("bench")
	a := g.MustAdd(&srg.Node{Op: "input", Ref: "x",
		Output: srg.TensorMeta{Shape: []int{4, 64}}})
	w := g.MustAdd(&srg.Node{Op: "param", Ref: "m.w",
		Output: srg.TensorMeta{Shape: []int{64, 64}}})
	out := g.MustAdd(&srg.Node{Op: "matmul", Inputs: []srg.NodeID{a, w},
		Output: srg.TensorMeta{Shape: []int{4, 64}}})
	return &Exec{
		Graph: g,
		Binds: []Binding{
			{Ref: "x", Inline: benchTensor(tensor.F32, 4, 64)},
			{Ref: "m.w", Key: "m.w", Epoch: 1},
		},
		Keep: map[srg.NodeID]string{out: "kept"},
		Want: []srg.NodeID{out},
	}
}

func TestPooledEncodingsMatchUnpooled(t *testing.T) {
	u := &Upload{Key: "model.block0.attn.wq.w", Data: benchTensor(tensor.F32, 32, 48)}
	pu := EncodeUploadPooled(u)
	if !bytes.Equal(pu, EncodeUpload(u)) {
		t.Error("pooled upload encoding differs from unpooled")
	}
	ReleaseEncoded(pu)

	q, err := quantizeForTest(benchTensor(tensor.F32, 16, 24))
	if err != nil {
		t.Fatal(err)
	}
	uq := &Upload{Key: "q.w", Data: q}
	pq := EncodeUploadPooled(uq)
	if !bytes.Equal(pq, EncodeUpload(uq)) {
		t.Error("pooled quantized upload encoding differs from unpooled")
	}
	ReleaseEncoded(pq)

	x := benchExec()
	x.Binds = append(x.Binds,
		Binding{Ref: "h", Hash: [HashSize]byte{1, 2, 3}},
		Binding{Ref: "c", Inline: benchTensor(tensor.F32, 2, 2), Cache: true})
	px, err := EncodeExecPooled(x)
	if err != nil {
		t.Fatal(err)
	}
	ux, err := EncodeExec(x)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(px, ux) {
		t.Error("pooled exec encoding differs from unpooled")
	}
	ReleaseEncoded(px)
}

// quantizeForTest builds an I8 tensor with scales without importing the
// quant package (transport must stay below it in the dependency order).
func quantizeForTest(w *tensor.Tensor) (*tensor.Tensor, error) {
	rows, cols := w.Shape()[0], w.Shape()[1]
	q := tensor.New(tensor.I8, rows, cols)
	qd, f := q.I8(), w.F32()
	scales := make([]float32, cols)
	for j := 0; j < cols; j++ {
		scales[j] = 0.01
	}
	for i := range f {
		qd[i] = int8(f[i] * 100)
	}
	return q, q.AttachScales(1, scales)
}

// TestEncodeUploadPooledReuses is the allocation regression guard for
// the upload encode path: steady-state pooled encodes must reuse
// scratch, not grow the heap per call.
func TestEncodeUploadPooledReuses(t *testing.T) {
	u := &Upload{Key: "w", Data: benchTensor(tensor.F32, 64, 64)}
	ReleaseEncoded(EncodeUploadPooled(u)) // warm the size class
	before := EncPoolStats()
	for i := 0; i < 50; i++ {
		ReleaseEncoded(EncodeUploadPooled(u))
	}
	after := EncPoolStats()
	if got := after.Allocs - before.Allocs; got != 0 {
		t.Errorf("steady-state upload encode allocated %d pool buffers, want 0", got)
	}
	if got := after.Reuses - before.Reuses; got < 50 {
		t.Errorf("steady-state upload encode reused %d buffers, want >= 50", got)
	}
	n := testing.AllocsPerRun(100, func() {
		ReleaseEncoded(EncodeUploadPooled(u))
	})
	if n > 1 {
		t.Errorf("upload encode allocates %.1f objects/op, want <= 1", n)
	}
}

func BenchmarkEncodeUpload(b *testing.B) {
	u := &Upload{Key: "model.block0.mlp.fc.w", Data: benchTensor(tensor.F32, 256, 1024)}
	b.SetBytes(int64(256 * 1024 * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = EncodeUpload(u)
	}
}

func BenchmarkEncodeUploadPooled(b *testing.B) {
	u := &Upload{Key: "model.block0.mlp.fc.w", Data: benchTensor(tensor.F32, 256, 1024)}
	b.SetBytes(int64(256 * 1024 * 4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ReleaseEncoded(EncodeUploadPooled(u))
	}
}

func BenchmarkEncodeExecPooled(b *testing.B) {
	x := benchExec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := EncodeExecPooled(x)
		if err != nil {
			b.Fatal(err)
		}
		ReleaseEncoded(p)
	}
}
