package analysis

// The fixture harness: testdata packages carry `// want "regexp"`
// comments on the lines where an analyzer must report, in the style of
// golang.org/x/tools' analysistest (reimplemented here to keep the
// module dependency-free). Every diagnostic must match a want on its
// line and every want must be matched — missing and unexpected findings
// both fail, so the fixtures pin positives AND negatives.

import (
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type wantExpectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// loadFixture loads one testdata package through the real loader and
// returns it with the loader, so callers can build a Program over
// everything the load pulled in (the fixture plus its stand-in
// dependency packages).
func loadFixture(t *testing.T, relDir string) (*Package, *Loader) {
	t.Helper()
	if testing.Short() {
		t.Skip("fixture loading type-checks the stdlib from source; skipped with -short")
	}
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join(modRoot, filepath.FromSlash(relDir)))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range pkg.Errs {
		t.Errorf("fixture %s: %v", relDir, e)
	}
	if t.Failed() {
		t.FailNow()
	}
	return pkg, loader
}

// runWantTest applies one analyzer (with ignore directives and the
// interprocedural Program, as the driver would) and diffs the
// diagnostics against the want comments.
func runWantTest(t *testing.T, analyzerName, relDir string) {
	t.Helper()
	pkg, loader := loadFixture(t, relDir)
	var analyzer *Analyzer
	for _, a := range Analyzers() {
		if a.Name == analyzerName {
			analyzer = a
		}
	}
	if analyzer == nil {
		t.Fatalf("no analyzer %q", analyzerName)
	}
	prog := BuildProgram(loader.Packages())
	diags := applyIgnores(RunAnalyzer(analyzer, pkg, prog), collectIgnores(pkg.Fset, pkg.Files))
	wants := parseWants(t, pkg)

	for _, d := range diags {
		if !claimWant(wants, d) {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.File), d.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("missing diagnostic at %s:%d: want match for %q",
				filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// claimWant consumes the first unmatched expectation matching d.
func claimWant(wants []*wantExpectation, d Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts every `// want "..."` comment in the package.
func parseWants(t *testing.T, pkg *Package) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				quoted := quotedRE.FindAllStringSubmatch(m[1], -1)
				if len(quoted) == 0 {
					t.Fatalf("%s:%d: want comment with no quoted pattern", pos.Filename, pos.Line)
				}
				for _, q := range quoted {
					pattern, err := strconv.Unquote(`"` + q[1] + `"`)
					if err != nil {
						t.Fatalf("%s:%d: bad want quoting %q: %v", pos.Filename, pos.Line, q[1], err)
					}
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pattern, err)
					}
					wants = append(wants, &wantExpectation{
						file: pos.Filename, line: pos.Line, re: re, raw: q[1],
					})
				}
			}
		}
	}
	return wants
}

// fixtureDir maps an analyzer fixture name to its testdata directory.
func fixtureDir(parts ...string) string {
	return filepath.ToSlash(filepath.Join(append([]string{"internal", "analysis", "testdata", "src"}, parts...)...))
}

// assertFixtureScoped guards the invariant scope mapping depends on:
// a fixture package under testdata/src must pretend to live at the
// mapped genie/... path.
func assertFixtureScoped(t *testing.T, pkg *Package, wantScope string) {
	t.Helper()
	if got := pkg.ScopePath(); got != wantScope {
		t.Fatalf("fixture scope path = %q, want %q", got, wantScope)
	}
}
