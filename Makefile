# Genie build/test entry points. `make check` is the gate every change
# must pass: full build, vet, genie-lint (the domain-specific analyzers
# in internal/analysis), and the test suite under the race detector
# (the serving engine is aggressively concurrent). `make test-short`
# is the fast inner loop.

GO ?= go

.PHONY: all build vet lint test test-short race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/genie-lint ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

check: build vet lint race

bench:
	$(GO) run ./cmd/genie-bench
