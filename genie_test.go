package genie

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"genie/internal/transport"
)

// TestPublicAPIQuickstart mirrors examples/quickstart: capture, annotate,
// schedule, and execute through the exported facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	b := NewBuilder("quickstart")
	x := b.Input("x", FromF32(Shape{2, 4}, []float32{1, 2, 3, 4, 5, 6, 7, 8}))
	w := b.Param("w", NewTensor(F32, 4, 3))
	y := b.Softmax(b.MatMul(x, w))
	b.MarkOutput(y)
	_ = x
	_ = w

	rep := Annotate(b.Graph())
	_ = rep

	pool := NewCluster()
	if err := pool.AddAccelerator(&Accelerator{
		ID: "gpu0", Spec: A100,
		Link: Link{Bandwidth: 25e9 / 8, RTT: time.Millisecond},
	}); err != nil {
		t.Fatal(err)
	}
	plan, err := Schedule(b.Graph(), pool, SemanticsAware{}, NewCostModel(RDMAProfile))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Policy != "semantics_aware" || plan.Estimate <= 0 {
		t.Errorf("plan %+v", plan)
	}
}

// TestPublicAPIRemoteGeneration drives the full disaggregated LLM path
// through the facade: server, dial, generate under two modes, compare.
func TestPublicAPIRemoteGeneration(t *testing.T) {
	srv := NewServer(A100)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = Serve(srv, l) }()

	gen := func(mode Mode) []int64 {
		t.Helper()
		client, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer client.Close()
		rng := rand.New(rand.NewSource(2024))
		runner := &LLMRunner{
			Model:    NewGPTModel(rng, TinyGPT),
			EP:       client,
			Counters: client.Conn().Counters(),
		}
		res, err := runner.Generate(mode, []int64{4, 8, 15, 16, 23, 42}, 4)
		if err != nil {
			t.Fatal(err)
		}
		return res.Tokens
	}

	local := gen(ModeLocal)
	sem := gen(ModeSemAware)
	for i := range local {
		if local[i] != sem[i] {
			t.Fatalf("mode outputs diverge: %v vs %v", local, sem)
		}
	}
}

func TestAnnotatePhaseHook(t *testing.T) {
	b := NewBuilder("hooked")
	var y Value
	b.InModule("decoder", func() {
		x := b.Input("x", NewTensor(F32, 1, 4))
		y = b.ReLU(x)
	})
	b.MarkOutput(y)
	if n := AnnotatePhase(b.Graph(), "decoder", PhaseLLMDecode); n == 0 {
		t.Fatal("hook matched nothing")
	}
	if b.Graph().Node(y.ID()).Phase != PhaseLLMDecode {
		t.Error("phase not applied")
	}
	if err := AnnotateResidency(b.Graph(), "decoder.x", ResidencyStatefulKVCache); err != nil {
		t.Fatal(err)
	}
}

// TestExecutionAttestationCatchesTampering runs a man-in-the-middle that
// rewrites the shipped graph (halving a scale factor) before forwarding
// it to a real backend. Plain Exec returns the tampered result silently;
// ExecVerified detects the fingerprint mismatch and refuses it — the §5
// "verifiable computation" hook.
func TestExecutionAttestationCatchesTampering(t *testing.T) {
	srv := NewServer(A100)
	backendL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer backendL.Close()
	go func() { _ = Serve(srv, backendL) }()

	// The MITM proxy: decode Exec frames, mutate the graph, re-encode.
	proxyL, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxyL.Close()
	go func() {
		for {
			raw, err := proxyL.Accept()
			if err != nil {
				return
			}
			go func() {
				in := transport.NewConn(raw, nil, nil)
				defer in.Close()
				upstream, err := transport.Dial(backendL.Addr().String(), nil, nil)
				if err != nil {
					return
				}
				defer upstream.Close()
				for {
					mt, payload, err := in.Recv()
					if err != nil {
						return
					}
					if mt == transport.MsgExec {
						if x, err := transport.DecodeExec(payload); err == nil {
							for _, n := range x.Graph.Nodes() {
								if n.Op == "scale" {
									n.Attrs["s"] = "1" // tamper: neutralize the scale
								}
							}
							if p2, err := transport.EncodeExec(x); err == nil {
								payload = p2
							}
						}
					}
					rt, rp, err := upstream.Call(mt, payload)
					if err != nil {
						return
					}
					if err := in.Send(rt, rp); err != nil {
						return
					}
				}
			}()
		}
	}()

	client, err := Dial(proxyL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	b := NewBuilder("attested")
	x := b.Input("x", FromF32(Shape{2}, []float32{1, 2}))
	y := b.Scale(x, 10)
	b.MarkOutput(y)
	xt, _ := b.InputData("x")
	ex := &transport.Exec{
		Graph: b.Graph(),
		Binds: []transport.Binding{{Ref: "x", Inline: xt}},
		Want:  []NodeID{y.ID()},
	}

	// Unverified: the tampered result comes back silently wrong.
	ok, err := client.Exec(ex)
	if err != nil {
		t.Fatal(err)
	}
	if got := ok.Results[y.ID()].F32()[0]; got != 1 {
		t.Fatalf("expected tampered result 1, got %v (proxy not in path?)", got)
	}

	// Verified: the attestation mismatch is detected.
	if _, err := client.ExecVerified(ex); err == nil {
		t.Fatal("ExecVerified accepted a tampered execution")
	}

	// Direct connection: verification passes and the result is correct.
	direct, err := Dial(backendL.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	ok2, err := direct.ExecVerified(ex)
	if err != nil {
		t.Fatal(err)
	}
	if got := ok2.Results[y.ID()].F32()[0]; got != 10 {
		t.Errorf("direct verified result %v, want 10", got)
	}
}
