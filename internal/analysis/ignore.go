package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	check  string // check ID or "all"
	file   string
	line   int
	broken string // non-empty = malformed, holds the complaint
	pos    token.Pos
}

const directivePrefix = "lint:ignore"

// collectIgnores parses every //lint:ignore directive in the package.
// The format is
//
//	//lint:ignore <check> <reason>
//
// and the directive suppresses matching diagnostics on its own line
// (trailing comment) or the line directly below (standalone comment).
// A missing check or reason makes the directive malformed, which the
// driver reports as a finding of its own — silent broad suppressions
// are exactly the failure mode this tool exists to prevent.
func collectIgnores(fset *token.FileSet, files []*ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := ignoreDirective{file: pos.Filename, line: pos.Line, pos: c.Pos()}
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					d.broken = "missing check ID and reason"
				case len(fields) == 1:
					d.broken = "missing reason (format: //lint:ignore <check> <reason>)"
				default:
					d.check = fields[0]
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyIgnores filters diags through the directives and appends a
// diagnostic (check "lint") for every malformed directive.
func applyIgnores(diags []Diagnostic, directives []ignoreDirective) []Diagnostic {
	type key struct {
		file  string
		line  int
		check string
	}
	suppressed := make(map[key]bool)
	var out []Diagnostic
	for _, d := range directives {
		if d.broken != "" {
			out = append(out, Diagnostic{
				Check: "lint", File: d.file, Line: d.line, Col: 1,
				Message: "malformed //lint:ignore directive: " + d.broken,
			})
			continue
		}
		for _, line := range []int{d.line, d.line + 1} {
			suppressed[key{d.file, line, d.check}] = true
		}
	}
	for _, diag := range diags {
		if suppressed[key{diag.File, diag.Line, diag.Check}] || suppressed[key{diag.File, diag.Line, "all"}] {
			continue
		}
		out = append(out, diag)
	}
	return out
}
