// Package workload generates deterministic request streams for the
// evaluation: LLM serving traces (prompt + decode lengths, arrivals),
// vision batches, recommendation queries with Zipf-skewed (hot/cold)
// embedding access, and multi-tenant mixes for the global scheduler.
// Everything is seeded — reruns are bit-identical.
package workload

import (
	"math/rand"
	"sort"
	"time"
)

// LLMRequest is one serving request.
type LLMRequest struct {
	Prompt  []int64
	Decode  int
	Arrival time.Duration
}

// LLMTrace parameterizes a serving trace.
type LLMTrace struct {
	Requests  int
	Vocab     int
	PromptMin int
	PromptMax int
	DecodeMin int
	DecodeMax int
	// MeanInterarrival spaces arrivals (exponential); 0 = all at t=0.
	MeanInterarrival time.Duration
}

// Generate materializes the trace.
func (t LLMTrace) Generate(seed int64) []LLMRequest {
	rng := rand.New(rand.NewSource(seed))
	out := make([]LLMRequest, t.Requests)
	var clock time.Duration
	for i := range out {
		plen := t.PromptMin
		if t.PromptMax > t.PromptMin {
			plen += rng.Intn(t.PromptMax - t.PromptMin + 1)
		}
		prompt := make([]int64, plen)
		for j := range prompt {
			prompt[j] = int64(rng.Intn(t.Vocab))
		}
		dec := t.DecodeMin
		if t.DecodeMax > t.DecodeMin {
			dec += rng.Intn(t.DecodeMax - t.DecodeMin + 1)
		}
		if t.MeanInterarrival > 0 {
			clock += time.Duration(rng.ExpFloat64() * float64(t.MeanInterarrival))
		}
		out[i] = LLMRequest{Prompt: prompt, Decode: dec, Arrival: clock}
	}
	return out
}

// PoissonArrivals generates an open-loop arrival schedule: n arrival
// offsets whose inter-arrival gaps are exponential with the given rate
// (arrivals per second). Open-loop means the schedule is fixed up front
// — arrivals do not wait for earlier requests to finish, so an overloaded
// server sees queue growth instead of implicit backpressure. The same
// seed yields the same trace; both the gateway load test and the online
// serving evaluation replay these schedules.
func PoissonArrivals(seed int64, rate float64, n int) []time.Duration {
	out := make([]time.Duration, n)
	if rate <= 0 {
		return out // all at t=0
	}
	rng := rand.New(rand.NewSource(seed))
	mean := float64(time.Second) / rate
	var clock time.Duration
	for i := range out {
		clock += time.Duration(rng.ExpFloat64() * mean)
		out[i] = clock
	}
	return out
}

// VisionRequest is one image-classification request.
type VisionRequest struct {
	// Image is [c, h, w] pixel data in [0,1).
	Image   []float32
	C, H, W int
	Arrival time.Duration
}

// VisionTrace parameterizes a CV batch.
type VisionTrace struct {
	Requests         int
	Channels, Size   int
	MeanInterarrival time.Duration
}

// Generate materializes the trace.
func (t VisionTrace) Generate(seed int64) []VisionRequest {
	rng := rand.New(rand.NewSource(seed))
	out := make([]VisionRequest, t.Requests)
	var clock time.Duration
	for i := range out {
		img := make([]float32, t.Channels*t.Size*t.Size)
		for j := range img {
			img[j] = rng.Float32()
		}
		if t.MeanInterarrival > 0 {
			clock += time.Duration(rng.ExpFloat64() * float64(t.MeanInterarrival))
		}
		out[i] = VisionRequest{Image: img, C: t.Channels, H: t.Size, W: t.Size, Arrival: clock}
	}
	return out
}

// RecRequest is one recommendation query: per-table sparse id bags plus
// dense features.
type RecRequest struct {
	Dense   []float32
	Sparse  [][]int64
	Arrival time.Duration
}

// RecTrace parameterizes recommendation traffic with Zipf-skewed ids —
// the hot/cold embedding structure that motivates tiering (Table 1).
type RecTrace struct {
	Requests      int
	DenseFeatures int
	TableRows     []int
	IDsPerTable   int
	// ZipfS is the skew exponent (>1); larger = hotter head.
	ZipfS            float64
	MeanInterarrival time.Duration
}

// Generate materializes the trace.
func (t RecTrace) Generate(seed int64) []RecRequest {
	rng := rand.New(rand.NewSource(seed))
	s := t.ZipfS
	if s <= 1 {
		s = 1.2
	}
	zipfs := make([]*rand.Zipf, len(t.TableRows))
	for i, rows := range t.TableRows {
		zipfs[i] = rand.NewZipf(rng, s, 1, uint64(rows-1))
	}
	out := make([]RecRequest, t.Requests)
	var clock time.Duration
	for i := range out {
		dense := make([]float32, t.DenseFeatures)
		for j := range dense {
			dense[j] = rng.Float32()
		}
		sparse := make([][]int64, len(t.TableRows))
		for ti := range sparse {
			ids := make([]int64, t.IDsPerTable)
			for j := range ids {
				ids[j] = int64(zipfs[ti].Uint64())
			}
			sparse[ti] = ids
		}
		if t.MeanInterarrival > 0 {
			clock += time.Duration(rng.ExpFloat64() * float64(t.MeanInterarrival))
		}
		out[i] = RecRequest{Dense: dense, Sparse: sparse, Arrival: clock}
	}
	return out
}

// HotSetFraction computes, for a trace, the fraction of accesses that
// hit the hottest `fraction` of rows — the tiering opportunity metric.
func HotSetFraction(reqs []RecRequest, tableRows []int, fraction float64) float64 {
	if len(reqs) == 0 || len(tableRows) == 0 {
		return 0
	}
	hits, total := 0, 0
	for _, r := range reqs {
		for ti, ids := range r.Sparse {
			cut := int64(float64(tableRows[ti]) * fraction)
			for _, id := range ids {
				total++
				if id < cut {
					hits++
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// TenantSpec describes one tenant in a multi-tenant mix.
type TenantSpec struct {
	Name string
	// Class selects the workload family: "llm", "vision",
	// "recommendation", or "multimodal".
	Class string
	// Interactive marks latency-sensitive tenants (vs batch).
	Interactive bool
	// Requests in the mix window.
	Requests int
}

// MixTrace generates a deterministic multi-tenant arrival schedule: a
// merged, time-ordered list of (tenant, arrival) pairs the global
// scheduler consumes.
type MixTrace struct {
	Tenants          []TenantSpec
	MeanInterarrival time.Duration
}

// MixArrival is one request in the merged schedule.
type MixArrival struct {
	Tenant      string
	Class       string
	Interactive bool
	Arrival     time.Duration
}

// Generate materializes the merged schedule, sorted by arrival.
func (m MixTrace) Generate(seed int64) []MixArrival {
	rng := rand.New(rand.NewSource(seed))
	var out []MixArrival
	for _, t := range m.Tenants {
		var clock time.Duration
		for i := 0; i < t.Requests; i++ {
			if m.MeanInterarrival > 0 {
				clock += time.Duration(rng.ExpFloat64() * float64(m.MeanInterarrival))
			}
			out = append(out, MixArrival{
				Tenant: t.Name, Class: t.Class,
				Interactive: t.Interactive, Arrival: clock,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Arrival != out[j].Arrival {
			return out[i].Arrival < out[j].Arrival
		}
		return out[i].Tenant < out[j].Tenant
	})
	return out
}
