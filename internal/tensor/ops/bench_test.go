package ops

import (
	"fmt"
	"math/rand"
	"testing"

	"genie/internal/compute"
)

// Kernel microbenchmarks (run via `make bench-kernels`). The *Naive
// variants keep the pre-tiling textbook kernels alive as the before
// side of the EXPERIMENTS.md comparison; the plain variants measure the
// production path (tiled + pooled + scratch-arena outputs).

// benchNaiveMatmul is a verbatim copy of the kernel this PR replaced:
// ikj loop with the zero-skip branch, heap-allocated output.
func benchNaiveMatmul(a, b []float32, m, k, n int) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		orow := out[i*n : (i+1)*n]
		for kk := 0; kk < k; kk++ {
			av := arow[kk]
			if av == 0 {
				continue
			}
			brow := b[kk*n : (kk+1)*n]
			for j := range brow {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

func benchMatMulSize(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, m, k)
	y := randTensor(rng, k, n)
	b.ReportAllocs()
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := MatMul(x, y)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

func BenchmarkMatMul64(b *testing.B)  { benchMatMulSize(b, 64, 64, 64) }
func BenchmarkMatMul256(b *testing.B) { benchMatMulSize(b, 256, 256, 256) }
func BenchmarkMatMul512(b *testing.B) { benchMatMulSize(b, 512, 512, 512) }

// BenchmarkMatMul256Serial pins the pool at width 1 — the parallel
// speedup on a multi-core host is BenchmarkMatMul256Serial /
// BenchmarkMatMul256.
func BenchmarkMatMul256Serial(b *testing.B) {
	p := compute.NewPool(1)
	old := compute.SetDefault(p)
	defer func() {
		compute.SetDefault(old)
		p.Stop()
	}()
	benchMatMulSize(b, 256, 256, 256)
}

func benchNaiveSize(b *testing.B, m, k, n int) {
	rng := rand.New(rand.NewSource(1))
	x := randTensor(rng, m, k)
	y := randTensor(rng, k, n)
	b.ReportAllocs()
	b.SetBytes(int64(4 * (m*k + k*n + m*n)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = benchNaiveMatmul(x.F32(), y.F32(), m, k, n)
	}
}

func BenchmarkMatMulNaive256(b *testing.B) { benchNaiveSize(b, 256, 256, 256) }
func BenchmarkMatMulNaive512(b *testing.B) { benchNaiveSize(b, 512, 512, 512) }

// BenchmarkMatMulTDecode is the attention-score shape during decode:
// one query row against a growing key history.
func BenchmarkMatMulTDecode(b *testing.B) {
	for _, hist := range []int{128, 1024} {
		b.Run(fmt.Sprintf("hist%d", hist), func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			q := randTensor(rng, 1, 64)
			kT := randTensor(rng, hist, 64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := MatMulT(q, kT)
				if err != nil {
					b.Fatal(err)
				}
				out.Release()
			}
		})
	}
}

func BenchmarkSoftmax(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randTensor(rng, 256, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := Softmax(x)
		out.Release()
	}
}

func BenchmarkLayerNorm(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := randTensor(rng, 256, 1024)
	g := randTensor(rng, 1024)
	bt := randTensor(rng, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := LayerNorm(x, g, bt, 1e-5)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

func BenchmarkGELU(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := randTensor(rng, 256, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := GELU(x)
		out.Release()
	}
}
