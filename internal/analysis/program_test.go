package analysis

import (
	"strings"
	"testing"
)

// progsumProgram loads the progsum fixture and builds a Program over it
// and everything it pulled in.
func progsumProgram(t *testing.T) *Program {
	t.Helper()
	_, loader := loadFixture(t, fixtureDir("internal", "progsum"))
	return BuildProgram(loader.Packages())
}

// summaryOf finds the summary of the progsum function with the given
// name.
func summaryOf(t *testing.T, prog *Program, name string) Summary {
	t.Helper()
	for _, fn := range prog.order {
		if fn.Name() != name {
			continue
		}
		if pkg := fn.Pkg(); pkg == nil || !strings.HasSuffix(pkg.Path(), "/progsum") {
			continue
		}
		sum, ok := prog.Summary(fn)
		if !ok {
			t.Fatalf("no summary for %s", name)
		}
		return sum
	}
	t.Fatalf("function %s not found in program", name)
	return Summary{}
}

func TestSummaryBlocksPropagation(t *testing.T) {
	prog := progsumProgram(t)
	for _, name := range []string{"parkDirect", "parkOnce", "parkTwice"} {
		sum := summaryOf(t, prog, name)
		if !sum.Blocks {
			t.Errorf("%s: Blocks = false, want true", name)
		}
		if sum.BlockReason != "WaitGroup.Wait" {
			t.Errorf("%s: BlockReason = %q, want WaitGroup.Wait", name, sum.BlockReason)
		}
	}
	if sum := summaryOf(t, prog, "pollOnly"); sum.Blocks {
		t.Errorf("pollOnly: Blocks = true (a select with default is a poll), reason %q", sum.BlockReason)
	}
}

func TestSummaryRemotePropagation(t *testing.T) {
	prog := progsumProgram(t)
	for _, name := range []string{"callWire", "callWireDeep"} {
		sum := summaryOf(t, prog, name)
		if !sum.Remote {
			t.Errorf("%s: Remote = false, want true", name)
		}
		if sum.RemoteName != "transport.Call" {
			t.Errorf("%s: RemoteName = %q, want transport.Call", name, sum.RemoteName)
		}
	}
}

func TestSummaryLoopsForever(t *testing.T) {
	prog := progsumProgram(t)
	if sum := summaryOf(t, prog, "spinForever"); !sum.LoopsForever {
		t.Error("spinForever: LoopsForever = false, want true")
	}
	if sum := summaryOf(t, prog, "spinWrapped"); !sum.LoopsForever {
		t.Error("spinWrapped: LoopsForever must propagate one call up")
	}
	if sum := summaryOf(t, prog, "loopWithExit"); sum.LoopsForever {
		t.Error("loopWithExit: LoopsForever = true, but the loop returns")
	}
}

func TestSummaryTimerLeak(t *testing.T) {
	prog := progsumProgram(t)
	if sum := summaryOf(t, prog, "leakTimer"); !sum.TimerLeak {
		t.Error("leakTimer: TimerLeak = false, want true")
	}
	if sum := summaryOf(t, prog, "stopTimer"); sum.TimerLeak {
		t.Errorf("stopTimer: TimerLeak = true (reason %q), but the timer is stopped", sum.TimerReason)
	}
}

func TestSummaryRebuildsPlan(t *testing.T) {
	prog := progsumProgram(t)
	if sum := summaryOf(t, prog, "swap"); !sum.RebuildsPlan {
		t.Error("swap: RebuildsPlan = false, want true")
	}
	if sum := summaryOf(t, prog, "swapDeep"); !sum.RebuildsPlan {
		t.Error("swapDeep: RebuildsPlan must propagate one call up")
	}
	if sum := summaryOf(t, prog, "callWire"); sum.RebuildsPlan {
		t.Error("callWire: RebuildsPlan = true, want false")
	}
}

func TestSummaryKVSinkParams(t *testing.T) {
	prog := progsumProgram(t)
	if sum := summaryOf(t, prog, "bindKey"); !sum.KVSinkParams[1] {
		t.Errorf("bindKey: KVSinkParams = %v, want param 1 marked", sum.KVSinkParams)
	}
	if sum := summaryOf(t, prog, "keepKey"); !sum.KVSinkParams[2] {
		t.Errorf("keepKey: KVSinkParams = %v, want param 2 marked", sum.KVSinkParams)
	}
	sum := summaryOf(t, prog, "bindViaHelper")
	if !sum.KVSinkParams[1] {
		t.Errorf("bindViaHelper: KVSinkParams = %v, want param 1 via argument flow", sum.KVSinkParams)
	}
	if sum.KVSinkParams[0] {
		t.Error("bindViaHelper: param 0 (the Exec) must not be marked as a key sink")
	}
}

func TestSummaryEndsSpanParams(t *testing.T) {
	prog := progsumProgram(t)
	if sum := summaryOf(t, prog, "endIt"); !sum.EndsSpanParams[0] {
		t.Errorf("endIt: EndsSpanParams = %v, want param 0 marked", sum.EndsSpanParams)
	}
	if sum := summaryOf(t, prog, "endViaHelper"); !sum.EndsSpanParams[0] {
		t.Errorf("endViaHelper: EndsSpanParams = %v, want param 0 via argument flow", sum.EndsSpanParams)
	}
	if sum := summaryOf(t, prog, "keepsOpen"); sum.EndsSpanParams[0] {
		t.Error("keepsOpen: EndsSpanParams marks param 0, but SetAttr does not end the span")
	}
}

// TestSummaryNilProgram pins nil-safety: analyzers run with a nil
// Program must fall back silently.
func TestSummaryNilProgram(t *testing.T) {
	var prog *Program
	if _, ok := prog.Summary(nil); ok {
		t.Error("nil Program must report no summaries")
	}
	if d, p := prog.Decl(nil); d != nil || p != nil {
		t.Error("nil Program must resolve no declarations")
	}
}
