# Genie build/test entry points. `make check` is the gate every change
# must pass: full build, vet, genie-lint (the domain-specific analyzers
# in internal/analysis), and the test suite under the race detector
# (the serving engine is aggressively concurrent). `make test-short`
# is the fast inner loop.

GO ?= go

.PHONY: all build vet lint test test-short race check bench bench-kernels parity chaos pool wire prefixcache brownout

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/genie-lint ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

check: build vet lint race prefixcache

bench:
	$(GO) run ./cmd/genie-bench

# Kernel microbenchmarks: tiled matmul vs the naive reference, softmax,
# layernorm, gelu, and the end-to-end decode step (allocs/op tracks the
# scratch arena's reuse rate).
bench-kernels:
	$(GO) test ./internal/tensor/ops -run xxx -bench . -benchmem
	$(GO) test ./internal/runtime -run xxx -bench 'BenchmarkDecodeStep|BenchmarkPrefill' -benchmem

# Kernel parity: every parallelized kernel bit-identical to its serial
# reference at every worker count, under the race detector.
parity:
	$(GO) test -race -run 'Parity|GrainInvariance' ./internal/tensor/ops -count=1

# Fault-tolerance suite under the race detector: deterministic chaos
# injection, hung-peer deadlines, breaker trips, lineage failover, and
# the kill-backend-mid-decode soak (bit-identical tokens after
# recovery). GENIE_CHAOS_SEED pins the fault schedule when reproducing.
# Sharded backend pool under the race detector: plan strategies, 2-way
# parity vs local decode, voluntary leave and chaos crash mid-decode
# (byte-identical completion), and the join/leave/join churn soak with
# goroutine-leak checks.
pool:
	$(GO) test -race -count=1 ./internal/pool/ -run .
	$(GO) test -race -count=1 ./internal/cluster/ -run 'Remove|Evict'

# Negotiated wire tier (DESIGN.md §11) under the race detector: codec
# round trips for the ref/delta/compressed frames (go test runs each
# Fuzz* seed corpus as unit cases), pooled-encoder equivalence, and the
# end-to-end contracts — feature negotiation, content-hash dedup,
# legacy byte-identity with features off, and the quantize-on-upload
# policy.
wire:
	$(GO) test -race -count=1 ./internal/transport/ -run 'Fuzz|Pooled|Hello|Ref|Delta|Compress'
	$(GO) test -race -count=1 ./internal/backend/ -run 'Wire|Negotiate|Dedup|Delta|Compress|Legacy|QuantPolicy'

# Prefix KV cache + prefill/decode split under the race detector:
# radix lookup/insert/split/evict mechanics, bit-identical parity cache
# on/off and split vs colocated, ref-count churn with goroutine-leak
# checks, the prefill-lane crash/failover chaos variant, and the
# suffix-only extend graph the cache rides on.
prefixcache:
	$(GO) test -race -count=1 ./internal/kvcache/ -run .
	$(GO) test -race -count=1 ./internal/runtime/ -run 'Resident|CloseFrees'
	$(GO) test -race -count=1 ./internal/models/ -run 'PrefillExtend'

# Fail-slow tolerance suite under the race detector (DESIGN.md §13):
# the health scorer's state machine and deadline math, brownout
# schedule determinism (arming a brownout must not shift the seeded
# fault stream), quarantine drain / suspect demotion in the serving
# engine, health-weighted shard planning, hedged-prefill dedup and
# backup-win races, and the end-to-end brownout smoke (one lane slowed,
# zero failures, bit-identical tokens).
brownout:
	$(GO) test -race -count=1 ./internal/health/ -run .
	$(GO) test -race -count=1 ./internal/chaos/ -run 'Brownout'
	$(GO) test -race -count=1 ./internal/serve/ -run 'Quarantin|Suspect|Healthz|Healthy'
	$(GO) test -race -count=1 ./internal/pool/ -run 'Health'
	$(GO) test -race -count=1 ./internal/kvcache/ -run 'Hedge'
	$(GO) test -race -count=1 ./internal/eval/ -run 'Brownout'

chaos:
	$(GO) test -race -count=1 ./internal/chaos/ -run .
	$(GO) test -race -count=1 ./internal/transport/ -run 'Retry|Breaker|Chaos|Deadline|Dropped|Corrupt|Stall|Kill|Frame'
	$(GO) test -race -count=1 ./internal/lineage/ -run 'Failover|KillBackend|Recover|Lost'
	$(GO) test -race -count=1 ./internal/serve/ -run 'Crash|Failover|HungPeer|RetryBudget|Breaker'
