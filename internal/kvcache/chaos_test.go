package kvcache

import (
	"math/rand"
	"testing"

	"genie/internal/lineage"
	"genie/internal/metrics"
	"genie/internal/models"
	"genie/internal/runtime"
)

// TestSplitSurvivesPrefillCrash kills the prefill backend mid-workload.
// The OnPrefillFailure hook fails the lineage-tracked prefill endpoint
// over to a spare (weights replay from recorded provenance) and the
// retried prefill must produce bit-identical tokens — decode never
// notices, because its resident state and connection are untouched.
func TestSplitSurvivesPrefillCrash(t *testing.T) {
	snap := metrics.SnapGoroutines()

	rng := rand.New(rand.NewSource(77))
	model := models.NewGPT(rng, models.TinyGPT)
	const steps = 5

	baseline := &runtime.LLMRunner{Model: model}
	want := generateScoped(t, baseline, runtime.ModeLocal, "", parityPrompt, steps)

	prefillBE := startPipeBackend(t)
	spareBE := startPipeBackend(t)
	decodeBE := startPipeBackend(t)

	lm := lineage.NewManager()
	lm.RegisterEndpoint("prefill", prefillBE.cli)
	lm.RegisterEndpoint("spare", spareBE.cli)
	tep, err := lm.TrackedEndpoint("prefill")
	if err != nil {
		t.Fatal(err)
	}

	mgr, err := NewManager(Config{Model: model, BudgetBytes: 1 << 20, PageTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	var failovers int
	sp, err := NewSplit(SplitConfig{
		Model:          model,
		Prefill:        tep,
		Decode:         decodeBE.cli,
		DecodeCounters: decodeBE.ctr,
		Cache:          mgr,
		OnPrefillFailure: func(error) error {
			failovers++
			_, ferr := tep.Failover("spare")
			return ferr
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Weights installed through the tracked endpoint get replayable
	// provenance; the decode side installs directly.
	if err := sp.InstallWeights(); err != nil {
		t.Fatal(err)
	}
	r := sp.Runner()

	// Healthy request first, seeding the prefix cache.
	got := generateScoped(t, r, runtime.ModeSemAware, "req0/", parityPrompt, steps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("healthy request diverges at step %d", i)
		}
	}

	// Crash the prefill lane: resident weights are wiped and the next
	// exec fails, as if the node rebooted.
	prefillBE.srv.Crash()

	got = generateScoped(t, r, runtime.ModeSemAware, "req1/", parityPrompt, steps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-crash request diverges at step %d: %v vs %v", i, got, want)
		}
	}
	if failovers != 1 {
		t.Fatalf("failover hook ran %d times, want 1", failovers)
	}

	// The spare is now the prefill lane; further requests need no hook.
	got = generateScoped(t, r, runtime.ModeSemAware, "req2/", parityPrompt, steps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-failover request diverges at step %d", i)
		}
	}
	if failovers != 1 {
		t.Fatalf("failover hook re-ran (%d times) on a healthy lane", failovers)
	}

	// Tear the backends down before the leak check: the serve goroutines
	// must drain once their pipes close.
	prefillBE.stop()
	spareBE.stop()
	decodeBE.stop()
	snap.Check(t)
}

// TestSplitPrefillFailureWithoutHook: with no recovery hook the error
// surfaces to the caller instead of hanging or corrupting decode state.
func TestSplitPrefillFailureWithoutHook(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	model := models.NewGPT(rng, models.TinyGPT)
	prefillBE := startPipeBackend(t)
	decodeBE := startPipeBackend(t)
	sp, err := NewSplit(SplitConfig{Model: model, Prefill: prefillBE.cli, Decode: decodeBE.cli})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.InstallWeights(); err != nil {
		t.Fatal(err)
	}
	prefillBE.srv.FailNextExecs(1)
	s, err := sp.Runner().NewScopedSession(runtime.ModeSemAware, "req0/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prefill(parityPrompt); err == nil {
		t.Fatal("prefill on a failing backend succeeded without a recovery hook")
	}
	_ = s.Close()
}
