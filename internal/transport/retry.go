package transport

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"time"
)

// ErrClass buckets transport errors by the correct reaction to them.
type ErrClass int

const (
	// ClassOK is a nil error.
	ClassOK ErrClass = iota
	// ClassRetryable marks transient availability failures — timeouts,
	// connection resets, closed conns, refused dials. The operation may
	// succeed if reissued (after redial) or sent to a replica.
	ClassRetryable
	// ClassRemote marks an application-level error reported by a live,
	// protocol-conformant server. Blind retry won't help; the request
	// itself (or the server's state) is the problem.
	ClassRemote
	// ClassFatal marks protocol violations — malformed frames, attestation
	// mismatches, cancelled contexts. Retrying is wrong: the stream or the
	// request can no longer be trusted.
	ClassFatal
)

// String returns the class label used in metrics and logs.
func (c ErrClass) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassRetryable:
		return "retryable"
	case ClassRemote:
		return "remote"
	case ClassFatal:
		return "fatal"
	}
	return "unknown"
}

// Classify maps an error from a transport operation to its class.
// Deadline expiry is retryable (the per-call budget ran out; the peer
// may be slow, not gone), cancellation is fatal (the caller gave up),
// frame corruption is fatal (stream desync), and RemoteError is its own
// class so callers can distinguish "server said no" from "server gone".
func Classify(err error) ErrClass {
	if err == nil {
		return ClassOK
	}
	if errors.Is(err, context.Canceled) {
		return ClassFatal
	}
	if IsFrameError(err) {
		return ClassFatal
	}
	if IsRemote(err) {
		return ClassRemote
	}
	if errors.Is(err, context.DeadlineExceeded) || IsClosed(err) {
		return ClassRetryable
	}
	return ClassFatal
}

// Retryable reports whether err is a transient availability failure
// worth retrying (on a fresh conn or a replica).
func Retryable(err error) bool { return Classify(err) == ClassRetryable }

// IsRemote reports whether err is an application error from the server.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}

// IsStateLoss reports whether err means the server is alive but the
// state this client depended on is gone — a stale epoch after a crash,
// a missing resident object, or an injected backend crash. These are
// not retryable in place: the caller must replay lost state (lineage
// recovery) or rebind to a replica that has it. Matching is on the
// server's error text, the same pragmatic contract IsClosed uses for
// the net stack's unexported errors.
func IsStateLoss(err error) bool {
	var re *RemoteError
	if !errors.As(err, &re) {
		return false
	}
	return strings.Contains(re.Msg, "stale handle") ||
		strings.Contains(re.Msg, "no resident object") ||
		strings.Contains(re.Msg, "injected backend crash")
}

// Retrier reissues an operation with exponential backoff and jitter.
// The zero value is usable: 4 attempts, 5ms base doubling to a 500ms
// cap, ±20% jitter from a fixed seed so test and bench runs are
// reproducible. Only Retryable-classed errors are retried by default.
type Retrier struct {
	// Max is the total number of attempts, including the first
	// (default 4; 1 disables retry).
	Max int
	// Base is the delay before the first retry; each subsequent retry
	// doubles it (default 5ms).
	Base time.Duration
	// Cap bounds the grown delay (default 500ms).
	Cap time.Duration
	// Jitter is the ± fraction applied to each delay (default 0.2).
	Jitter float64
	// Seed fixes the jitter stream for reproducibility (default 1).
	Seed int64
	// Retryable overrides the retry predicate (default Retryable).
	Retryable func(error) bool
	// OnRetry, when set, observes each retry before its backoff sleep.
	OnRetry func(attempt int, delay time.Duration, err error)

	mu  sync.Mutex
	rng *rand.Rand
}

// Do runs op until it succeeds, exhausts the attempt budget, fails with
// a non-retryable error, or ctx is done. The backoff sleep itself is
// interruptible by ctx. The last operation error is returned.
func (r *Retrier) Do(ctx context.Context, op func(ctx context.Context) error) error {
	max := r.Max
	if max <= 0 {
		max = 4
	}
	retryable := r.Retryable
	if retryable == nil {
		retryable = Retryable
	}
	var err error
	for attempt := 1; attempt <= max; attempt++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				if err != nil {
					return err
				}
				return cerr
			}
		}
		if err = op(ctx); err == nil {
			return nil
		}
		if attempt == max || !retryable(err) {
			return err
		}
		d := r.backoff(attempt)
		if r.OnRetry != nil {
			r.OnRetry(attempt, d, err)
		}
		if !sleepCtx(ctx, d) {
			return err
		}
	}
	return err
}

// backoff computes the jittered exponential delay after attempt (1-based).
func (r *Retrier) backoff(attempt int) time.Duration {
	base := r.Base
	if base <= 0 {
		base = 5 * time.Millisecond
	}
	cap := r.Cap
	if cap <= 0 {
		cap = 500 * time.Millisecond
	}
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	jitter := r.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 {
		r.mu.Lock()
		if r.rng == nil {
			seed := r.Seed
			if seed == 0 {
				seed = 1
			}
			r.rng = rand.New(rand.NewSource(seed))
		}
		u := r.rng.Float64()
		r.mu.Unlock()
		d = time.Duration(float64(d) * (1 + jitter*(2*u-1)))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// sleepCtx sleeps for d, returning false if ctx finished first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	if ctx == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
