// Package frontend implements Genie's intent-capture tier above the raw
// lazy tracer (§3.2): structural annotation from the module hierarchy,
// a library of pattern recognizers that infer high-level semantics
// (execution phases, cache behavior, pipeline structure) from graph
// idioms, and explicit developer hooks for novel architectures.
//
// The output of Annotate is a fully-tagged SRG — the contract the
// scheduler consumes without understanding the source framework.
package frontend

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"genie/internal/srg"
)

// Recognizer infers semantic annotations from graph structure. Apply
// returns how many nodes it tagged (0 = pattern absent).
type Recognizer interface {
	// Name identifies the recognizer in reports.
	Name() string
	// Apply tags the graph in place.
	Apply(g *srg.Graph) int
}

// DefaultRecognizers returns the standard library of model-idiom
// recognizers, in application order.
func DefaultRecognizers() []Recognizer {
	return []Recognizer{
		KVCacheDecodeRecognizer{},
		AttentionPrefillRecognizer{},
		ConvPipelineRecognizer{},
		SparseDenseRecognizer{},
		ModalityFusionRecognizer{},
	}
}

// Report summarizes what Annotate inferred.
type Report struct {
	// Tagged maps recognizer name -> nodes tagged.
	Tagged map[string]int
	// Phases lists the distinct phases present after annotation.
	Phases []srg.Phase
}

// Annotate runs the full annotation pipeline: pattern recognizers,
// then critical-path edge marking and reduction-rate edge annotation.
// Explicit developer annotations (AnnotatePhase etc.) applied beforehand
// are preserved — recognizers never overwrite a non-empty phase.
func Annotate(g *srg.Graph) Report {
	return AnnotateWith(g, DefaultRecognizers())
}

// AnnotateWith runs a custom recognizer set (the §3.3 prepass extension
// point) followed by the standard edge passes.
func AnnotateWith(g *srg.Graph, recs []Recognizer) Report {
	r := Report{Tagged: make(map[string]int)}
	for _, rec := range recs {
		r.Tagged[rec.Name()] = rec.Apply(g)
	}
	markReductionRates(g)
	g.MarkCriticalPath()

	seen := make(map[srg.Phase]bool)
	for _, n := range g.Nodes() {
		if n.Phase != srg.PhaseUnknown && !seen[n.Phase] {
			seen[n.Phase] = true
			r.Phases = append(r.Phases, n.Phase)
		}
	}
	sort.Slice(r.Phases, func(i, j int) bool { return r.Phases[i] < r.Phases[j] })
	return r
}

// AnnotatePhase is the explicit developer hook (genie.annotate_phase in
// the paper): every node whose module path starts with modulePrefix gets
// the phase.
func AnnotatePhase(g *srg.Graph, modulePrefix string, p srg.Phase) int {
	n := 0
	for _, node := range g.Nodes() {
		if node.Module == modulePrefix || strings.HasPrefix(node.Module, modulePrefix+".") {
			node.Phase = p
			n++
		}
	}
	return n
}

// AnnotateResidency explicitly overrides residency for a leaf ref.
func AnnotateResidency(g *srg.Graph, ref string, r srg.Residency) error {
	for _, node := range g.Nodes() {
		if (node.Op == "param" || node.Op == "input") && node.Ref == ref {
			node.Residency = r
			return nil
		}
	}
	return fmt.Errorf("frontend: no leaf with ref %q", ref)
}

// AnnotateModality stamps a modality on every node under modulePrefix.
func AnnotateModality(g *srg.Graph, modulePrefix string, m srg.Modality) int {
	n := 0
	for _, node := range g.Nodes() {
		if node.Module == modulePrefix || strings.HasPrefix(node.Module, modulePrefix+".") {
			node.Modality = m
			n++
		}
	}
	return n
}

// --- recognizers ---

// KVCacheDecodeRecognizer detects the decode-phase idiom: a concat whose
// first operand is a stateful (KV cache) leaf feeding an attention
// pattern. "A recurrent loop with a growing KV cache is characteristic of
// LLM decoding" (§3.2).
type KVCacheDecodeRecognizer struct{}

// Name implements Recognizer.
func (KVCacheDecodeRecognizer) Name() string { return "kv_cache_decode" }

// Apply implements Recognizer.
func (KVCacheDecodeRecognizer) Apply(g *srg.Graph) int {
	found := false
	for _, n := range g.Nodes() {
		if n.Op != "concat" || len(n.Inputs) < 2 {
			continue
		}
		first := g.Node(n.Inputs[0])
		if first.Op == "input" && first.Residency == srg.ResidencyStatefulKVCache {
			found = true
			break
		}
	}
	if !found {
		return 0
	}
	// The growing-cache idiom marks the whole capture as a decode step:
	// tag every untagged node and mark cache appends as stateful products.
	count := 0
	for _, n := range g.Nodes() {
		if n.Phase == srg.PhaseUnknown {
			n.Phase = srg.PhaseLLMDecode
			count++
		}
		if n.Op == "concat" && len(n.Inputs) >= 2 {
			if first := g.Node(n.Inputs[0]); first.Op == "input" &&
				first.Residency == srg.ResidencyStatefulKVCache {
				// The appended cache itself is the stateful product that
				// must stay co-located with decode compute.
				n.Residency = srg.ResidencyStatefulKVCache
			}
		}
	}
	return count
}

// AttentionPrefillRecognizer detects attention (matmul_t → softmax →
// matmul) with a multi-row query and no cache input: the compute-bound,
// parallelizable prefill phase.
type AttentionPrefillRecognizer struct{}

// Name implements Recognizer.
func (AttentionPrefillRecognizer) Name() string { return "attention_prefill" }

// Apply implements Recognizer.
func (AttentionPrefillRecognizer) Apply(g *srg.Graph) int {
	consumers := g.Consumers()
	found := false
	for _, n := range g.Nodes() {
		if n.Op != "matmul_t" {
			continue
		}
		if len(n.Output.Shape) > 0 && n.Output.Shape[0] <= 1 {
			continue // single-row query is a decode step, not prefill
		}
		if hasDownstream(g, consumers, n.ID, "softmax", 2) {
			found = true
			break
		}
	}
	if !found {
		return 0
	}
	count := 0
	for _, n := range g.Nodes() {
		if n.Phase == srg.PhaseUnknown {
			n.Phase = srg.PhaseLLMPrefill
			count++
		}
	}
	return count
}

// hasDownstream reports whether some consumer within depth hops has op.
func hasDownstream(g *srg.Graph, consumers map[srg.NodeID][]srg.NodeID, from srg.NodeID, op string, depth int) bool {
	if depth < 0 {
		return false
	}
	for _, c := range consumers[from] {
		if g.Node(c).Op == op {
			return true
		}
		if hasDownstream(g, consumers, c, op, depth-1) {
			return true
		}
	}
	return false
}

// ConvPipelineRecognizer detects chains of convolutional stages and tags
// them cv_stage with a stage index attribute, exposing the pipeline
// parallelism opportunity (§3.3 "Pipelined CNN inference").
type ConvPipelineRecognizer struct{}

// Name implements Recognizer.
func (ConvPipelineRecognizer) Name() string { return "conv_pipeline" }

// Apply implements Recognizer.
func (ConvPipelineRecognizer) Apply(g *srg.Graph) int {
	// Stage index = number of conv2d ops on the path from inputs
	// (monotone along topological order).
	stage := make(map[srg.NodeID]int)
	hasConv := false
	for _, n := range g.Nodes() {
		s := 0
		for _, in := range n.Inputs {
			if stage[in] > s {
				s = stage[in]
			}
		}
		if n.Op == "conv2d" {
			s++
			hasConv = true
		}
		stage[n.ID] = s
	}
	if !hasConv {
		return 0
	}
	count := 0
	for _, n := range g.Nodes() {
		if n.Modality == srg.ModalityVision || n.Op == "conv2d" || n.Op == "maxpool2d" {
			if n.Phase == srg.PhaseUnknown {
				n.Phase = srg.PhaseCVStage
				count++
			}
			if n.Attrs == nil {
				n.Attrs = make(map[string]string)
			}
			n.Attrs["cv_stage"] = strconv.Itoa(stage[n.ID])
		}
	}
	return count
}

// SparseDenseRecognizer detects the recommendation-model idiom: embedding
// lookups (sparse, memory-bound, tiering-friendly) feeding dense MLP
// compute.
type SparseDenseRecognizer struct{}

// Name implements Recognizer.
func (SparseDenseRecognizer) Name() string { return "sparse_dense" }

// Apply implements Recognizer.
func (SparseDenseRecognizer) Apply(g *srg.Graph) int {
	sparseRoots := []srg.NodeID{}
	for _, n := range g.Nodes() {
		if n.Op == "embedding_bag" || n.Op == "embedding" {
			sparseRoots = append(sparseRoots, n.ID)
		}
	}
	if len(sparseRoots) == 0 {
		return 0
	}
	count := 0
	// Lookup subtrees (the gather and its table/id ancestors) are the
	// sparse phase; everything downstream of a matmul is dense.
	for _, root := range sparseRoots {
		n := g.Node(root)
		if n.Phase == srg.PhaseUnknown {
			n.Phase = srg.PhaseSparse
			count++
		}
		for id := range g.AncestorsOf(root) {
			a := g.Node(id)
			if a.Phase == srg.PhaseUnknown {
				a.Phase = srg.PhaseSparse
				count++
			}
		}
	}
	for _, n := range g.Nodes() {
		if n.Phase == srg.PhaseUnknown && (n.Op == "matmul" || n.Op == "relu" || n.Op == "gelu" || n.Op == "add") {
			n.Phase = srg.PhaseDense
			count++
		}
	}
	return count
}

// ModalityFusionRecognizer finds nodes where vision and text (or sparse
// and dense) ancestries merge — multi-modal fusion points that the global
// scheduler places on fusion-friendly devices.
type ModalityFusionRecognizer struct{}

// Name implements Recognizer.
func (ModalityFusionRecognizer) Name() string { return "modality_fusion" }

// Apply implements Recognizer.
func (ModalityFusionRecognizer) Apply(g *srg.Graph) int {
	// Propagate modality sets forward.
	mods := make(map[srg.NodeID]map[srg.Modality]bool)
	count := 0
	for _, n := range g.Nodes() {
		set := map[srg.Modality]bool{}
		if n.Modality != srg.ModalityUnknown {
			set[n.Modality] = true
		}
		for _, in := range n.Inputs {
			for m := range mods[in] {
				set[m] = true
			}
		}
		mods[n.ID] = set
		if len(set) >= 2 && len(n.Inputs) >= 2 {
			// Direct merge point: inputs carry different *perceptual*
			// modalities (vision/text). A sparse+dense merge is the
			// recommendation idiom, not cross-modal fusion.
			distinct := map[srg.Modality]bool{}
			for _, in := range n.Inputs {
				for m := range mods[in] {
					distinct[m] = true
				}
			}
			if distinct[srg.ModalityVision] && distinct[srg.ModalityText] &&
				n.Phase == srg.PhaseUnknown {
				n.Phase = srg.PhaseFusion
				count++
			}
		}
	}
	return count
}

// markReductionRates annotates producer→consumer rates on edges into
// data-reducing ops (argmax, pooling, slicing): consumers of these edges
// receive far less data than flows in, which matters for bandwidth
// reservation (§3.1 "Producer-Consumer Rates").
func markReductionRates(g *srg.Graph) {
	for _, n := range g.Nodes() {
		var outBytes int64 = n.Output.Bytes()
		for i, in := range n.Inputs {
			inBytes := g.Node(in).Output.Bytes()
			if inBytes > 0 && outBytes > 0 && outBytes < inBytes {
				g.SetEdgeRate(n.ID, i, float64(outBytes)/float64(inBytes))
			}
		}
	}
}
