// Package lockscope is genie-lint test fixture data for the
// held-lock-across-blocking-op analyzer.
package lockscope

import (
	"sync"
	"time"

	"genie/internal/transport"
)

type engine struct {
	mu    sync.Mutex
	state int
	ch    chan int
	conn  *transport.Conn
	wg    sync.WaitGroup
}

// sendWhileLocked blocks on a channel with the mutex held.
func (e *engine) sendWhileLocked(v int) {
	e.mu.Lock()
	e.state = v
	e.ch <- v // want "channel send while holding e.mu"
	e.mu.Unlock()
}

// sendAfterUnlock releases first; no finding.
func (e *engine) sendAfterUnlock(v int) {
	e.mu.Lock()
	e.state = v
	e.mu.Unlock()
	e.ch <- v
}

// sleepUnderDeferredUnlock: a deferred unlock holds to the end of the
// body, so the sleep is under the lock.
func (e *engine) sleepUnderDeferredUnlock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	time.Sleep(time.Millisecond) // want "call to time.Sleep while holding e.mu"
	e.state++
}

// rpcWhileLocked holds the lock across a transport round trip.
func (e *engine) rpcWhileLocked() {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, _, _ = e.conn.Call(transport.MsgPing, nil) // want "Call while holding e.mu"
}

// rpcOutsideLock snapshots under the lock, calls outside; no finding.
func (e *engine) rpcOutsideLock() int {
	e.mu.Lock()
	v := e.state
	e.mu.Unlock()
	_, _, _ = e.conn.Call(transport.MsgPing, nil)
	return v
}

// selectWhileLocked parks the goroutine with the lock held.
func (e *engine) selectWhileLocked(done chan struct{}) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select { // want "select without default while holding e.mu"
	case v := <-e.ch:
		e.state = v
	case <-done:
	}
}

// pollWhileLocked uses a default case: a non-blocking poll is fine.
func (e *engine) pollWhileLocked() {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case v := <-e.ch:
		e.state = v
	default:
	}
}

// branchRelease unlocks on the early-return path before blocking; the
// branch-local state must not leak a false positive.
func (e *engine) branchRelease(fast bool, v int) {
	e.mu.Lock()
	if fast {
		e.mu.Unlock()
		e.ch <- v
		return
	}
	e.state = v
	e.mu.Unlock()
}

// waitWhileLocked blocks on a WaitGroup under the lock.
func (e *engine) waitWhileLocked() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.wg.Wait() // want "WaitGroup.Wait while holding e.mu"
}

// goroutineDoesNotInherit: the spawned body runs without the caller's
// lock, so its send is clean; the closure is analyzed on its own.
func (e *engine) goroutineDoesNotInherit(v int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		e.ch <- v
	}()
	e.state = v
}
