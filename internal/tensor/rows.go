package tensor

import "fmt"

// Row-granular copy primitives for paged KV state (internal/kvcache).
//
// KV pages are fixed-size [PageTokens, dim] tensors; assembling a
// session's contiguous cache view — and filling pages from freshly
// computed rows — means copying row runs between tensors. genie-lint's
// tensormut invariant confines raw backing-store writes to the
// tensor/nn/quant packages, so the copy primitives live here rather
// than in the cache layer that calls them.
//
// Both helpers treat a tensor as rows along dim 0 with identical
// trailing geometry; they drop quantization scales (KV state is f32 —
// row slicing an i8 tensor whose quant axis is 0 would scramble the
// channel mapping).

// rowGeom returns t's row count and per-row byte size.
func rowGeom(t *Tensor) (rows, rowBytes int, err error) {
	if t.shape.Rank() < 1 {
		return 0, 0, fmt.Errorf("tensor: rank-0 tensor has no rows")
	}
	rows = t.shape[0]
	if rows == 0 {
		return 0, 0, nil
	}
	return rows, t.NumBytes() / rows, nil
}

// CopyRowsAt copies every row of src into dst starting at row at. The
// tensors must share dtype and per-row geometry, and the copied range
// must fit inside dst.
func CopyRowsAt(dst, src *Tensor, at int) error {
	if dst.dtype != src.dtype {
		return fmt.Errorf("tensor: copy rows %s into %s", src.dtype, dst.dtype)
	}
	dRows, dRB, err := rowGeom(dst)
	if err != nil {
		return err
	}
	sRows, sRB, err := rowGeom(src)
	if err != nil {
		return err
	}
	if sRows == 0 {
		return nil
	}
	if dRB != sRB {
		return fmt.Errorf("tensor: row size mismatch copying %v into %v", src.shape, dst.shape)
	}
	if at < 0 || at+sRows > dRows {
		return fmt.Errorf("tensor: rows [%d,%d) out of range for %v", at, at+sRows, dst.shape)
	}
	copy(dst.data[at*dRB:], src.data)
	return nil
}

// CopyRowRange returns rows [lo, hi) of t as a fresh scratch-arena
// tensor (the caller owns it until Release; see NewScratch).
func CopyRowRange(t *Tensor, lo, hi int) (*Tensor, error) {
	rows, rb, err := rowGeom(t)
	if err != nil {
		return nil, err
	}
	if lo < 0 || hi > rows || lo > hi {
		return nil, fmt.Errorf("tensor: row range [%d,%d) of %v", lo, hi, t.shape)
	}
	outShape := t.shape.Clone()
	outShape[0] = hi - lo
	out := NewScratch(t.dtype, outShape...)
	copy(out.data, t.data[lo*rb:hi*rb])
	return out, nil
}
