package frontend

import (
	"fmt"
	"math"
	"sort"

	"genie/internal/srg"
)

// LearnedRecognizer addresses §5's "evolving semantic lexicon" challenge:
// instead of hand-crafted pattern rules, it *learns* phase signatures
// from labeled example graphs and classifies novel architectures by
// nearest-centroid matching over structural feature vectors. It
// implements the same Recognizer interface as the hand-written library,
// so it plugs into AnnotateWith unchanged.
//
// The feature space is deliberately simple and interpretable: a
// normalized op histogram plus a few structural ratios (leaf fraction,
// stateful-input fraction, mean fan-out, attention-shape markers). The
// point is the mechanism — semantics inferred from examples rather than
// rules — not state-of-the-art accuracy.
type LearnedRecognizer struct {
	// MaxDistance bounds how far a graph may sit from the nearest
	// centroid and still be tagged (Euclidean in feature space;
	// default 0.5). Beyond it the recognizer abstains.
	MaxDistance float64

	centroids map[srg.Phase][]float64
	vocab     []string
}

// featureVocab is the op vocabulary; unseen ops fold into a shared
// "other" bucket so novel architectures still embed.
var featureVocab = []string{
	"matmul", "matmul_t", "softmax", "causal_mask", "layernorm", "gelu",
	"relu", "add", "mul", "scale", "concat", "embedding", "embedding_bag",
	"conv2d", "maxpool2d", "meanpool", "slice_rows", "transpose2d",
	"reshape", "argmax_last", "other",
}

// numStructural counts the non-histogram features appended to the op
// histogram: leaf fraction, stateful fraction, mean fan-out (scaled),
// and cache-append marker.
const numStructural = 4

// Features embeds a graph into the recognizer's feature space.
func Features(g *srg.Graph) []float64 {
	idx := map[string]int{}
	for i, op := range featureVocab {
		idx[op] = i
	}
	vec := make([]float64, len(featureVocab)+numStructural)
	compute := 0
	leaves := 0
	stateful := 0
	cacheAppend := 0
	consumers := g.Consumers()
	fanout := 0
	for _, n := range g.Nodes() {
		fanout += len(consumers[n.ID])
		switch n.Op {
		case "param", "input":
			leaves++
			if n.Residency == srg.ResidencyStatefulKVCache {
				stateful++
			}
			continue
		}
		compute++
		i, ok := idx[n.Op]
		if !ok {
			i = idx["other"]
		}
		vec[i]++
		if n.Op == "concat" && len(n.Inputs) >= 2 {
			if first := g.Node(n.Inputs[0]); first.Op == "input" &&
				first.Residency == srg.ResidencyStatefulKVCache {
				cacheAppend++
			}
		}
	}
	if compute > 0 {
		for i := range featureVocab {
			vec[i] /= float64(compute)
		}
	}
	total := g.Len()
	base := len(featureVocab)
	if total > 0 {
		vec[base] = float64(leaves) / float64(total)
		vec[base+2] = float64(fanout) / float64(total) / 4 // scaled mean fan-out
	}
	if leaves > 0 {
		vec[base+1] = float64(stateful) / float64(leaves)
	}
	if compute > 0 {
		vec[base+3] = float64(cacheAppend) / float64(compute)
	}
	return vec
}

// Train fits one centroid per labeled phase. Each phase needs at least
// one example graph.
func (r *LearnedRecognizer) Train(examples map[srg.Phase][]*srg.Graph) error {
	if len(examples) == 0 {
		return fmt.Errorf("frontend: no training examples")
	}
	r.centroids = make(map[srg.Phase][]float64, len(examples))
	r.vocab = featureVocab
	for phase, graphs := range examples {
		if len(graphs) == 0 {
			return fmt.Errorf("frontend: phase %q has no examples", phase)
		}
		dim := len(featureVocab) + numStructural
		centroid := make([]float64, dim)
		for _, g := range graphs {
			f := Features(g)
			for i := range centroid {
				centroid[i] += f[i]
			}
		}
		for i := range centroid {
			centroid[i] /= float64(len(graphs))
		}
		r.centroids[phase] = centroid
	}
	return nil
}

// Classify returns the nearest phase and its distance. ok is false when
// untrained.
func (r *LearnedRecognizer) Classify(g *srg.Graph) (phase srg.Phase, dist float64, ok bool) {
	if len(r.centroids) == 0 {
		return srg.PhaseUnknown, 0, false
	}
	f := Features(g)
	best := math.Inf(1)
	// Deterministic order.
	phases := make([]srg.Phase, 0, len(r.centroids))
	for p := range r.centroids {
		phases = append(phases, p)
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i] < phases[j] })
	for _, p := range phases {
		d := euclid(f, r.centroids[p])
		if d < best {
			best, phase = d, p
		}
	}
	return phase, best, true
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Name implements Recognizer.
func (r *LearnedRecognizer) Name() string { return "learned" }

// Apply implements Recognizer: classify the graph; if confidently near a
// learned centroid, tag every untagged node with the predicted phase.
func (r *LearnedRecognizer) Apply(g *srg.Graph) int {
	maxD := r.MaxDistance
	if maxD == 0 {
		maxD = 0.5
	}
	phase, dist, ok := r.Classify(g)
	if !ok || dist > maxD || phase == srg.PhaseUnknown {
		return 0
	}
	count := 0
	for _, n := range g.Nodes() {
		if n.Phase == srg.PhaseUnknown && n.Op != "param" && n.Op != "input" {
			n.Phase = phase
			count++
		}
	}
	return count
}
