package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// SpanbalanceAnalyzer requires every obs span started in a function to
// be ended on every path that leaves the function. A span that is
// started but never ended is worse than no span at all: the recorder
// never sees it, its children dangle, and — because spans carry the
// request-scoped trace context across the disaggregation boundary —
// the trace for exactly the failing request (the error return that
// skipped End) is the one that goes missing.
//
// The analysis tracks span-typed locals assigned from calls into
// genie/internal/obs, then walks the function with branch-cloned state
// like lockscope:
//
//   - span.End() — direct, deferred, or inside a deferred closure —
//     closes the span
//   - passing the span to a module-local function whose interprocedural
//     summary says it ends that parameter (Pass.Prog) closes it too
//   - storing the span in a field/composite, returning it, sending it
//     on a channel, capturing it in a non-deferred literal, or passing
//     it to a function without an ends-span summary hands ownership off
//     — tracking stops, nothing is reported
//   - a return, continue, or break reached while a tracked span is
//     still open is a leak, reported once per span at its start site
//
// Discarding the span result outright (`_`) is reported immediately.
var SpanbalanceAnalyzer = &Analyzer{
	Name: "spanbalance",
	Doc:  "every obs span Start must have an End on all return paths",
	AppliesTo: func(scope string) bool {
		return hasPrefixPath(scope, "genie/internal")
	},
	Run: runSpanbalance,
}

const (
	spanOpen = iota
	spanClosed
	spanEscaped
)

type spanVar struct {
	name  string
	pos   token.Pos
	state int
}

func runSpanbalance(pass *Pass) {
	funcBodies(pass.Files, func(name string, body *ast.BlockStmt) {
		sc := &spanScanner{pass: pass, reported: make(map[types.Object]bool)}
		st := make(map[types.Object]spanVar)
		sc.block(body.List, st, nil)
		sc.checkExit(st, nil)
	})
}

type spanScanner struct {
	pass     *Pass
	reported map[types.Object]bool
}

// block scans statements in order. st is the span state, cloned into
// branch bodies; loopLocal (non-nil inside a loop body) collects spans
// started in the innermost loop so continue/break leak-check only
// those.
func (sc *spanScanner) block(stmts []ast.Stmt, st map[types.Object]spanVar, loopLocal map[types.Object]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			sc.assign(s, st, loopLocal)
		case *ast.ExprStmt:
			sc.scanExpr(s.X, st)
		case *ast.DeferStmt:
			sc.deferred(s, st)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				sc.scanExpr(r, st)
			}
			sc.checkExit(st, nil)
		case *ast.BranchStmt:
			if s.Tok == token.CONTINUE || s.Tok == token.BREAK {
				sc.checkExit(st, loopLocal)
			}
		case *ast.GoStmt:
			// The goroutine takes over anything it references.
			sc.escapeAll(s.Call, st)
		case *ast.BlockStmt:
			sc.block(s.List, st, loopLocal)
		case *ast.IfStmt:
			if s.Init != nil {
				sc.block([]ast.Stmt{s.Init}, st, loopLocal)
			}
			sc.scanExpr(s.Cond, st)
			sc.block(s.Body.List, cloneSpans(st), loopLocal)
			if s.Else != nil {
				sc.block([]ast.Stmt{s.Else}, cloneSpans(st), loopLocal)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				sc.block([]ast.Stmt{s.Init}, st, loopLocal)
			}
			if s.Cond != nil {
				sc.scanExpr(s.Cond, st)
			}
			sc.loopBody(s.Body, st)
		case *ast.RangeStmt:
			sc.scanExpr(s.X, st)
			sc.loopBody(s.Body, st)
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				sc.block(c.(*ast.CommClause).Body, cloneSpans(st), loopLocal)
			}
		case *ast.SwitchStmt:
			if s.Init != nil {
				sc.block([]ast.Stmt{s.Init}, st, loopLocal)
			}
			if s.Tag != nil {
				sc.scanExpr(s.Tag, st)
			}
			for _, c := range s.Body.List {
				sc.block(c.(*ast.CaseClause).Body, cloneSpans(st), loopLocal)
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				sc.block(c.(*ast.CaseClause).Body, cloneSpans(st), loopLocal)
			}
		case *ast.LabeledStmt:
			sc.block([]ast.Stmt{s.Stmt}, st, loopLocal)
		case *ast.SendStmt:
			sc.scanExpr(s.Chan, st)
			sc.scanExpr(s.Value, st)
		case *ast.IncDecStmt:
			sc.scanExpr(s.X, st)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							sc.scanExpr(v, st)
						}
					}
				}
			}
		}
	}
}

// loopBody scans a loop body with its own loop-local span set: a span
// started in iteration N and still open when the body falls through to
// iteration N+1 is leaked once per iteration.
func (sc *spanScanner) loopBody(body *ast.BlockStmt, st map[types.Object]spanVar) {
	inner := cloneSpans(st)
	local := make(map[types.Object]bool)
	sc.block(body.List, inner, local)
	sc.checkExit(inner, local)
}

// assign handles span creation (`ctx, span := obs.StartSpan(...)`) and
// ordinary assignments that use tracked spans.
func (sc *spanScanner) assign(s *ast.AssignStmt, st map[types.Object]spanVar, loopLocal map[types.Object]bool) {
	if len(s.Rhs) == 1 {
		if call, ok := unparen(s.Rhs[0]).(*ast.CallExpr); ok {
			if spanPositions := sc.spanResults(call); spanPositions != nil {
				sc.scanExpr(call, st) // arguments first
				for i, lhs := range s.Lhs {
					if !spanPositions[i] {
						continue
					}
					id, ok := unparen(lhs).(*ast.Ident)
					if !ok {
						continue // stored straight into a field: handed off
					}
					if id.Name == "_" {
						sc.pass.Reportf(call.Pos(),
							"span returned by %s is discarded without End; keep it and defer its End", types.ExprString(call.Fun))
						continue
					}
					obj := sc.pass.Info.Defs[id]
					if obj == nil {
						obj = sc.pass.Info.Uses[id]
					}
					if obj == nil {
						continue
					}
					st[obj] = spanVar{name: id.Name, pos: call.Pos(), state: spanOpen}
					if loopLocal != nil {
						loopLocal[obj] = true
					}
				}
				return
			}
		}
	}
	for _, rhs := range s.Rhs {
		sc.scanExpr(rhs, st)
	}
	for _, lhs := range s.Lhs {
		// Re-binding a tracked name drops the old span from tracking
		// (we can no longer say anything sound about it).
		if id, ok := unparen(lhs).(*ast.Ident); ok {
			if obj := sc.pass.Info.Uses[id]; obj != nil {
				delete(st, obj)
			}
		} else {
			sc.scanExpr(lhs, st)
		}
	}
}

// spanResults reports which result positions of call carry an obs span;
// nil when none do or the call is not into genie/internal/obs.
func (sc *spanScanner) spanResults(call *ast.CallExpr) map[int]bool {
	fn := calleeFunc(sc.pass.Info, call)
	if fn == nil || scopePath(funcPkgPath(fn)) != "genie/internal/obs" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	var out map[int]bool
	for i := 0; i < sig.Results().Len(); i++ {
		if isSpanType(sig.Results().At(i).Type()) {
			if out == nil {
				out = make(map[int]bool)
			}
			out[i] = true
		}
	}
	return out
}

// deferred handles defer statements: a deferred End (direct, through a
// summary-known callee, or inside a deferred closure) closes the span
// for every later exit.
func (sc *spanScanner) deferred(s *ast.DeferStmt, st map[types.Object]spanVar) {
	if lit, ok := unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := unparen(sel.X).(*ast.Ident); ok {
					sc.setState(id, st, spanClosed)
				}
			}
			return true
		})
		return
	}
	sc.scanExpr(s.Call, st)
}

// scanExpr classifies every use of a tracked span inside e: End closes,
// a summary-known ender closes, anything else that takes the value
// escapes it.
func (sc *spanScanner) scanExpr(e ast.Expr, st map[types.Object]spanVar) {
	if e == nil {
		return
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		sc.setState(e, st, spanEscaped)
	case *ast.SelectorExpr:
		// span.Field or receiver position: neutral use of the span.
		if id, ok := unparen(e.X).(*ast.Ident); ok && sc.trackedObj(id, st) != nil {
			return
		}
		sc.scanExpr(e.X, st)
	case *ast.CallExpr:
		if sel, ok := unparen(e.Fun).(*ast.SelectorExpr); ok {
			if id, ok := unparen(sel.X).(*ast.Ident); ok && sc.trackedObj(id, st) != nil {
				if sel.Sel.Name == "End" {
					sc.setState(id, st, spanClosed)
				}
				// Other span methods (SetTag, Annotate) are neutral.
			} else {
				sc.scanExpr(sel.X, st)
			}
		} else {
			sc.scanExpr(e.Fun, st)
		}
		callee := calleeFunc(sc.pass.Info, e)
		var sum Summary
		var haveSum bool
		if sc.pass.Prog != nil && callee != nil {
			sum, haveSum = sc.pass.Prog.Summary(callee)
		}
		for j, arg := range e.Args {
			if id, ok := unparen(arg).(*ast.Ident); ok && sc.trackedObj(id, st) != nil {
				if haveSum && sum.EndsSpanParams[j] {
					sc.setState(id, st, spanClosed)
				} else {
					sc.setState(id, st, spanEscaped)
				}
				continue
			}
			sc.scanExpr(arg, st)
		}
	case *ast.BinaryExpr:
		sc.scanExpr(e.X, st)
		sc.scanExpr(e.Y, st)
	case *ast.UnaryExpr:
		sc.scanExpr(e.X, st)
	case *ast.StarExpr:
		sc.scanExpr(e.X, st)
	case *ast.IndexExpr:
		sc.scanExpr(e.X, st)
		sc.scanExpr(e.Index, st)
	case *ast.SliceExpr:
		sc.scanExpr(e.X, st)
	case *ast.TypeAssertExpr:
		sc.scanExpr(e.X, st)
	case *ast.KeyValueExpr:
		sc.scanExpr(e.Value, st)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			sc.scanExpr(elt, st)
		}
	case *ast.FuncLit:
		// A literal that captures the span may run anytime: ownership
		// is no longer this function's.
		sc.escapeAll(e, st)
	}
}

// escapeAll marks every tracked span referenced anywhere under n as
// escaped.
func (sc *spanScanner) escapeAll(n ast.Node, st map[types.Object]spanVar) {
	ast.Inspect(n, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok {
			sc.setState(id, st, spanEscaped)
		}
		return true
	})
}

// trackedObj resolves id to a tracked span object (nil when untracked).
func (sc *spanScanner) trackedObj(id *ast.Ident, st map[types.Object]spanVar) types.Object {
	obj := sc.pass.Info.Uses[id]
	if obj == nil {
		return nil
	}
	if _, ok := st[obj]; !ok {
		return nil
	}
	return obj
}

func (sc *spanScanner) setState(id *ast.Ident, st map[types.Object]spanVar, state int) {
	obj := sc.trackedObj(id, st)
	if obj == nil {
		return
	}
	v := st[obj]
	if v.state == spanOpen {
		v.state = state
		st[obj] = v
	}
}

// checkExit reports spans still open at a function exit. When restrict
// is non-nil (continue/break) only spans started in the innermost loop
// count. Each span is reported once, at its start site.
func (sc *spanScanner) checkExit(st map[types.Object]spanVar, restrict map[types.Object]bool) {
	type leak struct {
		name string
		pos  token.Pos
	}
	var leaks []leak
	for obj, v := range st {
		if v.state != spanOpen || sc.reported[obj] {
			continue
		}
		if restrict != nil && !restrict[obj] {
			continue
		}
		sc.reported[obj] = true
		leaks = append(leaks, leak{v.name, v.pos})
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, l := range leaks {
		sc.pass.Reportf(l.pos,
			"span %q is not ended on every path out of this function; defer %s.End() right after starting it", l.name, l.name)
	}
}

func cloneSpans(st map[types.Object]spanVar) map[types.Object]spanVar {
	out := make(map[types.Object]spanVar, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}
