// Package errcheckdata is genie-lint test fixture data for the
// unchecked-error analyzer.
package errcheckdata

import (
	"fmt"
	"os"
	"strings"
)

type store struct {
	f *os.File
}

// drop discards errors on the floor: both forms are findings.
func (s *store) drop(path string) {
	os.Remove(path) // want "os.Remove returns an error that is not checked"
	s.f.Sync()      // want "Sync returns an error that is not checked"
}

// checked consumes the error; no finding.
func (s *store) checked(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return s.f.Sync()
}

// explicitDiscard says so in the source: reviewable, not a finding.
func (s *store) explicitDiscard(path string) {
	_ = os.Remove(path)
}

// deferredClose is the teardown idiom; defer statements are exempt.
func (s *store) deferredClose() {
	defer s.f.Close()
}

// allowlisted calls are documented to never fail meaningfully.
func describe(w *os.File, names []string) string {
	var b strings.Builder
	for _, n := range names {
		b.WriteString(n)
	}
	fmt.Fprintln(w, b.Len())
	fmt.Println("described")
	return b.String()
}

// ignored carries a justified suppression.
func (s *store) ignored(path string) {
	//lint:ignore errcheck fixture; the deletion is best-effort by design
	os.Remove(path)
}
