package eval

import (
	"testing"
)

func TestServingPoliciesOrdering(t *testing.T) {
	cfg := DefaultServingConfig()
	blind := RunServing(cfg, ServeBlindFCFS)
	phase := RunServing(cfg, ServePhaseAware)
	batched := RunServing(cfg, ServePhaseAwareBatched)

	if blind.Requests != cfg.Trace.Requests {
		t.Fatalf("%d requests served", blind.Requests)
	}
	// Phase splitting reserves a prefill pool, so it may concede a
	// little raw throughput — its win is interactive latency (TTFT).
	if phase.Throughput < blind.Throughput*0.8 {
		t.Errorf("phase-aware throughput %.2f far below blind %.2f",
			phase.Throughput, blind.Throughput)
	}
	if phase.P95TTFT >= blind.P95TTFT {
		t.Errorf("phase-aware P95 TTFT %v should beat blind %v (prefill pool uncontended)",
			phase.P95TTFT, blind.P95TTFT)
	}
	// Batching recovers (and exceeds) the throughput.
	if batched.Throughput < phase.Throughput {
		t.Errorf("batched throughput %.2f below unbatched %.2f",
			batched.Throughput, phase.Throughput)
	}
	if batched.Throughput < blind.Throughput {
		t.Errorf("batched throughput %.2f below blind %.2f",
			batched.Throughput, blind.Throughput)
	}
	// Tail latency: batching must help the P95 under this load.
	if batched.P95Lat > blind.P95Lat {
		t.Errorf("batched P95 %v worse than blind %v", batched.P95Lat, blind.P95Lat)
	}
}

func TestServingDeterministic(t *testing.T) {
	cfg := DefaultServingConfig()
	a := RunServing(cfg, ServePhaseAwareBatched)
	b := RunServing(cfg, ServePhaseAwareBatched)
	if a != b {
		t.Error("serving sim must be deterministic")
	}
}

func TestServingLatencySane(t *testing.T) {
	cfg := DefaultServingConfig()
	for _, p := range []ServingPolicy{ServeBlindFCFS, ServePhaseAware, ServePhaseAwareBatched} {
		r := RunServing(cfg, p)
		if r.MeanLat <= 0 || r.P95Lat < r.MeanLat/4 || r.Makespan <= 0 {
			t.Errorf("%s: implausible stats %+v", p, r)
		}
		if r.P95Lat > r.Makespan {
			t.Errorf("%s: P95 beyond makespan", p)
		}
	}
}

func TestServingSingleDevicePool(t *testing.T) {
	cfg := DefaultServingConfig()
	cfg.Devices = 1
	for _, p := range []ServingPolicy{ServeBlindFCFS, ServePhaseAware} {
		r := RunServing(cfg, p)
		if r.Requests != cfg.Trace.Requests {
			t.Errorf("%s: dropped requests on a 1-device pool", p)
		}
	}
}

func TestServingPolicyStrings(t *testing.T) {
	if ServeBlindFCFS.String() != "blind_fcfs" ||
		ServePhaseAware.String() != "phase_aware" ||
		ServePhaseAwareBatched.String() != "phase_aware_batched" {
		t.Error("policy strings wrong")
	}
}

func TestBatchScaleBounds(t *testing.T) {
	cfg := DefaultServingConfig()
	// Scale must be in (0, 1] and decrease with batch size.
	prev := 2.0
	for _, n := range []int{1, 2, 4, 8} {
		s := batchScale(cfg.Model, 100, n)
		if s <= 0 || s > 1 {
			t.Errorf("batch %d scale %v out of range", n, s)
		}
		if s > prev {
			t.Errorf("scale should decrease with batch: %v after %v", s, prev)
		}
		prev = s
	}
}
