package runtime

import (
	"math/rand"
	"testing"
	"time"

	"genie/internal/backend"
	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/exec"
	"genie/internal/frontend"
	"genie/internal/lazy"
	"genie/internal/models"
	"genie/internal/scheduler"
	"genie/internal/srg"
	"genie/internal/tensor"
)

// multiPool builds n live TCP backends registered as a cluster.
func multiPool(t *testing.T, n int) (*cluster.State, map[cluster.AcceleratorID]Endpoint, map[cluster.AcceleratorID]*backend.Server) {
	t.Helper()
	cs := cluster.NewState()
	eps := map[cluster.AcceleratorID]Endpoint{}
	srvs := map[cluster.AcceleratorID]*backend.Server{}
	for i := 0; i < n; i++ {
		id := cluster.AcceleratorID(string(rune('a' + i)))
		client, srv := startBackend(t)
		if err := cs.AddAccelerator(&cluster.Accelerator{
			ID: id, Spec: device.A100,
			Link: cluster.Link{Bandwidth: 25e9 / 8, RTT: 100 * time.Microsecond},
		}); err != nil {
			t.Fatal(err)
		}
		eps[id] = client
		srvs[id] = srv
	}
	return cs, eps, srvs
}

// localReference evaluates the builder in-process.
func localReference(t *testing.T, b *lazy.Builder, id srg.NodeID) *tensor.Tensor {
	t.Helper()
	vals, err := exec.Graph(b.Graph(), BindAll(b))
	if err != nil {
		t.Fatal(err)
	}
	return vals[id]
}

func TestPlanExecutorSingleDeviceMatchesLocal(t *testing.T) {
	cs, eps, _ := multiPool(t, 1)
	rng := rand.New(rand.NewSource(4))
	cnn := models.NewCNN(rng, models.TinyCNN)
	img := tensor.New(tensor.F32, 3, 32, 32)
	img.RandN(rng, 1)
	b, out := cnn.BuildForward(img)
	frontend.Annotate(b.Graph())

	plan, err := scheduler.Schedule(b.Graph(), cs, scheduler.LeastLoaded{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pe := &PlanExecutor{EPs: eps}
	got, err := pe.Execute(plan, b, []srg.NodeID{out.Logits})
	if err != nil {
		t.Fatal(err)
	}
	want := localReference(t, b, out.Logits)
	if !tensor.AllClose(got[out.Logits], want, 1e-5, 1e-5) {
		t.Error("single-device plan execution diverges from local")
	}
	if pe.Metrics.RPCCalls != 1 {
		t.Errorf("single segment should be 1 call, got %d", pe.Metrics.RPCCalls)
	}
}

func TestPlanExecutorPipelinedCNNAcrossTwoDevices(t *testing.T) {
	cs, eps, srvs := multiPool(t, 2)
	rng := rand.New(rand.NewSource(5))
	cnn := models.NewCNN(rng, models.TinyCNN)
	img := tensor.New(tensor.F32, 3, 32, 32)
	img.RandN(rng, 1)
	b, out := cnn.BuildForward(img)
	frontend.Annotate(b.Graph())

	plan, err := scheduler.Schedule(b.Graph(), cs, scheduler.SemanticsAware{},
		scheduler.NewCostModel(scheduler.RDMAProfile))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.PipelineStages) < 2 {
		t.Fatal("expected a pipelined plan")
	}
	pe := &PlanExecutor{EPs: eps}
	got, err := pe.Execute(plan, b, []srg.NodeID{out.Logits})
	if err != nil {
		t.Fatal(err)
	}
	want := localReference(t, b, out.Logits)
	if !tensor.AllClose(got[out.Logits], want, 1e-5, 1e-5) {
		t.Error("pipelined execution diverges from local")
	}
	// Both devices actually executed something.
	for id, srv := range srvs {
		if srv.Stats().ExecCalls == 0 {
			t.Errorf("device %q executed nothing", id)
		}
	}
	if pe.Metrics.RPCCalls < 2 {
		t.Errorf("pipelined plan used %d calls", pe.Metrics.RPCCalls)
	}
}

func TestPlanExecutorRoundRobinStillCorrect(t *testing.T) {
	// Even the adversarial placement (every op on a different device)
	// must compute the right answer — the executor carries boundaries.
	cs, eps, _ := multiPool(t, 3)
	rng := rand.New(rand.NewSource(6))
	b := lazy.NewBuilder("rr")
	x := b.Input("x", tensor.New(tensor.F32, 4, 8))
	xt, _ := b.InputData("x")
	xt.RandN(rng, 1)
	w := b.Param("w", tensor.New(tensor.F32, 8, 8))
	wt, _ := b.ParamData("w")
	wt.RandN(rng, 1)
	h := b.MatMul(x, w)
	h = b.GELU(h)
	h = b.Softmax(h)
	y := b.Add(h, x)
	b.MarkOutput(y)

	plan, err := scheduler.Schedule(b.Graph(), cs, scheduler.RoundRobin{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pe := &PlanExecutor{EPs: eps}
	got, err := pe.Execute(plan, b, []srg.NodeID{y.ID()})
	if err != nil {
		t.Fatal(err)
	}
	want := localReference(t, b, y.ID())
	if !tensor.AllClose(got[y.ID()], want, 1e-5, 1e-5) {
		t.Error("round-robin execution diverges from local")
	}
}

func TestPlanExecutorKeepRemoteHonored(t *testing.T) {
	cs, eps, srvs := multiPool(t, 1)
	rng := rand.New(rand.NewSource(7))
	gpt := models.NewGPT(rng, models.TinyGPT)
	prompt := []int64{3, 1, 4}
	b, out := gpt.BuildPrefill(prompt)
	frontend.Annotate(b.Graph())

	plan, err := scheduler.Schedule(b.Graph(), cs, scheduler.SemanticsAware{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Weight leaves are in KeepRemote (as params) — but weights bind
	// inline here since the builder has their data; the prefill KV
	// products must end up resident.
	pe := &PlanExecutor{EPs: eps}
	if _, err := pe.Execute(plan, b, []srg.NodeID{out.NextToken}); err != nil {
		t.Fatal(err)
	}
	var srv *backend.Server
	for _, s := range srvs {
		srv = s
	}
	if _, err := srv.Lookup(models.CacheRef(0, "k"), 0); err != nil {
		t.Errorf("prefill cache not kept remote: %v", err)
	}
}

func TestPlanExecutorRecomputeDuplicatesProducer(t *testing.T) {
	// Mark a cheap producer for recomputation: its value must NOT travel
	// (no boundary transfer), yet the result must stay correct.
	cs, eps, srvs := multiPool(t, 2)
	b := lazy.NewBuilder("recompute")
	x := b.Input("x", tensor.FromF32(tensor.Shape{2}, []float32{1, -2}))
	cheap := b.Scale(x, 3)
	left := b.ReLU(cheap)
	right := b.GELU(cheap)
	y := b.Add(left, right)
	b.MarkOutput(y)

	plan, err := scheduler.Schedule(b.Graph(), cs, scheduler.RoundRobin{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	plan.Recompute = map[srg.NodeID]bool{cheap.ID(): true}

	pe := &PlanExecutor{EPs: eps}
	got, err := pe.Execute(plan, b, []srg.NodeID{y.ID()})
	if err != nil {
		t.Fatal(err)
	}
	want := localReference(t, b, y.ID())
	if !tensor.AllClose(got[y.ID()], want, 1e-6, 1e-6) {
		t.Error("recompute plan diverges")
	}
	_ = srvs
}

func TestPlanExecutorMissingEndpointFails(t *testing.T) {
	cs, _, _ := multiPool(t, 1)
	b := lazy.NewBuilder("x")
	in := b.Input("x", tensor.New(tensor.F32, 1))
	b.MarkOutput(b.ReLU(in))
	plan, err := scheduler.Schedule(b.Graph(), cs, scheduler.LeastLoaded{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pe := &PlanExecutor{EPs: map[cluster.AcceleratorID]Endpoint{}}
	if _, err := pe.Execute(plan, b, b.Outputs()); err == nil {
		t.Error("missing endpoint should fail")
	}
}

func TestPlanExecutorUnproducedWantFails(t *testing.T) {
	cs, eps, _ := multiPool(t, 1)
	b := lazy.NewBuilder("x")
	in := b.Input("x", tensor.New(tensor.F32, 1))
	y := b.ReLU(in)
	b.MarkOutput(y)
	plan, err := scheduler.Schedule(b.Graph(), cs, scheduler.LeastLoaded{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pe := &PlanExecutor{EPs: eps}
	// Wanting a leaf (never "produced" by a segment) errors cleanly.
	if _, err := pe.Execute(plan, b, []srg.NodeID{in.ID()}); err == nil {
		t.Error("wanting a leaf should fail cleanly")
	}
}

// TestPlanExecutorShardedOversizedModel runs a model whose weights exceed
// any single device's memory: the semantics-aware policy shards
// transformer blocks across three tiny backends and the executor streams
// activations between them — results identical to local.
func TestPlanExecutorShardedOversizedModel(t *testing.T) {
	cs := cluster.NewState()
	eps := map[cluster.AcceleratorID]Endpoint{}
	spec := device.A100
	spec.MemBytes = 60 << 10 // 60 KB per device; TinyGPT needs ~100 KB
	for i := 0; i < 3; i++ {
		id := cluster.AcceleratorID(string(rune('a' + i)))
		client, _ := startBackend(t)
		if err := cs.AddAccelerator(&cluster.Accelerator{
			ID: id, Spec: spec,
			Link: cluster.Link{Bandwidth: 25e9 / 8, RTT: 100 * time.Microsecond},
		}); err != nil {
			t.Fatal(err)
		}
		eps[id] = client
	}

	rng := rand.New(rand.NewSource(17))
	m := models.NewGPT(rng, models.TinyGPT)
	b, out := m.BuildPrefill([]int64{9, 8, 7, 6})
	frontend.Annotate(b.Graph())

	plan, err := scheduler.Schedule(b.Graph(), cs, scheduler.SemanticsAware{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(scheduler.ShardReport(plan).PerDevice) < 2 {
		t.Fatal("expected a sharded plan")
	}
	pe := &PlanExecutor{EPs: eps}
	got, err := pe.Execute(plan, b, []srg.NodeID{out.NextToken})
	if err != nil {
		t.Fatal(err)
	}
	want := localReference(t, b, out.NextToken)
	if got[out.NextToken].I64()[0] != want.I64()[0] {
		t.Errorf("sharded execution predicts %d, want %d",
			got[out.NextToken].I64()[0], want.I64()[0])
	}
}

// TestPlanExecutorFusedGraph executes a rewrite-fused graph remotely.
func TestPlanExecutorFusedGraph(t *testing.T) {
	cs, eps, _ := multiPool(t, 1)
	b := lazy.NewBuilder("fused-remote")
	x := b.Input("x", tensor.FromF32(tensor.Shape{1, 4}, []float32{-2, -1, 1, 2}))
	h := b.Scale(x, 3)
	h = b.GELU(h)
	h = b.ReLU(h)
	y := b.Add(h, x)
	b.MarkOutput(y)
	want := localReference(t, b, y.ID())

	g2, fused := scheduler.FuseElementwise{}.Apply(b.Graph())
	if fused == 0 {
		t.Fatal("fusion did not fire")
	}
	plan, err := scheduler.Schedule(g2, cs, scheduler.LeastLoaded{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pe := &PlanExecutor{EPs: eps}
	var fusedOut srg.NodeID = srg.Invalid
	for _, n := range g2.Nodes() {
		if n.Op == "add" {
			fusedOut = n.ID
		}
	}
	got, err := pe.Execute(plan, b, []srg.NodeID{fusedOut})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got[fusedOut], want, 1e-6, 1e-6) {
		t.Error("remote fused execution diverges from local unfused")
	}
}
