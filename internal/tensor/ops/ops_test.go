package ops

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"genie/internal/tensor"
)

func f32(shape tensor.Shape, vals ...float32) *tensor.Tensor {
	return tensor.FromF32(shape, vals)
}

func TestMatMulKnown(t *testing.T) {
	a := f32(tensor.Shape{2, 3}, 1, 2, 3, 4, 5, 6)
	b := f32(tensor.Shape{3, 2}, 7, 8, 9, 10, 11, 12)
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := f32(tensor.Shape{2, 2}, 58, 64, 139, 154)
	if !tensor.AllClose(got, want, 1e-6, 1e-6) {
		t.Errorf("matmul = %v", got.F32())
	}
}

func TestMatMulBatched(t *testing.T) {
	a := f32(tensor.Shape{2, 1, 2}, 1, 2, 3, 4)
	b := f32(tensor.Shape{2, 1}, 5, 6)
	got, err := MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Shape().Equal(tensor.Shape{2, 1, 1}) {
		t.Fatalf("shape %v", got.Shape())
	}
	if got.F32()[0] != 17 || got.F32()[1] != 39 {
		t.Errorf("batched matmul = %v", got.F32())
	}
}

func TestMatMulShapeErrors(t *testing.T) {
	a := f32(tensor.Shape{2, 3}, 1, 2, 3, 4, 5, 6)
	b := f32(tensor.Shape{2, 2}, 1, 2, 3, 4)
	if _, err := MatMul(a, b); err == nil {
		t.Error("mismatched inner dims should fail")
	}
	if _, err := MatMul(f32(tensor.Shape{2}, 1, 2), b); err == nil {
		t.Error("rank-1 lhs should fail")
	}
}

func TestMatMulTMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := tensor.New(tensor.F32, 4, 6)
	b := tensor.New(tensor.F32, 5, 6)
	a.RandN(rng, 1)
	b.RandN(rng, 1)
	bt, _ := Transpose2D(b)
	want, err := MatMul(a, bt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MatMulT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, want, 1e-5, 1e-5) {
		t.Error("MatMulT != MatMul with explicit transpose")
	}
}

func TestMatMulIdentityProperty(t *testing.T) {
	// Property: A @ I == A for random square A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := tensor.New(tensor.F32, n, n)
		a.RandN(rng, 1)
		eye := tensor.New(tensor.F32, n, n)
		for i := 0; i < n; i++ {
			eye.F32()[i*n+i] = 1
		}
		got, err := MatMul(a, eye)
		return err == nil && tensor.AllClose(got, a, 1e-6, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddSubMul(t *testing.T) {
	a := f32(tensor.Shape{2, 2}, 1, 2, 3, 4)
	b := f32(tensor.Shape{2, 2}, 10, 20, 30, 40)
	sum, _ := Add(a, b)
	if sum.F32()[3] != 44 {
		t.Errorf("add: %v", sum.F32())
	}
	diff, _ := Sub(b, a)
	if diff.F32()[0] != 9 {
		t.Errorf("sub: %v", diff.F32())
	}
	prod, _ := Mul(a, b)
	if prod.F32()[2] != 90 {
		t.Errorf("mul: %v", prod.F32())
	}
}

func TestAddBiasBroadcast(t *testing.T) {
	a := f32(tensor.Shape{2, 3}, 1, 2, 3, 4, 5, 6)
	bias := f32(tensor.Shape{3}, 10, 20, 30)
	got, err := Add(a, bias)
	if err != nil {
		t.Fatal(err)
	}
	want := f32(tensor.Shape{2, 3}, 11, 22, 33, 14, 25, 36)
	if !tensor.AllClose(got, want, 0, 0) {
		t.Errorf("bias add = %v", got.F32())
	}
	// Symmetric: bias + a.
	got2, err := Add(bias, a)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got2, want, 0, 0) {
		t.Errorf("reversed bias add = %v", got2.F32())
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := tensor.New(tensor.F32, 4, 7)
	a.RandN(rng, 5)
	s := Softmax(a)
	for r := 0; r < 4; r++ {
		var sum float32
		for c := 0; c < 7; c++ {
			v := s.F32()[r*7+c]
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %v out of [0,1]", v)
			}
			sum += v
		}
		if math.Abs(float64(sum-1)) > 1e-5 {
			t.Errorf("row %d sums to %v", r, sum)
		}
	}
}

func TestSoftmaxStableForLargeInputs(t *testing.T) {
	a := f32(tensor.Shape{1, 3}, 1000, 1000, 1000)
	s := Softmax(a)
	for _, v := range s.F32() {
		if math.Abs(float64(v)-1.0/3) > 1e-5 {
			t.Errorf("softmax(1000,1000,1000) = %v", s.F32())
		}
	}
}

func TestLayerNormZeroMeanUnitVar(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := tensor.New(tensor.F32, 3, 16)
	a.RandN(rng, 4)
	gamma := tensor.New(tensor.F32, 16)
	gamma.Fill(1)
	beta := tensor.New(tensor.F32, 16)
	out, err := LayerNorm(a, gamma, beta, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		var mean, varsum float32
		row := out.F32()[r*16 : (r+1)*16]
		for _, v := range row {
			mean += v
		}
		mean /= 16
		for _, v := range row {
			varsum += (v - mean) * (v - mean)
		}
		if math.Abs(float64(mean)) > 1e-4 {
			t.Errorf("row %d mean %v", r, mean)
		}
		if math.Abs(float64(varsum/16)-1) > 1e-2 {
			t.Errorf("row %d var %v", r, varsum/16)
		}
	}
	// Shape check on gain/bias.
	if _, err := LayerNorm(a, tensor.New(tensor.F32, 4), beta, 1e-5); err == nil {
		t.Error("wrong gamma size should fail")
	}
}

func TestGELUKnownValues(t *testing.T) {
	a := f32(tensor.Shape{3}, 0, 1, -1)
	g := GELU(a)
	if g.F32()[0] != 0 {
		t.Errorf("gelu(0) = %v", g.F32()[0])
	}
	if math.Abs(float64(g.F32()[1])-0.8412) > 1e-3 {
		t.Errorf("gelu(1) = %v", g.F32()[1])
	}
	if math.Abs(float64(g.F32()[2])+0.1588) > 1e-3 {
		t.Errorf("gelu(-1) = %v", g.F32()[2])
	}
}

func TestReLU(t *testing.T) {
	a := f32(tensor.Shape{4}, -2, -0.5, 0, 3)
	r := ReLU(a)
	want := []float32{0, 0, 0, 3}
	for i, v := range r.F32() {
		if v != want[i] {
			t.Errorf("relu[%d] = %v", i, v)
		}
	}
}

func TestEmbedding(t *testing.T) {
	table := f32(tensor.Shape{3, 2}, 0, 1, 10, 11, 20, 21)
	ids := tensor.FromI64(tensor.Shape{2}, []int64{2, 0})
	out, err := Embedding(table, ids)
	if err != nil {
		t.Fatal(err)
	}
	want := f32(tensor.Shape{2, 2}, 20, 21, 0, 1)
	if !tensor.AllClose(out, want, 0, 0) {
		t.Errorf("embedding = %v", out.F32())
	}
	// Out-of-range id.
	bad := tensor.FromI64(tensor.Shape{1}, []int64{5})
	if _, err := Embedding(table, bad); err == nil {
		t.Error("out-of-range id should fail")
	}
}

func TestEmbeddingBag(t *testing.T) {
	table := f32(tensor.Shape{4, 2}, 1, 1, 2, 2, 3, 3, 4, 4)
	// Bag 0: ids {0,1}; bag 1: ids {3}.
	out, err := EmbeddingBag(table, []int64{0, 1, 3}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := f32(tensor.Shape{2, 2}, 3, 3, 4, 4)
	if !tensor.AllClose(out, want, 0, 0) {
		t.Errorf("embedding bag = %v", out.F32())
	}
	if _, err := EmbeddingBag(table, []int64{9}, []int{0}); err == nil {
		t.Error("bad id should fail")
	}
}

func TestConcatDim0AndDim1(t *testing.T) {
	a := f32(tensor.Shape{1, 2}, 1, 2)
	b := f32(tensor.Shape{2, 2}, 3, 4, 5, 6)
	out, err := Concat(0, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(tensor.Shape{3, 2}) || out.F32()[4] != 5 {
		t.Errorf("concat dim0 = %v %v", out.Shape(), out.F32())
	}
	c := f32(tensor.Shape{2, 1}, 9, 10)
	out2, err := Concat(1, b, c)
	if err != nil {
		t.Fatal(err)
	}
	want := f32(tensor.Shape{2, 3}, 3, 4, 9, 5, 6, 10)
	if !tensor.AllClose(out2, want, 0, 0) {
		t.Errorf("concat dim1 = %v", out2.F32())
	}
	if _, err := Concat(0, a, f32(tensor.Shape{1, 3}, 1, 2, 3)); err == nil {
		t.Error("mismatched non-concat dim should fail")
	}
}

func TestConcatGrowsLikeKVCache(t *testing.T) {
	// The decode loop's KV-cache append: [t,d] ++ [1,d] per step.
	kv := f32(tensor.Shape{1, 2}, 0, 0)
	for step := 1; step <= 5; step++ {
		delta := f32(tensor.Shape{1, 2}, float32(step), float32(step))
		var err error
		kv, err = Concat(0, kv, delta)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !kv.Shape().Equal(tensor.Shape{6, 2}) {
		t.Fatalf("kv shape %v", kv.Shape())
	}
	if kv.F32()[10] != 5 {
		t.Errorf("last appended row wrong: %v", kv.F32())
	}
}

func TestSliceRows(t *testing.T) {
	a := f32(tensor.Shape{4, 2}, 0, 1, 2, 3, 4, 5, 6, 7)
	s, err := SliceRows(a, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := f32(tensor.Shape{2, 2}, 2, 3, 4, 5)
	if !tensor.AllClose(s, want, 0, 0) {
		t.Errorf("slice = %v", s.F32())
	}
	if _, err := SliceRows(a, 3, 3); err == nil {
		t.Error("empty slice should fail")
	}
	if _, err := SliceRows(a, 0, 5); err == nil {
		t.Error("out-of-range slice should fail")
	}
}

func TestTranspose2DInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(6), 1+rng.Intn(6)
		a := tensor.New(tensor.F32, m, n)
		a.RandN(rng, 1)
		tr, err := Transpose2D(a)
		if err != nil {
			return false
		}
		back, err := Transpose2D(tr)
		return err == nil && tensor.AllClose(back, a, 0, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestArgmaxLastRow(t *testing.T) {
	a := f32(tensor.Shape{2, 4}, 9, 0, 0, 0, 0, 0, 7, 1)
	id, err := ArgmaxLastRow(a)
	if err != nil {
		t.Fatal(err)
	}
	if id != 2 {
		t.Errorf("argmax = %d, want 2", id)
	}
}

func TestConv2DKnown(t *testing.T) {
	// 1-channel 3x3 input, 1 output channel, 2x2 kernel of ones, stride 1,
	// no padding: each output = sum of 2x2 window.
	in := f32(tensor.Shape{1, 3, 3}, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	k := f32(tensor.Shape{1, 1, 2, 2}, 1, 1, 1, 1)
	out, err := Conv2D(in, k, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := f32(tensor.Shape{1, 2, 2}, 12, 16, 24, 28)
	if !tensor.AllClose(out, want, 1e-6, 1e-6) {
		t.Errorf("conv = %v", out.F32())
	}
}

func TestConv2DPaddingPreservesSize(t *testing.T) {
	in := tensor.New(tensor.F32, 2, 8, 8)
	in.Fill(1)
	k := tensor.New(tensor.F32, 4, 2, 3, 3)
	k.Fill(0.1)
	out, err := Conv2D(in, k, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(tensor.Shape{4, 8, 8}) {
		t.Errorf("padded conv shape = %v", out.Shape())
	}
	// Interior cell: 2 channels * 9 taps * 0.1 = 1.8.
	if math.Abs(float64(out.F32()[4*8*8/4+8*4+4])-1.8) > 1e-5 {
		// index (oc=1, y=4, x=4) just checks an interior value
		t.Errorf("interior conv value = %v", out.F32()[(1*8+4)*8+4])
	}
}

func TestConv2DStride(t *testing.T) {
	in := tensor.New(tensor.F32, 1, 4, 4)
	k := tensor.New(tensor.F32, 1, 1, 2, 2)
	out, err := Conv2D(in, k, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Shape().Equal(tensor.Shape{1, 2, 2}) {
		t.Errorf("strided conv shape = %v", out.Shape())
	}
}

func TestMaxPool2D(t *testing.T) {
	in := f32(tensor.Shape{1, 2, 4}, 1, 5, 2, 6, 3, 7, 4, 8)
	out, err := MaxPool2D(in, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := f32(tensor.Shape{1, 1, 2}, 7, 8)
	if !tensor.AllClose(out, want, 0, 0) {
		t.Errorf("maxpool = %v", out.F32())
	}
	if _, err := MaxPool2D(in, 5); err == nil {
		t.Error("oversized pool should fail")
	}
}

func TestMeanPoolAll(t *testing.T) {
	in := f32(tensor.Shape{2, 1, 2}, 1, 3, 10, 20)
	out, err := MeanPoolAll(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.F32()[0] != 2 || out.F32()[1] != 15 {
		t.Errorf("meanpool = %v", out.F32())
	}
}

func TestScaleAndSum(t *testing.T) {
	a := f32(tensor.Shape{3}, 1, 2, 3)
	s := Scale(a, 2)
	if s.F32()[2] != 6 {
		t.Errorf("scale = %v", s.F32())
	}
	if got := Sum(a).F32()[0]; got != 6 {
		t.Errorf("sum = %v", got)
	}
}

func TestCausalMask(t *testing.T) {
	// 2 queries over 4 keys with 2 cached positions (offset 2): query 0
	// sees keys 0..2, query 1 sees keys 0..3.
	scores := f32(tensor.Shape{2, 4}, 1, 1, 1, 1, 1, 1, 1, 1)
	out, err := CausalMask(scores, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := out.F32()
	if v[3] > -1e29 {
		t.Errorf("query 0 should not see key 3: %v", v[:4])
	}
	for _, i := range []int{0, 1, 2, 4, 5, 6, 7} {
		if v[i] != 1 {
			t.Errorf("visible position %d masked: %v", i, v)
		}
	}
	if _, err := CausalMask(tensor.New(tensor.F32, 2), 0); err == nil {
		t.Error("rank-1 scores should fail")
	}
	// Masking must not mutate its input.
	if scores.F32()[3] != 1 {
		t.Error("CausalMask mutated its input")
	}
}

func TestCausalMaskMakesFullRecomputeMatchIncremental(t *testing.T) {
	// Softmax over masked scores: the last row of a full pass equals the
	// single-row decode pass.
	full := f32(tensor.Shape{3, 3}, 5, 9, 9, 1, 2, 9, 3, 1, 2)
	masked, err := CausalMask(full, 0)
	if err != nil {
		t.Fatal(err)
	}
	fullProbs := Softmax(masked)
	lastRow, _ := SliceRows(full, 2, 3)
	inc, err := CausalMask(lastRow, 2)
	if err != nil {
		t.Fatal(err)
	}
	incProbs := Softmax(inc)
	want, _ := SliceRows(fullProbs, 2, 3)
	if !tensor.AllClose(incProbs, want, 1e-6, 1e-6) {
		t.Errorf("incremental %v vs full %v", incProbs.F32(), want.F32())
	}
}

func TestRoPERotationProperties(t *testing.T) {
	// Norm preservation: rotations keep each pair's magnitude.
	rng := rand.New(rand.NewSource(17))
	x := tensor.New(tensor.F32, 3, 8)
	x.RandN(rng, 1)
	out, err := RoPE(x, 5, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 3; row++ {
		for i := 0; i < 8; i += 2 {
			a0, b0 := x.F32()[row*8+i], x.F32()[row*8+i+1]
			a1, b1 := out.F32()[row*8+i], out.F32()[row*8+i+1]
			n0 := float64(a0*a0 + b0*b0)
			n1 := float64(a1*a1 + b1*b1)
			if math.Abs(n0-n1) > 1e-4*math.Max(1, n0) {
				t.Fatalf("pair norm changed: %v -> %v", n0, n1)
			}
		}
	}
	// Position 0 with row 0 is the identity rotation.
	id, err := RoPE(x, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if id.F32()[i] != x.F32()[i] {
			t.Fatalf("row at position 0 should be unrotated")
		}
	}
	// Errors.
	if _, err := RoPE(tensor.New(tensor.F32, 4), 0, 0); err == nil {
		t.Error("rank-1 input should fail")
	}
	if _, err := RoPE(tensor.New(tensor.F32, 2, 3), 0, 0); err == nil {
		t.Error("odd dim should fail")
	}
}

func TestRoPEAbsolutePositionComposesWithCache(t *testing.T) {
	// Rotating rows [0..3] in one call equals rotating [0..2] and row 3
	// separately with the right startPos — the KV-cache compatibility
	// property.
	rng := rand.New(rand.NewSource(18))
	x := tensor.New(tensor.F32, 4, 8)
	x.RandN(rng, 1)
	full, err := RoPE(x, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	head, _ := SliceRows(x, 0, 3)
	tail, _ := SliceRows(x, 3, 4)
	headR, err := RoPE(head, 0, 10000)
	if err != nil {
		t.Fatal(err)
	}
	tailR, err := RoPE(tail, 3, 10000)
	if err != nil {
		t.Fatal(err)
	}
	joined, _ := Concat(0, headR, tailR)
	if !tensor.AllClose(joined, full, 1e-6, 1e-6) {
		t.Error("incremental RoPE diverges from full")
	}
}
