package kvcache

import (
	"fmt"
	"math/rand"
	"testing"

	"genie/internal/models"
	"genie/internal/runtime"
)

// TestSplitPrefillDecodeParity runs prefill on one backend and decode
// on another and checks three things: tokens are bit-identical to the
// colocated local baseline, the ΔKV handoff ships exactly
// suffixTokens × KVBytesPerToken, and a warm (cache-hit) request hands
// off only the clamped one-token suffix.
func TestSplitPrefillDecodeParity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	model := models.NewGPT(rng, models.TinyGPT)
	cfg := model.Cfg
	const steps = 5

	baseline := &runtime.LLMRunner{Model: model}
	want := generateScoped(t, baseline, runtime.ModeLocal, "", parityPrompt, steps)

	prefillBE := startPipeBackend(t)
	decodeBE := startPipeBackend(t)
	mgr, err := NewManager(Config{Model: model, BudgetBytes: 1 << 20, PageTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSplit(SplitConfig{
		Model:          model,
		Prefill:        prefillBE.cli,
		Decode:         decodeBE.cli,
		DecodeCounters: decodeBE.ctr,
		Cache:          mgr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.InstallWeights(); err != nil {
		t.Fatal(err)
	}
	r := sp.Runner()

	// Cold request: no cached prefix, the whole prompt's KV crosses the
	// phase boundary.
	got := generateScoped(t, r, runtime.ModeSemAware, "req0/", parityPrompt, steps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cold split diverges at step %d: %v vs %v", i, got, want)
		}
	}
	wantDelta := int64(len(parityPrompt)) * cfg.KVBytesPerToken()
	if sp.DeltaBytes() != wantDelta {
		t.Fatalf("cold ΔKV %d bytes, want %d (= %d tokens x %d B/token)",
			sp.DeltaBytes(), wantDelta, len(parityPrompt), cfg.KVBytesPerToken())
	}

	// Warm request, same prompt: the radix hit clamps to len-1, so only
	// one suffix token's KV is novel.
	decodeSent := decodeBE.ctr.Total()
	got = generateScoped(t, r, runtime.ModeSemAware, "req1/", parityPrompt, steps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("warm split diverges at step %d: %v vs %v", i, got, want)
		}
	}
	if sp.DeltaBytes() != wantDelta+cfg.KVBytesPerToken() {
		t.Fatalf("warm ΔKV total %d, want %d", sp.DeltaBytes(), wantDelta+cfg.KVBytesPerToken())
	}
	if sp.DeltaTokens() != int64(len(parityPrompt))+1 {
		t.Fatalf("ΔKV tokens %d, want %d", sp.DeltaTokens(), len(parityPrompt)+1)
	}
	if st := mgr.Snapshot(); st.Hits != 1 {
		t.Fatalf("radix hits %d after warm request, want 1", st.Hits)
	}
	warmWire := decodeBE.ctr.Total() - decodeSent
	_ = warmWire

	// Third request: the dedup-hinted prefix bind has now crossed the
	// decode connection once, so it collapses to hashes — the warm wire
	// cost must keep dropping relative to the first warm pass.
	decodeSent = decodeBE.ctr.Total()
	got = generateScoped(t, r, runtime.ModeSemAware, "req2/", parityPrompt, steps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("third split request diverges at step %d", i)
		}
	}
	dedupWire := decodeBE.ctr.Total() - decodeSent
	if dedupWire >= warmWire {
		t.Fatalf("dedup'd handoff moved %d bytes >= first warm %d", dedupWire, warmWire)
	}
}

// TestSplitWithoutCache: disaggregation works with no prefix cache
// configured (every request ships its full prompt's ΔKV).
func TestSplitWithoutCache(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	model := models.NewGPT(rng, models.TinyGPT)
	const steps = 4

	baseline := &runtime.LLMRunner{Model: model}
	want := generateScoped(t, baseline, runtime.ModeLocal, "", parityPrompt, steps)

	prefillBE := startPipeBackend(t)
	decodeBE := startPipeBackend(t)
	sp, err := NewSplit(SplitConfig{Model: model, Prefill: prefillBE.cli, Decode: decodeBE.cli})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.InstallWeights(); err != nil {
		t.Fatal(err)
	}
	r := sp.Runner()
	for i := 0; i < 2; i++ {
		got := generateScoped(t, r, runtime.ModeSemAware, fmt.Sprintf("req%d/", i), parityPrompt, steps)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("uncached split pass %d diverges at step %d", i, j)
			}
		}
	}
	wantDelta := 2 * int64(len(parityPrompt)) * model.Cfg.KVBytesPerToken()
	if sp.DeltaBytes() != wantDelta {
		t.Fatalf("ΔKV %d bytes, want %d", sp.DeltaBytes(), wantDelta)
	}
}

// TestSplitRejectsWrongMode: the split runner only speaks the
// semantics-aware protocol (decode needs resident scoped state).
func TestSplitRejectsWrongMode(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	model := models.NewGPT(rng, models.TinyGPT)
	prefillBE := startPipeBackend(t)
	decodeBE := startPipeBackend(t)
	sp, err := NewSplit(SplitConfig{Model: model, Prefill: prefillBE.cli, Decode: decodeBE.cli})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Runner().NewScopedSession(runtime.ModeLocal, "x/"); err == nil {
		t.Fatal("split runner accepted mode local")
	}
	if _, err := NewSplit(SplitConfig{Model: model}); err == nil {
		t.Fatal("NewSplit accepted missing endpoints")
	}
}
