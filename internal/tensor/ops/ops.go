// Package ops implements the CPU kernels Genie executes on the "device".
// These are real numeric implementations (not stubs): every disaggregation
// mode in the evaluation actually computes, so semantic optimizations can
// be validated by comparing model outputs bit-for-bit across modes.
//
// All kernels take and return F32 tensors unless noted; model code converts
// F16 weights at load. Hot kernels run tiled and row-band-parallel on the
// compute pool (see matmul.go and internal/compute) under a strict
// determinism contract: every output element is produced by the same
// float32 operation sequence at any worker count, so cross-mode
// bit-identity — the evaluation's correctness gate — survives
// parallelism. The evaluation's GPU-side timing still comes from the
// device cost model, not from these kernels' wall-clock.
package ops

import (
	"fmt"
	"math"

	"genie/internal/compute"
	"genie/internal/tensor"
)

// Add returns a + b with broadcasting (b may be a bias of trailing shape).
func Add(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	return ewise(a, b, func(x, y float32) float32 { return x + y })
}

// Sub returns a - b with broadcasting.
func Sub(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	return ewise(a, b, func(x, y float32) float32 { return x - y })
}

// Mul returns the elementwise product with broadcasting.
func Mul(a, b *tensor.Tensor) (*tensor.Tensor, error) {
	return ewise(a, b, func(x, y float32) float32 { return x * y })
}

func ewise(a, b *tensor.Tensor, f func(x, y float32) float32) (*tensor.Tensor, error) {
	out, err := tensor.BroadcastShapes(a.Shape(), b.Shape())
	if err != nil {
		return nil, err
	}
	res := tensor.NewScratch(tensor.F32, out...)
	n := res.NumElements()
	an, bn := a.NumElements(), b.NumElements()
	// Fast paths: equal shapes, or b broadcast along leading dims. Each
	// output element depends on its own index only, so any range split
	// is bit-exact.
	switch {
	case an == n && bn == n:
		av, bv, rv := a.F32(), b.F32(), res.F32()
		compute.ParallelFor(n, grainBy(1), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rv[i] = f(av[i], bv[i])
			}
		})
	case an == n && n%bn == 0 && trailingCompatible(a.Shape(), b.Shape()):
		av, bv, rv := a.F32(), b.F32(), res.F32()
		compute.ParallelFor(n, grainBy(1), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rv[i] = f(av[i], bv[i%bn])
			}
		})
	case bn == n && n%an == 0 && trailingCompatible(b.Shape(), a.Shape()):
		av, bv, rv := a.F32(), b.F32(), res.F32()
		compute.ParallelFor(n, grainBy(1), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rv[i] = f(av[i%an], bv[i])
			}
		})
	default:
		res.Release()
		return nil, fmt.Errorf("ops: unsupported broadcast %v op %v", a.Shape(), b.Shape())
	}
	return res, nil
}

// trailingCompatible reports whether small is exactly the trailing dims of
// big (simple right-aligned broadcast without interior 1s).
func trailingCompatible(big, small tensor.Shape) bool {
	if len(small) > len(big) {
		return false
	}
	for i := 0; i < len(small); i++ {
		if small[len(small)-1-i] != big[len(big)-1-i] {
			return false
		}
	}
	return true
}

// Scale multiplies every element by s.
func Scale(a *tensor.Tensor, s float32) *tensor.Tensor {
	out := cloneScratch(a)
	v := out.F32()
	compute.ParallelFor(len(v), grainBy(1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v[i] *= s
		}
	})
	return out
}

// Softmax applies a numerically-stable softmax along the last dimension.
// Rows normalize independently, so the parallel split is per row band.
func Softmax(a *tensor.Tensor) *tensor.Tensor {
	s := a.Shape()
	inner := s[s.Rank()-1]
	rows := a.NumElements() / inner
	out := tensor.NewScratch(tensor.F32, s...)
	av, ov := a.F32(), out.F32()
	compute.ParallelFor(rows, grainBy(4*inner), func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			row := av[r*inner : (r+1)*inner]
			orow := ov[r*inner : (r+1)*inner]
			maxv := row[0]
			for _, v := range row {
				if v > maxv {
					maxv = v
				}
			}
			var sum float32
			for i, v := range row {
				e := float32(math.Exp(float64(v - maxv)))
				orow[i] = e
				sum += e
			}
			inv := 1 / sum
			for i := range orow {
				orow[i] *= inv
			}
		}
	})
	return out
}

// LayerNorm normalizes along the last dimension with learned gain/bias.
func LayerNorm(a, gamma, beta *tensor.Tensor, eps float32) (*tensor.Tensor, error) {
	s := a.Shape()
	inner := s[s.Rank()-1]
	if gamma.NumElements() != inner || beta.NumElements() != inner {
		return nil, fmt.Errorf("ops: layernorm gain/bias %d/%d for inner %d",
			gamma.NumElements(), beta.NumElements(), inner)
	}
	rows := a.NumElements() / inner
	out := tensor.NewScratch(tensor.F32, s...)
	av, ov, gv, bv := a.F32(), out.F32(), gamma.F32(), beta.F32()
	compute.ParallelFor(rows, grainBy(5*inner), func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			row := av[r*inner : (r+1)*inner]
			orow := ov[r*inner : (r+1)*inner]
			var mean float32
			for _, v := range row {
				mean += v
			}
			mean /= float32(inner)
			var varsum float32
			for _, v := range row {
				d := v - mean
				varsum += d * d
			}
			inv := 1 / float32(math.Sqrt(float64(varsum/float32(inner)+eps)))
			for i, v := range row {
				orow[i] = (v-mean)*inv*gv[i] + bv[i]
			}
		}
	})
	return out, nil
}

// GELU applies the tanh-approximated Gaussian error linear unit. Pure
// elementwise (and tanh-heavy), so it parallelizes over flat ranges.
func GELU(a *tensor.Tensor) *tensor.Tensor {
	out := cloneScratch(a)
	v := out.F32()
	const c = 0.7978845608028654 // sqrt(2/pi)
	compute.ParallelFor(len(v), grainBy(16), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			x64 := float64(v[i])
			v[i] = float32(0.5 * x64 * (1 + math.Tanh(c*(x64+0.044715*x64*x64*x64))))
		}
	})
	return out
}

// ReLU applies max(0, x).
func ReLU(a *tensor.Tensor) *tensor.Tensor {
	out := cloneScratch(a)
	v := out.F32()
	compute.ParallelFor(len(v), grainBy(1), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if v[i] < 0 {
				v[i] = 0
			}
		}
	})
	return out
}

// cloneScratch copies a into an arena-backed tensor — the pooled
// counterpart of Clone for kernels that mutate a copy of their input.
func cloneScratch(a *tensor.Tensor) *tensor.Tensor {
	out := tensor.NewScratch(a.DType(), a.Shape()...)
	copy(out.Bytes(), a.Bytes())
	return out
}

// Embedding gathers rows of table [vocab, dim] at ids [n], giving [n, dim].
func Embedding(table *tensor.Tensor, ids *tensor.Tensor) (*tensor.Tensor, error) {
	ts := table.Shape()
	if ts.Rank() != 2 {
		return nil, fmt.Errorf("ops: embedding table must be rank 2, got %v", ts)
	}
	if ids.DType() != tensor.I64 {
		return nil, fmt.Errorf("ops: embedding ids must be i64, got %s", ids.DType())
	}
	vocab, dim := ts[0], ts[1]
	n := ids.NumElements()
	iv := ids.I64()
	// Validate serially (cheap) so the parallel gather below is
	// error-free by construction.
	for _, id := range iv {
		if id < 0 || int(id) >= vocab {
			return nil, fmt.Errorf("ops: embedding id %d out of range [0,%d)", id, vocab)
		}
	}
	out := tensor.NewScratch(tensor.F32, n, dim)
	tv, ov := table.F32(), out.F32()
	compute.ParallelFor(n, grainBy(dim), func(i0, i1 int) {
		for i := i0; i < i1; i++ {
			copy(ov[i*dim:(i+1)*dim], tv[int(iv[i])*dim:(int(iv[i])+1)*dim])
		}
	})
	return out, nil
}

// EmbeddingBag gathers and sums rows: ids [n] grouped by offsets into
// bags; returns [len(offsets), dim]. This is the DLRM sparse kernel.
func EmbeddingBag(table *tensor.Tensor, ids []int64, offsets []int) (*tensor.Tensor, error) {
	ts := table.Shape()
	if ts.Rank() != 2 {
		return nil, fmt.Errorf("ops: embedding_bag table must be rank 2, got %v", ts)
	}
	vocab, dim := ts[0], ts[1]
	out := tensor.New(tensor.F32, len(offsets), dim)
	tv, ov := table.F32(), out.F32()
	for b, start := range offsets {
		end := len(ids)
		if b+1 < len(offsets) {
			end = offsets[b+1]
		}
		dst := ov[b*dim : (b+1)*dim]
		for _, id := range ids[start:end] {
			if id < 0 || int(id) >= vocab {
				return nil, fmt.Errorf("ops: embedding_bag id %d out of range [0,%d)", id, vocab)
			}
			src := tv[int(id)*dim : (int(id)+1)*dim]
			for j := range dst {
				dst[j] += src[j]
			}
		}
	}
	return out, nil
}

// Concat joins tensors along dim (all other dims must match).
func Concat(dim int, ts ...*tensor.Tensor) (*tensor.Tensor, error) {
	if len(ts) == 0 {
		return nil, fmt.Errorf("ops: concat of zero tensors")
	}
	base := ts[0].Shape()
	if dim < 0 || dim >= base.Rank() {
		return nil, fmt.Errorf("ops: concat dim %d out of range for %v", dim, base)
	}
	total := 0
	for _, t := range ts {
		s := t.Shape()
		if s.Rank() != base.Rank() {
			return nil, fmt.Errorf("ops: concat rank mismatch %v vs %v", s, base)
		}
		for i := range s {
			if i != dim && s[i] != base[i] {
				return nil, fmt.Errorf("ops: concat shape mismatch %v vs %v on dim %d", s, base, i)
			}
		}
		total += s[dim]
	}
	outShape := base.Clone()
	outShape[dim] = total
	out := tensor.NewScratch(ts[0].DType(), outShape...)

	// Treat each tensor as [outer, t.dim*inner] row-major blocks.
	inner := 1
	for i := dim + 1; i < base.Rank(); i++ {
		inner *= base[i]
	}
	outer := 1
	for i := 0; i < dim; i++ {
		outer *= base[i]
	}
	es := out.DType().Size()
	rowOut := total * inner * es
	off := 0
	for _, t := range ts {
		rowIn := t.Shape()[dim] * inner * es
		src := t.Bytes()
		dst := out.Bytes()
		for o := 0; o < outer; o++ {
			copy(dst[o*rowOut+off:o*rowOut+off+rowIn], src[o*rowIn:(o+1)*rowIn])
		}
		off += rowIn
	}
	return out, nil
}

// SliceRows returns rows [start,end) of a rank-≥1 tensor along dim 0
// (copying).
func SliceRows(a *tensor.Tensor, start, end int) (*tensor.Tensor, error) {
	s := a.Shape()
	if start < 0 || end > s[0] || start >= end {
		return nil, fmt.Errorf("ops: slice [%d:%d) out of range for %v", start, end, s)
	}
	inner := a.NumElements() / s[0] * a.DType().Size()
	outShape := s.Clone()
	outShape[0] = end - start
	data := make([]byte, (end-start)*inner)
	copy(data, a.Bytes()[start*inner:end*inner])
	return tensor.FromBytes(a.DType(), outShape, data)
}

// Transpose2D returns aᵀ for a rank-2 tensor.
func Transpose2D(a *tensor.Tensor) (*tensor.Tensor, error) {
	s := a.Shape()
	if s.Rank() != 2 {
		return nil, fmt.Errorf("ops: transpose2d needs rank 2, got %v", s)
	}
	out := tensor.New(tensor.F32, s[1], s[0])
	av, ov := a.F32(), out.F32()
	for i := 0; i < s[0]; i++ {
		for j := 0; j < s[1]; j++ {
			ov[j*s[0]+i] = av[i*s[1]+j]
		}
	}
	return out, nil
}

// ArgmaxLastRow returns the index of the max element in the final row of a
// rank-2 tensor — the greedy-decoding token-selection kernel.
func ArgmaxLastRow(a *tensor.Tensor) (int64, error) {
	s := a.Shape()
	if s.Rank() != 2 {
		return 0, fmt.Errorf("ops: argmax needs rank 2, got %v", s)
	}
	row := a.F32()[(s[0]-1)*s[1]:]
	best, bi := row[0], 0
	for i, v := range row {
		if v > best {
			best, bi = v, i
		}
	}
	return int64(bi), nil
}

// Conv2D applies a [outC,inC,kh,kw] kernel to input [inC,h,w] with the
// given stride and zero padding, returning [outC,oh,ow].
func Conv2D(in, kernel *tensor.Tensor, stride, pad int) (*tensor.Tensor, error) {
	is, ks := in.Shape(), kernel.Shape()
	if is.Rank() != 3 || ks.Rank() != 4 || is[0] != ks[1] {
		return nil, fmt.Errorf("ops: conv2d shapes %v, %v", is, ks)
	}
	inC, h, w := is[0], is[1], is[2]
	outC, kh, kw := ks[0], ks[2], ks[3]
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("ops: conv2d output empty for in %v kernel %v", is, ks)
	}
	out := tensor.NewScratch(tensor.F32, outC, oh, ow)
	iv, kv, ov := in.F32(), kernel.F32(), out.F32()
	// Parallel over flattened (outC, oy) output rows: each output
	// element reduces its own receptive field, so any split is
	// bit-exact.
	compute.ParallelFor(outC*oh, grainBy(2*ow*inC*kh*kw), func(r0, r1 int) {
		for r := r0; r < r1; r++ {
			oc, oy := r/oh, r%oh
			for ox := 0; ox < ow; ox++ {
				var acc float32
				for ic := 0; ic < inC; ic++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							acc += iv[(ic*h+iy)*w+ix] * kv[((oc*inC+ic)*kh+ky)*kw+kx]
						}
					}
				}
				ov[(oc*oh+oy)*ow+ox] = acc
			}
		}
	})
	return out, nil
}

// MaxPool2D applies k×k max pooling with stride k to [c,h,w].
func MaxPool2D(in *tensor.Tensor, k int) (*tensor.Tensor, error) {
	s := in.Shape()
	if s.Rank() != 3 {
		return nil, fmt.Errorf("ops: maxpool needs rank 3, got %v", s)
	}
	c, h, w := s[0], s[1], s[2]
	oh, ow := h/k, w/k
	if oh == 0 || ow == 0 {
		return nil, fmt.Errorf("ops: maxpool %d too large for %v", k, s)
	}
	out := tensor.New(tensor.F32, c, oh, ow)
	iv, ov := in.F32(), out.F32()
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := float32(math.Inf(-1))
				for dy := 0; dy < k; dy++ {
					for dx := 0; dx < k; dx++ {
						v := iv[(ci*h+oy*k+dy)*w+ox*k+dx]
						if v > best {
							best = v
						}
					}
				}
				ov[(ci*oh+oy)*ow+ox] = best
			}
		}
	}
	return out, nil
}

// MeanPoolAll reduces [c,h,w] to [c] by averaging each channel (global
// average pooling).
func MeanPoolAll(in *tensor.Tensor) (*tensor.Tensor, error) {
	s := in.Shape()
	if s.Rank() != 3 {
		return nil, fmt.Errorf("ops: meanpool needs rank 3, got %v", s)
	}
	c, hw := s[0], s[1]*s[2]
	out := tensor.New(tensor.F32, c)
	iv, ov := in.F32(), out.F32()
	for ci := 0; ci < c; ci++ {
		var sum float32
		for i := 0; i < hw; i++ {
			sum += iv[ci*hw+i]
		}
		ov[ci] = sum / float32(hw)
	}
	return out, nil
}

// Sum reduces all elements to a scalar.
func Sum(a *tensor.Tensor) *tensor.Tensor {
	var acc float64
	for i, n := 0, a.NumElements(); i < n; i++ {
		acc += float64(a.At(i))
	}
	return tensor.Scalar(float32(acc))
}

// CausalMask sets score [i,j] to -inf (large negative) where key position
// j exceeds query position i+offset — the autoregressive attention mask.
// offset is the number of cached positions preceding the queries (so a
// decode step with t cached tokens uses offset=t).
func CausalMask(scores *tensor.Tensor, offset int) (*tensor.Tensor, error) {
	s := scores.Shape()
	if s.Rank() != 2 {
		return nil, fmt.Errorf("ops: causal_mask needs rank 2, got %v", s)
	}
	tq, tk := s[0], s[1]
	out := cloneScratch(scores)
	v := out.F32()
	const negInf = float32(-1e30)
	for i := 0; i < tq; i++ {
		limit := i + offset // highest visible key index
		for j := limit + 1; j < tk; j++ {
			v[i*tk+j] = negInf
		}
	}
	return out, nil
}

// RoPE applies rotary position embeddings to x [t, dim]: each row's
// consecutive element pairs rotate by position-dependent angles
// θ_i = (startPos+row) · base^(-2i/dim). Rotations compose with the KV
// cache exactly like learned positions (each row's rotation depends only
// on its absolute position), so decode steps pass their absolute
// startPos.
func RoPE(x *tensor.Tensor, startPos int, base float64) (*tensor.Tensor, error) {
	s := x.Shape()
	if s.Rank() != 2 {
		return nil, fmt.Errorf("ops: rope needs rank 2, got %v", s)
	}
	t, dim := s[0], s[1]
	if dim%2 != 0 {
		return nil, fmt.Errorf("ops: rope needs even dim, got %d", dim)
	}
	if base <= 0 {
		base = 10000
	}
	out := cloneScratch(x)
	v := out.F32()
	// Rows rotate independently by their own absolute position, so the
	// parallel split is per row band.
	compute.ParallelFor(t, grainBy(8*dim), func(r0, r1 int) {
		for row := r0; row < r1; row++ {
			pos := float64(startPos + row)
			for i := 0; i < dim; i += 2 {
				theta := pos * math.Pow(base, -float64(i)/float64(dim))
				sin, cos := math.Sincos(theta)
				a, b := v[row*dim+i], v[row*dim+i+1]
				v[row*dim+i] = a*float32(cos) - b*float32(sin)
				v[row*dim+i+1] = a*float32(sin) + b*float32(cos)
			}
		}
	})
	return out, nil
}
