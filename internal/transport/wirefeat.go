package transport

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"io"
	"math"

	"genie/internal/tensor"
)

// Wire features (DESIGN.md §11): optional byte-saving behaviors that
// ship zero bytes until a client negotiates them with MsgHello. The
// server grants the intersection of the requested mask and its own
// support; every granted feature changes only what a *sender that
// opted in* emits, so legacy peers and feature-off connections keep
// byte-identical frames.
const (
	// FeatCompress deflates frame payloads above a threshold, marked by
	// compFlag in the type byte.
	FeatCompress uint32 = 1 << iota
	// FeatDedup lets re-sent tensor payloads travel as 32-byte content
	// hashes (MsgUploadRef, binding kind 2) once the server has seen
	// the bytes.
	FeatDedup
	// FeatDelta lets a same-key re-upload travel as an XOR/run-length
	// delta against the previous version (MsgUploadDelta).
	FeatDelta

	// FeatAll is every feature this build implements.
	FeatAll = FeatCompress | FeatDedup | FeatDelta
)

// compFlag marks a frame whose payload is deflate-compressed, prefixed
// with the uvarint raw length. Like envFlag, the bit is only honored
// when the remaining bits form a valid message type, so garbage bytes
// still surface as unknown types rather than bogus decompression.
const compFlag = 0x40

// compressMin is the smallest payload worth deflating: below this the
// flate header overhead and CPU beat any savings.
const compressMin = 512

// HashSize is the content-hash width (SHA-256).
const HashSize = sha256.Size

// ContentHash fingerprints a tensor's full identity — dtype, shape,
// raw bytes, and quantization scales — for upload dedup. Keying dedup
// on content rather than key name is what makes the cache safe: two
// keys with equal bytes share one upload, and a key whose bytes
// changed never false-hits (DESIGN.md §11).
func ContentHash(t *tensor.Tensor) [HashSize]byte {
	h := sha256.New()
	var hdr [8]byte
	hdr[0] = uint8(t.DType())
	hdr[1] = uint8(t.Shape().Rank())
	_, _ = h.Write(hdr[:2])
	for _, d := range t.Shape() {
		binary.LittleEndian.PutUint32(hdr[:4], uint32(d))
		_, _ = h.Write(hdr[:4])
	}
	_, _ = h.Write(t.Bytes())
	if sc := t.Scales(); sc != nil {
		hdr[0] = uint8(t.QuantAxis())
		_, _ = h.Write(hdr[:1])
		for _, s := range sc {
			binary.LittleEndian.PutUint32(hdr[:4], math.Float32bits(s))
			_, _ = h.Write(hdr[:4])
		}
	}
	var out [HashSize]byte
	h.Sum(out[:0])
	return out
}

func f32ToBits(f float32) uint32   { return math.Float32bits(f) }
func f32FromBits(b uint32) float32 { return math.Float32frombits(b) }

// --- Hello: feature negotiation ---

// EncodeHello serializes a feature request/grant mask (both directions
// use the same 4-byte payload).
func EncodeHello(features uint32) []byte {
	var e buf
	e.u32(features)
	return e.b
}

// DecodeHello parses a feature mask payload.
func DecodeHello(b []byte) (uint32, error) {
	r := rdr{b: b}
	f := r.u32()
	return f, r.err
}

// --- UploadRef: dedup by content hash ---

// UploadRef stores a tensor the server has already seen under a new
// (or the same) key, transferring only its content hash.
type UploadRef struct {
	Key  string
	Hash [HashSize]byte
}

// EncodeUploadRef serializes an UploadRef payload.
func EncodeUploadRef(u *UploadRef) []byte {
	var e buf
	e.str(u.Key)
	e.b = append(e.b, u.Hash[:]...)
	return e.b
}

// DecodeUploadRef parses an UploadRef payload.
func DecodeUploadRef(b []byte) (*UploadRef, error) {
	r := rdr{b: b}
	u := &UploadRef{Key: r.str()}
	copy(u.Hash[:], r.take(HashSize))
	return u, r.err
}

// --- UploadDelta: same-key re-upload as XOR/run-length delta ---

// UploadDelta replaces key's resident bytes with prev XOR delta. The
// dtype/shape must match the resident version (the client falls back
// to a full upload otherwise); Hash authenticates the reconstruction.
type UploadDelta struct {
	Key   string
	DType tensor.DType
	Shape tensor.Shape
	// Delta is the run-length-encoded XOR against the previous bytes.
	Delta []byte
	// Hash is the content hash of the NEW tensor; the server verifies
	// the reconstruction against it so a lost frame or stale base never
	// silently corrupts a weight.
	Hash [HashSize]byte
}

// EncodeUploadDelta serializes an UploadDelta payload.
func EncodeUploadDelta(u *UploadDelta) []byte {
	var e buf
	e.str(u.Key)
	e.u8(uint8(u.DType))
	e.u8(uint8(len(u.Shape)))
	for _, d := range u.Shape {
		e.u32(uint32(d))
	}
	e.b = append(e.b, u.Hash[:]...)
	e.u32(uint32(len(u.Delta)))
	e.b = append(e.b, u.Delta...)
	return e.b
}

// DecodeUploadDelta parses an UploadDelta payload.
func DecodeUploadDelta(b []byte) (*UploadDelta, error) {
	r := rdr{b: b}
	u := &UploadDelta{Key: r.str(), DType: tensor.DType(r.u8())}
	if r.err == nil && u.DType > tensor.I8 {
		return nil, frameErrorf("transport: invalid dtype byte in delta")
	}
	rank := int(r.u8())
	if r.err == nil && rank > 16 {
		return nil, frameErrorf("transport: delta rank too large")
	}
	u.Shape = make(tensor.Shape, rank)
	for i := range u.Shape {
		u.Shape[i] = int(r.u32())
	}
	copy(u.Hash[:], r.take(HashSize))
	n := int(r.u32())
	d := r.take(n)
	if r.err != nil {
		return nil, r.err
	}
	u.Delta = make([]byte, n)
	copy(u.Delta, d)
	return u, nil
}

// EncodeDelta run-length-encodes next XOR prev as repeated
// (uvarint zeroRun, uvarint litLen, litBytes) pairs. Equal-length
// inputs only; KV appends and weight updates touch a fraction of the
// bytes, so the zero runs dominate and the delta collapses.
func EncodeDelta(prev, next []byte) []byte {
	out := make([]byte, 0, len(next)/8+16)
	var tmp [binary.MaxVarintLen64]byte
	i := 0
	for i < len(next) {
		run := i
		for run < len(next) && next[run] == prev[run] {
			run++
		}
		lit := run
		// A literal ends once a zero run long enough to pay for its own
		// two varint headers appears (or the buffer ends).
		for lit < len(next) {
			z := lit
			for z < len(next) && next[z] == prev[z] {
				z++
			}
			if z-lit >= 4 || z == len(next) {
				break
			}
			lit = z + 1
		}
		out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(run-i))]...)
		out = append(out, tmp[:binary.PutUvarint(tmp[:], uint64(lit-run))]...)
		for j := run; j < lit; j++ {
			out = append(out, next[j]^prev[j])
		}
		i = lit
	}
	return out
}

// ApplyDelta reconstructs next from prev and an EncodeDelta stream.
// Malformed deltas (overrun, trailing garbage) return FrameErrors.
func ApplyDelta(prev, delta []byte) ([]byte, error) {
	next := make([]byte, len(prev))
	copy(next, prev)
	i, off := 0, 0
	for off < len(delta) {
		zero, n := binary.Uvarint(delta[off:])
		if n <= 0 {
			return nil, frameErrorf("transport: corrupt delta varint at %d", off)
		}
		off += n
		lit, n := binary.Uvarint(delta[off:])
		if n <= 0 {
			return nil, frameErrorf("transport: corrupt delta varint at %d", off)
		}
		off += n
		if zero > uint64(len(prev)-i) || lit > uint64(len(prev)-i)-zero {
			return nil, frameErrorf("transport: delta overruns %d-byte base", len(prev))
		}
		i += int(zero)
		if off+int(lit) > len(delta) {
			return nil, frameErrorf("transport: truncated delta literal at %d", off)
		}
		for j := 0; j < int(lit); j++ {
			next[i+j] ^= delta[off+j]
		}
		i += int(lit)
		off += int(lit)
	}
	return next, nil
}

// --- frame payload compression ---

// compressPayload deflates raw into uvarint(len(raw)) + flate bytes.
// It returns nil when compression does not pay (too small, or the
// deflated form is not smaller) — the caller then sends raw without
// compFlag, so incompressible payloads cost zero extra bytes.
func compressPayload(raw []byte) []byte {
	if len(raw) < compressMin {
		return nil
	}
	var b bytes.Buffer
	b.Grow(len(raw) / 2)
	var tmp [binary.MaxVarintLen64]byte
	b.Write(tmp[:binary.PutUvarint(tmp[:], uint64(len(raw)))])
	// BestSpeed: the wire wins come from tensor-byte redundancy, and
	// level 1 captures most of it at a fraction of the CPU of higher
	// levels — this sits on the decode critical path.
	fw, err := flate.NewWriter(&b, flate.BestSpeed)
	if err != nil {
		return nil
	}
	if _, err := fw.Write(raw); err != nil {
		return nil
	}
	if err := fw.Close(); err != nil {
		return nil
	}
	if b.Len() >= len(raw) {
		return nil
	}
	return b.Bytes()
}

// decompressPayload reverses compressPayload. Every malformed input —
// bad varint, oversized claim, corrupt deflate stream, length
// mismatch — is a FrameError, never a panic: this is attacker-facing
// surface (see fuzz_test.go).
func decompressPayload(p []byte) ([]byte, error) {
	rawLen, n := binary.Uvarint(p)
	if n <= 0 {
		return nil, frameErrorf("transport: corrupt compressed frame header")
	}
	if rawLen > maxFrame {
		return nil, frameErrorf("transport: compressed frame claims %d bytes", rawLen)
	}
	fr := flate.NewReader(bytes.NewReader(p[n:]))
	raw := make([]byte, int(rawLen))
	if _, err := io.ReadFull(fr, raw); err != nil {
		return nil, frameErrorf("transport: corrupt compressed frame: %v", err)
	}
	// One extra read distinguishes "exactly rawLen bytes" from a stream
	// that kept going — a length lie either way.
	var scratch [1]byte
	if m, _ := fr.Read(scratch[:]); m != 0 {
		return nil, frameErrorf("transport: compressed frame longer than declared")
	}
	return raw, nil
}

// writeFrameCompressed writes one frame whose payload cp was already
// produced by compressPayload, setting compFlag in the type byte.
func writeFrameCompressed(w io.Writer, t MsgType, env Envelope, cp []byte) error {
	if len(cp) > maxFrame {
		return frameErrorf("transport: frame of %d bytes exceeds limit", len(cp))
	}
	var hdr [frameHeader + envSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(cp)))
	n := frameHeader
	tb := byte(t) | compFlag
	if !env.Zero() {
		tb |= envFlag
		binary.LittleEndian.PutUint64(hdr[5:13], env.Trace)
		binary.LittleEndian.PutUint64(hdr[13:21], env.Span)
		n += envSize
	}
	hdr[4] = tb
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(cp)
	return err
}

// readFrameEnvFeat reads one frame, transparently inflating compressed
// payloads. wireLen is the payload length as it crossed the wire
// (compressed size for compressed frames), for counter accounting.
// Decompression capability is unconditional — only *sending* is
// negotiated — so a reply can be compressed the moment the HelloOK
// grant is issued.
func readFrameEnvFeat(r io.Reader) (_ MsgType, _ Envelope, _ []byte, wireLen int, _ error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, Envelope{}, nil, 0, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, Envelope{}, nil, 0, frameErrorf("transport: frame of %d bytes exceeds limit", n)
	}
	var env Envelope
	t := hdr[4]
	compressed := false
	// Flag bits are only meaningful over a valid message type (see the
	// envFlag note in ReadFrameEnv): anything else passes through raw so
	// dispatch rejects the byte instead of the reader misparsing it.
	if t&(envFlag|compFlag) != 0 && validType(MsgType(t&^(envFlag|compFlag))) {
		if t&envFlag != 0 {
			var eb [envSize]byte
			if _, err := io.ReadFull(r, eb[:]); err != nil {
				return 0, Envelope{}, nil, 0, err
			}
			env.Trace = binary.LittleEndian.Uint64(eb[:8])
			env.Span = binary.LittleEndian.Uint64(eb[8:])
		}
		compressed = t&compFlag != 0
		t &^= envFlag | compFlag
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, Envelope{}, nil, 0, err
	}
	wireLen = int(n)
	if compressed {
		raw, err := decompressPayload(payload)
		if err != nil {
			return 0, Envelope{}, nil, 0, err
		}
		payload = raw
	}
	return MsgType(t), env, payload, wireLen, nil
}
