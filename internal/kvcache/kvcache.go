// Package kvcache is the prefix-reuse plane of the serving stack: a
// radix-tree cache over token sequences mapping shared prompt prefixes
// (system prompts, few-shot templates) to resident KV state, backed by
// fixed-size pages from the tensor arena.
//
// The paper's argument is that network-attached disaggregation survives
// only when the boundary understands state semantics; this package
// applies the same argument to prompt state. A new request's Prefill
// looks up its longest cached prefix, runs only the suffix
// (models.BuildPrefillExtend — bit-identical to a full prefill by the
// offset-causal-mask construction), and inserts the suffix rows back so
// the next request extends further. Keys live on the scoped
// models.CacheRef plane, the same key space every other strategy uses.
//
// Three strategies consume the cache: a colocated local one
// (Manager.Runner), a colocated remote one (Manager.RunnerOn, fused
// semantics-aware RPCs whose prefix binds dedup to zero wire bytes on
// repeat), and a disaggregated prefill/decode split (NewSplit) that runs
// the two phases on different backends and ships only the ΔKV suffix
// across the boundary.
package kvcache

import (
	"fmt"
	"sync"

	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/obs"
	"genie/internal/tensor"
)

// DefaultPageTokens is the page granularity when Config.PageTokens is 0:
// small enough that a diverging suffix wastes little slack, big enough
// that page bookkeeping stays off the per-token path.
const DefaultPageTokens = 16

// Config sizes a prefix-cache manager.
type Config struct {
	Model *models.GPT
	// BudgetBytes caps resident page bytes; the LRU sweep evicts
	// childless unpinned nodes past it. Zero or negative means no reuse
	// plane — construction fails (turn the cache off by not building one).
	BudgetBytes int64
	// PageTokens is the rows-per-page granularity (DefaultPageTokens if 0).
	PageTokens int
	// Metrics receives hit/miss/eviction/bytes-saved series; nil keeps a
	// private registry (tests).
	Metrics *obs.Registry
}

// Manager owns one radix tree of resident prefixes and hands out runner
// strategies that consult it. All methods are safe for concurrent use.
type Manager struct {
	cfg Config

	mu    sync.Mutex
	root  *node
	bytes int64
	nodes int
	tick  uint64
	// pins is the live-pin registry: the evict sweep re-matches each
	// pin's token range to derive the protected node set.
	pins map[*Pin]struct{}

	hits, misses, evictions, bytesSaved *obs.Counter
	residentBytes, residentNodes        *obs.Gauge
}

// NewManager builds a prefix-cache manager.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("kvcache: nil model")
	}
	if cfg.BudgetBytes <= 0 {
		return nil, fmt.Errorf("kvcache: non-positive budget %d", cfg.BudgetBytes)
	}
	if cfg.PageTokens <= 0 {
		cfg.PageTokens = DefaultPageTokens
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Manager{cfg: cfg, root: &node{}, pins: make(map[*Pin]struct{})}
	m.hits = reg.Counter("genie_kvcache_hits_total", "prefix lookups that matched at least one token")
	m.misses = reg.Counter("genie_kvcache_misses_total", "prefix lookups that matched nothing")
	m.evictions = reg.Counter("genie_kvcache_evictions_total", "radix nodes evicted by the LRU sweep")
	m.bytesSaved = reg.Counter("genie_kvcache_bytes_saved_total", "KV bytes served from cache instead of recomputed")
	m.residentBytes = reg.Gauge("genie_kvcache_resident_bytes", "resident page bytes")
	m.residentNodes = reg.Gauge("genie_kvcache_resident_nodes", "live radix nodes")
	return m, nil
}

// PageTokens reports the effective page granularity.
func (m *Manager) PageTokens() int { return m.cfg.PageTokens }

// Model returns the model the cache serves.
func (m *Manager) Model() *models.GPT { return m.cfg.Model }

// Pin holds eviction protection over a token range. Sessions hold their
// pin for their lifetime so hot prefixes stay resident; Unpin releases.
// A Pin records the pinned token sequence, and the eviction sweep
// re-matches it against the current tree — so protection covers the full
// range even when a copy-on-extend split later reshapes the path (the
// re-match follows the range into the split tail). It guards residency,
// not content correctness — the session already owns a copy of
// everything it read (Lookup gathers atomically under the tree lock).
type Pin struct {
	m      *Manager
	tokens []int64 // the pinned prefix
	done   bool
}

// pinRange registers eviction protection over tokens[:n]. Caller holds
// m.mu. A zero-length pin protects nothing and skips the registry.
func (m *Manager) pinRange(tokens []int64, n int) *Pin {
	p := &Pin{m: m, tokens: append([]int64(nil), tokens[:n]...)}
	if n > 0 {
		m.pins[p] = struct{}{}
	}
	return p
}

// Tokens is the matched prefix length.
func (p *Pin) Tokens() int {
	if p == nil {
		return 0
	}
	return len(p.tokens)
}

// Unpin releases the pin. Idempotent; safe on nil.
func (p *Pin) Unpin() {
	if p == nil || p.done {
		return
	}
	p.done = true
	p.m.mu.Lock()
	defer p.m.mu.Unlock()
	delete(p.m.pins, p)
	// A pinned path may have held the cache over budget; releasing the
	// pin is what makes those nodes evictable, so sweep now rather than
	// waiting for the next insert.
	if p.m.bytes > p.m.cfg.BudgetBytes {
		p.m.evict()
		p.m.residentBytes.Set(p.m.bytes)
		p.m.residentNodes.Set(int64(p.m.nodes))
	}
}

// Lookup finds the longest cached prefix of tokens, gathers its KV state
// into contiguous caller-owned caches, and pins the matched range. The
// match is clamped to len(tokens)-1: at least one suffix token must run
// so the extend graph has work and a next-token output. On a zero-token
// match prefix is nil and release a no-op; the caller falls back to full
// prefill but still holds (and must Unpin) the empty pin. An empty token
// sequence is rejected — there is no suffix to run.
func (m *Manager) Lookup(tokens []int64) (pin *Pin, prefix []*nn.KVCache, release func(), matched int, err error) {
	if len(tokens) == 0 {
		return nil, nil, nil, 0, fmt.Errorf("kvcache: lookup of empty token sequence")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	path := m.match(tokens)
	matched = 0
	for _, s := range path {
		matched += s.rows
	}
	if matched >= len(tokens) {
		// Full-prompt hit: drop the final token so the suffix is non-empty.
		over := matched - (len(tokens) - 1)
		matched = len(tokens) - 1
		last := &path[len(path)-1]
		last.rows -= over
		if last.rows == 0 {
			path = path[:len(path)-1]
		}
	}
	pin = m.pinRange(tokens, matched)
	for _, s := range path {
		s.n.lastUse = m.tick
	}
	if matched == 0 {
		m.misses.Inc()
		return pin, nil, func() {}, 0, nil
	}
	prefix, release, err = m.gatherSegs(path, matched)
	if err != nil {
		delete(m.pins, pin)
		pin.done = true
		return nil, nil, nil, 0, err
	}
	m.hits.Inc()
	m.bytesSaved.Add(int64(matched) * m.cfg.Model.Cfg.KVBytesPerToken())
	return pin, prefix, release, matched, nil
}

// gatherSegs materializes a matched path (possibly ending in a partial
// segment) as contiguous per-layer caches of total rows.
func (m *Manager) gatherSegs(path []pathSeg, total int) ([]*nn.KVCache, func(), error) {
	layers, dim := m.cfg.Model.Cfg.Layers, m.cfg.Model.Cfg.Dim
	ks := make([]*tensor.Tensor, layers)
	vs := make([]*tensor.Tensor, layers)
	for i := 0; i < layers; i++ {
		ks[i] = tensor.NewScratch(tensor.F32, total, dim)
		vs[i] = tensor.NewScratch(tensor.F32, total, dim)
	}
	release := func() {
		for i := 0; i < layers; i++ {
			ks[i].Release()
			vs[i].Release()
		}
	}
	at := 0
	for _, s := range path {
		if err := s.n.run.copyRange(ks, vs, 0, s.rows, at); err != nil {
			release()
			return nil, nil, err
		}
		at += s.rows
	}
	caches := make([]*nn.KVCache, layers)
	for i := 0; i < layers; i++ {
		caches[i] = &nn.KVCache{K: ks[i], V: vs[i]}
	}
	return caches, release, nil
}

// Insert extends the tree with the suffix rows of tokens: matched is the
// prefix length Lookup reported, and newK/newV hold per-layer
// [len(tokens)-matched, dim] fresh rows from the suffix computation (the
// caller keeps ownership). Returns a pin over the full token range;
// the caller then Unpins its lookup pin. Concurrent inserts of
// overlapping sequences converge: whatever another session already
// inserted is matched (splitting a node at the divergence point), never
// duplicated.
func (m *Manager) Insert(tokens []int64, matched int, newK, newV []*tensor.Tensor) (*Pin, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	path := m.match(tokens)
	have := 0
	for _, s := range path {
		have += s.rows
	}
	if have < matched {
		return nil, fmt.Errorf("kvcache: matched prefix shrank from %d to %d during insert (pin missing?)", matched, have)
	}
	if have < len(tokens) {
		cur := m.root
		if len(path) > 0 {
			last := path[len(path)-1]
			if last.rows < len(last.n.label) {
				// Divergence mid-label: copy-on-extend split first.
				if err := m.split(last.n, last.rows); err != nil {
					return nil, err
				}
			}
			cur = last.n
		}
		run := newRun(m.cfg.Model.Cfg.Layers, m.cfg.PageTokens, m.cfg.Model.Cfg.Dim)
		if err := run.appendRows(newK, newV, have-matched, len(tokens)-matched); err != nil {
			run.release()
			return nil, err
		}
		child := &node{
			label:   append([]int64(nil), tokens[have:]...),
			run:     run,
			lastUse: m.tick,
		}
		cur.addChild(child)
		m.bytes += run.bytes()
		m.nodes++
		path = append(path, pathSeg{child, len(child.label)})
	}
	pin := m.pinRange(tokens, len(tokens))
	for _, s := range path {
		s.n.lastUse = m.tick
	}
	m.evict()
	m.residentBytes.Set(m.bytes)
	m.residentNodes.Set(int64(m.nodes))
	return pin, nil
}

// Stats is a point-in-time cache snapshot (the /stats "cache" block).
type Stats struct {
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRatio      float64 `json:"hit_ratio"`
	Evictions     int64   `json:"evictions"`
	BytesSaved    int64   `json:"bytes_saved"`
	ResidentBytes int64   `json:"resident_bytes"`
	ResidentNodes int     `json:"resident_nodes"`
	BudgetBytes   int64   `json:"budget_bytes"`
	PageTokens    int     `json:"page_tokens"`
}

// Snapshot reads the current counters.
func (m *Manager) Snapshot() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		Hits:          m.hits.Value(),
		Misses:        m.misses.Value(),
		Evictions:     m.evictions.Value(),
		BytesSaved:    m.bytesSaved.Value(),
		ResidentBytes: m.bytes,
		ResidentNodes: m.nodes,
		BudgetBytes:   m.cfg.BudgetBytes,
		PageTokens:    m.cfg.PageTokens,
	}
	if n := s.Hits + s.Misses; n > 0 {
		s.HitRatio = float64(s.Hits) / float64(n)
	}
	return s
}
