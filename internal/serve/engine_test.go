package serve

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"genie/internal/global"
	"genie/internal/metrics"
	"genie/internal/models"
	"genie/internal/runtime"
)

// newLocalEngine builds a single-lane engine in ModeLocal (no sockets),
// driven manually through lane.iterate for determinism.
func newLocalEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	r := &runtime.LLMRunner{Model: models.NewGPT(rng, models.TinyGPT)}
	e, err := NewEngine(cfg, []Backend{{Name: "local0", Runner: r}})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// refTokens generates the ground-truth sequence with a plain Generate
// call on an identical model.
func refTokens(t *testing.T, prompt []int64, steps int) []int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	r := &runtime.LLMRunner{Model: models.NewGPT(rng, models.TinyGPT)}
	res, err := r.Generate(runtime.ModeLocal, prompt, steps)
	if err != nil {
		t.Fatal(err)
	}
	return res.Tokens
}

var unitPrompt = []int64{3, 14, 15, 9, 2, 6}

func TestQueueBandAndRoundRobin(t *testing.T) {
	q := newTenantQueues()
	mk := func(tenant string, slo global.SLO, id int64) *activeReq {
		return &activeReq{id: id, tenant: tenant, slo: slo}
	}
	// Batch work arrives first; interactive must still dispatch first
	// (the global.Prioritize ordering).
	q.push(mk("batchy", global.SLOBatch, 1))
	q.push(mk("alice", global.SLOInteractive, 2))
	q.push(mk("alice", global.SLOInteractive, 3))
	q.push(mk("alice", global.SLOInteractive, 4))
	q.push(mk("bob", global.SLOInteractive, 5))

	var got []int64
	for ar := q.pop(); ar != nil; ar = q.pop() {
		got = append(got, ar.id)
	}
	// alice(2), bob(5) round-robin, then alice's backlog, then batch.
	want := []int64{2, 5, 3, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
	if q.depth() != 0 {
		t.Fatalf("depth %d after draining", q.depth())
	}
}

// TestFairnessOrdering drives the engine lane deterministically and
// checks dispatch order: interactive before batch, round-robin across
// tenants, FIFO within a tenant — matching global.Prioritize semantics.
func TestFairnessOrdering(t *testing.T) {
	clk := NewFakeClock()
	e := newLocalEngine(t, Config{Clock: clk, MaxBatch: 1})
	var order []string
	submit := func(label, tenant string, slo global.SLO) {
		_, err := e.enqueue(context.Background(), Request{
			Tenant: tenant, SLO: slo, Prompt: unitPrompt, MaxTokens: 1,
			OnToken: func(tok Token) {
				if tok.Index == 0 {
					order = append(order, label)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	submit("c1", "carol", global.SLOBatch) // first in, batch SLO
	submit("a1", "alice", global.SLOInteractive)
	submit("a2", "alice", global.SLOInteractive)
	submit("b1", "bob", global.SLOInteractive)

	for e.lanes[0].iterate() {
	}
	want := []string{"a1", "b1", "a2", "c1"}
	if len(order) != len(want) {
		t.Fatalf("dispatched %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestDeadlineExpiryMidDecode: a request whose deadline passes between
// step boundaries is retired at the next boundary with its partial
// tokens.
func TestDeadlineExpiryMidDecode(t *testing.T) {
	clk := NewFakeClock()
	e := newLocalEngine(t, Config{Clock: clk, MaxBatch: 1})
	ar, err := e.enqueue(context.Background(), Request{
		Tenant: "t", Prompt: unitPrompt, MaxTokens: 100, Timeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	l := e.lanes[0]
	l.iterate() // prefill + first decode step (2 tokens)
	l.iterate() // third token
	if n := len(ar.tokens); n != 3 {
		t.Fatalf("expected 3 tokens mid-flight, got %d", n)
	}
	clk.Advance(100 * time.Millisecond) // past the deadline, mid-decode
	l.iterate()
	select {
	case <-ar.done:
	default:
		t.Fatal("request not retired after deadline")
	}
	if !errors.Is(ar.err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", ar.err)
	}
	if len(ar.res.Tokens) != 3 {
		t.Fatalf("partial result has %d tokens, want 3", len(ar.res.Tokens))
	}
	if st := e.Stats(); st.Expired != 1 || st.Active != 0 {
		t.Fatalf("stats after expiry: %+v", st)
	}
}

// TestJoinLeaveAtStepBoundaries: a second request joins the running
// batch at a step boundary, decodes alongside the first, and leaves when
// finished — while the first continues, producing exactly the tokens a
// standalone Generate yields.
func TestJoinLeaveAtStepBoundaries(t *testing.T) {
	clk := NewFakeClock()
	e := newLocalEngine(t, Config{Clock: clk, MaxBatch: 4})
	l := e.lanes[0]

	r1, err := e.enqueue(context.Background(), Request{Tenant: "a", Prompt: unitPrompt, MaxTokens: 6})
	if err != nil {
		t.Fatal(err)
	}
	l.iterate() // r1: prefill + 1 step → 2 tokens, occupancy 1

	r2, err := e.enqueue(context.Background(), Request{Tenant: "b", Prompt: unitPrompt, MaxTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	l.iterate() // r2 joins (prefill) and both step → r2 done (leaves)
	select {
	case <-r2.done:
	default:
		t.Fatal("r2 should have completed and left the batch")
	}
	if int(l.activeN.Load()) != 1 {
		t.Fatalf("batch should hold only r1, active=%d", l.activeN.Load())
	}
	for !isDone(r1) {
		if !l.iterate() {
			t.Fatal("lane idle before r1 finished")
		}
	}
	want := refTokens(t, unitPrompt, 6)
	assertTokens(t, "r1", r1.res.Tokens, want)
	assertTokens(t, "r2", r2.res.Tokens, want[:2])

	st := e.Stats()
	if st.MaxOccupancy != 2 {
		t.Fatalf("max occupancy %d, want 2 (continuous batch merged r1+r2)", st.MaxOccupancy)
	}
	if st.Completed != 2 {
		t.Fatalf("completed %d, want 2", st.Completed)
	}
}

// TestGracefulDrain: draining rejects new work but completes everything
// already admitted.
func TestGracefulDrain(t *testing.T) {
	clk := NewFakeClock()
	e := newLocalEngine(t, Config{Clock: clk, MaxBatch: 4})
	var admitted []*activeReq
	for i := 0; i < 3; i++ {
		ar, err := e.enqueue(context.Background(), Request{Tenant: "t", Prompt: unitPrompt, MaxTokens: 3})
		if err != nil {
			t.Fatal(err)
		}
		admitted = append(admitted, ar)
	}
	drainDone := make(chan error, 1)
	go func() { drainDone <- e.Drain(context.Background()) }()

	// New work is rejected the moment draining begins.
	waitDraining(t, e)
	if _, err := e.enqueue(context.Background(), Request{Tenant: "t", Prompt: unitPrompt}); !errors.Is(err, ErrDraining) {
		t.Fatalf("enqueue while draining: %v, want ErrDraining", err)
	}

	for e.lanes[0].iterate() {
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i, ar := range admitted {
		if !isDone(ar) || ar.err != nil {
			t.Fatalf("admitted request %d not completed cleanly (err=%v)", i, ar.err)
		}
		if len(ar.res.Tokens) != 3 {
			t.Fatalf("request %d: %d tokens, want 3", i, len(ar.res.Tokens))
		}
	}
}

// TestInvalidRequestRejected: malformed requests fail at admission
// with ErrInvalidRequest (HTTP 400), not deep in a lane as a 500.
func TestInvalidRequestRejected(t *testing.T) {
	e := newLocalEngine(t, Config{Clock: NewFakeClock()})
	cases := []Request{
		{Tenant: "t"},                            // empty prompt
		{Tenant: "t", Prompt: []int64{1, 9999}},  // out-of-vocab token
		{Tenant: "t", Prompt: []int64{-1}},       // negative token
		{Tenant: "t", Prompt: make([]int64, 64)}, // prompt fills the context
	}
	for i, req := range cases {
		if _, err := e.enqueue(context.Background(), req); !errors.Is(err, ErrInvalidRequest) {
			t.Fatalf("case %d: err = %v, want ErrInvalidRequest", i, err)
		}
	}
	// An oversized max_tokens clamps to the context window instead.
	ar, err := e.enqueue(context.Background(), Request{Tenant: "t", Prompt: unitPrompt, MaxTokens: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if want := 64 - len(unitPrompt); ar.maxTokens != want { // TinyGPT MaxSeq = 64
		t.Fatalf("maxTokens clamped to %d, want %d", ar.maxTokens, want)
	}
}

// TestLoadShed: the admission queue bound rejects rather than queues.
func TestLoadShed(t *testing.T) {
	e := newLocalEngine(t, Config{Clock: NewFakeClock(), MaxQueue: 2})
	for i := 0; i < 2; i++ {
		if _, err := e.enqueue(context.Background(), Request{Tenant: "t", Prompt: unitPrompt}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.enqueue(context.Background(), Request{Tenant: "t", Prompt: unitPrompt}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third enqueue: %v, want ErrOverloaded", err)
	}
	if st := e.Stats(); st.Shed != 1 || st.Queued != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestCancelledContextRetires: a cancelled submitter's request leaves
// the batch at the next step boundary.
func TestCancelledContextRetires(t *testing.T) {
	e := newLocalEngine(t, Config{Clock: NewFakeClock(), MaxBatch: 2})
	ctx, cancel := context.WithCancel(context.Background())
	ar, err := e.enqueue(ctx, Request{Tenant: "t", Prompt: unitPrompt, MaxTokens: 50})
	if err != nil {
		t.Fatal(err)
	}
	l := e.lanes[0]
	l.iterate()
	cancel()
	l.iterate()
	if !isDone(ar) || !errors.Is(ar.err, context.Canceled) {
		t.Fatalf("cancelled request err=%v", ar.err)
	}
	if st := e.Stats(); st.Cancelled != 1 || st.Active != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestEngineStopReleasesGoroutines: every lane goroutine Start launches
// must exit across Drain+Stop — the dynamic counterpart to genie-lint's
// static goleak check (see metrics.GoroutineSnapshot).
func TestEngineStopReleasesGoroutines(t *testing.T) {
	snap := metrics.SnapGoroutines()
	e := newLocalEngine(t, Config{MaxBatch: 2})
	e.Start()
	if _, err := e.Submit(context.Background(), Request{Tenant: "t", Prompt: unitPrompt, MaxTokens: 3}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	e.Stop()
	snap.Check(t)
}

func isDone(ar *activeReq) bool {
	select {
	case <-ar.done:
		return true
	default:
		return false
	}
}

func waitDraining(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !e.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("engine never started draining")
		}
		time.Sleep(time.Millisecond)
	}
}

func assertTokens(t *testing.T, label string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tokens, want %d (%v vs %v)", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s diverges at %d: %v vs %v", label, i, got, want)
		}
	}
}

// TestStatsTenantVisibleWhileInFlight: a tenant whose admission queue
// drained to zero but whose requests are still decoding must stay
// visible in Stats().Tenants. The queues alone forget a tenant the
// instant its last queued request dispatches (band.pop drops it from
// rotation), so without the engine's in-flight counts a tenant with
// work on the GPU would read as absent — regression test for that
// blind spot.
func TestStatsTenantVisibleWhileInFlight(t *testing.T) {
	clk := NewFakeClock()
	e := newLocalEngine(t, Config{Clock: clk, MaxBatch: 2})
	l := e.lanes[0]
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := e.enqueue(ctx, Request{Tenant: "alice", Prompt: unitPrompt, MaxTokens: 6}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.enqueue(ctx, Request{Tenant: "bob", Prompt: unitPrompt, MaxTokens: 3}); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if got := st.Tenants["alice"]; got != (TenantLoad{Queued: 2}) {
		t.Fatalf("alice pre-dispatch = %+v, want {Queued:2}", got)
	}
	if got := st.Tenants["bob"]; got != (TenantLoad{Queued: 1}) {
		t.Fatalf("bob pre-dispatch = %+v, want {Queued:1}", got)
	}

	// One iterate admits MaxBatch=2 requests round-robin: one of
	// alice's plus bob's only one. Bob's queue is now empty while his
	// request decodes — exactly the state the old /stats lost.
	l.iterate()
	st = e.Stats()
	if got := st.Tenants["alice"]; got != (TenantLoad{Queued: 1, Active: 1}) {
		t.Fatalf("alice mid-flight = %+v, want {Queued:1 Active:1}", got)
	}
	if got := st.Tenants["bob"]; got != (TenantLoad{Active: 1}) {
		t.Fatalf("bob with drained queue = %+v, want {Active:1}", got)
	}
	if st.Queued != 1 || st.Active != 2 {
		t.Fatalf("queued/active = %d/%d, want 1/2", st.Queued, st.Active)
	}

	// Bob completes (3 tokens), alice keeps decoding: bob must vanish
	// from the map entirely rather than linger at zero.
	l.iterate()
	st = e.Stats()
	if _, ok := st.Tenants["bob"]; ok {
		t.Fatalf("bob still reported after completion: %+v", st.Tenants)
	}
	if got := st.Tenants["alice"]; got.Active < 1 {
		t.Fatalf("alice dropped while decoding: %+v", got)
	}

	for l.iterate() {
	}
	st = e.Stats()
	if len(st.Tenants) != 0 {
		t.Fatalf("tenants %+v after drain, want none", st.Tenants)
	}
	if st.Completed != 3 {
		t.Fatalf("completed = %d, want 3", st.Completed)
	}
}
