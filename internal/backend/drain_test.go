package backend

import (
	"net"
	"testing"
	"time"

	"genie/internal/device"
	"genie/internal/transport"
)

// TestDrainGracefulShutdown: Drain plus closing the listener is the
// genie-server shutdown path — idle connections close, Listen returns,
// new connections are refused.
func TestDrainGracefulShutdown(t *testing.T) {
	srv := NewServer(device.A100)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	listenDone := make(chan error, 1)
	go func() { listenDone <- srv.Listen(l) }()

	conn, err := transport.Dial(l.Addr().String(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewClient(conn)
	if _, err := client.Ping(); err != nil {
		t.Fatal(err)
	}

	// Shutdown sequence: stop accepting, then drain.
	l.Close()
	srv.Drain()

	select {
	case err := <-listenDone:
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Listen did not return after drain")
	}

	// The idle connection was closed under us.
	if _, err := client.Ping(); err == nil {
		t.Fatal("ping succeeded on a drained server")
	}
}

// TestDrainRefusesNewConnections: a connection arriving after Drain is
// rejected even if the listener races one last Accept.
func TestDrainRefusesNewConnections(t *testing.T) {
	srv := NewServer(device.A100)
	srv.Drain()
	client, server := transport.Pipe(nil, nil)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(server) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve on draining server: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not refuse connection while draining")
	}
	client.Close()
}

// TestDrainFinishesInFlightRequest: a request read off the wire before
// Drain still gets its reply (the connection closes only afterwards).
func TestDrainFinishesInFlightRequest(t *testing.T) {
	srv := NewServer(device.A100)
	clientConn, serverConn := transport.Pipe(nil, nil)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(serverConn) }()

	client := transport.NewClient(clientConn)
	if _, err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Drain()
	// The Serve loop exits at the next boundary; the connection closes.
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		// Idle at Drain time: the close should have unblocked Recv.
		t.Fatal("Serve did not exit after drain")
	}
}
