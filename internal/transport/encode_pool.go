package transport

import "genie/internal/tensor"

// Pooled encode scratch for the hot request paths (upload, exec). The
// non-pooled Encode* functions allocate a fresh slice per call, which is
// fine for replies and tests but puts the per-token client datapath —
// one exec encode per decode step, plus weight uploads at provisioning —
// at the mercy of the allocator. The pooled variants size the buffer
// exactly, borrow it from a BufferPool (the same pinned-memory analogue
// the tensors use, §3.4), and hand it back once the frame is on the
// wire. Encoded bytes are identical to the non-pooled forms.

// encPool recycles encode scratch buffers. Separate from any tensor
// pool: encode buffers live for exactly one call and stay small in
// count, so a modest per-class cap suffices.
var encPool = NewBufferPool(32)

// EncPoolStats exposes the encode scratch pool's counters (benchmarks
// and tests assert reuse on the steady-state path).
func EncPoolStats() PoolStats { return encPool.Stats() }

// ReleaseEncoded returns a buffer obtained from EncodeUploadPooled or
// EncodeExecPooled. Safe to call with any byte slice: buffers that did
// not come from the pool (or grew past their size class) are dropped.
func ReleaseEncoded(b []byte) {
	if cap(b) == 0 {
		return
	}
	encPool.Put(b[:len(b):cap(b)])
}

// strWireSize is the encoded size of a u16-length-prefixed string,
// honoring the codec's truncation at 64 KiB.
func strWireSize(s string) int {
	if len(s) > 0xffff {
		return 2 + 0xffff
	}
	return 2 + len(s)
}

// tensorWireSize is the encoded size of buf.tensor's output.
func tensorWireSize(t *tensor.Tensor) int {
	n := 2 + 4*t.Shape().Rank() + 4 + len(t.Bytes())
	if t.DType() == tensor.I8 {
		n += 5 + 4*len(t.Scales())
	}
	return n
}

// EncodeUploadPooled is EncodeUpload into pooled scratch. Pass the
// payload back via ReleaseEncoded once the frame has been written.
func EncodeUploadPooled(u *Upload) []byte {
	e := buf{b: encPool.Get(strWireSize(u.Key) + tensorWireSize(u.Data))[:0]}
	e.str(u.Key)
	e.tensor(u.Data)
	return e.b
}

// EncodeExecPooled is EncodeExec into pooled scratch. Pass the payload
// back via ReleaseEncoded once the frame has been written.
func EncodeExecPooled(x *Exec) ([]byte, error) {
	// The graph serializes through its own writer; borrow scratch for it
	// too, seeded at its last-seen class so steady-state encodes of the
	// same step graph never grow it.
	gw := &sliceWriter{b: encPool.Get(4096)[:0]}
	defer ReleaseEncoded(gw.b)
	if err := x.Graph.Encode(gw); err != nil {
		return nil, err
	}
	n := 4 + len(gw.b) + 4
	for i := range x.Binds {
		bd := &x.Binds[i]
		n += strWireSize(bd.Ref) + 1
		switch {
		case bd.Inline != nil:
			n += tensorWireSize(bd.Inline)
		case bd.Hash != [HashSize]byte{}:
			n += HashSize
		default:
			n += strWireSize(bd.Key) + 4
		}
	}
	n += 4
	for _, k := range x.Keep {
		n += 4 + strWireSize(k)
	}
	n += 4 + 4*len(x.Want)
	e := buf{b: encPool.Get(n)[:0]}
	e.u32(uint32(len(gw.b)))
	e.b = append(e.b, gw.b...)
	e.u32(uint32(len(x.Binds)))
	for _, bd := range x.Binds {
		e.str(bd.Ref)
		switch {
		case bd.Inline != nil && bd.Cache:
			e.u8(3)
			e.tensor(bd.Inline)
		case bd.Inline != nil:
			e.u8(1)
			e.tensor(bd.Inline)
		case bd.Hash != [HashSize]byte{}:
			e.u8(2)
			e.b = append(e.b, bd.Hash[:]...)
		default:
			e.u8(0)
			e.str(bd.Key)
			e.u32(bd.Epoch)
		}
	}
	e.u32(uint32(len(x.Keep)))
	for _, id := range keepOrder(x.Keep) {
		e.u32(uint32(id))
		e.str(x.Keep[id])
	}
	e.u32(uint32(len(x.Want)))
	for _, id := range x.Want {
		e.u32(uint32(id))
	}
	return e.b, nil
}
