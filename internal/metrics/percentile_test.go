package metrics

import (
	"testing"
	"time"
)

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 0.95); got != 0 {
		t.Errorf("empty: got %v, want 0", got)
	}
	if got := Percentile([]time.Duration{}, 0.5); got != 0 {
		t.Errorf("empty slice: got %v, want 0", got)
	}
}

func TestPercentileSingle(t *testing.T) {
	one := []time.Duration{42 * time.Millisecond}
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		if got := Percentile(one, p); got != 42*time.Millisecond {
			t.Errorf("p=%v: got %v, want 42ms", p, got)
		}
	}
}

func TestPercentileBoundaries(t *testing.T) {
	s := []time.Duration{10, 20, 30, 40, 50}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 10},     // min
		{1, 50},     // max
		{-0.5, 10},  // clamps low
		{1.5, 50},   // clamps high
		{0.25, 20},  // exactly on rank 1, no interpolation
		{0.5, 30},   // exactly on rank 2
		{0.375, 25}, // interpolates between 20 and 30
		{0.95, 48},  // pos = 3.8 → 40 + 0.8*10
	}
	for _, c := range cases {
		if got := Percentile(s, c.p); got != c.want {
			t.Errorf("p=%v: got %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileOfUnsorted(t *testing.T) {
	s := []time.Duration{30, 10, 40, 20}
	if got := PercentileOf(s, 0.5); got != 25 {
		t.Errorf("unsorted median: got %v, want 25", got)
	}
	// Original untouched.
	if s[0] != 30 {
		t.Error("PercentileOf mutated its input")
	}
}
