// Benchmarks regenerating every table and figure in the paper's
// evaluation (§4) plus DESIGN.md's ablations. Each benchmark reports the
// experiment's headline numbers as custom metrics so `go test -bench`
// output IS the reproduction record:
//
//	go test -bench=. -benchmem
//
// Paper-scale experiments (GPT-J 6B / A100 / 25 Gbps) run on the
// discrete-event simulator; correctness-plane benchmarks (pinning,
// lineage recovery, transport) measure real execution.
package genie

import (
	"math/rand"
	"net"
	"strconv"
	"testing"

	"genie/internal/eval"
	"genie/internal/lineage"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/runtime"
	"genie/internal/scheduler"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// --- Table 1 ---

// BenchmarkTable1Workloads builds, annotates, and schedules all four
// Table-1 workload families, asserting each row's key optimization
// fires.
func BenchmarkTable1Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := eval.Table1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Applied {
				b.Fatalf("%s: key optimization did not apply", r.Workload)
			}
		}
	}
}

// --- Table 2 ---

func reportPhase(b *testing.B, prefix string, r eval.PhaseRow) {
	b.ReportMetric(r.Latency.Seconds(), prefix+"_s")
	b.ReportMetric(float64(r.NetBytes)/1e6, prefix+"_MB")
	b.ReportMetric(r.Util()*100, prefix+"_util%")
}

// BenchmarkTable2Prefill regenerates the prefill block of Table 2.
func BenchmarkTable2Prefill(b *testing.B) {
	cfg := eval.PaperConfig()
	for _, mode := range []runtime.Mode{runtime.ModeLocal, runtime.ModeNaive, runtime.ModeDeltaKV, runtime.ModeSemAware} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var r eval.Result
			for i := 0; i < b.N; i++ {
				r = cfg.Run(mode)
			}
			reportPhase(b, "prefill", r.Prefill)
		})
	}
}

// BenchmarkTable2Decode regenerates the decode block of Table 2.
func BenchmarkTable2Decode(b *testing.B) {
	cfg := eval.PaperConfig()
	for _, mode := range []runtime.Mode{runtime.ModeLocal, runtime.ModeNaive, runtime.ModeDeltaKV, runtime.ModeSemAware} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var r eval.Result
			for i := 0; i < b.N; i++ {
				r = cfg.Run(mode)
			}
			reportPhase(b, "decode", r.Decode)
		})
	}
	// The paper-calibrated naive variant (amortized weight re-uploads).
	b.Run("naive_amortized", func(b *testing.B) {
		c := cfg
		c.NaiveReuploadPeriod = 6.5
		var r eval.Result
		for i := 0; i < b.N; i++ {
			r = c.Run(runtime.ModeNaive)
		}
		reportPhase(b, "decode", r.Decode)
	})
}

// --- Table 3 ---

// BenchmarkTable3 regenerates decode-latency scaling for N ∈
// {50,100,150,200}.
func BenchmarkTable3(b *testing.B) {
	cfg := eval.PaperConfig()
	for _, mode := range []runtime.Mode{runtime.ModeDeltaKV, runtime.ModeSemAware} {
		for _, n := range []int{50, 100, 150, 200} {
			mode, n := mode, n
			b.Run(mode.String()+"/N="+strconv.Itoa(n), func(b *testing.B) {
				c := cfg
				c.DecodeLen = n
				var r eval.Result
				for i := 0; i < b.N; i++ {
					r = c.Run(mode)
				}
				b.ReportMetric(r.Decode.Latency.Seconds(), "decode_s")
			})
		}
	}
}

// --- Fig. 1 ---

// BenchmarkFig1NarrowWaist quantifies the semantic translation gap: the
// SRG retains phases/residency/modality that a driver-level lowering
// erases.
func BenchmarkFig1NarrowWaist(b *testing.B) {
	var rows []eval.NarrowWaistResult
	for i := 0; i < b.N; i++ {
		rows = eval.Fig1NarrowWaist()
	}
	var srgFacts, driverFacts int
	for _, r := range rows {
		srgFacts += r.SRGPhases + r.SRGResidency + r.SRGModalities
	}
	b.ReportMetric(float64(srgFacts), "srg_semantic_facts")
	b.ReportMetric(float64(driverFacts), "driver_semantic_facts")
}

// --- Ablations ---

// BenchmarkAblationColocation measures the cost of losing stateful
// co-location (A1).
func BenchmarkAblationColocation(b *testing.B) {
	cfg := eval.PaperConfig()
	var r eval.ColocationResult
	for i := 0; i < b.N; i++ {
		r = eval.AblationColocation(cfg)
	}
	b.ReportMetric(float64(r.MovedLatency)/float64(r.ColocatedLatency), "slowdown_x")
	b.ReportMetric(float64(r.MovedBytes)/float64(r.ColocatedBytes), "traffic_x")
}

// BenchmarkAblationPipeline measures pipelined-CNN stream speedup (A2).
func BenchmarkAblationPipeline(b *testing.B) {
	cfg := eval.PaperConfig()
	for _, devs := range []int{2, 4} {
		devs := devs
		b.Run("devices="+strconv.Itoa(devs), func(b *testing.B) {
			var r eval.PipelineResult
			for i := 0; i < b.N; i++ {
				r = eval.AblationPipeline(cfg.Device, devs, 256)
			}
			b.ReportMetric(r.Speedup(), "speedup_x")
		})
	}
}

// BenchmarkAblationRecompute finds the congestion crossover where
// recomputation beats fetching (A3).
func BenchmarkAblationRecompute(b *testing.B) {
	cfg := eval.PaperConfig()
	congestion := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	var points []eval.RecomputePoint
	for i := 0; i < b.N; i++ {
		points = eval.AblationRecompute(cfg.Device, cfg.Link,
			scheduler.RDMAProfile, 64<<20, 3e11, congestion)
	}
	crossover := 1.0
	for _, p := range points {
		if p.ChoseRecomp {
			crossover = p.Congestion
			break
		}
	}
	b.ReportMetric(crossover, "crossover_congestion")
}

// BenchmarkAblationPinning measures proactive pinned allocation vs
// reactive pinning (A4) — real copies, real memory.
func BenchmarkAblationPinning(b *testing.B) {
	const tensorBytes = 1 << 20
	shape := tensor.Shape{tensorBytes / 4}

	b.Run("proactive", func(b *testing.B) {
		pool := transport.NewBufferPool(64)
		b.SetBytes(tensorBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Tensor is born in network-ready memory: zero extra copies.
			t := pool.NewTensor(tensor.F32, shape...)
			sink(t.Bytes())
			t.Release()
		}
	})
	b.Run("reactive", func(b *testing.B) {
		pool := transport.NewBufferPool(64)
		b.SetBytes(tensorBytes)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Tensor allocated unpinned, then copied into pinned memory
			// at send time (the pin_memory() path the paper avoids).
			t := tensor.New(tensor.F32, shape...)
			p := pool.PinReactively(t)
			sink(p.Bytes())
			p.Release()
		}
	})
}

var sinkByte byte

func sink(b []byte) {
	if len(b) > 0 {
		sinkByte ^= b[0]
	}
}

// BenchmarkLineageRecovery measures real end-to-end recovery of a decode
// loop's state after a crash (A5): detect + replay over a live TCP
// backend.
func BenchmarkLineageRecovery(b *testing.B) {
	srv := newBenchServer(b)
	client := dialBench(b, srv.addr)
	mgr := lineage.NewManager()
	mgr.RegisterEndpoint("gpu0", client)

	rng := rand.New(rand.NewSource(9))
	gpt := models.NewGPT(rng, models.TinyGPT)
	prompt := []int64{1, 2, 3, 4}
	pb, _ := gpt.BuildPrefill(prompt)
	for _, n := range pb.Graph().Nodes() {
		if n.Op == "param" {
			data, _ := pb.ParamData(n.Ref)
			if err := mgr.UploadTracked("gpu0", n.Ref, data); err != nil {
				b.Fatal(err)
			}
		}
	}
	// Prefill + a few decode steps, tracked.
	runTracked := func(bl *builderAlias, out models.LLMOutputs) int64 {
		ex := &transport.Exec{Graph: bl.Graph(), Keep: map[srg.NodeID]string{}}
		for _, n := range bl.Graph().Nodes() {
			if n.Op == "input" {
				if n.Residency == srg.ResidencyStatefulKVCache {
					ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Key: n.Ref})
					continue
				}
				data, _ := bl.InputData(n.Ref)
				ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
			}
		}
		for i := range out.CacheK {
			ex.Keep[out.CacheK[i]] = models.CacheRef(i, "k")
			ex.Keep[out.CacheV[i]] = models.CacheRef(i, "v")
		}
		ex.Want = []srg.NodeID{out.NextToken}
		ok, err := mgr.ExecTracked("gpu0", ex)
		if err != nil {
			b.Fatal(err)
		}
		return ok.Results[out.NextToken].I64()[0]
	}
	pb2, out := gpt.BuildPrefill(prompt)
	next := runTracked(pb2, out)
	hist := len(prompt)
	for s := 0; s < 3; s++ {
		db, dout := gpt.BuildDecodeStep(next, hist, hist, emptyBenchCaches(gpt))
		next = runTracked(db, dout)
		hist++
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.srv.Crash()
		n, err := mgr.RecoverFrom("gpu0", "gpu0")
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("nothing recovered")
		}
	}
}

// BenchmarkGlobalBatching sweeps cross-tenant decode batch sizes (A6).
func BenchmarkGlobalBatching(b *testing.B) {
	cfg := eval.PaperConfig()
	var points []eval.BatchingPoint
	for i := 0; i < b.N; i++ {
		points = eval.AblationGlobalBatching(cfg.Device, models.GPTJ6B, 100,
			[]int{1, 2, 4, 8, 16, 32})
	}
	for _, p := range points {
		if p.Batch == 8 {
			b.ReportMetric(p.Speedup, "batch8_speedup_x")
		}
	}
}

// BenchmarkServingPolicies runs the A8 multi-request serving simulation
// across scheduling policies.
func BenchmarkServingPolicies(b *testing.B) {
	cfg := eval.DefaultServingConfig()
	for _, pol := range []eval.ServingPolicy{eval.ServeBlindFCFS, eval.ServePhaseAware, eval.ServePhaseAwareBatched} {
		pol := pol
		b.Run(pol.String(), func(b *testing.B) {
			var r eval.ServingResult
			for i := 0; i < b.N; i++ {
				r = eval.RunServing(cfg, pol)
			}
			b.ReportMetric(r.Throughput, "req/s")
			b.ReportMetric(r.P95Lat.Seconds(), "p95_s")
			b.ReportMetric(r.P95TTFT.Seconds(), "p95_ttft_s")
		})
	}
}

// BenchmarkRPCOverheadSweep projects Table 2 onto a zero-copy transport
// (A7): orderings hold, the gap to local collapses.
func BenchmarkRPCOverheadSweep(b *testing.B) {
	for _, prof := range []scheduler.RPCProfile{scheduler.TensorPipeProfile, scheduler.RDMAProfile} {
		prof := prof
		b.Run(prof.Name, func(b *testing.B) {
			cfg := eval.PaperConfig()
			cfg.RPC = prof
			var sem eval.Result
			for i := 0; i < b.N; i++ {
				sem = cfg.Run(runtime.ModeSemAware)
			}
			b.ReportMetric(sem.Decode.Latency.Seconds(), "sem_decode_s")
			b.ReportMetric(sem.Decode.Util()*100, "sem_util%")
		})
	}
}

// --- real-transport microbenchmarks ---

// BenchmarkTransportExecRoundTrip measures one remote subgraph execution
// over a live TCP socket (per-op overhead of the real wire path).
func BenchmarkTransportExecRoundTrip(b *testing.B) {
	srv := newBenchServer(b)
	client := dialBench(b, srv.addr)
	if _, err := srv.srv.Upload("w", tensor.FromF32(tensor.Shape{64, 64}, make([]float32, 4096))); err != nil {
		b.Fatal(err)
	}

	bl := newBuilderAlias("bench")
	x := bl.Input("x", tensor.New(tensor.F32, 8, 64))
	w := bl.Param("w", tensor.New(tensor.F32, 64, 64))
	y := bl.MatMul(x, w)
	xt, _ := bl.InputData("x")
	ex := &transport.Exec{
		Graph: bl.Graph(),
		Binds: []transport.Binding{{Ref: "x", Inline: xt}},
		Want:  []srg.NodeID{y.ID()},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Exec(ex); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSRGEncode measures SRG wire-format serialization (shipped on
// every semantics-aware call).
func BenchmarkSRGEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := models.NewGPT(rng, models.TinyGPT)
	db, _ := m.BuildDecodeStep(1, 8, 8, emptyBenchCaches(m))
	g := db.Graph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var c countWriter
		if err := g.Encode(&c); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(c.n)
	}
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// --- helpers ---

type builderAlias = Builder

func newBuilderAlias(name string) *builderAlias { return NewBuilder(name) }

type benchServer struct {
	srv  *Server
	addr string
}

func newBenchServer(b *testing.B) *benchServer {
	b.Helper()
	srv := NewServer(A100)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	go func() { _ = srv.Listen(l) }()
	return &benchServer{srv: srv, addr: l.Addr().String()}
}

func dialBench(b *testing.B, addr string) *Client {
	b.Helper()
	client, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { client.Close() })
	return client
}

func emptyBenchCaches(m *models.GPT) []*nn.KVCache {
	caches := make([]*nn.KVCache, m.Cfg.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{}
	}
	return caches
}

// BenchmarkAblationFusion measures the graph-shrink and modeled
// launch-overhead savings of elementwise fusion on a transformer capture.
func BenchmarkAblationFusion(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	m := models.NewGPT(rng, models.TinyGPT)
	bld, _ := m.BuildPrefill([]int64{1, 2, 3, 4, 5, 6, 7, 8})
	g := bld.Graph()
	var fusedNodes int
	var after int
	for i := 0; i < b.N; i++ {
		g2, fused := scheduler.FuseElementwise{}.Apply(g)
		fusedNodes = fused
		after = g2.Len()
	}
	_ = fusedNodes
	b.ReportMetric(float64(g.Len()), "nodes_before")
	b.ReportMetric(float64(after), "nodes_after")
	// Each swallowed interior node is one kernel launch saved.
	b.ReportMetric(float64(g.Len()-after), "launches_saved")
}

// BenchmarkLearnedLexicon measures §5's learned-recognizer training +
// held-out classification.
func BenchmarkLearnedLexicon(b *testing.B) {
	var res eval.LearnedLexiconResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = eval.LearnedLexicon()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Accuracy()*100, "heldout_acc%")
}
