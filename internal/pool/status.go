package pool

import "time"

// MemberStatus is one member's row in Status.
type MemberStatus struct {
	Name        string `json:"name"`
	Healthy     bool   `json:"healthy"`
	Spare       bool   `json:"spare"`
	WeightBytes int64  `json:"weight_bytes"`
	Layers      int    `json:"layers"`
	// Health/Score are the fail-slow scorer's graded state and composite
	// score for this member; empty/zero without Config.Health.
	Health string  `json:"health,omitempty"`
	Score  float64 `json:"score,omitempty"`
}

// ShardStatus is one contiguous layer run in the active plan.
type ShardStatus struct {
	Member string `json:"member"`
	Lo     int    `json:"lo"`
	Hi     int    `json:"hi"`
}

// Status is the pool's externally visible state, rendered into the
// gateway's /stats document.
type Status struct {
	Strategy    string         `json:"strategy"`
	PlanVersion int64          `json:"plan_version"`
	PlanError   string         `json:"plan_error,omitempty"`
	Members     []MemberStatus `json:"members"`
	Shards      []ShardStatus  `json:"shards,omitempty"`
	CutEdges    int            `json:"cut_edges"`
	CutBytes    int64          `json:"cut_bytes"`
	// EstimateUs is the cost model's per-decode-step latency estimate.
	EstimateUs int64 `json:"estimate_us"`

	Rebuilds        int64 `json:"rebuilds"`
	MigratedKeys    int64 `json:"migrated_keys"`
	CrossShardBytes int64 `json:"cross_shard_bytes"`
	MemberFailures  int64 `json:"member_failures"`
	SegmentExecs    int64 `json:"segment_execs"`
}

// Status reports membership, the active plan, and lifetime counters.
func (m *Manager) Status() Status {
	m.mu.Lock()
	plan := m.plan
	planErr := m.planErr
	ver := m.version
	names := append([]string(nil), m.order...)
	m.mu.Unlock()

	st := Status{
		Strategy:        m.cfg.Strategy.String(),
		PlanVersion:     ver,
		Rebuilds:        m.rebuilds.Value(),
		MigratedKeys:    m.migrated.Value(),
		CrossShardBytes: m.crossBytes.Value(),
		MemberFailures:  m.failures.Value(),
		SegmentExecs:    m.segExecs.Value(),
	}
	if plan == nil && planErr != nil {
		st.PlanError = planErr.Error()
	}
	layersOf := map[string]int{}
	if plan != nil {
		st.Strategy = plan.Strategy.String()
		st.CutEdges = plan.CutEdges
		st.CutBytes = plan.CutBytes
		st.EstimateUs = int64(plan.Estimate / time.Microsecond)
		for _, sh := range plan.Shards() {
			st.Shards = append(st.Shards, ShardStatus{Member: sh.Member, Lo: sh.Lo, Hi: sh.Hi})
			layersOf[sh.Member] += sh.Hi - sh.Lo
		}
	}
	for _, name := range names {
		ms := MemberStatus{Name: name, Layers: layersOf[name], Spare: layersOf[name] == 0}
		if plan != nil {
			ms.WeightBytes = plan.Weights[name]
		}
		m.mu.Lock()
		if mem := m.members[name]; mem != nil {
			ms.Healthy = !mem.gate.closed.Load()
		}
		m.mu.Unlock()
		if m.cfg.Health != nil {
			tr := m.cfg.Health.Endpoint(name)
			ms.Health = tr.State().String()
			ms.Score = tr.Score()
		}
		st.Members = append(st.Members, ms)
	}
	return st
}
