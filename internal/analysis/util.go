package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// unparen strips redundant parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (nil for builtins, function-typed variables, and type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// funcPkgPath returns the defining package path of fn ("" for methods of
// universe types such as error.Error).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// isFuncNamed reports whether call invokes the package-level function
// pkgPath.name.
func isFuncNamed(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && funcPkgPath(fn) == pkgPath
}

// recvTypeString renders a method's receiver type (e.g.
// "*sync.Mutex"), or "" for non-methods.
func recvTypeString(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	return sig.Recv().Type().String()
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isErrorType reports whether t is the predeclared error type.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// typeOfExpr returns the type of e, or nil when the checker has none.
func typeOfExpr(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isScopedNamed reports whether t (after pointer deref) is the named
// type `name` declared in a package whose scope path is `scope` or
// below it. Matching by scope path rather than type identity lets
// testdata fixtures declare stand-in types under the path they pretend
// to live at.
func isScopedNamed(t types.Type, scope, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return hasPrefixPath(scopePath(obj.Pkg().Path()), scope)
}

// isSpanType reports whether t is (a pointer to) obs.Span.
func isSpanType(t types.Type) bool {
	return isScopedNamed(t, "genie/internal/obs", "Span")
}

// isScopedFunc reports whether call invokes function `name` of a
// package whose scope path is `scope`, with testdata translation.
func isScopedFunc(info *types.Info, call *ast.CallExpr, scope, name string) bool {
	fn := calleeFunc(info, call)
	return fn != nil && fn.Name() == name && scopePath(funcPkgPath(fn)) == scope
}

// hasPrefixPath reports whether scope path p is pkg or below it.
func hasPrefixPath(p, pkg string) bool {
	return p == pkg || strings.HasPrefix(p, pkg+"/")
}

// walkIgnoringFuncLits walks the subtree of n, calling fn for every
// node, but does not descend into function literals: a FuncLit's body
// executes on its own schedule (often another goroutine), so its
// contents must not be attributed to the enclosing function's control
// flow.
func walkIgnoringFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok && node != n {
			return false
		}
		return fn(node)
	})
}

// funcBodies yields every function body in the files: declarations and
// literals, each exactly once, with the literal bodies presented as
// independent roots.
func funcBodies(files []*ast.File, visit func(name string, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn.Name.Name, fn.Body)
				}
			case *ast.FuncLit:
				visit("func literal", fn.Body)
			}
			return true
		})
	}
}
