package ops

import (
	"math/rand"
	"testing"

	"genie/internal/quant"
	"genie/internal/tensor"
)

// Decode-step kernel benchmarks for the raw-speed tier (DESIGN.md §11):
// the m=1 GEMV that dominates one decode step, per weight dtype. These
// are the before/after rows in EXPERIMENTS.md; `genie-bench -wire`
// reports the same comparison from the CLI.

func benchDecodeMM(b *testing.B, dt string, k, n int) {
	rng := rand.New(rand.NewSource(1))
	a := tensor.New(tensor.F32, 1, k)
	a.RandN(rng, 1)
	w := tensor.New(tensor.F32, k, n)
	w.RandN(rng, 0.02)
	var wb *tensor.Tensor
	switch dt {
	case "f32":
		wb = w
	case "i8":
		var err error
		wb, err = quant.QuantizeLinear(w, 1)
		if err != nil {
			b.Fatal(err)
		}
	case "f16":
		wb = w.ToF16()
	}
	b.SetBytes(int64(wb.NumBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := MatMul(a, wb)
		if err != nil {
			b.Fatal(err)
		}
		out.Release()
	}
}

func BenchmarkDecodeF32(b *testing.B) { benchDecodeMM(b, "f32", 2048, 2048) }
func BenchmarkDecodeI8(b *testing.B)  { benchDecodeMM(b, "i8", 2048, 2048) }
func BenchmarkDecodeF16(b *testing.B) { benchDecodeMM(b, "f16", 2048, 2048) }
