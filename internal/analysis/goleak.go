package analysis

import (
	"go/ast"
	"go/types"
)

// GoleakAnalyzer requires a visible cancellation path for every
// goroutine launched in the serving layers. Drain correctness — the
// property that Stop/Drain actually terminates the engine — is a global
// invariant assembled from local ones: each per-lane and per-connection
// goroutine must observe some stop signal. A `go` statement whose body
// loops forever without consulting a context, a done/stop channel, or a
// closable work channel outlives every drain and pins its session (and
// the remote KV residency it scopes) for the life of the process.
//
// Scope: go statements in genie/internal/serve, genie/internal/backend,
// genie/internal/runtime, genie/internal/compute (the kernel worker
// pool: its resident helpers must observe Stop's done-channel close, or
// every Configure call would strand a band of goroutines for the life of
// the process), and genie/internal/obs (the trace recorder's drain
// goroutine must observe Stop's done-channel close for the same
// reason), plus genie/internal/chaos and genie/internal/pool (elastic
// membership: rebuild and repair paths must not strand per-member
// goroutines when a member leaves), plus genie/internal/simnet and
// genie/internal/eval (the simulator fabric and the eval harness spawn
// per-connection pumps of their own), plus genie/internal/kvcache (the
// prefix cache's split sessions pin resident state that a stranded
// goroutine would hold forever), plus genie/internal/health (the
// scorer's probe and hedge paths spawn racing goroutines whose losers
// must be cancelled, not abandoned). A goroutine is flagged when its
// body (the literal, or the function/method it calls — resolved
// cross-package through the interprocedural Program when available)
// contains an unconditional `for { ... }` loop with no cancellation
// signal anywhere in the body: no channel receive, no select, no
// ranging over a channel, and no context Done/Err check. The summaries
// extend the reach one more hop: a goroutine whose body merely *calls*
// a function that (transitively) loops forever without a cancel signal
// or a return is flagged too — the case the old AST-local pass could
// not see. Bounded goroutines (no infinite loop) pass; dynamic leak
// detection is the job of metrics.GoroutineSnapshot.
var GoleakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines in the serving layers need a visible cancellation path",
	AppliesTo: func(scope string) bool {
		return hasPrefixPath(scope, "genie/internal/serve") ||
			hasPrefixPath(scope, "genie/internal/backend") ||
			hasPrefixPath(scope, "genie/internal/runtime") ||
			hasPrefixPath(scope, "genie/internal/compute") ||
			hasPrefixPath(scope, "genie/internal/obs") ||
			hasPrefixPath(scope, "genie/internal/chaos") ||
			hasPrefixPath(scope, "genie/internal/pool") ||
			hasPrefixPath(scope, "genie/internal/simnet") ||
			hasPrefixPath(scope, "genie/internal/eval") ||
			hasPrefixPath(scope, "genie/internal/quant") ||
			hasPrefixPath(scope, "genie/internal/kvcache") ||
			hasPrefixPath(scope, "genie/internal/health")
	},
	Run: runGoleak,
}

func runGoleak(pass *Pass) {
	decls := declBodies(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, info := goBody(pass, g, decls)
			if body == nil {
				return true
			}
			if loop := endlessLoop(body); loop != nil && !hasCancelSignalIn(info, body) {
				pass.Reportf(g.Pos(),
					"goroutine runs an unconditional loop with no cancellation path: select on a ctx/done channel or bound the loop")
				return true
			}
			if callee := loopingCallee(pass, body, info); callee != nil {
				pass.Reportf(g.Pos(),
					"goroutine calls %s, which loops forever with no cancellation path or return; plumb a ctx/done signal through it", callee.FullName())
			}
			return true
		})
	}
}

// loopingCallee finds a call in body to a module-local function whose
// interprocedural summary loops forever.
func loopingCallee(pass *Pass, body *ast.BlockStmt, info *types.Info) *types.Func {
	if pass.Prog == nil {
		return nil
	}
	var found *types.Func
	walkIgnoringFuncLits(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(info, call); fn != nil {
			if sum, ok := pass.Prog.Summary(fn); ok && sum.LoopsForever {
				found = fn
			}
		}
		return found == nil
	})
	return found
}

// declBodies indexes the package's function declarations by object so a
// `go s.run()` can be traced to run's body.
func declBodies(pass *Pass) map[types.Object]*ast.BlockStmt {
	out := make(map[types.Object]*ast.BlockStmt)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					out[obj] = fd.Body
				}
			}
		}
	}
	return out
}

// goBody resolves the body a go statement will execute — a literal's
// body, a same-package function/method, or (through the Program) a
// module-local function in any package — together with the *types.Info
// of the package that owns the body. Dynamic callees resolve to nil
// (not analyzable, not flagged).
func goBody(pass *Pass, g *ast.GoStmt, decls map[types.Object]*ast.BlockStmt) (*ast.BlockStmt, *types.Info) {
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body, pass.Info
	}
	fn := calleeFunc(pass.Info, g.Call)
	if fn == nil {
		return nil, nil
	}
	if body := decls[fn]; body != nil {
		return body, pass.Info
	}
	if decl, pkg := pass.Prog.Decl(fn); decl != nil {
		return decl.Body, pkg.Info
	}
	return nil, nil
}

// endlessLoop finds an unconditional for-loop in body (not inside a
// nested function literal).
func endlessLoop(body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	walkIgnoringFuncLits(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil && found == nil {
			found = f
		}
		return found == nil
	})
	return found
}
