package transport

import (
	"fmt"
	"sync"

	"genie/internal/tensor"
)

// BufferPool is the pinned, network-ready memory pool — the stand-in for
// DPDK-managed host memory (§3.4). Tensors allocated through the pool are
// born in registered buffers, so sending them requires no reactive
// pinning or staging copy; the ablation bench A4 measures exactly that
// difference against the reactive path.
//
// Buffers are size-class bucketed (powers of two) and recycled.
type BufferPool struct {
	mu      sync.Mutex
	classes map[int][][]byte // sizeClass -> free buffers

	// stats
	allocs  int64
	reuses  int64
	pinned  int64 // bytes currently handed out
	maxHeld int   // per-class free-list cap
}

// NewBufferPool creates a pool that retains at most maxHeldPerClass free
// buffers per size class (0 means a default of 32).
func NewBufferPool(maxHeldPerClass int) *BufferPool {
	if maxHeldPerClass <= 0 {
		maxHeldPerClass = 32
	}
	return &BufferPool{
		classes: make(map[int][][]byte),
		maxHeld: maxHeldPerClass,
	}
}

// sizeClass rounds n up to the next power of two (minimum 64).
func sizeClass(n int) int {
	c := 64
	for c < n {
		c <<= 1
	}
	return c
}

// Get returns a pinned buffer of at least n bytes (sliced to exactly n).
func (p *BufferPool) Get(n int) []byte {
	if n < 0 {
		panic(fmt.Sprintf("transport: negative buffer size %d", n))
	}
	c := sizeClass(n)
	p.mu.Lock()
	defer p.mu.Unlock()
	free := p.classes[c]
	var b []byte
	if len(free) > 0 {
		b = free[len(free)-1]
		p.classes[c] = free[:len(free)-1]
		p.reuses++
	} else {
		b = make([]byte, c)
		p.allocs++
	}
	p.pinned += int64(n)
	return b[:n]
}

// Put returns a buffer obtained from Get.
func (p *BufferPool) Put(b []byte) {
	c := sizeClass(cap(b))
	if c != cap(b) {
		// Not one of ours (or resliced oddly); drop it.
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pinned -= int64(len(b))
	if p.pinned < 0 {
		p.pinned = 0
	}
	if len(p.classes[c]) < p.maxHeld {
		p.classes[c] = append(p.classes[c], b[:cap(b)])
	}
}

// NewTensor allocates a tensor directly in pinned pool memory — the
// proactive-allocation path: the tensor's backing store IS the wire
// buffer.
func (p *BufferPool) NewTensor(dt tensor.DType, shape ...int) *tensor.Tensor {
	s := tensor.Shape(shape)
	n := s.NumElements() * dt.Size()
	b := p.Get(n)
	for i := range b {
		b[i] = 0
	}
	t, err := tensor.WrapPinned(dt, s, b, func() { p.Put(b) })
	if err != nil {
		panic(err) // sizes are consistent by construction
	}
	return t
}

// PinReactively copies an unpinned tensor into pool memory — the
// reactive pin_memory() path the paper's design avoids. It exists so the
// ablation bench can measure the copy it costs.
func (p *BufferPool) PinReactively(t *tensor.Tensor) *tensor.Tensor {
	if t.Pinned() {
		return t
	}
	b := p.Get(t.NumBytes())
	copy(b, t.Bytes())
	out, err := tensor.WrapPinned(t.DType(), t.Shape(), b, func() { p.Put(b) })
	if err != nil {
		panic(err)
	}
	return out
}

// PoolStats reports pool counters.
type PoolStats struct {
	Allocs      int64
	Reuses      int64
	PinnedBytes int64
}

// Stats returns a snapshot of pool counters.
func (p *BufferPool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Allocs: p.allocs, Reuses: p.reuses, PinnedBytes: p.pinned}
}
