package srg

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildDiamond constructs input -> (a, b) -> out.
func buildDiamond(t *testing.T) (*Graph, NodeID, NodeID, NodeID, NodeID) {
	t.Helper()
	g := New("diamond")
	in := g.MustAdd(&Node{Op: "input", Ref: "x", Output: TensorMeta{DType: 0, Shape: []int{4}}})
	a := g.MustAdd(&Node{Op: "relu", Inputs: []NodeID{in}, Cost: CostHints{FLOPs: 10}})
	b := g.MustAdd(&Node{Op: "gelu", Inputs: []NodeID{in}, Cost: CostHints{FLOPs: 30}})
	out := g.MustAdd(&Node{Op: "add", Inputs: []NodeID{a, b}, Cost: CostHints{FLOPs: 5}})
	return g, in, a, b, out
}

func TestAddAssignsDenseIDs(t *testing.T) {
	g, in, a, b, out := buildDiamond(t)
	if in != 0 || a != 1 || b != 2 || out != 3 {
		t.Fatalf("ids %d %d %d %d", in, a, b, out)
	}
	if g.Len() != 4 {
		t.Fatalf("len %d", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddRejectsUnknownInput(t *testing.T) {
	g := New("bad")
	if _, err := g.Add(&Node{Op: "relu", Inputs: []NodeID{5}}); err == nil {
		t.Error("dangling input should fail")
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	g := New("v")
	g.MustAdd(&Node{Op: "input", Ref: "x"})
	// Manually corrupt: leaf with missing ref.
	g.nodes = append(g.nodes, &Node{ID: 1, Op: "param"})
	if err := g.Validate(); err == nil {
		t.Error("param without ref should fail validation")
	}
	g2 := New("v2")
	g2.nodes = append(g2.nodes, &Node{ID: 0, Op: ""})
	if err := g2.Validate(); err == nil {
		t.Error("empty op should fail validation")
	}
	g3 := New("v3")
	g3.nodes = append(g3.nodes, &Node{ID: 0, Op: "relu", Inputs: []NodeID{0}})
	if err := g3.Validate(); err == nil {
		t.Error("self-loop should fail validation")
	}
	g4 := New("v4")
	g4.MustAdd(&Node{Op: "input", Ref: "x"})
	g4.nodes = append(g4.nodes, &Node{ID: 1, Op: "relu", Inputs: []NodeID{0},
		Output: TensorMeta{Shape: []int{0}}})
	if err := g4.Validate(); err == nil {
		t.Error("zero output dim should fail validation")
	}
}

func TestEdgesDerivedFromInputs(t *testing.T) {
	g, in, a, b, out := buildDiamond(t)
	edges := g.Edges()
	if len(edges) != 4 {
		t.Fatalf("%d edges", len(edges))
	}
	// Default rate is 1, non-critical.
	for _, e := range edges {
		if e.Rate != 1 || e.Critical {
			t.Errorf("edge %+v has non-default annotations", e)
		}
	}
	g.SetEdgeRate(out, 1, 0.5)
	g.SetEdgeCritical(out, 0, true)
	found := 0
	for _, e := range g.Edges() {
		if e.To == out && e.ArgIndex == 1 && e.Rate == 0.5 {
			found++
		}
		if e.To == out && e.ArgIndex == 0 && e.Critical {
			found++
		}
	}
	if found != 2 {
		t.Errorf("edge annotations not applied (found %d)", found)
	}
	_ = in
	_ = a
	_ = b
}

func TestOutputsAndConsumers(t *testing.T) {
	g, in, a, b, out := buildDiamond(t)
	outs := g.Outputs()
	if len(outs) != 1 || outs[0] != out {
		t.Fatalf("outputs %v", outs)
	}
	cons := g.Consumers()
	if len(cons[in]) != 2 {
		t.Errorf("input consumers %v", cons[in])
	}
	if len(cons[a]) != 1 || cons[a][0] != out {
		t.Errorf("a consumers %v", cons[a])
	}
	_ = b
}

func TestAncestorsDescendants(t *testing.T) {
	g, in, a, b, out := buildDiamond(t)
	anc := g.AncestorsOf(a)
	if !anc[a] || !anc[in] || anc[b] || anc[out] {
		t.Errorf("ancestors of a: %v", anc)
	}
	desc := g.DescendantsOf(a)
	if !desc[a] || !desc[out] || desc[in] || desc[b] {
		t.Errorf("descendants of a: %v", desc)
	}
}

func TestReplaySetCutsAtAliveNodes(t *testing.T) {
	// Chain: input -> p1 -> p2 -> p3. Lose p3 while p2 is alive:
	// replay must contain only p3.
	g := New("chain")
	in := g.MustAdd(&Node{Op: "input", Ref: "x"})
	p1 := g.MustAdd(&Node{Op: "relu", Inputs: []NodeID{in}})
	p2 := g.MustAdd(&Node{Op: "relu", Inputs: []NodeID{p1}})
	p3 := g.MustAdd(&Node{Op: "relu", Inputs: []NodeID{p2}})

	replay := g.ReplaySet(map[NodeID]bool{p3: true}, map[NodeID]bool{p2: true, in: true})
	if len(replay) != 1 || replay[0] != p3 {
		t.Errorf("replay = %v, want [%d]", replay, p3)
	}

	// Lose p2 and p3 with only the input alive: replay p1,p2,p3.
	replay = g.ReplaySet(map[NodeID]bool{p2: true, p3: true}, map[NodeID]bool{in: true})
	if len(replay) != 3 {
		t.Errorf("replay = %v, want 3 nodes", replay)
	}

	// Nothing alive: the full ancestor closure replays, including input.
	replay = g.ReplaySet(map[NodeID]bool{p3: true}, nil)
	if len(replay) != 4 {
		t.Errorf("replay = %v, want all 4", replay)
	}
}

func TestReplaySetLostNodeAlsoAlive(t *testing.T) {
	// A node marked lost must replay even if listed alive (epoch
	// invalidation overrides stale residency).
	g := New("c")
	in := g.MustAdd(&Node{Op: "input", Ref: "x"})
	p := g.MustAdd(&Node{Op: "relu", Inputs: []NodeID{in}})
	replay := g.ReplaySet(map[NodeID]bool{p: true}, map[NodeID]bool{p: true, in: true})
	if len(replay) != 1 || replay[0] != p {
		t.Errorf("replay = %v", replay)
	}
}

func TestByPhaseByModuleParams(t *testing.T) {
	g := New("m")
	w := g.MustAdd(&Node{Op: "param", Ref: "w", Module: "net.fc", Residency: ResidencyPersistentWeight})
	x := g.MustAdd(&Node{Op: "input", Ref: "x", Phase: PhaseLLMPrefill})
	mm := g.MustAdd(&Node{Op: "matmul", Inputs: []NodeID{x, w}, Module: "net.fc", Phase: PhaseLLMPrefill})
	d := g.MustAdd(&Node{Op: "argmax_last", Inputs: []NodeID{mm}, Phase: PhaseLLMDecode})

	byPhase := g.ByPhase()
	if len(byPhase[PhaseLLMPrefill]) != 2 || len(byPhase[PhaseLLMDecode]) != 1 {
		t.Errorf("byPhase %v", byPhase)
	}
	byMod := g.ByModule()
	if len(byMod["net.fc"]) != 2 {
		t.Errorf("byModule %v", byMod)
	}
	params := g.Params()
	if len(params) != 1 || params[0] != w {
		t.Errorf("params %v", params)
	}
	_ = d
}

func TestTotalCost(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	c := g.TotalCost()
	if c.FLOPs != 45 {
		t.Errorf("total FLOPs %v", c.FLOPs)
	}
}

func TestCostHintsIntensity(t *testing.T) {
	c := CostHints{FLOPs: 100, Bytes: 50}
	if c.Intensity() != 2 {
		t.Errorf("intensity %v", c.Intensity())
	}
	if (CostHints{}).Intensity() != 0 {
		t.Error("zero-byte intensity should be 0")
	}
}

func TestCriticalPathMarksHeaviestChain(t *testing.T) {
	g, in, a, b, out := buildDiamond(t)
	g.MarkCriticalPath()
	// b (30 FLOPs) dominates a (10): path in->b->out is critical.
	critToOut := map[int]bool{}
	for _, e := range g.Edges() {
		if e.Critical {
			if e.To == out {
				critToOut[e.ArgIndex] = true
			}
			if e.To == b && e.From == in {
				critToOut[-1] = true
			}
		}
	}
	if !critToOut[1] || !critToOut[-1] || critToOut[0] {
		t.Errorf("critical edges %v", critToOut)
	}
	_ = a
}

func TestTensorMetaBytes(t *testing.T) {
	m := TensorMeta{DType: 1, Shape: []int{2, 3}} // f16
	if m.Bytes() != 12 {
		t.Errorf("bytes %d", m.Bytes())
	}
	if m.NumElements() != 6 {
		t.Errorf("elements %d", m.NumElements())
	}
	m64 := TensorMeta{DType: 2, Shape: []int{4}} // i64
	if m64.Bytes() != 32 {
		t.Errorf("i64 bytes %d", m64.Bytes())
	}
}

func TestResidencyStrings(t *testing.T) {
	for r, want := range map[Residency]string{
		ResidencyPersistentWeight:    "persistent_weight",
		ResidencyEphemeralActivation: "ephemeral_activation",
		ResidencyStatefulKVCache:     "stateful_kv_cache",
		ResidencyExternalInput:       "external_input",
		ResidencyExternalOutput:      "external_output",
		ResidencyUnknown:             "unknown",
	} {
		if r.String() != want {
			t.Errorf("%d.String() = %q", r, r.String())
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	g, _, _, _, out := buildDiamond(t)
	g.Node(0).Phase = PhaseLLMPrefill
	g.Node(0).Modality = ModalityText
	g.Node(1).Attrs = map[string]string{"alpha": "0.5", "beta": "2"}
	g.Node(2).Residency = ResidencyStatefulKVCache
	g.SetEdgeRate(out, 0, 0.25)
	g.SetEdgeCritical(out, 1, true)

	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || back.Len() != g.Len() {
		t.Fatalf("name/len mismatch")
	}
	for i := 0; i < g.Len(); i++ {
		a, b := g.Node(NodeID(i)), back.Node(NodeID(i))
		if a.Op != b.Op || a.Ref != b.Ref || a.Phase != b.Phase ||
			a.Residency != b.Residency || a.Modality != b.Modality ||
			a.Cost != b.Cost || len(a.Inputs) != len(b.Inputs) {
			t.Errorf("node %d mismatch: %+v vs %+v", i, a, b)
		}
		if len(a.Attrs) != len(b.Attrs) {
			t.Errorf("node %d attrs mismatch", i)
		}
		for k, v := range a.Attrs {
			if b.Attrs[k] != v {
				t.Errorf("node %d attr %q: %q vs %q", i, k, v, b.Attrs[k])
			}
		}
	}
	// Edge annotations survive.
	gotRate, gotCrit := false, false
	for _, e := range back.Edges() {
		if e.To == out && e.ArgIndex == 0 && e.Rate == 0.25 {
			gotRate = true
		}
		if e.To == out && e.ArgIndex == 1 && e.Critical {
			gotCrit = true
		}
	}
	if !gotRate || !gotCrit {
		t.Error("edge annotations lost in round trip")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("NOPE"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := Decode(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	// Truncated valid prefix.
	g, _, _, _, _ := buildDiamond(t)
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Decode(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input should fail")
	}
}

func TestFingerprintStableAndNameIndependent(t *testing.T) {
	g1, _, _, _, _ := buildDiamond(t)
	g2, _, _, _, _ := buildDiamond(t)
	g2.Name = "different-label"
	if g1.Fingerprint() != g2.Fingerprint() {
		t.Error("fingerprint should ignore the name")
	}
	g2.Node(1).Cost.FLOPs = 11
	if g1.Fingerprint() == g2.Fingerprint() {
		t.Error("fingerprint should change with node costs")
	}
	if g1.Name != "diamond" {
		t.Error("Fingerprint must restore the name")
	}
}

func TestFingerprintPropertyEncodeDeterminism(t *testing.T) {
	// Property: encoding is deterministic regardless of attr insertion
	// order (maps are sorted at encode time).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		keys := []string{"a", "b", "c", "d", "e"}
		build := func(order []int) *Graph {
			g := New("p")
			in := g.MustAdd(&Node{Op: "input", Ref: "x"})
			n := &Node{Op: "relu", Inputs: []NodeID{in}, Attrs: map[string]string{}}
			for _, i := range order {
				n.Attrs[keys[i]] = keys[i]
			}
			g.MustAdd(n)
			return g
		}
		perm := rng.Perm(len(keys))
		return build(perm).Fingerprint() == build([]int{0, 1, 2, 3, 4}).Fingerprint()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestJSONExport(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["name"] != "diamond" {
		t.Errorf("json name %v", decoded["name"])
	}
	nodes := decoded["nodes"].([]any)
	if len(nodes) != 4 {
		t.Errorf("json nodes %d", len(nodes))
	}
}

func TestDOTOutput(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	g.MarkCriticalPath()
	dot := g.DOT()
	for _, want := range []string{"digraph", "n0 -> n1", "invhouse", "penwidth=2"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestTopoOrderIsValid(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	order := g.TopoOrder()
	pos := make(map[NodeID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, n := range g.Nodes() {
		for _, in := range n.Inputs {
			if pos[in] >= pos[n.ID] {
				t.Errorf("node %d before its input %d", n.ID, in)
			}
		}
	}
}

func TestNodeLookupBounds(t *testing.T) {
	g, _, _, _, _ := buildDiamond(t)
	if g.Node(-1) != nil || g.Node(99) != nil {
		t.Error("out-of-range Node() should be nil")
	}
}

// TestEncodeDecodePropertyRandomDAGs round-trips randomly generated
// graphs through the wire format: structure, annotations, and
// fingerprints must survive exactly.
func TestEncodeDecodePropertyRandomDAGs(t *testing.T) {
	ops := []string{"relu", "gelu", "softmax", "add", "mul", "matmul"}
	phases := []Phase{PhaseUnknown, PhaseLLMPrefill, PhaseLLMDecode, PhaseCVStage}
	mods := []Modality{ModalityUnknown, ModalityText, ModalityVision}

	gen := func(seed int64) *Graph {
		rng := rand.New(rand.NewSource(seed))
		g := New("prop")
		nLeaves := 1 + rng.Intn(4)
		for i := 0; i < nLeaves; i++ {
			op, ref := "input", "in"
			if rng.Intn(2) == 0 {
				op, ref = "param", "w"
			}
			g.MustAdd(&Node{
				Op: op, Ref: ref + string(rune('a'+i)),
				Residency: Residency(rng.Intn(6)),
				Output:    TensorMeta{DType: uint8(rng.Intn(5)), Shape: []int{1 + rng.Intn(8)}},
			})
		}
		nCompute := 1 + rng.Intn(12)
		for i := 0; i < nCompute; i++ {
			op := ops[rng.Intn(len(ops))]
			nIn := 1
			if op == "add" || op == "mul" || op == "matmul" {
				nIn = 2
			}
			inputs := make([]NodeID, nIn)
			for j := range inputs {
				inputs[j] = NodeID(rng.Intn(g.Len()))
			}
			n := &Node{
				Op: op, Inputs: inputs,
				Phase:    phases[rng.Intn(len(phases))],
				Modality: mods[rng.Intn(len(mods))],
				Cost:     CostHints{FLOPs: float64(rng.Intn(1e6)), Bytes: int64(rng.Intn(1e6))},
				Output:   TensorMeta{Shape: []int{1 + rng.Intn(8)}},
			}
			if rng.Intn(3) == 0 {
				n.Attrs = map[string]string{"k": fmt.Sprint(rng.Intn(100))}
			}
			id := g.MustAdd(n)
			if rng.Intn(4) == 0 {
				g.SetEdgeRate(id, 0, float64(rng.Intn(100))/100)
			}
			if rng.Intn(4) == 0 {
				g.SetEdgeCritical(id, 0, true)
			}
		}
		return g
	}

	check := func(seed int64) bool {
		g := gen(seed)
		if err := g.Validate(); err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			return false
		}
		back, err := Decode(&buf)
		if err != nil {
			return false
		}
		return back.Fingerprint() == g.Fingerprint() && back.Len() == g.Len()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
