// Package cluster models the disaggregated pool: accelerator instances,
// the network links that reach them, and the residency/allocation state
// the scheduler consults. It is the "cluster_state" argument of the
// paper's scheduler interface plan = schedule(srg, cluster_state, policy).
package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"genie/internal/device"
)

// AcceleratorID names one accelerator instance in the pool.
type AcceleratorID string

// Link describes the network path from the client to an accelerator's
// host.
type Link struct {
	// Bandwidth in bytes/s (25 Gbps ≈ 3.125e9 B/s in the paper's setup).
	Bandwidth float64
	// RTT is the propagation round-trip time.
	RTT time.Duration
	// RPCOverhead is fixed per-call software overhead (serialization,
	// dispatch). The paper measures this to dominate with TensorPipe;
	// an RDMA path drives it toward zero.
	RPCOverhead time.Duration
	// Congestion is a multiplicative utilization factor in [0,1): the
	// fraction of Bandwidth currently consumed by other tenants. The
	// dynamic-recomputation policy reads this.
	Congestion float64
}

// EffectiveBandwidth returns bandwidth available after congestion.
func (l Link) EffectiveBandwidth() float64 {
	c := l.Congestion
	if c < 0 {
		c = 0
	}
	if c >= 1 {
		c = 0.99
	}
	return l.Bandwidth * (1 - c)
}

// TransferTime estimates moving n bytes over the link, excluding the
// per-call RPC overhead (callers add that once per call, not per tensor).
func (l Link) TransferTime(n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	return l.RTT/2 + time.Duration(float64(n)/l.EffectiveBandwidth()*float64(time.Second))
}

// Accelerator is one pooled device instance.
type Accelerator struct {
	ID   AcceleratorID
	Spec device.Spec
	Link Link
	// Local marks the client's own device (no network between client and
	// accelerator) — the paper's "Local (upper bound)" mode.
	Local bool
}

// State is the scheduler's view of the pool. It is safe for concurrent
// use: the runtime updates residency/allocation while the global
// scheduler reads it.
type State struct {
	mu    sync.RWMutex
	accs  map[AcceleratorID]*Accelerator
	order []AcceleratorID

	// resident tracks which named objects (weights, caches) are
	// materialized where: key -> accelerator. The "key" is a parameter
	// ref or handle label.
	resident map[string]AcceleratorID
	// residentBytes tracks per-accelerator resident footprint.
	residentBytes map[AcceleratorID]int64
	// queueDepth tracks outstanding work per accelerator for queueing
	// cost estimates and least-loaded placement.
	queueDepth map[AcceleratorID]int
	// failed marks accelerators currently considered down; replacement
	// selection skips them until MarkHealthy.
	failed map[AcceleratorID]bool
}

// NewState builds an empty pool.
func NewState() *State {
	return &State{
		accs:          make(map[AcceleratorID]*Accelerator),
		resident:      make(map[string]AcceleratorID),
		residentBytes: make(map[AcceleratorID]int64),
		queueDepth:    make(map[AcceleratorID]int),
		failed:        make(map[AcceleratorID]bool),
	}
}

// AddAccelerator registers a device in the pool.
func (s *State) AddAccelerator(a *Accelerator) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.accs[a.ID]; dup {
		return fmt.Errorf("cluster: duplicate accelerator %q", a.ID)
	}
	s.accs[a.ID] = a
	s.order = append(s.order, a.ID)
	return nil
}

// Accelerator returns the accelerator by ID, or nil.
func (s *State) Accelerator(id AcceleratorID) *Accelerator {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.accs[id]
}

// Accelerators returns all accelerators in registration order.
func (s *State) Accelerators() []*Accelerator {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Accelerator, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.accs[id])
	}
	return out
}

// Remote returns the non-local accelerators in registration order.
func (s *State) Remote() []*Accelerator {
	var out []*Accelerator
	for _, a := range s.Accelerators() {
		if !a.Local {
			out = append(out, a)
		}
	}
	return out
}

// SetResident records that object key is materialized on acc, occupying
// bytes of device memory.
func (s *State) SetResident(key string, acc AcceleratorID, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.resident[key]; ok {
		// Re-homing: release the previous accounting first. Size is not
		// tracked per key to keep this O(1); callers re-home via
		// EvictResident + SetResident when sizes change.
		_ = prev
	}
	s.resident[key] = acc
	s.residentBytes[acc] += bytes
}

// ResidentOn returns where key is materialized, if anywhere.
func (s *State) ResidentOn(key string) (AcceleratorID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.resident[key]
	return id, ok
}

// EvictResident forgets a materialized object, returning bytes to the
// device budget.
func (s *State) EvictResident(key string, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if acc, ok := s.resident[key]; ok {
		s.residentBytes[acc] -= bytes
		if s.residentBytes[acc] < 0 {
			s.residentBytes[acc] = 0
		}
		delete(s.resident, key)
	}
}

// EvictAccelerator drops every resident object on acc (a failure, §3.5)
// and returns the evicted keys. The accelerator's residency and
// queue-depth accounting reset with it — a failed device holds no work
// and no bytes, so stale entries must not skew Replacement/LeastLoaded.
func (s *State) EvictAccelerator(acc AcceleratorID) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := s.evictLocked(acc)
	sort.Strings(keys)
	return keys
}

// evictLocked clears acc's residency and queue-depth entries; callers
// hold s.mu.
func (s *State) evictLocked(acc AcceleratorID) []string {
	var keys []string
	for k, a := range s.resident {
		if a == acc {
			keys = append(keys, k)
			delete(s.resident, k)
		}
	}
	delete(s.residentBytes, acc)
	delete(s.queueDepth, acc)
	return keys
}

// Remove deregisters an accelerator entirely — elastic-membership
// departure, voluntary or not. Every trace of the member goes with it:
// registration, residency map entries, byte and queue-depth accounting,
// and any failure mark, so the same ID can re-join later (AddAccelerator
// rejects duplicates) and no stale entry leaks into placement decisions.
// Returns the keys that were resident on the member.
func (s *State) Remove(acc AcceleratorID) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := s.evictLocked(acc)
	delete(s.accs, acc)
	delete(s.failed, acc)
	for i, id := range s.order {
		if id == acc {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	sort.Strings(keys)
	return keys
}

// ResidentBytes returns the resident footprint on acc.
func (s *State) ResidentBytes(acc AcceleratorID) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.residentBytes[acc]
}

// IncQueue/DecQueue adjust the outstanding-work depth for least-loaded
// placement.
func (s *State) IncQueue(acc AcceleratorID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queueDepth[acc]++
}

// DecQueue decrements the queue depth, clamping at zero.
func (s *State) DecQueue(acc AcceleratorID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queueDepth[acc] > 0 {
		s.queueDepth[acc]--
	}
}

// QueueDepth returns the outstanding-work depth on acc.
func (s *State) QueueDepth(acc AcceleratorID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.queueDepth[acc]
}

// LeastLoaded returns the healthy remote accelerator with the smallest
// queue depth (ties broken by registration order), or nil if the pool
// has no healthy remote devices.
func (s *State) LeastLoaded() *Accelerator {
	var best *Accelerator
	bestDepth := 0
	for _, a := range s.Remote() {
		if !s.Healthy(a.ID) {
			continue
		}
		d := s.QueueDepth(a.ID)
		if best == nil || d < bestDepth {
			best, bestDepth = a, d
		}
	}
	return best
}

// MarkFailed records that acc is down (§3.5 failure detection): it is
// excluded from Replacement and LeastLoaded until MarkHealthy.
func (s *State) MarkFailed(acc AcceleratorID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failed[acc] = true
}

// MarkHealthy clears a failure mark (a probe succeeded; the backend
// rejoined the pool).
func (s *State) MarkHealthy(acc AcceleratorID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.failed, acc)
}

// Healthy reports whether acc carries no failure mark.
func (s *State) Healthy(acc AcceleratorID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return !s.failed[acc]
}

// Replacement picks the least-loaded healthy remote accelerator other
// than failed — the endpoint a recovering session rebinds to. Returns
// nil when no healthy candidate exists (the caller sheds or waits).
func (s *State) Replacement(failed AcceleratorID) *Accelerator {
	var best *Accelerator
	bestDepth := 0
	for _, a := range s.Remote() {
		if a.ID == failed || !s.Healthy(a.ID) {
			continue
		}
		d := s.QueueDepth(a.ID)
		if best == nil || d < bestDepth {
			best, bestDepth = a, d
		}
	}
	return best
}

// SetCongestion updates the congestion factor on an accelerator's link —
// the runtime-hint-adaptation extension point (§3.3).
func (s *State) SetCongestion(acc AcceleratorID, c float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.accs[acc]
	if !ok {
		return fmt.Errorf("cluster: unknown accelerator %q", acc)
	}
	a.Link.Congestion = c
	return nil
}
