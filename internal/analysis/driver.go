package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Exit codes of the driver (and of cmd/genie-lint).
const (
	ExitClean    = 0 // no findings
	ExitFindings = 1 // at least one diagnostic
	ExitError    = 2 // load failure, type error, or bad usage
)

// Options configures one driver run.
type Options struct {
	// Dir is where module-root discovery starts ("" = current directory).
	Dir string
	// Checks restricts the run to the named analyzers (nil = all).
	Checks []string
	// JSON switches the report to a JSON array of Diagnostic objects.
	JSON bool
	// Out and Errout receive the report and load errors respectively.
	Out    io.Writer
	Errout io.Writer
}

// Run loads the packages matched by patterns, applies the analyzer
// registry, filters //lint:ignore directives, prints the report, and
// returns the process exit code.
func Run(patterns []string, opts Options) int {
	if opts.Out == nil || opts.Errout == nil {
		panic("analysis: Options.Out and Errout are required")
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	modRoot, err := FindModuleRoot(opts.Dir)
	if err != nil {
		fmt.Fprintln(opts.Errout, err)
		return ExitError
	}
	analyzers, err := selectAnalyzers(opts.Checks)
	if err != nil {
		fmt.Fprintln(opts.Errout, err)
		return ExitError
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(opts.Errout, err)
		return ExitError
	}
	dirs, err := ExpandPatterns(modRoot, patterns)
	if err != nil {
		fmt.Fprintln(opts.Errout, err)
		return ExitError
	}

	// Phase 1: load every requested package (the loader pulls in
	// module-internal dependencies transitively, each type-checked once).
	var pkgs []*Package
	loadFailed := false
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(opts.Errout, "genie-lint: %v\n", err)
			loadFailed = true
			continue
		}
		if len(pkg.Errs) > 0 {
			for _, e := range pkg.Errs {
				fmt.Fprintf(opts.Errout, "genie-lint: %s: %v\n", pkg.Path, e)
			}
			loadFailed = true
			continue
		}
		pkgs = append(pkgs, pkg)
	}
	if loadFailed {
		return ExitError
	}

	// Phase 2: build the interprocedural index over everything the
	// loader saw — requested packages and their dependencies alike, so
	// summaries cross package boundaries.
	prog := BuildProgram(loader.Packages())

	// Phase 3: analyze the requested packages in parallel. Results land
	// in a per-package slot so the report order is deterministic
	// regardless of scheduling.
	perPkg := make([][]Diagnostic, len(pkgs))
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		go func(i int, pkg *Package) {
			defer wg.Done()
			var pkgDiags []Diagnostic
			for _, a := range analyzers {
				pkgDiags = append(pkgDiags, RunAnalyzer(a, pkg, prog)...)
			}
			perPkg[i] = applyIgnores(pkgDiags, collectIgnores(pkg.Fset, pkg.Files))
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, pd := range perPkg {
		diags = append(diags, pd...)
	}

	for i := range diags {
		if rel, err := filepath.Rel(modRoot, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = filepath.ToSlash(rel)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})

	if opts.JSON {
		enc := json.NewEncoder(opts.Out)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []Diagnostic{} // JSON: always an array, never null
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(opts.Errout, err)
			return ExitError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(opts.Out, d)
		}
	}
	if len(diags) > 0 {
		return ExitFindings
	}
	return ExitClean
}

// selectAnalyzers resolves a -checks filter against the registry.
func selectAnalyzers(checks []string) ([]*Analyzer, error) {
	all := Analyzers()
	if len(checks) == 0 {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range checks {
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("genie-lint: unknown check %q (have %s)", name, strings.Join(names(all), ", "))
		}
		out = append(out, a)
	}
	return out, nil
}

func names(as []*Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}
