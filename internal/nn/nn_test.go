package nn

import (
	"fmt"
	"math/rand"
	"testing"

	"genie/internal/exec"
	"genie/internal/lazy"
	"genie/internal/tensor"
	"genie/internal/tensor/ops"
)

func bindAll(b *lazy.Builder) exec.Binder {
	return func(op, ref string) (*tensor.Tensor, error) {
		if op == "param" {
			if t, ok := b.ParamData(ref); ok {
				return t, nil
			}
		} else if t, ok := b.InputData(ref); ok {
			return t, nil
		}
		return nil, fmt.Errorf("no data for %s %q", op, ref)
	}
}

func runModule(t *testing.T, build func(b *lazy.Builder) lazy.Value) *tensor.Tensor {
	t.Helper()
	b := lazy.NewBuilder("t")
	out := build(b)
	vals, err := exec.Graph(b.Graph(), bindAll(b))
	if err != nil {
		t.Fatal(err)
	}
	return vals[out.ID()]
}

func TestLinearShapesAndParams(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lin := NewLinear(rng, 8, 4, true)
	if lin.NumParams() != 8*4+4 {
		t.Errorf("params %d", lin.NumParams())
	}
	noBias := NewLinear(rng, 8, 4, false)
	if noBias.NumParams() != 32 || noBias.Bias != nil {
		t.Error("bias-free linear wrong")
	}
	x := tensor.New(tensor.F32, 2, 8)
	x.RandN(rng, 1)
	out := runModule(t, func(b *lazy.Builder) lazy.Value {
		return lin.Forward(b, "fc", b.Input("x", x))
	})
	if !out.Shape().Equal(tensor.Shape{2, 4}) {
		t.Errorf("linear out %v", out.Shape())
	}
}

func TestLayerNormModule(t *testing.T) {
	ln := NewLayerNorm(16)
	if ln.NumParams() != 32 {
		t.Errorf("params %d", ln.NumParams())
	}
	rng := rand.New(rand.NewSource(2))
	x := tensor.New(tensor.F32, 3, 16)
	x.RandN(rng, 5)
	out := runModule(t, func(b *lazy.Builder) lazy.Value {
		return ln.Forward(b, "ln", b.Input("x", x))
	})
	want, err := ops.LayerNorm(x, ln.Gamma, ln.Beta, ln.Eps)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(out, want, 1e-5, 1e-5) {
		t.Error("layernorm module diverges from kernel")
	}
}

func TestEmbeddingModule(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	emb := NewEmbedding(rng, 10, 4)
	ids := tensor.FromI64(tensor.Shape{3}, []int64{0, 9, 5})
	out := runModule(t, func(b *lazy.Builder) lazy.Value {
		return emb.Lookup(b, "emb", b.Input("ids", ids))
	})
	if !out.Shape().Equal(tensor.Shape{3, 4}) {
		t.Errorf("embedding out %v", out.Shape())
	}
}

func TestMLPModule(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	mlp := NewMLP(rng, 8, 32)
	x := tensor.New(tensor.F32, 2, 8)
	x.RandN(rng, 1)
	out := runModule(t, func(b *lazy.Builder) lazy.Value {
		return mlp.Forward(b, "mlp", b.Input("x", x))
	})
	if !out.Shape().Equal(tensor.Shape{2, 8}) {
		t.Errorf("mlp out %v", out.Shape())
	}
	if mlp.NumParams() != 8*32+32+32*8+8 {
		t.Errorf("mlp params %d", mlp.NumParams())
	}
}

func TestAttentionHeadDivisibility(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	defer func() {
		if recover() == nil {
			t.Error("dim not divisible by heads should panic")
		}
	}()
	NewAttention(rng, 10, 3)
}

func TestAttentionCausalShape(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	attn := NewAttention(rng, 8, 2)
	x := tensor.New(tensor.F32, 4, 8)
	x.RandN(rng, 1)
	out := runModule(t, func(b *lazy.Builder) lazy.Value {
		return attn.Forward(b, "attn", b.Input("x", x))
	})
	if !out.Shape().Equal(tensor.Shape{4, 8}) {
		t.Errorf("attention out %v", out.Shape())
	}
}

func TestBlockResidualPath(t *testing.T) {
	// With zeroed attention/MLP output projections, the block must be
	// the identity (residual connections only).
	rng := rand.New(rand.NewSource(7))
	blk := NewBlock(rng, 8, 2, 16)
	blk.Attn.WO.W.Fill(0)
	blk.MLP.Proj.W.Fill(0)
	blk.MLP.Proj.Bias.Fill(0)
	x := tensor.New(tensor.F32, 3, 8)
	x.RandN(rng, 1)
	out := runModule(t, func(b *lazy.Builder) lazy.Value {
		return blk.Forward(b, "blk", b.Input("x", x))
	})
	if !tensor.AllClose(out, x, 1e-6, 1e-6) {
		t.Error("zeroed block should be identity via residuals")
	}
}

func TestConv2DModule(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	conv := NewConv2D(rng, 3, 8, 3, 1, 1)
	if conv.NumParams() != 8*3*3*3+8 {
		t.Errorf("conv params %d", conv.NumParams())
	}
	img := tensor.New(tensor.F32, 3, 16, 16)
	img.RandN(rng, 1)
	out := runModule(t, func(b *lazy.Builder) lazy.Value {
		return conv.Forward(b, "conv", b.Input("img", img))
	})
	if !out.Shape().Equal(tensor.Shape{8, 16, 16}) {
		t.Errorf("conv out %v", out.Shape())
	}
	// ReLU applied: no negatives.
	for _, v := range out.F32() {
		if v < 0 {
			t.Fatal("conv output should be post-ReLU")
		}
	}
}

func TestEmbeddingBagModule(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	bag := NewEmbeddingBag(rng, 20, 4)
	ids := tensor.FromI64(tensor.Shape{3}, []int64{1, 2, 3})
	out := runModule(t, func(b *lazy.Builder) lazy.Value {
		return bag.Lookup(b, "bag", b.Input("ids", ids), []int{0})
	})
	if !out.Shape().Equal(tensor.Shape{1, 4}) {
		t.Errorf("bag out %v", out.Shape())
	}
}

func TestKVCacheAppendMismatchPanics(t *testing.T) {
	c := &KVCache{}
	c.Append(tensor.New(tensor.F32, 1, 4), tensor.New(tensor.F32, 1, 4))
	defer func() {
		if recover() == nil {
			t.Error("width mismatch should panic")
		}
	}()
	c.Append(tensor.New(tensor.F32, 1, 8), tensor.New(tensor.F32, 1, 8))
}

func TestModuleInterfaceCompliance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	var mods = []Module{
		NewLinear(rng, 2, 2, true),
		NewLayerNorm(2),
		NewMLP(rng, 2, 4),
		NewAttention(rng, 4, 2),
		NewBlock(rng, 4, 2, 8),
		NewConv2D(rng, 1, 1, 3, 1, 1),
	}
	for _, m := range mods {
		if m.NumParams() <= 0 {
			t.Errorf("%T reports %d params", m, m.NumParams())
		}
	}
}
