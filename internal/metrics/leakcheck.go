package metrics

import (
	"fmt"
	"runtime"
	"time"
)

// GoroutineSnapshot is a point-in-time goroutine count, the dynamic
// complement to genie-lint's static goleak check: the analyzer proves
// each serving-layer goroutine has a cancellation path, the snapshot
// proves the paths were actually taken. Take one before building the
// system under test, then Check after tearing it down:
//
//	snap := metrics.SnapGoroutines()
//	... start engine, serve, drain, stop ...
//	snap.Check(t)
type GoroutineSnapshot struct {
	base int
}

// SnapGoroutines records the current goroutine count.
func SnapGoroutines() GoroutineSnapshot {
	return GoroutineSnapshot{base: runtime.NumGoroutine()}
}

// Reporter is the subset of testing.TB the check needs; keeping it an
// interface keeps package testing out of production binaries that link
// metrics.
type Reporter interface {
	Helper()
	Errorf(format string, args ...any)
}

// Check fails rep if goroutines outlive the snapshot. Goroutines wind
// down asynchronously after a drain (deferred closes, netpoll
// teardown), so the count is polled with backoff for up to two seconds
// before the failure is declared; on failure the report carries every
// live stack so the leaked goroutine is identifiable directly from the
// test log.
func (g GoroutineSnapshot) Check(rep Reporter) {
	rep.Helper()
	deadline := time.Now().Add(2 * time.Second)
	var now int
	for {
		now = runtime.NumGoroutine()
		if now <= g.base {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	rep.Errorf("goroutine leak: %d live, %d at snapshot; stacks:\n%s",
		now, g.base, string(buf))
}

// String implements fmt.Stringer for debug logging.
func (g GoroutineSnapshot) String() string {
	return fmt.Sprintf("goroutines(base=%d)", g.base)
}
