package runtime

import (
	"context"
	"fmt"
	"time"

	"genie/internal/exec"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/obs"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// Session is an incremental generation handle: Prefill establishes the
// prompt state, then each Step advances generation by exactly one decode
// iteration. Generate is Prefill + steps×Step by construction, so a
// session whose steps are interleaved with other sessions' steps (the
// online engine's continuous decode batching) produces the same token
// sequence as a standalone Generate call in the same mode.
//
// A Scope namespaces the session's remote-resident KV-cache keys, so
// many sessions can share one backend without clobbering each other's
// state; weights are installed under unscoped refs and stay shared.
type Session struct {
	r     *LLMRunner
	mode  Mode
	scope string
	// ctx carries trace context for the session's default Prefill/Step
	// path; nil when the caller is not tracing (the common case — a nil
	// ctx short-circuits span creation to one nil check).
	ctx   context.Context
	impl  sessionImpl
	res   GenResult
	gpu   time.Duration
	next  int64
	ready bool
}

// sessionImpl is one mode's incremental strategy. The ctx parameter
// carries trace context down to the endpoint RPCs; implementations must
// tolerate nil (untraced callers).
type sessionImpl interface {
	// prefill consumes the prompt and returns the first generated token.
	prefill(ctx context.Context, prompt []int64) (int64, error)
	// step runs one decode iteration on tok and returns the next token.
	step(ctx context.Context, tok int64) (int64, error)
	// residentKeys lists the session's per-request cache-plane keys —
	// uniform accounting across every strategy, wherever the state
	// actually lives. Empty (non-nil) means "accounted: no per-session
	// cache state"; nil means the strategy cannot enumerate its keys.
	residentKeys() []string
	// remoteResident reports whether residentKeys name endpoint-resident
	// objects the session owns — i.e. whether Close must Free them.
	// Client-local caches report their keys but return false here.
	remoteResident() bool
}

// ResidentKeyser is the optional surface an external Strategy implements
// to expose its cache-plane keys through Session.ResidentKeys.
type ResidentKeyser interface {
	ResidentKeys() []string
}

// Strategy is an externally supplied session executor: a package that
// wants to drive generation its own way (the pool layer's sharded
// executor) implements Strategy and installs a factory on
// LLMRunner.NewStrategy. The runtime never learns who is on the other
// side — dependencies keep pointing toward runtime, exactly as with
// lineage's TrackedEndpoint.
type Strategy interface {
	// Prefill consumes the prompt and returns the first generated token.
	Prefill(ctx context.Context, prompt []int64) (int64, error)
	// Step runs one decode iteration on tok and returns the next token.
	Step(ctx context.Context, tok int64) (int64, error)
	// Close releases whatever per-session state the strategy holds
	// (scoped remote KV caches, plan pins).
	Close() error
}

// strategySession adapts an external Strategy to sessionImpl. It owns
// its cleanup: Session.Close delegates instead of Freeing keys on the
// runner's endpoint, because a strategy's state may be spread over
// endpoints the runner has never seen.
type strategySession struct{ s Strategy }

func (ss *strategySession) prefill(ctx context.Context, prompt []int64) (int64, error) {
	return ss.s.Prefill(ctx, prompt)
}

func (ss *strategySession) step(ctx context.Context, tok int64) (int64, error) {
	return ss.s.Step(ctx, tok)
}

func (ss *strategySession) residentKeys() []string {
	if rk, ok := ss.s.(ResidentKeyser); ok {
		return rk.ResidentKeys()
	}
	return nil
}

// The strategy owns its cleanup via Close; the runtime never Frees for it.
func (ss *strategySession) remoteResident() bool { return false }

// ctxEndpoint is the optional trace-aware surface of an Endpoint.
// transport.Client implements it; fakes and local endpoints need not.
type ctxEndpoint interface {
	ExecCtx(ctx context.Context, x *transport.Exec) (*transport.ExecOK, error)
}

// execEP dispatches one Exec through ep, routing trace context when
// both sides support it. This keeps the Endpoint interface — and every
// fake implementing it — unchanged.
func execEP(ctx context.Context, ep Endpoint, x *transport.Exec) (*transport.ExecOK, error) {
	if ctx != nil {
		if ce, ok := ep.(ctxEndpoint); ok {
			return ce.ExecCtx(ctx, x)
		}
	}
	return ep.Exec(x)
}

// NewSession opens an unscoped session (remote KV keys are the bare
// cache refs, exactly as Generate uses them).
func (r *LLMRunner) NewSession(mode Mode) (*Session, error) {
	return r.NewScopedSession(mode, "")
}

// NewScopedSession opens a session whose remote per-request state
// (KV caches) lives under scope-prefixed keys. scope must be unique per
// concurrent session on the same endpoint; "" means no prefix.
func (r *LLMRunner) NewScopedSession(mode Mode, scope string) (*Session, error) {
	return r.NewScopedSessionCtx(nil, mode, scope)
}

// NewScopedSessionCtx is NewScopedSession carrying trace context: spans
// for the session's phases (and the RPCs under them) parent under the
// span active in ctx. A nil or untraced ctx costs nothing.
func (r *LLMRunner) NewScopedSessionCtx(ctx context.Context, mode Mode, scope string) (*Session, error) {
	s := &Session{r: r, mode: mode, scope: scope, ctx: ctx}
	if r.NewStrategy != nil {
		strat, err := r.NewStrategy(ctx, mode, scope)
		if err != nil {
			return nil, err
		}
		s.impl = &strategySession{s: strat}
		return s, nil
	}
	switch mode {
	case ModeLocal:
		s.impl = &localSession{r: r, gpu: &s.gpu, scope: scope, caches: emptyCaches(r.Model)}
	case ModeNaive:
		if r.EP == nil {
			return nil, fmt.Errorf("runtime: naive mode needs an endpoint")
		}
		s.impl = &naiveSession{r: r, gpu: &s.gpu}
	case ModeDeltaKV:
		if r.EP == nil {
			return nil, fmt.Errorf("runtime: delta_kv mode needs an endpoint")
		}
		s.impl = &deltaKVSession{r: r, gpu: &s.gpu, scope: scope}
	case ModeSemAware:
		if r.EP == nil {
			return nil, fmt.Errorf("runtime: semantics_aware mode needs an endpoint")
		}
		s.impl = &semSession{r: r, gpu: &s.gpu, scope: scope, nilCaches: emptyCaches(r.Model)}
	default:
		return nil, fmt.Errorf("runtime: unknown mode %d", mode)
	}
	return s, nil
}

// Prefill runs the prompt phase and returns the first generated token.
// It must be called exactly once, before any Step.
func (s *Session) Prefill(prompt []int64) (int64, error) {
	return s.PrefillCtx(s.ctx, prompt)
}

// PrefillCtx is Prefill with per-call trace context (the serving engine
// parents the session's prefill span under its own phase span).
func (s *Session) PrefillCtx(ctx context.Context, prompt []int64) (int64, error) {
	if s.ready {
		return 0, fmt.Errorf("runtime: session already prefilled")
	}
	if len(prompt) == 0 {
		return 0, fmt.Errorf("runtime: empty prompt")
	}
	sctx, span := obs.StartSpan(ctx, "session.prefill")
	span.SetAttrInt("prompt_tokens", int64(len(prompt)))
	err := s.r.measure(&s.res.Prefill, &s.gpu, func() error {
		tok, err := s.impl.prefill(sctx, prompt)
		if err != nil {
			return err
		}
		s.next = tok
		return nil
	})
	span.End()
	if err != nil {
		return 0, err
	}
	s.ready = true
	return s.next, nil
}

// Next returns the most recently generated token without advancing.
func (s *Session) Next() int64 { return s.next }

// Step runs one decode iteration on the current token and returns the
// newly generated token. Interleaving Steps of different sessions at
// these boundaries is the engine's continuous batching.
func (s *Session) Step() (int64, error) {
	return s.StepCtx(s.ctx)
}

// StepCtx is Step with per-call trace context.
func (s *Session) StepCtx(ctx context.Context) (int64, error) {
	if !s.ready {
		return 0, fmt.Errorf("runtime: Step before Prefill")
	}
	sctx, span := obs.StartSpan(ctx, "session.step")
	err := s.r.measure(&s.res.Decode, &s.gpu, func() error {
		tok, err := s.impl.step(sctx, s.next)
		if err != nil {
			return err
		}
		s.next = tok
		return nil
	})
	span.End()
	if err != nil {
		return 0, err
	}
	return s.next, nil
}

// Result exposes the session's accumulated per-phase metrics. Tokens is
// filled by Generate; incremental callers track tokens themselves from
// the Prefill/Step return values.
func (s *Session) Result() *GenResult { return &s.res }

// ResidentKeys lists the session's per-request cache-plane keys, wherever
// the state lives (client-local caches report keys too — only Close cares
// about residency). Empty means the session keeps no per-request cache
// state; every built-in mode reports non-nil.
func (s *Session) ResidentKeys() []string { return s.impl.residentKeys() }

// Close releases the session's per-request remote state (scoped KV
// caches). Weights and unscoped state are left resident. Safe to call
// for any mode; local/naive sessions are no-ops.
func (s *Session) Close() error {
	if ss, ok := s.impl.(*strategySession); ok {
		return ss.s.Close()
	}
	if !s.impl.remoteResident() {
		return nil
	}
	keys := s.impl.residentKeys()
	if len(keys) == 0 || s.r.EP == nil {
		return nil
	}
	var first error
	for _, k := range keys {
		if err := s.r.EP.Free(k); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// cacheKeys enumerates the scoped resident-store keys of a model's KV
// caches.
func cacheKeys(scope string, m *models.GPT) []string {
	keys := make([]string, 0, 2*m.Cfg.Layers)
	for i := 0; i < m.Cfg.Layers; i++ {
		keys = append(keys, scope+models.CacheRef(i, "k"), scope+models.CacheRef(i, "v"))
	}
	return keys
}

// --- Local (upper bound) ---

type localSession struct {
	r      *LLMRunner
	gpu    *time.Duration
	scope  string
	caches []*nn.KVCache
	hist   int
	keep   map[srg.NodeID]bool // cached stepKeep set, reused across steps
}

// stepKeep lists the node values a decode/prefill evaluation must
// retain: the per-layer cache states and the sampled token. Everything
// else is ephemeral and recycled mid-evaluation.
// prev is reused when it already matches — decode steps capture
// structurally identical graphs, so after the first step this
// allocates nothing.
func stepKeep(out models.LLMOutputs, prev map[srg.NodeID]bool) map[srg.NodeID]bool {
	if len(prev) == 2*len(out.CacheK)+1 {
		ok := prev[out.NextToken]
		for i := 0; ok && i < len(out.CacheK); i++ {
			ok = prev[out.CacheK[i]] && prev[out.CacheV[i]]
		}
		if ok {
			return prev
		}
	}
	keep := make(map[srg.NodeID]bool, 2*len(out.CacheK)+1)
	for i := range out.CacheK {
		keep[out.CacheK[i]] = true
		keep[out.CacheV[i]] = true
	}
	keep[out.NextToken] = true
	return keep
}

func (ls *localSession) prefill(_ context.Context, prompt []int64) (int64, error) {
	b, out := ls.r.Model.BuildPrefill(prompt)
	ls.keep = stepKeep(out, ls.keep)
	vals, err := exec.GraphEphemeral(b.Graph(), BindAll(b), ls.keep)
	if err != nil {
		return 0, err
	}
	for i := range ls.caches {
		k, v := vals[out.CacheK[i]], vals[out.CacheV[i]]
		ls.caches[i].Append(k, v) // Append clones; the graph values are dead
		k.Release()
		v.Release()
	}
	*ls.gpu += modelGPUTime(b)
	ls.hist = len(prompt)
	return vals[out.NextToken].I64()[0], nil
}

func (ls *localSession) step(_ context.Context, tok int64) (int64, error) {
	b, out := ls.r.Model.BuildDecodeStep(tok, ls.hist, ls.hist, ls.caches)
	ls.keep = stepKeep(out, ls.keep)
	vals, err := exec.GraphEphemeral(b.Graph(), BindAll(b), ls.keep)
	if err != nil {
		return 0, err
	}
	for i := range ls.caches {
		// The appended concat holds the full updated cache; replace
		// rather than append to stay exact. Concat copies, so the
		// previous step's cache tensors are dead — recycle them.
		oldK, oldV := ls.caches[i].K, ls.caches[i].V
		ls.caches[i].K = vals[out.CacheK[i]]
		ls.caches[i].V = vals[out.CacheV[i]]
		oldK.Release()
		oldV.Release()
	}
	*ls.gpu += modelGPUTime(b)
	ls.hist++
	return vals[out.NextToken].I64()[0], nil
}

// residentKeys reports the cache-plane keys of the client-local caches:
// the state exists per session even though no endpoint holds it, and the
// prefix cache's accounting wants the same key space in every mode.
func (ls *localSession) residentKeys() []string {
	return cacheKeys(ls.scope, ls.r.Model)
}

func (ls *localSession) remoteResident() bool { return false }

// --- Naive (semantics-blind) ---

// naiveSession re-uploads every weight on every remote call and keeps
// nothing resident: each decode step replays the full forward pass over
// the whole token history.
type naiveSession struct {
	r       *LLMRunner
	gpu     *time.Duration
	history []int64
}

func (ns *naiveSession) call(ctx context.Context) (int64, error) {
	b, out := ns.r.Model.BuildPrefill(ns.history)
	x := &transport.Exec{Graph: b.Graph()}
	// Blind mode: every leaf inline, weights included. Params carry the
	// dedup cache hint — on feature-negotiated transports a repeated
	// weight collapses to a 32-byte hash ref after its first trip; on
	// legacy connections the hint is stripped client-side and the frame
	// stays byte-identical to the blind encoding.
	for _, n := range b.Graph().Nodes() {
		switch n.Op {
		case "param":
			data, _ := b.ParamData(n.Ref)
			x.Binds = append(x.Binds, transport.Binding{Ref: n.Ref, Inline: data, Cache: true})
		case "input":
			data, _ := b.InputData(n.Ref)
			x.Binds = append(x.Binds, transport.Binding{Ref: n.Ref, Inline: data})
		}
	}
	// A blind RPC library materializes all declared outputs back to
	// the caller: the full logits matrix and the next token.
	x.Want = []srg.NodeID{out.Logits, out.NextToken}
	ok, err := ns.r.execFT(ctx, x)
	if err != nil {
		return 0, err
	}
	*ns.gpu += time.Duration(ok.GPUTimeNs)
	return ok.Results[out.NextToken].I64()[0], nil
}

func (ns *naiveSession) prefill(ctx context.Context, prompt []int64) (int64, error) {
	ns.history = append([]int64(nil), prompt...)
	return ns.call(ctx)
}

func (ns *naiveSession) step(ctx context.Context, tok int64) (int64, error) {
	ns.history = append(ns.history, tok)
	return ns.call(ctx)
}

// residentKeys is empty but non-nil: the naive replay strategy genuinely
// keeps no per-session cache state anywhere — it re-runs the whole
// history each call — and "accounted, zero keys" must be distinguishable
// from "cannot enumerate" (nil).
func (ns *naiveSession) residentKeys() []string { return []string{} }

func (ns *naiveSession) remoteResident() bool { return false }

// --- ΔKV (semantics-blind with transport-level caching) ---

// deltaKVSession keeps weights and per-layer caches resident (the
// transport's content cache) but dispatches the model the way a blind
// runtime sees it: one RPC per module (embedding, each block, head), and
// every call's outputs — activations and fresh KV rows, the "delta
// slice" — are shipped back to the client because the library cannot
// know the client will never read them.
type deltaKVSession struct {
	r     *LLMRunner
	gpu   *time.Duration
	scope string
	x     *tensor.Tensor // current activation at the client
	hist  int
}

// embedCall runs the embedding module remotely (the CPU client holds no
// weights) and materializes the activation home.
func (ds *deltaKVSession) embedCall(ctx context.Context, tokens []int64, startPos int) error {
	eb, embID := ds.r.Model.BuildEmbedStep(tokens, startPos)
	ex := &transport.Exec{Graph: eb.Graph()}
	for _, n := range eb.Graph().Nodes() {
		if n.Op == "input" {
			data, _ := eb.InputData(n.Ref)
			ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
		}
	}
	ex.Want = append(ex.Want, embID)
	ok, err := ds.r.execFT(ctx, ex)
	if err != nil {
		return err
	}
	*ds.gpu += time.Duration(ok.GPUTimeNs)
	ds.x = ok.Results[embID]
	return nil
}

// layerCall runs one block remotely. hist 0 = prefill (no cache);
// otherwise the cache binds by (scoped) key. Either way the updated
// cache is kept remotely AND the delta rows come back to the client.
func (ds *deltaKVSession) layerCall(ctx context.Context, layer, hist int) error {
	b, lo := ds.r.Model.BuildLayerStep(layer, ds.x, nil, hist)
	ex := &transport.Exec{Graph: b.Graph()}
	xt, _ := b.InputData("gpt.x")
	ex.Binds = append(ex.Binds, transport.Binding{Ref: "gpt.x", Inline: xt})
	kRef, vRef := models.CacheRef(layer, "k"), models.CacheRef(layer, "v")
	kKey, vKey := ds.scope+kRef, ds.scope+vRef
	ex.Keep = map[srg.NodeID]string{}
	if hist > 0 {
		ex.Binds = append(ex.Binds,
			transport.Binding{Ref: kRef, Key: kKey},
			transport.Binding{Ref: vRef, Key: vKey})
		ex.Keep[lo.AppendedK] = kKey
		ex.Keep[lo.AppendedV] = vKey
	} else {
		ex.Keep[lo.NewK] = kKey
		ex.Keep[lo.NewV] = vKey
	}
	ex.Want = append(ex.Want, lo.Out, lo.NewK, lo.NewV)
	ok, err := ds.r.execFT(ctx, ex)
	if err != nil {
		return err
	}
	*ds.gpu += time.Duration(ok.GPUTimeNs)
	ds.x = ok.Results[lo.Out]
	return nil
}

// headCall runs the final norm + lm head remotely; the blind library
// materializes the full logits matrix home along with the argmax.
func (ds *deltaKVSession) headCall(ctx context.Context) (int64, error) {
	hb, logitsID, nextID := ds.r.Model.BuildHeadStep(ds.x)
	hx := &transport.Exec{Graph: hb.Graph()}
	xt, _ := hb.InputData("gpt.x")
	hx.Binds = append(hx.Binds, transport.Binding{Ref: "gpt.x", Inline: xt})
	hx.Want = append(hx.Want, logitsID, nextID)
	hok, err := ds.r.execFT(ctx, hx)
	if err != nil {
		return 0, err
	}
	*ds.gpu += time.Duration(hok.GPUTimeNs)
	return hok.Results[nextID].I64()[0], nil
}

func (ds *deltaKVSession) forward(ctx context.Context, tokens []int64, startPos int) (int64, error) {
	if err := ds.embedCall(ctx, tokens, startPos); err != nil {
		return 0, err
	}
	for layer := range ds.r.Model.Blocks {
		if err := ds.layerCall(ctx, layer, startPos); err != nil {
			return 0, err
		}
	}
	return ds.headCall(ctx)
}

func (ds *deltaKVSession) prefill(ctx context.Context, prompt []int64) (int64, error) {
	// One-time provisioning: weights remain remote (not counted in phase
	// traffic, exactly as the paper's setup pre-installs the model).
	if err := ds.r.ensureWeights(); err != nil {
		return 0, err
	}
	tok, err := ds.forward(ctx, prompt, 0)
	if err != nil {
		return 0, err
	}
	ds.hist = len(prompt)
	return tok, nil
}

func (ds *deltaKVSession) step(ctx context.Context, tok int64) (int64, error) {
	next, err := ds.forward(ctx, []int64{tok}, ds.hist)
	if err != nil {
		return 0, err
	}
	ds.hist++
	return next, nil
}

func (ds *deltaKVSession) residentKeys() []string {
	return cacheKeys(ds.scope, ds.r.Model)
}

// remoteResident is false for unscoped sessions: their caches live under
// the bare refs shared with Generate and other unscoped sessions, so
// Close must not Free them out from under a neighbour.
func (ds *deltaKVSession) remoteResident() bool { return ds.scope != "" }

// --- Semantics-Aware (Genie) ---

// semSession executes each phase as one fused RPC: weights and caches
// stay remote under stable (scoped) keys; only the prompt/token go up
// and only the final logits row + next token come down.
type semSession struct {
	r         *LLMRunner
	gpu       *time.Duration
	scope     string
	epoch     uint32
	hist      int
	nilCaches []*nn.KVCache
}

func (ss *semSession) prefill(ctx context.Context, prompt []int64) (int64, error) {
	if err := ss.r.ensureWeights(); err != nil {
		return 0, err
	}
	b, out := ss.r.Model.BuildPrefill(prompt)
	ex := &transport.Exec{Graph: b.Graph()}
	for _, n := range b.Graph().Nodes() {
		if n.Op == "input" {
			data, _ := b.InputData(n.Ref)
			ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
		}
	}
	ex.Keep = map[srg.NodeID]string{}
	for i := range out.CacheK {
		ex.Keep[out.CacheK[i]] = ss.scope + models.CacheRef(i, "k")
		ex.Keep[out.CacheV[i]] = ss.scope + models.CacheRef(i, "v")
	}
	ex.Want = append(ex.Want, out.LastLogits, out.NextToken)
	ok, err := ss.r.execFT(ctx, ex)
	if err != nil {
		return 0, err
	}
	*ss.gpu += time.Duration(ok.GPUTimeNs)
	ss.epoch = ok.Epoch
	ss.hist = len(prompt)
	return ok.Results[out.NextToken].I64()[0], nil
}

func (ss *semSession) step(ctx context.Context, tok int64) (int64, error) {
	b, out := ss.r.Model.BuildDecodeStep(tok, ss.hist, ss.hist, ss.nilCaches)
	ex := &transport.Exec{Graph: b.Graph()}
	for _, n := range b.Graph().Nodes() {
		if n.Op != "input" {
			continue
		}
		if n.Residency == srg.ResidencyStatefulKVCache {
			// Remote cache by handle: the tiny-handle round trip of §4's
			// Semantics-Aware mode.
			ex.Binds = append(ex.Binds, transport.Binding{
				Ref: n.Ref, Key: ss.scope + n.Ref, Epoch: ss.epoch})
			continue
		}
		data, _ := b.InputData(n.Ref)
		ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
	}
	ex.Keep = map[srg.NodeID]string{}
	for i := range out.CacheK {
		ex.Keep[out.CacheK[i]] = ss.scope + models.CacheRef(i, "k")
		ex.Keep[out.CacheV[i]] = ss.scope + models.CacheRef(i, "v")
	}
	ex.Want = append(ex.Want, out.LastLogits, out.NextToken)
	ok, err := ss.r.execFT(ctx, ex)
	if err != nil {
		return 0, err
	}
	*ss.gpu += time.Duration(ok.GPUTimeNs)
	ss.epoch = ok.Epoch
	ss.hist++
	return ok.Results[out.NextToken].I64()[0], nil
}

func (ss *semSession) residentKeys() []string {
	return cacheKeys(ss.scope, ss.r.Model)
}

// remoteResident is false for unscoped sessions — see deltaKVSession.
func (ss *semSession) remoteResident() bool { return ss.scope != "" }
