// Package chaos provides deterministic, seedable fault injection for
// Genie's network datapath and backends — the failure-as-input
// discipline of §3.5's fault-tolerance story. A Plan decides, from a
// fixed seed, which operations to sabotage: frames dropped, corrupted,
// or delayed in flight; peers stalled; connections killed; backends
// crashed at exactly the Nth execution.
//
// Faults inject at two seams, chosen so no production code path knows
// chaos exists:
//
//   - Plan.WrapConn wraps any net.Conn before it is handed to
//     transport.NewConn, sabotaging reads and writes.
//   - Plan.ExecHook produces a backend.Server exec hook that crashes
//     the server at a chosen call number.
//
// Determinism: a Plan draws every decision from one seeded PRNG, so a
// fixed seed and a fixed operation order reproduce the same fault
// sequence. Set the seed explicitly in tests; FromEnv reads
// GENIE_CHAOS_SEED so bench runs are reproducible from the shell.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// EnvSeed is the environment variable FromEnv reads the seed from.
const EnvSeed = "GENIE_CHAOS_SEED"

// ErrInjectedKill is the error surfaced by a connection the plan chose
// to kill mid-operation. It wraps net.ErrClosed so the transport's
// classifier treats it like the peer reset it emulates (retryable).
var ErrInjectedKill = fmt.Errorf("chaos: injected connection kill: %w", net.ErrClosed)

// ErrInjectedCrash is the error an exec hook returns when the plan
// crashes the backend; transport.IsStateLoss matches its text once it
// crosses the wire as a RemoteError.
var ErrInjectedCrash = errors.New("chaos: injected backend crash")

// Config sets fault rates and deterministic trigger points. All
// probabilities are per-operation in [0,1]; zero values inject nothing.
type Config struct {
	// DropWriteProb swallows a write: the caller sees success, the peer
	// never sees the bytes — a silent partition that only per-call
	// deadlines can unwedge.
	DropWriteProb float64
	// CorruptWriteProb flips one byte of the written buffer in flight,
	// exercising the receiver's malformed-frame handling.
	CorruptWriteProb float64
	// DelayProb holds an operation for Delay before proceeding.
	DelayProb float64
	Delay     time.Duration
	// StallProb holds an operation for Stall — long enough to trip
	// per-call deadlines, emulating a hung peer that is alive but
	// unresponsive.
	StallProb float64
	Stall     time.Duration
	// KillProb closes the connection instead of performing the
	// operation, emulating a peer reset.
	KillProb float64
	// CrashExecAt, when > 0, crashes the backend on exactly that
	// (1-based) Exec call via the hook from ExecHook.
	CrashExecAt int64

	// Brownout modes — fail-slow degradation (DESIGN §13). Unlike the
	// probabilistic faults above, these never draw from the plan's PRNG:
	// they are scheduled by per-connection operation counts and byte
	// counts alone, so arming a brownout cannot shift the seeded fault
	// stream of an existing experiment.

	// ThrottleBytesPerSec paces the conn to at most this throughput by
	// charging each operation a sleep proportional to its bytes — a
	// degraded NIC or an oversubscribed ToR link. Zero = unthrottled.
	ThrottleBytesPerSec int64
	// PauseEvery stalls every Nth conn operation for PauseDur — the
	// periodic multi-millisecond freeze of a GC-pausing peer. Zero
	// disables.
	PauseEvery int64
	PauseDur   time.Duration
	// CreepStep inflates every operation's latency by one more CreepStep
	// than the last, capped at CreepMax — the slow drift of a failing
	// component that no threshold check catches until it is far gone.
	CreepStep time.Duration
	CreepMax  time.Duration
}

// Plan is a deterministic fault schedule. Create with NewPlan or
// FromEnv; share one Plan across the conns and backends of an
// experiment so all draws come from the same seeded stream.
type Plan struct {
	cfg  Config
	seed int64
	// disarmed suspends all injection while set; see SetActive.
	disarmed atomic.Bool

	mu       sync.Mutex
	rng      *rand.Rand
	injected map[string]int64
}

// NewPlan builds a plan drawing every fault decision from seed.
func NewPlan(seed int64, cfg Config) *Plan {
	if seed == 0 {
		seed = 1
	}
	return &Plan{
		cfg:      cfg,
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		injected: make(map[string]int64),
	}
}

// FromEnv builds a plan seeded from GENIE_CHAOS_SEED (default 1 when
// unset or unparsable), so shell-driven runs are reproducible.
func FromEnv(cfg Config) *Plan {
	seed := int64(1)
	if v := os.Getenv(EnvSeed); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && n != 0 {
			seed = n
		}
	}
	return NewPlan(seed, cfg)
}

// Seed returns the plan's seed (for experiment reports).
func (p *Plan) Seed() int64 { return p.seed }

// SetActive arms (true, the default) or disarms the plan. A disarmed
// plan injects nothing and draws nothing from its PRNG stream, so an
// experiment can set up cleanly — install weights, warm caches — and
// then arm faults for exactly the measured window without perturbing
// determinism.
func (p *Plan) SetActive(active bool) { p.disarmed.Store(!active) }

// Active reports whether the plan is currently injecting.
func (p *Plan) Active() bool { return !p.disarmed.Load() }

// Injected snapshots how many faults of each kind fired so far, keyed
// by kind: drop_write, corrupt_write, delay, stall, kill, crash_exec.
func (p *Plan) Injected() map[string]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int64, len(p.injected))
	for k, v := range p.injected {
		out[k] = v
	}
	return out
}

// count records one injected fault; callers hold p.mu or call via note.
func (p *Plan) note(kind string) {
	p.mu.Lock()
	p.injected[kind]++
	p.mu.Unlock()
}

// draw returns one uniform sample from the plan's stream.
func (p *Plan) draw() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64()
}

// writeFault is the plan's decision for one write.
type writeFault int

const (
	writeOK writeFault = iota
	writeDrop
	writeCorrupt
	writeDelay
	writeStall
	writeKill
)

// decideWrite draws one decision for a write operation. Fault classes
// are checked in a fixed order against disjoint probability bands so a
// single draw decides, keeping the stream alignment independent of
// which faults are enabled.
func (p *Plan) decideWrite() writeFault {
	if p.disarmed.Load() {
		return writeOK
	}
	c := p.cfg
	total := c.DropWriteProb + c.CorruptWriteProb + c.DelayProb + c.StallProb + c.KillProb
	if total <= 0 {
		return writeOK
	}
	u := p.draw()
	switch {
	case u < c.DropWriteProb:
		return writeDrop
	case u < c.DropWriteProb+c.CorruptWriteProb:
		return writeCorrupt
	case u < c.DropWriteProb+c.CorruptWriteProb+c.DelayProb:
		return writeDelay
	case u < c.DropWriteProb+c.CorruptWriteProb+c.DelayProb+c.StallProb:
		return writeStall
	case u < total:
		return writeKill
	}
	return writeOK
}

// decideRead draws one decision for a read operation (reads can delay,
// stall, or kill; drop/corrupt are write-side faults).
func (p *Plan) decideRead() writeFault {
	if p.disarmed.Load() {
		return writeOK
	}
	c := p.cfg
	total := c.DelayProb + c.StallProb + c.KillProb
	if total <= 0 {
		return writeOK
	}
	u := p.draw()
	switch {
	case u < c.DelayProb:
		return writeDelay
	case u < c.DelayProb+c.StallProb:
		return writeStall
	case u < total:
		return writeKill
	}
	return writeOK
}

// ExecHook returns a backend exec hook that crashes the server (via
// crash) at the plan's CrashExecAt call and fails that exec with
// ErrInjectedCrash. Install with backend.Server.SetExecHook.
func (p *Plan) ExecHook(crash func()) func(call int64) error {
	return func(call int64) error {
		if !p.disarmed.Load() && p.cfg.CrashExecAt > 0 && call == p.cfg.CrashExecAt {
			p.note("crash_exec")
			crash()
			return fmt.Errorf("%w (exec %d)", ErrInjectedCrash, call)
		}
		return nil
	}
}

// WrapConn wraps c so the plan's conn-level faults apply to its reads
// and writes. Pass the result to transport.NewConn.
func (p *Plan) WrapConn(c net.Conn) net.Conn {
	return &faultConn{Conn: c, p: p}
}

// faultConn sabotages a net.Conn per its plan.
type faultConn struct {
	net.Conn
	p  *Plan
	bo brownoutState
}

func (f *faultConn) Write(b []byte) (int, error) {
	f.brownoutDelay()
	f.throttle(len(b))
	switch f.p.decideWrite() {
	case writeDrop:
		// The bytes vanish; the caller believes they were sent. The peer
		// hangs waiting — exactly the failure per-call deadlines exist for.
		f.p.note("drop_write")
		return len(b), nil
	case writeCorrupt:
		f.p.note("corrupt_write")
		cp := make([]byte, len(b))
		copy(cp, b)
		if len(cp) >= 4 {
			// Flip the top bit of the fourth byte: on a frame boundary that
			// is the length prefix's most significant byte, turning it into
			// an oversize length the receiver must reject as malformed.
			cp[3] ^= 0x80
		} else if len(cp) > 0 {
			cp[0] ^= 0x80
		}
		return f.Conn.Write(cp)
	case writeDelay:
		f.p.note("delay")
		time.Sleep(f.p.cfg.Delay)
	case writeStall:
		f.p.note("stall")
		time.Sleep(f.p.cfg.Stall)
	case writeKill:
		f.p.note("kill")
		_ = f.Conn.Close()
		return 0, ErrInjectedKill
	}
	return f.Conn.Write(b)
}

func (f *faultConn) Read(b []byte) (int, error) {
	f.brownoutDelay()
	switch f.p.decideRead() {
	case writeDelay:
		f.p.note("delay")
		time.Sleep(f.p.cfg.Delay)
	case writeStall:
		f.p.note("stall")
		time.Sleep(f.p.cfg.Stall)
	case writeKill:
		f.p.note("kill")
		_ = f.Conn.Close()
		return 0, ErrInjectedKill
	}
	n, err := f.Conn.Read(b)
	// Throttle on the bytes actually received (unknown before the read).
	f.throttle(n)
	return n, err
}
