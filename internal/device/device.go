// Package device models AI accelerators and hosts: peak compute, memory
// bandwidth, capacity, and a roofline kernel-time model. It is the
// substitute for the paper's physical A100-80GB testbed — the evaluation's
// GPU-side numbers (kernel time, utilization) are produced by this model
// rather than real silicon, which DESIGN.md §1 argues preserves the
// paper's ratios.
package device

import (
	"fmt"
	"time"
)

// Kind distinguishes broad device classes for heterogeneous placement.
type Kind uint8

// Device classes.
const (
	KindGPU Kind = iota
	KindCPU
	KindTPU
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindGPU:
		return "gpu"
	case KindCPU:
		return "cpu"
	case KindTPU:
		return "tpu"
	}
	return "unknown"
}

// Spec describes an accelerator's performance envelope.
type Spec struct {
	Name string
	Kind Kind
	// PeakFLOPS is sustained half-precision FLOP/s (tensor-core class for
	// GPUs).
	PeakFLOPS float64
	// MemBandwidth is HBM/DRAM bandwidth in bytes/s.
	MemBandwidth float64
	// MemBytes is device memory capacity.
	MemBytes int64
	// LaunchOverhead is fixed per-kernel launch latency.
	LaunchOverhead time.Duration
	// CostPerHour is a relative rental price used by the global
	// scheduler's affinity scoring.
	CostPerHour float64
}

// Catalogue of devices used across the evaluation. Numbers are public
// datasheet values (sustained, not peak-marketing).
var (
	// A100 is the paper's server GPU (A100-80GB SXM).
	A100 = Spec{
		Name: "a100-80g", Kind: KindGPU,
		PeakFLOPS:      190e12, // ~60% of 312 TFLOPS fp16 peak, sustained
		MemBandwidth:   1.6e12, // ~80% of 2.0 TB/s
		MemBytes:       80 << 30,
		LaunchOverhead: 6 * time.Microsecond,
		CostPerHour:    4.0,
	}
	// H100 is a faster option for heterogeneous-placement experiments.
	H100 = Spec{
		Name: "h100-80g", Kind: KindGPU,
		PeakFLOPS:      600e12,
		MemBandwidth:   2.7e12,
		MemBytes:       80 << 30,
		LaunchOverhead: 5 * time.Microsecond,
		CostPerHour:    8.0,
	}
	// A10G is a memory-bandwidth-poor, cheap GPU (recommendation-friendly
	// capacity box in the global-scheduler experiments).
	A10G = Spec{
		Name: "a10g-24g", Kind: KindGPU,
		PeakFLOPS:      70e12,
		MemBandwidth:   0.5e12,
		MemBytes:       24 << 30,
		LaunchOverhead: 8 * time.Microsecond,
		CostPerHour:    1.2,
	}
	// CPUHost is the paper's CPU-only client.
	CPUHost = Spec{
		Name: "cpu-host", Kind: KindCPU,
		PeakFLOPS:      2e12,
		MemBandwidth:   100e9,
		MemBytes:       256 << 30,
		LaunchOverhead: 100 * time.Nanosecond,
		CostPerHour:    0.5,
	}
)

// ByName resolves a catalogue spec.
func ByName(name string) (Spec, error) {
	for _, s := range []Spec{A100, H100, A10G, CPUHost} {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("device: unknown spec %q", name)
}

// KernelTime estimates execution time for a kernel with the given cost
// using the roofline model: time = launch + max(compute, memory) where
// compute = flops/peak and memory = bytes/bandwidth. A kernel is
// compute-bound when its operational intensity exceeds the device's
// machine balance — exactly the prefill/decode asymmetry the paper's
// semantics exploit (§2.2).
func (s Spec) KernelTime(flops float64, bytes int64) time.Duration {
	compute := flops / s.PeakFLOPS
	memory := float64(bytes) / s.MemBandwidth
	t := compute
	if memory > t {
		t = memory
	}
	return s.LaunchOverhead + time.Duration(t*float64(time.Second))
}

// ComputeBound reports whether a kernel with the given cost is limited by
// FLOPs rather than memory bandwidth on this device.
func (s Spec) ComputeBound(flops float64, bytes int64) bool {
	return flops/s.PeakFLOPS > float64(bytes)/s.MemBandwidth
}

// MachineBalance returns the FLOPs/byte ratio at which this device
// transitions from memory- to compute-bound.
func (s Spec) MachineBalance() float64 { return s.PeakFLOPS / s.MemBandwidth }

// Fits reports whether a resident set of the given size fits in device
// memory.
func (s Spec) Fits(bytes int64) bool { return bytes <= s.MemBytes }
