package transport

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"genie/internal/srg"
	"genie/internal/tensor"
)

func TestFrameRoundTrip(t *testing.T) {
	var b bytes.Buffer
	if err := WriteFrame(&b, MsgPing, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	mt, p, err := ReadFrame(&b)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgPing || string(p) != "hello" {
		t.Errorf("got %d %q", mt, p)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var b bytes.Buffer
	if err := WriteFrame(&b, MsgPong, nil); err != nil {
		t.Fatal(err)
	}
	mt, p, err := ReadFrame(&b)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgPong || len(p) != 0 {
		t.Errorf("got %d %q", mt, p)
	}
}

func TestFrameRejectsOversize(t *testing.T) {
	var hdr [5]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:])); err == nil {
		t.Error("oversize frame should be rejected")
	}
}

func TestFrameTruncated(t *testing.T) {
	var b bytes.Buffer
	if err := WriteFrame(&b, MsgPing, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	trunc := b.Bytes()[:b.Len()-2]
	if _, _, err := ReadFrame(bytes.NewReader(trunc)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated frame error = %v", err)
	}
}

func TestUploadCodecRoundTrip(t *testing.T) {
	data := tensor.FromF32(tensor.Shape{2, 2}, []float32{1, 2, 3, 4})
	u := &Upload{Key: "weights.w0", Data: data}
	back, err := DecodeUpload(EncodeUpload(u))
	if err != nil {
		t.Fatal(err)
	}
	if back.Key != u.Key || !tensor.AllClose(back.Data, data, 0, 0) {
		t.Error("upload round trip mismatch")
	}
}

func TestUploadDecodeCopiesData(t *testing.T) {
	data := tensor.FromF32(tensor.Shape{1}, []float32{7})
	payload := EncodeUpload(&Upload{Key: "k", Data: data})
	back, err := DecodeUpload(payload)
	if err != nil {
		t.Fatal(err)
	}
	for i := range payload {
		payload[i] = 0xAA
	}
	if back.Data.F32()[0] != 7 {
		t.Error("decoded tensor must not alias the frame buffer")
	}
}

func TestExecCodecRoundTrip(t *testing.T) {
	g := srg.New("sub")
	in := g.MustAdd(&srg.Node{Op: "input", Ref: "x",
		Output: srg.TensorMeta{Shape: []int{2}}})
	out := g.MustAdd(&srg.Node{Op: "relu", Inputs: []srg.NodeID{in},
		Output: srg.TensorMeta{Shape: []int{2}}})
	x := &Exec{
		Graph: g,
		Binds: []Binding{
			{Ref: "x", Inline: tensor.FromF32(tensor.Shape{2}, []float32{-1, 2})},
			{Ref: "w", Key: "weights.w", Epoch: 3},
		},
		Keep: map[srg.NodeID]string{out: "act.out"},
		Want: []srg.NodeID{out},
	}
	payload, err := EncodeExec(x)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeExec(payload)
	if err != nil {
		t.Fatal(err)
	}
	if back.Graph.Len() != 2 || back.Graph.Name != "sub" {
		t.Error("graph lost")
	}
	if len(back.Binds) != 2 || back.Binds[0].Inline == nil ||
		back.Binds[1].Key != "weights.w" || back.Binds[1].Epoch != 3 {
		t.Errorf("binds lost: %+v", back.Binds)
	}
	if back.Keep[out] != "act.out" || len(back.Want) != 1 || back.Want[0] != out {
		t.Error("keep/want lost")
	}
}

func TestExecOKCodecRoundTrip(t *testing.T) {
	a := &ExecOK{
		Results: map[srg.NodeID]*tensor.Tensor{
			1: tensor.FromF32(tensor.Shape{1}, []float32{5}),
		},
		Kept:      map[string]int64{"kv.0": 128},
		Epoch:     7,
		GPUTimeNs: 12345,
	}
	back, err := DecodeExecOK(EncodeExecOK(a))
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != 7 || back.GPUTimeNs != 12345 || back.Kept["kv.0"] != 128 {
		t.Errorf("execok fields lost: %+v", back)
	}
	if back.Results[1].F32()[0] != 5 {
		t.Error("results lost")
	}
}

func TestStatsCodec(t *testing.T) {
	s := &Stats{Epoch: 2, ResidentBytes: 1 << 40, ResidentCount: 9, GPUBusyNs: 77, ExecCalls: 3}
	back, err := DecodeStats(EncodeStats(s))
	if err != nil {
		t.Fatal(err)
	}
	if *back != *s {
		t.Errorf("stats %+v != %+v", back, s)
	}
}

func TestErrCodec(t *testing.T) {
	err := DecodeErr(EncodeErr(errors.New("kaboom")))
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "kaboom" {
		t.Errorf("err round trip = %v", err)
	}
}

func TestDecodersRejectGarbage(t *testing.T) {
	junk := []byte{0xff, 0x01}
	if _, err := DecodeUpload(junk); err == nil {
		t.Error("upload garbage should fail")
	}
	if _, err := DecodeExec(junk); err == nil {
		t.Error("exec garbage should fail")
	}
	if _, err := DecodeExecOK(junk); err == nil {
		t.Error("execok garbage should fail")
	}
	if _, err := DecodeStats(junk); err == nil {
		t.Error("stats garbage should fail")
	}
}

func TestCodecPropertyTensorPayloads(t *testing.T) {
	f := func(vals []float32, key string) bool {
		if len(vals) == 0 || len(key) > 1000 {
			return true
		}
		u := &Upload{Key: key, Data: tensor.FromF32(tensor.Shape{len(vals)}, vals)}
		back, err := DecodeUpload(EncodeUpload(u))
		if err != nil {
			return false
		}
		return back.Key == key && bytes.Equal(back.Data.Bytes(), u.Data.Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestConnPipeCallCounts(t *testing.T) {
	client, server := Pipe(nil, nil)
	defer client.Close()
	defer server.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		mt, p, err := server.Recv()
		if err != nil || mt != MsgPing {
			t.Errorf("server recv: %v %d", err, mt)
			return
		}
		if err := server.Send(MsgPong, p); err != nil {
			t.Errorf("server send: %v", err)
		}
	}()
	mt, _, err := client.Call(MsgPing, []byte("x"))
	if err != nil || mt != MsgPong {
		t.Fatalf("call: %v %d", err, mt)
	}
	<-done
	sent, recv, calls := client.Counters().Snapshot()
	if calls != 1 || sent != 6 || recv != 6 {
		t.Errorf("counters sent=%d recv=%d calls=%d", sent, recv, calls)
	}
	client.Counters().Reset()
	if client.Counters().Total() != 0 {
		t.Error("reset failed")
	}
}

func TestShaperAddsLatency(t *testing.T) {
	sh := &Shaper{PerCall: 20 * time.Millisecond}
	client, server := Pipe(nil, sh)
	defer client.Close()
	defer server.Close()
	go func() {
		mt, p, _ := server.Recv()
		_ = mt
		_ = server.Send(MsgPong, p)
	}()
	start := time.Now()
	if _, _, err := client.Call(MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Errorf("shaped call took only %v", d)
	}
}

func TestShaperBandwidthDelay(t *testing.T) {
	// 1 MB at 10 MB/s should take >= 100ms on the send side.
	sh := &Shaper{Bandwidth: 10 << 20}
	client, server := Pipe(nil, sh)
	defer client.Close()
	defer server.Close()
	go func() {
		for {
			if _, _, err := server.Recv(); err != nil {
				return
			}
			if err := server.Send(MsgPong, nil); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, _, err := client.Call(MsgUpload, make([]byte, 1<<20)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 95*time.Millisecond {
		t.Errorf("1MB at 10MB/s took only %v", d)
	}
}

func TestBufferPoolReuse(t *testing.T) {
	p := NewBufferPool(4)
	b1 := p.Get(100)
	if len(b1) != 100 || cap(b1) != 128 {
		t.Fatalf("len=%d cap=%d", len(b1), cap(b1))
	}
	p.Put(b1)
	b2 := p.Get(120)
	st := p.Stats()
	if st.Reuses != 1 {
		t.Errorf("reuses = %d, want 1 (same size class)", st.Reuses)
	}
	p.Put(b2)
	if p.Stats().PinnedBytes != 0 {
		t.Errorf("pinned bytes %d after all returned", p.Stats().PinnedBytes)
	}
}

func TestBufferPoolCapsFreeList(t *testing.T) {
	p := NewBufferPool(2)
	bufs := make([][]byte, 5)
	for i := range bufs {
		bufs[i] = p.Get(64)
	}
	for _, b := range bufs {
		p.Put(b)
	}
	// Only 2 retained; next 3 gets hit the retained ones then allocate.
	for i := 0; i < 3; i++ {
		p.Get(64)
	}
	st := p.Stats()
	if st.Reuses != 2 {
		t.Errorf("reuses = %d, want 2", st.Reuses)
	}
}

func TestBufferPoolNewTensorPinnedAndZeroed(t *testing.T) {
	p := NewBufferPool(0)
	tt := p.NewTensor(tensor.F32, 4)
	if !tt.Pinned() {
		t.Error("pool tensor should be pinned")
	}
	for _, v := range tt.F32() {
		if v != 0 {
			t.Error("pool tensor should be zeroed")
		}
	}
	tt.F32()[0] = 1
	tt.Release()
	// Buffer recycled: a new tensor of the same class must be zeroed
	// again.
	t2 := p.NewTensor(tensor.F32, 4)
	if t2.F32()[0] != 0 {
		t.Error("recycled tensor not zeroed")
	}
}

func TestPinReactivelyCopies(t *testing.T) {
	p := NewBufferPool(0)
	src := tensor.FromF32(tensor.Shape{2}, []float32{1, 2})
	pinned := p.PinReactively(src)
	if !pinned.Pinned() {
		t.Error("result should be pinned")
	}
	pinned.F32()[0] = 99
	if src.F32()[0] != 1 {
		t.Error("reactive pinning must copy")
	}
	// Pinning an already-pinned tensor is a no-op.
	again := p.PinReactively(pinned)
	if again != pinned {
		t.Error("double pin should return the same tensor")
	}
}

func TestIsClosed(t *testing.T) {
	if IsClosed(nil) {
		t.Error("nil is not closed")
	}
	if !IsClosed(io.EOF) {
		t.Error("EOF is closed")
	}
	if IsClosed(errors.New("other")) {
		t.Error("arbitrary error is not closed")
	}
}

func TestEncodeRejectsOversizedStrings(t *testing.T) {
	long := strings.Repeat("k", 70000)
	u := &Upload{Key: long, Data: tensor.New(tensor.F32, 1)}
	// Keys are length-prefixed with u16: encoding silently truncating
	// would corrupt the stream, so decode of the result must not return
	// the original key.
	back, err := DecodeUpload(EncodeUpload(u))
	if err == nil && back.Key == long {
		t.Error("oversized key survived a u16 length prefix")
	}
}

func TestClientWrongReplyTypes(t *testing.T) {
	// A confused server answering with mismatched message types must
	// produce typed client errors, not misparsed data.
	client, server := Pipe(nil, nil)
	defer client.Close()
	defer server.Close()
	go func() {
		for {
			_, _, err := server.Recv()
			if err != nil {
				return
			}
			// Always reply MsgPong regardless of request.
			if err := server.Send(MsgPong, nil); err != nil {
				return
			}
		}
	}()
	c := NewClient(client)
	if _, err := c.Upload("k", tensor.New(tensor.F32, 1)); err == nil {
		t.Error("upload with pong reply should error")
	}
	if _, err := c.Fetch("k", 0); err == nil {
		t.Error("fetch with pong reply should error")
	}
	if _, err := c.Stats(); err == nil {
		t.Error("stats with pong reply should error")
	}
	if err := c.Free("k"); err == nil {
		t.Error("free with pong reply should error")
	}
	if err := c.Crash(); err == nil {
		t.Error("crash with pong reply should error")
	}
}

func TestRemoteErrorString(t *testing.T) {
	e := &RemoteError{Msg: "boom"}
	if e.Error() != "remote: boom" {
		t.Errorf("error string %q", e.Error())
	}
}

func TestConnSendAfterClose(t *testing.T) {
	client, server := Pipe(nil, nil)
	server.Close()
	client.Close()
	if err := client.Send(MsgPing, nil); err == nil {
		t.Error("send on closed conn should fail")
	}
	if _, _, err := client.Recv(); err == nil {
		t.Error("recv on closed conn should fail")
	}
}
