package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseIgnores runs collectIgnores over a single in-memory source file
// named ignores.go.
func parseIgnores(t *testing.T, src string) []ignoreDirective {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "ignores.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("fixture source does not parse: %v", err)
	}
	return collectIgnores(fset, []*ast.File{f})
}

// TestIgnoreMultiDiagnosticLine: a single directive covers every
// matching diagnostic on its line, however many analyzers fired there.
func TestIgnoreMultiDiagnosticLine(t *testing.T) {
	directives := []ignoreDirective{
		{check: "timerleak", file: "x.go", line: 7},
	}
	diags := []Diagnostic{
		{Check: "timerleak", File: "x.go", Line: 7, Col: 2, Message: "first"},
		{Check: "timerleak", File: "x.go", Line: 7, Col: 30, Message: "second"},
		{Check: "timerleak", File: "x.go", Line: 8, Col: 2, Message: "line below (standalone form)"},
		{Check: "goleak", File: "x.go", Line: 7, Col: 2, Message: "different check, must survive"},
		{Check: "timerleak", File: "x.go", Line: 9, Col: 2, Message: "out of range, must survive"},
	}
	out := applyIgnores(diags, directives)
	if len(out) != 2 {
		t.Fatalf("got %d diagnostics, want 2 survivors: %+v", len(out), out)
	}
	if out[0].Check != "goleak" || out[1].Line != 9 {
		t.Fatalf("wrong survivors: %+v", out)
	}
}

// TestIgnoreAllOnLine: check ID "all" in a line directive suppresses
// every check on that line.
func TestIgnoreAllOnLine(t *testing.T) {
	directives := []ignoreDirective{{check: "all", file: "x.go", line: 4}}
	diags := []Diagnostic{
		{Check: "timerleak", File: "x.go", Line: 4},
		{Check: "goleak", File: "x.go", Line: 5},
		{Check: "goleak", File: "x.go", Line: 6},
	}
	out := applyIgnores(diags, directives)
	if len(out) != 1 || out[0].Line != 6 {
		t.Fatalf("want only the line-6 diagnostic to survive, got %+v", out)
	}
}

// TestFileIgnoreDirective: //lint:file-ignore suppresses the named
// check across its whole file — and only there, and only that check.
func TestFileIgnoreDirective(t *testing.T) {
	directives := parseIgnores(t, `// Package p.
//lint:file-ignore chaosgate this file IS the chaos injector
package p
`)
	if len(directives) != 1 {
		t.Fatalf("got %d directives, want 1: %+v", len(directives), directives)
	}
	d := directives[0]
	if !d.fileWide || d.check != "chaosgate" || d.broken != "" {
		t.Fatalf("bad parse: %+v", d)
	}
	diags := []Diagnostic{
		{Check: "chaosgate", File: "ignores.go", Line: 10},
		{Check: "chaosgate", File: "ignores.go", Line: 400},
		{Check: "goleak", File: "ignores.go", Line: 10, Message: "other check, must survive"},
		{Check: "chaosgate", File: "other.go", Line: 10, Message: "other file, must survive"},
	}
	out := applyIgnores(diags, directives)
	if len(out) != 2 {
		t.Fatalf("got %d diagnostics, want 2 survivors: %+v", len(out), out)
	}
	for _, d := range out {
		if d.Check == "chaosgate" && d.File == "ignores.go" {
			t.Fatalf("file-ignore failed to suppress %+v", d)
		}
	}
}

// TestFileIgnoreRejectsAll: a file exempt from every check should not
// be under analysis at all, so "all" is malformed for file-ignore.
func TestFileIgnoreRejectsAll(t *testing.T) {
	directives := parseIgnores(t, `package p

//lint:file-ignore all because reasons
`)
	if len(directives) != 1 || directives[0].broken == "" {
		t.Fatalf(`file-ignore "all" not marked malformed: %+v`, directives)
	}
	out := applyIgnores(nil, directives)
	if len(out) != 1 || out[0].Check != "lint" {
		t.Fatalf("malformed file-ignore not surfaced as a finding: %+v", out)
	}
	if !strings.Contains(out[0].Message, `"all"`) || !strings.Contains(out[0].Message, "lint:file-ignore") {
		t.Fatalf("finding message %q does not explain the rejection", out[0].Message)
	}
}

// TestMalformedDirectiveAudit walks every malformed shape through the
// parser and checks each one surfaces as an auditable "lint" finding
// with the directive's own position.
func TestMalformedDirectiveAudit(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantMsg string // substring of the resulting finding
	}{
		{
			name:    "line directive with no fields",
			src:     "package p\n\n//lint:ignore\n",
			wantMsg: "missing check ID and reason",
		},
		{
			name:    "line directive with check but no reason",
			src:     "package p\n\n//lint:ignore goleak\n",
			wantMsg: "missing reason",
		},
		{
			name:    "file directive with no fields",
			src:     "package p\n\n//lint:file-ignore\n",
			wantMsg: "missing check ID and reason",
		},
		{
			name:    "file directive with check but no reason",
			src:     "package p\n\n//lint:file-ignore goleak\n",
			wantMsg: "missing reason (format: //lint:file-ignore <check> <reason>)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			directives := parseIgnores(t, tc.src)
			if len(directives) != 1 {
				t.Fatalf("got %d directives, want 1: %+v", len(directives), directives)
			}
			if directives[0].broken == "" {
				t.Fatalf("directive not marked malformed: %+v", directives[0])
			}
			out := applyIgnores(nil, directives)
			if len(out) != 1 || out[0].Check != "lint" {
				t.Fatalf("malformed directive not reported: %+v", out)
			}
			if !strings.Contains(out[0].Message, tc.wantMsg) {
				t.Fatalf("message %q missing %q", out[0].Message, tc.wantMsg)
			}
			if out[0].File != "ignores.go" || out[0].Line != 3 {
				t.Fatalf("finding not anchored at the directive: %+v", out[0])
			}
		})
	}
}

// TestWellFormedDirectivesParse pins the happy-path shapes so the
// malformed checks cannot creep into them.
func TestWellFormedDirectivesParse(t *testing.T) {
	directives := parseIgnores(t, `package p

//lint:ignore goleak metrics flusher runs for process lifetime by design

//lint:ignore all generated shim

//lint:file-ignore timerleak chaos injector leaks timers on purpose
`)
	if len(directives) != 3 {
		t.Fatalf("got %d directives, want 3: %+v", len(directives), directives)
	}
	for i, d := range directives {
		if d.broken != "" {
			t.Errorf("directive %d spuriously malformed: %+v", i, d)
		}
	}
	if directives[0].check != "goleak" || directives[0].fileWide {
		t.Errorf("bad parse of line directive: %+v", directives[0])
	}
	if directives[1].check != "all" || directives[1].fileWide {
		t.Errorf(`bad parse of "all" line directive: %+v`, directives[1])
	}
	if directives[2].check != "timerleak" || !directives[2].fileWide {
		t.Errorf("bad parse of file directive: %+v", directives[2])
	}
}
