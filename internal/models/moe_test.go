package models

import (
	"fmt"
	"math/rand"
	"testing"

	"genie/internal/exec"
	"genie/internal/lazy"
	"genie/internal/srg"
	"genie/internal/tensor"
)

func localEval(b *lazy.Builder, want srg.NodeID) (*tensor.Tensor, error) {
	vals, err := exec.Graph(b.Graph(), func(op, ref string) (*tensor.Tensor, error) {
		if op == "param" {
			if t, ok := b.ParamData(ref); ok {
				return t, nil
			}
		} else if t, ok := b.InputData(ref); ok {
			return t, nil
		}
		return nil, fmt.Errorf("no data for %s %q", op, ref)
	})
	if err != nil {
		return nil, err
	}
	return vals[want], nil
}

func TestMoERoutesDataDependently(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	moe := NewMoE(rng, 8, 16, 4)

	// Find two inputs that route to different experts (data-dependent
	// control flow actually exercised, not assumed).
	chosen := map[int]bool{}
	for seed := int64(0); seed < 32 && len(chosen) < 2; seed++ {
		x := tensor.New(tensor.F32, 1, 8)
		x.RandN(rand.New(rand.NewSource(seed)), 2)
		expert, y, err := moe.Route(x, localEval)
		if err != nil {
			t.Fatal(err)
		}
		chosen[expert] = true
		if !y.Shape().Equal(tensor.Shape{1, 8}) {
			t.Fatalf("expert output %v", y.Shape())
		}
	}
	if len(chosen) < 2 {
		t.Error("routing never diverged across 32 random inputs")
	}
}

func TestMoERecaptureProducesDistinctStaticGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	moe := NewMoE(rng, 8, 16, 3)
	x := tensor.New(tensor.F32, 1, 8)

	// Each expert's re-captured graph is static, valid, and structurally
	// distinct (different param refs).
	fps := map[string]bool{}
	for e := range moe.Experts {
		b, _ := moe.BuildExpert(e, x)
		if err := b.Graph().Validate(); err != nil {
			t.Fatalf("expert %d graph invalid: %v", e, err)
		}
		fps[b.Graph().Fingerprint()] = true
	}
	if len(fps) != 3 {
		t.Errorf("expert graphs should be distinct, got %d fingerprints", len(fps))
	}
}

func TestMoERouteMatchesDirectExpertExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	moe := NewMoE(rng, 8, 16, 4)
	x := tensor.New(tensor.F32, 1, 8)
	x.RandN(rng, 1)

	expert, y, err := moe.Route(x, localEval)
	if err != nil {
		t.Fatal(err)
	}
	// Re-running the chosen expert directly gives the same output.
	b, out := moe.BuildExpert(expert, x)
	want, err := localEval(b, out)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(y, want, 0, 0) {
		t.Error("routed output differs from direct expert execution")
	}
}

func TestMoEBuildExpertBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	moe := NewMoE(rng, 4, 8, 2)
	defer func() {
		if recover() == nil {
			t.Error("out-of-range expert should panic")
		}
	}()
	moe.BuildExpert(5, tensor.New(tensor.F32, 1, 4))
}
