package runtime

import (
	"fmt"
	"time"

	"genie/internal/cluster"
	"genie/internal/lazy"
	"genie/internal/scheduler"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// PlanExecutor realizes a scheduler.Plan across multiple backends: it
// partitions the SRG into per-device segments along placement
// boundaries, ships each segment as one Exec to its device, carries
// boundary activations between devices through the client, honors the
// plan's KeepRemote directives, and duplicates recompute-marked
// producers into their consumers' segments instead of transferring their
// outputs (§3.3 "dynamic recomputation").
//
// This is the multi-accelerator generalization of the single-endpoint
// LLM modes: the same machinery drives pipelined CNN plans and
// heterogeneous multi-tenant placements.
type PlanExecutor struct {
	// EPs maps plan device IDs to live endpoints.
	EPs map[cluster.AcceleratorID]Endpoint
	// Metrics accumulates per-execution accounting.
	Metrics Metrics
}

// segment is a maximal run of same-device compute nodes in topo order.
type segment struct {
	device cluster.AcceleratorID
	nodes  []srg.NodeID
}

// Execute runs the plan and returns the values of the requested nodes.
// Leaf data binds from the builder; remote-resident leaves (weights
// already installed under their refs) bind by key automatically when the
// builder has no data for them.
func (pe *PlanExecutor) Execute(plan *scheduler.Plan, b *lazy.Builder, want []srg.NodeID) (map[srg.NodeID]*tensor.Tensor, error) {
	g := plan.Graph
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: plan graph invalid: %w", err)
	}

	segments := pe.segments(plan)
	wantSet := map[srg.NodeID]bool{}
	for _, id := range want {
		wantSet[id] = true
	}

	// Compute each segment's body (its nodes plus recompute-marked
	// producers inlined transitively), then the boundary set: any value
	// produced in one segment and consumed as a non-inlined input in
	// another must return to the client.
	bodies := make([]map[srg.NodeID]bool, len(segments))
	producedIn := map[srg.NodeID]int{}
	for si, seg := range segments {
		body := map[srg.NodeID]bool{}
		var add func(id srg.NodeID)
		add = func(id srg.NodeID) {
			if body[id] {
				return
			}
			n := g.Node(id)
			if n.Op == "param" || n.Op == "input" {
				return
			}
			body[id] = true
			for _, in := range n.Inputs {
				if plan.Recompute[in] {
					add(in)
				}
			}
		}
		for _, id := range seg.nodes {
			add(id)
		}
		bodies[si] = body
		for _, id := range seg.nodes {
			producedIn[id] = si
		}
	}
	needAtClient := map[srg.NodeID]bool{}
	for id := range wantSet {
		needAtClient[id] = true
	}
	for si, body := range bodies {
		for id := range body {
			for _, in := range g.Node(id).Inputs {
				if body[in] {
					continue
				}
				dep := g.Node(in)
				if dep.Op == "param" || dep.Op == "input" {
					continue
				}
				if producedIn[in] != si {
					needAtClient[in] = true
				}
			}
		}
	}

	vals := map[srg.NodeID]*tensor.Tensor{}
	for si, seg := range segments {
		ep, ok := pe.EPs[seg.device]
		if !ok {
			return nil, fmt.Errorf("runtime: no endpoint for device %q", seg.device)
		}
		if err := pe.runSegment(plan, b, seg, bodies[si], ep, vals, needAtClient); err != nil {
			return nil, err
		}
	}

	out := map[srg.NodeID]*tensor.Tensor{}
	for id := range wantSet {
		t, ok := vals[id]
		if !ok {
			return nil, fmt.Errorf("runtime: wanted node %d was not produced", id)
		}
		out[id] = t
	}
	pe.Metrics.RPCCalls += int64(len(segments))
	return out, nil
}

// segments splits compute nodes into maximal same-device runs in topo
// order. Recompute-marked nodes are excluded — they are inlined into
// consumer segments on demand.
func (pe *PlanExecutor) segments(plan *scheduler.Plan) []segment {
	var segs []segment
	var cur *segment
	for _, n := range plan.Graph.Nodes() {
		if n.Op == "param" || n.Op == "input" {
			continue
		}
		dev := plan.DeviceOf(n.ID)
		if cur == nil || cur.device != dev {
			segs = append(segs, segment{device: dev})
			cur = &segs[len(segs)-1]
		}
		cur.nodes = append(cur.nodes, n.ID)
	}
	return segs
}

// runSegment builds and executes one per-device subgraph over the given
// body (segment nodes plus inlined recomputes).
func (pe *PlanExecutor) runSegment(plan *scheduler.Plan, b *lazy.Builder, seg segment,
	body map[srg.NodeID]bool, ep Endpoint, vals map[srg.NodeID]*tensor.Tensor,
	needAtClient map[srg.NodeID]bool) error {
	g := plan.Graph

	// Build the subgraph: leaves for (a) original graph leaves consumed
	// by the body, (b) boundary values produced outside the body.
	sub := srg.New(g.Name + "@" + string(seg.device))
	remap := map[srg.NodeID]srg.NodeID{}
	ex := &transport.Exec{Graph: sub}
	boundLeaf := map[srg.NodeID]bool{}

	bindLeaf := func(orig *srg.Node) (srg.NodeID, error) {
		leaf := &srg.Node{
			Op: orig.Op, Ref: orig.Ref, Output: orig.Output,
			Residency: orig.Residency, Phase: orig.Phase, Modality: orig.Modality,
		}
		id, err := sub.Add(leaf)
		if err != nil {
			return srg.Invalid, err
		}
		if !boundLeaf[orig.ID] {
			boundLeaf[orig.ID] = true
			var data *tensor.Tensor
			var ok bool
			if orig.Op == "param" {
				data, ok = b.ParamData(orig.Ref)
			} else {
				data, ok = b.InputData(orig.Ref)
			}
			if ok && data != nil {
				ex.Binds = append(ex.Binds, transport.Binding{Ref: orig.Ref, Inline: data})
			} else {
				// Remote-resident under its ref (installed weights or
				// kept stateful objects).
				ex.Binds = append(ex.Binds, transport.Binding{Ref: orig.Ref, Key: orig.Ref})
			}
		}
		return id, nil
	}

	boundaryIdx := 0
	bindBoundary := func(orig *srg.Node) (srg.NodeID, error) {
		ref := fmt.Sprintf("__boundary.%d", boundaryIdx)
		boundaryIdx++
		leaf := &srg.Node{Op: "input", Ref: ref, Output: orig.Output,
			Residency: srg.ResidencyExternalInput}
		id, err := sub.Add(leaf)
		if err != nil {
			return srg.Invalid, err
		}
		t, ok := vals[orig.ID]
		if !ok {
			return srg.Invalid, fmt.Errorf("runtime: boundary value %d not materialized", orig.ID)
		}
		ex.Binds = append(ex.Binds, transport.Binding{Ref: ref, Inline: t})
		return id, nil
	}

	// Topological walk over the body in original ID order.
	for _, n := range g.Nodes() {
		if !body[n.ID] {
			continue
		}
		inputs := make([]srg.NodeID, len(n.Inputs))
		for i, in := range n.Inputs {
			if mapped, ok := remap[in]; ok {
				inputs[i] = mapped
				continue
			}
			dep := g.Node(in)
			var id srg.NodeID
			var err error
			if dep.Op == "param" || dep.Op == "input" {
				id, err = bindLeaf(dep)
			} else {
				id, err = bindBoundary(dep)
			}
			if err != nil {
				return err
			}
			remap[in] = id
			inputs[i] = id
		}
		clone := &srg.Node{
			Op: n.Op, Attrs: n.Attrs, Inputs: inputs, Output: n.Output,
			Module: n.Module, Phase: n.Phase, Residency: n.Residency,
			Modality: n.Modality, Cost: n.Cost,
		}
		id, err := sub.Add(clone)
		if err != nil {
			return err
		}
		remap[n.ID] = id
	}

	// Keeps and wants for this segment.
	for origID, key := range plan.KeepRemote {
		if mapped, ok := remap[origID]; ok && body[origID] {
			if ex.Keep == nil {
				ex.Keep = map[srg.NodeID]string{}
			}
			ex.Keep[mapped] = key
		}
	}
	backMap := map[srg.NodeID]srg.NodeID{} // sub ID -> orig ID
	for _, id := range seg.nodes {
		if needAtClient[id] {
			mapped := remap[id]
			ex.Want = append(ex.Want, mapped)
			backMap[mapped] = id
		}
	}

	ok, err := ep.Exec(ex)
	if err != nil {
		return fmt.Errorf("runtime: segment on %q: %w", seg.device, err)
	}
	pe.Metrics.GPUBusy += time.Duration(ok.GPUTimeNs)
	for mapped, t := range ok.Results {
		if orig, found := backMap[mapped]; found {
			vals[orig] = t
		}
	}
	return nil
}
