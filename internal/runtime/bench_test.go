package runtime

import (
	"context"
	"math/rand"
	"testing"

	"genie/internal/models"
	"genie/internal/obs"
)

// BenchmarkDecodeStep measures one local decode iteration end to end —
// graph capture, kernel execution, KV append — the per-token cost every
// serving mode pays. allocs/op here is the scratch arena's scorecard:
// steady-state steps should recycle activation buffers, not grow the
// heap by a transformer's worth of intermediates per token.
func BenchmarkDecodeStep(b *testing.B) {
	benchDecodeStep(b, nil)
}

// BenchmarkDecodeStepTraced is the same workload with a live span in
// the session context, so every Step opens and records a session.step
// span. The delta against BenchmarkDecodeStep is the tracing tax on the
// hot path; the observability contract (DESIGN.md §8) caps it at 5%.
func BenchmarkDecodeStepTraced(b *testing.B) {
	tr := obs.NewTracer(obs.TracerConfig{Proc: "bench", Capacity: 1024})
	defer tr.Stop()
	ctx, root := tr.StartRoot(context.Background(), "bench.decode")
	defer root.End()
	benchDecodeStep(b, ctx)
}

func benchDecodeStep(b *testing.B, ctx context.Context) {
	rng := rand.New(rand.NewSource(7))
	r := &LLMRunner{Model: models.NewGPT(rng, models.TinyGPT)}
	prompt := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	reset := func() (*Session, int) {
		s, err := r.NewScopedSessionCtx(ctx, ModeLocal, "")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Prefill(prompt); err != nil {
			b.Fatal(err)
		}
		// Warm the history so steps run at a realistic context.
		for i := 0; i < 8; i++ {
			if _, err := s.Step(); err != nil {
				b.Fatal(err)
			}
		}
		return s, len(prompt) + 8
	}
	s, hist := reset()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The tiny model's position table caps the context; roll the
		// session over (off the clock) before hitting it.
		if hist+1 >= models.TinyGPT.MaxSeq {
			b.StopTimer()
			s, hist = reset()
			b.StartTimer()
		}
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
		hist++
	}
}

// BenchmarkPrefill measures the prompt pass (the batch-parallel phase
// the worker pool accelerates most directly).
func BenchmarkPrefill(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	r := &LLMRunner{Model: models.NewGPT(rng, models.TinyGPT)}
	prompt := make([]int64, 32)
	for i := range prompt {
		prompt[i] = int64(1 + i%50)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := r.NewSession(ModeLocal)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Prefill(prompt); err != nil {
			b.Fatal(err)
		}
	}
}
