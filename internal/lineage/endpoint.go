package lineage

import (
	"fmt"
	"sync"

	"genie/internal/runtime"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// TrackedEndpoint adapts a Manager to runtime.Endpoint: uploads and
// executions route through the manager's provenance tracking against a
// *current* named backend, and Failover atomically replays lost state
// onto a replacement and rebinds. Hand one to runtime.LLMRunner.EP and
// every session op becomes recoverable — the glue that puts §3.5's
// lineage story in the online path without the runtime package ever
// importing lineage (the dependency points the other way).
type TrackedEndpoint struct {
	m *Manager

	mu   sync.Mutex
	name string
	// rebinds counts completed Failover calls (visible in tests/stats).
	rebinds int
}

// TrackedEndpoint returns a runtime.Endpoint view of the manager bound
// to the named (registered) backend.
func (m *Manager) TrackedEndpoint(name string) (*TrackedEndpoint, error) {
	if _, ok := m.Endpoint(name); !ok {
		return nil, fmt.Errorf("lineage: unknown endpoint %q", name)
	}
	return &TrackedEndpoint{m: m, name: name}, nil
}

// Name returns the currently bound backend name.
func (t *TrackedEndpoint) Name() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.name
}

// Rebinds returns how many failovers this endpoint has completed.
func (t *TrackedEndpoint) Rebinds() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rebinds
}

// current resolves the bound name and its raw endpoint.
func (t *TrackedEndpoint) current() (string, runtime.Endpoint, error) {
	name := t.Name()
	ep, ok := t.m.Endpoint(name)
	if !ok {
		return "", nil, fmt.Errorf("lineage: unknown endpoint %q", name)
	}
	return name, ep, nil
}

// Upload installs data under key with upload provenance, so recovery
// can re-install it anywhere.
func (t *TrackedEndpoint) Upload(key string, data *tensor.Tensor) (*transport.UploadOK, error) {
	name := t.Name()
	if err := t.m.UploadTracked(name, key, data); err != nil {
		return nil, err
	}
	epoch, _ := t.m.EpochOf(key)
	return &transport.UploadOK{Epoch: epoch, Bytes: int64(data.NumBytes())}, nil
}

// Exec runs x with tracked provenance; binding epochs are corrected
// from lineage state, which is what lets a session resume with stale
// client-side epochs right after a failover.
func (t *TrackedEndpoint) Exec(x *transport.Exec) (*transport.ExecOK, error) {
	return t.m.ExecTracked(t.Name(), x)
}

// Fetch reads a resident object from the bound backend.
func (t *TrackedEndpoint) Fetch(key string, epoch uint32) (*tensor.Tensor, error) {
	_, ep, err := t.current()
	if err != nil {
		return nil, err
	}
	return ep.Fetch(key, epoch)
}

// Free releases the object remotely and drops its lineage, so a later
// failover does not resurrect per-session state the session already
// released.
func (t *TrackedEndpoint) Free(key string) error {
	_, ep, err := t.current()
	if err != nil {
		return err
	}
	err = ep.Free(key)
	t.m.Forget(key)
	return err
}

// Stats reports the bound backend's counters.
func (t *TrackedEndpoint) Stats() (*transport.Stats, error) {
	_, ep, err := t.current()
	if err != nil {
		return nil, err
	}
	return ep.Stats()
}

// Failover replays every tracked object lost on the currently bound
// backend onto the named replacement and rebinds to it. It returns how
// many keys were regenerated. The replacement must be registered with
// the manager. Safe to call when nothing was lost (rebinds only).
func (t *TrackedEndpoint) Failover(onto string) (int, error) {
	t.mu.Lock()
	failed := t.name
	t.mu.Unlock()
	if _, ok := t.m.Endpoint(onto); !ok {
		return 0, fmt.Errorf("lineage: unknown replacement endpoint %q", onto)
	}
	n, err := t.m.RecoverFrom(failed, onto)
	if err != nil {
		return n, err
	}
	t.mu.Lock()
	t.name = onto
	t.rebinds++
	t.mu.Unlock()
	return n, nil
}
