package backend

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"genie/internal/transport"
)

// Serve answers the Genie wire protocol on one framed connection until
// the peer disconnects or the server drains. It is safe to run one
// Serve per connection concurrently against the same Server.
//
// During Drain, a request already read off the wire is served and its
// reply delivered before the connection closes — in-flight work is
// never dropped mid-RPC.
func (s *Server) Serve(conn *transport.Conn) error {
	if !s.register(conn) {
		return nil // already draining: refuse the connection
	}
	defer s.unregister(conn)
	for {
		t, env, payload, err := conn.RecvEnv()
		if err != nil {
			if transport.IsClosed(err) {
				return nil
			}
			return err
		}
		s.setBusy(conn, true)
		// A non-zero envelope means the caller is tracing: the server's
		// span for this RPC parents under the client-side transport span,
		// stitching one tree across the process boundary.
		span := s.tracer.RemoteSpan(env.Trace, env.Span, "backend."+transport.KindName(t))
		span.SetAttrInt("payload_bytes", int64(len(payload)))
		rt, rp := s.handle(t, payload)
		span.SetAttrInt("reply_bytes", int64(len(rp)))
		span.End()
		err = conn.SendEnv(rt, env, rp)
		last := s.setBusy(conn, false)
		if err != nil {
			if transport.IsClosed(err) {
				return nil
			}
			return err
		}
		if last {
			return nil // drained: reply delivered, now hang up
		}
	}
}

// register tracks a live connection; it reports false when the server
// is draining (the connection must be refused).
func (s *Server) register(conn *transport.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.draining {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[*transport.Conn]bool)
	}
	s.conns[conn] = false
	return true
}

func (s *Server) unregister(conn *transport.Conn) {
	s.connMu.Lock()
	delete(s.conns, conn)
	s.connMu.Unlock()
}

// setBusy flips a connection's in-flight flag; it reports whether the
// server is draining (so the Serve loop can exit after the reply).
func (s *Server) setBusy(conn *transport.Conn, busy bool) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if _, ok := s.conns[conn]; ok {
		s.conns[conn] = busy
	}
	return s.draining
}

// Drain begins a graceful shutdown of the serving side: new
// connections are refused, idle connections close immediately, and
// connections with a request in flight close right after delivering
// their reply. The resident store is untouched. Callers close the
// listener themselves; Listen returns once every Serve loop exits.
func (s *Server) Drain() {
	s.connMu.Lock()
	s.draining = true
	for conn, busy := range s.conns {
		if !busy {
			_ = conn.Close()
		}
	}
	s.connMu.Unlock()
}

func (s *Server) handle(t transport.MsgType, payload []byte) (transport.MsgType, []byte) {
	fail := func(err error) (transport.MsgType, []byte) {
		return transport.MsgErr, transport.EncodeErr(err)
	}
	switch t {
	case transport.MsgPing:
		return transport.MsgPong, nil
	case transport.MsgUpload:
		u, err := transport.DecodeUpload(payload)
		if err != nil {
			return fail(err)
		}
		ack, err := s.Upload(u.Key, u.Data)
		if err != nil {
			return fail(err)
		}
		return transport.MsgUploadOK, transport.EncodeUploadOK(ack)
	case transport.MsgExec:
		x, err := transport.DecodeExec(payload)
		if err != nil {
			return fail(err)
		}
		ok, err := s.Exec(x)
		if err != nil {
			return fail(err)
		}
		return transport.MsgExecOK, transport.EncodeExecOK(ok)
	case transport.MsgFetch:
		f, err := transport.DecodeFetch(payload)
		if err != nil {
			return fail(err)
		}
		data, err := s.Lookup(f.Key, f.Epoch)
		if err != nil {
			return fail(err)
		}
		return transport.MsgTensor, transport.EncodeTensorMsg(data)
	case transport.MsgFree:
		f, err := transport.DecodeFetch(payload)
		if err != nil {
			return fail(err)
		}
		s.Free(f.Key)
		return transport.MsgFreeOK, nil
	case transport.MsgCrash:
		s.Crash()
		return transport.MsgCrashOK, nil
	case transport.MsgStats:
		return transport.MsgStatsOK, transport.EncodeStats(s.Stats())
	}
	return fail(fmt.Errorf("backend: unknown message type %d", t))
}

// Listen serves the protocol on a TCP listener until the listener closes.
// Each connection gets its own goroutine.
func (s *Server) Listen(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		raw, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		if tc, ok := raw.(*net.TCPConn); ok {
			_ = tc.SetNoDelay(true)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn := transport.NewConn(raw, nil, nil)
			defer conn.Close()
			if err := s.Serve(conn); err != nil {
				log.Printf("backend: connection error: %v", err)
			}
		}()
	}
}
