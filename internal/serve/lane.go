package serve

import (
	"fmt"
	goruntime "runtime"
	"sync/atomic"

	"genie/internal/obs"
	"genie/internal/runtime"
)

// lane is one backend's dispatch loop. A lane owns its runner's
// connection outright (the transport is a synchronous RPC channel), so
// everything on a backend — prefills and decode steps of every resident
// request — executes from this single goroutine. Continuous batching is
// the loop structure itself: each iterate() is one step boundary where
// finished requests leave, queued requests join (prefill), and every
// active request advances exactly one decode step.
type lane struct {
	e       *Engine
	name    string
	runner  *runtime.LLMRunner
	active  []*activeReq
	activeN atomic.Int32
	wake    chan struct{}
}

func newLane(e *Engine, name string, r *runtime.LLMRunner) *lane {
	return &lane{e: e, name: name, runner: r, wake: make(chan struct{}, 1)}
}

// run is the production loop: iterate while there is work, sleep until
// nudged otherwise. The Gosched between iterations keeps admission
// live on small GOMAXPROCS: a busy lane ping-ponging with an
// in-process backend would otherwise monopolize the scheduler and
// starve Submit callers, serializing a burst that should batch.
func (l *lane) run() {
	defer l.e.wg.Done()
	for {
		if l.iterate() {
			goruntime.Gosched()
			continue
		}
		select {
		case <-l.wake:
		case <-l.e.stop:
			return
		}
	}
}

// iterate executes one step boundary; it reports whether any work was
// done (false = the lane is idle and may sleep).
func (l *lane) iterate() bool {
	worked := l.admit()
	if len(l.active) > 0 {
		worked = true
		stepped := 0
		keep := l.active[:0]
		for _, ar := range l.active {
			didStep, stay := l.advance(ar)
			if didStep {
				stepped++
			}
			if stay {
				keep = append(keep, ar)
			}
		}
		for i := len(keep); i < len(l.active); i++ {
			l.active[i] = nil
		}
		l.active = keep
		l.activeN.Store(int32(len(l.active)))
		l.e.stats.occupancy(stepped)
	}
	l.e.maybeDrained()
	return worked
}

// admit moves queued requests into the running batch until it is full,
// running each newcomer's prefill. Reports whether anything was
// admitted or retired.
func (l *lane) admit() bool {
	worked := false
	for len(l.active) < l.e.cfg.MaxBatch {
		ar := l.e.dequeue()
		if ar == nil {
			break
		}
		worked = true
		if !l.prefill(ar) {
			continue // retired at admission (cancelled/expired/failed)
		}
		l.active = append(l.active, ar)
		l.e.noteJoin(ar)
	}
	l.activeN.Store(int32(len(l.active)))
	return worked
}

// prefill runs a newcomer's prompt phase; it reports whether the
// request joined the batch (false = already completed or retired).
func (l *lane) prefill(ar *activeReq) bool {
	// Queue wait ends the moment a lane picks the request up.
	ar.qspan.End()
	ar.qspan = nil
	if l.retireIfDone(ar) {
		return false
	}
	// The session carries the request span: decode-step spans parent
	// under serve.request; the prefill itself nests under serve.prefill.
	sess, err := l.runner.NewScopedSessionCtx(ar.tctx, l.e.cfg.Mode, fmt.Sprintf("req%d/", ar.id))
	if err != nil {
		l.finish(ar, err, outcomeFailed)
		return false
	}
	ar.sess = sess
	pctx, pspan := obs.StartSpan(ar.tctx, "serve.prefill")
	pspan.SetAttr("backend", l.name)
	first, err := sess.PrefillCtx(pctx, ar.prompt)
	pspan.End()
	if err != nil {
		l.finish(ar, err, outcomeFailed)
		return false
	}
	ar.ttft = l.e.clock.Now().Sub(ar.arrival)
	l.e.stats.recordTTFT(ar.ttft)
	l.emit(ar, first)
	if len(ar.tokens) >= ar.maxTokens {
		l.finish(ar, nil, outcomeCompleted)
		return false
	}
	return true
}

// advance runs one request's share of a decode iteration. didStep
// reports whether a decode step executed (the occupancy sample); stay
// whether the request remains in the batch.
func (l *lane) advance(ar *activeReq) (didStep, stay bool) {
	if l.retireIfDone(ar) {
		return false, false
	}
	t0 := l.e.clock.Now()
	tok, err := ar.sess.Step()
	l.e.stats.recordStep(l.e.clock.Now().Sub(t0))
	if err != nil {
		l.finish(ar, err, outcomeFailed)
		return false, false
	}
	l.emit(ar, tok)
	if len(ar.tokens) >= ar.maxTokens {
		l.finish(ar, nil, outcomeCompleted)
		return true, false
	}
	return true, true
}

// retireIfDone retires a cancelled or deadline-expired request at this
// step boundary; it reports whether the request was retired.
func (l *lane) retireIfDone(ar *activeReq) bool {
	if ar.ctx != nil && ar.ctx.Err() != nil {
		l.finish(ar, ar.ctx.Err(), outcomeCancelled)
		return true
	}
	if !ar.deadline.IsZero() && l.e.clock.Now().After(ar.deadline) {
		l.finish(ar, ErrDeadlineExceeded, outcomeExpired)
		return true
	}
	return false
}

// emit records a generated token and invokes the streaming hook.
func (l *lane) emit(ar *activeReq, tok int64) {
	idx := len(ar.tokens)
	ar.tokens = append(ar.tokens, tok)
	l.e.stats.tokensOut.Inc()
	if ar.onToken != nil {
		ar.onToken(Token{Index: idx, ID: tok})
	}
}

// finish retires a request: releases its per-request remote state,
// builds the result (partial tokens included on expiry/cancel), bumps
// the outcome counter, closes the request span, and unblocks the
// submitter.
func (l *lane) finish(ar *activeReq, err error, outcome string) {
	if ar.sess != nil {
		_ = ar.sess.Close()
	}
	l.e.noteLeave(ar)
	lat := l.e.clock.Now().Sub(ar.arrival)
	if err == nil {
		l.e.stats.recordLatency(lat)
	}
	l.e.stats.countOutcome(outcome)
	// A request retired while still queued never had its queue span
	// ended by prefill.
	ar.qspan.End()
	ar.qspan = nil
	ar.span.SetAttr("outcome", outcome)
	ar.span.SetAttrInt("tokens", int64(len(ar.tokens)))
	ar.span.SetAttr("backend", l.name)
	ar.span.End()
	ar.complete(&Result{
		Tokens:  ar.tokens,
		TTFT:    ar.ttft,
		Latency: lat,
		Backend: l.name,
	}, err)
}
