package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleSpans(t *testing.T) []Span {
	t.Helper()
	clk := newFakeClock()
	tr := NewTracer(TracerConfig{Proc: "gateway", Clock: clk, Capacity: 16})
	defer tr.Stop()
	ctx, root := tr.StartRoot(context.Background(), "http.generate")
	clk.Advance(2 * time.Millisecond)
	_, child := StartSpan(ctx, "serve.request")
	child.SetAttr("tenant", "alice")
	clk.Advance(3 * time.Millisecond)
	child.End()
	root.End()
	return tr.Snapshot()
}

func TestChromeTraceRoundTripsThroughJSON(t *testing.T) {
	spans := sampleSpans(t)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var back struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var xEvents, mEvents int
	for _, ev := range back.TraceEvents {
		switch ev["ph"] {
		case "X":
			xEvents++
			if _, ok := ev["ts"]; !ok && ev["name"] != "http.generate" {
				t.Fatalf("X event missing ts: %v", ev)
			}
		case "M":
			mEvents++
		}
	}
	if xEvents != 2 || mEvents != 1 {
		t.Fatalf("got %d X / %d M events, want 2 / 1\n%s", xEvents, mEvents, buf.String())
	}
	if !strings.Contains(buf.String(), `"tenant":"alice"`) {
		t.Fatalf("attrs not exported as args:\n%s", buf.String())
	}
}

func TestNDJSONOneObjectPerLine(t *testing.T) {
	spans := sampleSpans(t)
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(spans) {
		t.Fatalf("%d lines for %d spans", len(lines), len(spans))
	}
	for _, line := range lines {
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if s.Trace == 0 || s.ID == 0 {
			t.Fatalf("span line lost IDs: %q", line)
		}
	}
}
