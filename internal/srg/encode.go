package srg

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// The binary encoding is the SRG's wire format: it is what a Genie client
// ships to a global scheduler (§3.6) and what lineage checkpoints persist
// (§3.5). Layout (little-endian):
//
//	magic "SRG1" | u16 nameLen | name | u32 nodeCount | nodes… |
//	u32 edgeAnnCount | edge annotations…
//
// Each node: u32 id | str op | str ref | str module | str phase |
// u8 residency | str modality | f64 flops | i64 bytes | u8 dtype |
// u8 rank | rank×u32 dims | u32 nIn | nIn×u32 inputs |
// u16 nAttrs | nAttrs×(str,str) sorted by key.

var magic = [4]byte{'S', 'R', 'G', '1'}

// limits bound decode-side allocations against malformed input.
const (
	maxNodes    = 16 << 20
	maxStrLen   = 1 << 16
	maxAttrs    = 1 << 12
	maxNodeRank = 16
)

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Encode writes the graph in the binary wire format.
func (g *Graph) Encode(w io.Writer) error {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	writeStr16 := func(s string) error {
		if len(s) > maxStrLen {
			return fmt.Errorf("srg: string too long (%d)", len(s))
		}
		var b [2]byte
		binary.LittleEndian.PutUint16(b[:], uint16(len(s)))
		if _, err := bw.Write(b[:]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	writeU32 := func(v uint32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		_, err := bw.Write(b[:])
		return err
	}
	if err := writeStr16(g.Name); err != nil {
		return err
	}
	if err := writeU32(uint32(len(g.nodes))); err != nil {
		return err
	}
	for _, n := range g.nodes {
		if err := writeU32(uint32(n.ID)); err != nil {
			return err
		}
		for _, s := range []string{n.Op, n.Ref, n.Module, string(n.Phase)} {
			if err := writeStr16(s); err != nil {
				return err
			}
		}
		if err := bw.WriteByte(byte(n.Residency)); err != nil {
			return err
		}
		if err := writeStr16(string(n.Modality)); err != nil {
			return err
		}
		var f [16]byte
		binary.LittleEndian.PutUint64(f[:8], uint64(int64(n.Cost.FLOPs)))
		binary.LittleEndian.PutUint64(f[8:], uint64(n.Cost.Bytes))
		if _, err := bw.Write(f[:]); err != nil {
			return err
		}
		if err := bw.WriteByte(n.Output.DType); err != nil {
			return err
		}
		if len(n.Output.Shape) > maxNodeRank {
			return fmt.Errorf("srg: node %d rank %d too large", n.ID, len(n.Output.Shape))
		}
		if err := bw.WriteByte(byte(len(n.Output.Shape))); err != nil {
			return err
		}
		for _, d := range n.Output.Shape {
			if err := writeU32(uint32(d)); err != nil {
				return err
			}
		}
		if err := writeU32(uint32(len(n.Inputs))); err != nil {
			return err
		}
		for _, in := range n.Inputs {
			if err := writeU32(uint32(in)); err != nil {
				return err
			}
		}
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var ab [2]byte
		binary.LittleEndian.PutUint16(ab[:], uint16(len(keys)))
		if _, err := bw.Write(ab[:]); err != nil {
			return err
		}
		for _, k := range keys {
			if err := writeStr16(k); err != nil {
				return err
			}
			if err := writeStr16(n.Attrs[k]); err != nil {
				return err
			}
		}
	}
	// Edge annotations, sorted for determinism.
	type ann struct {
		k        edgeKey
		rate     float64
		hasRate  bool
		critical bool
		hasCrit  bool
	}
	merged := make(map[edgeKey]*ann)
	get := func(k edgeKey) *ann {
		a, ok := merged[k]
		if !ok {
			a = &ann{k: k}
			merged[k] = a
		}
		return a
	}
	for k, r := range g.edgeRate {
		a := get(k)
		a.rate, a.hasRate = r, true
	}
	for k, c := range g.edgeCritical {
		a := get(k)
		a.critical, a.hasCrit = c, true
	}
	anns := make([]*ann, 0, len(merged))
	for _, a := range merged {
		anns = append(anns, a)
	}
	sort.Slice(anns, func(i, j int) bool {
		if anns[i].k.to != anns[j].k.to {
			return anns[i].k.to < anns[j].k.to
		}
		return anns[i].k.arg < anns[j].k.arg
	})
	if err := writeU32(uint32(len(anns))); err != nil {
		return err
	}
	for _, a := range anns {
		if err := writeU32(uint32(a.k.to)); err != nil {
			return err
		}
		if err := writeU32(uint32(a.k.arg)); err != nil {
			return err
		}
		var flags byte
		if a.hasRate {
			flags |= 1
		}
		if a.hasCrit {
			flags |= 2
		}
		if a.critical {
			flags |= 4
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		var rb [8]byte
		binary.LittleEndian.PutUint64(rb[:], uint64(int64(a.rate*1e9)))
		if _, err := bw.Write(rb[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a graph in the binary wire format.
func Decode(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, fmt.Errorf("srg: bad magic %q", m)
	}
	readStr16 := func() (string, error) {
		var b [2]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return "", err
		}
		n := int(binary.LittleEndian.Uint16(b[:]))
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	name, err := readStr16()
	if err != nil {
		return nil, err
	}
	g := New(name)
	count, err := readU32()
	if err != nil {
		return nil, err
	}
	if count > maxNodes {
		return nil, fmt.Errorf("srg: node count %d exceeds limit", count)
	}
	for i := uint32(0); i < count; i++ {
		id, err := readU32()
		if err != nil {
			return nil, err
		}
		if id != i {
			return nil, fmt.Errorf("srg: non-dense node ID %d at index %d", id, i)
		}
		n := &Node{}
		if n.Op, err = readStr16(); err != nil {
			return nil, err
		}
		if n.Ref, err = readStr16(); err != nil {
			return nil, err
		}
		if n.Module, err = readStr16(); err != nil {
			return nil, err
		}
		var ph string
		if ph, err = readStr16(); err != nil {
			return nil, err
		}
		n.Phase = Phase(ph)
		resB, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		n.Residency = Residency(resB)
		var mod string
		if mod, err = readStr16(); err != nil {
			return nil, err
		}
		n.Modality = Modality(mod)
		var f [16]byte
		if _, err := io.ReadFull(br, f[:]); err != nil {
			return nil, err
		}
		n.Cost.FLOPs = float64(int64(binary.LittleEndian.Uint64(f[:8])))
		n.Cost.Bytes = int64(binary.LittleEndian.Uint64(f[8:]))
		if n.Output.DType, err = br.ReadByte(); err != nil {
			return nil, err
		}
		rank, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if int(rank) > maxNodeRank {
			return nil, fmt.Errorf("srg: rank %d too large", rank)
		}
		n.Output.Shape = make([]int, rank)
		for d := range n.Output.Shape {
			v, err := readU32()
			if err != nil {
				return nil, err
			}
			n.Output.Shape[d] = int(v)
		}
		nIn, err := readU32()
		if err != nil {
			return nil, err
		}
		if nIn > count {
			return nil, fmt.Errorf("srg: node %d input count %d too large", id, nIn)
		}
		n.Inputs = make([]NodeID, nIn)
		for j := range n.Inputs {
			v, err := readU32()
			if err != nil {
				return nil, err
			}
			n.Inputs[j] = NodeID(v)
		}
		var ab [2]byte
		if _, err := io.ReadFull(br, ab[:]); err != nil {
			return nil, err
		}
		nAttr := int(binary.LittleEndian.Uint16(ab[:]))
		if nAttr > maxAttrs {
			return nil, fmt.Errorf("srg: attr count %d too large", nAttr)
		}
		if nAttr > 0 {
			n.Attrs = make(map[string]string, nAttr)
			for j := 0; j < nAttr; j++ {
				k, err := readStr16()
				if err != nil {
					return nil, err
				}
				v, err := readStr16()
				if err != nil {
					return nil, err
				}
				n.Attrs[k] = v
			}
		}
		if _, err := g.Add(n); err != nil {
			return nil, err
		}
	}
	annCount, err := readU32()
	if err != nil {
		return nil, err
	}
	if annCount > maxNodes {
		return nil, fmt.Errorf("srg: edge annotation count %d exceeds limit", annCount)
	}
	for i := uint32(0); i < annCount; i++ {
		to, err := readU32()
		if err != nil {
			return nil, err
		}
		arg, err := readU32()
		if err != nil {
			return nil, err
		}
		flags, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		var rb [8]byte
		if _, err := io.ReadFull(br, rb[:]); err != nil {
			return nil, err
		}
		k := edgeKey{NodeID(to), int(arg)}
		if flags&1 != 0 {
			g.edgeRate[k] = float64(int64(binary.LittleEndian.Uint64(rb[:]))) / 1e9
		}
		if flags&2 != 0 {
			g.edgeCritical[k] = flags&4 != 0
		}
	}
	return g, nil
}

// Fingerprint returns a stable hex digest of the graph's canonical
// encoding. Two graphs with identical structure and annotations share a
// fingerprint; the global scheduler uses it to recognize repeated
// workloads (e.g. "two tenants running the same public LLM", §3.6).
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	// Name is excluded: the fingerprint identifies computation, not label.
	saved := g.Name
	g.Name = ""
	_ = g.Encode(h)
	g.Name = saved
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// jsonGraph is the exported JSON form (genie-viz, debugging).
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
	Edges []Edge     `json:"edges"`
}

type jsonNode struct {
	ID        NodeID            `json:"id"`
	Op        string            `json:"op"`
	Ref       string            `json:"ref,omitempty"`
	Module    string            `json:"module,omitempty"`
	Phase     Phase             `json:"phase,omitempty"`
	Residency string            `json:"residency,omitempty"`
	Modality  Modality          `json:"modality,omitempty"`
	FLOPs     float64           `json:"flops,omitempty"`
	Bytes     int64             `json:"bytes,omitempty"`
	Output    TensorMeta        `json:"output"`
	Inputs    []NodeID          `json:"inputs,omitempty"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

// MarshalJSON implements json.Marshaler for tooling output.
func (g *Graph) MarshalJSON() ([]byte, error) {
	out := jsonGraph{Name: g.Name, Edges: g.Edges()}
	for _, n := range g.nodes {
		out.Nodes = append(out.Nodes, jsonNode{
			ID: n.ID, Op: n.Op, Ref: n.Ref, Module: n.Module,
			Phase: n.Phase, Residency: n.Residency.String(), Modality: n.Modality,
			FLOPs: n.Cost.FLOPs, Bytes: n.Cost.Bytes,
			Output: n.Output, Inputs: n.Inputs, Attrs: n.Attrs,
		})
	}
	return json.Marshal(out)
}

// DOT renders the graph in Graphviz format, coloring nodes by phase and
// shaping leaves by residency — the genie-viz output.
func (g *Graph) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [fontname=\"monospace\"];\n", g.Name)
	colors := map[Phase]string{
		PhaseLLMPrefill: "#cfe8ff", PhaseLLMDecode: "#ffd9cc",
		PhaseCVStage: "#d9f2d9", PhaseSparse: "#fff2cc", PhaseDense: "#e6d9f2",
		PhaseFusion: "#f2d9e6",
	}
	for _, n := range g.nodes {
		label := n.Op
		if n.Ref != "" {
			label += "\\n" + n.Ref
		}
		shape := "box"
		if n.Op == "param" {
			shape = "cylinder"
		} else if n.Op == "input" {
			shape = "invhouse"
		}
		color := colors[n.Phase]
		if color == "" {
			color = "#eeeeee"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", shape=%s, style=filled, fillcolor=%q];\n",
			n.ID, label, shape, color)
	}
	for _, e := range g.Edges() {
		style := ""
		if e.Critical {
			style = " [penwidth=2, color=red]"
		}
		fmt.Fprintf(&b, "  n%d -> n%d%s;\n", e.From, e.To, style)
	}
	b.WriteString("}\n")
	return b.String()
}
