// Package runtime is Genie's client-side execution engine: it carries
// captured SRGs to execution sites (the local device or remote backends),
// manages remote-resident objects by key+epoch, and records the metrics
// the evaluation reports (latency, network volume, modeled GPU busy
// time).
//
// The package implements the paper's four evaluation modes (§4) as
// executable strategies over the same model graphs, so their outputs can
// be compared token-for-token:
//
//   - Local: everything on the client's own device.
//   - Naive (semantics-blind): every remote call re-uploads all weights;
//     no state survives between calls.
//   - ΔKV (semantics-blind + transport caching): weights and KV stay
//     resident, but the blind runtime dispatches one RPC per module and
//     materializes every call's outputs back to the client.
//   - Semantics-Aware: the SRG drives one fused RPC per step; weights and
//     caches are pinned remotely by handle; only the next token and its
//     logits cross the wire.
package runtime

import (
	"fmt"
	"time"

	"genie/internal/device"
	"genie/internal/exec"
	"genie/internal/lazy"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// localSpec models the client machine's own accelerator in Local mode
// (the paper's upper bound runs client and GPU in the same box).
var localSpec = device.A100

// Mode selects an execution strategy.
type Mode int

// The four evaluation modes of §4.
const (
	ModeLocal Mode = iota
	ModeNaive
	ModeDeltaKV
	ModeSemAware
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeLocal:
		return "local"
	case ModeNaive:
		return "naive"
	case ModeDeltaKV:
		return "delta_kv"
	case ModeSemAware:
		return "semantics_aware"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// ParseMode converts the String form back to a Mode.
func ParseMode(s string) (Mode, error) {
	for _, m := range []Mode{ModeLocal, ModeNaive, ModeDeltaKV, ModeSemAware} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("runtime: unknown mode %q", s)
}

// Endpoint abstracts a remote accelerator server. *transport.Client
// satisfies it over a real socket; tests may substitute in-process fakes.
type Endpoint interface {
	Upload(key string, data *tensor.Tensor) (*transport.UploadOK, error)
	Exec(x *transport.Exec) (*transport.ExecOK, error)
	Fetch(key string, epoch uint32) (*tensor.Tensor, error)
	Free(key string) error
	Stats() (*transport.Stats, error)
}

// Metrics aggregates one phase's measurements.
type Metrics struct {
	Wall     time.Duration
	NetBytes int64
	RPCCalls int64
	// GPUBusy is the modeled device time reported by the backend.
	GPUBusy time.Duration
}

// Add accumulates.
func (m *Metrics) Add(o Metrics) {
	m.Wall += o.Wall
	m.NetBytes += o.NetBytes
	m.RPCCalls += o.RPCCalls
	m.GPUBusy += o.GPUBusy
}

// Utilization returns GPU busy time over wall time (the evaluation's
// "GPU Util" column).
func (m Metrics) Utilization() float64 {
	if m.Wall == 0 {
		return 0
	}
	return float64(m.GPUBusy) / float64(m.Wall)
}

// BindAll resolves every leaf of a builder's graph from its registered
// data — the local execution binder.
func BindAll(b *lazy.Builder) exec.Binder {
	return func(op, ref string) (*tensor.Tensor, error) {
		if op == "param" {
			if t, ok := b.ParamData(ref); ok {
				return t, nil
			}
			return nil, fmt.Errorf("runtime: no param data for %q", ref)
		}
		if t, ok := b.InputData(ref); ok {
			return t, nil
		}
		return nil, fmt.Errorf("runtime: no input data for %q", ref)
	}
}

// RunLocal evaluates a captured graph entirely in-process and returns all
// node values.
func RunLocal(b *lazy.Builder) (map[int32]*tensor.Tensor, error) {
	vals, err := exec.Graph(b.Graph(), BindAll(b))
	if err != nil {
		return nil, err
	}
	out := make(map[int32]*tensor.Tensor, len(vals))
	for id, t := range vals {
		out[int32(id)] = t
	}
	return out, nil
}

// RunLocalKeep evaluates a captured graph in-process with activation
// lifetime tracking: only the keep nodes' values are retained and
// returned; every other intermediate is released back to the tensor
// scratch arena at its last use, so steady-state decode loops recycle
// activation buffers instead of reallocating per token.
func RunLocalKeep(b *lazy.Builder, keep map[int32]bool) (map[int32]*tensor.Tensor, error) {
	need := make(map[srg.NodeID]bool, len(keep))
	for id := range keep {
		need[srg.NodeID(id)] = true
	}
	vals, err := exec.GraphEphemeral(b.Graph(), BindAll(b), need)
	if err != nil {
		return nil, err
	}
	out := make(map[int32]*tensor.Tensor, len(vals))
	for id, t := range vals {
		out[int32(id)] = t
	}
	return out, nil
}

// InstallWeights uploads every parameter of a captured graph to the
// endpoint under its ref — the one-time provisioning step of the ΔKV and
// Semantics-Aware modes ("weights remain remote"). Returns total bytes
// installed.
func InstallWeights(ep Endpoint, b *lazy.Builder) (int64, error) {
	var total int64
	for _, n := range b.Graph().Nodes() {
		if n.Op != "param" {
			continue
		}
		data, ok := b.ParamData(n.Ref)
		if !ok {
			return total, fmt.Errorf("runtime: param %q has no data", n.Ref)
		}
		ack, err := ep.Upload(n.Ref, data)
		if err != nil {
			return total, fmt.Errorf("runtime: install %q: %w", n.Ref, err)
		}
		total += ack.Bytes
	}
	return total, nil
}
