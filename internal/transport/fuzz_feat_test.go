package transport

import (
	"bytes"
	"testing"

	"genie/internal/tensor"
)

// Fuzz targets for the negotiated wire features (DESIGN.md §11): the
// dedup/delta payload decoders, the delta codec, and compressed frames.
// Same contract as fuzz_test.go — arbitrary bytes must produce typed
// FrameErrors, never panics or runaway allocation.

func FuzzDecodeUploadRef(f *testing.F) {
	f.Add(EncodeUploadRef(&UploadRef{Key: "w", Hash: [HashSize]byte{1, 2, 3}}))
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeUploadRef(data)
		if err != nil {
			if !IsFrameError(err) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		back, err := DecodeUploadRef(EncodeUploadRef(u))
		if err != nil || back.Key != u.Key || back.Hash != u.Hash {
			t.Fatal("upload_ref round trip not stable")
		}
	})
}

func FuzzDecodeUploadDelta(f *testing.F) {
	prev := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	next := []byte{1, 2, 9, 4, 5, 6, 7, 8}
	f.Add(EncodeUploadDelta(&UploadDelta{
		Key: "w", DType: tensor.F32, Shape: tensor.Shape{2},
		Delta: EncodeDelta(prev, next), Hash: [HashSize]byte{9},
	}))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeUploadDelta(data)
		if err != nil {
			if !IsFrameError(err) {
				t.Fatalf("untyped decode error %T: %v", err, err)
			}
			return
		}
		back, err := DecodeUploadDelta(EncodeUploadDelta(u))
		if err != nil || back.Key != u.Key || !bytes.Equal(back.Delta, u.Delta) {
			t.Fatal("upload_delta round trip not stable")
		}
	})
}

func FuzzApplyDelta(f *testing.F) {
	prev := make([]byte, 64)
	next := make([]byte, 64)
	copy(next, prev)
	next[10], next[40] = 0xaa, 0x55
	f.Add(prev, EncodeDelta(prev, next))
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3}, []byte{0xff, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, base, delta []byte) {
		out, err := ApplyDelta(base, delta)
		if err != nil {
			if !IsFrameError(err) {
				t.Fatalf("untyped delta error %T: %v", err, err)
			}
			return
		}
		if len(out) != len(base) {
			t.Fatalf("delta output length %d != base length %d", len(out), len(base))
		}
	})
}

// FuzzDeltaRoundTrip drives the codec end-to-end: any (prev, next) pair
// of equal length must reconstruct exactly.
func FuzzDeltaRoundTrip(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0}, []byte{0, 1, 0, 2})
	f.Add(bytes.Repeat([]byte{7}, 100), bytes.Repeat([]byte{7}, 100))
	f.Fuzz(func(t *testing.T, prev, next []byte) {
		if len(prev) != len(next) {
			n := len(prev)
			if len(next) < n {
				n = len(next)
			}
			prev, next = prev[:n], next[:n]
		}
		delta := EncodeDelta(prev, next)
		got, err := ApplyDelta(prev, delta)
		if err != nil {
			t.Fatalf("self-produced delta rejected: %v", err)
		}
		if !bytes.Equal(got, next) {
			t.Fatal("delta round trip lost bytes")
		}
	})
}

// FuzzDecompressPayload hits the inflate path directly: arbitrary bytes
// must yield a FrameError, and a valid compressed payload must round
// trip.
func FuzzDecompressPayload(f *testing.F) {
	raw := bytes.Repeat([]byte("genie wire compression seed "), 64)
	if cp := compressPayload(raw); cp != nil {
		f.Add(cp)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0x80}) // truncated uvarint
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := decompressPayload(data)
		if err != nil {
			if !IsFrameError(err) {
				t.Fatalf("untyped decompress error %T: %v", err, err)
			}
			return
		}
		if cp := compressPayload(out); cp != nil {
			back, err := decompressPayload(cp)
			if err != nil || !bytes.Equal(back, out) {
				t.Fatal("compress round trip unstable")
			}
		}
	})
}

// FuzzReadFrameCompressed extends the frame fuzz surface with compFlag
// frames: valid ones inflate transparently, corrupt ones are typed
// FrameErrors that never panic the reader.
func FuzzReadFrameCompressed(f *testing.F) {
	raw := bytes.Repeat([]byte("decode step payload "), 64)
	if cp := compressPayload(raw); cp != nil {
		var buf bytes.Buffer
		_ = writeFrameCompressed(&buf, MsgExec, Envelope{}, cp)
		f.Add(buf.Bytes())
		var tb bytes.Buffer
		_ = writeFrameCompressed(&tb, MsgExec, Envelope{Trace: 3, Span: 4}, cp)
		f.Add(tb.Bytes())
		// Truncated compressed body.
		f.Add(buf.Bytes()[:buf.Len()-5])
	}
	// compFlag over garbage payload bytes.
	f.Add([]byte{4, 0, 0, 0, byte(MsgExec) | compFlag, 0xde, 0xad, 0xbe, 0xef})
	// compFlag over an invalid base type: must pass through untouched.
	f.Add([]byte{1, 0, 0, 0, 0x40 | 0x3f, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		mt, env, payload, wireLen, err := readFrameEnvFeat(bytes.NewReader(data))
		if err != nil {
			return
		}
		if wireLen < 0 || wireLen > len(data) {
			t.Fatalf("wireLen %d out of range for %d input bytes", wireLen, len(data))
		}
		// Inflated frames re-serialize through the plain writer.
		var out bytes.Buffer
		if err := WriteFrameEnv(&out, mt, env, payload); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		mt2, env2, p2, err := ReadFrameEnv(&out)
		if err != nil || mt2 != mt || env2 != env || !bytes.Equal(p2, payload) {
			t.Fatal("inflated frame round trip unstable")
		}
	})
}
