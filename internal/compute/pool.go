// Package compute provides the process-wide worker pool behind Genie's
// CPU kernels. The evaluation's device *timing* comes from the roofline
// cost model, but every mode really executes its graphs on the host CPU
// (that is what makes cross-mode bit-identity checkable), so host kernel
// wall-clock bounds everything built on top: decode steps, the serving
// engine's step loop, the parity suites.
//
// The pool's contract is determinism first: ParallelFor partitions
// [0,n) into fixed, grain-sized index ranges that depend only on n and
// grain — never on the worker count or on scheduling — and every range
// is executed by exactly one goroutine running the same code the serial
// path runs. A kernel whose chunks write disjoint output ranges is
// therefore bit-identical at any worker count, including 1 (the forced
// serial mode, GENIE_KERNEL_WORKERS=1).
package compute

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed-width band of helper goroutines that execute
// ParallelFor chunks. Width w means at most w goroutines compute
// concurrently: w-1 resident helpers plus the calling goroutine, which
// always participates (so a saturated or stopped pool degrades to the
// caller running every chunk serially, never to a deadlock — nested
// ParallelFor calls from inside a chunk are safe for the same reason).
type Pool struct {
	width   int
	tasks   chan func()
	done    chan struct{}
	wg      sync.WaitGroup
	stopped atomic.Bool
}

// NewPool creates a pool of the given width. Width < 1 defaults to
// GOMAXPROCS. Width 1 spawns no goroutines: every ParallelFor runs
// inline on the caller.
func NewPool(width int) *Pool {
	if width < 1 {
		width = runtime.GOMAXPROCS(0)
	}
	p := &Pool{width: width, done: make(chan struct{})}
	if width > 1 {
		// Rendezvous channel: a task handoff succeeds only when an idle
		// helper is already receiving, so no task is ever queued where a
		// Stop could strand it.
		p.tasks = make(chan func())
		for i := 0; i < width-1; i++ {
			p.wg.Add(1)
			go p.work()
		}
	}
	return p
}

// Width reports the pool's parallelism (helpers + caller).
func (p *Pool) Width() int {
	if p == nil {
		return 1
	}
	return p.width
}

// work is one helper's loop: execute handed-off chunk runners until the
// pool stops.
func (p *Pool) work() {
	defer p.wg.Done()
	for {
		select {
		case <-p.done:
			return
		case t := <-p.tasks:
			t()
		}
	}
}

// Stop terminates the helper goroutines and waits for them to exit.
// Idempotent. A ParallelFor in flight finishes normally (its chunks run
// on the caller); ParallelFor calls after Stop run serially.
func (p *Pool) Stop() {
	if p == nil || p.stopped.Swap(true) {
		return
	}
	close(p.done)
	p.wg.Wait()
}

// ParallelFor runs fn over [0,n) split into ⌈n/grain⌉ fixed ranges
// [start,end). Ranges never overlap, cover [0,n) exactly, and are
// independent of the pool width, so kernels whose ranges touch disjoint
// output elements produce bit-identical results at any width. The call
// returns only after every range has executed. fn must not panic;
// chunks run on helper goroutines.
func (p *Pool) ParallelFor(n, grain int, fn func(start, end int)) {
	chunks, grain := forChunks(n, grain)
	if chunks == 0 {
		return
	}
	if chunks == 1 || p == nil || p.width == 1 || p.stopped.Load() {
		// Serial path: same chunk iteration, zero allocations — decode
		// steps at width 1 call this hundreds of times per token.
		for c := 0; c < chunks; c++ {
			end := (c + 1) * grain
			if end > n {
				end = n
			}
			fn(c*grain, end)
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			end := (c + 1) * grain
			if end > n {
				end = n
			}
			fn(c*grain, end)
		}
	}
	p.fanOut(chunks, run)
}

// ParallelForCtx is ParallelFor with cooperative cancellation: chunk
// claiming stops once ctx is done and the context's error is returned.
// On a non-nil return some ranges have not executed, so the output is
// unusable — callers abandon it (the serving path's request-cancel
// propagation).
func (p *Pool) ParallelForCtx(ctx context.Context, n, grain int, fn func(start, end int)) error {
	chunks, grain := forChunks(n, grain)
	if chunks == 0 {
		return ctx.Err()
	}
	if chunks == 1 || p == nil || p.width == 1 || p.stopped.Load() {
		for c := 0; c < chunks && ctx.Err() == nil; c++ {
			end := (c + 1) * grain
			if end > n {
				end = n
			}
			fn(c*grain, end)
		}
		return ctx.Err()
	}
	var next atomic.Int64
	run := func() {
		for ctx.Err() == nil {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			end := (c + 1) * grain
			if end > n {
				end = n
			}
			fn(c*grain, end)
		}
	}
	p.fanOut(chunks, run)
	return ctx.Err()
}

// fanOut hands run to up to width-1 idle helpers, runs it on the caller
// too, and waits for every participant. Handoffs that find no idle
// helper are simply skipped — the claim counter inside run guarantees
// all chunks execute regardless of how many participants join.
func (p *Pool) fanOut(chunks int, run func()) {
	helpers := p.width - 1
	if helpers > chunks-1 {
		helpers = chunks - 1
	}
	var wg sync.WaitGroup
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		t := func() { defer wg.Done(); run() }
		select {
		case p.tasks <- t:
		default:
			wg.Done() // every helper busy: caller absorbs the work
		}
	}
	run()
	wg.Wait()
}

// forChunks normalizes grain and returns the fixed chunk count for n
// alongside the normalized grain.
func forChunks(n, grain int) (int, int) {
	if n <= 0 {
		return 0, grain
	}
	if grain < 1 {
		grain = 1
	}
	return (n + grain - 1) / grain, grain
}
