package eval

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"genie/internal/backend"
	"genie/internal/device"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/serve"
	"genie/internal/transport"
	"genie/internal/workload"
)

// OnlineServingConfig parameterizes the live-engine benchmark: unlike
// the serving *simulation* (serving.go), this drives the actual
// internal/serve engine end to end — real sessions, real continuous
// batching, real transport — under an open-loop Poisson arrival stream.
type OnlineServingConfig struct {
	// Mode is the disaggregation mode the engine serves under.
	Mode runtime.Mode
	// Backends is the accelerator pool size (each an in-process
	// genie-server over a framed pipe for remote modes).
	Backends int
	// MaxBatch is the continuous-batching bound per backend lane.
	MaxBatch int
	// Requests and Rate define the open-loop Poisson stream (req/s).
	Requests int
	Rate     float64
	// MaxTokens is the decode length per request.
	MaxTokens int
	Seed      int64
}

// DefaultOnlineServingConfig is the A10 setup: a burst of TinyGPT
// requests over two semantics-aware backends.
func DefaultOnlineServingConfig() OnlineServingConfig {
	return OnlineServingConfig{
		Mode:      runtime.ModeSemAware,
		Backends:  2,
		MaxBatch:  8,
		Requests:  24,
		Rate:      2000,
		MaxTokens: 6,
		Seed:      7,
	}
}

// OnlineServingResult reports what the live engine actually did.
type OnlineServingResult struct {
	Requests  int
	Completed int64
	Shed      int64
	// Occupancy is the engine's decode-batch merge factor; mean > 1
	// means continuous batching really shared iterations.
	MeanOccupancy float64
	MaxOccupancy  int
	P50Lat        time.Duration
	P95Lat        time.Duration
	P95TTFT       time.Duration
	TokensPerSec  float64
	Makespan      time.Duration
}

// RunOnlineServing stands up the online engine over in-process
// backends, replays a Poisson arrival schedule against it, and drains.
// It is the measured counterpart to RunServing's model: the simulation
// predicts batching gains, this observes them. Cancelling ctx aborts
// in-flight requests at their next step boundary and bounds the drain.
func RunOnlineServing(ctx context.Context, cfg OnlineServingConfig) (OnlineServingResult, error) {
	if cfg.Backends <= 0 || cfg.Requests <= 0 {
		return OnlineServingResult{}, fmt.Errorf("eval: bad online config %+v", cfg)
	}
	var pool []serve.Backend
	for i := 0; i < cfg.Backends; i++ {
		r := &runtime.LLMRunner{
			Model: models.NewGPT(rand.New(rand.NewSource(cfg.Seed)), models.TinyGPT),
		}
		if cfg.Mode != runtime.ModeLocal {
			cli, srvConn := transport.Pipe(nil, nil)
			bs := backend.NewServer(device.A100)
			go func() { _ = bs.Serve(srvConn) }()
			defer cli.Close()
			r.EP = transport.NewClient(cli)
			r.Counters = cli.Counters()
		}
		pool = append(pool, serve.Backend{Name: fmt.Sprintf("b%d", i), Runner: r})
	}
	engine, err := serve.NewEngine(serve.Config{
		Mode:     cfg.Mode,
		MaxQueue: cfg.Requests,
		MaxBatch: cfg.MaxBatch,
	}, pool)
	if err != nil {
		return OnlineServingResult{}, err
	}
	engine.Start()
	defer engine.Stop()

	arrivals := workload.PoissonArrivals(cfg.Seed, cfg.Rate, cfg.Requests)
	prompts := workload.LLMTrace{
		Requests: cfg.Requests, Vocab: int(models.TinyGPT.Vocab),
		PromptMin: 4, PromptMax: 12, DecodeMin: cfg.MaxTokens, DecodeMax: cfg.MaxTokens,
	}.Generate(cfg.Seed)

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(arrivals[i] - time.Since(start))
			_, _ = engine.Submit(ctx, serve.Request{
				Tenant:    fmt.Sprintf("t%d", i%4),
				Prompt:    prompts[i].Prompt,
				MaxTokens: cfg.MaxTokens,
			})
		}(i)
	}
	wg.Wait()
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := engine.Drain(drainCtx); err != nil {
		return OnlineServingResult{}, fmt.Errorf("eval: drain: %w", err)
	}
	makespan := time.Since(start)

	st := engine.Stats()
	return OnlineServingResult{
		Requests:      cfg.Requests,
		Completed:     st.Completed,
		Shed:          st.Shed,
		MeanOccupancy: st.MeanOccupancy,
		MaxOccupancy:  st.MaxOccupancy,
		P50Lat:        st.Latency.P50,
		P95Lat:        st.Latency.P95,
		P95TTFT:       st.TTFT.P95,
		TokensPerSec:  st.TokensPerSec,
		Makespan:      makespan,
	}, nil
}
