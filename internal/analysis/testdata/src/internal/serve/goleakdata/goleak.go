// Package goleakdata is genie-lint test fixture data for the goroutine
// cancellation analyzer. Its pretend path (genie/internal/serve/...)
// places it inside goleak's serving-layer scope.
package goleakdata

import (
	"context"
	"sync"
	"time"
)

type worker struct {
	work chan int
	stop chan struct{}
	wg   sync.WaitGroup
	n    int
}

func (w *worker) tick() { w.n++ }

// spin loops forever with nothing to stop it.
func (w *worker) spin() {
	go func() { // want "unconditional loop with no cancellation path"
		for {
			w.tick()
			time.Sleep(time.Millisecond)
		}
	}()
}

// selectLoop observes a stop channel; no finding.
func (w *worker) selectLoop() {
	go func() {
		for {
			select {
			case v := <-w.work:
				w.n += v
			case <-w.stop:
				return
			}
		}
	}()
}

// rangeLoop drains a closable work channel: closing it ends the
// goroutine, which counts as a cancellation path.
func (w *worker) rangeLoop() {
	go func() {
		for v := range w.work {
			w.n += v
		}
	}()
}

// ctxLoop polls ctx.Err at each iteration; no finding.
func (w *worker) ctxLoop(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			w.tick()
		}
	}()
}

// bounded runs to completion on its own; goroutines without an
// unconditional loop are not flagged.
func (w *worker) bounded(results chan<- int) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		results <- w.n
	}()
}

// run is the named-method form: `go w.run()` resolves to this body,
// which spins with no way out.
func (w *worker) run() {
	for {
		w.tick()
	}
}

func (w *worker) startNamed() {
	go w.run() // want "unconditional loop with no cancellation path"
}

// loop is the cancellable named-method form; no finding.
func (w *worker) loop() {
	for {
		select {
		case <-w.stop:
			return
		case v := <-w.work:
			w.n += v
		}
	}
}

func (w *worker) startLoop() {
	go w.loop()
}

// spinner loops forever with no way out; its summary says so.
func spinner(w *worker) {
	for {
		w.tick()
	}
}

// wrapper hides the spin one call down: its own body has no loop.
func wrapper(w *worker) {
	w.tick()
	spinner(w)
}

// startWrapped is the case the AST-local pass missed: the go'd body
// contains no loop, but what it calls never comes back.
func (w *worker) startWrapped() {
	go wrapper(w) // want "goroutine calls .*spinner, which loops forever"
}

// politeSpinner consults the context inside its loop; callers that
// go it are fine even through the same one-call indirection.
func politeSpinner(ctx context.Context, w *worker) {
	for {
		if ctx.Err() != nil {
			return
		}
		w.tick()
	}
}

func politeWrapper(ctx context.Context, w *worker) {
	politeSpinner(ctx, w)
}

func (w *worker) startPolite(ctx context.Context) {
	go politeWrapper(ctx, w)
}
