package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockscopeAnalyzer forbids holding a sync.Mutex/RWMutex across a
// blocking operation. The serving engine's step-boundary guarantees
// (continuous batching, drain) depend on short critical sections; a
// mutex held across a transport round trip, a channel operation, or a
// sleep turns one slow backend into a head-of-line block for every
// goroutine sharing the lock — the classic disaggregation outage mode
// where a network stall propagates into the control plane.
//
// The analysis is a conservative intra-function walk: statements are
// scanned in order; Lock/RLock adds the receiver to the held set,
// Unlock/RUnlock removes it, and a deferred Unlock keeps it held to the
// end of the body. Branch bodies are analyzed with a copy of the held
// set. While any lock is held, these count as blocking:
//
//   - channel send and receive (outside a select with a default case)
//   - select without a default case
//   - time.Sleep and (*sync.WaitGroup).Wait
//   - any call into genie/internal/transport, net, or net/http declared
//     outside the current package (the transport package's own conn
//     mutex IS the RPC serialization point and is exempt), except
//     Close, which is a non-blocking teardown
//   - any module-local call whose interprocedural summary (Pass.Prog)
//     says it may block — the helper that parks on a channel or sleeps
//     three calls down is the same head-of-line block, just hidden
//
// sync.Cond.Wait is exempt: it releases the associated lock while
// waiting. The transport self-exemption extends to the summary rule:
// transport-internal calls analyzed inside transport stay exempt.
var LockscopeAnalyzer = &Analyzer{
	Name: "lockscope",
	Doc:  "no mutex held across transport calls, channel operations, or sleeps",
	AppliesTo: func(scope string) bool {
		return hasPrefixPath(scope, "genie/internal")
	},
	Run: runLockscope,
}

// blockingPkgs are the package paths whose calls block on the network.
var blockingPkgs = map[string]bool{
	"genie/internal/transport": true,
	"net":                      true,
	"net/http":                 true,
}

func runLockscope(pass *Pass) {
	funcBodies(pass.Files, func(name string, body *ast.BlockStmt) {
		ls := &lockScanner{pass: pass}
		ls.block(body.List, map[string]ast.Expr{})
	})
}

// lockScanner walks one function body tracking held locks. The held map
// is keyed by the rendered receiver expression ("e.mu") and stores the
// expression for the report.
type lockScanner struct {
	pass *Pass
}

func (ls *lockScanner) block(stmts []ast.Stmt, held map[string]ast.Expr) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := ls.lockOp(s.X); ok {
				switch op {
				case "Lock", "RLock":
					held[types.ExprString(recv)] = recv
				case "Unlock", "RUnlock":
					delete(held, types.ExprString(recv))
				}
				continue
			}
			ls.scanExpr(s.X, held)
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held for the rest of the
			// body; any other deferred call runs after the body and is
			// not a blocking op on this path.
			continue
		case *ast.GoStmt:
			// The goroutine does not inherit the caller's locks; its
			// body is analyzed as its own root by funcBodies. Arguments
			// are evaluated here, though.
			for _, arg := range s.Call.Args {
				ls.scanExpr(arg, held)
			}
		case *ast.BlockStmt:
			ls.block(s.List, held)
		case *ast.IfStmt:
			if s.Init != nil {
				ls.scanStmt(s.Init, held)
			}
			ls.scanExpr(s.Cond, held)
			ls.block(s.Body.List, cloneHeld(held))
			if s.Else != nil {
				ls.block([]ast.Stmt{s.Else}, cloneHeld(held))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				ls.scanStmt(s.Init, held)
			}
			if s.Cond != nil {
				ls.scanExpr(s.Cond, held)
			}
			ls.block(s.Body.List, cloneHeld(held))
		case *ast.RangeStmt:
			ls.scanExpr(s.X, held)
			ls.block(s.Body.List, cloneHeld(held))
		case *ast.SelectStmt:
			ls.selectStmt(s, held)
		case *ast.SwitchStmt:
			if s.Init != nil {
				ls.scanStmt(s.Init, held)
			}
			if s.Tag != nil {
				ls.scanExpr(s.Tag, held)
			}
			for _, c := range s.Body.List {
				ls.block(c.(*ast.CaseClause).Body, cloneHeld(held))
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				ls.block(c.(*ast.CaseClause).Body, cloneHeld(held))
			}
		case *ast.LabeledStmt:
			ls.block([]ast.Stmt{s.Stmt}, held)
		default:
			ls.scanStmt(stmt, held)
		}
	}
}

// selectStmt handles select: with a default case the communication ops
// are non-blocking polls; without one the select parks the goroutine.
func (ls *lockScanner) selectStmt(s *ast.SelectStmt, held map[string]ast.Expr) {
	hasDefault := false
	for _, c := range s.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		ls.reportHeld(s.Pos(), "select without default", held)
	}
	for _, c := range s.Body.List {
		ls.block(c.(*ast.CommClause).Body, cloneHeld(held))
	}
}

// scanStmt scans a statement subtree (no lock-set mutations inside).
func (ls *lockScanner) scanStmt(stmt ast.Stmt, held map[string]ast.Expr) {
	if len(held) == 0 {
		return
	}
	walkIgnoringFuncLits(stmt, func(n ast.Node) bool {
		ls.checkNode(n, held)
		return true
	})
}

func (ls *lockScanner) scanExpr(e ast.Expr, held map[string]ast.Expr) {
	if len(held) == 0 {
		return
	}
	walkIgnoringFuncLits(e, func(n ast.Node) bool {
		ls.checkNode(n, held)
		return true
	})
}

// checkNode reports n if it is a blocking operation.
func (ls *lockScanner) checkNode(n ast.Node, held map[string]ast.Expr) {
	switch n := n.(type) {
	case *ast.SendStmt:
		ls.reportHeld(n.Pos(), "channel send", held)
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			ls.reportHeld(n.Pos(), "channel receive", held)
		}
	case *ast.SelectStmt:
		// Reached only via scanStmt on a statement kind the structured
		// walk does not special-case; treat like the structured path.
		ls.selectStmt(n, held)
	case *ast.CallExpr:
		if name, ok := ls.blockingCall(n); ok {
			ls.reportHeld(n.Pos(), "call to "+name, held)
		}
	}
}

// blockingCall classifies a call as blocking and names it.
func (ls *lockScanner) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(ls.pass.Info, call)
	if fn == nil {
		return "", false
	}
	pkg := funcPkgPath(fn)
	switch {
	case pkg == "time" && fn.Name() == "Sleep":
		return "time.Sleep", true
	case pkg == "sync" && fn.Name() == "Wait" && recvTypeString(fn) == "*sync.WaitGroup":
		return "WaitGroup.Wait", true
	case blockingPkgs[pkg] && pkg != ls.pass.Pkg.Path() && fn.Name() != "Close":
		return fn.FullName(), true
	}
	// Interprocedural: a module-local callee that may block transitively
	// is the same hazard as a direct blocking op.
	if ls.pass.Prog != nil && fn.Name() != "Close" &&
		!(blockingPkgs[pkg] && pkg == ls.pass.Pkg.Path()) {
		if sum, ok := ls.pass.Prog.Summary(fn); ok && sum.Blocks {
			return fn.Name() + " (blocks transitively: " + sum.BlockReason + ")", true
		}
	}
	return "", false
}

// lockOp matches a call to a sync mutex method and returns its receiver
// expression and method name.
func (ls *lockScanner) lockOp(e ast.Expr) (ast.Expr, string, bool) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", false
	}
	fn := calleeFunc(ls.pass.Info, call)
	if fn == nil || funcPkgPath(fn) != "sync" {
		return nil, "", false
	}
	return sel.X, name, true
}

// reportHeld emits one diagnostic naming the blocking op and every lock
// held at that point.
func (ls *lockScanner) reportHeld(pos token.Pos, what string, held map[string]ast.Expr) {
	if len(held) == 0 {
		return
	}
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	ls.pass.Reportf(pos, "%s while holding %s: release the lock before blocking", what, strings.Join(names, ", "))
}

func cloneHeld(held map[string]ast.Expr) map[string]ast.Expr {
	out := make(map[string]ast.Expr, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
