package kvcache

import (
	"context"
	"fmt"

	"genie/internal/lazy"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/obs"
	"genie/internal/runtime"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// SplitConfig wires a prefill/decode disaggregated runner: prefill is
// compute-bound (quadratic attention over the prompt), decode is
// bandwidth-bound (weights + KV per token), so the two phases want
// different backends. Only the semantics-aware ΔKV delta — the fresh
// suffix rows — crosses the boundary; a cache-hit prefix is re-sent as a
// dedup-hinted bind that collapses to a 32-byte hash once the decode
// connection has seen it.
type SplitConfig struct {
	Model *models.GPT
	// Prefill executes prompt passes; its KV state is throwaway (nothing
	// is kept resident there).
	Prefill runtime.Endpoint
	// Decode executes decode steps; handed-off KV lives here under the
	// session's scoped keys.
	Decode runtime.Endpoint
	// DecodeCounters, when set, feeds the runner's traffic metrics (point
	// it at the decode connection).
	DecodeCounters *transport.Counters
	// Cache, when set, is the shared prefix cache consulted before
	// prefill. Nil disaggregates without prefix reuse.
	Cache *Manager
	// OnPrefillFailure, when set, is invoked when a prefill execution
	// fails; returning nil retries the prefill exactly once (the chaos
	// recovery hook — lineage failover onto a spare backend slots in
	// here). Nil or a non-nil return surfaces the original error.
	OnPrefillFailure func(error) error
	// Metrics receives the ΔKV handoff series; nil keeps a private
	// registry.
	Metrics *obs.Registry
}

// Split runs prefill and decode on different backends, shipping the ΔKV
// suffix between them.
type Split struct {
	cfg         SplitConfig
	deltaBytes  *obs.Counter
	deltaTokens *obs.Counter
}

// NewSplit validates the wiring.
func NewSplit(cfg SplitConfig) (*Split, error) {
	if cfg.Model == nil || cfg.Prefill == nil || cfg.Decode == nil {
		return nil, fmt.Errorf("kvcache: split needs a model and both endpoints")
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Split{
		cfg:         cfg,
		deltaBytes:  reg.Counter("genie_kvcache_split_delta_bytes_total", "KV suffix bytes handed prefill->decode"),
		deltaTokens: reg.Counter("genie_kvcache_split_delta_tokens_total", "KV suffix tokens handed prefill->decode"),
	}, nil
}

// InstallWeights provisions both endpoints with the model weights.
// Callers routing the prefill endpoint through a lineage.TrackedEndpoint
// get replayable provenance for free.
func (sp *Split) InstallWeights() error {
	for _, ep := range []runtime.Endpoint{sp.cfg.Prefill, sp.cfg.Decode} {
		r := &runtime.LLMRunner{Model: sp.cfg.Model, EP: ep}
		if _, err := r.InstallModelWeights(); err != nil {
			return err
		}
	}
	return nil
}

// DeltaBytes reports total KV bytes shipped across the phase boundary —
// by construction exactly suffixTokens × Model.Cfg.KVBytesPerToken().
func (sp *Split) DeltaBytes() int64 { return sp.deltaBytes.Value() }

// DeltaTokens reports total suffix tokens handed off.
func (sp *Split) DeltaTokens() int64 { return sp.deltaTokens.Value() }

// Runner returns the disaggregated LLMRunner. The runner's EP and
// counters point at the decode side (where sessions live); weights must
// already be installed on both endpoints (InstallWeights).
func (sp *Split) Runner() *runtime.LLMRunner {
	return &runtime.LLMRunner{
		Model:           sp.cfg.Model,
		EP:              sp.cfg.Decode,
		Counters:        sp.cfg.DecodeCounters,
		WeightsResident: true,
		NewStrategy: func(_ context.Context, mode runtime.Mode, scope string) (runtime.Strategy, error) {
			if mode != runtime.ModeSemAware {
				return nil, fmt.Errorf("kvcache: split runner supports mode semantics_aware, not %s", mode)
			}
			return &splitSession{sp: sp, scope: scope, nilCaches: nilCaches(sp.cfg.Model)}, nil
		},
	}
}

type splitSession struct {
	sp        *Split
	scope     string
	pin       *Pin
	epoch     uint32
	hist      int
	nilCaches []*nn.KVCache
}

func (s *splitSession) Prefill(ctx context.Context, prompt []int64) (int64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	sp := s.sp
	cfg := sp.cfg.Model.Cfg

	var (
		pin     *Pin
		prefix  []*nn.KVCache
		release = func() {}
		matched int
		err     error
	)
	if sp.cfg.Cache != nil {
		pin, prefix, release, matched, err = sp.cfg.Cache.Lookup(prompt)
		if err != nil {
			return 0, err
		}
	}
	defer release()

	// Phase 1: prefill on the prefill backend. Nothing is kept resident
	// there — its copy of the KV state is throwaway; we only want the
	// next token and the fresh suffix rows.
	b, plan := buildPrefill(sp.cfg.Model, prompt, matched, prefix)
	ex := &transport.Exec{Graph: b.Graph()}
	for _, n := range b.Graph().Nodes() {
		if n.Op != "input" {
			continue
		}
		data, _ := b.InputData(n.Ref)
		cache := n.Residency == srg.ResidencyStatefulKVCache
		ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data, Cache: cache})
	}
	ex.Want = append(ex.Want, plan.next)
	for i := range plan.newK {
		ex.Want = append(ex.Want, plan.newK[i], plan.newV[i])
	}
	ok, err := sp.cfg.Prefill.Exec(ex)
	if err != nil && sp.cfg.OnPrefillFailure != nil {
		if herr := sp.cfg.OnPrefillFailure(err); herr == nil {
			ok, err = sp.cfg.Prefill.Exec(ex)
		}
	}
	if err != nil {
		pin.Unpin()
		return 0, err
	}
	suffixK := make([]*tensor.Tensor, cfg.Layers)
	suffixV := make([]*tensor.Tensor, cfg.Layers)
	for i := 0; i < cfg.Layers; i++ {
		suffixK[i], suffixV[i] = ok.Results[plan.newK[i]], ok.Results[plan.newV[i]]
	}

	if sp.cfg.Cache != nil {
		insertPin, ierr := sp.cfg.Cache.Insert(prompt, matched, suffixK, suffixV)
		pin.Unpin()
		if ierr != nil {
			return 0, ierr
		}
		s.pin = insertPin
	}

	// Phase 2: ΔKV handoff. One exec on the decode backend assembles
	// prefix ++ suffix into the session's scoped resident keys. The
	// suffix rows are the only novel content — the analytic per-token KV
	// delta; the prefix bind is dedup-hinted, so once this decode
	// connection has seen a shared prefix it re-transfers as a 32-byte
	// hash.
	hb := lazy.NewBuilder("kvcache.handoff")
	hb.SetModality(srg.ModalityText)
	hx := &transport.Exec{Keep: map[srg.NodeID]string{}}
	var delta int64
	for i := 0; i < cfg.Layers; i++ {
		for _, half := range []struct {
			name   string
			prefix *tensor.Tensor
			suffix *tensor.Tensor
		}{
			{"k", prefixHalf(prefix, i, "k"), suffixK[i]},
			{"v", prefixHalf(prefix, i, "v"), suffixV[i]},
		} {
			parts := make([]lazy.Value, 0, 2)
			if half.prefix != nil {
				pv := hb.Input(fmt.Sprintf("prefix.%d.%s", i, half.name), half.prefix)
				hx.Binds = append(hx.Binds, transport.Binding{
					Ref: fmt.Sprintf("prefix.%d.%s", i, half.name), Inline: half.prefix, Cache: true})
				parts = append(parts, pv)
			}
			sv := hb.Input(fmt.Sprintf("suffix.%d.%s", i, half.name), half.suffix)
			hx.Binds = append(hx.Binds, transport.Binding{
				Ref: fmt.Sprintf("suffix.%d.%s", i, half.name), Inline: half.suffix})
			parts = append(parts, sv)
			full := hb.Concat(0, parts...)
			hb.MarkOutput(full)
			hx.Keep[full.ID()] = s.scope + models.CacheRef(i, half.name)
			delta += int64(half.suffix.NumBytes())
		}
	}
	hx.Graph = hb.Graph()
	hok, err := sp.cfg.Decode.Exec(hx)
	if err != nil {
		return 0, err
	}
	sp.deltaBytes.Add(delta)
	sp.deltaTokens.Add(int64(len(prompt) - matched))
	s.epoch = hok.Epoch
	s.hist = len(prompt)
	return ok.Results[plan.next].I64()[0], nil
}

// prefixHalf extracts one layer-half tensor from the gathered prefix
// (nil on a cache miss or when no cache is configured).
func prefixHalf(prefix []*nn.KVCache, layer int, half string) *tensor.Tensor {
	if prefix == nil {
		return nil
	}
	if half == "k" {
		return prefix[layer].K
	}
	return prefix[layer].V
}

func (s *splitSession) Step(ctx context.Context, tok int64) (int64, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
	}
	b, out := s.sp.cfg.Model.BuildDecodeStep(tok, s.hist, s.hist, s.nilCaches)
	ex := &transport.Exec{Graph: b.Graph()}
	for _, n := range b.Graph().Nodes() {
		if n.Op != "input" {
			continue
		}
		if n.Residency == srg.ResidencyStatefulKVCache {
			ex.Binds = append(ex.Binds, transport.Binding{
				Ref: n.Ref, Key: s.scope + n.Ref, Epoch: s.epoch})
			continue
		}
		data, _ := b.InputData(n.Ref)
		ex.Binds = append(ex.Binds, transport.Binding{Ref: n.Ref, Inline: data})
	}
	ex.Keep = map[srg.NodeID]string{}
	for i := range out.CacheK {
		ex.Keep[out.CacheK[i]] = s.scope + models.CacheRef(i, "k")
		ex.Keep[out.CacheV[i]] = s.scope + models.CacheRef(i, "v")
	}
	ex.Want = append(ex.Want, out.LastLogits, out.NextToken)
	ok, err := s.sp.cfg.Decode.Exec(ex)
	if err != nil {
		return 0, err
	}
	s.epoch = ok.Epoch
	s.hist++
	return ok.Results[out.NextToken].I64()[0], nil
}

func (s *splitSession) Close() error {
	s.pin.Unpin()
	var first error
	for _, k := range s.ResidentKeys() {
		if err := s.sp.cfg.Decode.Free(k); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ResidentKeys reports the session's decode-side resident cache keys.
func (s *splitSession) ResidentKeys() []string {
	return scopedKeys(s.scope, s.sp.cfg.Model)
}
