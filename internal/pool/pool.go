package pool

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/health"
	"genie/internal/lineage"
	"genie/internal/models"
	"genie/internal/obs"
	"genie/internal/runtime"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// Config parameterizes a pool manager.
type Config struct {
	// Model is the one model the pool serves; its weights are sharded
	// across members per the active ShardPlan.
	Model *models.GPT
	// Strategy selects the placement policy (default StrategyAuto).
	Strategy Strategy
	// Metrics is the registry pool telemetry registers into; nil gets a
	// private registry.
	Metrics *obs.Registry
	// Health is the fail-slow scorer shared with the serving layer (nil
	// disables health-aware placement). The pool both consumes it —
	// candidate scores fold into the plan cost model, so rebuilds route
	// layers away from browned-out members — and feeds it: every segment
	// exec's latency and outcome is observed against the member.
	Health *health.Set
	// RebalanceOnJoin re-places shards when a member joins, instead of
	// keeping the newcomer as a hot spare. Re-placement only happens
	// while no session KV state is tracked (weight moves are provenance
	// re-uploads and always safe; splitting a live session's fused exec
	// records across members is not).
	RebalanceOnJoin bool
	// SegmentRetries bounds per-forward-pass shard repairs before the
	// error surfaces to the session's caller (default 2).
	SegmentRetries int
}

// member is one live backend in the pool.
type member struct {
	name string
	gate *gateEndpoint
	te   *lineage.TrackedEndpoint
	spec device.Spec
	link cluster.Link
}

// gateEndpoint fronts a member's raw endpoint with a departure gate:
// once closed, every call fails fast, so lineage's DetectLost sees a
// departed member — voluntary or crashed — identically (everything it
// held is lost and must be replayed from provenance, never read back).
type gateEndpoint struct {
	ep     runtime.Endpoint
	closed atomic.Bool
}

func (g *gateEndpoint) err() error { return fmt.Errorf("pool: member departed") }

func (g *gateEndpoint) Upload(key string, data *tensor.Tensor) (*transport.UploadOK, error) {
	if g.closed.Load() {
		return nil, g.err()
	}
	return g.ep.Upload(key, data)
}

func (g *gateEndpoint) Exec(x *transport.Exec) (*transport.ExecOK, error) {
	if g.closed.Load() {
		return nil, g.err()
	}
	return g.ep.Exec(x)
}

func (g *gateEndpoint) Fetch(key string, epoch uint32) (*tensor.Tensor, error) {
	if g.closed.Load() {
		return nil, g.err()
	}
	return g.ep.Fetch(key, epoch)
}

func (g *gateEndpoint) Free(key string) error {
	if g.closed.Load() {
		return g.err()
	}
	return g.ep.Free(key)
}

func (g *gateEndpoint) Stats() (*transport.Stats, error) {
	if g.closed.Load() {
		return nil, g.err()
	}
	return g.ep.Stats()
}

// paramEntry is one model weight with its placement unit.
type paramEntry struct {
	ref  string
	data *tensor.Tensor
	unit int
}

// Manager owns the pool: membership, the active shard plan, weight
// placement, and state migration on departure. It is safe for
// concurrent use by many sessions.
type Manager struct {
	cfg     Config
	lin     *lineage.Manager
	cs      *cluster.State
	weights []paramEntry

	// sem serializes membership changes and plan rebuilds. It is a
	// channel, not a mutex, because the critical section spans RPCs
	// (weight installs, lineage replays) — exactly what short-lock
	// discipline forbids under a mutex.
	sem chan struct{}

	// mu guards the maps and plan pointer only; never held across RPC.
	mu      sync.Mutex
	members map[string]*member
	order   []string
	plan    *ShardPlan
	planErr error
	version int64

	membersG   *obs.Gauge
	shardsG    *obs.Gauge
	rebuilds   *obs.Counter
	migrated   *obs.Counter
	crossBytes *obs.Counter
	segExecs   *obs.Counter
	failures   *obs.Counter
}

// NewManager creates an empty pool for one model.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("pool: config needs a model")
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.SegmentRetries <= 0 {
		cfg.SegmentRetries = 2
	}
	m := &Manager{
		cfg:     cfg,
		lin:     lineage.NewManager(),
		cs:      cluster.NewState(),
		sem:     make(chan struct{}, 1),
		members: make(map[string]*member),
		planErr: fmt.Errorf("pool: no members"),
		membersG: cfg.Metrics.Gauge("genie_pool_members",
			"live pool members"),
		shardsG: cfg.Metrics.Gauge("genie_pool_shards",
			"shards in the active plan"),
		rebuilds: cfg.Metrics.Counter("genie_pool_rebuilds_total",
			"shard plan rebuilds (join, leave, repair)"),
		migrated: cfg.Metrics.Counter("genie_pool_migrated_keys_total",
			"resident keys re-homed by lineage replay"),
		crossBytes: cfg.Metrics.Counter("genie_pool_cross_shard_bytes_total",
			"activation bytes moved across shard boundaries"),
		segExecs: cfg.Metrics.Counter("genie_pool_segment_execs_total",
			"fused segment executions dispatched to members"),
		failures: cfg.Metrics.Counter("genie_pool_member_failures_total",
			"member losses observed by sessions"),
	}
	// Enumerate the model's weights once: every param ref, its tensor,
	// and the placement unit (layer) it rides with.
	b, _ := cfg.Model.BuildPrefill([]int64{0})
	last := cfg.Model.Cfg.Layers - 1
	for _, n := range b.Graph().Nodes() {
		if n.Op != "param" {
			continue
		}
		data, ok := b.ParamData(n.Ref)
		if !ok {
			return nil, fmt.Errorf("pool: param %q has no data", n.Ref)
		}
		m.weights = append(m.weights, paramEntry{ref: n.Ref, data: data, unit: unitOfRef(n.Ref, last)})
	}
	sort.Slice(m.weights, func(i, j int) bool { return m.weights[i].ref < m.weights[j].ref })
	return m, nil
}

// unitOfRef maps a weight ref to the layer it is placed with: block
// params to their layer, embeddings to the first, head/final-norm to
// the last.
func unitOfRef(ref string, lastLayer int) int {
	if i := layerOfUnit(ref); i >= 0 {
		return i
	}
	if strings.Contains(ref, ".ln_f.") || strings.Contains(ref, ".lm_head.") {
		return lastLayer
	}
	return 0
}

// layerOfKey extracts the layer from a (possibly scope-prefixed) KV
// cache key ("req3/gpt.kv.1.k" → 1), or -1 for non-cache keys.
func layerOfKey(key string) int {
	i := strings.Index(key, ".kv.")
	if i < 0 {
		return -1
	}
	rest := key[i+4:]
	if j := strings.IndexByte(rest, '.'); j >= 0 {
		rest = rest[:j]
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return -1
	}
	return n
}

func (m *Manager) lockRebuild()   { m.sem <- struct{}{} }
func (m *Manager) unlockRebuild() { <-m.sem }

// Join adds a backend to the pool and installs (or, with
// RebalanceOnJoin, re-places) shard weights. The endpoint must be
// exclusive to the pool. Joining never fails because the model still
// does not fit — that state is visible via Status/PlanError and session
// errors until enough members join.
func (m *Manager) Join(name string, ep runtime.Endpoint, spec device.Spec, link cluster.Link) error {
	if ep == nil {
		return fmt.Errorf("pool: member %q has no endpoint", name)
	}
	m.lockRebuild()
	defer m.unlockRebuild()
	m.mu.Lock()
	if _, dup := m.members[name]; dup {
		m.mu.Unlock()
		return fmt.Errorf("pool: duplicate member %q", name)
	}
	havePlan := m.plan != nil
	m.mu.Unlock()

	gate := &gateEndpoint{ep: ep}
	m.lin.RegisterEndpoint(name, gate)
	te, err := m.lin.TrackedEndpoint(name)
	if err != nil {
		return err
	}
	// A prior incarnation of the same name may have left residue in the
	// cluster view; membership-aware removal clears it so re-join works.
	m.cs.Remove(cluster.AcceleratorID(name))
	if err := m.cs.AddAccelerator(&cluster.Accelerator{
		ID: cluster.AcceleratorID(name), Spec: spec, Link: link,
	}); err != nil {
		return err
	}
	m.mu.Lock()
	m.members[name] = &member{name: name, gate: gate, te: te, spec: spec, link: link}
	m.order = append(m.order, name)
	m.mu.Unlock()

	if havePlan && (!m.cfg.RebalanceOnJoin || m.hasTrackedKV()) {
		// The current plan stands; the newcomer is a hot spare (and a
		// failover target). With RebalanceOnJoin, re-placement happens
		// only while no session state is in flight.
		m.refreshGauges()
		return nil
	}
	return m.rebuild()
}

// Leave removes a member voluntarily: its shards re-place onto
// survivors and its state migrates by lineage replay — the departing
// backend is never read, so Leave and a crash share one code path.
func (m *Manager) Leave(name string) error {
	m.lockRebuild()
	defer m.unlockRebuild()
	m.mu.Lock()
	_, present := m.members[name]
	m.mu.Unlock()
	if !present {
		return fmt.Errorf("pool: unknown member %q", name)
	}
	return m.evict(name)
}

// reportExecFailure is the session-side loss path: a segment exec on
// name failed at plan version seen. It returns true when the session
// may retry (the pool repaired, or someone else already had).
func (m *Manager) reportExecFailure(name string, seen int64) bool {
	m.failures.Inc()
	m.lockRebuild()
	defer m.unlockRebuild()
	m.mu.Lock()
	cur := m.version
	_, present := m.members[name]
	m.mu.Unlock()
	if cur > seen || !present {
		return true // a concurrent repair already handled it
	}
	return m.evict(name) == nil
}

// hasTrackedKV reports whether any session KV state is tracked.
func (m *Manager) hasTrackedKV() bool {
	for _, key := range m.lin.Tracked() {
		if layerOfKey(key) >= 0 {
			return true
		}
	}
	return false
}

// candidates snapshots the live members as planner input, excluding
// names in skip.
func (m *Manager) candidates(skip string) []Candidate {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Candidate, 0, len(m.order))
	for _, name := range m.order {
		if name == skip {
			continue
		}
		mem := m.members[name]
		c := Candidate{Name: mem.name, Spec: mem.spec, Link: mem.link}
		if m.cfg.Health != nil {
			tr := m.cfg.Health.Endpoint(name)
			c.HealthScore = tr.Score()
			c.Quarantined = tr.State() == health.Quarantined
		}
		out = append(out, c)
	}
	return out
}

// rebuild computes a fresh plan over current members and reconciles
// weight placement. Caller holds the rebuild lock. An infeasible pool
// records planErr (sessions fail until membership changes) and returns
// nil; reconcile failures return the error.
func (m *Manager) rebuild() error {
	m.mu.Lock()
	ver := m.version + 1
	m.mu.Unlock()
	plan, err := BuildPlan(m.cfg.Model, m.candidates(""), m.cfg.Strategy, ver)
	if err != nil {
		m.swapPlan(nil, err, ver)
		return nil
	}
	moved, err := m.reconcile(plan)
	if err != nil {
		m.swapPlan(nil, fmt.Errorf("pool: reconcile: %w", err), ver)
		return err
	}
	m.migrated.Add(moved)
	m.swapPlan(plan, nil, ver)
	m.rebuilds.Inc()
	return nil
}

func (m *Manager) swapPlan(p *ShardPlan, err error, ver int64) {
	m.mu.Lock()
	m.plan, m.planErr, m.version = p, err, ver
	m.mu.Unlock()
	m.refreshGauges()
}

// reconcile drives resident state to the plan: weights upload to their
// owners (first install) or re-home by lineage replay (placement
// changed), as do any tracked session KV keys. Returns keys moved.
func (m *Manager) reconcile(plan *ShardPlan) (int64, error) {
	uploads := map[string][]paramEntry{}
	moves := map[string][]string{}
	prevHome := map[string]string{}
	for _, pe := range m.weights {
		owner := plan.Owners[pe.unit]
		home, tracked := m.lin.HomeOf(pe.ref)
		switch {
		case !tracked:
			uploads[owner] = append(uploads[owner], pe)
		case home != owner:
			moves[owner] = append(moves[owner], pe.ref)
			prevHome[pe.ref] = home
		}
	}
	for _, key := range m.lin.Tracked() {
		l := layerOfKey(key)
		if l < 0 {
			continue
		}
		owner := plan.Owners[l]
		if home, ok := m.lin.HomeOf(key); ok && home != owner {
			moves[owner] = append(moves[owner], key)
		}
	}
	for _, owner := range sortedKeys(uploads) {
		for _, pe := range uploads[owner] {
			if err := m.lin.UploadTracked(owner, pe.ref, pe.data); err != nil {
				return 0, fmt.Errorf("install %q on %q: %w", pe.ref, owner, err)
			}
			m.cs.SetResident(pe.ref, cluster.AcceleratorID(owner), int64(pe.data.NumBytes()))
		}
	}
	var moved int64
	for _, owner := range sortedKeys(moves) {
		if err := m.lin.Recover(moves[owner], owner); err != nil {
			return moved, fmt.Errorf("migrate to %q: %w", owner, err)
		}
		moved += int64(len(moves[owner]))
		for _, key := range moves[owner] {
			if prev, ok := prevHome[key]; ok {
				m.freeStale(prev, key, cluster.AcceleratorID(owner))
			}
		}
	}
	return moved, nil
}

// freeStale best-effort releases a re-homed weight's old copy and
// updates the cluster residency view.
func (m *Manager) freeStale(prev, key string, owner cluster.AcceleratorID) {
	var bytes int64
	for _, pe := range m.weights {
		if pe.ref == key {
			bytes = int64(pe.data.NumBytes())
			break
		}
	}
	m.cs.EvictResident(key, bytes)
	m.cs.SetResident(key, owner, bytes)
	if ep, ok := m.lin.Endpoint(prev); ok {
		_ = ep.Free(key) // departed members error here; that's fine
	}
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// evict removes a member (voluntary Leave or session-reported crash):
// its gate closes so lineage sees everything it held as lost, its
// shards re-place onto survivors — wholesale onto one successor when
// one fits (TrackedEndpoint.Failover migrates the provenance), else
// run-by-run — and the plan swaps. Caller holds the rebuild lock.
func (m *Manager) evict(name string) error {
	m.mu.Lock()
	mem := m.members[name]
	old := m.plan
	ver := m.version + 1
	m.mu.Unlock()
	if mem == nil {
		return nil
	}
	mem.gate.closed.Store(true)
	m.cs.MarkFailed(cluster.AcceleratorID(name))

	// drop removes the member from membership and the cluster view. The
	// lineage registration stays (there is no unregister): DetectLost
	// still probes the closed gate, which reports everything lost.
	dropped := false
	drop := func() {
		if dropped {
			return
		}
		dropped = true
		m.mu.Lock()
		delete(m.members, name)
		for i, n := range m.order {
			if n == name {
				m.order = append(m.order[:i], m.order[i+1:]...)
				break
			}
		}
		m.mu.Unlock()
		m.cs.Remove(cluster.AcceleratorID(name))
		m.refreshGauges()
	}
	defer drop()

	if old == nil || !ownerIn(old.Owners, name) {
		// The departed member held no shard (spare); the plan stands.
		if old == nil {
			drop() // before rebuild, so it is not offered as a candidate
			return m.rebuild()
		}
		return nil
	}

	survivors := m.candidates(name)
	if len(survivors) == 0 {
		m.swapPlan(nil, fmt.Errorf("pool: last member %q departed", name), ver)
		m.rebuilds.Inc()
		return nil
	}

	// Re-place the departed member's contiguous runs; survivors keep
	// their shards untouched, so every fused exec record (whose kept
	// keys span one run) stays intact and migrates as a unit.
	owners := append([]string(nil), old.Owners...)
	free := map[string]int64{}
	for _, c := range survivors {
		free[c.Name] = c.Spec.MemBytes - old.Weights[c.Name]
	}
	var runs []Shard
	for _, sh := range old.Shards() {
		if sh.Member == name {
			sh.WeightBytes = m.runWeight(sh)
			runs = append(runs, sh)
		}
	}

	// Wholesale first: one successor with room for everything lets the
	// departed member's TrackedEndpoint fail over in a single replay.
	if succ := pickFit(survivors, free, old.Weights[name]); succ != "" {
		for _, r := range runs {
			for i := r.Lo; i < r.Hi; i++ {
				owners[i] = succ
			}
		}
		n, err := mem.te.Failover(succ)
		if err != nil {
			m.swapPlan(nil, fmt.Errorf("pool: failover of %q onto %q: %w", name, succ, err), ver)
			return err
		}
		m.migrated.Add(int64(n))
		for _, r := range runs {
			m.rehomeWeights(r, succ)
		}
	} else {
		// Per-run: each run goes to the survivor with the most room that
		// fits it; its keys (weights + session KV, per lineage's loss
		// view) replay there together.
		lost, err := m.lin.DetectLost(name)
		if err != nil {
			m.swapPlan(nil, fmt.Errorf("pool: detect loss on %q: %w", name, err), ver)
			return err
		}
		for _, r := range runs {
			succ := pickFit(survivors, free, r.WeightBytes)
			if succ == "" {
				m.swapPlan(nil, fmt.Errorf(
					"pool: no survivor fits layers [%d,%d) of departed %q (%d B)",
					r.Lo, r.Hi, name, r.WeightBytes), ver)
				m.rebuilds.Inc()
				return nil
			}
			free[succ] -= r.WeightBytes
			for i := r.Lo; i < r.Hi; i++ {
				owners[i] = succ
			}
			keys := keysInRun(lost, r, len(owners))
			if len(keys) > 0 {
				if err := m.lin.Recover(keys, succ); err != nil {
					m.swapPlan(nil, fmt.Errorf("pool: recover layers [%d,%d) onto %q: %w",
						r.Lo, r.Hi, succ, err), ver)
					return err
				}
				m.migrated.Add(int64(len(keys)))
			}
			m.rehomeWeights(r, succ)
		}
	}

	pl := &planner{model: m.cfg.Model, members: survivors}
	pl.embed, pl.head, pl.layers = modelUnits(m.cfg.Model)
	m.swapPlan(pl.finish(old.Strategy, owners, ver), nil, ver)
	m.rebuilds.Inc()
	return nil
}

// rehomeWeights points the cluster residency view at a run's new owner.
// The departed member's byte accounting is discarded wholesale by
// cs.Remove in drop; SetResident both re-points the key and charges the
// successor.
func (m *Manager) rehomeWeights(r Shard, succ string) {
	for _, pe := range m.weights {
		if pe.unit >= r.Lo && pe.unit < r.Hi {
			m.cs.SetResident(pe.ref, cluster.AcceleratorID(succ), int64(pe.data.NumBytes()))
		}
	}
}

// runWeight sums the weight bytes placed with a run (embed and head
// ride with the boundary layers via each entry's unit).
func (m *Manager) runWeight(r Shard) int64 {
	var w int64
	for _, pe := range m.weights {
		if pe.unit >= r.Lo && pe.unit < r.Hi {
			w += int64(pe.data.NumBytes())
		}
	}
	return w
}

// pickFit returns the survivor with the most free memory that still
// fits need, or "".
func pickFit(survivors []Candidate, free map[string]int64, need int64) string {
	best := ""
	var bestFree int64
	for _, c := range survivors {
		if f := free[c.Name]; f >= need && (best == "" || f > bestFree) {
			best, bestFree = c.Name, f
		}
	}
	return best
}

// keysInRun filters lost keys to those placed with layers [Lo,Hi):
// block weights and KV caches by layer, embeddings with layer 0, head
// weights with the last layer.
func keysInRun(lost []string, r Shard, layers int) []string {
	var out []string
	for _, key := range lost {
		u := layerOfKey(key)
		if u < 0 {
			u = unitOfRef(key, layers-1)
		}
		if u >= r.Lo && u < r.Hi {
			out = append(out, key)
		}
	}
	return out
}

func ownerIn(owners []string, name string) bool {
	for _, o := range owners {
		if o == name {
			return true
		}
	}
	return false
}

func (m *Manager) refreshGauges() {
	m.mu.Lock()
	nm := len(m.members)
	ns := 0
	if m.plan != nil {
		ns = len(m.plan.Shards())
	}
	m.mu.Unlock()
	m.membersG.Set(int64(nm))
	m.shardsG.Set(int64(ns))
}

// planSnapshot returns the active plan or why there is none.
func (m *Manager) planSnapshot() (*ShardPlan, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.plan == nil {
		if m.planErr != nil {
			return nil, m.planErr
		}
		return nil, fmt.Errorf("pool: no feasible shard plan")
	}
	return m.plan, nil
}

// Plan returns the active shard plan (nil when infeasible).
func (m *Manager) Plan() *ShardPlan {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.plan
}

// execOn dispatches one segment exec to a member through its tracked
// endpoint, so binding epochs are corrected and provenance recorded.
func (m *Manager) execOn(name string, x *transport.Exec) (*transport.ExecOK, error) {
	m.mu.Lock()
	mem := m.members[name]
	m.mu.Unlock()
	if mem == nil {
		return nil, fmt.Errorf("pool: member %q departed", name)
	}
	t0 := time.Now()
	ok, err := mem.te.Exec(x)
	if m.cfg.Health != nil {
		m.cfg.Health.Endpoint(name).Observe(time.Since(t0), err != nil)
	}
	if err == nil {
		m.segExecs.Inc()
	}
	return ok, err
}

// noteCrossShard counts activation bytes moved across a shard boundary.
func (m *Manager) noteCrossShard(n int64) { m.crossBytes.Add(n) }

// freeScoped releases one session's scoped KV keys on whichever members
// hold them and drops their lineage, so departures never resurrect
// state the session already released.
func (m *Manager) freeScoped(scope string) error {
	var first error
	for i := 0; i < m.cfg.Model.Cfg.Layers; i++ {
		for _, half := range []string{"k", "v"} {
			key := scope + models.CacheRef(i, half)
			home, ok := m.lin.HomeOf(key)
			if !ok {
				continue
			}
			if ep, live := m.lin.Endpoint(home); live {
				if err := ep.Free(key); err != nil && first == nil {
					first = err
				}
			}
			m.lin.Forget(key)
		}
	}
	return first
}

// Runner returns an LLMRunner whose sessions execute the sharded plan —
// the drop-in the serving engine batches over unchanged. Weights are
// managed by the pool (the engine must not install them), and the
// runner needs no endpoint of its own.
func (m *Manager) Runner() *runtime.LLMRunner {
	return &runtime.LLMRunner{
		Model:           m.cfg.Model,
		WeightsResident: true,
		NewStrategy:     m.newStrategy,
	}
}
