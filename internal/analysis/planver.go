package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// PlanverAnalyzer enforces ShardPlan immutability and plan-snapshot
// freshness. A ShardPlan is a versioned snapshot of pool membership:
// its Version is the epoch the KV-ownership argument hangs off
// (DESIGN.md §10), so every mutation must go through the constructors
// in internal/pool/plan.go, which bump the version as part of building
// a new plan. Two rules:
//
//  1. ShardPlan fields may be assigned only inside internal/pool's
//     plan.go — everywhere else a plan is read-only
//  2. a *ShardPlan local captured before a rebuild section runs
//     (any call that — per the interprocedural summaries — replaces a
//     plan field: swapPlan, rebuild, evict, Join, Leave, and anything
//     that calls them) is stale afterwards; reading it is reading a
//     membership epoch that may no longer exist
//
// Rule 2 needs the call graph: reportExecFailure looks nothing like a
// rebuild at the call site — it becomes one three calls down.
var PlanverAnalyzer = &Analyzer{
	Name: "planver",
	Doc:  "ShardPlan mutated only by version-bumping constructors; no stale plan reads after rebuilds",
	AppliesTo: func(scope string) bool {
		return hasPrefixPath(scope, "genie/internal")
	},
	Run: runPlanver,
}

func runPlanver(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					pass.checkPlanMutation(lhs)
				}
			case *ast.IncDecStmt:
				pass.checkPlanMutation(n.X)
			}
			return true
		})
	}
	funcBodies(pass.Files, func(name string, body *ast.BlockStmt) {
		ps := &planScan{pass: pass, reported: make(map[types.Object]bool)}
		ps.block(body.List, make(map[types.Object]*planLocal))
	})
}

// checkPlanMutation reports a field write through a ShardPlan value
// outside the constructor file.
func (p *Pass) checkPlanMutation(lhs ast.Expr) {
	sel, ok := unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if !isScopedNamed(typeOfExpr(p.Info, sel.X), "genie/internal/pool", "ShardPlan") {
		return
	}
	file := filepath.Base(p.Fset.Position(sel.Pos()).Filename)
	if file == "plan.go" && hasPrefixPath(p.ScopePath, "genie/internal/pool") {
		return
	}
	p.Reportf(sel.Pos(),
		"ShardPlan field %s assigned outside the plan constructors (internal/pool/plan.go); plans are immutable versioned snapshots — build a new plan with a bumped Version", sel.Sel.Name)
}

// planLocal tracks one *ShardPlan-typed local.
type planLocal struct {
	name    string
	stale   bool
	staleBy string // the rebuild call that invalidated it
}

type planScan struct {
	pass     *Pass
	reported map[types.Object]bool
}

// block walks statements in order with branch-cloned staleness state,
// mirroring lockscope's scanner shape.
func (ps *planScan) block(stmts []ast.Stmt, st map[types.Object]*planLocal) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			for _, rhs := range s.Rhs {
				ps.expr(rhs, st)
			}
			for _, lhs := range s.Lhs {
				if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
					obj := ps.pass.Info.Defs[id]
					if obj == nil {
						obj = ps.pass.Info.Uses[id]
					}
					if obj != nil && isScopedNamed(obj.Type(), "genie/internal/pool", "ShardPlan") {
						st[obj] = &planLocal{name: id.Name} // (re)captured: fresh
						continue
					}
				}
				ps.expr(lhs, st)
			}
		case *ast.ExprStmt:
			ps.expr(s.X, st)
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				ps.expr(r, st)
			}
		case *ast.DeferStmt:
			// Deferred calls run at return; scan their arguments (read
			// now) but apply no rebuild effect to this path.
			ps.expr(s.Call.Fun, st)
			for _, a := range s.Call.Args {
				ps.expr(a, st)
			}
		case *ast.GoStmt:
			for _, a := range s.Call.Args {
				ps.expr(a, st)
			}
		case *ast.BlockStmt:
			ps.block(s.List, st)
		case *ast.IfStmt:
			if s.Init != nil {
				ps.block([]ast.Stmt{s.Init}, st)
			}
			ps.expr(s.Cond, st)
			ps.block(s.Body.List, clonePlans(st))
			if s.Else != nil {
				ps.block([]ast.Stmt{s.Else}, clonePlans(st))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				ps.block([]ast.Stmt{s.Init}, st)
			}
			if s.Cond != nil {
				ps.expr(s.Cond, st)
			}
			ps.block(s.Body.List, clonePlans(st))
		case *ast.RangeStmt:
			ps.expr(s.X, st)
			ps.block(s.Body.List, clonePlans(st))
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				ps.block(c.(*ast.CommClause).Body, clonePlans(st))
			}
		case *ast.SwitchStmt:
			if s.Init != nil {
				ps.block([]ast.Stmt{s.Init}, st)
			}
			if s.Tag != nil {
				ps.expr(s.Tag, st)
			}
			for _, c := range s.Body.List {
				ps.block(c.(*ast.CaseClause).Body, clonePlans(st))
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				ps.block(c.(*ast.CaseClause).Body, clonePlans(st))
			}
		case *ast.LabeledStmt:
			ps.block([]ast.Stmt{s.Stmt}, st)
		case *ast.SendStmt:
			ps.expr(s.Chan, st)
			ps.expr(s.Value, st)
		case *ast.IncDecStmt:
			ps.expr(s.X, st)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, v := range vs.Values {
						ps.expr(v, st)
					}
					for _, name := range vs.Names {
						if obj := ps.pass.Info.Defs[name]; obj != nil &&
							isScopedNamed(obj.Type(), "genie/internal/pool", "ShardPlan") {
							st[obj] = &planLocal{name: name.Name}
						}
					}
				}
			}
		}
	}
}

// expr walks an expression in evaluation order: a rebuild call
// invalidates tracked snapshots only after its arguments are read, so
// `m.swapPlan(pl.finish(old.Strategy, ...), ...)` does not flag old.
func (ps *planScan) expr(e ast.Expr, st map[types.Object]*planLocal) {
	switch e := unparen(e).(type) {
	case nil:
	case *ast.Ident:
		ps.checkUse(e, st)
	case *ast.SelectorExpr:
		ps.expr(e.X, st)
	case *ast.CallExpr:
		ps.expr(e.Fun, st)
		for _, a := range e.Args {
			ps.expr(a, st)
		}
		ps.applyCall(e, st)
	case *ast.BinaryExpr:
		ps.expr(e.X, st)
		ps.expr(e.Y, st)
	case *ast.UnaryExpr:
		ps.expr(e.X, st)
	case *ast.StarExpr:
		ps.expr(e.X, st)
	case *ast.IndexExpr:
		ps.expr(e.X, st)
		ps.expr(e.Index, st)
	case *ast.SliceExpr:
		ps.expr(e.X, st)
		ps.expr(e.Low, st)
		ps.expr(e.High, st)
		ps.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		ps.expr(e.X, st)
	case *ast.KeyValueExpr:
		ps.expr(e.Value, st)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			ps.expr(elt, st)
		}
	}
	// Function literals are skipped: their bodies are scanned as their
	// own funcBodies roots.
}

// applyCall marks every tracked snapshot stale when the callee's
// summary says it (transitively) rebuilds the plan.
func (ps *planScan) applyCall(call *ast.CallExpr, st map[types.Object]*planLocal) {
	if ps.pass.Prog == nil {
		return
	}
	callee := calleeFunc(ps.pass.Info, call)
	if callee == nil {
		return
	}
	sum, ok := ps.pass.Prog.Summary(callee)
	if !ok || !sum.RebuildsPlan {
		return
	}
	for _, pl := range st {
		if !pl.stale {
			pl.stale, pl.staleBy = true, callee.Name()
		}
	}
}

func (ps *planScan) checkUse(id *ast.Ident, st map[types.Object]*planLocal) {
	obj := ps.pass.Info.Uses[id]
	if obj == nil {
		return
	}
	pl, ok := st[obj]
	if !ok || !pl.stale || ps.reported[obj] {
		return
	}
	ps.reported[obj] = true
	ps.pass.Reportf(id.Pos(),
		"plan snapshot %q read after %s rebuilt the plan: the membership epoch may have advanced — re-read the plan after the rebuild section", pl.name, pl.staleBy)
}

func clonePlans(st map[types.Object]*planLocal) map[types.Object]*planLocal {
	out := make(map[types.Object]*planLocal, len(st))
	for k, v := range st {
		c := *v
		out[k] = &c
	}
	return out
}
