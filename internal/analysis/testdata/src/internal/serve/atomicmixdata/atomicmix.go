// Package atomicmixdata is genie-lint test fixture data for the
// mixed atomic/plain access analyzer.
package atomicmixdata

import "sync/atomic"

type counters struct {
	hits  int64
	skips int64
}

// bump is the atomic half of the race.
func (c *counters) bump() {
	atomic.AddInt64(&c.hits, 1)
}

// read is the plain half: it races with every bump.
func (c *counters) read() int64 {
	return c.hits // want "hits is accessed with atomic.AddInt64 elsewhere but plainly here"
}

// reset is a plain store over the same word.
func (c *counters) reset() {
	c.hits = 0 // want "hits is accessed with atomic.AddInt64 elsewhere but plainly here"
}

// skips is only ever touched plainly; one discipline, no finding.
func (c *counters) skip() {
	c.skips++
}

// gauge keeps a single discipline — all atomic; no finding.
type gauge struct{ v int64 }

func (g *gauge) get() int64  { return atomic.LoadInt64(&g.v) }
func (g *gauge) add(d int64) { atomic.AddInt64(&g.v, d) }

// fresh initializes through a composite literal: field keys are
// initialization, not access, and must not be flagged.
func fresh() *counters {
	return &counters{hits: 0, skips: 0}
}
