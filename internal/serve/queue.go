package serve

import "genie/internal/global"

// tenantQueues is the engine's admission queue: one FIFO per tenant,
// grouped into SLO bands ordered exactly as global.Less/Prioritize
// orders submissions (interactive before batch). Within a band, dispatch
// round-robins across tenants so one chatty tenant cannot starve the
// rest; within a tenant, arrival order holds.
type tenantQueues struct {
	bands [2]band
	n     int
}

// band is one SLO class's set of per-tenant FIFOs with a round-robin
// cursor.
type band struct {
	fifos map[string][]*activeReq
	order []string // tenants with queued work, in rotation order
	next  int      // round-robin cursor into order
}

func newTenantQueues() *tenantQueues {
	q := &tenantQueues{}
	for i := range q.bands {
		q.bands[i].fifos = map[string][]*activeReq{}
	}
	return q
}

// bandIndex maps an SLO to its dispatch band; the ordering invariant
// (interactive = 0 dispatches first) is global.Prioritize's.
func bandIndex(slo global.SLO) int {
	if slo == global.SLOInteractive {
		return 0
	}
	return 1
}

// push appends to the tenant's FIFO in the request's band.
func (q *tenantQueues) push(ar *activeReq) {
	b := &q.bands[bandIndex(ar.slo)]
	if _, ok := b.fifos[ar.tenant]; !ok {
		b.order = append(b.order, ar.tenant)
	}
	b.fifos[ar.tenant] = append(b.fifos[ar.tenant], ar)
	q.n++
}

// pop removes and returns the next request to dispatch, or nil when
// empty: highest-priority non-empty band, round-robin across its
// tenants.
func (q *tenantQueues) pop() *activeReq {
	for i := range q.bands {
		if ar := q.bands[i].pop(); ar != nil {
			q.n--
			return ar
		}
	}
	return nil
}

func (b *band) pop() *activeReq {
	for len(b.order) > 0 {
		if b.next >= len(b.order) {
			b.next = 0
		}
		t := b.order[b.next]
		fifo := b.fifos[t]
		ar := fifo[0]
		if len(fifo) == 1 {
			// Tenant drained: drop it from rotation. The cursor now
			// points at the next tenant, which keeps the round-robin
			// moving.
			delete(b.fifos, t)
			b.order = append(b.order[:b.next], b.order[b.next+1:]...)
		} else {
			b.fifos[t] = fifo[1:]
			b.next++
		}
		return ar
	}
	return nil
}

// depth is the number of queued (admitted, not yet running) requests.
func (q *tenantQueues) depth() int { return q.n }

// perTenant counts queued requests by tenant across all bands.
func (q *tenantQueues) perTenant() map[string]int {
	if q.n == 0 {
		return nil
	}
	out := make(map[string]int)
	for i := range q.bands {
		for t, fifo := range q.bands[i].fifos {
			out[t] += len(fifo)
		}
	}
	return out
}
