package chaos

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"genie/internal/backend"
	"genie/internal/device"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// execPayload builds a minimal one-op subgraph execution request.
func execPayload(t *testing.T) *transport.Exec {
	t.Helper()
	g := srg.New("chaos-test")
	in := g.MustAdd(&srg.Node{Op: "input", Ref: "x",
		Output: srg.TensorMeta{Shape: []int{2}}})
	out := g.MustAdd(&srg.Node{Op: "relu", Inputs: []srg.NodeID{in},
		Output: srg.TensorMeta{Shape: []int{2}}})
	return &transport.Exec{
		Graph: g,
		Binds: []transport.Binding{
			{Ref: "x", Inline: tensor.FromF32(tensor.Shape{2}, []float32{-1, 2})},
		},
		Want: []srg.NodeID{out},
	}
}

// TestPlanDeterministic: identical seeds and operation orders must
// yield identical fault sequences — the reproducibility contract every
// chaos test and bench run depends on.
func TestPlanDeterministic(t *testing.T) {
	run := func(seed int64) []writeFault {
		p := NewPlan(seed, Config{
			DropWriteProb:    0.2,
			CorruptWriteProb: 0.2,
			DelayProb:        0.1,
			StallProb:        0.1,
			KillProb:         0.1,
		})
		var seq []writeFault
		for i := 0; i < 200; i++ {
			seq = append(seq, p.decideWrite())
		}
		return seq
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 7 diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 200-draw sequences")
	}
}

func TestFromEnvSeed(t *testing.T) {
	t.Setenv(EnvSeed, "1234")
	if p := FromEnv(Config{}); p.Seed() != 1234 {
		t.Fatalf("seed = %d, want 1234", p.Seed())
	}
	t.Setenv(EnvSeed, "not-a-number")
	if p := FromEnv(Config{}); p.Seed() != 1 {
		t.Fatalf("seed = %d, want default 1", p.Seed())
	}
}

// TestDroppedWriteUnwedgedByDeadline: a plan that swallows every write
// silently partitions the peer; the per-call deadline must rescue the
// caller within its budget.
func TestDroppedWriteUnwedgedByDeadline(t *testing.T) {
	p := NewPlan(3, Config{DropWriteProb: 1})
	rawA, rawB := net.Pipe()
	client := transport.NewConn(p.WrapConn(rawA), nil, nil)
	server := transport.NewConn(rawB, nil, nil)
	defer client.Close()
	defer server.Close()
	go func() {
		// The peer is healthy and waiting — it just never gets the frame.
		if mt, _, err := server.Recv(); err == nil && mt == transport.MsgPing {
			_ = server.Send(transport.MsgPong, nil)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := client.CallCtx(ctx, transport.MsgPing, nil)
	if err == nil {
		t.Fatal("call over a dropping link succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dropped write wedged the caller for %v", elapsed)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if got := p.Injected()["drop_write"]; got == 0 {
		t.Fatal("plan recorded no dropped writes")
	}
}

// TestCorruptWriteSurfacesAsFrameError: a flipped byte on the frame
// header must decode as a typed FrameError at the receiver and close
// its conn.
func TestCorruptWriteSurfacesAsFrameError(t *testing.T) {
	p := NewPlan(5, Config{CorruptWriteProb: 1})
	rawA, rawB := net.Pipe()
	client := transport.NewConn(p.WrapConn(rawA), nil, nil)
	server := transport.NewConn(rawB, nil, nil)
	defer client.Close()
	defer server.Close()

	errc := make(chan error, 1)
	go func() {
		_, _, err := server.Recv()
		errc <- err
	}()
	// Payload sized so the corrupted length prefix (low byte | 0x80)
	// exceeds maxFrame's tail and desyncs framing.
	_ = client.Send(transport.MsgPing, make([]byte, 64))
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("server decoded a corrupted frame without error")
		}
		if !transport.IsFrameError(err) && !transport.IsClosed(err) {
			t.Fatalf("err = %T %v, want FrameError or closed-conn", err, err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server hung on corrupted frame")
	}
	if got := p.Injected()["corrupt_write"]; got == 0 {
		t.Fatal("plan recorded no corrupted writes")
	}
}

// TestKilledConn: a kill fault closes the conn and errors the call.
func TestKilledConn(t *testing.T) {
	p := NewPlan(9, Config{KillProb: 1})
	rawA, rawB := net.Pipe()
	client := transport.NewConn(p.WrapConn(rawA), nil, nil)
	defer client.Close()
	defer rawB.Close()
	_, _, err := client.Call(transport.MsgPing, nil)
	if err == nil {
		t.Fatal("call over a killed conn succeeded")
	}
	if !client.Dead() {
		t.Fatal("killed conn not poisoned")
	}
	if transport.Classify(err) != transport.ClassRetryable {
		t.Fatalf("Classify(%v) = %v, want retryable", err, transport.Classify(err))
	}
}

// TestExecHookCrashesAtN: the backend crashes at exactly the configured
// exec call — state dropped, epoch advanced, that call failed with a
// state-loss error — and not before.
func TestExecHookCrashesAtN(t *testing.T) {
	p := NewPlan(1, Config{CrashExecAt: 2})
	srv := backend.NewServer(device.A100)
	srv.SetExecHook(p.ExecHook(srv.Crash))

	epoch0 := srv.Epoch()
	x := execPayload(t)
	if _, err := srv.Exec(x); err != nil {
		t.Fatalf("exec 1 failed early: %v", err)
	}
	_, err := srv.Exec(x)
	if err == nil {
		t.Fatal("exec 2 survived the scheduled crash")
	}
	if !errors.Is(err, ErrInjectedCrash) {
		t.Fatalf("err = %v, want ErrInjectedCrash", err)
	}
	if srv.Epoch() != epoch0+1 {
		t.Fatalf("epoch = %d, want %d (crash advances it)", srv.Epoch(), epoch0+1)
	}
	// Over the wire this must read as state loss so clients fail over.
	if !transport.IsStateLoss(&transport.RemoteError{Msg: err.Error()}) {
		t.Fatalf("crash error %q not classified as state loss", err)
	}
	// Later execs run normally on the post-crash epoch.
	if _, err := srv.Exec(x); err != nil {
		t.Fatalf("exec 3 after crash: %v", err)
	}
	if got := p.Injected()["crash_exec"]; got != 1 {
		t.Fatalf("crash_exec count = %d, want 1", got)
	}
}
