package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore or //lint:file-ignore
// comment.
type ignoreDirective struct {
	check    string // check ID or "all"
	file     string
	line     int
	fileWide bool   // //lint:file-ignore — suppresses check for the whole file
	broken   string // non-empty = malformed, holds the complaint
	pos      token.Pos
}

const (
	directivePrefix     = "lint:ignore"
	fileDirectivePrefix = "lint:file-ignore"
)

// collectIgnores parses every //lint:ignore and //lint:file-ignore
// directive in the package. The formats are
//
//	//lint:ignore <check> <reason>
//	//lint:file-ignore <check> <reason>
//
// A line directive suppresses matching diagnostics on its own line
// (trailing comment) or the line directly below (standalone comment);
// one directive covers every matching diagnostic on that line, however
// many there are. A file directive suppresses the named check across
// its whole file and is meant for files that are exceptions by design
// (e.g. a chaos injector whose entire job is to do the forbidden
// thing). A missing check or reason makes the directive malformed,
// which the driver reports as a finding of its own — silent broad
// suppressions are exactly the failure mode this tool exists to
// prevent. "all" is rejected for file-ignore: a file exempt from every
// check should not be under analysis at all.
func collectIgnores(fset *token.FileSet, files []*ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				fileWide := false
				text, ok := strings.CutPrefix(c.Text, "//"+fileDirectivePrefix)
				if ok {
					fileWide = true
				} else {
					text, ok = strings.CutPrefix(c.Text, "//"+directivePrefix)
					if !ok {
						continue
					}
				}
				pos := fset.Position(c.Pos())
				d := ignoreDirective{file: pos.Filename, line: pos.Line, fileWide: fileWide, pos: c.Pos()}
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					d.broken = "missing check ID and reason"
				case len(fields) == 1:
					d.broken = "missing reason (format: //" + directiveName(fileWide) + " <check> <reason>)"
				case fileWide && fields[0] == "all":
					d.broken = `file-ignore does not accept "all"; name the check being exempted`
				default:
					d.check = fields[0]
				}
				out = append(out, d)
			}
		}
	}
	return out
}

func directiveName(fileWide bool) string {
	if fileWide {
		return fileDirectivePrefix
	}
	return directivePrefix
}

// applyIgnores filters diags through the directives and appends a
// diagnostic (check "lint") for every malformed directive.
func applyIgnores(diags []Diagnostic, directives []ignoreDirective) []Diagnostic {
	type key struct {
		file  string
		line  int
		check string
	}
	type fileKey struct {
		file  string
		check string
	}
	suppressed := make(map[key]bool)
	fileSuppressed := make(map[fileKey]bool)
	var out []Diagnostic
	for _, d := range directives {
		if d.broken != "" {
			out = append(out, Diagnostic{
				Check: "lint", File: d.file, Line: d.line, Col: 1,
				Message: "malformed //" + directiveName(d.fileWide) + " directive: " + d.broken,
			})
			continue
		}
		if d.fileWide {
			fileSuppressed[fileKey{d.file, d.check}] = true
			continue
		}
		for _, line := range []int{d.line, d.line + 1} {
			suppressed[key{d.file, line, d.check}] = true
		}
	}
	for _, diag := range diags {
		if suppressed[key{diag.File, diag.Line, diag.Check}] || suppressed[key{diag.File, diag.Line, "all"}] ||
			fileSuppressed[fileKey{diag.File, diag.Check}] {
			continue
		}
		out = append(out, diag)
	}
	return out
}
