package runtime

import (
	"math"
	"math/rand"
	"testing"

	"genie/internal/models"
)

// TestRunLocalKeepMatchesRunLocal: the lifetime-tracked evaluator must
// return bit-identical values for the kept nodes and nothing else.
func TestRunLocalKeepMatchesRunLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := models.NewGPT(rng, models.TinyGPT)
	prompt := []int64{3, 1, 4, 1, 5}

	b1, out1 := m.BuildPrefill(prompt)
	all, err := RunLocal(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, out2 := m.BuildPrefill(prompt)
	keep := map[int32]bool{int32(out2.NextToken): true, int32(out2.CacheK[0]): true}
	kept, err := RunLocalKeep(b2, keep)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != len(keep) {
		t.Fatalf("RunLocalKeep returned %d values, want %d", len(kept), len(keep))
	}
	if got, want := kept[int32(out2.NextToken)].I64()[0], all[int32(out1.NextToken)].I64()[0]; got != want {
		t.Fatalf("next token %d, want %d", got, want)
	}
	gotK, wantK := kept[int32(out2.CacheK[0])].F32(), all[int32(out1.CacheK[0])].F32()
	for i := range wantK {
		if math.Float32bits(gotK[i]) != math.Float32bits(wantK[i]) {
			t.Fatalf("cache k diverges at %d: %v vs %v", i, gotK[i], wantK[i])
		}
	}
}

// TestLocalSessionMatchesGenerate: the ephemeral decode loop (buffer
// recycling, keep-set caching) must not change a single token relative
// to the one-shot Generate path.
func TestLocalSessionMatchesGenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	r := &LLMRunner{Model: models.NewGPT(rng, models.TinyGPT)}
	prompt := []int64{7, 2, 9}
	const steps = 12

	gen, err := r.Generate(ModeLocal, prompt, steps)
	if err != nil {
		t.Fatal(err)
	}
	s, err := r.NewSession(ModeLocal)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := s.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	got := []int64{tok}
	for i := 0; i < steps-1; i++ {
		if tok, err = s.Step(); err != nil {
			t.Fatal(err)
		}
		got = append(got, tok)
	}
	if len(got) != len(gen.Tokens) {
		t.Fatalf("session produced %d tokens, Generate %d", len(got), len(gen.Tokens))
	}
	for i := range got {
		if got[i] != gen.Tokens[i] {
			t.Fatalf("token %d: session %d, Generate %d", i, got[i], gen.Tokens[i])
		}
	}
}
