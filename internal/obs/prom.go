package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format (v0.0.4): families sorted by name, HELP/TYPE
// emitted once per family, series sorted within it.
func (r *Registry) WritePrometheus(w io.Writer) error {
	type series struct {
		key string
		m   any
	}
	byFamily := map[string][]series{}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for key, m := range s.m {
			name := key
			if j := strings.IndexByte(key, '{'); j >= 0 {
				name = key[:j]
			}
			byFamily[name] = append(byFamily[name], series{key, m})
		}
		s.mu.RUnlock()
	}

	r.famMu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.famMu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	for _, f := range fams {
		ss := byFamily[f.name]
		if len(ss) == 0 {
			continue
		}
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range ss {
			if err := writeSeries(w, s.key, s.m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, key string, m any) error {
	switch m := m.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s %d\n", key, m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s %d\n", key, m.Value())
		return err
	case *Histogram:
		name, labels := splitKey(key)
		var cum int64
		for i, b := range m.bounds {
			cum += m.buckets[i].n.Load()
			le := strconv.FormatFloat(b, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				name, mergeLabels(labels, `le="`+le+`"`), cum); err != nil {
				return err
			}
		}
		cum += m.buckets[len(m.bounds)].n.Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			name, mergeLabels(labels, `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labels, m.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, m.Count())
		return err
	}
	return fmt.Errorf("obs: unknown metric type %T under %s", m, key)
}

// splitKey separates a series key into base name and label block
// (including braces; empty when unlabeled).
func splitKey(key string) (name, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

// mergeLabels appends extra into an existing label block.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// ServeHTTP makes the registry an http.Handler for GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}
