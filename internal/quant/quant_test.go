package quant

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"genie/internal/tensor"
)

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want Mode
		err  bool
	}{
		{"off", Off, false}, {"", Off, false},
		{"int8", Int8, false}, {"i8", Int8, false},
		{"f16", F16, false}, {"fp16", F16, false}, {"half", F16, false},
		{"int4", Off, true}, {"INT8", Off, true},
	}
	for _, c := range cases {
		got, err := ParseMode(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	for _, m := range []Mode{Off, Int8, F16} {
		if m.String() == "" {
			t.Errorf("mode %d has empty String()", m)
		}
	}
}

func TestQuantizeLinearErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := tensor.New(tensor.F32, 64, 48)
	w.RandN(rng, 0.8)

	for _, axis := range []int{0, 1} {
		q, err := QuantizeLinear(w, axis)
		if err != nil {
			t.Fatalf("axis %d: %v", axis, err)
		}
		if q.DType() != tensor.I8 || len(q.Scales()) != w.Shape()[axis] {
			t.Fatalf("axis %d: got %s with %d scales", axis, q, len(q.Scales()))
		}
		// Symmetric round-to-nearest: |w - deq(q)| <= scale/2 per element.
		for i, n := 0, w.NumElements(); i < n; i++ {
			ch := i % w.Shape()[1]
			if axis == 0 {
				ch = i / w.Shape()[1]
			}
			bound := float64(q.Scales()[ch]) / 2
			if diff := math.Abs(float64(w.At(i) - q.At(i))); diff > bound+1e-7 {
				t.Fatalf("axis %d elem %d: |%g - %g| = %g > scale/2 = %g",
					axis, i, w.At(i), q.At(i), diff, bound)
			}
		}
	}
}

func TestQuantizeLinearZeroChannel(t *testing.T) {
	w := tensor.New(tensor.F32, 4, 3)
	// Column 1 stays all-zero.
	for r := 0; r < 4; r++ {
		w.F32()[r*3] = float32(r + 1)
		w.F32()[r*3+2] = -float32(r + 1)
	}
	q, err := QuantizeLinear(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Scales()[1] != 1 {
		t.Fatalf("zero channel scale = %g, want 1", q.Scales()[1])
	}
	for r := 0; r < 4; r++ {
		if q.At(r*3+1) != 0 {
			t.Fatalf("zero channel dequantizes to %g", q.At(r*3+1))
		}
	}
}

func TestQuantizeLinearRejects(t *testing.T) {
	if _, err := QuantizeLinear(tensor.New(tensor.F16, 2, 2), 1); err == nil {
		t.Error("accepted f16 input")
	}
	if _, err := QuantizeLinear(tensor.New(tensor.F32, 2, 2, 2), 1); err == nil {
		t.Error("accepted rank-3 input")
	}
	if _, err := QuantizeLinear(tensor.New(tensor.F32, 2, 2), 2); err == nil {
		t.Error("accepted axis 2")
	}
}

func TestDequantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := tensor.New(tensor.F32, 16, 16)
	w.RandN(rng, 1.0)
	q, err := QuantizeLinear(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Dequantize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Requantizing the dequantized weights must be exact (fixed point).
	q2, err := QuantizeLinear(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := q.I8(), q2.I8()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("requantization not idempotent at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestQuantizeRow(t *testing.T) {
	row := []float32{0.5, -1.0, 0.25, 0}
	qrow := make([]int8, 4)
	s := QuantizeRow(row, qrow)
	for j, v := range row {
		got := float64(qrow[j]) * float64(s)
		if math.Abs(got-float64(v)) > float64(s)/2+1e-7 {
			t.Fatalf("elem %d: deq %g vs %g (scale %g)", j, got, v, s)
		}
	}
	zrow := make([]int8, 3)
	if s := QuantizeRow([]float32{0, 0, 0}, zrow); s != 1 {
		t.Fatalf("all-zero row scale = %g, want 1", s)
	}
}

func TestScalesSurviveSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := tensor.New(tensor.F32, 8, 6)
	w.RandN(rng, 0.5)
	q, err := QuantizeLinear(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tensor.Write(&buf, q); err != nil {
		t.Fatal(err)
	}
	got, err := tensor.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.DType() != tensor.I8 || got.QuantAxis() != 1 || len(got.Scales()) != 6 {
		t.Fatalf("round trip lost quant metadata: %s axis=%d scales=%d",
			got, got.QuantAxis(), len(got.Scales()))
	}
	for i := range q.I8() {
		if q.At(i) != got.At(i) {
			t.Fatalf("elem %d: %g vs %g", i, q.At(i), got.At(i))
		}
	}
}
