package models

import (
	"fmt"
	"math/rand"
	"testing"

	"genie/internal/exec"
	"genie/internal/lazy"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/tensor"
)

func bindAll(b *lazy.Builder) exec.Binder {
	return func(op, ref string) (*tensor.Tensor, error) {
		if op == "param" {
			if t, ok := b.ParamData(ref); ok {
				return t, nil
			}
		} else if t, ok := b.InputData(ref); ok {
			return t, nil
		}
		return nil, fmt.Errorf("no data for %s %q", op, ref)
	}
}

func TestGPTJ6BAccounting(t *testing.T) {
	c := GPTJ6B
	params := c.ParamCount()
	// GPT-J is ~6.05B parameters.
	if params < 5.9e9 || params > 6.3e9 {
		t.Errorf("GPT-J params = %.2fB", float64(params)/1e9)
	}
	// fp16 weights ≈ 12.1 GB (the paper's "12 GB").
	gb := float64(c.WeightBytes()) / (1 << 30)
	if gb < 11 || gb > 12.5 {
		t.Errorf("GPT-J weights = %.1f GiB", gb)
	}
	// Per-token KV delta ≈ 0.92 MB fp32 (the paper's "~1.0 MB").
	mb := float64(c.KVBytesPerToken()) / 1e6
	if mb < 0.8 || mb > 1.1 {
		t.Errorf("KV delta per token = %.2f MB", mb)
	}
	// Logits row ≈ 200 KB.
	if c.LogitsBytes() != 50400*4 {
		t.Errorf("logits bytes %d", c.LogitsBytes())
	}
}

func TestLiveModelMatchesConfigParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewGPT(rng, TinyGPT)
	if got, want := m.NumParams(), TinyGPT.ParamCount(); got != want {
		t.Errorf("live params %d, config predicts %d", got, want)
	}
}

func TestFLOPsMonotonicity(t *testing.T) {
	c := GPTJ6B
	if c.PrefillFLOPs(144) <= c.PrefillFLOPs(72) {
		t.Error("prefill FLOPs must grow with prompt length")
	}
	if c.DecodeFLOPs(200) <= c.DecodeFLOPs(50) {
		t.Error("decode FLOPs must grow with history")
	}
	if c.DecodeBytesTouched(200) <= c.DecodeBytesTouched(50) {
		t.Error("decode bytes must grow with history")
	}
}

func TestPrefillGraphStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewGPT(rng, TinyGPT)
	b, out := m.BuildPrefill([]int64{1, 2, 3})
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(out.CacheK) != TinyGPT.Layers || len(out.CacheV) != TinyGPT.Layers {
		t.Fatalf("cache outputs %d/%d", len(out.CacheK), len(out.CacheV))
	}
	// Logits shape [3, vocab]; next token i64[1]; last logits [1, vocab].
	if s := g.Node(out.Logits).Output.Shape; s[0] != 3 || s[1] != TinyGPT.Vocab {
		t.Errorf("logits shape %v", s)
	}
	if s := g.Node(out.LastLogits).Output.Shape; s[0] != 1 {
		t.Errorf("last logits shape %v", s)
	}
	// Module hierarchy recorded.
	foundBlock := false
	for _, n := range g.Nodes() {
		if n.Module == "gpt.blocks.1.attention.wq" {
			foundBlock = true
		}
	}
	if !foundBlock {
		t.Error("module paths missing")
	}
}

func TestPrefillRejectsBadPrompts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewGPT(rng, TinyGPT)
	for _, prompt := range [][]int64{nil, make([]int64, TinyGPT.MaxSeq+1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("prompt len %d should panic", len(prompt))
				}
			}()
			m.BuildPrefill(prompt)
		}()
	}
}

func TestDecodeStepMatchesPrefillExtension(t *testing.T) {
	// Generating via prefill-then-decode must equal one long prefill's
	// next-token prediction: the KV path is semantically invisible.
	rng := rand.New(rand.NewSource(4))
	m := NewGPT(rng, TinyGPT)
	seq := []int64{7, 3, 9, 1}

	// Full prefill over seq: next token prediction.
	bFull, outFull := m.BuildPrefill(seq)
	valsFull, err := exec.Graph(bFull.Graph(), bindAll(bFull))
	if err != nil {
		t.Fatal(err)
	}
	wantNext := valsFull[outFull.NextToken].I64()[0]

	// Prefill over seq[:3], then decode seq[3].
	bPre, outPre := m.BuildPrefill(seq[:3])
	valsPre, err := exec.Graph(bPre.Graph(), bindAll(bPre))
	if err != nil {
		t.Fatal(err)
	}
	caches := make([]*nn.KVCache, TinyGPT.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{}
		caches[i].Append(valsPre[outPre.CacheK[i]], valsPre[outPre.CacheV[i]])
	}
	bDec, outDec := m.BuildDecodeStep(seq[3], 3, 3, caches)
	valsDec, err := exec.Graph(bDec.Graph(), bindAll(bDec))
	if err != nil {
		t.Fatal(err)
	}
	gotNext := valsDec[outDec.NextToken].I64()[0]
	if gotNext != wantNext {
		t.Errorf("decode-step next token %d != full-prefill %d", gotNext, wantNext)
	}
	// Appended cache length grows by one.
	if s := bDec.Graph().Node(outDec.CacheK[0]).Output.Shape; s[0] != 4 {
		t.Errorf("appended cache rows %d, want 4", s[0])
	}
}

func TestLayerAndHeadStepsComposeToDecodeStep(t *testing.T) {
	// The ΔKV per-module decomposition (embed → layers → head) must
	// produce the same next token as the fused decode graph.
	rng := rand.New(rand.NewSource(5))
	m := NewGPT(rng, TinyGPT)
	prompt := []int64{11, 5, 2}

	bPre, outPre := m.BuildPrefill(prompt)
	valsPre, err := exec.Graph(bPre.Graph(), bindAll(bPre))
	if err != nil {
		t.Fatal(err)
	}
	caches := make([]*nn.KVCache, TinyGPT.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{}
		caches[i].Append(valsPre[outPre.CacheK[i]], valsPre[outPre.CacheV[i]])
	}
	tok := valsPre[outPre.NextToken].I64()[0]

	// Fused decode.
	bDec, outDec := m.BuildDecodeStep(tok, 3, 3, caches)
	valsDec, err := exec.Graph(bDec.Graph(), bindAll(bDec))
	if err != nil {
		t.Fatal(err)
	}
	want := valsDec[outDec.NextToken].I64()[0]

	// Per-module path.
	be, embID := m.BuildEmbedStep([]int64{tok}, 3)
	valsE, err := exec.Graph(be.Graph(), bindAll(be))
	if err != nil {
		t.Fatal(err)
	}
	x := valsE[embID]
	for layer := range m.Blocks {
		bl, lo := m.BuildLayerStep(layer, x, caches[layer], 3)
		valsL, err := exec.Graph(bl.Graph(), bindAll(bl))
		if err != nil {
			t.Fatal(err)
		}
		x = valsL[lo.Out]
	}
	bh, _, nextID := m.BuildHeadStep(x)
	valsH, err := exec.Graph(bh.Graph(), bindAll(bh))
	if err != nil {
		t.Fatal(err)
	}
	if got := valsH[nextID].I64()[0]; got != want {
		t.Errorf("per-module next token %d != fused %d", got, want)
	}
}

func TestCacheRefNaming(t *testing.T) {
	if CacheRef(3, "k") != "gpt.kv.3.k" {
		t.Errorf("cache ref %q", CacheRef(3, "k"))
	}
	// The decode graph's stateful leaves carry exactly these refs.
	rng := rand.New(rand.NewSource(6))
	m := NewGPT(rng, TinyGPT)
	caches := make([]*nn.KVCache, TinyGPT.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{K: tensor.New(tensor.F32, 2, TinyGPT.Dim), V: tensor.New(tensor.F32, 2, TinyGPT.Dim)}
	}
	b, _ := m.BuildDecodeStep(0, 2, 2, caches)
	found := 0
	for _, n := range b.Graph().Nodes() {
		if n.Residency == srg.ResidencyStatefulKVCache && n.Op == "input" {
			if n.Ref == CacheRef(0, "k") || n.Ref == CacheRef(1, "v") {
				found++
			}
		}
	}
	if found != 2 {
		t.Errorf("cache refs not found in graph (%d)", found)
	}
}

func TestCNNForward(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewCNN(rng, TinyCNN)
	img := tensor.New(tensor.F32, 3, 32, 32)
	img.RandN(rng, 1)
	b, out := m.BuildForward(img)
	if err := b.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	vals, err := exec.Graph(b.Graph(), bindAll(b))
	if err != nil {
		t.Fatal(err)
	}
	logits := vals[out.Logits]
	if !logits.Shape().Equal(tensor.Shape{1, 10}) {
		t.Errorf("logits shape %v", logits.Shape())
	}
	if len(out.StageOuts) != 3 {
		t.Errorf("stage boundaries %d", len(out.StageOuts))
	}
}

func TestDLRMForward(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewDLRM(rng, TinyDLRM)
	req := DLRMRequest{
		Dense:     tensor.New(tensor.F32, 1, TinyDLRM.DenseFeatures),
		SparseIDs: [][]int64{{1, 5}, {0}, {9, 10, 11}},
	}
	req.Dense.RandN(rng, 1)
	b, out := m.BuildForward(req)
	vals, err := exec.Graph(b.Graph(), bindAll(b))
	if err != nil {
		t.Fatal(err)
	}
	if !vals[out.Score].Shape().Equal(tensor.Shape{1, 1}) {
		t.Errorf("score shape %v", vals[out.Score].Shape())
	}
	if len(out.Lookups) != 3 {
		t.Errorf("lookups %d", len(out.Lookups))
	}
	// Mismatched bag count panics.
	defer func() {
		if recover() == nil {
			t.Error("bag/table mismatch should panic")
		}
	}()
	m.BuildForward(DLRMRequest{Dense: req.Dense, SparseIDs: [][]int64{{1}}})
}

func TestMultiModalForward(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewMultiModal(rng, TinyCNN, 64, 16, 8)
	img := tensor.New(tensor.F32, 3, 32, 32)
	img.RandN(rng, 1)
	b, out := m.BuildForward(img, []int64{1, 2, 3, 4})
	vals, err := exec.Graph(b.Graph(), bindAll(b))
	if err != nil {
		t.Fatal(err)
	}
	if !vals[out.Answer].Shape().Equal(tensor.Shape{1, 8}) {
		t.Errorf("answer shape %v", vals[out.Answer].Shape())
	}
	// The fusion node must join vision- and text-derived ancestors.
	g := b.Graph()
	anc := g.AncestorsOf(out.FusionNode)
	var sawVision, sawText bool
	for id := range anc {
		switch g.Node(id).Modality {
		case srg.ModalityVision:
			sawVision = true
		case srg.ModalityText:
			sawText = true
		}
	}
	if !sawVision || !sawText {
		t.Error("fusion node should descend from both modalities")
	}
}

func TestGPTDeterminism(t *testing.T) {
	// Same seed -> same weights -> same graph fingerprints and outputs.
	build := func() (*GPT, string) {
		rng := rand.New(rand.NewSource(42))
		m := NewGPT(rng, TinyGPT)
		b, _ := m.BuildPrefill([]int64{1, 2})
		return m, b.Graph().Fingerprint()
	}
	_, fp1 := build()
	_, fp2 := build()
	if fp1 != fp2 {
		t.Error("prefill graphs should be structurally identical across builds")
	}
}
