package analysis

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDriverFindingsExitAndJSON runs the driver over a fixture with
// known findings and checks the exit code and the -json schema CI
// depends on.
func TestDriverFindingsExitAndJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("driver runs the full loader; skipped with -short")
	}
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var out, errout bytes.Buffer
	code := Run([]string{fixtureDir("internal", "errcheckdata")}, Options{
		Dir:    modRoot,
		Checks: []string{"errcheck"},
		JSON:   true,
		Out:    &out,
		Errout: &errout,
	})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errout.String())
	}
	var diags []Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (ignored and discarded forms must not count): %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Check != "errcheck" {
			t.Errorf("check = %q, want errcheck", d.Check)
		}
		if d.Line <= 0 || d.Col <= 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if !strings.HasPrefix(d.File, "internal/analysis/testdata/") {
			t.Errorf("file %q not module-relative", d.File)
		}
	}
}

// TestDriverCleanExit: a findings-free package exits 0 and -json still
// emits a (empty) array, never null.
func TestDriverCleanExit(t *testing.T) {
	if testing.Short() {
		t.Skip("driver runs the full loader; skipped with -short")
	}
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	var out, errout bytes.Buffer
	code := Run([]string{fixtureDir("internal", "clean")}, Options{
		Dir: modRoot, JSON: true, Out: &out, Errout: &errout,
	})
	if code != ExitClean {
		t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s", code, ExitClean, out.String(), errout.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("clean -json output = %q, want []", got)
	}
}

// TestDriverUnknownCheck: bad usage is exit 2.
func TestDriverUnknownCheck(t *testing.T) {
	var out, errout bytes.Buffer
	code := Run([]string{fixtureDir("internal", "clean")}, Options{
		Dir: ".", Checks: []string{"nosuchcheck"}, Out: &out, Errout: &errout,
	})
	if code != ExitError {
		t.Fatalf("exit = %d, want %d", code, ExitError)
	}
	if !strings.Contains(errout.String(), "unknown check") {
		t.Fatalf("stderr %q does not mention the unknown check", errout.String())
	}
}

// TestMalformedIgnoreDirective: a //lint:ignore without a reason is
// itself a finding, so suppressions stay auditable.
func TestMalformedIgnoreDirective(t *testing.T) {
	diags := applyIgnores(nil, []ignoreDirective{{file: "x.go", line: 3, broken: "missing reason"}})
	if len(diags) != 1 || diags[0].Check != "lint" {
		t.Fatalf("malformed directive not reported: %+v", diags)
	}
}

// TestDriverJSONGolden pins the -json output byte-for-byte against
// testdata/golden/errcheck.json: field names, ordering, relative
// paths, and indentation are all part of the contract CI annotation
// scripts parse.
func TestDriverJSONGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("driver runs the full loader; skipped with -short")
	}
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden", "errcheck.json"))
	if err != nil {
		t.Fatal(err)
	}
	var out, errout bytes.Buffer
	code := Run([]string{fixtureDir("internal", "errcheckdata")}, Options{
		Dir:    modRoot,
		Checks: []string{"errcheck"},
		JSON:   true,
		Out:    &out,
		Errout: &errout,
	})
	if code != ExitFindings {
		t.Fatalf("exit = %d, want %d (stderr: %s)", code, ExitFindings, errout.String())
	}
	if got, want := out.String(), string(golden); got != want {
		t.Errorf("-json output drifted from golden file\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDriverExitCodeMatrix pins the full exit-code contract in one
// table: 0 clean, 1 findings, 2 operational error.
func TestDriverExitCodeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("driver runs the full loader; skipped with -short")
	}
	modRoot, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		dirs   []string
		checks []string
		want   int
	}{
		{"clean tree is 0", []string{fixtureDir("internal", "clean")}, nil, ExitClean},
		{"findings are 1", []string{fixtureDir("internal", "errcheckdata")}, []string{"errcheck"}, ExitFindings},
		{"unknown check is 2", []string{fixtureDir("internal", "clean")}, []string{"nosuchcheck"}, ExitError},
		{"unloadable package is 2", []string{filepath.Join("internal", "analysis", "testdata", "no-such-dir")}, nil, ExitError},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errout bytes.Buffer
			code := Run(tc.dirs, Options{
				Dir: modRoot, Checks: tc.checks, Out: &out, Errout: &errout,
			})
			if code != tc.want {
				t.Fatalf("exit = %d, want %d\nstdout: %s\nstderr: %s",
					code, tc.want, out.String(), errout.String())
			}
		})
	}
}
