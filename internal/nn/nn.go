// Package nn provides the module system — the analogue of PyTorch's
// nn.Module hierarchy. Modules own concrete weight tensors and know how to
// capture their forward pass into a lazy.Builder; the module names they
// register under become the hierarchical paths the frontend's structural
// annotation groups by (§3.2 "Automated Structural Annotation").
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"genie/internal/lazy"
	"genie/internal/tensor"
)

// Module is anything that can capture a forward pass over a single input.
type Module interface {
	// Forward captures the module's computation on x inside scope name.
	Forward(b *lazy.Builder, name string, x lazy.Value) lazy.Value
	// NumParams returns the module's parameter count.
	NumParams() int64
}

// Linear is a dense layer y = x@W + bias.
type Linear struct {
	W    *tensor.Tensor // [in, out]
	Bias *tensor.Tensor // [out], optional
}

// NewLinear initializes a Linear with scaled-normal weights.
func NewLinear(rng *rand.Rand, in, out int, bias bool) *Linear {
	l := &Linear{W: tensor.New(tensor.F32, in, out)}
	l.W.RandN(rng, float32(1/math.Sqrt(float64(in))))
	if bias {
		l.Bias = tensor.New(tensor.F32, out)
	}
	return l
}

// Forward implements Module.
func (l *Linear) Forward(b *lazy.Builder, name string, x lazy.Value) lazy.Value {
	var out lazy.Value
	b.InModule(name, func() {
		w := b.Param("w", l.W)
		out = b.MatMul(x, w)
		if l.Bias != nil {
			bias := b.Param("bias", l.Bias)
			out = b.Add(out, bias)
		}
	})
	return out
}

// NumParams implements Module.
func (l *Linear) NumParams() int64 {
	n := int64(l.W.NumElements())
	if l.Bias != nil {
		n += int64(l.Bias.NumElements())
	}
	return n
}

// LayerNorm normalizes the last dimension with learned gain and bias.
type LayerNorm struct {
	Gamma, Beta *tensor.Tensor
	Eps         float32
}

// NewLayerNorm initializes gain=1, bias=0.
func NewLayerNorm(dim int) *LayerNorm {
	g := tensor.New(tensor.F32, dim)
	g.Fill(1)
	return &LayerNorm{Gamma: g, Beta: tensor.New(tensor.F32, dim), Eps: 1e-5}
}

// Forward implements Module.
func (l *LayerNorm) Forward(b *lazy.Builder, name string, x lazy.Value) lazy.Value {
	var out lazy.Value
	b.InModule(name, func() {
		g := b.Param("gamma", l.Gamma)
		be := b.Param("beta", l.Beta)
		out = b.LayerNorm(x, g, be, l.Eps)
	})
	return out
}

// NumParams implements Module.
func (l *LayerNorm) NumParams() int64 {
	return int64(l.Gamma.NumElements() + l.Beta.NumElements())
}

// Embedding maps token ids to dense rows.
type Embedding struct {
	Table *tensor.Tensor // [vocab, dim]
}

// NewEmbedding initializes a [vocab, dim] table.
func NewEmbedding(rng *rand.Rand, vocab, dim int) *Embedding {
	e := &Embedding{Table: tensor.New(tensor.F32, vocab, dim)}
	e.Table.RandN(rng, 0.02)
	return e
}

// Lookup captures a gather of ids through the table.
func (e *Embedding) Lookup(b *lazy.Builder, name string, ids lazy.Value) lazy.Value {
	var out lazy.Value
	b.InModule(name, func() {
		t := b.Param("table", e.Table)
		out = b.Embedding(t, ids)
	})
	return out
}

// NumParams implements Module.
func (e *Embedding) NumParams() int64 { return int64(e.Table.NumElements()) }

// MLP is the transformer feed-forward block: Linear → GELU → Linear.
type MLP struct {
	FC   *Linear
	Proj *Linear
}

// NewMLP builds the standard 4× expansion block.
func NewMLP(rng *rand.Rand, dim, hidden int) *MLP {
	return &MLP{
		FC:   NewLinear(rng, dim, hidden, true),
		Proj: NewLinear(rng, hidden, dim, true),
	}
}

// Forward implements Module.
func (m *MLP) Forward(b *lazy.Builder, name string, x lazy.Value) lazy.Value {
	var out lazy.Value
	b.InModule(name, func() {
		h := m.FC.Forward(b, "fc", x)
		h = b.GELU(h)
		out = m.Proj.Forward(b, "proj", h)
	})
	return out
}

// NumParams implements Module.
func (m *MLP) NumParams() int64 { return m.FC.NumParams() + m.Proj.NumParams() }

// KVCache is the concrete stateful key/value store for one attention
// layer. It grows by one row per decoded token — the defining access
// pattern of the decode phase.
type KVCache struct {
	K, V *tensor.Tensor // [t, dim], nil when empty
}

// Len returns the number of cached positions.
func (c *KVCache) Len() int {
	if c.K == nil {
		return 0
	}
	return c.K.Shape()[0]
}

// Bytes returns the cache footprint.
func (c *KVCache) Bytes() int64 {
	if c.K == nil {
		return 0
	}
	return int64(c.K.NumBytes() + c.V.NumBytes())
}

// Append grows the cache with new rows (concrete-side mirror of the
// captured concat).
func (c *KVCache) Append(k, v *tensor.Tensor) {
	if c.K == nil {
		c.K, c.V = k.Clone(), v.Clone()
		return
	}
	c.K = mustConcatRows(c.K, k)
	c.V = mustConcatRows(c.V, v)
}

func mustConcatRows(a, b *tensor.Tensor) *tensor.Tensor {
	as, bs := a.Shape(), b.Shape()
	if as.Rank() != 2 || bs.Rank() != 2 || as[1] != bs[1] {
		panic(fmt.Sprintf("nn: kv append %v ++ %v", as, bs))
	}
	out := tensor.New(a.DType(), as[0]+bs[0], as[1])
	copy(out.Bytes(), a.Bytes())
	copy(out.Bytes()[a.NumBytes():], b.Bytes())
	return out
}

// Attention is causal multi-head self-attention with an optional KV
// cache.
type Attention struct {
	NumHeads       int
	WQ, WK, WV, WO *Linear
	dim            int
}

// NewAttention builds the four projections.
func NewAttention(rng *rand.Rand, dim, heads int) *Attention {
	if dim%heads != 0 {
		panic(fmt.Sprintf("nn: dim %d not divisible by %d heads", dim, heads))
	}
	return &Attention{
		NumHeads: heads, dim: dim,
		WQ: NewLinear(rng, dim, dim, false),
		WK: NewLinear(rng, dim, dim, false),
		WV: NewLinear(rng, dim, dim, false),
		WO: NewLinear(rng, dim, dim, false),
	}
}

// NumParams implements Module.
func (a *Attention) NumParams() int64 {
	return a.WQ.NumParams() + a.WK.NumParams() + a.WV.NumParams() + a.WO.NumParams()
}

// Forward implements Module for the no-cache (prefill-style) case.
func (a *Attention) Forward(b *lazy.Builder, name string, x lazy.Value) lazy.Value {
	out, _, _ := a.ForwardKV(b, name, x, lazy.Value{}, lazy.Value{})
	return out
}

// ForwardKV captures attention where cacheK/cacheV (possibly invalid =
// empty) hold prior keys/values. It returns the block output plus the
// captured new K and V rows so the caller can wire cache appends.
//
// The capture is deliberately simplified relative to a production
// transformer (single fused head-space rather than per-head reshapes):
// the semantic structure — Q@Kᵀ, causal softmax, @V — and the data
// volumes match, which is what the disaggregation study needs.
func (a *Attention) ForwardKV(b *lazy.Builder, name string, x, cacheK, cacheV lazy.Value) (out, newK, newV lazy.Value) {
	b.InModule(name, func() {
		q := a.WQ.Forward(b, "wq", x)
		newK = a.WK.Forward(b, "wk", x)
		newV = a.WV.Forward(b, "wv", x)

		k, v := newK, newV
		if cacheK.Valid() {
			k = b.Concat(0, cacheK, newK)
			v = b.Concat(0, cacheV, newV)
		}
		scores := b.MatMulT(q, k) // [tq, tk]
		scores = b.Scale(scores, float32(1/math.Sqrt(float64(a.dim/a.NumHeads))))
		// Autoregressive masking: queries may not attend to future keys.
		offset := k.Shape()[0] - scores.Shape()[0]
		scores = b.CausalMask(scores, offset)
		probs := b.Softmax(scores)
		ctx := b.MatMul(probs, v) // [tq, dim]
		out = a.WO.Forward(b, "wo", ctx)
	})
	return out, newK, newV
}

// Block is one transformer layer: pre-norm attention + pre-norm MLP with
// residual connections.
type Block struct {
	LN1, LN2 *LayerNorm
	Attn     *Attention
	MLP      *MLP
}

// NewBlock builds a standard decoder block.
func NewBlock(rng *rand.Rand, dim, heads, hidden int) *Block {
	return &Block{
		LN1:  NewLayerNorm(dim),
		LN2:  NewLayerNorm(dim),
		Attn: NewAttention(rng, dim, heads),
		MLP:  NewMLP(rng, dim, hidden),
	}
}

// NumParams implements Module.
func (bl *Block) NumParams() int64 {
	return bl.LN1.NumParams() + bl.LN2.NumParams() + bl.Attn.NumParams() + bl.MLP.NumParams()
}

// ForwardKV captures the block with optional KV cache inputs.
func (bl *Block) ForwardKV(b *lazy.Builder, name string, x, cacheK, cacheV lazy.Value) (out, newK, newV lazy.Value) {
	b.InModule(name, func() {
		h := bl.LN1.Forward(b, "ln1", x)
		var attnOut lazy.Value
		attnOut, newK, newV = bl.Attn.ForwardKV(b, "attention", h, cacheK, cacheV)
		x = b.Add(x, attnOut)
		h2 := bl.LN2.Forward(b, "ln2", x)
		out = b.Add(x, bl.MLP.Forward(b, "mlp", h2))
	})
	return out, newK, newV
}

// Forward implements Module (no cache).
func (bl *Block) Forward(b *lazy.Builder, name string, x lazy.Value) lazy.Value {
	out, _, _ := bl.ForwardKV(b, name, x, lazy.Value{}, lazy.Value{})
	return out
}

// Conv2D is a convolutional layer with bias and ReLU, the CNN building
// block.
type Conv2D struct {
	Kernel *tensor.Tensor // [outC, inC, kh, kw]
	Bias   *tensor.Tensor // [outC]
	Stride int
	Pad    int
}

// NewConv2D initializes a conv layer.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad int) *Conv2D {
	c := &Conv2D{
		Kernel: tensor.New(tensor.F32, outC, inC, k, k),
		Bias:   tensor.New(tensor.F32, outC),
		Stride: stride, Pad: pad,
	}
	c.Kernel.RandN(rng, float32(1/math.Sqrt(float64(inC*k*k))))
	return c
}

// Forward implements Module: conv → +bias (broadcast per channel is
// approximated by reshape-free add of [outC,1,1]-expanded bias being
// unsupported, so bias is folded as a per-channel scale-free add through
// a [oh*ow]-tiled tensor at build time) → ReLU.
func (c *Conv2D) Forward(b *lazy.Builder, name string, x lazy.Value) lazy.Value {
	var out lazy.Value
	b.InModule(name, func() {
		k := b.Param("kernel", c.Kernel)
		out = b.Conv2D(x, k, c.Stride, c.Pad)
		// Per-channel bias: materialize as [outC, oh, ow] is wasteful;
		// instead rely on broadcast over trailing dims being unavailable
		// and add bias only when spatial dims are 1 (post-pool heads).
		s := out.Shape()
		if s[1] == 1 && s[2] == 1 {
			bias := b.Param("bias", c.Bias)
			flat := b.Reshape(out, 1, s[0])
			flat = b.Add(flat, bias)
			out = b.Reshape(flat, s[0], 1, 1)
		}
		out = b.ReLU(out)
	})
	return out
}

// NumParams implements Module.
func (c *Conv2D) NumParams() int64 {
	return int64(c.Kernel.NumElements() + c.Bias.NumElements())
}

// EmbeddingBag is the DLRM-style sparse feature module: gathers and sums
// rows per bag.
type EmbeddingBag struct {
	Table *tensor.Tensor // [vocab, dim]
}

// NewEmbeddingBag initializes the table.
func NewEmbeddingBag(rng *rand.Rand, vocab, dim int) *EmbeddingBag {
	e := &EmbeddingBag{Table: tensor.New(tensor.F32, vocab, dim)}
	e.Table.RandN(rng, 0.05)
	return e
}

// Lookup captures a bag gather-sum.
func (e *EmbeddingBag) Lookup(b *lazy.Builder, name string, ids lazy.Value, offsets []int) lazy.Value {
	var out lazy.Value
	b.InModule(name, func() {
		t := b.Param("table", e.Table)
		out = b.EmbeddingBag(t, ids, offsets)
	})
	return out
}

// NumParams implements Module.
func (e *EmbeddingBag) NumParams() int64 { return int64(e.Table.NumElements()) }
