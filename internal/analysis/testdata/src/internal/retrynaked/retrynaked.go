// Package retrynaked is genie-lint test fixture data for the naked
// retry-loop analyzer. The package pretends to live at
// genie/internal/retrynaked, inside retrynaked's internal scope.
package retrynaked

import (
	"context"
	"errors"
	"time"

	"genie/internal/runtime"
	"genie/internal/transport"
)

// nakedContinue hammers the endpoint: continue-on-error with nothing
// between attempts.
func nakedContinue(c *transport.Conn) {
	for i := 0; i < 5; i++ {
		_, _, err := c.Call(transport.MsgPing, nil) // want "retry loop re-issues transport.Call with no backoff"
		if err != nil {
			continue
		}
		break
	}
}

// nakedUntilSuccess exits only on success; every failure spins straight
// into the next attempt.
func nakedUntilSuccess(c *transport.Conn) {
	for {
		_, _, err := c.Call(transport.MsgPing, nil) // want "retry loop re-issues transport.Call with no backoff"
		if err == nil {
			break
		}
	}
}

// nakedCondLoop drives the loop off the error value itself.
func nakedCondLoop(ep runtime.Endpoint) {
	err := errors.New("seed")
	for err != nil {
		err = ep.Free("scratch") // want "retry loop re-issues Endpoint.Free with no backoff"
	}
}

// backedOff sleeps between attempts; pacing makes the retry polite.
func backedOff(c *transport.Conn) {
	for i := 0; i < 5; i++ {
		_, _, err := c.Call(transport.MsgPing, nil)
		if err == nil {
			break
		}
		time.Sleep(time.Duration(i+1) * time.Millisecond)
	}
}

// ctxAware consults the context each attempt; cancellation-awareness
// counts as a bounded retry.
func ctxAware(ctx context.Context, c *transport.Conn) error {
	for {
		_, _, err := c.Call(transport.MsgPing, nil)
		if err == nil {
			return nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
}

// selectPaced gates each attempt on a timer channel via select.
func selectPaced(ctx context.Context, c *transport.Conn, tick <-chan time.Time) error {
	for {
		_, _, err := c.Call(transport.MsgPing, nil)
		if err == nil {
			return nil
		}
		select {
		case <-tick:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// propagates is not a retry at all: the loop gives up on first error.
func propagates(c *transport.Conn, n int) error {
	for i := 0; i < n; i++ {
		if _, _, err := c.Call(transport.MsgPing, nil); err != nil {
			return err
		}
	}
	return nil
}

// viaRetrier delegates pacing and cancellation to the retry helper.
func viaRetrier(ctx context.Context, r *transport.Retrier, c *transport.Conn) {
	for i := 0; i < 3; i++ {
		err := r.Do(ctx, func(ctx context.Context) error {
			_, _, cerr := c.Call(transport.MsgPing, nil)
			return cerr
		})
		if err != nil {
			continue
		}
		break
	}
}

// suppressed carries a justified ignore; the driver honors it.
func suppressed(c *transport.Conn) {
	for {
		//lint:ignore retrynaked fixture for the directive; the loop is the point
		_, _, err := c.Call(transport.MsgPing, nil)
		if err == nil {
			break
		}
	}
}
