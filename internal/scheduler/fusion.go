package scheduler

import (
	"strings"

	"genie/internal/srg"
)

// FuseElementwise is a graph rewrite that collapses chains of unary
// elementwise operations (scale, gelu, relu, and softmax as a terminal)
// into single "fused" nodes. SRG nodes may represent "anything from a
// single kernel to a large fused subgraph" (§3.1); fusing shrinks both
// the shipped graph and the number of kernel launches, and gives the
// scheduler coarser units to place.
//
// The fused node carries its micro-program in the "stages" attribute
// ("scale:0.5|gelu|relu"); the backend interpreter executes the stages
// in order. Only single-consumer interior links fuse — a value read by
// two consumers stays materialized.
type FuseElementwise struct{}

// Name implements Rewrite.
func (FuseElementwise) Name() string { return "fuse_elementwise" }

// fusibleOps are unary ops with no shape change that can join a chain.
// The scale→causal_mask→softmax triple is the attention epilogue — fusing
// it fires twice per transformer block.
var fusibleOps = map[string]bool{
	"scale": true, "gelu": true, "relu": true, "softmax": true, "causal_mask": true,
}

// stageOfNode renders one node as a fused-program stage.
func stageOfNode(n *srg.Node) string {
	switch n.Op {
	case "scale":
		return "scale:" + n.Attrs["s"]
	case "causal_mask":
		return "causal_mask:" + n.Attrs["offset"]
	}
	return n.Op
}

// Apply implements Rewrite.
func (FuseElementwise) Apply(g *srg.Graph) (*srg.Graph, int) {
	consumers := g.Consumers()

	fusible := func(n *srg.Node) bool {
		if !fusibleOps[n.Op] {
			return false
		}
		// Keep externally observable values materialized.
		return n.Residency != srg.ResidencyExternalOutput &&
			n.Residency != srg.ResidencyStatefulKVCache
	}

	// Identify chains: walk topologically; start a chain at a fusible
	// node whose producer is not part of a chain, extend while the next
	// node is fusible, single-consumer, and consumes only the previous.
	inChain := map[srg.NodeID]bool{}
	type chain struct {
		nodes []srg.NodeID
	}
	var chains []chain
	for _, n := range g.Nodes() {
		if inChain[n.ID] || !fusible(n) || len(n.Inputs) != 1 {
			continue
		}
		c := chain{nodes: []srg.NodeID{n.ID}}
		inChain[n.ID] = true
		cur := n.ID
		for {
			next := consumers[cur]
			if len(next) != 1 {
				break
			}
			cand := g.Node(next[0])
			if !fusible(cand) || len(cand.Inputs) != 1 || inChain[cand.ID] {
				break
			}
			c.nodes = append(c.nodes, cand.ID)
			inChain[cand.ID] = true
			cur = cand.ID
		}
		if len(c.nodes) >= 2 {
			chains = append(chains, c)
		} else {
			// Singleton: not worth fusing; release it.
			inChain[n.ID] = false
			c.nodes = nil
		}
	}
	if len(chains) == 0 {
		return g, 0
	}

	// Rebuild: chain members are replaced by one fused node at the
	// position of the chain tail.
	tailOf := map[srg.NodeID]chain{} // tail ID -> chain
	member := map[srg.NodeID]bool{}
	for _, c := range chains {
		tailOf[c.nodes[len(c.nodes)-1]] = c
		for _, id := range c.nodes {
			member[id] = true
		}
	}

	out := srg.New(g.Name)
	remap := map[srg.NodeID]srg.NodeID{}
	fusedCount := 0
	for _, n := range g.Nodes() {
		if member[n.ID] {
			c, isTail := tailOf[n.ID]
			if !isTail {
				continue // interior node: swallowed by the fused op
			}
			head := g.Node(c.nodes[0])
			stages := make([]string, len(c.nodes))
			var flops float64
			for i, id := range c.nodes {
				stages[i] = stageOfNode(g.Node(id))
				flops += g.Node(id).Cost.FLOPs
			}
			tail := g.Node(c.nodes[len(c.nodes)-1])
			fused := &srg.Node{
				Op:     "fused",
				Inputs: []srg.NodeID{remap[head.Inputs[0]]},
				Attrs:  map[string]string{"stages": strings.Join(stages, "|")},
				Module: head.Module, Phase: head.Phase, Modality: head.Modality,
				Residency: tail.Residency,
				Cost:      srg.CostHints{FLOPs: flops, Bytes: head.Cost.Bytes},
				Output:    tail.Output,
			}
			id := out.MustAdd(fused)
			remap[n.ID] = id
			fusedCount += len(c.nodes)
			continue
		}
		inputs := make([]srg.NodeID, len(n.Inputs))
		for i, in := range n.Inputs {
			inputs[i] = remap[in]
		}
		var attrs map[string]string
		if n.Attrs != nil {
			attrs = make(map[string]string, len(n.Attrs))
			for k, v := range n.Attrs {
				attrs[k] = v
			}
		}
		clone := &srg.Node{
			Op: n.Op, Ref: n.Ref, Inputs: inputs, Attrs: attrs,
			Module: n.Module, Phase: n.Phase, Residency: n.Residency,
			Modality: n.Modality, Cost: n.Cost, Output: n.Output,
		}
		remap[n.ID] = out.MustAdd(clone)
	}
	return out, fusedCount
}
