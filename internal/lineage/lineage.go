// Package lineage implements Genie's fault-tolerance model (§3.5),
// inspired by dataflow systems: the SRG is the unit of lineage, remote
// resident objects are referenced by key+epoch, and failures trigger
// selective recomputation of exactly the chains that were lost.
//
// Stateful objects (KV caches) are overwritten in place under stable
// keys, so the manager tracks *versions*: each execution that keeps an
// output produces a new version record whose provenance points at the
// version records it consumed. Recovery replays the version chain from
// the newest surviving cut — an upload, or a version that is still
// materialized — forward to the lost tip, exactly the "subgraph on the
// cut induced by the lost state".
//
// Idempotence comes from scoping effects to key+epoch (replays overwrite
// the same keys, old epochs are rejected) and from never re-delivering
// external outputs during replay (commit points).
package lineage

import (
	"fmt"
	"sort"
	"sync"

	"genie/internal/runtime"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// execRecord captures one tracked execution: enough to replay it.
type execRecord struct {
	graph  *srg.Graph
	inline map[string]*tensor.Tensor
	// deps maps leaf refs to the version records consumed.
	deps map[string]*version
	// keeps maps graph nodes to the keys they materialize.
	keeps map[srg.NodeID]string
	// vers lists every version record this execution produced, so a
	// replay can refresh all of their epochs at once.
	vers []*version
}

// version is one materialized value of a key.
type version struct {
	key   string
	ep    string
	epoch uint32
	// uploaded is the source tensor for directly installed objects.
	uploaded *tensor.Tensor
	// rec is the producing execution for computed objects.
	rec *execRecord
}

// Manager tracks resident objects across endpoints and recovers them on
// failure.
type Manager struct {
	mu     sync.Mutex
	eps    map[string]runtime.Endpoint
	latest map[string]*version
}

// NewManager creates an empty lineage manager.
func NewManager() *Manager {
	return &Manager{
		eps:    make(map[string]runtime.Endpoint),
		latest: make(map[string]*version),
	}
}

// RegisterEndpoint adds a named backend.
func (m *Manager) RegisterEndpoint(name string, ep runtime.Endpoint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.eps[name] = ep
}

// Endpoint returns a registered backend.
func (m *Manager) Endpoint(name string) (runtime.Endpoint, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ep, ok := m.eps[name]
	return ep, ok
}

// UploadTracked installs a tensor under key on the named endpoint and
// records upload provenance.
func (m *Manager) UploadTracked(epName, key string, data *tensor.Tensor) error {
	ep, ok := m.Endpoint(epName)
	if !ok {
		return fmt.Errorf("lineage: unknown endpoint %q", epName)
	}
	ack, err := ep.Upload(key, data)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.latest[key] = &version{key: key, ep: epName, epoch: ack.Epoch, uploaded: data}
	return nil
}

// ExecTracked runs a subgraph on the named endpoint, filling binding
// epochs from tracked state, and records a version for every kept
// output.
func (m *Manager) ExecTracked(epName string, x *transport.Exec) (*transport.ExecOK, error) {
	ep, ok := m.Endpoint(epName)
	if !ok {
		return nil, fmt.Errorf("lineage: unknown endpoint %q", epName)
	}
	rec := &execRecord{
		graph:  x.Graph,
		inline: map[string]*tensor.Tensor{},
		deps:   map[string]*version{},
		keeps:  map[srg.NodeID]string{},
	}
	m.mu.Lock()
	for i := range x.Binds {
		b := &x.Binds[i]
		if b.Inline != nil {
			rec.inline[b.Ref] = b.Inline
			continue
		}
		if v := m.latest[b.Key]; v != nil {
			b.Epoch = v.epoch
			rec.deps[b.Ref] = v
		}
	}
	// Implicit dependencies: param leaves without explicit binds resolve
	// from the resident store under their own ref.
	bound := map[string]bool{}
	for _, b := range x.Binds {
		bound[b.Ref] = true
	}
	for _, n := range x.Graph.Nodes() {
		if n.Op == "param" && !bound[n.Ref] {
			if v := m.latest[n.Ref]; v != nil {
				rec.deps[n.Ref] = v
			}
		}
	}
	m.mu.Unlock()

	ok2, err := ep.Exec(x)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for node, key := range x.Keep {
		rec.keeps[node] = key
		v := &version{key: key, ep: epName, epoch: ok2.Epoch, rec: rec}
		rec.vers = append(rec.vers, v)
		m.latest[key] = v
	}
	return ok2, nil
}

// Tracked returns the keys currently tracked, sorted.
func (m *Manager) Tracked() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.latest))
	for k := range m.latest {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Forget drops a key's lineage (after the object is freed remotely).
// Without this, recovery would replay per-session state the session
// already released, and the version chain would pin its tensors
// forever.
func (m *Manager) Forget(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.latest, key)
}

// HomeOf returns the endpoint currently holding key's latest version.
// The pool layer routes Frees and targeted migrations with it.
func (m *Manager) HomeOf(key string) (string, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.latest[key]
	if !ok {
		return "", false
	}
	return v.ep, true
}

// EpochOf returns the tracked epoch for a key's latest version.
func (m *Manager) EpochOf(key string) (uint32, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.latest[key]
	if !ok {
		return 0, false
	}
	return v.epoch, true
}

// DetectLost probes an endpoint and returns the tracked keys whose
// latest versions are stale there (state lost to a crash). An
// unreachable endpoint loses everything it held.
func (m *Manager) DetectLost(epName string) ([]string, error) {
	ep, ok := m.Endpoint(epName)
	if !ok {
		return nil, fmt.Errorf("lineage: unknown endpoint %q", epName)
	}
	m.mu.Lock()
	held := map[string]uint32{}
	for k, v := range m.latest {
		if v.ep == epName {
			held[k] = v.epoch
		}
	}
	m.mu.Unlock()

	st, err := ep.Stats()
	var lost []string
	if err != nil {
		for k := range held {
			lost = append(lost, k)
		}
		sort.Strings(lost)
		return lost, nil
	}
	for k, epoch := range held {
		if st.Epoch != epoch {
			lost = append(lost, k)
		}
	}
	sort.Strings(lost)
	return lost, nil
}

// Recover regenerates the given lost keys onto endpoint onto, replaying
// the version chains below them as needed. Versions that are still the
// live, materialized latest value of an un-lost key cut the replay.
func (m *Manager) Recover(lost []string, onto string) error {
	ep, ok := m.Endpoint(onto)
	if !ok {
		return fmt.Errorf("lineage: unknown endpoint %q", onto)
	}
	lostSet := map[string]bool{}
	for _, k := range lost {
		lostSet[k] = true
	}

	m.mu.Lock()
	var tips []*version
	sorted := append([]string(nil), lost...)
	sort.Strings(sorted)
	for _, k := range sorted {
		v := m.latest[k]
		if v == nil {
			m.mu.Unlock()
			return fmt.Errorf("lineage: no provenance for lost object %q", k)
		}
		tips = append(tips, v)
	}

	// alive reports whether a version's data can be read as-is.
	alive := func(v *version) bool {
		return m.latest[v.key] == v && !lostSet[v.key]
	}

	// Collect execRecords to replay, in dependency order (DFS postorder
	// over version records, cutting at alive versions and expanding
	// uploads in place).
	var order []*version // uploads and exec tips interleaved in dep order
	visitedVer := map[*version]bool{}
	visitedRec := map[*execRecord]bool{}
	var visit func(v *version) error
	visit = func(v *version) error {
		if visitedVer[v] {
			return nil
		}
		visitedVer[v] = true
		if v.uploaded != nil {
			order = append(order, v)
			return nil
		}
		if v.rec == nil {
			return fmt.Errorf("lineage: version of %q has no provenance", v.key)
		}
		if visitedRec[v.rec] {
			return nil
		}
		visitedRec[v.rec] = true
		refs := make([]string, 0, len(v.rec.deps))
		for ref := range v.rec.deps {
			refs = append(refs, ref)
		}
		sort.Strings(refs)
		for _, ref := range refs {
			dep := v.rec.deps[ref]
			if alive(dep) {
				continue
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		order = append(order, v)
		return nil
	}
	for _, tip := range tips {
		if err := visit(tip); err != nil {
			m.mu.Unlock()
			return err
		}
	}
	m.mu.Unlock()

	// Replay in order. Each exec regenerates every key it kept; epochs
	// update as we go so later replays bind fresh state.
	replayed := map[*execRecord]bool{}
	for _, v := range order {
		if v.uploaded != nil {
			ack, err := ep.Upload(v.key, v.uploaded)
			if err != nil {
				return fmt.Errorf("lineage: re-upload %q: %w", v.key, err)
			}
			m.mu.Lock()
			v.ep, v.epoch = onto, ack.Epoch
			m.mu.Unlock()
			continue
		}
		if replayed[v.rec] {
			continue
		}
		replayed[v.rec] = true
		x := &transport.Exec{Graph: v.rec.graph, Keep: map[srg.NodeID]string{}}
		for node, key := range v.rec.keeps {
			x.Keep[node] = key
		}
		m.mu.Lock()
		for ref, data := range v.rec.inline {
			x.Binds = append(x.Binds, transport.Binding{Ref: ref, Inline: data})
		}
		for ref, dep := range v.rec.deps {
			x.Binds = append(x.Binds, transport.Binding{Ref: ref, Key: dep.key, Epoch: dep.epoch})
		}
		m.mu.Unlock()
		sort.Slice(x.Binds, func(i, j int) bool { return x.Binds[i].Ref < x.Binds[j].Ref })
		ok2, err := ep.Exec(x)
		if err != nil {
			return fmt.Errorf("lineage: replay %q: %w", v.key, err)
		}
		m.mu.Lock()
		// Every version this record produced refreshes; dependents hold
		// these version records by pointer, so the new epochs propagate
		// to later replays automatically.
		for _, w := range v.rec.vers {
			w.ep, w.epoch = onto, ok2.Epoch
		}
		m.mu.Unlock()
	}
	return nil
}

// RecoverFrom detects loss on failed and recovers onto onto in one step,
// returning how many keys were regenerated.
func (m *Manager) RecoverFrom(failed, onto string) (int, error) {
	lost, err := m.DetectLost(failed)
	if err != nil {
		return 0, err
	}
	if len(lost) == 0 {
		return 0, nil
	}
	if err := m.Recover(lost, onto); err != nil {
		return 0, err
	}
	return len(lost), nil
}

// Checkpoint materializes a key's current remote value back at the
// manager and converts its provenance into an upload, cutting the replay
// chain below it. Long decode loops call this periodically so recovery
// replays only the suffix since the last checkpoint instead of the whole
// session — and so old execRecords (and the tensors they pin) become
// garbage-collectable.
func (m *Manager) Checkpoint(key string) error {
	m.mu.Lock()
	v := m.latest[key]
	m.mu.Unlock()
	if v == nil {
		return fmt.Errorf("lineage: checkpoint of untracked key %q", key)
	}
	ep, ok := m.Endpoint(v.ep)
	if !ok {
		return fmt.Errorf("lineage: checkpoint: unknown endpoint %q", v.ep)
	}
	data, err := ep.Fetch(key, v.epoch)
	if err != nil {
		return fmt.Errorf("lineage: checkpoint fetch %q: %w", key, err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	// Replace the version in place: same key/epoch/endpoint, but replay
	// is now a re-upload of the snapshot.
	if cur := m.latest[key]; cur == v {
		v.uploaded = data
		v.rec = nil
	}
	return nil
}

// ChainDepth reports how many executions recovery would replay for a key
// if everything were lost (the distance to the nearest upload cut). It is
// the metric checkpointing policies watch.
func (m *Manager) ChainDepth(key string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[*execRecord]bool{}
	var depth func(v *version) int
	depth = func(v *version) int {
		if v == nil || v.uploaded != nil || v.rec == nil || seen[v.rec] {
			return 0
		}
		seen[v.rec] = true
		best := 0
		for _, dep := range v.rec.deps {
			if d := depth(dep); d > best {
				best = d
			}
		}
		return 1 + best
	}
	return depth(m.latest[key])
}
