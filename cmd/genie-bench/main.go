// Command genie-bench regenerates every table and figure in the paper's
// evaluation plus the ablation experiments from DESIGN.md, printing the
// same rows the paper reports.
//
// Usage:
//
//	genie-bench                 # everything
//	genie-bench -table 2        # just Table 2
//	genie-bench -table 3 -rpc rdma
//	genie-bench -ablations      # A1..A7
//	genie-bench -naive-reupload 6.5   # paper-calibrated naive mode
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	goruntime "runtime"
	"strings"
	"time"

	"genie/internal/backend"
	"genie/internal/cluster"
	"genie/internal/compute"
	"genie/internal/device"
	"genie/internal/eval"
	"genie/internal/models"
	"genie/internal/obs"
	"genie/internal/pool"
	"genie/internal/runtime"
	"genie/internal/scheduler"
	"genie/internal/tensor"
	"genie/internal/tensor/ops"
	"genie/internal/transport"
)

func main() {
	table := flag.Int("table", 0, "print only this table (1, 2, or 3); 0 = all")
	ablations := flag.Bool("ablations", false, "print only the ablation experiments")
	kernels := flag.Bool("kernels", false, "print only the host kernel throughput section")
	obsSection := flag.Bool("obs", false, "print only the observability section (tracing cost, span + metrics demo)")
	chaosSection := flag.Bool("chaos", false,
		"print only the fault-tolerance section (goodput under a backend crash vs no-fault baseline; GENIE_CHAOS_SEED pins the schedule)")
	brownoutSection := flag.Bool("brownout", false,
		"print only the fail-slow section (p99 TTFT and goodput with one lane browned out "+
			"~50x: health off vs health scoring vs hedged prefill)")
	shardSection := flag.Bool("shard-report", false,
		"print only the sharded-placement section (per-op shard report + live pool sharding at 1/2/4 ways)")
	wireSection := flag.Bool("wire", false,
		"print only the raw-speed tier section (int8/f16 decode kernels vs f32; "+
			"bytes-on-wire with and without negotiated dedup+delta+compression)")
	prefixSection := flag.Bool("prefix", false,
		"print only the prefix-cache section (TTFT/tokens-per-sec at 0/50/90% "+
			"prefix share, cache on/off; split prefill/decode ΔKV bytes on wire)")
	rpc := flag.String("rpc", "tensorpipe", "transport profile: tensorpipe | rdma")
	naiveReupload := flag.Float64("naive-reupload", 1,
		"calls per weight re-upload in Naive mode (1 = paper's stated policy; ~6.5 matches its measured decode)")
	flag.Parse()

	cfg := eval.PaperConfig()
	cfg.NaiveReuploadPeriod = *naiveReupload
	switch *rpc {
	case "tensorpipe":
		cfg.RPC = scheduler.TensorPipeProfile
	case "rdma":
		cfg.RPC = scheduler.RDMAProfile
	default:
		fmt.Fprintf(os.Stderr, "unknown -rpc %q\n", *rpc)
		os.Exit(2)
	}

	all := *table == 0 && !*ablations && !*kernels && !*obsSection && !*chaosSection && !*brownoutSection && !*shardSection && !*wireSection && !*prefixSection
	if all || *kernels {
		printKernels()
	}
	if all || *wireSection {
		printWire()
	}
	if all || *prefixSection {
		printPrefix()
	}
	if all || *obsSection {
		printObs()
	}
	if all || *chaosSection {
		printChaos()
	}
	if all || *brownoutSection {
		printBrownout()
	}
	if all || *shardSection {
		printShardReport()
	}
	if all || *table == 1 {
		printTable1()
	}
	if all || *table == 2 {
		printTable2(cfg)
	}
	if all || *table == 3 {
		printTable3(cfg)
	}
	if all {
		printFig1()
	}
	if all || *ablations {
		printAblations(cfg)
	}
}

// printKernels reports real host-kernel throughput: the tiled matmul at
// serial vs full pool width, and end-to-end local decode tokens/sec.
// These are wall-clock numbers for the Go kernels underneath every mode
// — distinct from the tables' roofline-modeled GPU times, which this
// pool does not influence.
func printKernels() {
	fmt.Printf("== K: host kernel throughput (%d-wide pool, GOMAXPROCS=%d) ==\n",
		compute.Workers(), goruntime.GOMAXPROCS(0))
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{256, 512} {
		a, b := tensor.New(tensor.F32, n, n), tensor.New(tensor.F32, n, n)
		a.RandN(rng, 1)
		b.RandN(rng, 1)
		serial := timeKernel(1, a, b)
		pooled := timeKernel(0, a, b)
		gflops := 2 * float64(n) * float64(n) * float64(n) / 1e9
		fmt.Printf("matmul %4dx%[1]dx%[1]d: serial %8.2fms (%6.2f GFLOP/s) | pooled %8.2fms (%6.2f GFLOP/s) | %.2fx\n",
			n, serial.Seconds()*1e3, gflops/serial.Seconds(),
			pooled.Seconds()*1e3, gflops/pooled.Seconds(),
			float64(serial)/float64(pooled))
	}
	r := &runtime.LLMRunner{Model: models.NewGPT(rng, models.TinyGPT)}
	start := time.Now()
	const decodeTokens = 40
	if _, err := r.Generate(runtime.ModeLocal, []int64{1, 2, 3, 4}, decodeTokens); err != nil {
		log.Fatal(err)
	}
	el := time.Since(start)
	fmt.Printf("local decode (TinyGPT): %d tokens in %v = %.0f tok/s\n\n",
		decodeTokens, el.Round(time.Microsecond), decodeTokens/el.Seconds())
}

// printObs measures the tracing tax on the decode hot path live
// (untraced vs traced session, best of 3 runs), then shows what the
// subsystem produces: the span ring's contents and a slice of the
// Prometheus exposition — the same data the gateway serves at
// /debug/trace and /metrics.
func printObs() {
	fmt.Println("== O: observability (internal/obs) — tracing cost + span/metrics demo ==")
	r := &runtime.LLMRunner{Model: models.NewGPT(rand.New(rand.NewSource(9)), models.TinyGPT)}
	const steps = 200
	timeDecode(r, nil, steps/4) // warm caches off the clock
	untraced := timeDecode(r, nil, steps)

	tr := obs.NewTracer(obs.TracerConfig{Proc: "bench", Capacity: 2048})
	defer tr.Stop()
	ctx, root := tr.StartRoot(context.Background(), "bench.decode")
	traced := timeDecode(r, ctx, steps)
	root.End()

	perU := untraced / steps
	perT := traced / steps
	fmt.Printf("decode step: untraced %v | traced %v | delta %+.1f%% (contract: <5%%, DESIGN.md §8)\n",
		perU.Round(time.Microsecond), perT.Round(time.Microsecond),
		100*(float64(traced)-float64(untraced))/float64(untraced))

	spans := tr.Snapshot()
	fmt.Printf("span ring: %d spans recorded, %d dropped; tail:\n", len(spans), tr.Dropped())
	for i := len(spans) - 3; i < len(spans); i++ {
		if i < 0 {
			continue
		}
		s := spans[i]
		fmt.Printf("  %-16s %10v  trace=%016x parent=%016x\n",
			s.Name, s.Dur.Round(time.Microsecond), s.Trace, s.Parent)
	}

	reg := obs.NewRegistry()
	reg.Counter("genie_bench_decode_steps_total", "decode steps timed above").Add(2 * steps)
	reg.Histogram("genie_bench_decode_step_seconds", "per-step decode latency", nil).
		ObserveDuration(perT)
	var buf strings.Builder
	_ = reg.WritePrometheus(&buf) // strings.Builder cannot fail
	fmt.Println("metrics exposition (the gateway serves this at /metrics):")
	for _, line := range strings.SplitN(buf.String(), "\n", 8)[:7] {
		fmt.Printf("  %s\n", line)
	}
	fmt.Println()
}

// timeDecode measures steps decode steps through a session carrying ctx
// (nil = untraced), best of 3 runs, rolling sessions over before the
// tiny model's context cap.
func timeDecode(r *runtime.LLMRunner, ctx context.Context, steps int) time.Duration {
	prompt := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	best := time.Duration(1<<63 - 1)
	for rep := 0; rep < 3; rep++ {
		var el time.Duration
		hist := 0
		var s *runtime.Session
		for i := 0; i < steps; i++ {
			if s == nil || hist+1 >= models.TinyGPT.MaxSeq {
				var err error
				if s, err = r.NewScopedSessionCtx(ctx, runtime.ModeLocal, ""); err != nil {
					log.Fatal(err)
				}
				if _, err = s.Prefill(prompt); err != nil {
					log.Fatal(err)
				}
				hist = len(prompt) + 1
			}
			start := time.Now()
			if _, err := s.Step(); err != nil {
				log.Fatal(err)
			}
			el += time.Since(start)
			hist++
		}
		if el < best {
			best = el
		}
	}
	return best
}

// timeKernel times one MatMul at the given pool width (0 = default
// width), taking the best of three runs.
func timeKernel(width int, a, b *tensor.Tensor) time.Duration {
	p := compute.NewPool(width)
	old := compute.SetDefault(p)
	defer func() {
		compute.SetDefault(old)
		p.Stop()
	}()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < 3; i++ {
		start := time.Now()
		out, err := ops.MatMul(a, b)
		if err != nil {
			log.Fatal(err)
		}
		if el := time.Since(start); el < best {
			best = el
		}
		out.Release()
	}
	return best
}

// printChaos measures serving goodput under a mid-run backend crash:
// the same open-loop load runs fault-free, then with backend 0 wiped at
// its 40th exec call. Requests in flight on the dead backend re-queue
// to the survivor and regenerate; the section reports what that costs.
func printChaos() {
	fmt.Println("== C: fault tolerance (backend crash mid-run vs no-fault baseline) ==")
	r, err := eval.RunChaosServing(context.Background(), eval.DefaultChaosServingConfig())
	if err != nil {
		fmt.Printf("chaos serving failed: %v\n\n", err)
		return
	}
	fmt.Printf("chaos seed %d (replay: GENIE_CHAOS_SEED=%d); injected: %v\n",
		r.ChaosSeed, r.ChaosSeed, r.Injected)
	fmt.Printf("%-10s %9s %6s %6s %9s %11s %11s %10s\n",
		"run", "completed", "requeue", "shed", "tok/s", "p95 lat", "p95 TTFT", "makespan")
	fmt.Printf("%-10s %6d/%-2d %7s %6d %9.0f %11v %11v %10v\n",
		"no-fault", r.Baseline.Completed, r.Baseline.Requests, "-", r.Baseline.Shed,
		r.Baseline.TokensPerSec, r.Baseline.P95Lat.Round(time.Microsecond),
		r.Baseline.P95TTFT.Round(time.Microsecond), r.Baseline.Makespan.Round(time.Microsecond))
	fmt.Printf("%-10s %6d/%-2d %7d %6d %9.0f %11v %11v %10v\n",
		"crash", r.Faulted.Completed, r.Faulted.Requests, r.Requeued,
		r.Faulted.Shed+r.Unavailable, r.Faulted.TokensPerSec,
		r.Faulted.P95Lat.Round(time.Microsecond), r.Faulted.P95TTFT.Round(time.Microsecond),
		r.Faulted.Makespan.Round(time.Microsecond))
	if r.CrashAt > 0 {
		fmt.Printf("backend b0 crashed at +%v; first post-crash completion %v later\n",
			r.CrashAt.Round(time.Microsecond), r.Recovery.Round(time.Microsecond))
	} else {
		fmt.Println("backend b0 never reached the crash point (run too short for the schedule)")
	}
	fmt.Println("(goodput = completed requests; re-queued work re-decodes its prefix on")
	fmt.Println(" the survivor, so the crash costs duplicate compute, not correctness —")
	fmt.Println(" CPU wall-clock numbers, not the paper's modeled GPU times)")
	fmt.Println()
}

// printBrownout measures serving under a fail-slow lane: one backend's
// conn pauses on every operation (the ~50x brownout), and the same
// open-loop load replays with nothing defending, with health scoring
// quarantining the lane, and with hedged prefill racing a spare. Tokens
// are checked bit-for-bit against the healthy run in every arrangement.
func printBrownout() {
	fmt.Println("== B: fail-slow tolerance (one lane browned out ~50x) ==")
	r, err := eval.RunBrownoutServing(context.Background(), eval.DefaultBrownoutServingConfig())
	if err != nil {
		fmt.Printf("brownout serving failed: %v\n\n", err)
		return
	}
	fmt.Printf("brownout: lane b0 pauses %v per conn op (seed %d)\n", r.PauseDur, r.ChaosSeed)
	fmt.Printf("%-12s %9s %7s %10s %10s %9s %10s %7s %6s\n",
		"run", "completed", "requeue", "p50 TTFT", "p99 TTFT", "tok/s", "makespan", "tokens", "notes")
	row := func(b eval.BrownoutRun, notes string) {
		match := "match"
		if !b.TokensMatch {
			match = "DIFFER"
		}
		fmt.Printf("%-12s %6d/%-2d %7d %10v %10v %9.0f %10v %7s %s\n",
			b.Name, b.Completed, b.Completed+b.Failed, b.Requeued,
			b.P50TTFT.Round(10*time.Microsecond), b.P99TTFT.Round(10*time.Microsecond),
			b.Goodput, b.Makespan.Round(time.Millisecond), match, notes)
	}
	row(r.Healthy, "-")
	row(r.HealthOff, "nothing defends; slow lane serves at crawl")
	row(r.HealthOn, fmt.Sprintf("%d lane(s) demoted (%d quarantined)",
		r.HealthOn.Demoted, r.HealthOn.Quarantined))
	row(r.Hedged, fmt.Sprintf("%d prefills hedged, %d backup wins", r.Hedged.Hedged, r.Hedged.HedgeWins))
	fmt.Printf("p99 TTFT vs healthy: health off %.1fx | health on %.1fx | hedged %.1fx\n",
		float64(r.HealthOff.P99TTFT)/float64(r.Healthy.P99TTFT),
		float64(r.HealthOn.P99TTFT)/float64(r.Healthy.P99TTFT),
		float64(r.Hedged.P99TTFT)/float64(r.Healthy.P99TTFT))
	fmt.Println("(a browned lane fails no request in any arrangement — fail-slow never")
	fmt.Println(" becomes fail-stop for the client; health scoring reclaims latency by")
	fmt.Println(" quarantining the lane, hedged prefill by racing a spare per request)")
	fmt.Println()
}

// printShardReport covers both sharding layers: the per-op scheduler
// placement (seed policy, ShardReport's per-shard bytes and cut edges)
// and the pool layer's live sharded serving at 1/2/4 ways — real
// backends over net.Pipe, measured tokens/sec, cross-shard activation
// traffic, and the wall-clock cost of re-placing shards when a member
// leaves mid-service.
func printShardReport() {
	fmt.Println("== S: sharded placement (scheduler per-op report + live pool) ==")

	// Per-op shard report: the prefill graph on a pool whose members
	// each hold 2/3 of the model, forcing a memory-driven split.
	rng := rand.New(rand.NewSource(5))
	gpt := models.NewGPT(rng, models.TinyGPT)
	b, _ := gpt.BuildPrefill([]int64{3, 14, 15, 9, 2, 6})
	cs := cluster.NewState()
	small := device.A100
	small.MemBytes = gpt.Cfg.WeightBytes() * 2 / 3
	for i := 0; i < 3; i++ {
		if err := cs.AddAccelerator(&cluster.Accelerator{
			ID:   cluster.AcceleratorID(fmt.Sprint("gpu", i)),
			Spec: small,
			Link: cluster.Link{Bandwidth: 25e9 / 8, RTT: 200 * time.Microsecond},
		}); err != nil {
			log.Fatal(err)
		}
	}
	plan, err := scheduler.Schedule(b.Graph(), cs, scheduler.SemanticsAware{},
		scheduler.NewCostModel(scheduler.RDMAProfile))
	if err != nil {
		log.Fatal(err)
	}
	report := scheduler.ShardReport(plan)
	fmt.Printf("per-op placement (TinyGPT prefill, member cap %d B of %d B weights):\n",
		small.MemBytes, gpt.Cfg.WeightBytes())
	for i := 0; i < 3; i++ {
		id := cluster.AcceleratorID(fmt.Sprint("gpu", i))
		st := report.PerDevice[id]
		fmt.Printf("  %-6s %3d compute nodes, %6d weight bytes\n", id, st.Ops, st.WeightBytes)
	}
	fmt.Printf("  cut: %d edges, %d activation bytes\n\n", report.CutEdges, report.CutBytes)

	// Live pool: a 4-layer tiny model pipelined across 1, 2, and 4
	// members, plus a hot spare that absorbs a mid-service departure.
	cfg4 := models.GPTConfig{
		Layers: 4, Dim: 32, Heads: 4, Hidden: 64,
		Vocab: 96, MaxSeq: 64, WeightBytesPerParam: 4,
	}
	fmt.Printf("live pool (4-layer tiny GPT, %d B weights, pipeline strategy):\n", cfg4.WeightBytes())
	fmt.Printf("%-6s %8s %10s %16s %16s\n", "ways", "tok/s", "shards", "cross-shard B", "leave rebuild")
	for _, ways := range []int{1, 2, 4} {
		row, err := livePoolRow(cfg4, ways)
		if err != nil {
			fmt.Printf("%-6d pool failed: %v\n", ways, err)
			continue
		}
		fmt.Printf("%-6d %8.0f %10d %16d %16v\n",
			ways, row.tokensPerSec, row.shards, row.crossBytes, row.rebuild.Round(10*time.Microsecond))
	}
	fmt.Println("(host wall-clock over net.Pipe backends; cross-shard B is activation")
	fmt.Println(" traffic for the whole run, leave rebuild is Leave() wall time incl.")
	fmt.Println(" lineage replay of the departed member's weights and KV onto the spare)")
	fmt.Println()
}

type poolRow struct {
	tokensPerSec float64
	shards       int
	crossBytes   int64
	rebuild      time.Duration
}

// livePoolRow serves one generation over a pool of `ways` members, then
// times a member departure. Backends are real backend.Servers reached
// through transport over net.Pipe.
func livePoolRow(cfg models.GPTConfig, ways int) (poolRow, error) {
	gpt := models.NewGPT(rand.New(rand.NewSource(5)), cfg)
	// RebalanceOnJoin spreads stages as members arrive (the members are
	// not memory-constrained here); once the session below is live, its
	// KV pins the plan, so the late "spare" join stays a spare.
	mgr, err := pool.NewManager(pool.Config{
		Model: gpt, Strategy: pool.StrategyPipeline, RebalanceOnJoin: true,
	})
	if err != nil {
		return poolRow{}, err
	}
	link := cluster.Link{Bandwidth: 25e9 / 8}
	var closers []func()
	defer func() {
		for _, c := range closers {
			c()
		}
	}()
	add := func(name string) error {
		rawC, rawS := net.Pipe()
		cconn := transport.NewConn(rawC, nil, nil)
		sconn := transport.NewConn(rawS, nil, nil)
		srv := backend.NewServer(device.A100)
		go func() { _ = srv.Serve(sconn) }()
		closers = append(closers, func() { _ = cconn.Close(); _ = sconn.Close() })
		return mgr.Join(name, transport.NewClient(cconn), device.A100, link)
	}
	for i := 0; i < ways; i++ {
		if err := add(fmt.Sprint("m", i)); err != nil {
			return poolRow{}, err
		}
	}

	const steps = 32
	s, err := mgr.Runner().NewScopedSessionCtx(context.Background(), runtime.ModeSemAware, "bench/")
	if err != nil {
		return poolRow{}, err
	}
	start := time.Now()
	if _, err := s.Prefill([]int64{3, 14, 15, 9, 2, 6}); err != nil {
		return poolRow{}, err
	}
	for i := 0; i < steps; i++ {
		if _, err := s.Step(); err != nil {
			return poolRow{}, err
		}
	}
	el := time.Since(start)

	// A spare joins (plan unchanged), then a shard owner departs; the
	// Leave call covers plan rebuild + lineage replay of the departed
	// member's shard onto the spare, with the session's KV still live.
	if err := add("spare"); err != nil {
		return poolRow{}, err
	}
	victim := mgr.Plan().Owners[0]
	rebuildStart := time.Now()
	if err := mgr.Leave(victim); err != nil {
		return poolRow{}, err
	}
	rebuild := time.Since(rebuildStart)
	if _, err := s.Step(); err != nil {
		return poolRow{}, fmt.Errorf("post-leave step: %w", err)
	}
	_ = s.Close()

	st := mgr.Status()
	return poolRow{
		tokensPerSec: float64(steps+1) / el.Seconds(),
		shards:       len(st.Shards),
		crossBytes:   st.CrossShardBytes,
		rebuild:      rebuild,
	}, nil
}

func printTable1() {
	fmt.Println("== Table 1: semantic characteristics of representative AI workloads ==")
	rows, err := eval.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-44s %-50s %s\n", "Workload", "Detected phases", "Key optimization", "Applied")
	for _, r := range rows {
		fmt.Printf("%-16s %-44s %-50s %v\n", r.Workload, fmt.Sprint(r.DetectedPhases), r.KeyOptimization, r.Applied)
	}
	fmt.Println()
}

func printTable2(cfg eval.LLMSimConfig) {
	fmt.Printf("== Table 2: GPT-J 6B, %d-token prompt + %d-token decode, %s transport ==\n",
		cfg.PromptLen, cfg.DecodeLen, cfg.RPC.Name)
	fmt.Printf("(paper values in parentheses; see EXPERIMENTS.md for deviations)\n")
	rows := eval.Table2(cfg)
	paperPrefill := map[runtime.Mode][3]string{
		runtime.ModeLocal:    {"0.21", "0.0", "100.0"},
		runtime.ModeNaive:    {"216", "149,258", "0.1"},
		runtime.ModeDeltaKV:  {"110", "4.31", "0.2"},
		runtime.ModeSemAware: {"111", "5.56", "0.2"},
	}
	paperDecode := map[runtime.Mode][3]string{
		runtime.ModeLocal:    {"1.53", "0.0", "99.1"},
		runtime.ModeNaive:    {"783", "95,438", "0.3"},
		runtime.ModeDeltaKV:  {"131", "52.3", "1.5"},
		runtime.ModeSemAware: {"116", "11.3", "1.8"},
	}
	fmt.Println("-- Prefill (72-token prompt) --")
	fmt.Printf("%-18s %14s %16s %12s\n", "Mode", "Latency [s]", "Net [MB]", "GPU Util [%]")
	for _, r := range rows {
		p := paperPrefill[r.Prefill.Mode]
		fmt.Printf("%-18s %8.2f (%s) %9.2f (%s) %6.1f (%s)\n", r.Prefill.Mode,
			r.Prefill.Latency.Seconds(), p[0],
			float64(r.Prefill.NetBytes)/1e6, p[1],
			r.Prefill.Util()*100, p[2])
	}
	fmt.Println("-- Decode (50 tokens) --")
	fmt.Printf("%-18s %14s %16s %12s\n", "Mode", "Latency [s]", "Net [MB]", "GPU Util [%]")
	for _, r := range rows {
		p := paperDecode[r.Decode.Mode]
		fmt.Printf("%-18s %8.2f (%s) %9.2f (%s) %6.1f (%s)\n", r.Decode.Mode,
			r.Decode.Latency.Seconds(), p[0],
			float64(r.Decode.NetBytes)/1e6, p[1],
			r.Decode.Util()*100, p[2])
	}
	fmt.Println()
}

func printTable3(cfg eval.LLMSimConfig) {
	fmt.Printf("== Table 3: decode latency scaling, %s transport ==\n", cfg.RPC.Name)
	paper := map[string]map[int]string{
		"delta_kv":        {50: "132.0", 100: "159.9", 150: "181.8", 200: "204.3"},
		"semantics_aware": {50: "114.0", 100: "118.4", 150: "118.5", 200: "119.2"},
	}
	lengths := []int{50, 100, 150, 200}
	points := eval.Table3(cfg, lengths)
	byMode := map[runtime.Mode]map[int]float64{}
	for _, p := range points {
		if byMode[p.Mode] == nil {
			byMode[p.Mode] = map[int]float64{}
		}
		byMode[p.Mode][p.N] = p.Latency.Seconds()
	}
	fmt.Printf("%-18s", "Mode")
	for _, n := range lengths {
		fmt.Printf(" %16s", fmt.Sprintf("N=%d", n))
	}
	fmt.Println()
	for _, mode := range []runtime.Mode{runtime.ModeDeltaKV, runtime.ModeSemAware} {
		fmt.Printf("%-18s", mode)
		for _, n := range lengths {
			fmt.Printf(" %8.1f (%s)", byMode[mode][n], paper[mode.String()][n])
		}
		fmt.Println()
	}
	fmt.Println()
}

func printFig1() {
	fmt.Println("== Fig. 1: the framework layer as the narrow waist ==")
	fmt.Println("(semantic facts visible per layer: SRG vs driver-level call stream)")
	fmt.Printf("%-12s %10s %12s %12s %12s\n", "Workload", "SRG phases", "residencies", "modalities", "driver sees")
	for _, r := range eval.Fig1NarrowWaist() {
		fmt.Printf("%-12s %10d %12d %12d %9d ops (phases=0, residency=0, modality=0)\n",
			r.Workload, r.SRGPhases, r.SRGResidency, r.SRGModalities, r.DriverOps)
	}
	fmt.Println()
}

func printAblations(cfg eval.LLMSimConfig) {
	fmt.Println("== A1: stateful co-location (50-token decode, GPT-J scale) ==")
	col := eval.AblationColocation(cfg)
	fmt.Printf("co-located:  %8.1fs %10.1f MB\n", col.ColocatedLatency.Seconds(), float64(col.ColocatedBytes)/1e6)
	fmt.Printf("cache moved: %8.1fs %10.1f MB  (%.1fx slower, %.0fx more traffic)\n",
		col.MovedLatency.Seconds(), float64(col.MovedBytes)/1e6,
		float64(col.MovedLatency)/float64(col.ColocatedLatency),
		float64(col.MovedBytes)/float64(col.ColocatedBytes))

	fmt.Println("\n== A2: pipelined CNN inference (ResNet-like, 256-image stream) ==")
	for _, n := range []int{2, 4} {
		p := eval.AblationPipeline(cfg.Device, n, 256)
		fmt.Printf("%d devices: sequential %8.1fms, pipelined %8.1fms (%.2fx)\n",
			n, p.Sequential.Seconds()*1e3, p.Pipelined.Seconds()*1e3, p.Speedup())
	}

	fmt.Println("\n== A3: dynamic recomputation under congestion ==")
	fmt.Println("(64 MB intermediate, 3e11-FLOP producer, zero-copy transport)")
	points := eval.AblationRecompute(cfg.Device, cfg.Link, scheduler.RDMAProfile,
		64<<20, 3e11, []float64{0, 0.25, 0.5, 0.75, 0.9})
	fmt.Printf("%-12s %12s %12s %s\n", "congestion", "fetch", "recompute", "decision")
	for _, p := range points {
		decision := "fetch"
		if p.ChoseRecomp {
			decision = "recompute"
		}
		fmt.Printf("%-12.2f %12v %12v %s\n", p.Congestion,
			p.FetchTime.Round(10e3), p.RecompTime.Round(10e3), decision)
	}

	fmt.Println("\n== A5: lineage recovery vs full restart ==")
	fmt.Printf("%-8s %14s %14s\n", "depth", "lineage replay", "full restart")
	for _, p := range eval.AblationLineageRecovery(cfg, []int{10, 50, 200}) {
		fmt.Printf("%-8d %13.1fs %13.1fs\n", p.Depth, p.ReplayCost.Seconds(), p.FullRestart.Seconds())
	}

	fmt.Println("\n== A6: cross-tenant decode batching (same model, hist=100) ==")
	for _, p := range eval.AblationGlobalBatching(cfg.Device, models.GPTJ6B, 100, []int{1, 2, 4, 8, 16, 32}) {
		fmt.Printf("batch %3d: %6.2fx decode throughput\n", p.Batch, p.Speedup)
	}

	fmt.Println("\n== A8: serving simulation (64 GPT-J requests, 4×A100 pool) ==")
	fmt.Printf("%-22s %12s %12s %12s %10s\n", "policy", "mean lat", "p95 lat", "p95 TTFT", "req/s")
	for _, pol := range []eval.ServingPolicy{eval.ServeBlindFCFS, eval.ServePhaseAware, eval.ServePhaseAwareBatched} {
		r := eval.RunServing(eval.DefaultServingConfig(), pol)
		fmt.Printf("%-22s %11.2fs %11.2fs %11.2fs %10.2f\n", pol,
			r.MeanLat.Seconds(), r.P95Lat.Seconds(), r.P95TTFT.Seconds(), r.Throughput)
	}

	fmt.Println("\n== A10: online serving engine (live continuous batching, TinyGPT) ==")
	if r, err := eval.RunOnlineServing(context.Background(), eval.DefaultOnlineServingConfig()); err == nil {
		fmt.Printf("%d requests on %s: %d completed, occupancy mean %.2f / max %d\n",
			r.Requests, runtime.ModeSemAware, r.Completed, r.MeanOccupancy, r.MaxOccupancy)
		fmt.Printf("p50 lat %v | p95 lat %v | p95 TTFT %v | %.0f tok/s | makespan %v\n",
			r.P50Lat.Round(time.Microsecond), r.P95Lat.Round(time.Microsecond),
			r.P95TTFT.Round(time.Microsecond), r.TokensPerSec,
			r.Makespan.Round(time.Microsecond))
		fmt.Println("(measured engine counterpart to A8's scheduling simulation:")
		fmt.Println(" A8 predicts batching gains from the roofline; A10 observes the")
		fmt.Println(" merge factor the real engine achieves on the same open-loop load)")
	} else {
		fmt.Printf("online serving failed: %v\n", err)
	}

	fmt.Println("\n== A9: learned semantic lexicon (§5) ==")
	if lex, err := eval.LearnedLexicon(); err == nil {
		fmt.Printf("trained on %d labeled graphs; held-out accuracy %d/%d = %.0f%%\n",
			lex.TrainGraphs, lex.Correct, lex.TestGraphs, lex.Accuracy()*100)
	}

	fmt.Println("\n== A7: RPC-overhead sweep (decode, 50 tokens) ==")
	for _, prof := range []scheduler.RPCProfile{scheduler.TensorPipeProfile, scheduler.RDMAProfile} {
		c := cfg
		c.RPC = prof
		local := c.Run(runtime.ModeLocal)
		sem := c.Run(runtime.ModeSemAware)
		dkv := c.Run(runtime.ModeDeltaKV)
		fmt.Printf("%-20s local %7.2fs | sem %8.2fs (util %4.1f%%) | delta_kv %8.2fs\n",
			prof.Name, local.Decode.Latency.Seconds(),
			sem.Decode.Latency.Seconds(), sem.Decode.Util()*100,
			dkv.Decode.Latency.Seconds())
	}
}
