package eval

import (
	"context"
	"testing"
	"time"
)

// TestBrownoutServingSmoke runs the four-way brownout comparison at toy
// scale and checks the headline invariants: nothing fails in any run,
// every run's tokens are bit-identical to the healthy baseline, and the
// health-on run actually quarantined the browned lane.
func TestBrownoutServingSmoke(t *testing.T) {
	cfg := DefaultBrownoutServingConfig()
	cfg.Requests = 8
	cfg.MaxTokens = 4
	cfg.PauseDur = 2 * time.Millisecond
	cfg.HedgeFloor = 2 * time.Millisecond

	res, err := RunBrownoutServing(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range []BrownoutRun{res.Healthy, res.HealthOff, res.HealthOn, res.Hedged} {
		if run.Failed != 0 {
			t.Errorf("%s: %d failed requests, want 0 (fail-slow must not become fail-stop for the client)",
				run.Name, run.Failed)
		}
		if run.Completed != int64(cfg.Requests) {
			t.Errorf("%s: completed %d/%d", run.Name, run.Completed, cfg.Requests)
		}
		if !run.TokensMatch {
			t.Errorf("%s: token streams diverge from healthy baseline", run.Name)
		}
		if run.P99TTFT <= 0 || run.Goodput <= 0 {
			t.Errorf("%s: empty metrics: p99ttft=%v goodput=%.1f", run.Name, run.P99TTFT, run.Goodput)
		}
	}
	if res.Hedged.Hedged == 0 {
		t.Error("hedged run never hedged a prefill despite a browned primary lane")
	}
}
