package lazy

import (
	"testing"

	"genie/internal/srg"
	"genie/internal/tensor"
)

func TestParamAndInputLeaves(t *testing.T) {
	b := NewBuilder("t")
	w := b.Param("w", tensor.New(tensor.F32, 2, 3))
	x := b.Input("x", tensor.New(tensor.F32, 1, 2))
	g := b.Graph()
	if g.Node(w.ID()).Op != "param" || g.Node(w.ID()).Residency != srg.ResidencyPersistentWeight {
		t.Error("param leaf wrong")
	}
	if g.Node(x.ID()).Op != "input" || g.Node(x.ID()).Residency != srg.ResidencyExternalInput {
		t.Error("input leaf wrong")
	}
	if _, ok := b.ParamData("w"); !ok {
		t.Error("param data should be registered")
	}
	if _, ok := b.InputData("x"); !ok {
		t.Error("input data should be registered")
	}
}

func TestStatefulInputResidency(t *testing.T) {
	b := NewBuilder("t")
	kv := b.StatefulInput("kv.k", tensor.New(tensor.F32, 4, 8))
	if b.Graph().Node(kv.ID()).Residency != srg.ResidencyStatefulKVCache {
		t.Error("stateful input should carry kv-cache residency")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	b := NewBuilder("t")
	b.Param("w", tensor.New(tensor.F32, 1))
	defer func() {
		if recover() == nil {
			t.Error("duplicate param should panic")
		}
	}()
	b.Param("w", tensor.New(tensor.F32, 1))
}

func TestModuleScopesStampPathsAndPrefixRefs(t *testing.T) {
	b := NewBuilder("t")
	var w, y Value
	b.InModule("model", func() {
		b.InModule("layer0", func() {
			w = b.Param("w", tensor.New(tensor.F32, 2, 2))
			x := b.Input("x", tensor.New(tensor.F32, 1, 2))
			y = b.MatMul(x, w)
		})
	})
	g := b.Graph()
	if g.Node(w.ID()).Ref != "model.layer0.w" {
		t.Errorf("param ref %q", g.Node(w.ID()).Ref)
	}
	if g.Node(y.ID()).Module != "model.layer0" {
		t.Errorf("op module %q", g.Node(y.ID()).Module)
	}
	if b.ModulePath() != "" {
		t.Error("module stack should unwind")
	}
}

func TestPhaseScopes(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.New(tensor.F32, 2, 2))
	var inPhase, after Value
	b.InPhase(srg.PhaseLLMDecode, func() {
		inPhase = b.ReLU(x)
	})
	after = b.GELU(x)
	g := b.Graph()
	if g.Node(inPhase.ID()).Phase != srg.PhaseLLMDecode {
		t.Error("phase scope not applied")
	}
	if g.Node(after.ID()).Phase != srg.PhaseUnknown {
		t.Error("phase scope leaked")
	}
}

func TestShapeInference(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.New(tensor.F32, 3, 4))
	w := b.Param("w", tensor.New(tensor.F32, 4, 5))
	mm := b.MatMul(x, w)
	if !mm.Shape().Equal(tensor.Shape{3, 5}) {
		t.Errorf("matmul shape %v", mm.Shape())
	}
	k := b.Input("k", tensor.New(tensor.F32, 7, 4))
	st := b.MatMulT(x, k)
	if !st.Shape().Equal(tensor.Shape{3, 7}) {
		t.Errorf("matmulT shape %v", st.Shape())
	}
	c := b.Concat(0, x, x)
	if !c.Shape().Equal(tensor.Shape{6, 4}) {
		t.Errorf("concat shape %v", c.Shape())
	}
	s := b.SliceRows(x, 1, 3)
	if !s.Shape().Equal(tensor.Shape{2, 4}) {
		t.Errorf("slice shape %v", s.Shape())
	}
	tr := b.Transpose2D(x)
	if !tr.Shape().Equal(tensor.Shape{4, 3}) {
		t.Errorf("transpose shape %v", tr.Shape())
	}
	r := b.Reshape(x, 12)
	if !r.Shape().Equal(tensor.Shape{12}) {
		t.Errorf("reshape shape %v", r.Shape())
	}
	am := b.ArgmaxLast(mm)
	if am.Meta().DType != tensor.I64 {
		t.Error("argmax should be i64")
	}
}

func TestConvShapeInference(t *testing.T) {
	b := NewBuilder("t")
	img := b.Input("img", tensor.New(tensor.F32, 3, 32, 32))
	kern := b.Param("k", tensor.New(tensor.F32, 8, 3, 3, 3))
	c := b.Conv2D(img, kern, 1, 1)
	if !c.Shape().Equal(tensor.Shape{8, 32, 32}) {
		t.Errorf("conv shape %v", c.Shape())
	}
	p := b.MaxPool2D(c, 2)
	if !p.Shape().Equal(tensor.Shape{8, 16, 16}) {
		t.Errorf("pool shape %v", p.Shape())
	}
	g := b.MeanPoolAll(p)
	if !g.Shape().Equal(tensor.Shape{8}) {
		t.Errorf("meanpool shape %v", g.Shape())
	}
	if b.Graph().Node(c.ID()).Modality != srg.ModalityVision {
		t.Error("conv should be vision modality")
	}
}

func TestMatMulCostHints(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.New(tensor.F32, 10, 20))
	w := b.Param("w", tensor.New(tensor.F32, 20, 30))
	mm := b.MatMul(x, w)
	n := b.Graph().Node(mm.ID())
	if n.Cost.FLOPs != 2*10*20*30 {
		t.Errorf("matmul FLOPs %v", n.Cost.FLOPs)
	}
	if n.Cost.Bytes <= 0 {
		t.Error("matmul bytes should be positive")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.New(tensor.F32, 2, 3))
	w := b.Param("w", tensor.New(tensor.F32, 5, 4))
	for name, fn := range map[string]func(){
		"matmul":  func() { b.MatMul(x, w) },
		"slice":   func() { b.SliceRows(x, 0, 9) },
		"reshape": func() { b.Reshape(x, 7) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s mismatch should panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCrossBuilderValuePanics(t *testing.T) {
	b1 := NewBuilder("a")
	b2 := NewBuilder("b")
	x := b1.Input("x", tensor.New(tensor.F32, 2, 2))
	y := b2.Input("y", tensor.New(tensor.F32, 2, 2))
	defer func() {
		if recover() == nil {
			t.Error("cross-builder op should panic")
		}
	}()
	b1.Add(x, y)
}

func TestMarkOutput(t *testing.T) {
	b := NewBuilder("t")
	x := b.Input("x", tensor.New(tensor.F32, 2, 2))
	y := b.ReLU(x)
	b.MarkOutput(y)
	if len(b.Outputs()) != 1 || b.Outputs()[0] != y.ID() {
		t.Error("output not recorded")
	}
	if b.Graph().Node(y.ID()).Residency != srg.ResidencyExternalOutput {
		t.Error("output residency not set")
	}
}

func TestBindInputRebinds(t *testing.T) {
	b := NewBuilder("t")
	b.Input("x", tensor.New(tensor.F32, 1))
	repl := tensor.FromF32(tensor.Shape{1}, []float32{42})
	b.BindInput("x", repl)
	got, _ := b.InputData("x")
	if got.F32()[0] != 42 {
		t.Error("rebinding failed")
	}
}

func TestGraphIsValidAfterCapture(t *testing.T) {
	b := NewBuilder("valid")
	x := b.Input("x", tensor.New(tensor.F32, 4, 8))
	w := b.Param("w", tensor.New(tensor.F32, 8, 8))
	h := b.MatMul(x, w)
	h = b.GELU(h)
	b.MarkOutput(h)
	if err := b.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestCaptureOpPanicsTableDriven sweeps shape-inference panics across
// the capture surface: every malformed capture must fail at graph-build
// time, not at execution.
func TestCaptureOpPanicsTableDriven(t *testing.T) {
	mustPanic := func(name string, fn func(b *Builder)) {
		t.Helper()
		b := NewBuilder("panics")
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn(b)
	}
	mustPanic("matmulT mismatch", func(b *Builder) {
		x := b.Input("x", tensor.New(tensor.F32, 2, 3))
		y := b.Input("y", tensor.New(tensor.F32, 2, 4))
		b.MatMulT(x, y)
	})
	mustPanic("concat rank mismatch", func(b *Builder) {
		x := b.Input("x", tensor.New(tensor.F32, 2, 3))
		y := b.Input("y", tensor.New(tensor.F32, 3))
		b.Concat(0, x, y)
	})
	mustPanic("concat dim mismatch", func(b *Builder) {
		x := b.Input("x", tensor.New(tensor.F32, 2, 3))
		y := b.Input("y", tensor.New(tensor.F32, 2, 4))
		b.Concat(0, x, y)
	})
	mustPanic("concat empty", func(b *Builder) { b.Concat(0) })
	mustPanic("layernorm wrong gain", func(b *Builder) {
		x := b.Input("x", tensor.New(tensor.F32, 2, 8))
		g := b.Param("g", tensor.New(tensor.F32, 4))
		bb := b.Param("b", tensor.New(tensor.F32, 8))
		_ = bb
		b.LayerNorm(x, g, bb, 1e-5)
	})
	mustPanic("embedding bad table", func(b *Builder) {
		tbl := b.Param("t", tensor.New(tensor.F32, 4))
		ids := b.Input("i", tensor.FromI64(tensor.Shape{1}, []int64{0}))
		b.Embedding(tbl, ids)
	})
	mustPanic("embedding_bag no offsets", func(b *Builder) {
		tbl := b.Param("t", tensor.New(tensor.F32, 4, 2))
		ids := b.Input("i", tensor.FromI64(tensor.Shape{1}, []int64{0}))
		b.EmbeddingBag(tbl, ids, nil)
	})
	mustPanic("transpose rank", func(b *Builder) {
		b.Transpose2D(b.Input("x", tensor.New(tensor.F32, 3)))
	})
	mustPanic("argmax rank", func(b *Builder) {
		b.ArgmaxLast(b.Input("x", tensor.New(tensor.F32, 3)))
	})
	mustPanic("conv kernel mismatch", func(b *Builder) {
		img := b.Input("x", tensor.New(tensor.F32, 3, 8, 8))
		k := b.Param("k", tensor.New(tensor.F32, 4, 2, 3, 3))
		b.Conv2D(img, k, 1, 1)
	})
	mustPanic("conv empty output", func(b *Builder) {
		img := b.Input("x", tensor.New(tensor.F32, 1, 2, 2))
		k := b.Param("k", tensor.New(tensor.F32, 1, 1, 5, 5))
		b.Conv2D(img, k, 1, 0)
	})
	mustPanic("maxpool oversized", func(b *Builder) {
		b.MaxPool2D(b.Input("x", tensor.New(tensor.F32, 1, 2, 2)), 4)
	})
	mustPanic("meanpool rank", func(b *Builder) {
		b.MeanPoolAll(b.Input("x", tensor.New(tensor.F32, 4)))
	})
	mustPanic("rope odd dim", func(b *Builder) {
		b.RoPE(b.Input("x", tensor.New(tensor.F32, 2, 3)), 0, 0)
	})
	mustPanic("causal mask rank", func(b *Builder) {
		b.CausalMask(b.Input("x", tensor.New(tensor.F32, 3)), 0)
	})
	mustPanic("ewise broadcast", func(b *Builder) {
		x := b.Input("x", tensor.New(tensor.F32, 3))
		y := b.Input("y", tensor.New(tensor.F32, 4))
		b.Add(x, y)
	})
	mustPanic("annotate unknown node", func(b *Builder) {
		b.AnnotateStatefulNode(99, "k")
	})
}

func TestPhaseAndModuleStackUnderflow(t *testing.T) {
	b := NewBuilder("t")
	// Popping empty stacks is a no-op, not a crash.
	b.PopPhase()
	b.PopModule()
	if b.ModulePath() != "" {
		t.Error("module path should stay empty")
	}
}
