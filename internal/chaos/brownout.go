package chaos

import (
	"sync"
	"time"
)

// brownoutState is a faultConn's fail-slow bookkeeping: the per-conn
// operation counter driving periodic pauses, and the current creep
// level. Both advance only while the plan is armed, and neither ever
// touches the plan's PRNG — brownouts are scheduled purely by operation
// and byte counts, so the same workload over the same conn degrades
// identically on every run, and composing a brownout with the seeded
// probabilistic faults leaves their draw sequence bit-identical.
type brownoutState struct {
	mu    sync.Mutex
	ops   int64
	creep time.Duration
}

// brownoutEnabled reports whether any fail-slow latency mode is set.
func (f *faultConn) brownoutEnabled() bool {
	c := f.p.cfg
	return c.PauseEvery > 0 || c.CreepStep > 0
}

// brownoutDelay applies the pause and creep modes to one conn
// operation: every PauseEvery-th op freezes for PauseDur, and each op
// waits the creep level, which rises by CreepStep per op until
// CreepMax. Called before the underlying I/O so the victim sees the
// latency exactly where a sick NIC or a GC-bound peer would induce it.
func (f *faultConn) brownoutDelay() {
	if f.p.disarmed.Load() || !f.brownoutEnabled() {
		return
	}
	c := f.p.cfg
	var sleep time.Duration
	f.bo.mu.Lock()
	f.bo.ops++
	if c.PauseEvery > 0 && f.bo.ops%c.PauseEvery == 0 {
		sleep += c.PauseDur
		f.p.note("pause")
	}
	if c.CreepStep > 0 {
		f.bo.creep += c.CreepStep
		if c.CreepMax > 0 && f.bo.creep > c.CreepMax {
			f.bo.creep = c.CreepMax
		}
		sleep += f.bo.creep
		f.p.note("creep")
	}
	f.bo.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
}

// throttle paces n bytes at ThrottleBytesPerSec by sleeping the time
// the bytes would take on a link of that speed — a stateless pacing
// model (each op pays its full serialization delay) chosen over a token
// bucket because it needs no wall-clock reads, keeping the injected
// schedule a pure function of the byte sequence.
func (f *faultConn) throttle(n int) {
	rate := f.p.cfg.ThrottleBytesPerSec
	if rate <= 0 || n <= 0 || f.p.disarmed.Load() {
		return
	}
	f.p.note("throttle")
	time.Sleep(time.Duration(float64(n) / float64(rate) * float64(time.Second)))
}
