package runtime

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"testing"

	"genie/internal/backend"
	"genie/internal/device"
	"genie/internal/models"
	"genie/internal/transport"
)

// startBackend spins a real TCP backend and returns a connected client.
func startBackend(t *testing.T) (*transport.Client, *backend.Server) {
	t.Helper()
	srv := backend.NewServer(device.A100)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = srv.Listen(l) }()
	conn, err := transport.Dial(l.Addr().String(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return transport.NewClient(conn), srv
}

func newRunner(t *testing.T, seed int64) (*LLMRunner, *backend.Server) {
	t.Helper()
	client, srv := startBackend(t)
	rng := rand.New(rand.NewSource(seed))
	return &LLMRunner{
		Model:    models.NewGPT(rng, models.TinyGPT),
		EP:       client,
		Counters: client.Conn().Counters(),
	}, srv
}

var testPrompt = []int64{5, 17, 42, 3, 9, 28, 54}

// TestAllModesProduceIdenticalTokens is the repository's central
// correctness claim: the semantic optimizations change WHERE computation
// runs and WHAT moves, never the result. Greedy decoding over
// deterministic kernels must yield the same tokens in all four modes.
func TestAllModesProduceIdenticalTokens(t *testing.T) {
	const steps = 6
	results := map[Mode][]int64{}
	for _, mode := range []Mode{ModeLocal, ModeNaive, ModeDeltaKV, ModeSemAware} {
		r, _ := newRunner(t, 99) // same seed -> same weights
		res, err := r.Generate(mode, testPrompt, steps)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if len(res.Tokens) != steps {
			t.Fatalf("%s: %d tokens", mode, len(res.Tokens))
		}
		results[mode] = res.Tokens
	}
	want := results[ModeLocal]
	for mode, got := range results {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s diverges from local at step %d: %v vs %v",
					mode, i, got, want)
			}
		}
	}
}

// TestTrafficOrdering checks the paper's central quantitative claim at
// small scale: naive moves orders of magnitude more bytes than ΔKV,
// which moves more than semantics-aware.
func TestTrafficOrdering(t *testing.T) {
	const steps = 4
	traffic := map[Mode]int64{}
	for _, mode := range []Mode{ModeNaive, ModeDeltaKV, ModeSemAware} {
		r, _ := newRunner(t, 7)
		res, err := r.Generate(mode, testPrompt, steps)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		traffic[mode] = res.Prefill.NetBytes + res.Decode.NetBytes
	}
	if traffic[ModeNaive] <= traffic[ModeDeltaKV] {
		t.Errorf("naive (%d) should move more than delta_kv (%d)",
			traffic[ModeNaive], traffic[ModeDeltaKV])
	}
	if traffic[ModeDeltaKV] <= traffic[ModeSemAware] {
		t.Errorf("delta_kv (%d) should move more than semantics_aware (%d)",
			traffic[ModeDeltaKV], traffic[ModeSemAware])
	}
	// Naive re-uploads weights every step: at least steps× the weight
	// footprint.
	weightBytes := int64(0)
	r, _ := newRunner(t, 7)
	b, _ := r.Model.BuildPrefill(testPrompt)
	for _, n := range b.Graph().Nodes() {
		if n.Op == "param" {
			weightBytes += n.Output.Bytes()
		}
	}
	if traffic[ModeNaive] < int64(steps)*weightBytes {
		t.Errorf("naive traffic %d below %d× weights (%d)",
			traffic[ModeNaive], steps, weightBytes)
	}
}

// TestRPCCallOrdering checks the per-step call structure: ΔKV dispatches
// per module (L+2 calls per step) while semantics-aware fuses each step
// into one call.
func TestRPCCallOrdering(t *testing.T) {
	const steps = 3
	calls := map[Mode]int64{}
	for _, mode := range []Mode{ModeDeltaKV, ModeSemAware} {
		r, _ := newRunner(t, 11)
		res, err := r.Generate(mode, testPrompt, steps)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		calls[mode] = res.Decode.RPCCalls
	}
	// Prefill emits the first token, so steps tokens take steps-1 decode
	// executions.
	execs := int64(steps - 1)
	layers := int64(models.TinyGPT.Layers)
	if want := execs * (layers + 2); calls[ModeDeltaKV] != want {
		t.Errorf("delta_kv decode calls = %d, want %d", calls[ModeDeltaKV], want)
	}
	if calls[ModeSemAware] != execs {
		t.Errorf("semantics_aware decode calls = %d, want %d", calls[ModeSemAware], execs)
	}
}

// TestSemAwareKeepsCacheRemote verifies no KV bytes cross the wire in
// semantics-aware decode: the per-step traffic must be far below the
// cache size.
func TestSemAwareKeepsCacheRemote(t *testing.T) {
	r, srv := newRunner(t, 23)
	res, err := r.Generate(ModeSemAware, testPrompt, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Remote store must hold 2 cache objects per layer.
	st := srv.Stats()
	wantObjects := int64(2*models.TinyGPT.Layers) + countParams(r)
	if st.ResidentCount != wantObjects {
		t.Errorf("resident objects = %d, want %d", st.ResidentCount, wantObjects)
	}
	// Per-step decode traffic = SRG shipment + token up + logits down,
	// independent of history length. Bound it by the graph encoding plus
	// a few logits rows — crucially it must NOT include the KV cache.
	// (5 tokens = prefill + 4 decode executions.)
	perStep := res.Decode.NetBytes / 4
	logits := int64(models.TinyGPT.Vocab * 4)
	b, _ := r.Model.BuildDecodeStep(0, len(testPrompt), len(testPrompt), emptyCaches(r.Model))
	var enc countBuf
	if err := b.Graph().Encode(&enc); err != nil {
		t.Fatal(err)
	}
	if perStep > enc.n+4*logits+4096 {
		t.Errorf("semantics-aware per-step traffic %d too high (graph=%d logits=%d)",
			perStep, enc.n, logits)
	}
	// And it must stay well below one layer's cache after 12 tokens.
	cacheBytes := models.TinyGPT.KVBytes(len(testPrompt) + 5)
	if perStep-enc.n > cacheBytes {
		t.Errorf("per-step payload %d suggests cache is crossing the wire (cache=%d)",
			perStep-enc.n, cacheBytes)
	}
}

type countBuf struct{ n int64 }

func (c *countBuf) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

func countParams(r *LLMRunner) int64 {
	b, _ := r.Model.BuildPrefill([]int64{0})
	var n int64
	for _, node := range b.Graph().Nodes() {
		if node.Op == "param" {
			n++
		}
	}
	return n
}

// TestDeltaKVLinearGrowthVsSemAwareFlat reproduces Table 3's shape at
// tiny scale using wire bytes (a latency proxy stable across machines):
// ΔKV per-step data grows with history; semantics-aware stays flat.
func TestDeltaKVLinearGrowthVsSemAwareFlat(t *testing.T) {
	perStepBytes := func(mode Mode, steps int) int64 {
		r, _ := newRunner(t, 31)
		res, err := r.Generate(mode, testPrompt, steps)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		return res.Decode.NetBytes / int64(steps-1) // prefill emits token 0
	}
	semShort := perStepBytes(ModeSemAware, 2)
	semLong := perStepBytes(ModeSemAware, 10)
	if diff := semLong - semShort; diff > semShort/5 {
		t.Errorf("semantics-aware per-step bytes grew %d -> %d", semShort, semLong)
	}
}

func TestGenerateInputValidation(t *testing.T) {
	r, _ := newRunner(t, 1)
	if _, err := r.Generate(ModeSemAware, nil, 3); err == nil {
		t.Error("empty prompt should fail")
	}
	if _, err := r.Generate(ModeSemAware, testPrompt, -1); err == nil {
		t.Error("negative steps should fail")
	}
	if _, err := r.Generate(Mode(99), testPrompt, 1); err == nil {
		t.Error("unknown mode should fail")
	}
	local := &LLMRunner{Model: r.Model}
	if _, err := local.Generate(ModeNaive, testPrompt, 1); err == nil {
		t.Error("remote modes require an endpoint")
	}
}

func TestModeStringRoundTrip(t *testing.T) {
	for _, m := range []Mode{ModeLocal, ModeNaive, ModeDeltaKV, ModeSemAware} {
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Errorf("mode round trip %s: %v", m, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("bogus mode should fail")
	}
}

func TestMetricsUtilization(t *testing.T) {
	m := Metrics{Wall: 100, GPUBusy: 25}
	if m.Utilization() != 0.25 {
		t.Errorf("utilization %v", m.Utilization())
	}
	if (Metrics{}).Utilization() != 0 {
		t.Error("zero wall should be zero utilization")
	}
	var sum Metrics
	sum.Add(m)
	sum.Add(m)
	if sum.Wall != 200 || sum.GPUBusy != 50 {
		t.Errorf("add: %+v", sum)
	}
}

func TestZeroStepsPrefillOnly(t *testing.T) {
	r, _ := newRunner(t, 3)
	res, err := r.Generate(ModeSemAware, testPrompt, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tokens) != 0 || res.Prefill.RPCCalls == 0 {
		t.Errorf("prefill-only run: %+v", res)
	}
	if res.Decode.RPCCalls != 0 {
		t.Error("no decode calls expected")
	}
}

func TestInstallWeightsCountsBytes(t *testing.T) {
	client, _ := startBackend(t)
	rng := rand.New(rand.NewSource(5))
	m := models.NewGPT(rng, models.TinyGPT)
	b, _ := m.BuildPrefill([]int64{1})
	total, err := InstallWeights(client, b)
	if err != nil {
		t.Fatal(err)
	}
	if total != m.NumParams()*4 {
		t.Errorf("installed %d bytes, want %d", total, m.NumParams()*4)
	}
}

func TestStreamDeliversSameTokensAsGenerate(t *testing.T) {
	r, _ := newRunner(t, 55)
	want, err := r.Generate(ModeSemAware, testPrompt, 5)
	if err != nil {
		t.Fatal(err)
	}

	r2, _ := newRunner(t, 55)
	var got []int64
	for tok := range r2.Stream(context.Background(), ModeSemAware, testPrompt, 5) {
		if tok.Err != nil {
			t.Fatal(tok.Err)
		}
		if tok.Index != len(got) {
			t.Fatalf("out-of-order token index %d", tok.Index)
		}
		got = append(got, tok.ID)
	}
	if len(got) != len(want.Tokens) {
		t.Fatalf("streamed %d tokens, want %d", len(got), len(want.Tokens))
	}
	for i := range got {
		if got[i] != want.Tokens[i] {
			t.Fatalf("stream diverges at %d: %v vs %v", i, got, want.Tokens)
		}
	}
}

func TestStreamCancellationStopsEarly(t *testing.T) {
	r, _ := newRunner(t, 56)
	ctx, cancel := context.WithCancel(context.Background())
	ch := r.Stream(ctx, ModeSemAware, testPrompt, 50)

	var received int
	for tok := range ch {
		if tok.Err != nil {
			if !errors.Is(tok.Err, ErrStopped) {
				t.Fatalf("terminal error %v, want ErrStopped", tok.Err)
			}
			break
		}
		received++
		if received == 3 {
			cancel()
		}
	}
	if received < 3 || received >= 50 {
		t.Errorf("received %d tokens before cancellation took effect", received)
	}
	cancel()
}

func TestStreamLocalMode(t *testing.T) {
	r, _ := newRunner(t, 57)
	n := 0
	for tok := range r.Stream(context.Background(), ModeLocal, testPrompt, 4) {
		if tok.Err != nil {
			t.Fatal(tok.Err)
		}
		n++
	}
	if n != 4 {
		t.Errorf("streamed %d tokens, want 4", n)
	}
}

func TestOnTokenStopReturnsPartialResult(t *testing.T) {
	r, _ := newRunner(t, 58)
	count := 0
	r.OnToken = func(int64) bool {
		count++
		return count < 2 // stop after two tokens
	}
	res, err := r.Generate(ModeSemAware, testPrompt, 10)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if res == nil || len(res.Tokens) != 2 {
		t.Errorf("partial result %+v", res)
	}
}
