package serve

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sync/atomic"
	"time"

	"genie/internal/obs"
	"genie/internal/runtime"
	"genie/internal/transport"
)

// lane is one backend's dispatch loop. A lane owns its runner's
// connection outright (the transport is a synchronous RPC channel), so
// everything on a backend — prefills and decode steps of every resident
// request — executes from this single goroutine. Continuous batching is
// the loop structure itself: each iterate() is one step boundary where
// finished requests leave, queued requests join (prefill), and every
// active request advances exactly one decode step.
//
// Every lane carries a circuit breaker for its endpoint: consecutive
// transport-level failures open it, an open lane stops pulling from the
// queue (its requests re-queue to healthy lanes), and after the
// cooldown a single probe request decides whether it rejoins.
type lane struct {
	e       *Engine
	name    string
	runner  *runtime.LLMRunner
	breaker *transport.Breaker
	active  []*activeReq
	activeN atomic.Int32
	wake    chan struct{}

	// failures counts backend-loss errors observed on this lane;
	// requeues counts requests this lane handed back to the queue. Both
	// surface per-backend in /stats.
	failures atomic.Int64
	requeues atomic.Int64
}

func newLane(e *Engine, name string, r *runtime.LLMRunner) *lane {
	l := &lane{e: e, name: name, runner: r, wake: make(chan struct{}, 1)}
	l.breaker = transport.NewBreaker(transport.BreakerConfig{
		Threshold: e.cfg.BreakerThreshold,
		Cooldown:  e.cfg.BreakerCooldown,
		Now:       e.clock.Now,
		// The default classifier ignores remote errors (an application
		// error doesn't mean the backend is down), but serving lanes must
		// also trip on server-side state loss — a crashed backend answers
		// politely while having lost every resident object.
		IsFailure: func(err error) bool {
			if err == nil || errors.Is(err, context.Canceled) {
				return false
			}
			return lostBackend(err) || transport.IsFrameError(err)
		},
	})
	l.breaker.Instrument(e.cfg.Metrics, name)
	return l
}

// run is the production loop: iterate while there is work, sleep until
// nudged otherwise. The Gosched between iterations keeps admission
// live on small GOMAXPROCS: a busy lane ping-ponging with an
// in-process backend would otherwise monopolize the scheduler and
// starve Submit callers, serializing a burst that should batch.
func (l *lane) run() {
	defer l.e.wg.Done()
	for {
		if l.iterate() {
			goruntime.Gosched()
			continue
		}
		if wait := l.idleWait(); wait > 0 {
			// Suspect endpoint with work still queued: wake up to probe
			// when the breaker's cooldown lapses even if nobody nudges.
			t := time.NewTimer(wait)
			select {
			case <-l.wake:
				t.Stop()
			case <-t.C:
			case <-l.e.stop:
				t.Stop()
				return
			}
			continue
		}
		select {
		case <-l.wake:
		case <-l.e.stop:
			return
		}
	}
}

// idleWait returns how long an idle lane should sleep before rechecking
// the queue on its own; 0 means sleep until nudged. Nonzero only while
// this lane's breaker blocks admission and work is waiting — the one
// state where no future nudge is guaranteed to arrive.
func (l *lane) idleWait() time.Duration {
	if l.breaker.State() == transport.BreakerClosed {
		return 0
	}
	l.e.mu.Lock()
	queued := l.e.queues.depth() > 0
	l.e.mu.Unlock()
	if !queued {
		return 0
	}
	if ra := l.breaker.RetryAfter(); ra > 0 {
		return ra
	}
	return 10 * time.Millisecond
}

// iterate executes one step boundary; it reports whether any work was
// done (false = the lane is idle and may sleep).
func (l *lane) iterate() bool {
	worked := l.admit()
	if len(l.active) > 0 {
		worked = true
		stepped := 0
		keep := l.active[:0]
		for _, ar := range l.active {
			didStep, stay := l.advance(ar)
			if didStep {
				stepped++
			}
			if stay {
				keep = append(keep, ar)
			}
		}
		for i := len(keep); i < len(l.active); i++ {
			l.active[i] = nil
		}
		l.active = keep
		l.activeN.Store(int32(len(l.active)))
		l.e.stats.occupancy(stepped)
	}
	l.e.maybeDrained()
	return worked
}

// admit moves queued requests into the running batch until it is full,
// running each newcomer's prefill. An open breaker stops admission cold
// (queued work stays for healthy lanes); once the cooldown lapses the
// first dequeued request doubles as the half-open probe. Reports
// whether anything was admitted or retired.
func (l *lane) admit() bool {
	worked := false
	for len(l.active) < l.e.cfg.MaxBatch {
		if l.breaker.State() == transport.BreakerOpen && l.breaker.RetryAfter() > 0 {
			break // cooling down; don't touch the queue
		}
		ar := l.e.dequeue()
		if ar == nil {
			break
		}
		worked = true
		// Queue wait ends the moment a lane picks the request up.
		ar.qspan.End()
		ar.qspan = nil
		if l.retireIfDone(ar) {
			continue
		}
		if err := l.breaker.Allow(); err != nil {
			// Lost the probe-slot race; hand the request back untouched.
			_, ar.qspan = obs.StartSpan(ar.tctx, "serve.queue")
			l.e.requeue(l, ar)
			break
		}
		if !l.prefill(ar) {
			continue // retired at admission (cancelled/expired/failed/re-queued)
		}
		l.active = append(l.active, ar)
		l.e.noteJoin(ar)
	}
	l.activeN.Store(int32(len(l.active)))
	return worked
}

// opCtx bounds one remote operation with the engine's per-op timeout.
func (l *lane) opCtx(parent context.Context) (context.Context, context.CancelFunc) {
	if parent == nil {
		// Submit tolerates a nil caller context (retireIfDone guards for
		// it); WithTimeout does not, so mint the root here.
		//lint:ignore ctxflow nil-context fallback, not a propagation hole
		parent = context.Background()
	}
	if l.e.cfg.OpTimeout <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, l.e.cfg.OpTimeout)
}

// prefill runs a newcomer's prompt phase; it reports whether the
// request joined the batch (false = already completed or retired).
func (l *lane) prefill(ar *activeReq) bool {
	// The session carries the request span: decode-step spans parent
	// under serve.request; the prefill itself nests under serve.prefill.
	sess, err := l.runner.NewScopedSessionCtx(ar.tctx, l.e.cfg.Mode, fmt.Sprintf("req%d/", ar.id))
	if err != nil {
		l.breaker.Record(err)
		l.fail(ar, err)
		return false
	}
	ar.sess = sess
	pctx, pspan := obs.StartSpan(ar.tctx, "serve.prefill")
	pspan.SetAttr("backend", l.name)
	opctx, cancel := l.opCtx(pctx)
	first, err := sess.PrefillCtx(opctx, ar.prompt)
	cancel()
	pspan.End()
	l.breaker.Record(err)
	if err != nil {
		l.fail(ar, err)
		return false
	}
	if ar.ttft == 0 {
		// Only the first attempt defines TTFT; a re-queued request's
		// client saw its first token before the failover.
		ar.ttft = l.e.clock.Now().Sub(ar.arrival)
		l.e.stats.recordTTFT(ar.ttft)
	}
	l.emit(ar, first)
	if len(ar.tokens) >= ar.maxTokens {
		l.finish(ar, nil, outcomeCompleted)
		return false
	}
	return true
}

// advance runs one request's share of a decode iteration. didStep
// reports whether a decode step executed (the occupancy sample); stay
// whether the request remains in the batch.
func (l *lane) advance(ar *activeReq) (didStep, stay bool) {
	if l.retireIfDone(ar) {
		return false, false
	}
	t0 := l.e.clock.Now()
	opctx, cancel := l.opCtx(ar.tctx)
	tok, err := ar.sess.StepCtx(opctx)
	cancel()
	l.e.stats.recordStep(l.e.clock.Now().Sub(t0))
	l.breaker.Record(err)
	if err != nil {
		l.fail(ar, err)
		return false, false
	}
	l.emit(ar, tok)
	if len(ar.tokens) >= ar.maxTokens {
		l.finish(ar, nil, outcomeCompleted)
		return true, false
	}
	return true, true
}

// lostBackend classifies errors that mean the backend (not the request)
// is at fault: transient transport failures, per-op timeouts, and
// server-side state loss. These justify a re-queue; anything else fails
// the request.
func lostBackend(err error) bool {
	return transport.Retryable(err) || transport.IsStateLoss(err) ||
		errors.Is(err, context.DeadlineExceeded)
}

// fail routes an execution error: the request's own expiry/cancel wins,
// backend loss re-queues within budget (then sheds 503), anything else
// fails the request outright.
func (l *lane) fail(ar *activeReq, err error) {
	if l.retireIfDone(ar) {
		return
	}
	if !lostBackend(err) {
		l.finish(ar, err, outcomeFailed)
		return
	}
	l.failures.Add(1)
	if ar.retries >= l.e.cfg.RetryBudget {
		l.finish(ar, fmt.Errorf("%w: %d attempt(s) exhausted on %s: %v",
			ErrBackendUnavailable, ar.retries+1, l.name, err), outcomeUnavailable)
		return
	}
	ar.retries++
	l.requeue(ar)
}

// requeue hands a backend-loss victim back to the admission queue. Its
// session restarts from scratch on whichever lane picks it up; the
// deterministic decode regenerates the same prefix, and emit suppresses
// tokens the client already received.
func (l *lane) requeue(ar *activeReq) {
	if ar.sess != nil {
		_ = ar.sess.Close()
		ar.sess = nil
	}
	l.e.noteLeave(ar)
	if len(ar.tokens) > ar.replayed {
		ar.replayed = len(ar.tokens)
	}
	ar.tokens = nil
	l.requeues.Add(1)
	l.e.stats.requeued.Inc()
	_, ar.qspan = obs.StartSpan(ar.tctx, "serve.queue")
	l.e.requeue(l, ar)
}

// retireIfDone retires a cancelled or deadline-expired request at this
// step boundary; it reports whether the request was retired.
func (l *lane) retireIfDone(ar *activeReq) bool {
	if ar.ctx != nil && ar.ctx.Err() != nil {
		l.finish(ar, ar.ctx.Err(), outcomeCancelled)
		return true
	}
	if !ar.deadline.IsZero() && l.e.clock.Now().After(ar.deadline) {
		l.finish(ar, ErrDeadlineExceeded, outcomeExpired)
		return true
	}
	return false
}

// emit records a generated token and invokes the streaming hook —
// except for the replayed prefix of a re-queued request, whose client
// already holds those tokens.
func (l *lane) emit(ar *activeReq, tok int64) {
	idx := len(ar.tokens)
	ar.tokens = append(ar.tokens, tok)
	if idx < ar.replayed {
		return
	}
	l.e.stats.tokensOut.Inc()
	if ar.onToken != nil {
		ar.onToken(Token{Index: idx, ID: tok})
	}
}

// finish retires a request: releases its per-request remote state,
// builds the result (partial tokens included on expiry/cancel), bumps
// the outcome counter, closes the request span, and unblocks the
// submitter.
func (l *lane) finish(ar *activeReq, err error, outcome string) {
	if ar.sess != nil {
		_ = ar.sess.Close()
	}
	l.e.noteLeave(ar)
	lat := l.e.clock.Now().Sub(ar.arrival)
	if err == nil {
		l.e.stats.recordLatency(lat)
	}
	l.e.stats.countOutcome(outcome)
	// A request retired while still queued never had its queue span
	// ended by prefill.
	ar.qspan.End()
	ar.qspan = nil
	ar.span.SetAttr("outcome", outcome)
	ar.span.SetAttrInt("tokens", int64(len(ar.tokens)))
	ar.span.SetAttr("backend", l.name)
	ar.span.End()
	ar.complete(&Result{
		Tokens:  ar.tokens,
		TTFT:    ar.ttft,
		Latency: lat,
		Backend: l.name,
	}, err)
}
