// Package transport implements Genie's network datapath: a length-prefixed
// binary RPC protocol carrying tensors, SRG subgraphs, and remote-object
// handles between clients and disaggregated accelerator servers (§3.4).
//
// Real bytes move over real sockets; the package also provides a pinned
// buffer pool (the DPDK-managed-memory analogue) and a link shaper that
// emulates the paper's 25 Gbps testbed at laptop scale. Per-conn traffic
// counters feed the evaluation's network-volume metrics.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"genie/internal/srg"
	"genie/internal/tensor"
)

// MsgType identifies a frame's payload.
type MsgType uint8

// Protocol messages.
const (
	// MsgPing / MsgPong measure RTT and probe liveness.
	MsgPing MsgType = iota + 1
	MsgPong
	// MsgUpload stores a tensor server-side under a key.
	MsgUpload
	// MsgUploadOK acknowledges with the object's epoch.
	MsgUploadOK
	// MsgExec runs an SRG subgraph with bindings.
	MsgExec
	// MsgExecOK returns requested results.
	MsgExecOK
	// MsgFetch retrieves a resident object by key.
	MsgFetch
	// MsgTensor is a fetched tensor.
	MsgTensor
	// MsgFree releases a resident object.
	MsgFree
	// MsgFreeOK acknowledges a free.
	MsgFreeOK
	// MsgErr carries a server-side error string.
	MsgErr
	// MsgCrash injects a failure: the server drops all resident state and
	// advances its epoch (fault-tolerance testing, §3.5).
	MsgCrash
	// MsgCrashOK acknowledges injected failure.
	MsgCrashOK
	// MsgStats requests server metrics.
	MsgStats
	// MsgStatsOK returns them.
	MsgStatsOK
	// MsgHello negotiates optional wire features (compression, dedup,
	// delta encoding); the payload is a u32 feature mask.
	MsgHello
	// MsgHelloOK grants the intersection of requested and supported
	// features back to the client.
	MsgHelloOK
	// MsgUploadRef stores a tensor the server has already seen, by
	// content hash alone — the dedup fast path (DESIGN.md §11).
	MsgUploadRef
	// MsgUploadDelta stores a new version of an existing key as an
	// XOR/run-length delta against the previous bytes.
	MsgUploadDelta
)

// maxFrame bounds a frame payload (1 GiB) against malformed peers.
const maxFrame = 1 << 30

// FrameError marks a malformed wire frame or payload: an oversize
// length prefix, a truncated buffer, or a field that fails validation.
// Frame errors are fatal for the stream — after one, the reader can no
// longer trust frame boundaries — so Conn closes itself on receipt
// (see Conn.RecvEnv) and Classify reports them as ClassFatal.
type FrameError struct{ msg string }

// Error implements the error interface.
func (e *FrameError) Error() string { return e.msg }

// frameErrorf builds a FrameError with fmt-style formatting.
func frameErrorf(format string, args ...any) *FrameError {
	return &FrameError{msg: fmt.Sprintf(format, args...)}
}

// IsFrameError reports whether err (or anything it wraps) is a
// malformed-frame error.
func IsFrameError(err error) bool {
	var fe *FrameError
	return errors.As(err, &fe)
}

// envFlag marks a frame whose header carries a trace envelope. MsgType
// values stay well below 0x80, so the bit is free in the type byte and
// untraced frames keep the original 5-byte wire format — tracing
// disabled costs zero bytes on the wire.
const envFlag = 0x80

// frameHeader is the untraced header size: u32 len | u8 type.
const frameHeader = 5

// envSize is the extra header carried by traced frames: u64 trace |
// u64 span.
const envSize = 16

// Envelope carries trace context across the wire so a request's span
// tree survives the process boundary: the server parents its spans
// under the client-side span that issued the RPC. The zero Envelope
// means "not traced" and adds no bytes to the frame.
type Envelope struct {
	Trace uint64
	Span  uint64
}

// Zero reports whether the envelope carries no trace context.
func (e Envelope) Zero() bool { return e.Trace == 0 }

// wireSize returns the total frame size for a payload under env.
func (e Envelope) wireSize(payload int) int64 {
	if e.Zero() {
		return int64(payload) + frameHeader
	}
	return int64(payload) + frameHeader + envSize
}

// WriteFrame writes one untraced length-prefixed frame: u32 len |
// u8 type | payload.
func WriteFrame(w io.Writer, t MsgType, payload []byte) error {
	return WriteFrameEnv(w, t, Envelope{}, payload)
}

// WriteFrameEnv writes one frame, attaching the trace envelope when it
// is non-zero: u32 len | u8 type|envFlag | u64 trace | u64 span |
// payload.
func WriteFrameEnv(w io.Writer, t MsgType, env Envelope, payload []byte) error {
	if len(payload) > maxFrame {
		return frameErrorf("transport: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHeader + envSize]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	n := frameHeader
	if env.Zero() {
		hdr[4] = byte(t)
	} else {
		hdr[4] = byte(t) | envFlag
		binary.LittleEndian.PutUint64(hdr[5:13], env.Trace)
		binary.LittleEndian.PutUint64(hdr[13:21], env.Span)
		n += envSize
	}
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, discarding any trace envelope.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	t, _, payload, err := ReadFrameEnv(r)
	return t, payload, err
}

// ReadFrameEnv reads one frame plus its trace envelope (zero when the
// peer sent an untraced frame). Compressed frames (compFlag, sent only
// after feature negotiation) are transparently inflated.
//
// Flag bits in the type byte are only meaningful on frames this
// protocol emits, which always carry a valid message type under them.
// A stripped type outside the protocol (e.g. a peer probing with 0xfa)
// is NOT a traced or compressed frame: the byte passes through
// untouched — no envelope read, no inflation — so the dispatch layer
// rejects it instead of the reader stalling on bytes that were never
// sent.
func ReadFrameEnv(r io.Reader) (MsgType, Envelope, []byte, error) {
	t, env, payload, _, err := readFrameEnvFeat(r)
	return t, env, payload, err
}

// validType reports whether t is a message this protocol defines.
func validType(t MsgType) bool { return t >= MsgPing && t <= MsgUploadDelta }

// KindName returns the stable lowercase label for a message type, used
// for per-kind telemetry series.
func KindName(t MsgType) string {
	switch t {
	case MsgPing:
		return "ping"
	case MsgPong:
		return "pong"
	case MsgUpload:
		return "upload"
	case MsgUploadOK:
		return "upload_ok"
	case MsgExec:
		return "exec"
	case MsgExecOK:
		return "exec_ok"
	case MsgFetch:
		return "fetch"
	case MsgTensor:
		return "tensor"
	case MsgFree:
		return "free"
	case MsgFreeOK:
		return "free_ok"
	case MsgErr:
		return "err"
	case MsgCrash:
		return "crash"
	case MsgCrashOK:
		return "crash_ok"
	case MsgStats:
		return "stats"
	case MsgStatsOK:
		return "stats_ok"
	case MsgHello:
		return "hello"
	case MsgHelloOK:
		return "hello_ok"
	case MsgUploadRef:
		return "upload_ref"
	case MsgUploadDelta:
		return "upload_delta"
	}
	return "unknown"
}

// --- primitive codec helpers ---

type buf struct{ b []byte }

// str writes a u16-length-prefixed string. Strings beyond the 64 KiB
// prefix limit are truncated consistently (prefix and bytes together) so
// the stream can never desynchronize; object keys and refs are far below
// the limit in practice.
func (e *buf) str(s string) {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	var l [2]byte
	binary.LittleEndian.PutUint16(l[:], uint16(len(s)))
	e.b = append(e.b, l[:]...)
	e.b = append(e.b, s...)
}

func (e *buf) u8(v uint8)   { e.b = append(e.b, v) }
func (e *buf) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *buf) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }

func (e *buf) tensor(t *tensor.Tensor) {
	e.u8(uint8(t.DType()))
	e.u8(uint8(t.Shape().Rank()))
	for _, d := range t.Shape() {
		e.u32(uint32(d))
	}
	e.u32(uint32(len(t.Bytes())))
	e.b = append(e.b, t.Bytes()...)
	// Quantized tensors carry their scale section inline: u8 axis,
	// u32 count, count×f32. Only the I8 dtype — which predates nothing
	// on this wire — has the section, so every legacy encoding is
	// byte-identical.
	if t.DType() == tensor.I8 {
		sc := t.Scales()
		e.u8(uint8(t.QuantAxis()))
		e.u32(uint32(len(sc)))
		for _, s := range sc {
			e.u32(f32ToBits(s))
		}
	}
}

type rdr struct {
	b   []byte
	off int
	err error
}

func (r *rdr) fail(msg string) {
	if r.err == nil {
		r.err = frameErrorf("transport: %s at offset %d", msg, r.off)
	}
}

func (r *rdr) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.fail("short buffer")
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *rdr) str() string {
	b := r.take(2)
	if b == nil {
		return ""
	}
	n := int(binary.LittleEndian.Uint16(b))
	s := r.take(n)
	return string(s)
}

func (r *rdr) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *rdr) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *rdr) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *rdr) tensor() *tensor.Tensor {
	dt := tensor.DType(r.u8())
	if dt > tensor.I8 {
		r.fail("invalid dtype byte")
		return nil
	}
	rank := int(r.u8())
	if rank > 16 {
		r.fail("rank too large")
		return nil
	}
	shape := make(tensor.Shape, rank)
	for i := range shape {
		shape[i] = int(r.u32())
	}
	n := int(r.u32())
	data := r.take(n)
	if r.err != nil {
		return nil
	}
	// Copy: the frame buffer is reused by callers.
	cp := make([]byte, n)
	copy(cp, data)
	t, err := tensor.FromBytes(dt, shape, cp)
	if err != nil {
		r.fail(err.Error())
		return nil
	}
	if dt == tensor.I8 {
		axis := int(r.u8())
		ns := int(r.u32())
		if r.err != nil {
			return nil
		}
		if ns > 0 {
			if axis >= len(shape) || ns != shape[axis] {
				r.fail("scale count does not match quant axis")
				return nil
			}
			scales := make([]float32, ns)
			for i := range scales {
				scales[i] = f32FromBits(r.u32())
			}
			if r.err != nil {
				return nil
			}
			if err := t.AttachScales(axis, scales); err != nil {
				r.fail(err.Error())
				return nil
			}
		}
	}
	return t
}

// --- message payloads ---

// Upload stores a tensor under Key on the server.
type Upload struct {
	Key  string
	Data *tensor.Tensor
}

// EncodeUpload serializes an Upload payload.
func EncodeUpload(u *Upload) []byte {
	var e buf
	e.str(u.Key)
	e.tensor(u.Data)
	return e.b
}

// DecodeUpload parses an Upload payload.
func DecodeUpload(b []byte) (*Upload, error) {
	r := rdr{b: b}
	u := &Upload{Key: r.str(), Data: r.tensor()}
	return u, r.err
}

// UploadOK acknowledges an upload with the store epoch it landed in.
type UploadOK struct {
	Epoch uint32
	Bytes int64
}

// EncodeUploadOK serializes an UploadOK payload.
func EncodeUploadOK(a *UploadOK) []byte {
	var e buf
	e.u32(a.Epoch)
	e.u64(uint64(a.Bytes))
	return e.b
}

// DecodeUploadOK parses an UploadOK payload.
func DecodeUploadOK(b []byte) (*UploadOK, error) {
	r := rdr{b: b}
	a := &UploadOK{Epoch: r.u32(), Bytes: int64(r.u64())}
	return a, r.err
}

// Binding supplies data for one SRG leaf ref: either an inline tensor or
// a reference to a server-resident object.
type Binding struct {
	Ref string
	// Inline carries the data in the call (nil when Key is set).
	Inline *tensor.Tensor
	// Key names a server-resident object (empty when Inline is set).
	Key string
	// Epoch the client believes the object is from; the server rejects
	// stale epochs so lineage can detect lost state.
	Epoch uint32

	// Hash replaces Inline with a 32-byte content hash of bytes the
	// server has already seen (dedup, negotiated via FeatDedup). Zero
	// when unused.
	Hash [HashSize]byte
	// Cache asks the server to remember this inline tensor's content
	// hash so later calls can bind it by Hash. Only honored — and only
	// encoded — on feature-negotiated connections; with Cache false the
	// encoding is byte-identical to the legacy format.
	Cache bool
}

// Exec runs a subgraph server-side.
type Exec struct {
	Graph *srg.Graph
	Binds []Binding
	// Keep maps node IDs to keys: those outputs stay resident
	// server-side under the key (returned by handle, not by value).
	Keep map[srg.NodeID]string
	// Want lists node IDs whose values return inline in ExecOK.
	Want []srg.NodeID
}

// EncodeExec serializes an Exec payload.
func EncodeExec(x *Exec) ([]byte, error) {
	var e buf
	var gb buf
	// Graph encodes via its own writer; capture to bytes.
	w := &sliceWriter{}
	if err := x.Graph.Encode(w); err != nil {
		return nil, err
	}
	gb.b = w.b
	e.u32(uint32(len(gb.b)))
	e.b = append(e.b, gb.b...)

	e.u32(uint32(len(x.Binds)))
	for _, bd := range x.Binds {
		e.str(bd.Ref)
		switch {
		case bd.Inline != nil && bd.Cache:
			e.u8(3)
			e.tensor(bd.Inline)
		case bd.Inline != nil:
			e.u8(1)
			e.tensor(bd.Inline)
		case bd.Hash != [HashSize]byte{}:
			e.u8(2)
			e.b = append(e.b, bd.Hash[:]...)
		default:
			e.u8(0)
			e.str(bd.Key)
			e.u32(bd.Epoch)
		}
	}
	e.u32(uint32(len(x.Keep)))
	for _, id := range keepOrder(x.Keep) {
		e.u32(uint32(id))
		e.str(x.Keep[id])
	}
	e.u32(uint32(len(x.Want)))
	for _, id := range x.Want {
		e.u32(uint32(id))
	}
	return e.b, nil
}

// keepOrder returns a Keep map's IDs ascending — deterministic encode
// order, so identical Execs serialize to identical bytes.
func keepOrder(keep map[srg.NodeID]string) []srg.NodeID {
	ids := make([]srg.NodeID, 0, len(keep))
	for id := range keep {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	return ids
}

func sortNodeIDs(ids []srg.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// DecodeExec parses an Exec payload.
func DecodeExec(b []byte) (*Exec, error) {
	r := rdr{b: b}
	gLen := int(r.u32())
	gBytes := r.take(gLen)
	if r.err != nil {
		return nil, r.err
	}
	g, err := srg.Decode(bytesReader(gBytes))
	if err != nil {
		return nil, err
	}
	x := &Exec{Graph: g}
	nBind := int(r.u32())
	if r.err == nil && nBind > 1<<20 {
		return nil, frameErrorf("transport: %d bindings", nBind)
	}
	for i := 0; i < nBind && r.err == nil; i++ {
		bd := Binding{Ref: r.str()}
		switch kind := r.u8(); kind {
		case 0:
			bd.Key = r.str()
			bd.Epoch = r.u32()
		case 1:
			bd.Inline = r.tensor()
		case 2:
			copy(bd.Hash[:], r.take(HashSize))
		case 3:
			bd.Inline = r.tensor()
			bd.Cache = true
		default:
			r.fail(fmt.Sprintf("invalid binding kind %d", kind))
		}
		x.Binds = append(x.Binds, bd)
	}
	nKeep := int(r.u32())
	if r.err == nil && nKeep > 1<<20 {
		return nil, frameErrorf("transport: %d keeps", nKeep)
	}
	if nKeep > 0 {
		x.Keep = make(map[srg.NodeID]string, nKeep)
	}
	for i := 0; i < nKeep && r.err == nil; i++ {
		id := srg.NodeID(r.u32())
		x.Keep[id] = r.str()
	}
	nWant := int(r.u32())
	if r.err == nil && nWant > 1<<20 {
		return nil, frameErrorf("transport: %d wants", nWant)
	}
	for i := 0; i < nWant && r.err == nil; i++ {
		x.Want = append(x.Want, srg.NodeID(r.u32()))
	}
	return x, r.err
}

func bytesReader(b []byte) io.Reader { return &byteRdr{b: b} }

type byteRdr struct {
	b   []byte
	off int
}

func (r *byteRdr) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

// ExecOK returns an execution's requested results.
type ExecOK struct {
	// Results holds the Want values by node ID, in request order.
	Results map[srg.NodeID]*tensor.Tensor
	// Kept echoes the keys materialized server-side with their sizes.
	Kept map[string]int64
	// Epoch is the server store epoch the kept objects live in.
	Epoch uint32
	// GPUTimeNs is the modeled device busy time for this execution.
	GPUTimeNs int64
	// GraphFP attests which graph the server actually executed: the
	// fingerprint of the received SRG. Clients compare it against their
	// own plan's fingerprint to detect tampering or misrouting — the
	// verifiable-computation hook of the paper's §5 "trust and
	// verifiability" challenge.
	GraphFP string
}

// EncodeExecOK serializes an ExecOK payload.
func EncodeExecOK(a *ExecOK) []byte {
	var e buf
	e.u32(uint32(len(a.Results)))
	ids := make([]srg.NodeID, 0, len(a.Results))
	for id := range a.Results {
		ids = append(ids, id)
	}
	sortNodeIDs(ids)
	for _, id := range ids {
		e.u32(uint32(id))
		e.tensor(a.Results[id])
	}
	e.u32(uint32(len(a.Kept)))
	keys := make([]string, 0, len(a.Kept))
	for k := range a.Kept {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		e.str(k)
		e.u64(uint64(a.Kept[k]))
	}
	e.u32(a.Epoch)
	e.u64(uint64(a.GPUTimeNs))
	e.str(a.GraphFP)
	return e.b
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// DecodeExecOK parses an ExecOK payload.
func DecodeExecOK(b []byte) (*ExecOK, error) {
	r := rdr{b: b}
	a := &ExecOK{}
	nRes := int(r.u32())
	if r.err == nil && nRes > 1<<20 {
		return nil, frameErrorf("transport: %d results", nRes)
	}
	if nRes > 0 {
		a.Results = make(map[srg.NodeID]*tensor.Tensor, nRes)
	}
	for i := 0; i < nRes && r.err == nil; i++ {
		id := srg.NodeID(r.u32())
		a.Results[id] = r.tensor()
	}
	nKept := int(r.u32())
	if r.err == nil && nKept > 1<<20 {
		return nil, frameErrorf("transport: %d kepts", nKept)
	}
	if nKept > 0 {
		a.Kept = make(map[string]int64, nKept)
	}
	for i := 0; i < nKept && r.err == nil; i++ {
		k := r.str()
		a.Kept[k] = int64(r.u64())
	}
	a.Epoch = r.u32()
	a.GPUTimeNs = int64(r.u64())
	a.GraphFP = r.str()
	return a, r.err
}

// Fetch retrieves a resident object.
type Fetch struct {
	Key   string
	Epoch uint32
}

// EncodeFetch serializes a Fetch payload.
func EncodeFetch(f *Fetch) []byte {
	var e buf
	e.str(f.Key)
	e.u32(f.Epoch)
	return e.b
}

// DecodeFetch parses a Fetch payload.
func DecodeFetch(b []byte) (*Fetch, error) {
	r := rdr{b: b}
	f := &Fetch{Key: r.str(), Epoch: r.u32()}
	return f, r.err
}

// EncodeTensorMsg serializes a MsgTensor payload.
func EncodeTensorMsg(t *tensor.Tensor) []byte {
	var e buf
	e.tensor(t)
	return e.b
}

// DecodeTensorMsg parses a MsgTensor payload.
func DecodeTensorMsg(b []byte) (*tensor.Tensor, error) {
	r := rdr{b: b}
	t := r.tensor()
	return t, r.err
}

// Stats reports server-side counters.
type Stats struct {
	Epoch         uint32
	ResidentBytes int64
	ResidentCount int64
	GPUBusyNs     int64
	ExecCalls     int64
}

// EncodeStats serializes a Stats payload.
func EncodeStats(s *Stats) []byte {
	var e buf
	e.u32(s.Epoch)
	e.u64(uint64(s.ResidentBytes))
	e.u64(uint64(s.ResidentCount))
	e.u64(uint64(s.GPUBusyNs))
	e.u64(uint64(s.ExecCalls))
	return e.b
}

// DecodeStats parses a Stats payload.
func DecodeStats(b []byte) (*Stats, error) {
	r := rdr{b: b}
	s := &Stats{
		Epoch:         r.u32(),
		ResidentBytes: int64(r.u64()),
		ResidentCount: int64(r.u64()),
		GPUBusyNs:     int64(r.u64()),
		ExecCalls:     int64(r.u64()),
	}
	return s, r.err
}

// EncodeErr serializes an error message payload.
func EncodeErr(err error) []byte {
	var e buf
	e.str(err.Error())
	return e.b
}

// DecodeErr parses an error payload into an error value.
func DecodeErr(b []byte) error {
	r := rdr{b: b}
	msg := r.str()
	if r.err != nil {
		return r.err
	}
	return &RemoteError{Msg: msg}
}

// RemoteError is an error reported by the server.
type RemoteError struct{ Msg string }

// Error implements the error interface.
func (e *RemoteError) Error() string { return "remote: " + e.Msg }
