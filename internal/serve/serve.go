// Package serve is Genie's online serving engine: it owns the live
// request lifecycle the offline evaluation (internal/eval/serving.go)
// only replays. Requests are admitted against a bounded queue
// (load-shedding above the bound), ordered by per-tenant fair queues
// with the global scheduler's SLO priority (global.Less), dispatched to
// backend lanes, and decoded with continuous batching: requests join and
// leave a lane's running decode batch at step boundaries
// (iteration-level scheduling over runtime.Session), so short requests
// never wait for long ones and decode slots refill the moment a request
// finishes. Deadlines, context cancellation, graceful drain, and an
// injectable clock make the whole engine deterministic under test.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"genie/internal/compute"
	"genie/internal/global"
	"genie/internal/health"
	"genie/internal/models"
	"genie/internal/obs"
	"genie/internal/quant"
	"genie/internal/runtime"
	"genie/internal/transport"
)

// Engine lifecycle errors.
var (
	// ErrOverloaded is the load-shed rejection (HTTP 429): the admission
	// queue is at its bound, so the engine refuses rather than queues.
	ErrOverloaded = errors.New("serve: overloaded, admission queue full")
	// ErrDraining rejects new work while the engine drains.
	ErrDraining = errors.New("serve: engine is draining")
	// ErrDeadlineExceeded retires a request whose deadline passed while
	// queued or mid-decode; partial tokens are returned alongside it.
	ErrDeadlineExceeded = errors.New("serve: request deadline exceeded")
	// ErrInvalidRequest rejects a malformed request at admission (HTTP
	// 400): empty prompt, out-of-vocab token, or a prompt that already
	// fills the model's context.
	ErrInvalidRequest = errors.New("serve: invalid request")
	// ErrBackendUnavailable sheds a request whose backend died and whose
	// re-queue budget is spent (HTTP 503 with Retry-After): the engine
	// retried on other lanes as far as policy allows before giving up.
	ErrBackendUnavailable = errors.New("serve: backend unavailable")
)

// Config parameterizes the engine.
type Config struct {
	// Mode is the disaggregation mode sessions run under. The zero value
	// is ModeLocal; production gateways want ModeSemAware — the only
	// remote mode whose per-step cost makes online serving viable.
	Mode runtime.Mode
	// MaxQueue bounds admitted-but-not-yet-running requests; Submit
	// beyond it fails fast with ErrOverloaded (default 64).
	MaxQueue int
	// MaxBatch is the continuous-batching limit per backend lane: the
	// most requests that share one decode iteration (default 8).
	MaxBatch int
	// DefaultMaxTokens caps generation when a request doesn't say
	// (default 32).
	DefaultMaxTokens int
	// DefaultDeadline bounds queue+generation time per request when the
	// request carries none; 0 = no deadline.
	DefaultDeadline time.Duration
	// Clock is injectable for deterministic tests; nil = wall clock.
	Clock Clock
	// KernelWorkers, when positive, resizes the process-wide compute
	// pool the CPU kernels run on (1 = serial). Zero keeps the current
	// pool — GOMAXPROCS workers unless GENIE_KERNEL_WORKERS overrode it.
	KernelWorkers int
	// Tracer records request-scoped spans through admission, queueing,
	// prefill, and every decode step. Nil disables tracing — the
	// zero-cost path (one nil check per would-be span). The engine does
	// not own the tracer; the caller Stops it.
	Tracer *obs.Tracer
	// Metrics is the registry engine telemetry registers into (served at
	// /metrics). Nil gets the engine a private registry, keeping
	// concurrently-running engines (tests) isolated.
	Metrics *obs.Registry
	// RetryBudget bounds how many times one request may be re-queued
	// after backend loss before it sheds with ErrBackendUnavailable
	// (default 1; negative disables re-queueing entirely).
	RetryBudget int
	// RetryAfter is the hint clients receive (Retry-After header) when a
	// request sheds with ErrBackendUnavailable (default 1s).
	RetryAfter time.Duration
	// OpTimeout bounds each remote operation (prefill, decode step) a
	// lane issues, so a hung peer surfaces as a retryable timeout at the
	// next step boundary instead of wedging the lane forever. 0 = no
	// per-op bound (the request deadline still applies).
	OpTimeout time.Duration
	// BreakerThreshold and BreakerCooldown parameterize each lane's
	// circuit breaker (zero values take transport's defaults: 3
	// consecutive failures, 1s cooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Health, when set, is the shared fail-slow scorer (DESIGN.md §13).
	// Lanes feed it per-op latency and failure samples, demote Suspect
	// endpoints (admitting work only when healthy capacity is
	// saturated), drain Quarantined ones through the failover re-queue
	// path, trial Reinstating ones a request at a time, issue active
	// probes while idle, and bound each remote op with an adaptive
	// deadline derived from healthy-peer latency — converting fail-slow
	// into the fail-stop the breaker/retry machinery already handles.
	// Nil disables the layer entirely (binary breaker behavior only).
	Health *health.Set
	// HealthOpFloor is the lower bound of the adaptive per-op deadline
	// derived from Health — headroom for legitimately slow ops like
	// long-prompt prefills (default 50ms; meaningful only with Health).
	HealthOpFloor time.Duration
	// PoolStats, when set, is snapshotted into Stats.Pool on every
	// Stats() call — the hook a pool.Manager-backed gateway uses to
	// surface shard membership and per-shard health in /stats without
	// serve importing the pool layer.
	PoolStats func() any
	// CacheStats, when set, is snapshotted into Stats.Cache on every
	// Stats() call — the hook a kvcache.Manager-backed gateway uses to
	// surface prefix-cache hit ratio and residency in /stats without
	// serve importing the cache layer.
	CacheStats func() any
	// Quant selects the raw-speed weight tier (DESIGN.md §11): int8
	// rewrites every Linear weight to per-column symmetric int8 before
	// installation, f16 to half precision. The zero value keeps f32.
	Quant quant.Mode
}

func (c *Config) fillDefaults() {
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.DefaultMaxTokens <= 0 {
		c.DefaultMaxTokens = 32
	}
	if c.Clock == nil {
		c.Clock = realClock{}
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 1
	}
	if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.HealthOpFloor <= 0 {
		c.HealthOpFloor = 50 * time.Millisecond
	}
}

// Backend is one accelerator server the engine can place sessions on.
type Backend struct {
	// Name labels the backend in results and stats.
	Name string
	// Runner must be bound to the backend's endpoint (EP) for remote
	// modes; each Backend needs its own runner (lanes serialize all RPC
	// on their runner's connection).
	Runner *runtime.LLMRunner
}

// Token is one streamed generation event delivered to Request.OnToken.
type Token struct {
	// Index is the position in the generated sequence (0 = first token,
	// produced by prefill).
	Index int
	// ID is the generated token id.
	ID int64
}

// Request is one tenant's generation call.
type Request struct {
	Tenant string
	// SLO orders dispatch (interactive before batch), with the exact
	// semantics of global.Prioritize.
	SLO    global.SLO
	Prompt []int64
	// MaxTokens caps generation (0 = engine default).
	MaxTokens int
	// Timeout bounds queue+generation (0 = engine default; negative =
	// no deadline even if the engine has a default).
	Timeout time.Duration
	// OnToken, when set, observes each token as its step completes (the
	// streaming hook). It runs on the engine's dispatch goroutine and
	// must not block.
	OnToken func(Token)
}

// Result is a finished request's outcome. On deadline expiry it carries
// the tokens generated so far alongside the error.
type Result struct {
	Tokens  []int64
	TTFT    time.Duration
	Latency time.Duration
	Backend string
}

// activeReq is a request's engine-internal lifecycle record.
type activeReq struct {
	id        int64
	tenant    string
	slo       global.SLO
	prompt    []int64
	maxTokens int
	deadline  time.Time // zero = none
	ctx       context.Context
	onToken   func(Token)
	arrival   time.Time

	// Tracing: tctx carries the request span; qspan covers queue wait
	// (ended when a lane picks the request up). All nil when untraced.
	tctx  context.Context
	span  *obs.Span
	qspan *obs.Span

	// Lane-owned after admission.
	sess   *runtime.Session
	tokens []int64
	ttft   time.Duration
	// joined marks a request that holds a decode-batch slot (drives the
	// per-tenant active accounting).
	joined bool
	// retries counts backend-loss re-queues consumed against the engine's
	// RetryBudget.
	retries int
	// bprobe is the breaker probe identity when this request's admission
	// doubled as the half-open probe; its prefill outcome concludes it.
	bprobe *transport.Probe
	// replayed is how many leading tokens were already delivered before a
	// re-queue; the deterministic regeneration on the new lane re-emits
	// nothing below this index.
	replayed int

	// Completion.
	res  *Result
	err  error
	done chan struct{}
}

func (ar *activeReq) complete(res *Result, err error) {
	ar.res, ar.err = res, err
	close(ar.done)
}

// Engine is the online serving engine.
type Engine struct {
	cfg    Config
	clock  Clock
	stats  *collector
	tracer *obs.Tracer

	mu       sync.Mutex
	queues   *tenantQueues
	draining bool
	seq      int64
	// tenantActive counts requests per tenant that hold a decode-batch
	// slot — the in-flight half of per-tenant load that the queues can't
	// see once a tenant's FIFO drains.
	tenantActive map[string]int

	lanes []*lane

	// Model geometry for request validation (all backends share the
	// model).
	vocab  int
	maxSeq int

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup

	drainOnce sync.Once
	drained   chan struct{}
}

// NewEngine builds an engine over the given backends, provisioning each
// backend's endpoint with the model weights for remote modes (the
// one-time installation Generate would otherwise repeat per request).
// Call Start to begin dispatching.
func NewEngine(cfg Config, backends []Backend) (*Engine, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("serve: no backends")
	}
	cfg.fillDefaults()
	if cfg.KernelWorkers > 0 {
		compute.Configure(cfg.KernelWorkers)
	}
	e := &Engine{
		cfg:          cfg,
		clock:        cfg.Clock,
		tracer:       cfg.Tracer,
		queues:       newTenantQueues(),
		tenantActive: make(map[string]int),
		stop:         make(chan struct{}),
		drained:      make(chan struct{}),
	}
	e.stats = newCollector(e.clock, cfg.Metrics)
	if backends[0].Runner != nil && backends[0].Runner.Model != nil {
		e.vocab = backends[0].Runner.Model.Cfg.Vocab
		e.maxSeq = backends[0].Runner.Model.Cfg.MaxSeq
	}
	for i, b := range backends {
		if b.Runner == nil || b.Runner.Model == nil {
			return nil, fmt.Errorf("serve: backend %d has no runner/model", i)
		}
		name := b.Name
		if name == "" {
			name = fmt.Sprintf("backend%d", i)
		}
		if cfg.Quant != quant.Off {
			// Quantize before installation so the cheap weights are what
			// cross the wire; idempotent, so shared models are safe.
			if err := models.Quantize(b.Runner.Model, cfg.Quant); err != nil {
				return nil, fmt.Errorf("serve: quantize weights for %s: %w", name, err)
			}
		}
		if cfg.Mode != runtime.ModeLocal && !b.Runner.WeightsResident {
			if _, err := b.Runner.InstallModelWeights(); err != nil {
				return nil, fmt.Errorf("serve: install weights on %s: %w", name, err)
			}
		}
		e.lanes = append(e.lanes, newLane(e, name, b.Runner))
	}
	return e, nil
}

// Start launches one dispatch goroutine per backend lane. Idempotent.
func (e *Engine) Start() {
	e.startOnce.Do(func() {
		for _, l := range e.lanes {
			e.wg.Add(1)
			go l.run()
		}
	})
}

// Stop halts the lane goroutines without waiting for pending work; use
// Drain first for a graceful shutdown.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
}

// Submit admits, queues, and runs one request, blocking until it
// completes, expires, or ctx is cancelled. Rejections (ErrOverloaded,
// ErrDraining) are immediate.
func (e *Engine) Submit(ctx context.Context, req Request) (*Result, error) {
	ar, err := e.enqueue(ctx, req)
	if err != nil {
		return nil, err
	}
	select {
	case <-ar.done:
		return ar.res, ar.err
	case <-ctx.Done():
		// The lane retires the request at its next step boundary; the
		// caller gets control back immediately.
		return nil, ctx.Err()
	}
}

// enqueue is the non-blocking admission half of Submit (tests drive it
// directly for determinism).
func (e *Engine) enqueue(ctx context.Context, req Request) (*activeReq, error) {
	if len(req.Prompt) == 0 {
		return nil, fmt.Errorf("%w: empty prompt", ErrInvalidRequest)
	}
	for _, tok := range req.Prompt {
		if tok < 0 || tok >= int64(e.vocab) {
			return nil, fmt.Errorf("%w: token %d outside vocab [0,%d)",
				ErrInvalidRequest, tok, e.vocab)
		}
	}
	maxTokens := req.MaxTokens
	if maxTokens <= 0 {
		maxTokens = e.cfg.DefaultMaxTokens
	}
	// Clamp generation to the model's context window; a prompt that
	// already fills it can't generate anything.
	if room := e.maxSeq - len(req.Prompt); maxTokens > room {
		if room <= 0 {
			return nil, fmt.Errorf("%w: prompt length %d leaves no room in context %d",
				ErrInvalidRequest, len(req.Prompt), e.maxSeq)
		}
		maxTokens = room
	}
	timeout := req.Timeout
	if timeout == 0 {
		timeout = e.cfg.DefaultDeadline
	}
	now := e.clock.Now()
	ar := &activeReq{
		tenant:    req.Tenant,
		slo:       req.SLO,
		prompt:    req.Prompt,
		maxTokens: maxTokens,
		ctx:       ctx,
		onToken:   req.OnToken,
		arrival:   now,
		done:      make(chan struct{}),
	}
	if timeout > 0 {
		ar.deadline = now.Add(timeout)
	}

	// Open the request span: as a child when the caller (the HTTP
	// handler) is already tracing, as a root when the engine has its own
	// tracer and the caller isn't. Untraced + no tracer = all nil, free.
	if obs.SpanFromContext(ctx) != nil {
		ar.tctx, ar.span = obs.StartSpan(ctx, "serve.request")
	} else if ctx != nil {
		ar.tctx, ar.span = e.tracer.StartRoot(ctx, "serve.request")
	}
	ar.span.SetAttr("tenant", ar.tenant)
	ar.span.SetAttrInt("prompt_tokens", int64(len(ar.prompt)))
	reject := func(outcome string) {
		ar.span.SetAttr("outcome", outcome)
		ar.span.End()
	}

	e.mu.Lock()
	if e.draining {
		e.mu.Unlock()
		reject("rejected_draining")
		return nil, ErrDraining
	}
	if e.queues.depth() >= e.cfg.MaxQueue {
		e.mu.Unlock()
		e.stats.shed.Inc()
		reject("shed")
		return nil, ErrOverloaded
	}
	e.seq++
	ar.id = e.seq
	_, ar.qspan = obs.StartSpan(ar.tctx, "serve.queue")
	e.queues.push(ar)
	e.stats.queueDepth.Set(int64(e.queues.depth()))
	e.mu.Unlock()

	e.stats.admitted.Inc()
	e.nudge()
	return ar, nil
}

// dequeue pops the next dispatchable request (priority band, then
// tenant round-robin).
func (e *Engine) dequeue() *activeReq {
	e.mu.Lock()
	defer e.mu.Unlock()
	ar := e.queues.pop()
	if ar != nil {
		e.stats.queueDepth.Set(int64(e.queues.depth()))
	}
	return ar
}

// noteJoin records a request taking a decode-batch slot; noteLeave
// releases it. Together they keep the per-tenant active counts (and the
// active gauge) consistent with lane membership.
func (e *Engine) noteJoin(ar *activeReq) {
	ar.joined = true
	e.mu.Lock()
	e.tenantActive[ar.tenant]++
	e.mu.Unlock()
	e.stats.activeReqs.Add(1)
}

func (e *Engine) noteLeave(ar *activeReq) {
	if !ar.joined {
		return
	}
	ar.joined = false
	e.mu.Lock()
	if n := e.tenantActive[ar.tenant]; n <= 1 {
		delete(e.tenantActive, ar.tenant)
	} else {
		e.tenantActive[ar.tenant] = n - 1
	}
	e.mu.Unlock()
	e.stats.activeReqs.Add(-1)
}

// nudge wakes every lane that might be idle.
func (e *Engine) nudge() {
	for _, l := range e.lanes {
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
}

// requeue returns a request to the admission queue after its lane lost
// the backend (or refused it at the breaker). Re-queued work bypasses
// the MaxQueue bound — it was already admitted once — and wakes every
// lane except the one that failed it, so a healthy lane picks it up
// without the failed lane spinning on its own rejection.
func (e *Engine) requeue(from *lane, ar *activeReq) {
	e.mu.Lock()
	e.queues.push(ar)
	e.stats.queueDepth.Set(int64(e.queues.depth()))
	e.mu.Unlock()
	for _, l := range e.lanes {
		if l == from {
			continue
		}
		select {
		case l.wake <- struct{}{}:
		default:
		}
	}
}

// anyHealthyBackend reports whether at least one lane can take work:
// breaker closed and, when health scoring is on, not quarantined (the
// /healthz degraded signal).
func (e *Engine) anyHealthyBackend() bool {
	for _, l := range e.lanes {
		if l.breaker.State() != transport.BreakerClosed {
			continue
		}
		if l.tracker != nil && l.tracker.State() == health.Quarantined {
			continue
		}
		return true
	}
	return false
}

// quarantinedLanes lists lanes currently under health quarantine (the
// /healthz degraded detail). Empty without health scoring.
func (e *Engine) quarantinedLanes() []string {
	var out []string
	for _, l := range e.lanes {
		if l.tracker != nil && l.tracker.State() == health.Quarantined {
			out = append(out, l.name)
		}
	}
	return out
}

// healthyRoomElsewhere reports whether any other lane is Healthy (full
// grade, breaker closed) with decode-batch room — the signal a Suspect
// lane uses to demote itself: it admits work only when healthy
// capacity is saturated, so a merely-slow lane stops poisoning TTFT
// without the engine losing its capacity outright.
func (e *Engine) healthyRoomElsewhere(me *lane) bool {
	for _, l := range e.lanes {
		if l == me || l.tracker == nil {
			continue
		}
		if l.tracker.State() != health.Healthy {
			continue
		}
		if l.breaker.State() != transport.BreakerClosed {
			continue
		}
		if int(l.activeN.Load()) < e.cfg.MaxBatch {
			return true
		}
	}
	return false
}

// Drain stops admission (Submit fails with ErrDraining), lets every
// already-admitted request run to completion, and returns when the
// engine is empty or ctx expires. Lanes keep running; call Stop after.
func (e *Engine) Drain(ctx context.Context) error {
	e.mu.Lock()
	e.draining = true
	e.mu.Unlock()
	e.nudge()
	e.maybeDrained()
	select {
	case <-e.drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether admission is closed.
func (e *Engine) Draining() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.draining
}

// maybeDrained closes the drain gate once nothing is queued or active.
func (e *Engine) maybeDrained() {
	e.mu.Lock()
	empty := e.draining && e.queues.depth() == 0
	e.mu.Unlock()
	if !empty {
		return
	}
	for _, l := range e.lanes {
		if l.activeN.Load() != 0 {
			return
		}
	}
	e.drainOnce.Do(func() { close(e.drained) })
}

// Stats snapshots the engine's observable state.
func (e *Engine) Stats() Stats {
	st := e.stats.snapshot()
	if e.cfg.PoolStats != nil {
		st.Pool = e.cfg.PoolStats()
	}
	if e.cfg.CacheStats != nil {
		st.Cache = e.cfg.CacheStats()
	}
	e.mu.Lock()
	st.Queued = e.queues.depth()
	// Per-tenant load: queued from the FIFOs, active from the in-flight
	// counts. A tenant whose queue momentarily drained to zero but still
	// has requests decoding stays visible — the queues alone forget a
	// tenant the instant its last queued request dispatches.
	queued := e.queues.perTenant()
	if len(queued) > 0 || len(e.tenantActive) > 0 {
		st.Tenants = make(map[string]TenantLoad, len(queued)+len(e.tenantActive))
		for t, n := range queued {
			tl := st.Tenants[t]
			tl.Queued = n
			st.Tenants[t] = tl
		}
		for t, n := range e.tenantActive {
			tl := st.Tenants[t]
			tl.Active = n
			st.Tenants[t] = tl
		}
	}
	e.mu.Unlock()
	st.Backends = make(map[string]BackendHealth, len(e.lanes))
	for _, l := range e.lanes {
		st.Active += int(l.activeN.Load())
		state := l.breaker.State()
		bh := BackendHealth{
			Healthy:  state == transport.BreakerClosed,
			Breaker:  state.String(),
			Failures: l.failures.Load(),
			Requeued: l.requeues.Load(),
		}
		if l.tracker != nil {
			bh.Health = l.tracker.State().String()
			bh.Score = l.tracker.Score()
			bh.Healthy = bh.Healthy && l.tracker.State() != health.Quarantined
		}
		st.Backends[l.name] = bh
	}
	if e.cfg.Health != nil {
		st.Health = e.cfg.Health.Snapshot()
	}
	return st
}

// Metrics returns the engine's metrics registry (an http.Handler for
// GET /metrics).
func (e *Engine) Metrics() *obs.Registry { return e.cfg.Metrics }

// Tracer returns the engine's tracer (nil when tracing is disabled).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }
