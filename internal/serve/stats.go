package serve

import (
	"sync"
	"time"

	"genie/internal/health"
	"genie/internal/obs"
)

// sampleCap bounds the latency windows; beyond it the collector
// overwrites the oldest samples (a sliding window over recent traffic).
const sampleCap = 8192

// Request outcome labels (span attrs and collector counters).
const (
	outcomeCompleted   = "completed"
	outcomeFailed      = "failed"
	outcomeCancelled   = "cancelled"
	outcomeExpired     = "expired"
	outcomeUnavailable = "unavailable"
)

// LatencySummary is a percentile digest of one duration population.
type LatencySummary struct {
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
	Max time.Duration `json:"max"`
}

// TenantLoad is one tenant's live footprint: requests waiting in the
// admission queue and requests holding a decode-batch slot. A tenant
// appears while it has either — a drained queue with work still in
// flight no longer hides it.
type TenantLoad struct {
	Queued int `json:"queued"`
	Active int `json:"active"`
}

// BackendHealth is one backend lane's availability view: whether its
// breaker is closed, the breaker state by name, how much trouble the
// lane has seen (backend-loss errors observed, requests it handed back
// to the queue), and — when the fail-slow layer is on — the graded
// health state and score.
type BackendHealth struct {
	Healthy  bool   `json:"healthy"`
	Breaker  string `json:"breaker"`
	Failures int64  `json:"failures"`
	Requeued int64  `json:"requeued"`
	// Health is the graded fail-slow state (healthy/suspect/quarantined/
	// reinstating); empty without Config.Health. Score is the composite
	// health score in (0,1], 0 while quarantined.
	Health string  `json:"health,omitempty"`
	Score  float64 `json:"score,omitempty"`
}

// Stats is the engine's observable state — the /stats payload.
type Stats struct {
	// Queued is the current admission-queue depth; Active the number of
	// requests holding a slot in a running decode batch.
	Queued int `json:"queued"`
	Active int `json:"active"`
	// Lifecycle counters.
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"` // rejected at admission (queue full)
	Expired   int64 `json:"expired"`
	Cancelled int64 `json:"cancelled"`
	Failed    int64 `json:"failed"`
	// Requeued counts backend-loss re-queues; Unavailable counts
	// requests shed after their re-queue budget ran out.
	Requeued    int64 `json:"requeued"`
	Unavailable int64 `json:"unavailable"`
	TokensOut   int64 `json:"tokens_out"`
	// Continuous-batching occupancy: how many requests shared a decode
	// iteration. Mean > 1 means the engine actually merged requests.
	MaxOccupancy  int     `json:"max_occupancy"`
	MeanOccupancy float64 `json:"mean_occupancy"`
	// TTFT is measured admission → first token; Latency admission →
	// completion (successful requests only).
	TTFT         LatencySummary `json:"ttft"`
	Latency      LatencySummary `json:"latency"`
	TokensPerSec float64        `json:"tokens_per_sec"`
	Uptime       time.Duration  `json:"uptime_ns"`
	// Tenants breaks Queued/Active down per tenant (omitted when idle).
	Tenants map[string]TenantLoad `json:"tenants,omitempty"`
	// Backends maps backend name to its lane's health view — the /stats
	// surface for breaker transitions and failover activity.
	Backends map[string]BackendHealth `json:"backends,omitempty"`
	// Health is the fail-slow scorer's full per-endpoint snapshot
	// (EWMAs, exact percentiles, error rates, probe counts) when
	// Config.Health is set; nil otherwise.
	Health map[string]health.EndpointHealth `json:"health,omitempty"`
	// Pool carries the backend pool's membership and shard view when the
	// engine fronts a pool.Manager (Config.PoolStats); nil otherwise.
	Pool any `json:"pool,omitempty"`
	// Cache carries the prefix cache's hit/miss/residency snapshot when
	// the gateway runs one (Config.CacheStats); nil otherwise.
	Cache any `json:"cache,omitempty"`
}

// collector is the engine's telemetry surface, backed by the process
// metrics registry: lifecycle counters, queue/batch gauges, and latency
// histograms are live Prometheus series, while bounded windows keep the
// exact percentiles /stats reports. All methods are safe for concurrent
// use from lanes and Submit.
type collector struct {
	clock Clock
	start time.Time

	admitted    *obs.Counter
	completed   *obs.Counter
	shed        *obs.Counter
	expired     *obs.Counter
	cancelled   *obs.Counter
	failed      *obs.Counter
	requeued    *obs.Counter
	unavailable *obs.Counter
	tokensOut   *obs.Counter

	queueDepth *obs.Gauge
	activeReqs *obs.Gauge

	ttftH *obs.Histogram
	latH  *obs.Histogram
	stepH *obs.Histogram

	ttfts *obs.Window
	lats  *obs.Window

	mu         sync.Mutex
	occSum     int64
	occSamples int64
	occMax     int
}

func newCollector(clock Clock, reg *obs.Registry) *collector {
	return &collector{
		clock: clock,
		start: clock.Now(),
		admitted: reg.Counter("genie_serve_admitted_total",
			"requests admitted past the queue bound"),
		completed: reg.Counter("genie_serve_completed_total",
			"requests that generated to completion"),
		shed: reg.Counter("genie_serve_shed_total",
			"requests rejected at admission (queue full)"),
		expired: reg.Counter("genie_serve_expired_total",
			"requests retired at their deadline"),
		cancelled: reg.Counter("genie_serve_cancelled_total",
			"requests retired on caller cancellation"),
		failed: reg.Counter("genie_serve_failed_total",
			"requests retired on execution error"),
		requeued: reg.Counter("genie_serve_requeued_total",
			"requests re-queued after backend loss"),
		unavailable: reg.Counter("genie_serve_unavailable_total",
			"requests shed after exhausting their backend-loss retry budget"),
		tokensOut: reg.Counter("genie_serve_tokens_total",
			"tokens generated across all requests"),
		queueDepth: reg.Gauge("genie_serve_queue_depth",
			"admitted requests waiting for a decode-batch slot"),
		activeReqs: reg.Gauge("genie_serve_active_requests",
			"requests holding a decode-batch slot"),
		ttftH: reg.Histogram("genie_serve_ttft_seconds",
			"admission to first token", nil),
		latH: reg.Histogram("genie_serve_latency_seconds",
			"admission to completion (successful requests)", nil),
		stepH: reg.Histogram("genie_serve_decode_step_seconds",
			"one decode step of one request", nil),
		ttfts: obs.NewWindow(sampleCap),
		lats:  obs.NewWindow(sampleCap),
	}
}

// countOutcome bumps the lifecycle counter matching a finish outcome.
func (c *collector) countOutcome(outcome string) {
	switch outcome {
	case outcomeCompleted:
		c.completed.Inc()
	case outcomeFailed:
		c.failed.Inc()
	case outcomeCancelled:
		c.cancelled.Inc()
	case outcomeExpired:
		c.expired.Inc()
	case outcomeUnavailable:
		c.unavailable.Inc()
	}
}

// occupancy records one decode iteration that stepped n requests.
func (c *collector) occupancy(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.occSum += int64(n)
	c.occSamples++
	if n > c.occMax {
		c.occMax = n
	}
	c.mu.Unlock()
}

func (c *collector) recordTTFT(d time.Duration) {
	c.ttfts.Observe(d)
	c.ttftH.ObserveDuration(d)
}

func (c *collector) recordLatency(d time.Duration) {
	c.lats.Observe(d)
	c.latH.ObserveDuration(d)
}

func (c *collector) recordStep(d time.Duration) {
	c.stepH.ObserveDuration(d)
}

func summarize(w *obs.Window) LatencySummary {
	qs, max := w.Quantiles(0.50, 0.95, 0.99)
	return LatencySummary{P50: qs[0], P95: qs[1], P99: qs[2], Max: max}
}

// snapshot renders counters into a Stats (queue/active/tenants filled
// by the engine).
func (c *collector) snapshot() Stats {
	st := Stats{
		Admitted:    c.admitted.Value(),
		Completed:   c.completed.Value(),
		Shed:        c.shed.Value(),
		Expired:     c.expired.Value(),
		Cancelled:   c.cancelled.Value(),
		Failed:      c.failed.Value(),
		Requeued:    c.requeued.Value(),
		Unavailable: c.unavailable.Value(),
		TokensOut:   c.tokensOut.Value(),
		TTFT:        summarize(c.ttfts),
		Latency:     summarize(c.lats),
		Uptime:      c.clock.Now().Sub(c.start),
	}
	c.mu.Lock()
	st.MaxOccupancy = c.occMax
	if c.occSamples > 0 {
		st.MeanOccupancy = float64(c.occSum) / float64(c.occSamples)
	}
	c.mu.Unlock()
	if up := st.Uptime.Seconds(); up > 0 {
		st.TokensPerSec = float64(st.TokensOut) / up
	}
	return st
}
