package genie_test

import (
	"fmt"
	"math/rand"
	"time"

	"genie"
	"genie/internal/global"
)

// ExampleNewBuilder shows the capture flow: operations on lazy values
// build an SRG instead of executing.
func ExampleNewBuilder() {
	b := genie.NewBuilder("demo")
	x := b.Input("x", genie.FromF32(genie.Shape{1, 2}, []float32{1, 2}))
	w := b.Param("w", genie.FromF32(genie.Shape{2, 2}, []float32{1, 0, 0, 1}))
	y := b.Softmax(b.MatMul(x, w))
	b.MarkOutput(y)

	fmt.Println("nodes captured:", b.Graph().Len())
	fmt.Println("executed yet:", false)
	// Output:
	// nodes captured: 4
	// executed yet: false
}

// ExampleExecuteLocal evaluates a captured graph in-process.
func ExampleExecuteLocal() {
	b := genie.NewBuilder("demo")
	x := b.Input("x", genie.FromF32(genie.Shape{2}, []float32{-1, 3}))
	y := b.ReLU(x)
	b.MarkOutput(y)

	vals, err := genie.ExecuteLocal(b)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(vals[y.ID()].F32())
	// Output:
	// [0 3]
}

// ExampleAnnotate runs the pattern-recognizer library over a captured
// model, inferring execution phases from structure alone.
func ExampleAnnotate() {
	rng := rand.New(rand.NewSource(1))
	model := genie.NewCNNModel(rng, genie.TinyCNN)
	img := genie.NewTensor(genie.F32, 3, 32, 32)
	b, _ := model.BuildForward(img)

	rep := genie.Annotate(b.Graph())
	fmt.Println("phases:", rep.Phases)
	// Output:
	// phases: [cv_stage]
}

// ExampleSchedule plans an annotated graph onto a pool with the
// semantics-aware policy.
func ExampleSchedule() {
	b := genie.NewBuilder("demo")
	x := b.Input("x", genie.NewTensor(genie.F32, 4, 8))
	w := b.Param("w", genie.NewTensor(genie.F32, 8, 8))
	b.MarkOutput(b.MatMul(x, w))
	genie.Annotate(b.Graph())

	pool := genie.NewCluster()
	_ = pool.AddAccelerator(&genie.Accelerator{
		ID: "gpu0", Spec: genie.A100,
		Link: genie.Link{Bandwidth: 25e9 / 8, RTT: time.Millisecond},
	})
	plan, err := genie.Schedule(b.Graph(), pool, genie.SemanticsAware{}, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("policy:", plan.Policy)
	fmt.Println("weights kept remote:", len(plan.KeepRemote))
	// Output:
	// policy: semantics_aware
	// weights kept remote: 1
}

// ExampleGPTConfig shows paper-scale accounting: the GPT-J geometry that
// drives the evaluation's traffic numbers.
func ExampleGPTConfig() {
	cfg := genie.GPTJ6B
	fmt.Printf("params: %.2fB\n", float64(cfg.ParamCount())/1e9)
	fmt.Printf("fp16 weights: %.1f GB\n", float64(cfg.WeightBytes())/1e9)
	fmt.Printf("KV delta per token: %.2f MB\n", float64(cfg.KVBytesPerToken())/1e6)
	// Output:
	// params: 6.06B
	// fp16 weights: 12.1 GB
	// KV delta per token: 0.92 MB
}

// ExampleCoordinator classifies tenant SRGs by their semantic
// annotations.
func ExampleCoordinator() {
	rng := rand.New(rand.NewSource(2))
	model := genie.NewGPTModel(rng, genie.TinyGPT)
	b, _ := model.BuildPrefill([]int64{1, 2, 3})
	genie.Annotate(b.Graph())
	fmt.Println("class:", global.Classify(b.Graph()))
	// Output:
	// class: llm
}
