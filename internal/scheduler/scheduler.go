// Package scheduler implements Genie's pluggable policy engine (§3.3):
// plan = Schedule(srg, clusterState, policy). It consumes a fully
// annotated SRG as a declarative requirement spec and produces a Plan —
// the SRG augmented with device assignments, transfer decisions, caching
// directives, and recompute choices.
//
// Policies are data-driven: semantic optimizations (stateful co-location,
// CNN pipelining, dynamic recomputation) read only SRG annotations, never
// model-specific code — the generality claim at the heart of the paper.
package scheduler

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"genie/internal/cluster"
	"genie/internal/srg"
)

// Placement names where a node runs.
type Placement struct {
	Device cluster.AcceleratorID
}

// Plan is the scheduler's output: an execution recipe over an SRG.
type Plan struct {
	Graph *srg.Graph
	// Place assigns every compute node a device. Leaf nodes inherit the
	// placement of their first consumer.
	Place map[srg.NodeID]cluster.AcceleratorID
	// KeepRemote marks nodes whose outputs must stay materialized on
	// their device (persistent weights, stateful caches) addressed by
	// the given key — the caching directives of §3.3.
	KeepRemote map[srg.NodeID]string
	// Recompute marks nodes whose outputs should be re-executed at the
	// consumer's device instead of transferred (dynamic recomputation
	// under congestion).
	Recompute map[srg.NodeID]bool
	// PipelineStages, when non-nil, groups nodes into ordered stages
	// that may overlap across devices (pipelined CNN inference).
	PipelineStages [][]srg.NodeID
	// Estimate is the cost model's end-to-end latency prediction.
	Estimate time.Duration
	// Policy records which policy produced the plan.
	Policy string
}

// DeviceOf returns a node's assigned device, resolving leaves through
// their consumers.
func (p *Plan) DeviceOf(id srg.NodeID) cluster.AcceleratorID {
	if d, ok := p.Place[id]; ok {
		return d
	}
	return ""
}

// CrossDeviceEdges returns the edges whose producer and consumer are
// placed on different devices — each implies a transfer.
func (p *Plan) CrossDeviceEdges() []srg.Edge {
	var out []srg.Edge
	for _, e := range p.Graph.Edges() {
		from, to := p.DeviceOf(e.From), p.DeviceOf(e.To)
		if from != "" && to != "" && from != to {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks plan invariants: every node placed on a registered
// device, keep-remote keys non-empty, pipeline stages topologically
// consistent.
func (p *Plan) Validate(cs *cluster.State) error {
	for _, n := range p.Graph.Nodes() {
		d, ok := p.Place[n.ID]
		if !ok {
			return fmt.Errorf("scheduler: node %d (%s) unplaced", n.ID, n.Op)
		}
		if cs.Accelerator(d) == nil {
			return fmt.Errorf("scheduler: node %d on unknown device %q", n.ID, d)
		}
	}
	for id, key := range p.KeepRemote {
		if key == "" {
			return fmt.Errorf("scheduler: node %d kept under empty key", id)
		}
		if p.Graph.Node(id) == nil {
			return fmt.Errorf("scheduler: keep of unknown node %d", id)
		}
	}
	if p.PipelineStages != nil {
		stageOf := map[srg.NodeID]int{}
		for si, stage := range p.PipelineStages {
			for _, id := range stage {
				stageOf[id] = si
			}
		}
		for _, n := range p.Graph.Nodes() {
			si, ok := stageOf[n.ID]
			if !ok {
				continue
			}
			for _, in := range n.Inputs {
				if pi, ok := stageOf[in]; ok && pi > si {
					return fmt.Errorf("scheduler: node %d in stage %d consumes stage %d", n.ID, si, pi)
				}
			}
		}
	}
	return nil
}

// Policy turns an annotated SRG and cluster state into a Plan.
type Policy interface {
	// Name identifies the policy in plans and reports.
	Name() string
	// Place computes assignments; Schedule fills in the cost estimate.
	Place(g *srg.Graph, cs *cluster.State) (*Plan, error)
}

// Schedule is the paper's scheduler interface: a pure function from
// (SRG, cluster state, policy) to an annotated plan.
func Schedule(g *srg.Graph, cs *cluster.State, policy Policy, model *CostModel) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("scheduler: invalid srg: %w", err)
	}
	plan, err := policy.Place(g, cs)
	if err != nil {
		return nil, err
	}
	plan.Policy = policy.Name()
	if err := plan.Validate(cs); err != nil {
		return nil, err
	}
	if model != nil {
		plan.Estimate = model.PlanLatency(plan, cs)
	}
	return plan, nil
}

// placeLeaves assigns leaf nodes to the device of their first consumer
// (data should be born where it is used).
func placeLeaves(g *srg.Graph, place map[srg.NodeID]cluster.AcceleratorID) {
	consumers := g.Consumers()
	for _, n := range g.Nodes() {
		if n.Op != "param" && n.Op != "input" {
			continue
		}
		if _, done := place[n.ID]; done {
			continue
		}
		if cs := consumers[n.ID]; len(cs) > 0 {
			place[n.ID] = place[cs[0]]
		}
	}
}

// computeNodes returns non-leaf node IDs in topological order.
func computeNodes(g *srg.Graph) []srg.NodeID {
	var out []srg.NodeID
	for _, n := range g.Nodes() {
		if n.Op != "param" && n.Op != "input" {
			out = append(out, n.ID)
		}
	}
	return out
}

// RoundRobin is the semantics-blind naive baseline from §2.2: every
// operation is treated as independent and identical, spread across
// remote accelerators cyclically. It ignores residency entirely, which
// is what forces the repeated bulk transfers the evaluation measures.
type RoundRobin struct{}

// Name implements Policy.
func (RoundRobin) Name() string { return "round_robin" }

// Place implements Policy.
func (RoundRobin) Place(g *srg.Graph, cs *cluster.State) (*Plan, error) {
	remote := cs.Remote()
	if len(remote) == 0 {
		return nil, fmt.Errorf("scheduler: no remote accelerators")
	}
	plan := &Plan{Graph: g, Place: map[srg.NodeID]cluster.AcceleratorID{}}
	i := 0
	for _, id := range computeNodes(g) {
		plan.Place[id] = remote[i%len(remote)].ID
		i++
	}
	placeLeaves(g, plan.Place)
	return plan, nil
}

// LeastLoaded places the whole graph on the remote device with the
// smallest queue depth — load-aware but still semantics-blind.
type LeastLoaded struct{}

// Name implements Policy.
func (LeastLoaded) Name() string { return "least_loaded" }

// Place implements Policy.
func (LeastLoaded) Place(g *srg.Graph, cs *cluster.State) (*Plan, error) {
	acc := cs.LeastLoaded()
	if acc == nil {
		return nil, fmt.Errorf("scheduler: no remote accelerators")
	}
	plan := &Plan{Graph: g, Place: map[srg.NodeID]cluster.AcceleratorID{}}
	for _, id := range computeNodes(g) {
		plan.Place[id] = acc.ID
	}
	placeLeaves(g, plan.Place)
	return plan, nil
}

// DataAware considers per-edge data-movement costs (operations
// independent but not identical, §2.2's "slightly better" strawman): each
// node goes where the most input bytes already are. It discovers weight
// reuse bottom-up but cannot see phases, caches, or pipelines.
type DataAware struct{}

// Name implements Policy.
func (DataAware) Name() string { return "data_aware" }

// Place implements Policy.
func (DataAware) Place(g *srg.Graph, cs *cluster.State) (*Plan, error) {
	remote := cs.Remote()
	if len(remote) == 0 {
		return nil, fmt.Errorf("scheduler: no remote accelerators")
	}
	plan := &Plan{Graph: g, Place: map[srg.NodeID]cluster.AcceleratorID{}}
	// Leaf residency: where is each leaf's data now?
	leafHome := map[srg.NodeID]cluster.AcceleratorID{}
	for _, n := range g.Nodes() {
		if n.Op == "param" || n.Op == "input" {
			if acc, ok := cs.ResidentOn(n.Ref); ok {
				leafHome[n.ID] = acc
			}
		}
	}
	for _, id := range computeNodes(g) {
		n := g.Node(id)
		bytesAt := map[cluster.AcceleratorID]int64{}
		for _, in := range n.Inputs {
			var home cluster.AcceleratorID
			if d, ok := plan.Place[in]; ok {
				home = d
			} else if d, ok := leafHome[in]; ok {
				home = d
			}
			if home != "" {
				bytesAt[home] += g.Node(in).Output.Bytes()
			}
		}
		best := remote[0].ID
		var bestBytes int64 = -1
		// Deterministic: consider devices in registration order.
		for _, a := range remote {
			if b := bytesAt[a.ID]; b > bestBytes {
				best, bestBytes = a.ID, b
			}
		}
		plan.Place[id] = best
	}
	placeLeaves(g, plan.Place)
	return plan, nil
}

// SemanticsAware is Genie's policy: it reads the SRG's semantic
// annotations and applies the three context-aware optimizations of §3.3.
type SemanticsAware struct {
	// RecomputeThresholdFLOPs bounds how expensive a producer may be to
	// qualify for congestion-driven recomputation (default 1e7).
	RecomputeThresholdFLOPs float64
	// CongestionThreshold is the link-congestion level beyond which
	// recomputation is preferred (default 0.5).
	CongestionThreshold float64
	// DisableColocation/DisablePipeline/DisableRecompute switch off
	// individual optimizations for the ablation benches.
	DisableColocation bool
	DisablePipeline   bool
	DisableRecompute  bool
}

// Name implements Policy.
func (p SemanticsAware) Name() string { return "semantics_aware" }

// Place implements Policy.
func (p SemanticsAware) Place(g *srg.Graph, cs *cluster.State) (*Plan, error) {
	remote := cs.Remote()
	if len(remote) == 0 {
		return nil, fmt.Errorf("scheduler: no remote accelerators")
	}
	if p.RecomputeThresholdFLOPs == 0 {
		p.RecomputeThresholdFLOPs = 1e7
	}
	if p.CongestionThreshold == 0 {
		p.CongestionThreshold = 0.5
	}
	plan := &Plan{
		Graph:      g,
		Place:      map[srg.NodeID]cluster.AcceleratorID{},
		KeepRemote: map[srg.NodeID]string{},
		Recompute:  map[srg.NodeID]bool{},
	}

	// 1. Stateful co-location: if any stateful cache leaf is already
	// resident somewhere, the whole decode phase is pinned there; the
	// cache-append outputs are kept remote under their leaf refs.
	home := remote[0].ID
	if !p.DisableColocation {
		for _, n := range g.Nodes() {
			if n.Op == "input" && n.Residency == srg.ResidencyStatefulKVCache {
				if acc, ok := cs.ResidentOn(n.Ref); ok {
					home = acc
					break
				}
			}
		}
	}

	// Persistent weights: prefer the device already holding them.
	if acc, ok := anyWeightHome(g, cs); ok && !p.DisableColocation {
		home = acc
	}

	for _, id := range computeNodes(g) {
		plan.Place[id] = home
	}

	// Memory-driven sharding: when the model's weights exceed the home
	// device's capacity, split module groups (transformer blocks, CNN
	// stages) across the pool so every weight fits exactly one device.
	if shard, err := shardByMemory(g, cs, home); err != nil {
		return nil, err
	} else if shard != nil {
		for id, dev := range shard {
			plan.Place[id] = dev
		}
	}

	// 2. Pipelined CNN inference: consecutive cv_stage groups spread
	// across accelerators, overlapping communication and computation.
	if !p.DisablePipeline && len(remote) > 1 {
		stages := cvStages(g)
		if len(stages) > 1 {
			plan.PipelineStages = stages
			for si, stage := range stages {
				dev := remote[si%len(remote)].ID
				for _, id := range stage {
					plan.Place[id] = dev
				}
			}
			// Non-staged nodes (head) follow the last stage's device.
			last := remote[(len(stages)-1)%len(remote)].ID
			for _, id := range computeNodes(g) {
				if _, staged := stageOf(stages, id); !staged {
					plan.Place[id] = last
				}
			}
		}
	}

	placeLeaves(g, plan.Place)

	// Caching directives: stateful cache products and weights stay
	// remote under stable keys.
	for _, n := range g.Nodes() {
		switch {
		case n.Residency == srg.ResidencyStatefulKVCache && n.Op != "input":
			// The stateful product's handle: an explicit state_key
			// annotation if the frontend provided one, else the cache
			// leaf this product extends.
			if key := n.Attrs["state_key"]; key != "" {
				plan.KeepRemote[n.ID] = key
			} else if ref := cacheLeafRef(g, n.ID); ref != "" {
				plan.KeepRemote[n.ID] = ref
			}
		case n.Op == "param":
			plan.KeepRemote[n.ID] = n.Ref
		}
	}

	// 3. Dynamic recomputation: a cross-device edge under congestion
	// whose producer is cheap is re-executed at the consumer.
	if !p.DisableRecompute {
		for _, e := range plan.CrossDeviceEdges() {
			prod := g.Node(e.From)
			toDev := cs.Accelerator(plan.DeviceOf(e.To))
			if toDev == nil || prod.Op == "param" || prod.Op == "input" {
				continue
			}
			if toDev.Link.Congestion >= p.CongestionThreshold &&
				prod.Cost.FLOPs <= p.RecomputeThresholdFLOPs &&
				prod.Output.Bytes() > 0 {
				plan.Recompute[e.From] = true
			}
		}
	}
	return plan, nil
}

// anyWeightHome returns the device holding the plurality of this graph's
// persistent weights, if any are resident.
func anyWeightHome(g *srg.Graph, cs *cluster.State) (cluster.AcceleratorID, bool) {
	counts := map[cluster.AcceleratorID]int{}
	for _, id := range g.Params() {
		if acc, ok := cs.ResidentOn(g.Node(id).Ref); ok {
			counts[acc]++
		}
	}
	var best cluster.AcceleratorID
	bestN := 0
	keys := make([]cluster.AcceleratorID, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		if counts[k] > bestN {
			best, bestN = k, counts[k]
		}
	}
	return best, bestN > 0
}

// cvStages groups compute nodes by their cv_stage attribute.
func cvStages(g *srg.Graph) [][]srg.NodeID {
	byStage := map[int][]srg.NodeID{}
	maxStage := -1
	for _, n := range g.Nodes() {
		if n.Phase != srg.PhaseCVStage {
			continue
		}
		s, err := strconv.Atoi(n.Attrs["cv_stage"])
		if err != nil {
			continue
		}
		byStage[s] = append(byStage[s], n.ID)
		if s > maxStage {
			maxStage = s
		}
	}
	var out [][]srg.NodeID
	for s := 0; s <= maxStage; s++ {
		if ids := byStage[s]; len(ids) > 0 {
			out = append(out, ids)
		}
	}
	return out
}

func stageOf(stages [][]srg.NodeID, id srg.NodeID) (int, bool) {
	for si, stage := range stages {
		for _, sid := range stage {
			if sid == id {
				return si, true
			}
		}
	}
	return 0, false
}

// cacheLeafRef walks a stateful product's ancestry to the cache leaf it
// extends and returns its ref.
func cacheLeafRef(g *srg.Graph, id srg.NodeID) string {
	for aid := range g.AncestorsOf(id) {
		n := g.Node(aid)
		if n.Op == "input" && n.Residency == srg.ResidencyStatefulKVCache {
			return n.Ref
		}
	}
	return ""
}
