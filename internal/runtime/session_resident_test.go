package runtime

import (
	"math/rand"
	"strings"
	"testing"

	"genie/internal/models"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// fakeFreeEP records Free calls; every other endpoint method is unused by
// these tests.
type fakeFreeEP struct {
	freed []string
}

func (f *fakeFreeEP) Upload(key string, data *tensor.Tensor) (*transport.UploadOK, error) {
	return &transport.UploadOK{}, nil
}
func (f *fakeFreeEP) Exec(x *transport.Exec) (*transport.ExecOK, error) {
	return &transport.ExecOK{}, nil
}
func (f *fakeFreeEP) Fetch(key string, epoch uint32) (*tensor.Tensor, error) { return nil, nil }
func (f *fakeFreeEP) Free(key string) error {
	f.freed = append(f.freed, key)
	return nil
}
func (f *fakeFreeEP) Stats() (*transport.Stats, error) { return &transport.Stats{}, nil }

func localRunner(seed int64, ep Endpoint) *LLMRunner {
	rng := rand.New(rand.NewSource(seed))
	return &LLMRunner{Model: models.NewGPT(rng, models.TinyGPT), EP: ep}
}

// TestResidentKeysUniformAcrossModes is the regression test for the
// residency-accounting fix: localSession and naiveSession used to return
// nil from residentKeys, making local/naive sessions indistinguishable
// from strategies that cannot enumerate their state. Every built-in mode
// must now report a non-nil key set in the same key space.
func TestResidentKeysUniformAcrossModes(t *testing.T) {
	const scope = "req7/"
	wantScoped := 2 * models.TinyGPT.Layers

	ep := &fakeFreeEP{}
	r := localRunner(1, ep)

	for _, tc := range []struct {
		mode Mode
		keys int
	}{
		{ModeLocal, wantScoped},
		{ModeNaive, 0},
		{ModeDeltaKV, wantScoped},
		{ModeSemAware, wantScoped},
	} {
		s, err := r.NewScopedSession(tc.mode, scope)
		if err != nil {
			t.Fatalf("%s: %v", tc.mode, err)
		}
		keys := s.ResidentKeys()
		if keys == nil {
			t.Fatalf("%s: ResidentKeys() = nil; want non-nil accounting", tc.mode)
		}
		if len(keys) != tc.keys {
			t.Fatalf("%s: %d resident keys, want %d", tc.mode, len(keys), tc.keys)
		}
		for _, k := range keys {
			if !strings.HasPrefix(k, scope+"gpt.kv.") {
				t.Fatalf("%s: key %q outside the scoped cache plane", tc.mode, k)
			}
		}
	}
}

// TestCloseFreesOnlyEndpointResidentState pins down the Close contract
// the uniform accounting must not disturb: reporting keys for
// client-local caches (local mode) or for unscoped shared refs must not
// cause Close to Free them.
func TestCloseFreesOnlyEndpointResidentState(t *testing.T) {
	ep := &fakeFreeEP{}
	r := localRunner(2, ep)

	// Local mode: keys reported, nothing endpoint-resident, no Free.
	s, err := r.NewScopedSession(ModeLocal, "req1/")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.ResidentKeys()) == 0 {
		t.Fatal("local session reports no keys")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(ep.freed) != 0 {
		t.Fatalf("local Close freed %v", ep.freed)
	}

	// Unscoped semantics-aware: caches live under the bare refs shared
	// with Generate; Close must leave them alone.
	s, err = r.NewSession(ModeSemAware)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.ResidentKeys()); got != 2*models.TinyGPT.Layers {
		t.Fatalf("unscoped sem session reports %d keys", got)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if len(ep.freed) != 0 {
		t.Fatalf("unscoped Close freed %v", ep.freed)
	}

	// Scoped semantics-aware: Close frees exactly the scoped plane.
	s, err = r.NewScopedSession(ModeSemAware, "req2/")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := len(ep.freed), 2*models.TinyGPT.Layers; got != want {
		t.Fatalf("scoped Close freed %d keys, want %d", got, want)
	}
	for _, k := range ep.freed {
		if !strings.HasPrefix(k, "req2/gpt.kv.") {
			t.Fatalf("scoped Close freed foreign key %q", k)
		}
	}
}
