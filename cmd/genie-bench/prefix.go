package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"genie/internal/backend"
	"genie/internal/device"
	"genie/internal/kvcache"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/transport"
)

// printPrefix reports the prefix-cache and prefill/decode-split section:
// TTFT and tokens/sec at 0/50/90% prefix share with the radix cache on
// and off (bit-identical tokens verified per request), then the ΔKV
// bytes the disaggregated split ships between its prefill and decode
// backends — analytic vs measured, with wire dedup collapsing repeated
// prefixes.
func printPrefix() {
	fmt.Println("== P: prefix KV cache + prefill/decode split (TinyGPT, live kernels) ==")

	const (
		promptLen = 40
		requests  = 8
		steps     = 8
		seed      = 31
	)
	model := models.NewGPT(rand.New(rand.NewSource(seed)), models.TinyGPT)
	baseline := &runtime.LLMRunner{Model: model}

	fmt.Printf("%-8s %-6s %12s %12s %9s %8s\n",
		"share", "cache", "TTFT mean", "tok/s", "hit rate", "speedup")
	for _, share := range []int{0, 50, 90} {
		pfxLen := promptLen * share / 100
		prompts := sharedPrefixPrompts(seed, requests, promptLen, pfxLen)

		offTTFT, offTok, _ := runPrefixLoad(baseline, prompts, steps, nil)
		mgr, err := kvcache.NewManager(kvcache.Config{
			Model: model, BudgetBytes: 1 << 22, PageTokens: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		onTTFT, onTok, onTokens := runPrefixLoad(mgr.Runner(), prompts, steps, nil)

		// Parity: every cached request must match the uncached baseline.
		_, _, offTokens := runPrefixLoad(baseline, prompts, steps, nil)
		for i := range prompts {
			for j := range offTokens[i] {
				if onTokens[i][j] != offTokens[i][j] {
					log.Fatalf("prefix bench: request %d diverges at token %d with cache on", i, j)
				}
			}
		}

		st := mgr.Snapshot()
		fmt.Printf("%-8s %-6s %12v %12.0f %9s %8s\n",
			fmt.Sprintf("%d%%", share), "off",
			offTTFT.Round(time.Microsecond), offTok, "-", "-")
		fmt.Printf("%-8s %-6s %12v %12.0f %8.0f%% %7.2fx\n",
			"", "on", onTTFT.Round(time.Microsecond), onTok,
			st.HitRatio*100, float64(offTTFT)/float64(onTTFT))
	}
	fmt.Println("(TTFT = prefill wall time, mean over requests; tokens bit-identical")
	fmt.Println(" cache on/off; CPU wall-clock, not the paper's modeled GPU times)")

	printPrefixSplit(model, seed)
	fmt.Println()
}

// printPrefixSplit measures the disaggregated prefill/decode handoff
// over two real pipe backends.
func printPrefixSplit(model *models.GPT, seed int64) {
	prefillBE, stopP := prefixPipeBackend()
	defer stopP()
	decodeBE, stopD := prefixPipeBackend()
	defer stopD()

	mgr, err := kvcache.NewManager(kvcache.Config{
		Model: model, BudgetBytes: 1 << 22, PageTokens: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := kvcache.NewSplit(kvcache.SplitConfig{
		Model:          model,
		Prefill:        prefillBE.cli,
		Decode:         decodeBE.cli,
		DecodeCounters: decodeBE.ctr,
		Cache:          mgr,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sp.InstallWeights(); err != nil {
		log.Fatal(err)
	}
	r := sp.Runner()

	const promptLen, steps = 40, 4
	prompts := sharedPrefixPrompts(seed, 3, promptLen, promptLen*90/100)
	perTok := model.Cfg.KVBytesPerToken()

	fmt.Println("\nsplit prefill/decode: ΔKV handoff per request (90% shared prefix)")
	fmt.Printf("%-8s %8s %12s %12s %14s\n",
		"request", "suffix", "ΔKV bytes", "analytic", "decode wire B")
	var lastDelta, lastTokens int64
	for i, prompt := range prompts {
		wireBefore := decodeBE.ctr.Total()
		s, err := r.NewScopedSession(runtime.ModeSemAware, fmt.Sprintf("p%d/", i))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := s.Prefill(prompt); err != nil {
			log.Fatal(err)
		}
		for k := 0; k < steps; k++ {
			if _, err := s.Step(); err != nil {
				log.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			log.Fatal(err)
		}
		delta := sp.DeltaBytes() - lastDelta
		suffix := sp.DeltaTokens() - lastTokens
		lastDelta, lastTokens = sp.DeltaBytes(), sp.DeltaTokens()
		fmt.Printf("%-8d %8d %12d %12d %14d\n",
			i, suffix, delta, suffix*perTok, decodeBE.ctr.Total()-wireBefore)
	}
	fmt.Printf("(ΔKV bytes = suffix tokens x %d B/token exactly; decode wire B also\n", perTok)
	fmt.Println(" carries the dedup-hinted prefix bind, which collapses to per-tensor")
	fmt.Println(" hashes once the decode connection has seen the shared prefix)")
}

type prefixBackend struct {
	cli *transport.Client
	ctr *transport.Counters
}

func prefixPipeBackend() (*prefixBackend, func()) {
	ctr := &transport.Counters{}
	cconn, sconn := transport.Pipe(ctr, nil)
	srv := backend.NewServer(device.A100)
	go func() { _ = srv.Serve(sconn) }()
	cli := transport.NewClient(cconn)
	if _, err := cli.Negotiate(nil, transport.FeatAll); err != nil {
		log.Fatal(err)
	}
	return &prefixBackend{cli: cli, ctr: ctr}, func() {
		_ = cconn.Close()
		_ = sconn.Close()
	}
}

// sharedPrefixPrompts builds n prompts of promptLen tokens sharing their
// first pfxLen tokens (the "prefix share" knob).
func sharedPrefixPrompts(seed int64, n, promptLen, pfxLen int) [][]int64 {
	rng := rand.New(rand.NewSource(seed + 1000))
	prefix := make([]int64, pfxLen)
	for i := range prefix {
		prefix[i] = rng.Int63n(int64(models.TinyGPT.Vocab))
	}
	prompts := make([][]int64, n)
	for r := range prompts {
		p := append([]int64{}, prefix...)
		for len(p) < promptLen {
			p = append(p, rng.Int63n(int64(models.TinyGPT.Vocab)))
		}
		prompts[r] = p
	}
	return prompts
}

// runPrefixLoad runs every prompt through its own scoped session and
// reports mean TTFT (prefill wall time), whole-run tokens/sec, and the
// generated token sequences for parity checks.
func runPrefixLoad(r *runtime.LLMRunner, prompts [][]int64, steps int, _ any) (time.Duration, float64, [][]int64) {
	var ttft time.Duration
	var tokens [][]int64
	start := time.Now()
	for i, prompt := range prompts {
		s, err := r.NewScopedSession(runtime.ModeLocal, fmt.Sprintf("b%d/", i))
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		tok, err := s.Prefill(prompt)
		if err != nil {
			log.Fatal(err)
		}
		ttft += time.Since(t0)
		seq := []int64{tok}
		for k := 1; k < steps; k++ {
			if tok, err = s.Step(); err != nil {
				log.Fatal(err)
			}
			seq = append(seq, tok)
		}
		if err := s.Close(); err != nil {
			log.Fatal(err)
		}
		tokens = append(tokens, seq)
	}
	el := time.Since(start)
	return ttft / time.Duration(len(prompts)), float64(len(prompts)*steps) / el.Seconds(), tokens
}
