package backend

import (
	"net"
	"strings"
	"testing"

	"genie/internal/device"
	"genie/internal/lazy"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

func newTestServer() *Server { return NewServer(device.A100) }

func TestUploadLookupFree(t *testing.T) {
	s := newTestServer()
	data := tensor.FromF32(tensor.Shape{2}, []float32{1, 2})
	ack, _ := s.Upload("w", data)
	if ack.Epoch != 1 || ack.Bytes != 8 {
		t.Errorf("ack %+v", ack)
	}
	got, err := s.Lookup("w", 1)
	if err != nil || !tensor.AllClose(got, data, 0, 0) {
		t.Errorf("lookup: %v", err)
	}
	if _, err := s.Lookup("missing", 0); err == nil {
		t.Error("missing key should fail")
	}
	s.Free("w")
	if _, err := s.Lookup("w", 0); err == nil {
		t.Error("freed key should fail")
	}
	if s.Stats().ResidentBytes != 0 {
		t.Error("resident bytes should drop to zero")
	}
}

func TestUploadReplaceAccountsBytes(t *testing.T) {
	s := newTestServer()
	mustUpload(t, s, "w", tensor.New(tensor.F32, 10))
	mustUpload(t, s, "w", tensor.New(tensor.F32, 3))
	if got := s.Stats().ResidentBytes; got != 12 {
		t.Errorf("resident bytes %d, want 12", got)
	}
}

func TestCrashInvalidatesEpoch(t *testing.T) {
	s := newTestServer()
	ack, _ := s.Upload("kv", tensor.New(tensor.F32, 4))
	s.Crash()
	if _, err := s.Lookup("kv", ack.Epoch); err == nil {
		t.Error("crash should drop resident objects")
	}
	if s.Epoch() != ack.Epoch+1 {
		t.Errorf("epoch %d after crash", s.Epoch())
	}
	// Re-upload in the new epoch; old-epoch lookups must be rejected.
	ack2, _ := s.Upload("kv", tensor.New(tensor.F32, 4))
	if _, err := s.Lookup("kv", ack.Epoch); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Errorf("stale lookup error = %v", err)
	}
	if _, err := s.Lookup("kv", ack2.Epoch); err != nil {
		t.Errorf("fresh lookup: %v", err)
	}
}

func buildMatMulExec(t *testing.T) (*transport.Exec, srg.NodeID) {
	t.Helper()
	b := lazy.NewBuilder("mm")
	x := b.Input("x", tensor.FromF32(tensor.Shape{1, 2}, []float32{1, 2}))
	w := b.Param("w", tensor.FromF32(tensor.Shape{2, 2}, []float32{1, 0, 0, 1}))
	y := b.MatMul(x, w)
	xt, _ := b.InputData("x")
	return &transport.Exec{
		Graph: b.Graph(),
		Binds: []transport.Binding{{Ref: "x", Inline: xt}},
		Want:  []srg.NodeID{y.ID()},
	}, y.ID()
}

func TestExecWithResidentWeights(t *testing.T) {
	s := newTestServer()
	// Weights resident under their param ref (no binding needed).
	mustUpload(t, s, "w", tensor.FromF32(tensor.Shape{2, 2}, []float32{1, 0, 0, 1}))
	x, yID := buildMatMulExec(t)
	ok, err := s.Exec(x)
	if err != nil {
		t.Fatal(err)
	}
	got := ok.Results[yID]
	if got == nil || got.F32()[0] != 1 || got.F32()[1] != 2 {
		t.Errorf("exec result %v", got)
	}
	if ok.GPUTimeNs <= 0 {
		t.Error("gpu time should be accounted")
	}
	if s.Stats().ExecCalls != 1 {
		t.Error("exec calls not counted")
	}
}

func TestExecMissingBindingFails(t *testing.T) {
	s := newTestServer()
	x, _ := buildMatMulExec(t)
	if _, err := s.Exec(x); err == nil {
		t.Error("exec without resident weights or binding should fail")
	}
}

func TestExecKeepMaterializesRemotely(t *testing.T) {
	s := newTestServer()
	mustUpload(t, s, "w", tensor.FromF32(tensor.Shape{2, 2}, []float32{2, 0, 0, 2}))
	x, yID := buildMatMulExec(t)
	x.Keep = map[srg.NodeID]string{yID: "act.y"}
	x.Want = nil
	ok, err := s.Exec(x)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Kept["act.y"] != 8 {
		t.Errorf("kept %v", ok.Kept)
	}
	kept, err := s.Lookup("act.y", ok.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if kept.F32()[0] != 2 || kept.F32()[1] != 4 {
		t.Errorf("kept value %v", kept.F32())
	}
}

func TestExecStaleEpochBindingFails(t *testing.T) {
	s := newTestServer()
	ack, _ := s.Upload("cache", tensor.New(tensor.F32, 1, 2))
	s.Crash()
	mustUpload(t, s, "w", tensor.FromF32(tensor.Shape{2, 2}, []float32{1, 0, 0, 1}))
	mustUpload(t, s, "cache", tensor.New(tensor.F32, 1, 2)) // new epoch
	x, _ := buildMatMulExec(t)
	// Rebind the graph's "x" leaf to the pre-crash epoch of the cache.
	x.Binds = []transport.Binding{{Ref: "x", Key: "cache", Epoch: ack.Epoch}}
	// Binding an evicted/stale object must fail loudly, not silently
	// recompute — lineage decides what to do.
	if _, err := s.Exec(x); err == nil {
		t.Error("stale binding should fail")
	}
}

func TestFailNextExecs(t *testing.T) {
	s := newTestServer()
	mustUpload(t, s, "w", tensor.FromF32(tensor.Shape{2, 2}, []float32{1, 0, 0, 1}))
	s.FailNextExecs(1)
	x, _ := buildMatMulExec(t)
	if _, err := s.Exec(x); err == nil {
		t.Fatal("armed failure should fire")
	}
	if _, err := s.Exec(x); err != nil {
		t.Fatalf("second exec should succeed: %v", err)
	}
}

func TestResetAccounting(t *testing.T) {
	s := newTestServer()
	mustUpload(t, s, "w", tensor.FromF32(tensor.Shape{2, 2}, []float32{1, 0, 0, 1}))
	x, _ := buildMatMulExec(t)
	if _, err := s.Exec(x); err != nil {
		t.Fatal(err)
	}
	s.ResetAccounting()
	st := s.Stats()
	if st.GPUBusyNs != 0 || st.ExecCalls != 0 {
		t.Error("accounting not reset")
	}
	if st.ResidentCount != 1 {
		t.Error("reset must not evict residents")
	}
}

// TestEndToEndOverTCP exercises the full wire path: real listener, real
// client, upload + exec + fetch + crash + stats.
func TestEndToEndOverTCP(t *testing.T) {
	s := newTestServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.Listen(l) }()

	conn, err := transport.Dial(l.Addr().String(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewClient(conn)
	defer client.Close()

	if _, err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	w := tensor.FromF32(tensor.Shape{2, 2}, []float32{3, 0, 0, 3})
	ack, err := client.Upload("w", w)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Bytes != 16 {
		t.Errorf("upload ack %+v", ack)
	}

	x, yID := buildMatMulExec(t)
	x.Keep = map[srg.NodeID]string{yID: "y"}
	ok, err := client.Exec(x)
	if err != nil {
		t.Fatal(err)
	}
	if ok.Results[yID].F32()[1] != 6 {
		t.Errorf("remote exec result %v", ok.Results[yID].F32())
	}

	fetched, err := client.Fetch("y", ok.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if fetched.F32()[0] != 3 {
		t.Errorf("fetched %v", fetched.F32())
	}

	st, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ExecCalls != 1 || st.ResidentCount != 2 {
		t.Errorf("stats %+v", st)
	}

	if err := client.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Fetch("y", ok.Epoch); err == nil {
		t.Error("fetch after crash should fail")
	}

	// Traffic was counted.
	if conn.Counters().Total() == 0 {
		t.Error("no traffic counted")
	}
	if err := client.Free("w"); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentClients checks the server handles parallel connections.
func TestConcurrentClients(t *testing.T) {
	s := newTestServer()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = s.Listen(l) }()

	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			conn, err := transport.Dial(l.Addr().String(), nil, nil)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			c := transport.NewClient(conn)
			for j := 0; j < 20; j++ {
				if _, err := c.Ping(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// mustUpload is a test helper asserting an upload fits.
func mustUpload(t *testing.T, s *Server, key string, data *tensor.Tensor) *transport.UploadOK {
	t.Helper()
	ack, err := s.Upload(key, data)
	if err != nil {
		t.Fatal(err)
	}
	return ack
}

func TestUploadCapacityEnforced(t *testing.T) {
	spec := device.A100
	spec.MemBytes = 64 // tiny device
	s := NewServer(spec)
	if _, err := s.Upload("a", tensor.New(tensor.F32, 8)); err != nil { // 32 B
		t.Fatal(err)
	}
	if _, err := s.Upload("b", tensor.New(tensor.F32, 8)); err != nil { // 64 B total
		t.Fatal(err)
	}
	if _, err := s.Upload("c", tensor.New(tensor.F32, 1)); err == nil {
		t.Error("over-capacity upload should fail")
	}
	// Replacing an existing object accounts for the freed bytes.
	if _, err := s.Upload("a", tensor.New(tensor.F32, 8)); err != nil {
		t.Errorf("same-size replacement should fit: %v", err)
	}
	// Freeing makes room.
	s.Free("b")
	if _, err := s.Upload("c", tensor.New(tensor.F32, 4)); err != nil {
		t.Errorf("post-free upload should fit: %v", err)
	}
}

func TestExecKeepRespectsCapacity(t *testing.T) {
	spec := device.A100
	spec.MemBytes = 24 // room for w (16 B) + little else
	s := NewServer(spec)
	mustUpload(t, s, "w", tensor.FromF32(tensor.Shape{2, 2}, []float32{1, 0, 0, 1}))
	x, yID := buildMatMulExec(t)
	x.Keep = map[srg.NodeID]string{yID: "big"} // 8 B result: fits
	if _, err := s.Exec(x); err != nil {
		t.Fatalf("8 B keep should fit: %v", err)
	}
	// Now the store holds 24 B; keeping another copy must fail.
	x2, y2 := buildMatMulExec(t)
	x2.Keep = map[srg.NodeID]string{y2: "big2"}
	if _, err := s.Exec(x2); err == nil {
		t.Error("over-capacity keep should fail")
	}
}
