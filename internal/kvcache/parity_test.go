package kvcache

import (
	"fmt"
	"math/rand"
	"testing"

	"genie/internal/backend"
	"genie/internal/device"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/transport"
)

// pipeBackend is an in-process backend over a synchronous pipe with
// explicit shutdown (goroutine-leak checks run after teardown).
type pipeBackend struct {
	cli          *transport.Client
	ctr          *transport.Counters
	srv          *backend.Server
	cconn, sconn *transport.Conn
}

func startPipeBackend(t *testing.T) *pipeBackend {
	t.Helper()
	ctr := &transport.Counters{}
	cconn, sconn := transport.Pipe(ctr, nil)
	srv := backend.NewServer(device.A100)
	go func() { _ = srv.Serve(sconn) }()
	pb := &pipeBackend{cli: transport.NewClient(cconn), ctr: ctr, srv: srv, cconn: cconn, sconn: sconn}
	if _, err := pb.cli.Negotiate(nil, transport.FeatAll); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pb.stop)
	return pb
}

func (p *pipeBackend) stop() {
	p.cconn.Close()
	p.sconn.Close()
}

func generateScoped(t *testing.T, r *runtime.LLMRunner, mode runtime.Mode, scope string, prompt []int64, steps int) []int64 {
	t.Helper()
	s, err := r.NewScopedSession(mode, scope)
	if err != nil {
		t.Fatal(err)
	}
	tok, err := s.Prefill(prompt)
	if err != nil {
		t.Fatal(err)
	}
	out := []int64{tok}
	for i := 1; i < steps; i++ {
		tok, err = s.Step()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, tok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

var parityPrompt = []int64{5, 17, 42, 3, 9, 28, 54, 11, 2, 33}

// TestLocalCachedParity: the prefix-cached local strategy must emit
// bit-identical token sequences to the uncached local baseline — cold
// (miss), warm (full-prefix hit), and on a prompt sharing only part of
// its prefix (partial hit forcing a radix split).
func TestLocalCachedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	model := models.NewGPT(rng, models.TinyGPT)
	const steps = 5

	baseline := &runtime.LLMRunner{Model: model}
	mgr, err := NewManager(Config{Model: model, BudgetBytes: 1 << 20, PageTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	cached := mgr.Runner()

	divergent := append(append([]int64{}, parityPrompt[:6]...), 60, 61, 62, 63)
	for _, prompt := range [][]int64{parityPrompt, parityPrompt, divergent, parityPrompt} {
		want := generateScoped(t, baseline, runtime.ModeLocal, "", prompt, steps)
		got := generateScoped(t, cached, runtime.ModeLocal, "", prompt, steps)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("prompt %v: cached diverges at step %d: %v vs %v", prompt, i, got, want)
			}
		}
	}
	st := mgr.Snapshot()
	if st.Hits < 2 {
		t.Fatalf("warm passes produced %d hits", st.Hits)
	}
	if st.BytesSaved == 0 {
		t.Fatal("no bytes saved across warm passes")
	}
}

// TestRemoteCachedParity: the fused-RPC cached strategy over a real
// backend must match the uncached local baseline, and repeated prefixes
// must both hit the radix tree and dedup on the wire (second prefill
// ships fewer bytes than the first).
func TestRemoteCachedParity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	model := models.NewGPT(rng, models.TinyGPT)
	const steps = 5

	baseline := &runtime.LLMRunner{Model: model}
	want := generateScoped(t, baseline, runtime.ModeLocal, "", parityPrompt, steps)

	pb := startPipeBackend(t)
	mgr, err := NewManager(Config{Model: model, BudgetBytes: 1 << 20, PageTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := mgr.RunnerOn(pb.cli, pb.ctr)
	if _, err := r.InstallModelWeights(); err != nil {
		t.Fatal(err)
	}
	base, err := pb.cli.Stats()
	if err != nil {
		t.Fatal(err)
	}

	var prefillBytes []int64
	for i := 0; i < 3; i++ {
		before := pb.ctr.Total()
		got := generateScoped(t, r, runtime.ModeSemAware, fmt.Sprintf("req%d/", i), parityPrompt, steps)
		prefillBytes = append(prefillBytes, pb.ctr.Total()-before)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("pass %d diverges at step %d: %v vs %v", i, j, got, want)
			}
		}
	}
	st := mgr.Snapshot()
	if st.Hits < 2 {
		t.Fatalf("radix hits %d, want >= 2", st.Hits)
	}
	// Warm passes bind the gathered prefix with the dedup hint; after the
	// first trip the prefix content collapses to hashes, so a warm
	// request must move fewer bytes than the cold one.
	if prefillBytes[2] >= prefillBytes[0] {
		t.Fatalf("warm request moved %d bytes >= cold %d", prefillBytes[2], prefillBytes[0])
	}
	// The backend holds each session's cache under its scoped keys; Close
	// frees them, so resident count must be back to weights-only.
	stats, err := pb.cli.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.ResidentCount != base.ResidentCount {
		t.Fatalf("resident count %d after Close, want %d (scoped KV leaked)", stats.ResidentCount, base.ResidentCount)
	}
}
