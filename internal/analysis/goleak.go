package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoleakAnalyzer requires a visible cancellation path for every
// goroutine launched in the serving layers. Drain correctness — the
// property that Stop/Drain actually terminates the engine — is a global
// invariant assembled from local ones: each per-lane and per-connection
// goroutine must observe some stop signal. A `go` statement whose body
// loops forever without consulting a context, a done/stop channel, or a
// closable work channel outlives every drain and pins its session (and
// the remote KV residency it scopes) for the life of the process.
//
// Scope: go statements in genie/internal/serve, genie/internal/backend,
// genie/internal/runtime, genie/internal/compute (the kernel worker
// pool: its resident helpers must observe Stop's done-channel close, or
// every Configure call would strand a band of goroutines for the life of
// the process), and genie/internal/obs (the trace recorder's drain
// goroutine must observe Stop's done-channel close for the same
// reason), plus genie/internal/chaos and genie/internal/pool (elastic
// membership: rebuild and repair paths must not strand per-member
// goroutines when a member leaves). A goroutine is flagged when its body (the
// literal, or the same-package function/method it calls) contains an
// unconditional `for { ... }` loop with no cancellation signal anywhere
// in the body: no channel receive, no select, no ranging over a
// channel, and no context Done/Err check. Bounded goroutines (no
// infinite loop) pass; dynamic leak detection is the job of
// metrics.GoroutineSnapshot.
var GoleakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "goroutines in the serving layers need a visible cancellation path",
	AppliesTo: func(scope string) bool {
		return hasPrefixPath(scope, "genie/internal/serve") ||
			hasPrefixPath(scope, "genie/internal/backend") ||
			hasPrefixPath(scope, "genie/internal/runtime") ||
			hasPrefixPath(scope, "genie/internal/compute") ||
			hasPrefixPath(scope, "genie/internal/obs") ||
			hasPrefixPath(scope, "genie/internal/chaos") ||
			hasPrefixPath(scope, "genie/internal/pool")
	},
	Run: runGoleak,
}

func runGoleak(pass *Pass) {
	decls := declBodies(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, g, decls)
			if body == nil {
				return true
			}
			if loop := endlessLoop(body); loop != nil && !hasCancelSignal(pass, body) {
				pass.Reportf(g.Pos(),
					"goroutine runs an unconditional loop with no cancellation path: select on a ctx/done channel or bound the loop")
			}
			return true
		})
	}
}

// declBodies indexes the package's function declarations by object so a
// `go s.run()` can be traced to run's body.
func declBodies(pass *Pass) map[types.Object]*ast.BlockStmt {
	out := make(map[types.Object]*ast.BlockStmt)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					out[obj] = fd.Body
				}
			}
		}
	}
	return out
}

// goBody resolves the body a go statement will execute: a literal's
// body, or the body of a same-package function/method. Cross-package
// and dynamic callees resolve to nil (not analyzable, not flagged).
func goBody(pass *Pass, g *ast.GoStmt, decls map[types.Object]*ast.BlockStmt) *ast.BlockStmt {
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := calleeFunc(pass.Info, g.Call); fn != nil {
		return decls[fn]
	}
	return nil
}

// endlessLoop finds an unconditional for-loop in body (not inside a
// nested function literal).
func endlessLoop(body *ast.BlockStmt) *ast.ForStmt {
	var found *ast.ForStmt
	walkIgnoringFuncLits(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil && found == nil {
			found = f
		}
		return found == nil
	})
	return found
}

// hasCancelSignal reports whether body contains any construct through
// which a stop can arrive: a channel receive (select case or direct), a
// range over a channel, or a context Done/Err call.
func hasCancelSignal(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	walkIgnoringFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := pass.Info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Info, n); fn != nil {
				if (fn.Name() == "Done" || fn.Name() == "Err") && funcPkgPath(fn) == "context" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
