package scheduler

import (
	"fmt"
	"time"

	"genie/internal/cluster"
)

// Prober measures a live round trip to an accelerator's host.
type Prober interface {
	Ping() (time.Duration, error)
}

// AdaptHints is the §3.3 "runtime hint adaptation" extension point: it
// probes the live transport and refreshes the cluster's link model so
// subsequent scheduling decisions (placement, recomputation) use measured
// rather than configured conditions. The minimum of `samples` probes
// estimates propagation RTT (filtering queueing noise).
func AdaptHints(cs *cluster.State, id cluster.AcceleratorID, p Prober, samples int) error {
	acc := cs.Accelerator(id)
	if acc == nil {
		return fmt.Errorf("scheduler: unknown accelerator %q", id)
	}
	if samples <= 0 {
		samples = 3
	}
	best := time.Duration(0)
	for i := 0; i < samples; i++ {
		rtt, err := p.Ping()
		if err != nil {
			return fmt.Errorf("scheduler: probe %q: %w", id, err)
		}
		if best == 0 || rtt < best {
			best = rtt
		}
	}
	acc.Link.RTT = best
	return nil
}

// ObserveTransfer folds a measured bulk transfer into the link's
// congestion estimate: if n bytes took elapsed, the achieved bandwidth
// relative to the nominal link rate implies how much of the link other
// traffic is consuming. Estimates are smoothed (EWMA, α=0.5) so one noisy
// sample does not whipsaw the recomputation policy.
func ObserveTransfer(cs *cluster.State, id cluster.AcceleratorID, n int64, elapsed time.Duration) error {
	acc := cs.Accelerator(id)
	if acc == nil {
		return fmt.Errorf("scheduler: unknown accelerator %q", id)
	}
	if n <= 0 || elapsed <= 0 || acc.Link.Bandwidth <= 0 {
		return fmt.Errorf("scheduler: invalid transfer observation (%d bytes, %v)", n, elapsed)
	}
	achieved := float64(n) / elapsed.Seconds()
	frac := achieved / acc.Link.Bandwidth
	if frac > 1 {
		frac = 1
	}
	observed := 1 - frac
	prev := acc.Link.Congestion
	return cs.SetCongestion(id, 0.5*prev+0.5*observed)
}
