// Package progsum is genie-lint test fixture data for the
// interprocedural summary engine itself: each group below pins one
// Summary fact and its propagation through the call graph.
package progsum

import (
	"sync"
	"time"

	"genie/internal/obs"
	"genie/internal/pool"
	"genie/internal/srg"
	"genie/internal/transport"
)

type hub struct {
	wg   sync.WaitGroup
	plan *pool.ShardPlan
	ch   chan int
}

// --- Blocks: two-hop propagation ---

func parkDirect(h *hub) { h.wg.Wait() }
func parkOnce(h *hub)   { parkDirect(h) }
func parkTwice(h *hub)  { parkOnce(h) }

// pollOnly uses a default case; a poll is not a park.
func pollOnly(h *hub) int {
	select {
	case v := <-h.ch:
		return v
	default:
		return 0
	}
}

// --- Remote ---

func callWire(c *transport.Conn) error {
	_, _, err := c.Call(transport.MsgPing, nil)
	return err
}
func callWireDeep(c *transport.Conn) error { return callWire(c) }

// --- LoopsForever ---

func spinForever(h *hub) {
	n := 0
	for {
		n++
		h.work(n)
	}
}
func (h *hub) work(n int) { _ = n }
func spinWrapped(h *hub)  { spinForever(h) }

// loopWithExit returns from inside the loop; not forever.
func loopWithExit(n int) int {
	i := 0
	for {
		i++
		if i > n {
			return i
		}
	}
}

// --- TimerLeak ---

func leakTimer(ch chan int) {
	t := time.NewTimer(time.Millisecond)
	select {
	case <-ch:
	case <-t.C:
	}
}

func stopTimer(ch chan int) {
	t := time.NewTimer(time.Millisecond)
	defer t.Stop()
	select {
	case <-ch:
	case <-t.C:
	}
}

// --- RebuildsPlan ---

func swap(h *hub, pl *pool.ShardPlan)     { h.plan = pl }
func swapDeep(h *hub, pl *pool.ShardPlan) { swap(h, pl) }

// --- KV sink parameter flow ---

func bindKey(ex *transport.Exec, key string) {
	ex.Binds = append(ex.Binds, transport.Binding{Ref: "kv", Key: key})
}
func keepKey(ex *transport.Exec, id srg.NodeID, key string) {
	ex.Keep[id] = key
}
func bindViaHelper(ex *transport.Exec, key string) {
	bindKey(ex, key)
}

// --- EndsSpan parameter flow ---

func endIt(sp *obs.Span)        { sp.End() }
func endViaHelper(sp *obs.Span) { endIt(sp) }
func keepsOpen(sp *obs.Span)    { sp.SetAttr("k", "v") }
