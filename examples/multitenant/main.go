// Command multitenant demonstrates §3.6's semantics-aware global
// scheduling: Genie instances submit annotated SRGs as first-class
// workload descriptions, and the coordinator decides where
// (heterogeneous placement by workload class), when (elastic per-phase
// pool sizing), and how (cross-tenant decode batching and SLO priority)
// each runs.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"genie"
	"genie/internal/global"
	"genie/internal/models"
	"genie/internal/nn"
)

func main() {
	// A heterogeneous pool: fast+expensive, balanced, and cheap+big.
	pool := genie.NewCluster()
	for _, spec := range []genie.DeviceSpec{genie.H100, genie.A100, genie.A10G} {
		if err := pool.AddAccelerator(&genie.Accelerator{
			ID: genie.AcceleratorID(spec.Name), Spec: spec,
			Link: genie.Link{Bandwidth: 25e9 / 8, RTT: time.Millisecond},
		}); err != nil {
			log.Fatal(err)
		}
	}
	coord := genie.NewCoordinator(pool, genie.NewCostModel(genie.RDMAProfile))

	// Four tenants with four workload classes.
	subs := []genie.Submission{
		llmTenant("alice-llm", 42, global.SLOInteractive),
		visionTenant("bob-vision"),
		recTenant("carol-rec"),
		mmTenant("dave-vqa"),
	}

	fmt.Println("=== WHERE: heterogeneous placement by semantic class ===")
	for _, sub := range subs {
		class := global.Classify(sub.Graph)
		_, dev, err := coord.PlaceTenant(sub)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s class=%-14s -> %s\n", sub.Tenant, class, dev)
	}

	fmt.Println("\n=== WHEN: elastic per-phase pool sizing ===")
	burst := []genie.Submission{
		llmTenant("burst-1", 1, global.SLOInteractive),
		llmTenant("burst-2", 2, global.SLOInteractive),
		llmTenant("burst-3", 3, global.SLOInteractive),
		llmTenant("burst-4", 4, global.SLOInteractive),
	}
	scale := global.ElasticScale(burst, genie.A100, time.Nanosecond)
	for phase, n := range scale.Devices {
		d := scale.Demands[phase]
		fmt.Printf("  phase %-14s: %6.0f MFLOPs, %8d B -> %d device(s)\n",
			phase, d.FLOPs/1e6, d.Bytes, n)
	}

	fmt.Println("\n=== HOW: cross-tenant decode batching + SLO priority ===")
	// Alice and Bob run the same public model: their decode steps share
	// an SRG fingerprint, so the coordinator fuses them.
	decodes := []genie.Submission{
		decodeTenant("alice", 42), decodeTenant("bob", 42), visionTenant("carol"),
	}
	groups, singles := global.BatchDecodes(decodes)
	for _, g := range groups {
		names := []string{}
		for _, s := range g.Subs {
			names = append(names, s.Tenant)
		}
		speedup := global.BatchSpeedup(genie.A100,
			genie.GPTJ6B.WeightBytes(), genie.GPTJ6B.KVBytes(100),
			genie.GPTJ6B.DecodeFLOPs(100), len(g.Subs))
		fmt.Printf("  batched %v (same model fp %s…): %.2fx decode throughput at GPT-J scale\n",
			names, g.Fingerprint[:8], speedup)
	}
	for _, s := range singles {
		fmt.Printf("  unbatched: %s (different workload)\n", s.Tenant)
	}

	mixed := []genie.Submission{
		{Tenant: "batch-train", SLO: global.SLOBatch, Arrival: 0},
		{Tenant: "vqa-query", SLO: global.SLOInteractive, Arrival: 1},
	}
	order := global.Prioritize(mixed)
	fmt.Printf("  dispatch order: %s before %s (interactive first)\n",
		order[0].Tenant, order[1].Tenant)
}

func llmTenant(name string, seed int64, slo global.SLO) genie.Submission {
	rng := rand.New(rand.NewSource(seed))
	m := genie.NewGPTModel(rng, genie.TinyGPT)
	b, _ := m.BuildPrefill([]int64{1, 2, 3, 4, 5})
	genie.Annotate(b.Graph())
	return genie.Submission{Tenant: name, Graph: b.Graph(), SLO: slo}
}

func decodeTenant(name string, seed int64) genie.Submission {
	rng := rand.New(rand.NewSource(seed))
	m := genie.NewGPTModel(rng, genie.TinyGPT)
	caches := make([]*nn.KVCache, m.Cfg.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{
			K: genie.NewTensor(genie.F32, 8, m.Cfg.Dim),
			V: genie.NewTensor(genie.F32, 8, m.Cfg.Dim),
		}
	}
	b, _ := m.BuildDecodeStep(1, 8, 8, caches)
	genie.Annotate(b.Graph())
	return genie.Submission{Tenant: name, Graph: b.Graph(), SLO: global.SLOInteractive}
}

func visionTenant(name string) genie.Submission {
	rng := rand.New(rand.NewSource(9))
	m := genie.NewCNNModel(rng, genie.TinyCNN)
	img := genie.NewTensor(genie.F32, 3, 32, 32)
	b, _ := m.BuildForward(img)
	genie.Annotate(b.Graph())
	return genie.Submission{Tenant: name, Graph: b.Graph(), SLO: global.SLOBatch}
}

func recTenant(name string) genie.Submission {
	rng := rand.New(rand.NewSource(10))
	m := genie.NewDLRMModel(rng, genie.TinyDLRM)
	b, _ := m.BuildForward(genie.DLRMRequest{
		Dense:     genie.NewTensor(genie.F32, 1, genie.TinyDLRM.DenseFeatures),
		SparseIDs: [][]int64{{1, 2}, {3}, {4}},
	})
	genie.Annotate(b.Graph())
	return genie.Submission{Tenant: name, Graph: b.Graph(), SLO: global.SLOBatch}
}

func mmTenant(name string) genie.Submission {
	rng := rand.New(rand.NewSource(11))
	m := models.NewMultiModal(rng, genie.TinyCNN, 64, 16, 8)
	img := genie.NewTensor(genie.F32, 3, 32, 32)
	b, _ := m.BuildForward(img, []int64{1, 2, 3})
	genie.Annotate(b.Graph())
	return genie.Submission{Tenant: name, Graph: b.Graph(), SLO: global.SLOInteractive}
}
