package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"genie/internal/global"
	"genie/internal/obs"
)

// GenerateRequest is the POST /v1/generate body.
type GenerateRequest struct {
	Tenant    string  `json:"tenant"`
	Prompt    []int64 `json:"prompt"`
	MaxTokens int     `json:"max_tokens"`
	// SLO is "interactive" (default) or "batch".
	SLO string `json:"slo"`
	// TimeoutMs bounds queue+generation (0 = engine default).
	TimeoutMs int64 `json:"timeout_ms"`
	// Stream switches the response to newline-delimited JSON token
	// events followed by a final summary object.
	Stream bool `json:"stream"`
}

// GenerateResponse is the non-streamed response body (and the final
// event of a streamed response).
type GenerateResponse struct {
	Tokens    []int64 `json:"tokens"`
	TTFTMs    float64 `json:"ttft_ms"`
	LatencyMs float64 `json:"latency_ms"`
	Backend   string  `json:"backend"`
	Error     string  `json:"error,omitempty"`
}

// StreamEvent is one token line of a streamed response.
type StreamEvent struct {
	Index int   `json:"index"`
	Token int64 `json:"token"`
}

// HealthzResponse is the degraded-state /healthz body: served with 503
// when any lane is health-quarantined, carrying per-lane detail so an
// external load balancer can see exactly which endpoints went
// fail-slow.
type HealthzResponse struct {
	Status      string                   `json:"status"`
	Quarantined []string                 `json:"quarantined"`
	Lanes       map[string]BackendHealth `json:"lanes"`
}

// NewHandler exposes an engine over HTTP: POST /v1/generate,
// GET /healthz, GET /stats, GET /metrics (Prometheus text), and
// GET /debug/trace (Chrome trace JSON of the span ring buffer).
// cmd/genie-gateway serves exactly this handler; tests drive it via
// httptest.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/generate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		// Root span for the whole HTTP request; everything below —
		// admission, queueing, session phases, transport RPCs, backend
		// execution — parents under it. Nil tracer = nil span = free.
		ctx, root := e.tracer.StartRoot(r.Context(), "http.generate")
		defer root.End()
		var greq GenerateRequest
		if err := json.NewDecoder(r.Body).Decode(&greq); err != nil {
			http.Error(w, fmt.Sprintf("bad request: %v", err), http.StatusBadRequest)
			return
		}
		root.SetAttr("tenant", greq.Tenant)
		req, err := greq.toRequest()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if greq.Stream {
			streamGenerate(w, ctx, e, req)
			return
		}
		res, err := e.Submit(ctx, req)
		if err != nil {
			writeSubmitError(w, e, res, err)
			return
		}
		writeJSON(w, http.StatusOK, toResponse(res, nil))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if e.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		if !e.anyHealthyBackend() {
			w.Header().Set("Retry-After", retryAfterSeconds(e))
			http.Error(w, "no healthy backends", http.StatusServiceUnavailable)
			return
		}
		// Degraded: some lanes quarantined by the fail-slow scorer. 503
		// with per-lane detail so an external load balancer can rotate
		// this gateway out before tail latency (not just availability)
		// collapses; capacity remains, so Retry-After is short.
		if quarantined := e.quarantinedLanes(); len(quarantined) > 0 {
			w.Header().Set("Retry-After", retryAfterSeconds(e))
			writeJSON(w, http.StatusServiceUnavailable, HealthzResponse{
				Status:      "degraded",
				Quarantined: quarantined,
				Lanes:       e.Stats().Backends,
			})
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, e.Stats())
	})
	mux.Handle("/metrics", e.Metrics())
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		if e.Tracer() == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WriteChromeTrace(w, e.Tracer().Snapshot())
	})
	return mux
}

func (g GenerateRequest) toRequest() (Request, error) {
	req := Request{
		Tenant:    g.Tenant,
		Prompt:    g.Prompt,
		MaxTokens: g.MaxTokens,
		Timeout:   time.Duration(g.TimeoutMs) * time.Millisecond,
	}
	switch g.SLO {
	case "", global.SLOInteractive.String():
		req.SLO = global.SLOInteractive
	case global.SLOBatch.String():
		req.SLO = global.SLOBatch
	default:
		return req, fmt.Errorf("unknown slo %q", g.SLO)
	}
	return req, nil
}

func toResponse(res *Result, err error) GenerateResponse {
	out := GenerateResponse{}
	if res != nil {
		out.Tokens = res.Tokens
		out.TTFTMs = float64(res.TTFT) / float64(time.Millisecond)
		out.LatencyMs = float64(res.Latency) / float64(time.Millisecond)
		out.Backend = res.Backend
	}
	if err != nil {
		out.Error = err.Error()
	}
	return out
}

// writeSubmitError maps engine errors to status codes: queue-full load
// shedding is 429, draining 503, backend loss 503 with a Retry-After
// hint, deadline 504, the rest 500.
func writeSubmitError(w http.ResponseWriter, e *Engine, res *Result, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrInvalidRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrBackendUnavailable):
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds(e))
	case errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadlineExceeded), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = 499 // client closed request (nginx convention)
	}
	writeJSON(w, status, toResponse(res, err))
}

// retryAfterSeconds renders the engine's RetryAfter hint as whole
// seconds, rounded up, at least 1 (Retry-After has no finer unit).
func retryAfterSeconds(e *Engine) string {
	secs := int64((e.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// streamGenerate writes token events as NDJSON while the request runs,
// then a final summary object. Tokens flow through a buffered channel so
// a slow reader never blocks the engine's dispatch loop.
func streamGenerate(w http.ResponseWriter, ctx context.Context, e *Engine, req Request) {
	buf := req.MaxTokens
	if buf <= 0 {
		buf = e.cfg.DefaultMaxTokens
	}
	ch := make(chan Token, buf+1)
	req.OnToken = func(t Token) {
		select {
		case ch <- t:
		default: // never block the lane; the summary carries all tokens
		}
	}
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := e.Submit(ctx, req)
		done <- outcome{res, err}
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeTok := func(t Token) {
		_ = enc.Encode(StreamEvent{Index: t.Index, Token: t.ID})
		if flusher != nil {
			flusher.Flush()
		}
	}
	for {
		select {
		case t := <-ch:
			writeTok(t)
		case o := <-done:
			for {
				select {
				case t := <-ch:
					writeTok(t)
					continue
				default:
				}
				break
			}
			_ = enc.Encode(toResponse(o.res, o.err))
			if flusher != nil {
				flusher.Flush()
			}
			return
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
