package runtime

import (
	"context"
	"fmt"
	"time"

	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/transport"
)

// GenResult is the outcome of one generation run.
type GenResult struct {
	// Tokens are the generated token ids (length = requested steps).
	Tokens []int64
	// Prefill and Decode carry per-phase metrics, reported separately as
	// in Table 2.
	Prefill Metrics
	Decode  Metrics
}

// LLMRunner generates tokens from a GPT model under a chosen
// disaggregation mode. The same runner produces bit-identical token
// sequences in every mode (greedy decoding over deterministic kernels),
// which is the correctness check the cost-only simulation cannot give.
type LLMRunner struct {
	Model *models.GPT
	// EP is the remote accelerator (nil is allowed for ModeLocal).
	EP Endpoint
	// Counters, when set, measures wire traffic (point it at the
	// endpoint's connection counters).
	Counters *transport.Counters
	// OnToken, when set, observes each generated token as its decode
	// step completes; returning false stops generation (the Stream API's
	// cancellation hook).
	OnToken func(token int64) bool
	// WeightsResident marks the endpoint as already provisioned with the
	// model's weights (InstallModelWeights); sessions then skip the
	// per-call installation. The serving engine sets this once per
	// backend so concurrent sessions don't re-upload weights.
	WeightsResident bool
	// Failover, when set, recovers sessions from endpoint loss: failed
	// executions rebind (lineage replay onto a replacement) and reissue.
	// Nil disables recovery — errors surface to the caller unchanged.
	Failover *Failover
	// NewStrategy, when set, overrides the built-in per-mode session
	// strategies: NewScopedSessionCtx delegates prefill/step/close to
	// the returned Strategy. The pool layer's sharded executor hooks in
	// here; a runner carrying a strategy needs no EP (segments route to
	// whichever endpoints the strategy owns).
	NewStrategy func(ctx context.Context, mode Mode, scope string) (Strategy, error)
}

// Generate runs prompt prefill plus steps decode iterations. It is
// exactly Prefill + steps×Step over a fresh unscoped Session, so a
// Generate call and an incrementally-driven session produce identical
// token sequences.
func (r *LLMRunner) Generate(mode Mode, prompt []int64, steps int) (*GenResult, error) {
	if len(prompt) == 0 || steps < 0 {
		return nil, fmt.Errorf("runtime: empty prompt or negative steps")
	}
	s, err := r.NewSession(mode)
	if err != nil {
		return nil, err
	}
	if _, err := s.Prefill(prompt); err != nil {
		return nil, err
	}
	res := s.Result()
	for i := 0; i < steps; i++ {
		tok := s.Next()
		res.Tokens = append(res.Tokens, tok)
		if err := r.emit(tok); err != nil {
			return res, err
		}
		// The final token needs no further forward pass.
		if i < steps-1 {
			if _, err := s.Step(); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

func (r *LLMRunner) snapshot() (int64, int64) {
	if r.Counters == nil {
		return 0, 0
	}
	sent, recv, calls := r.Counters.Snapshot()
	return sent + recv, calls
}

// measure wraps a phase and fills its metrics from wall clock, counters,
// and accumulated GPU time.
func (r *LLMRunner) measure(m *Metrics, gpu *time.Duration, fn func() error) error {
	b0, c0 := r.snapshot()
	g0 := *gpu
	start := time.Now()
	err := fn()
	m.Wall += time.Since(start)
	b1, c1 := r.snapshot()
	m.NetBytes += b1 - b0
	m.RPCCalls += c1 - c0
	m.GPUBusy += *gpu - g0
	return err
}

// modelGPUTime accounts local kernel time with the same device model the
// backend uses (the client's GPU in Local mode is the same A100).
func modelGPUTime(b interface {
	Graph() *srg.Graph
}) time.Duration {
	// Local mode models the client machine owning the accelerator; use
	// the A100 spec (matching the paper's local baseline).
	var busy time.Duration
	for _, n := range b.Graph().Nodes() {
		if n.Op == "param" || n.Op == "input" {
			continue
		}
		busy += localSpec.KernelTime(n.Cost.FLOPs, n.Cost.Bytes)
	}
	return busy
}

// InstallModelWeights provisions the runner's endpoint with every model
// parameter under its unscoped ref and marks the runner so sessions skip
// re-installation. Returns total bytes installed.
func (r *LLMRunner) InstallModelWeights() (int64, error) {
	if r.EP == nil {
		return 0, fmt.Errorf("runtime: no endpoint to install weights on")
	}
	n, err := r.installAllWeights()
	if err != nil {
		return n, err
	}
	r.WeightsResident = true
	return n, nil
}

// ensureWeights provisions weights unless the caller already did.
func (r *LLMRunner) ensureWeights() error {
	if r.WeightsResident {
		return nil
	}
	_, err := r.installAllWeights()
	return err
}

func (r *LLMRunner) installAllWeights() (int64, error) {
	// Capture one throwaway prefill to enumerate params.
	b, _ := r.Model.BuildPrefill([]int64{0})
	return InstallWeights(r.EP, b)
}

func emptyCaches(m *models.GPT) []*nn.KVCache {
	caches := make([]*nn.KVCache, m.Cfg.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{}
	}
	return caches
}
