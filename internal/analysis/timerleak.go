package analysis

import (
	"go/ast"
	"go/types"
)

// TimerleakAnalyzer flags timer allocations that leak, with loops as
// the amplifier: the retry/breaker/churn paths run for the life of the
// process, so a timer leaked per iteration is an unbounded heap of
// runtime timers all pinned on the scheduler's heap until they fire —
// exactly the slow-burn resource exhaustion chaos testing never quite
// reproduces. Rules:
//
//   - time.Tick anywhere: the ticker can never be stopped
//   - time.After inside a multi-case select inside a loop: when another
//     case fires first the timer is abandoned until it expires (a
//     plain `<-time.After(d)` sleep is fine — it is always consumed)
//   - time.NewTimer/NewTicker allocated in a loop without a Stop in the
//     same loop body; a *deferred* Stop in a loop is called out
//     specially, since it only runs at function return
//   - interprocedurally (Pass.Prog): a loop calling a module-local
//     function whose summary says it leaks a timer is flagged at the
//     call site — the allocation may be any number of calls down
var TimerleakAnalyzer = &Analyzer{
	Name: "timerleak",
	Doc:  "no timer/ticker allocated in a loop without Stop, no unstoppable time.Tick",
	AppliesTo: func(scope string) bool {
		return hasPrefixPath(scope, "genie/internal")
	},
	Run: runTimerleak,
}

func runTimerleak(pass *Pass) {
	funcBodies(pass.Files, func(name string, body *ast.BlockStmt) {
		walkIgnoringFuncLits(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isFuncNamed(pass.Info, n, "time", "Tick") {
					pass.Reportf(n.Pos(),
						"time.Tick's ticker can never be stopped and leaks for the life of the process; use time.NewTicker and defer its Stop")
				}
			case *ast.ForStmt:
				checkLoopTimers(pass, n.Body)
			case *ast.RangeStmt:
				checkLoopTimers(pass, n.Body)
			}
			return true
		})
	})
}

// checkLoopTimers scans one loop body (not descending into nested
// loops, which are visited as loops of their own, nor into function
// literals).
func checkLoopTimers(pass *Pass, body *ast.BlockStmt) {
	type allocSite struct {
		kind string
		name string
		pos  ast.Node
	}
	alloc := make(map[types.Object]*allocSite)
	var order []types.Object
	stopped := make(map[types.Object]bool)
	deferStopped := make(map[types.Object]bool)

	var walk func(n ast.Node, inDefer bool)
	walk = func(root ast.Node, inDefer bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ForStmt, *ast.RangeStmt:
				return false
			case *ast.DeferStmt:
				walk(n.Call, true)
				return false
			case *ast.SelectStmt:
				if len(n.Body.List) >= 2 {
					if after := selectAfterCall(pass.Info, n); after != nil {
						pass.Reportf(after.Pos(),
							"time.After in a multi-case select inside a loop leaks a timer every iteration another case wins; hoist a time.NewTimer out of the loop and reset it")
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					call, ok := unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					kind := timerAllocName(pass.Info, call)
					if kind == "" {
						continue
					}
					if id, ok := unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.Defs[id]; obj != nil {
							if _, seen := alloc[obj]; !seen {
								order = append(order, obj)
							}
							alloc[obj] = &allocSite{kind: kind, name: id.Name, pos: call}
							continue
						}
					}
					pass.Reportf(call.Pos(),
						"%s result in a loop is not held in a local; nothing can Stop it and it leaks every iteration", kind)
				}
			case *ast.CallExpr:
				if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
					if id, ok := unparen(sel.X).(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil {
							if inDefer {
								deferStopped[obj] = true
							} else {
								stopped[obj] = true
							}
						}
					}
				}
				if pass.Prog != nil {
					if callee := calleeFunc(pass.Info, n); callee != nil {
						if sum, ok := pass.Prog.Summary(callee); ok && sum.TimerLeak {
							pass.Reportf(n.Pos(),
								"each loop iteration calls %s, which leaks a timer (%s); hoist the timer out of the loop or make the callee stop it", callee.Name(), sum.TimerReason)
						}
					}
				}
			}
			return true
		})
	}
	walk(body, false)

	for _, obj := range order {
		site := alloc[obj]
		switch {
		case stopped[obj]:
		case deferStopped[obj]:
			pass.Reportf(site.pos.Pos(),
				"%s in a loop with only a deferred %s.Stop(): defers run at function return, not per iteration — every earlier timer leaks until then; call Stop in the loop body", site.kind, site.name)
		default:
			pass.Reportf(site.pos.Pos(),
				"%s allocated in a loop without a Stop in the loop body; the timer leaks every iteration until it fires", site.kind)
		}
	}
}

// selectAfterCall returns the time.After call used as a comm operand of
// sel, if any.
func selectAfterCall(info *types.Info, sel *ast.SelectStmt) *ast.CallExpr {
	for _, c := range sel.Body.List {
		comm := c.(*ast.CommClause).Comm
		if comm == nil {
			continue
		}
		var found *ast.CallExpr
		ast.Inspect(comm, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isFuncNamed(info, call, "time", "After") {
				found = call
			}
			return found == nil
		})
		if found != nil {
			return found
		}
	}
	return nil
}
