package obs

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"time"
)

// chromeEvent is one entry of the Chrome trace-event format ("X"
// complete events plus "M" metadata), loadable in chrome://tracing and
// Perfetto. Timestamps and durations are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts,omitempty"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  uint32         `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	DisplayUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans as Chrome trace-event JSON. Each
// process label becomes a pid row (with a process_name metadata event);
// each trace ID becomes a tid, so one request's spans nest on one
// track and concurrent requests stack as parallel tracks.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	trace := chromeTrace{DisplayUnit: "ms", TraceEvents: []chromeEvent{}}
	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	named := map[uint32]bool{}
	for _, s := range spans {
		pid := procID(s.Proc)
		if !named[pid] {
			named[pid] = true
			name := s.Proc
			if name == "" {
				name = "proc"
			}
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": name},
			})
		}
		args := map[string]any{
			"trace":  fmt.Sprintf("%#x", s.Trace),
			"span":   s.ID,
			"parent": s.Parent,
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			Pid:  pid,
			Tid:  s.Trace,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}

// procID derives a stable pid for a process label.
func procID(proc string) uint32 {
	if proc == "" {
		return 1
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(proc))
	id := h.Sum32() & 0x7fffffff
	if id == 0 {
		id = 1
	}
	return id
}

// WriteNDJSON renders spans one JSON object per line — the grep-able
// export for log pipelines.
func WriteNDJSON(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}
