package models

import (
	"bytes"
	"math/rand"
	"testing"

	"genie/internal/exec"
	"genie/internal/nn"
)

func TestPrefillExtendMatchesFullPrefill(t *testing.T) {
	// Prefix prefill + suffix extend must be bit-identical to one full
	// prefill over the whole prompt: same next token, same final logits
	// row, and prefix-rows ++ extend's fresh rows == the full pass's KV.
	// This is the invariant the prefix cache rides on.
	rng := rand.New(rand.NewSource(11))
	m := NewGPT(rng, TinyGPT)
	seq := []int64{7, 3, 9, 1, 14, 2, 8, 5}

	bFull, outFull := m.BuildPrefill(seq)
	valsFull, err := exec.Graph(bFull.Graph(), bindAll(bFull))
	if err != nil {
		t.Fatal(err)
	}

	for _, split := range []int{1, 3, len(seq) - 1} {
		bPre, outPre := m.BuildPrefill(seq[:split])
		valsPre, err := exec.Graph(bPre.Graph(), bindAll(bPre))
		if err != nil {
			t.Fatal(err)
		}
		caches := make([]*nn.KVCache, TinyGPT.Layers)
		for i := range caches {
			caches[i] = &nn.KVCache{}
			caches[i].Append(valsPre[outPre.CacheK[i]], valsPre[outPre.CacheV[i]])
		}

		bExt, outExt := m.BuildPrefillExtend(seq[split:], split, caches)
		valsExt, err := exec.Graph(bExt.Graph(), bindAll(bExt))
		if err != nil {
			t.Fatal(err)
		}

		if got, want := valsExt[outExt.NextToken].I64()[0], valsFull[outFull.NextToken].I64()[0]; got != want {
			t.Errorf("split %d: extend next token %d != full prefill %d", split, got, want)
		}
		if !bytes.Equal(valsExt[outExt.LastLogits].Bytes(), valsFull[outFull.LastLogits].Bytes()) {
			t.Errorf("split %d: last logits differ from full prefill", split)
		}
		for i := 0; i < TinyGPT.Layers; i++ {
			// NewK must carry only the suffix rows.
			if rows := valsExt[outExt.NewK[i]].Shape()[0]; rows != len(seq)-split {
				t.Fatalf("split %d layer %d: %d fresh K rows, want %d", split, i, rows, len(seq)-split)
			}
			assembledK := append(append([]byte{}, valsPre[outPre.CacheK[i]].Bytes()...),
				valsExt[outExt.NewK[i]].Bytes()...)
			assembledV := append(append([]byte{}, valsPre[outPre.CacheV[i]].Bytes()...),
				valsExt[outExt.NewV[i]].Bytes()...)
			if !bytes.Equal(assembledK, valsFull[outFull.CacheK[i]].Bytes()) {
				t.Errorf("split %d layer %d: assembled K cache differs from full prefill", split, i)
			}
			if !bytes.Equal(assembledV, valsFull[outFull.CacheV[i]].Bytes()) {
				t.Errorf("split %d layer %d: assembled V cache differs from full prefill", split, i)
			}
		}
	}
}

func TestPrefillExtendNewRowsAreDistinctFromAppended(t *testing.T) {
	// With history, NewK/NewV must point at the fresh-row nodes while
	// CacheK/CacheV point at the appended concats — the distinction the
	// ΔKV handoff relies on (ship suffix rows, not the whole cache).
	rng := rand.New(rand.NewSource(12))
	m := NewGPT(rng, TinyGPT)
	caches := make([]*nn.KVCache, TinyGPT.Layers)
	b, out := m.BuildPrefillExtend([]int64{4, 6}, 3, caches)
	g := b.Graph()
	for i := range out.NewK {
		if out.NewK[i] == out.CacheK[i] || out.NewV[i] == out.CacheV[i] {
			t.Fatalf("layer %d: fresh-row node aliases the appended cache node", i)
		}
		if rows := g.Node(out.NewK[i]).Output.Shape[0]; rows != 2 {
			t.Errorf("layer %d: fresh K rows %d, want 2", i, rows)
		}
		if rows := g.Node(out.CacheK[i]).Output.Shape[0]; rows != 5 {
			t.Errorf("layer %d: appended K rows %d, want 5", i, rows)
		}
	}
}

func TestPrefillExtendRejectsBadSpans(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := NewGPT(rng, TinyGPT)
	for _, c := range []struct {
		suffix []int64
		hist   int
	}{
		{nil, 3},
		{[]int64{1}, 0},
		{make([]int64, TinyGPT.MaxSeq), 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("extend(%d tokens, hist %d) should panic", len(c.suffix), c.hist)
				}
			}()
			m.BuildPrefillExtend(c.suffix, c.hist, nil)
		}()
	}
}
