package scheduler

import (
	"fmt"
	"strings"

	"genie/internal/cluster"
	"genie/internal/srg"
)

// shardByMemory handles models whose persistent weights exceed a single
// device's memory — the "disproportionate resource requirements" case
// from the paper's introduction. It splits the graph into module-level
// groups (transformer blocks, CNN stages) in topological order and
// greedily bin-packs consecutive groups onto devices by weight footprint,
// so activations stream device-to-device once per boundary while every
// weight lives exactly one place.
//
// Returns nil if the model fits on the home device (no sharding needed).
func shardByMemory(g *srg.Graph, cs *cluster.State, home cluster.AcceleratorID) (map[srg.NodeID]cluster.AcceleratorID, error) {
	homeAcc := cs.Accelerator(home)
	if homeAcc == nil {
		return nil, fmt.Errorf("scheduler: unknown home device %q", home)
	}
	var totalWeights int64
	for _, id := range g.Params() {
		totalWeights += g.Node(id).Output.Bytes()
	}
	budget := homeAcc.Spec.MemBytes - cs.ResidentBytes(home)
	if totalWeights <= budget {
		return nil, nil // fits: no sharding
	}

	// Group compute nodes by their top-level module unit (e.g.
	// "gpt.blocks.3" or "cnn.stages.1"); ungrouped nodes attach to the
	// previous group so boundaries stay clean.
	groups, order := moduleGroups(g)
	if len(order) < 2 {
		return nil, fmt.Errorf("scheduler: weights (%d B) exceed device memory (%d B) and the graph has no module boundaries to shard across", totalWeights, budget)
	}

	// Per-group weight footprint: params consumed by the group's nodes.
	paramOwner := map[srg.NodeID]string{}
	for _, gname := range order {
		for _, id := range groups[gname] {
			for _, in := range g.Node(id).Inputs {
				dep := g.Node(in)
				if dep.Op == "param" {
					if _, claimed := paramOwner[in]; !claimed {
						paramOwner[in] = gname
					}
				}
			}
		}
	}
	weightOf := map[string]int64{}
	for pid, gname := range paramOwner {
		weightOf[gname] += g.Node(pid).Output.Bytes()
	}

	// Greedy packing of consecutive groups onto remote devices.
	remote := cs.Remote()
	place := map[srg.NodeID]cluster.AcceleratorID{}
	devIdx := 0
	var used int64
	devBudget := func(i int) int64 {
		a := remote[i]
		return a.Spec.MemBytes - cs.ResidentBytes(a.ID)
	}
	for _, gname := range order {
		need := weightOf[gname]
		for devIdx < len(remote) && used+need > devBudget(devIdx) && used > 0 {
			devIdx++
			used = 0
		}
		if devIdx >= len(remote) || need > devBudget(devIdx) {
			return nil, fmt.Errorf("scheduler: model does not fit across the pool (group %q needs %d B)", gname, need)
		}
		used += need
		dev := remote[devIdx].ID
		for _, id := range groups[gname] {
			place[id] = dev
		}
	}
	return place, nil
}

// moduleGroups buckets compute nodes by their top-level repeating module
// unit in topological order. The unit is the module path truncated after
// a numeric segment ("gpt.blocks.3.attention.wq" → "gpt.blocks.3"), or
// the first two segments otherwise.
func moduleGroups(g *srg.Graph) (map[string][]srg.NodeID, []string) {
	groups := map[string][]srg.NodeID{}
	var order []string
	seen := map[string]bool{}
	last := ""
	for _, n := range g.Nodes() {
		if n.Op == "param" || n.Op == "input" {
			continue
		}
		name := groupName(n.Module)
		if name == "" {
			if last == "" {
				name = "_head"
			} else {
				name = last
			}
		}
		if !seen[name] {
			seen[name] = true
			order = append(order, name)
		}
		groups[name] = append(groups[name], n.ID)
		last = name
	}
	return groups, order
}

func groupName(module string) string {
	if module == "" {
		return ""
	}
	parts := strings.Split(module, ".")
	for i, p := range parts {
		if isDigits(p) {
			return strings.Join(parts[:i+1], ".")
		}
	}
	if len(parts) > 2 {
		return strings.Join(parts[:2], ".")
	}
	return module
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// ShardReport summarizes a sharded placement for logs and tests.
func ShardReport(plan *Plan) map[cluster.AcceleratorID]int {
	out := map[cluster.AcceleratorID]int{}
	for _, n := range plan.Graph.Nodes() {
		if n.Op == "param" || n.Op == "input" {
			continue
		}
		out[plan.DeviceOf(n.ID)]++
	}
	return out
}
