package analysis

import "testing"

// One fixture package per analyzer, positives and negatives pinned by
// `// want` comments.

func TestCtxflowFixture(t *testing.T) {
	runWantTest(t, "ctxflow", fixtureDir("internal", "ctxflow"))
}

func TestLockscopeFixture(t *testing.T) {
	runWantTest(t, "lockscope", fixtureDir("internal", "lockscope"))
}

func TestGoleakFixture(t *testing.T) {
	runWantTest(t, "goleak", fixtureDir("internal", "serve", "goleakdata"))
}

func TestErrcheckFixture(t *testing.T) {
	runWantTest(t, "errcheck", fixtureDir("internal", "errcheckdata"))
}

func TestTensormutFixture(t *testing.T) {
	runWantTest(t, "tensormut", fixtureDir("internal", "tmut"))
}

func TestRetrynakedFixture(t *testing.T) {
	runWantTest(t, "retrynaked", fixtureDir("internal", "retrynaked"))
}

// TestFixtureScopeMapping pins the testdata/src path translation that
// makes fixture packages land inside each analyzer's scope.
func TestFixtureScopeMapping(t *testing.T) {
	pkg := loadFixture(t, fixtureDir("internal", "serve", "goleakdata"))
	assertFixtureScoped(t, pkg, "genie/internal/serve/goleakdata")
}

// TestScopeGates verifies analyzers skip out-of-scope packages: goleak
// must not fire outside serve/backend/runtime even on code it would
// otherwise flag.
func TestScopeGates(t *testing.T) {
	if GoleakAnalyzer.AppliesTo("genie/internal/eval") {
		t.Error("goleak should not apply to genie/internal/eval")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/serve") {
		t.Error("goleak must apply to genie/internal/serve")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/compute") {
		t.Error("goleak must apply to the kernel worker pool")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/obs") {
		t.Error("goleak must apply to the trace recorder")
	}
	if !CtxflowAnalyzer.AppliesTo("genie/internal/obs") {
		t.Error("ctxflow must apply to the observability package")
	}
	if CtxflowAnalyzer.AppliesTo("genie/cmd/genie-bench") {
		t.Error("ctxflow must not apply to binaries")
	}
	if TensormutAnalyzer.AppliesTo("genie/internal/nn") {
		t.Error("tensormut must not apply to the nn kernels")
	}
	if !TensormutAnalyzer.AppliesTo("genie/internal/serve") {
		t.Error("tensormut must apply outside the kernel packages")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/chaos") {
		t.Error("goleak must apply to the fault injector")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/pool") {
		t.Error("goleak must apply to the backend pool")
	}
	if !CtxflowAnalyzer.AppliesTo("genie/internal/chaos") {
		t.Error("ctxflow must apply to the fault injector")
	}
	if !RetrynakedAnalyzer.AppliesTo("genie/internal/lineage") {
		t.Error("retrynaked must apply to internal packages")
	}
	if RetrynakedAnalyzer.AppliesTo("genie/cmd/genie-bench") {
		t.Error("retrynaked must not apply to binaries")
	}
}
