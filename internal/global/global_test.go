package global

import (
	"math/rand"
	"testing"
	"time"

	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/frontend"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/scheduler"
	"genie/internal/srg"
	"genie/internal/tensor"
)

func heteroPool(t *testing.T) *cluster.State {
	t.Helper()
	cs := cluster.NewState()
	link := cluster.Link{Bandwidth: 25e9 / 8, RTT: time.Millisecond}
	for _, spec := range []device.Spec{device.A100, device.H100, device.A10G} {
		if err := cs.AddAccelerator(&cluster.Accelerator{
			ID: cluster.AcceleratorID(spec.Name), Spec: spec, Link: link,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return cs
}

func llmSub(t *testing.T, tenant string, slo SLO, seed int64) Submission {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	m := models.NewGPT(rng, models.TinyGPT)
	b, _ := m.BuildPrefill([]int64{1, 2, 3, 4})
	frontend.Annotate(b.Graph())
	return Submission{Tenant: tenant, Graph: b.Graph(), SLO: slo}
}

func visionSub(t *testing.T, tenant string) Submission {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	m := models.NewCNN(rng, models.TinyCNN)
	b, _ := m.BuildForward(tensor.New(tensor.F32, 3, 32, 32))
	frontend.Annotate(b.Graph())
	return Submission{Tenant: tenant, Graph: b.Graph()}
}

func recSub(t *testing.T, tenant string) Submission {
	t.Helper()
	rng := rand.New(rand.NewSource(6))
	m := models.NewDLRM(rng, models.TinyDLRM)
	b, _ := m.BuildForward(models.DLRMRequest{
		Dense:     tensor.New(tensor.F32, 1, 8),
		SparseIDs: [][]int64{{1}, {2}, {3}},
	})
	frontend.Annotate(b.Graph())
	return Submission{Tenant: tenant, Graph: b.Graph()}
}

func mmSub(t *testing.T, tenant string) Submission {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	m := models.NewMultiModal(rng, models.TinyCNN, 32, 16, 4)
	b, _ := m.BuildForward(tensor.New(tensor.F32, 3, 32, 32), []int64{1, 2})
	frontend.Annotate(b.Graph())
	return Submission{Tenant: tenant, Graph: b.Graph()}
}

func TestClassifyFromAnnotations(t *testing.T) {
	cases := map[WorkloadClass]Submission{
		ClassLLM:            llmSub(t, "a", SLOInteractive, 1),
		ClassVision:         visionSub(t, "b"),
		ClassRecommendation: recSub(t, "c"),
		ClassMultiModal:     mmSub(t, "d"),
	}
	for want, sub := range cases {
		if got := Classify(sub.Graph); got != want {
			t.Errorf("classified %s as %s", want, got)
		}
	}
	plain := srg.New("plain")
	plain.MustAdd(&srg.Node{Op: "input", Ref: "x"})
	if Classify(plain) != ClassGeneric {
		t.Error("unannotated graph should be generic")
	}
}

func TestPlaceTenantHeterogeneous(t *testing.T) {
	cs := heteroPool(t)
	model := scheduler.NewCostModel(scheduler.RDMAProfile)
	c := NewCoordinator(cs, model)

	plan, dev, err := c.PlaceTenant(recSub(t, "rec-tenant"))
	if err != nil {
		t.Fatal(err)
	}
	// Recommendation favors capacity per dollar: the A10G.
	if dev != "a10g-24g" {
		t.Errorf("recommendation placed on %q", dev)
	}
	if plan.Policy != "semantics_aware" {
		t.Errorf("plan policy %q", plan.Policy)
	}
	// Queue depth recorded for subsequent load-aware decisions.
	if cs.QueueDepth(dev) != 1 {
		t.Error("queue depth not recorded")
	}
}

func TestPlaceTenantEmptyPool(t *testing.T) {
	c := NewCoordinator(cluster.NewState(), scheduler.NewCostModel(scheduler.RDMAProfile))
	if _, _, err := c.PlaceTenant(llmSub(t, "x", SLOBatch, 2)); err == nil {
		t.Error("empty pool should fail")
	}
}

func TestElasticScalePhaseAsymmetry(t *testing.T) {
	// A prefill-heavy burst should demand more devices for the prefill
	// phase than the decode phase demands.
	subs := []Submission{
		llmSub(t, "t1", SLOInteractive, 10),
		llmSub(t, "t2", SLOInteractive, 11),
		llmSub(t, "t3", SLOInteractive, 12),
	}
	plan := ElasticScale(subs, device.A100, 100*time.Microsecond)
	if len(plan.Demands) == 0 {
		t.Fatal("no demands aggregated")
	}
	prefill := plan.Devices[srg.PhaseLLMPrefill]
	if prefill < 1 {
		t.Errorf("prefill pool %d", prefill)
	}
	// All phases get at least one device.
	for phase, n := range plan.Devices {
		if n < 1 {
			t.Errorf("phase %q sized %d", phase, n)
		}
	}
}

func TestElasticScaleGrowsWithLoad(t *testing.T) {
	// Tiny models need a tiny window before they saturate a device.
	one := ElasticScale([]Submission{llmSub(t, "a", SLOBatch, 20)}, device.A100, time.Nanosecond)
	many := ElasticScale([]Submission{
		llmSub(t, "a", SLOBatch, 20), llmSub(t, "b", SLOBatch, 21),
		llmSub(t, "c", SLOBatch, 22), llmSub(t, "d", SLOBatch, 23),
	}, device.A100, time.Nanosecond)
	if many.Devices[srg.PhaseLLMPrefill] <= one.Devices[srg.PhaseLLMPrefill] {
		t.Errorf("4× load should need more devices: %d vs %d",
			many.Devices[srg.PhaseLLMPrefill], one.Devices[srg.PhaseLLMPrefill])
	}
}

func TestBatchDecodesGroupsByFingerprint(t *testing.T) {
	// Two tenants running the SAME public model (same seed → same
	// structure) batch together; a different workload passes through.
	rng1 := rand.New(rand.NewSource(42))
	rng2 := rand.New(rand.NewSource(42))
	m1 := models.NewGPT(rng1, models.TinyGPT)
	m2 := models.NewGPT(rng2, models.TinyGPT)
	mkDecode := func(m *models.GPT) *srg.Graph {
		caches := make([]*nn.KVCache, m.Cfg.Layers)
		for i := range caches {
			caches[i] = &nn.KVCache{
				K: tensor.New(tensor.F32, 4, m.Cfg.Dim),
				V: tensor.New(tensor.F32, 4, m.Cfg.Dim),
			}
		}
		b, _ := m.BuildDecodeStep(1, 4, 4, caches)
		frontend.Annotate(b.Graph())
		return b.Graph()
	}
	subs := []Submission{
		{Tenant: "alice", Graph: mkDecode(m1)},
		{Tenant: "bob", Graph: mkDecode(m2)},
		visionSub(t, "carol"),
	}
	groups, singles := BatchDecodes(subs)
	if len(groups) != 1 || len(groups[0].Subs) != 2 {
		t.Fatalf("groups = %+v", groups)
	}
	if len(singles) != 1 || singles[0].Tenant != "carol" {
		t.Errorf("singles = %+v", singles)
	}
}

func TestBatchSpeedupAmortizesWeights(t *testing.T) {
	cfg := models.GPTJ6B
	s1 := BatchSpeedup(device.A100, cfg.WeightBytes(), cfg.KVBytes(100), cfg.DecodeFLOPs(100), 1)
	if s1 != 1 {
		t.Errorf("batch of 1 speedup %v", s1)
	}
	s8 := BatchSpeedup(device.A100, cfg.WeightBytes(), cfg.KVBytes(100), cfg.DecodeFLOPs(100), 8)
	if s8 < 3 {
		t.Errorf("batch of 8 speedup %.2f, want ≥3 (weight reads amortize)", s8)
	}
	s32 := BatchSpeedup(device.A100, cfg.WeightBytes(), cfg.KVBytes(100), cfg.DecodeFLOPs(100), 32)
	if s32 <= s8 {
		t.Errorf("speedup should grow with batch: %v vs %v", s32, s8)
	}
}

func TestPrioritizeInteractiveFirst(t *testing.T) {
	subs := []Submission{
		{Tenant: "batch1", SLO: SLOBatch, Arrival: 1},
		{Tenant: "int1", SLO: SLOInteractive, Arrival: 2},
		{Tenant: "batch2", SLO: SLOBatch, Arrival: 3},
		{Tenant: "int2", SLO: SLOInteractive, Arrival: 4},
	}
	got := Prioritize(subs)
	want := []string{"int1", "int2", "batch1", "batch2"}
	for i, w := range want {
		if got[i].Tenant != w {
			t.Fatalf("priority order %v", got)
		}
	}
	// Input untouched.
	if subs[0].Tenant != "batch1" {
		t.Error("Prioritize must not mutate its input")
	}
}

func TestSLOString(t *testing.T) {
	if SLOInteractive.String() != "interactive" || SLOBatch.String() != "batch" {
		t.Error("slo strings")
	}
}
