// Command genie-viz renders Semantically Rich Graphs: it builds one of
// the library's workload models (or decodes a serialized .srg file),
// runs the frontend annotation pipeline, and emits Graphviz DOT or JSON.
//
// Usage:
//
//	genie-viz -model gpt-prefill -out dot > g.dot
//	genie-viz -model cnn -out json
//	genie-viz -in graph.srg -out dot
//	genie-viz -model gpt-decode -save graph.srg   # write the wire format
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/frontend"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/scheduler"
	"genie/internal/srg"
	"genie/internal/tensor"
)

func main() {
	model := flag.String("model", "gpt-prefill",
		"graph to build: gpt-prefill | gpt-decode | cnn | dlrm | multimodal")
	in := flag.String("in", "", "read a serialized SRG from this file instead of building a model")
	out := flag.String("out", "dot", "output format: dot | json | stats | plan")
	devices := flag.Int("devices", 2, "pool size for -out plan")
	save := flag.String("save", "", "also write the SRG wire format to this file")
	annotate := flag.Bool("annotate", true, "run the frontend annotation pipeline")
	flag.Parse()

	var g *srg.Graph
	var err error
	if *in != "" {
		f, err2 := os.Open(*in)
		if err2 != nil {
			log.Fatal(err2)
		}
		defer f.Close()
		g, err = srg.Decode(f)
		if err != nil {
			log.Fatalf("genie-viz: decode %s: %v", *in, err)
		}
	} else {
		g, err = buildModel(*model)
		if err != nil {
			log.Fatal(err)
		}
	}

	if *annotate {
		frontend.Annotate(g)
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.Encode(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("genie-viz: wrote %s", *save)
	}

	switch *out {
	case "dot":
		fmt.Print(g.DOT())
	case "json":
		data, err := json.MarshalIndent(g, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(data))
	case "stats":
		printStats(g)
	case "plan":
		if err := printPlan(g, *devices); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("genie-viz: unknown -out %q", *out)
	}
}

// printPlan schedules the graph with the semantics-aware policy over a
// synthetic pool and prints the placement: policy, estimate, per-device
// node counts, keeps, pipeline stages, and cross-device transfers.
func printPlan(g *srg.Graph, devices int) error {
	cs := cluster.NewState()
	for i := 0; i < devices; i++ {
		if err := cs.AddAccelerator(&cluster.Accelerator{
			ID:   cluster.AcceleratorID(fmt.Sprint("gpu", i)),
			Spec: device.A100,
			Link: cluster.Link{Bandwidth: 25e9 / 8, RTT: 200 * time.Microsecond},
		}); err != nil {
			return err
		}
	}
	plan, err := scheduler.Schedule(g, cs, scheduler.SemanticsAware{},
		scheduler.NewCostModel(scheduler.RDMAProfile))
	if err != nil {
		return err
	}
	fmt.Printf("policy: %s\nestimate: %v\n", plan.Policy, plan.Estimate)
	report := scheduler.ShardReport(plan)
	fmt.Println("placement:")
	for i := 0; i < devices; i++ {
		id := cluster.AcceleratorID(fmt.Sprint("gpu", i))
		st := report.PerDevice[id]
		fmt.Printf("  %-6s %d compute nodes, %d weight bytes\n", id, st.Ops, st.WeightBytes)
	}
	fmt.Printf("cut edges: %d (%d activation bytes)\n", report.CutEdges, report.CutBytes)
	fmt.Printf("keep-remote: %d objects\n", len(plan.KeepRemote))
	fmt.Printf("pipeline stages: %d\n", len(plan.PipelineStages))
	fmt.Printf("cross-device transfers: %d edges\n", len(plan.CrossDeviceEdges()))
	return nil
}

func buildModel(name string) (*srg.Graph, error) {
	rng := rand.New(rand.NewSource(1))
	switch name {
	case "gpt-prefill":
		m := models.NewGPT(rng, models.TinyGPT)
		b, _ := m.BuildPrefill([]int64{1, 2, 3, 4, 5, 6, 7, 8})
		return b.Graph(), nil
	case "gpt-decode":
		m := models.NewGPT(rng, models.TinyGPT)
		caches := make([]*nn.KVCache, m.Cfg.Layers)
		for i := range caches {
			caches[i] = &nn.KVCache{
				K: tensor.New(tensor.F32, 8, m.Cfg.Dim),
				V: tensor.New(tensor.F32, 8, m.Cfg.Dim),
			}
		}
		b, _ := m.BuildDecodeStep(1, 8, 8, caches)
		return b.Graph(), nil
	case "cnn":
		m := models.NewCNN(rng, models.TinyCNN)
		b, _ := m.BuildForward(tensor.New(tensor.F32, 3, 32, 32))
		return b.Graph(), nil
	case "dlrm":
		m := models.NewDLRM(rng, models.TinyDLRM)
		b, _ := m.BuildForward(models.DLRMRequest{
			Dense:     tensor.New(tensor.F32, 1, models.TinyDLRM.DenseFeatures),
			SparseIDs: [][]int64{{1, 2}, {3}, {4, 5}},
		})
		return b.Graph(), nil
	case "multimodal":
		m := models.NewMultiModal(rng, models.TinyCNN, 64, 16, 8)
		b, _ := m.BuildForward(tensor.New(tensor.F32, 3, 32, 32), []int64{1, 2, 3})
		return b.Graph(), nil
	}
	return nil, fmt.Errorf("genie-viz: unknown model %q", name)
}

func printStats(g *srg.Graph) {
	byOp := map[string]int{}
	byPhase := map[srg.Phase]int{}
	for _, n := range g.Nodes() {
		byOp[n.Op]++
		byPhase[n.Phase]++
	}
	fmt.Printf("graph %q: %d nodes, %d edges, fingerprint %s\n",
		g.Name, g.Len(), len(g.Edges()), g.Fingerprint())
	cost := g.TotalCost()
	fmt.Printf("total cost: %.2f MFLOPs, %.2f MB touched\n", cost.FLOPs/1e6, float64(cost.Bytes)/1e6)
	fmt.Println("ops:")
	for op, n := range byOp {
		fmt.Printf("  %-14s %d\n", op, n)
	}
	fmt.Println("phases:")
	for p, n := range byPhase {
		name := string(p)
		if name == "" {
			name = "(untagged)"
		}
		fmt.Printf("  %-14s %d\n", name, n)
	}
}
