package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrcheckAnalyzer flags call statements that discard an error result.
// In a disaggregated runtime almost every error is a lifecycle event —
// a lost connection, a rejected session, a stale residency epoch — and
// dropping one on the floor is how lineage goes incomplete: the local
// view of remote state diverges from the real thing and the divergence
// surfaces much later as a wrong answer instead of an error.
//
// Flagged: an expression statement whose call returns an error (alone
// or as the last result) that is not consumed. Not flagged:
//
//   - explicit discards: `_ = f()` and `x, _ := f()` say "I considered
//     this error and chose to drop it" — that is reviewable
//   - defer and go statements (`defer f.Close()` teardown idiom)
//   - the allowlist: fmt Print/Fprint family, (*strings.Builder) and
//     (*bytes.Buffer) methods, hash.Hash.Write, and math/rand Read —
//     all documented to never return a non-nil error or writing to
//     stderr/stdout where there is no meaningful recovery
var ErrcheckAnalyzer = &Analyzer{
	Name: "errcheck",
	Doc:  "no silently discarded error returns",
	Run:  runErrcheck,
}

func runErrcheck(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass.Info, call) || errcheckAllowed(pass.Info, call) {
				return true
			}
			pass.Reportf(call.Pos(), "%s returns an error that is not checked", calleeName(pass.Info, call))
			return true
		})
	}
}

// returnsError reports whether call's sole or last result is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

// errcheckAllowed implements the allowlist.
func errcheckAllowed(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	pkg, name, recv := funcPkgPath(fn), fn.Name(), recvTypeString(fn)
	switch {
	case pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
		return true
	case recv == "*strings.Builder" || recv == "*bytes.Buffer":
		return true
	case pkg == "hash" && name == "Write":
		return true
	case pkg == "math/rand" && name == "Read":
		return true
	}
	return false
}

// calleeName renders the called function for the report.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := calleeFunc(info, call); fn != nil {
		return fn.FullName()
	}
	return types.ExprString(call.Fun)
}
