package ops

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"genie/internal/compute"
	"genie/internal/tensor"
)

// Parity suite: every parallelized kernel must be bit-identical to an
// independent serial reference at every worker count. These references
// are deliberately textbook re-implementations (not calls into the
// production kernels), so a tiling or unrolling change that reorders
// float32 additions fails here even when it looks numerically harmless —
// the four evaluation modes are compared token-for-token, and a one-ULP
// drift flips argmaxes.

// workerCounts returns the pool widths the parity contract is checked
// at: serial, minimal parallel, and the machine's real width (plus
// oversubscription, which exercises chunk stealing).
func workerCounts() []int {
	return []int{1, 2, runtime.NumCPU(), runtime.NumCPU() + 3}
}

// atWidth runs f with the default pool swapped for a width-w pool,
// restoring (and stopping the temporary pool) afterwards.
func atWidth(t *testing.T, w int, f func()) {
	t.Helper()
	p := compute.NewPool(w)
	old := compute.SetDefault(p)
	defer func() {
		compute.SetDefault(old)
		p.Stop()
	}()
	f()
}

func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(tensor.F32, shape...)
	v := t.F32()
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return t
}

// expectBits fails unless got and want are bit-identical (NaN-safe).
func expectBits(t *testing.T, ctx string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", ctx, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s: element %d = %v (%#08x), want %v (%#08x)",
				ctx, i, got[i], math.Float32bits(got[i]),
				want[i], math.Float32bits(want[i]))
		}
	}
}

// --- serial references ---

// refMatMul is the textbook ikj product: contributions accumulate into
// each out element in increasing kk order — the order the determinism
// contract in matmul.go promises to preserve.
func refMatMul(a, b []float32, m, k, n int) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for kk := 0; kk < k; kk++ {
			av := a[i*k+kk]
			for j := 0; j < n; j++ {
				out[i*n+j] += av * b[kk*n+j]
			}
		}
	}
	return out
}

func refMatMulT(a, b []float32, m, k, n int) []float32 {
	out := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for kk := 0; kk < k; kk++ {
				acc += a[i*k+kk] * b[j*k+kk]
			}
			out[i*n+j] = acc
		}
	}
	return out
}

func refSoftmax(a []float32, rows, inner int) []float32 {
	out := make([]float32, len(a))
	for r := 0; r < rows; r++ {
		row, orow := a[r*inner:(r+1)*inner], out[r*inner:(r+1)*inner]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for i, v := range row {
			e := float32(math.Exp(float64(v - maxv)))
			orow[i] = e
			sum += e
		}
		inv := 1 / sum
		for i := range orow {
			orow[i] *= inv
		}
	}
	return out
}

func refLayerNorm(a, g, b []float32, rows, inner int, eps float32) []float32 {
	out := make([]float32, len(a))
	for r := 0; r < rows; r++ {
		row, orow := a[r*inner:(r+1)*inner], out[r*inner:(r+1)*inner]
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(inner)
		var varsum float32
		for _, v := range row {
			d := v - mean
			varsum += d * d
		}
		inv := 1 / float32(math.Sqrt(float64(varsum/float32(inner)+eps)))
		for i, v := range row {
			orow[i] = (v-mean)*inv*g[i] + b[i]
		}
	}
	return out
}

func refGELU(a []float32) []float32 {
	out := make([]float32, len(a))
	const c = 0.7978845608028654
	for i, v := range a {
		x := float64(v)
		out[i] = float32(0.5 * x * (1 + math.Tanh(c*(x+0.044715*x*x*x))))
	}
	return out
}

func refConv2D(in, k []float32, inC, h, w, outC, kh, kw, stride, pad int) []float32 {
	oh := (h+2*pad-kh)/stride + 1
	ow := (w+2*pad-kw)/stride + 1
	out := make([]float32, outC*oh*ow)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc float32
				for ic := 0; ic < inC; ic++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= w {
								continue
							}
							acc += in[(ic*h+iy)*w+ix] * k[((oc*inC+ic)*kh+ky)*kw+kx]
						}
					}
				}
				out[(oc*oh+oy)*ow+ox] = acc
			}
		}
	}
	return out
}

func refRoPE(x []float32, t, dim, startPos int, base float64) []float32 {
	out := make([]float32, len(x))
	copy(out, x)
	for row := 0; row < t; row++ {
		pos := float64(startPos + row)
		for i := 0; i < dim; i += 2 {
			theta := pos * math.Pow(base, -float64(i)/float64(dim))
			sin, cos := math.Sincos(theta)
			a, b := out[row*dim+i], out[row*dim+i+1]
			out[row*dim+i] = a*float32(cos) - b*float32(sin)
			out[row*dim+i+1] = a*float32(sin) + b*float32(cos)
		}
	}
	return out
}

// --- parity tests ---

func TestMatMulParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	shapes := [][3]int{
		{1, 1, 1}, {1, 64, 64}, {3, 5, 7}, {17, 33, 65},
		{64, 64, 64}, {1, 256, 256}, {130, 70, 300}, {7, 257, 4},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, k, n)
		want := refMatMul(a.F32(), b.F32(), m, k, n)
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got, err := MatMul(a, b)
				if err != nil {
					t.Fatal(err)
				}
				expectBits(t, fmt.Sprintf("matmul %dx%dx%d w=%d", m, k, n, w), got.F32(), want)
				got.Release()
			})
		}
	}
}

func TestMatMulRank3Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sh := range [][4]int{{2, 3, 8, 5}, {4, 1, 64, 64}, {3, 17, 9, 33}} {
		batch, m, k, n := sh[0], sh[1], sh[2], sh[3]
		a := randTensor(rng, batch, m, k)
		b := randTensor(rng, k, n)
		want := refMatMul(a.F32(), b.F32(), batch*m, k, n)
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got, err := MatMul(a, b)
				if err != nil {
					t.Fatal(err)
				}
				expectBits(t, fmt.Sprintf("matmul3 %v w=%d", sh, w), got.F32(), want)
				got.Release()
			})
		}
	}
}

func TestMatMulTParity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	// Includes the decode shape family (m=1, growing n) that flips the
	// kernel onto its column-split path.
	shapes := [][3]int{
		{1, 8, 1}, {1, 64, 100}, {5, 16, 5}, {33, 65, 17},
		{100, 64, 1}, {2, 256, 77},
	}
	for _, sh := range shapes {
		m, k, n := sh[0], sh[1], sh[2]
		a := randTensor(rng, m, k)
		b := randTensor(rng, n, k)
		want := refMatMulT(a.F32(), b.F32(), m, k, n)
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got, err := MatMulT(a, b)
				if err != nil {
					t.Fatal(err)
				}
				expectBits(t, fmt.Sprintf("matmulT %dx%dx%d w=%d", m, k, n, w), got.F32(), want)
				got.Release()
			})
		}
	}
}

func TestSoftmaxParity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, sh := range [][2]int{{1, 1}, {1, 1000}, {64, 64}, {500, 13}} {
		rows, inner := sh[0], sh[1]
		a := randTensor(rng, rows, inner)
		want := refSoftmax(a.F32(), rows, inner)
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got := Softmax(a)
				expectBits(t, fmt.Sprintf("softmax %v w=%d", sh, w), got.F32(), want)
				got.Release()
			})
		}
	}
}

func TestLayerNormParity(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, sh := range [][2]int{{1, 8}, {200, 64}, {3, 333}} {
		rows, inner := sh[0], sh[1]
		a := randTensor(rng, rows, inner)
		g := randTensor(rng, inner)
		b := randTensor(rng, inner)
		want := refLayerNorm(a.F32(), g.F32(), b.F32(), rows, inner, 1e-5)
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got, err := LayerNorm(a, g, b, 1e-5)
				if err != nil {
					t.Fatal(err)
				}
				expectBits(t, fmt.Sprintf("layernorm %v w=%d", sh, w), got.F32(), want)
				got.Release()
			})
		}
	}
}

func TestGELUParity(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, n := range []int{1, 17, 4096} {
		a := randTensor(rng, n)
		want := refGELU(a.F32())
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got := GELU(a)
				expectBits(t, fmt.Sprintf("gelu %d w=%d", n, w), got.F32(), want)
				got.Release()
			})
		}
	}
}

func TestConv2DParity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cases := []struct{ inC, h, w, outC, kh, kw, stride, pad int }{
		{1, 8, 8, 1, 3, 3, 1, 1},
		{3, 16, 16, 8, 3, 3, 1, 1},
		{4, 13, 11, 6, 5, 3, 2, 2},
	}
	for _, c := range cases {
		in := randTensor(rng, c.inC, c.h, c.w)
		k := randTensor(rng, c.outC, c.inC, c.kh, c.kw)
		want := refConv2D(in.F32(), k.F32(), c.inC, c.h, c.w, c.outC, c.kh, c.kw, c.stride, c.pad)
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got, err := Conv2D(in, k, c.stride, c.pad)
				if err != nil {
					t.Fatal(err)
				}
				expectBits(t, fmt.Sprintf("conv2d %+v w=%d", c, w), got.F32(), want)
				got.Release()
			})
		}
	}
}

func TestRoPEParity(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for _, sh := range [][2]int{{1, 2}, {7, 64}, {100, 32}} {
		tt, dim := sh[0], sh[1]
		x := randTensor(rng, tt, dim)
		want := refRoPE(x.F32(), tt, dim, 5, 10000)
		for _, w := range workerCounts() {
			atWidth(t, w, func() {
				got, err := RoPE(x, 5, 10000)
				if err != nil {
					t.Fatal(err)
				}
				expectBits(t, fmt.Sprintf("rope %v w=%d", sh, w), got.F32(), want)
				got.Release()
			})
		}
	}
}

func TestEmbeddingParity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	table := randTensor(rng, 50, 16)
	ids := tensor.New(tensor.I64, 33)
	iv := ids.I64()
	for i := range iv {
		iv[i] = int64(rng.Intn(50))
	}
	want := make([]float32, 33*16)
	for i, id := range iv {
		copy(want[i*16:(i+1)*16], table.F32()[int(id)*16:(int(id)+1)*16])
	}
	for _, w := range workerCounts() {
		atWidth(t, w, func() {
			got, err := Embedding(table, ids)
			if err != nil {
				t.Fatal(err)
			}
			expectBits(t, fmt.Sprintf("embedding w=%d", w), got.F32(), want)
			got.Release()
		})
	}
}

func TestElementwiseParity(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randTensor(rng, 37, 19)
	b := randTensor(rng, 37, 19)
	wantAdd := make([]float32, 37*19)
	wantMul := make([]float32, 37*19)
	wantScale := make([]float32, 37*19)
	wantReLU := make([]float32, 37*19)
	for i := range wantAdd {
		wantAdd[i] = a.F32()[i] + b.F32()[i]
		wantMul[i] = a.F32()[i] * b.F32()[i]
		wantScale[i] = a.F32()[i] * 0.125
		wantReLU[i] = a.F32()[i]
		if wantReLU[i] < 0 {
			wantReLU[i] = 0
		}
	}
	for _, w := range workerCounts() {
		atWidth(t, w, func() {
			add, err := Add(a, b)
			if err != nil {
				t.Fatal(err)
			}
			mul, err := Mul(a, b)
			if err != nil {
				t.Fatal(err)
			}
			sc := Scale(a, 0.125)
			re := ReLU(a)
			expectBits(t, fmt.Sprintf("add w=%d", w), add.F32(), wantAdd)
			expectBits(t, fmt.Sprintf("mul w=%d", w), mul.F32(), wantMul)
			expectBits(t, fmt.Sprintf("scale w=%d", w), sc.F32(), wantScale)
			expectBits(t, fmt.Sprintf("relu w=%d", w), re.F32(), wantReLU)
			for _, x := range []*tensor.Tensor{add, mul, sc, re} {
				x.Release()
			}
		})
	}
}

// TestMatMulGrainInvariance pins down the stronger property the row-band
// kernel actually has: any band partition gives the same bits, because a
// row's accumulation sequence is independent of which band computed it.
// This is what lets grainBy derive grains from shape alone.
func TestMatMulGrainInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	m, k, n := 37, 53, 29
	a := randTensor(rng, m, k)
	b := randTensor(rng, k, n)
	want := refMatMul(a.F32(), b.F32(), m, k, n)
	p := compute.NewPool(4)
	defer p.Stop()
	for _, grain := range []int{1, 2, 5, m - 1, m, 10 * m} {
		out := make([]float32, m*n)
		p.ParallelFor(m, grain, func(i0, i1 int) {
			matmulBand(a.F32(), b.F32(), out, i0, i1, k, n)
		})
		expectBits(t, fmt.Sprintf("grain=%d", grain), out, want)
	}
}
