package kvcache

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"genie/internal/backend"
	"genie/internal/chaos"
	"genie/internal/device"
	"genie/internal/health"
	"genie/internal/metrics"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/transport"
)

// livePins reads the manager's live eviction-pin count — a leaked hedge
// loser would hold one forever.
func livePins(m *Manager) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pins)
}

// TestHedgedPrefillDedup forces every prefill to hedge (a nanosecond
// deadline) so two lanes race each request, and checks the invariants
// the race must not break: tokens bit-identical to the local baseline,
// exactly one winner's KV inserted (cache accounting identical to an
// unhedged run), no pinned pages left behind, and no goroutine leaked —
// whether the loser finished or was cancelled in flight.
func TestHedgedPrefillDedup(t *testing.T) {
	snap := metrics.SnapGoroutines()

	rng := rand.New(rand.NewSource(21))
	model := models.NewGPT(rng, models.TinyGPT)
	const steps = 5
	baseline := &runtime.LLMRunner{Model: model}
	want := generateScoped(t, baseline, runtime.ModeLocal, "", parityPrompt, steps)

	// Reference cache accounting: an unhedged split over the same prompt.
	refA, refD := startPipeBackend(t), startPipeBackend(t)
	refMgr, err := NewManager(Config{Model: model, BudgetBytes: 1 << 20, PageTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	refSp, err := NewSplit(SplitConfig{Model: model, Prefill: refA.cli, Decode: refD.cli, Cache: refMgr})
	if err != nil {
		t.Fatal(err)
	}
	if err := refSp.InstallWeights(); err != nil {
		t.Fatal(err)
	}
	generateScoped(t, refSp.Runner(), runtime.ModeSemAware, "ref0/", parityPrompt, steps)
	refStats := refMgr.Snapshot()

	laneA, laneB := startPipeBackend(t), startPipeBackend(t)
	decodeBE := startPipeBackend(t)
	mgr, err := NewManager(Config{Model: model, BudgetBytes: 1 << 20, PageTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSplit(SplitConfig{
		Model:  model,
		Decode: decodeBE.cli,
		Cache:  mgr,
		Lanes: []PrefillLane{
			{Name: "a", EP: laneA.cli},
			{Name: "b", EP: laneB.cli},
		},
		HedgePrefill: true,
		HedgeFloor:   time.Nanosecond, // hedge always fires: both lanes race
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.InstallWeights(); err != nil {
		t.Fatal(err)
	}
	r := sp.Runner()

	// Cold request under a forced hedge.
	got := generateScoped(t, r, runtime.ModeSemAware, "req0/", parityPrompt, steps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hedged cold run diverges at step %d: %v vs %v", i, got, want)
		}
	}
	if sp.Hedged() != 1 {
		t.Fatalf("hedged launches = %d, want 1", sp.Hedged())
	}
	st := mgr.Snapshot()
	if st.ResidentNodes != refStats.ResidentNodes || st.ResidentBytes != refStats.ResidentBytes {
		t.Fatalf("hedged cache holds %d nodes/%d B, unhedged reference %d/%d — duplicate insert",
			st.ResidentNodes, st.ResidentBytes, refStats.ResidentNodes, refStats.ResidentBytes)
	}
	if n := livePins(mgr); n != 0 {
		t.Fatalf("%d pins live after session close, want 0", n)
	}

	// Warm request: the hedge winner's insert must be the one the radix
	// serves back.
	got = generateScoped(t, r, runtime.ModeSemAware, "req1/", parityPrompt, steps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hedged warm run diverges at step %d: %v vs %v", i, got, want)
		}
	}
	if st := mgr.Snapshot(); st.Hits != 1 {
		t.Fatalf("radix hits = %d after warm hedged request, want 1", st.Hits)
	}
	if n := livePins(mgr); n != 0 {
		t.Fatalf("%d pins live after warm session close, want 0", n)
	}

	for _, pb := range []*pipeBackend{refA, refD, laneA, laneB, decodeBE} {
		pb.stop()
	}
	snap.Check(t)
}

// chaosBackend is startPipeBackend with the client side routed through
// a chaos plan (the brownout lever for hedge tests).
func startChaosBackend(t *testing.T, plan *chaos.Plan) *pipeBackend {
	t.Helper()
	rawC, rawS := net.Pipe()
	ctr := &transport.Counters{}
	cconn := transport.NewConn(plan.WrapConn(rawC), ctr, nil)
	sconn := transport.NewConn(rawS, nil, nil)
	srv := backend.NewServer(device.A100)
	go func() { _ = srv.Serve(sconn) }()
	pb := &pipeBackend{cli: transport.NewClient(cconn), ctr: ctr, srv: srv, cconn: cconn, sconn: sconn}
	t.Cleanup(pb.stop)
	return pb
}

// TestHedgeBackupWinsOnSlowPrimary browns out the primary lane (every
// op stalls far past the hedge deadline) and checks the backup rescues
// the request: correct tokens, a recorded hedge win, and the loser
// cancelled in flight rather than awaited.
func TestHedgeBackupWinsOnSlowPrimary(t *testing.T) {
	snap := metrics.SnapGoroutines()

	rng := rand.New(rand.NewSource(21))
	model := models.NewGPT(rng, models.TinyGPT)
	const steps = 4
	baseline := &runtime.LLMRunner{Model: model}
	want := generateScoped(t, baseline, runtime.ModeLocal, "", parityPrompt, steps)

	plan := chaos.NewPlan(7, chaos.Config{StallProb: 1, Stall: 400 * time.Millisecond})
	plan.SetActive(false) // clean install; the fault window opens later
	slow := startChaosBackend(t, plan)
	fast := startPipeBackend(t)
	decodeBE := startPipeBackend(t)

	hs := health.NewSet(health.Config{})
	sp, err := NewSplit(SplitConfig{
		Model:  model,
		Decode: decodeBE.cli,
		Lanes: []PrefillLane{
			{Name: "a-slow", EP: slow.cli}, // name-asc tiebreak: unscored "a-slow" ranks first
			{Name: "b-fast", EP: fast.cli},
		},
		Health:       hs,
		HedgePrefill: true,
		HedgeFloor:   5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.InstallWeights(); err != nil {
		t.Fatal(err)
	}
	plan.SetActive(true)

	got := generateScoped(t, sp.Runner(), runtime.ModeSemAware, "req0/", parityPrompt, steps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hedge rescue diverges at step %d: %v vs %v", i, got, want)
		}
	}
	if sp.Hedged() != 1 || sp.HedgeWins() != 1 {
		t.Fatalf("hedged=%d wins=%d, want 1/1 (backup must rescue the stalled primary)",
			sp.Hedged(), sp.HedgeWins())
	}
	if sp.HedgeCancelled() != 1 {
		t.Fatalf("cancelled=%d, want 1 (the stalled primary was in flight)", sp.HedgeCancelled())
	}
	// The winner's latency reached the scorer; the cancelled loser's
	// wait must not be charged as a lane sample.
	hsnap := hs.Snapshot()
	if hsnap["b-fast"].Samples == 0 {
		t.Error("winning lane has no health samples")
	}
	if hsnap["a-slow"].Samples != 0 {
		t.Errorf("cancelled lane charged %d samples; cancellation measures our patience, not the lane",
			hsnap["a-slow"].Samples)
	}

	for _, pb := range []*pipeBackend{slow, fast, decodeBE} {
		pb.stop()
	}
	snap.Check(t)
}
