package transport

import (
	"bytes"
	"context"
	"testing"

	"genie/internal/obs"
	"genie/internal/tensor"
)

func TestFrameEnvelopeRoundTrip(t *testing.T) {
	var b bytes.Buffer
	env := Envelope{Trace: 0xdeadbeef, Span: 42}
	if err := WriteFrameEnv(&b, MsgExec, env, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Traced frame = 5-byte header + 16-byte envelope + payload.
	if b.Len() != frameHeader+envSize+7 {
		t.Fatalf("traced frame is %d bytes", b.Len())
	}
	mt, got, p, err := ReadFrameEnv(&b)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgExec || got != env || string(p) != "payload" {
		t.Fatalf("round trip: type=%d env=%+v payload=%q", mt, got, p)
	}
}

func TestUntracedFrameKeepsLegacyFormat(t *testing.T) {
	var b bytes.Buffer
	if err := WriteFrameEnv(&b, MsgPing, Envelope{}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Zero envelope must not change the wire format: 5-byte header only.
	if b.Len() != frameHeader+1 {
		t.Fatalf("untraced frame is %d bytes, want %d", b.Len(), frameHeader+1)
	}
	mt, env, p, err := ReadFrameEnv(&b)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgPing || !env.Zero() || string(p) != "x" {
		t.Fatalf("round trip: type=%d env=%+v payload=%q", mt, env, p)
	}
}

// echoServer answers Upload and Exec-shaped traffic well enough for
// accounting tests, echoing the request envelope back on replies.
func echoServer(t *testing.T, conn *Conn, replies map[MsgType][]byte) {
	t.Helper()
	go func() {
		for {
			mt, env, _, err := conn.RecvEnv()
			if err != nil {
				return
			}
			rt := mt + 1 // every request type is followed by its OK type
			if err := conn.SendEnv(rt, env, replies[mt]); err != nil {
				return
			}
		}
	}()
}

// TestTelemetryMatchesEncoderOutput pins the byte-accounting contract:
// the per-kind counters must equal the wire-format encoder output size
// plus the exact frame header for every RPC.
func TestTelemetryMatchesEncoderOutput(t *testing.T) {
	reg := obs.NewRegistry()
	tel := NewTelemetry(reg)
	cconn, sconn := Pipe(nil, nil)
	defer cconn.Close()
	defer sconn.Close()
	cconn.SetTelemetry(tel)

	upReply := EncodeUploadOK(&UploadOK{Epoch: 3, Bytes: 16})
	echoServer(t, sconn, map[MsgType][]byte{MsgUpload: upReply})

	client := NewClient(cconn)
	data := tensor.FromF32(tensor.Shape{2, 2}, []float32{1, 2, 3, 4})
	if _, err := client.Upload("w.0", data); err != nil {
		t.Fatal(err)
	}

	wantSent := int64(len(EncodeUpload(&Upload{Key: "w.0", Data: data})) + frameHeader)
	if got := tel.SentBytes(MsgUpload); got != wantSent {
		t.Fatalf("upload sent bytes %d, want encoder size + header = %d", got, wantSent)
	}
	if got := tel.RecvBytes(MsgUploadOK); got != int64(len(upReply)+frameHeader) {
		t.Fatalf("upload_ok recv bytes %d, want %d", got, len(upReply)+frameHeader)
	}
	if tel.Calls(MsgUpload) != 1 {
		t.Fatalf("upload calls %d, want 1", tel.Calls(MsgUpload))
	}
	// Per-kind counters agree with the aggregate conn counters.
	sent, recv, _ := cconn.Counters().Snapshot()
	if tel.SentBytes(MsgUpload) != sent || tel.RecvBytes(MsgUploadOK) != recv {
		t.Fatalf("telemetry (%d/%d) disagrees with conn counters (%d/%d)",
			tel.SentBytes(MsgUpload), tel.RecvBytes(MsgUploadOK), sent, recv)
	}
	// The registry exposes the same numbers as Prometheus series.
	var b bytes.Buffer
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b.Bytes(), []byte(`genie_transport_sent_bytes_total{kind="upload"}`)) {
		t.Fatalf("exposition missing upload series:\n%s", b.String())
	}
}

// TestTracedCallAccountsEnvelopeBytes: a traced RPC carries 16 extra
// header bytes, and the counters must see them.
func TestTracedCallAccountsEnvelopeBytes(t *testing.T) {
	reg := obs.NewRegistry()
	tel := NewTelemetry(reg)
	cconn, sconn := Pipe(nil, nil)
	defer cconn.Close()
	defer sconn.Close()
	cconn.SetTelemetry(tel)

	upReply := EncodeUploadOK(&UploadOK{Epoch: 1, Bytes: 4})
	echoServer(t, sconn, map[MsgType][]byte{MsgUpload: upReply})

	tr := obs.NewTracer(obs.TracerConfig{Proc: "test", Capacity: 16})
	defer tr.Stop()
	ctx, root := tr.StartRoot(context.TODO(), "req")

	client := NewClient(cconn)
	data := tensor.FromF32(tensor.Shape{1}, []float32{7})
	if _, err := client.UploadCtx(ctx, "k", data); err != nil {
		t.Fatal(err)
	}
	root.End()

	wantSent := int64(len(EncodeUpload(&Upload{Key: "k", Data: data})) + frameHeader + envSize)
	if got := tel.SentBytes(MsgUpload); got != wantSent {
		t.Fatalf("traced upload sent bytes %d, want %d", got, wantSent)
	}
	// The transport span was recorded with the trace ID on it.
	spans := tr.Snapshot()
	var found bool
	for _, s := range spans {
		if s.Name == "transport.upload" && s.Trace == root.TraceID() && s.Parent == root.SpanID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("no transport.upload span parented under root: %+v", spans)
	}
}

// TestUnknownHighTypeByteIsNotAnEnvelope: a peer probing with a type
// byte that happens to have the envelope bit set (e.g. 250 = 0xfa) must
// come back as that raw unknown type with no envelope read — the old
// behavior the dispatch layer's "unknown message" error path depends
// on. Regression test: the reader once stalled here waiting for 16
// envelope bytes that were never sent.
func TestUnknownHighTypeByteIsNotAnEnvelope(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgType(250), []byte{0xab}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != frameHeader+1 {
		t.Fatalf("frame is %d bytes, want %d", buf.Len(), frameHeader+1)
	}
	mt, env, payload, err := ReadFrameEnv(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgType(250) {
		t.Fatalf("type = %d, want 250 passed through raw", mt)
	}
	if !env.Zero() {
		t.Fatalf("envelope = %+v, want zero", env)
	}
	if len(payload) != 1 || payload[0] != 0xab {
		t.Fatalf("payload = %x, want ab", payload)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d unread bytes left in frame", buf.Len())
	}
}
