package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks module packages from source. Module-internal import
// paths are resolved by the loader itself (so a package and its
// dependents share one *types.Package); everything else — the standard
// library — is delegated to the stdlib "source" importer. No compiled
// export data and no external dependencies are involved.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std     types.Importer
	pkgs    map[string]*Package // import path -> loaded package
	loading map[string]bool     // import-cycle guard
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path (e.g. genie/internal/serve)
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info
	// Errs holds parse and type errors; a package with errors is not
	// analyzable and the driver reports it as a load failure.
	Errs []error
}

// testdataMarker splits a testdata package path from the path it
// pretends to live at, so analyzer scoping works identically on fixture
// packages: genie/internal/analysis/testdata/src/internal/serve/x scopes
// as genie/internal/serve/x.
const testdataMarker = "/testdata/src/"

// ScopePath returns the path analyzers should use for scope decisions.
func (p *Package) ScopePath() string {
	return scopePath(p.Path)
}

func scopePath(path string) string {
	if i := strings.Index(path, testdataMarker); i >= 0 {
		return "genie/" + path[i+len(testdataMarker):]
	}
	return path
}

// NewLoader builds a loader for the module rooted at modRoot (the
// directory containing go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: modRoot,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// Packages returns every package the loader has type-checked so far —
// the requested ones plus all their module-internal dependencies —
// sorted by import path. This is the input set for BuildProgram: one
// shared type-checked load feeds both the per-package analyzers and the
// module-wide interprocedural index.
func (l *Loader) Packages() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Import implements types.Importer. Module-internal paths load through
// the loader; all other paths go to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		p, err := l.Load(filepath.Join(l.ModRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if len(p.Errs) > 0 {
			return nil, p.Errs[0]
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package in dir (non-test files only),
// caching by import path. Type errors are collected on the returned
// Package rather than aborting, so the driver can report all of them.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPath(abs)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	p := &Package{Path: path, Dir: abs, Fset: l.Fset}
	names, err := goFiles(abs)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, name), nil, parser.ParseComments)
		if err != nil {
			p.Errs = append(p.Errs, err)
			continue
		}
		p.Files = append(p.Files, f)
	}
	p.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := types.Config{
		Importer: l,
		Error:    func(err error) { p.Errs = append(p.Errs, err) },
	}
	p.Types, _ = cfg.Check(path, l.Fset, p.Files, p.Info)
	l.pkgs[path] = p
	return p, nil
}

// importPath maps an absolute directory inside the module to its import
// path.
func (l *Loader) importPath(abs string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", abs, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// goFiles lists the non-test Go files of dir in sorted order.
func goFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// ExpandPatterns resolves go-tool-style package patterns ("./...",
// "./internal/...", a plain directory) to package directories. The
// recursive walk skips testdata, hidden, and VCS directories — exactly
// like the go tool — but a directory named explicitly is always
// included, which is how the driver tests point at fixtures.
func ExpandPatterns(modRoot string, patterns []string) ([]string, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(modRoot, filepath.FromSlash(strings.TrimSuffix(rest, "/")))
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				names, err := goFiles(path)
				if err != nil {
					return err
				}
				if len(names) > 0 {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(modRoot, filepath.FromSlash(pat)))
	}
	return dirs, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		abs = parent
	}
}
