package tensor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int{F32: 4, F16: 2, I64: 8, I32: 4, U8: 1}
	for dt, want := range cases {
		if got := dt.Size(); got != want {
			t.Errorf("%s.Size() = %d, want %d", dt, got, want)
		}
	}
}

func TestDTypeStringRoundTrip(t *testing.T) {
	for _, dt := range []DType{F32, F16, I64, I32, U8} {
		back, err := ParseDType(dt.String())
		if err != nil {
			t.Fatalf("ParseDType(%q): %v", dt.String(), err)
		}
		if back != dt {
			t.Errorf("round trip %s -> %s", dt, back)
		}
	}
	if _, err := ParseDType("bogus"); err == nil {
		t.Error("ParseDType(bogus) should fail")
	}
}

func TestF16RoundTripExactValues(t *testing.T) {
	// Values exactly representable in f16 must round-trip exactly.
	for _, v := range []float32{0, 1, -1, 0.5, 2, 1024, -0.25, 65504} {
		h := F16FromF32(v)
		if got := F16ToF32(h); got != v {
			t.Errorf("f16 round trip %v -> %v", v, got)
		}
	}
}

func TestF16SpecialValues(t *testing.T) {
	if !math.IsInf(float64(F16ToF32(F16FromF32(float32(math.Inf(1))))), 1) {
		t.Error("+Inf should survive f16")
	}
	if !math.IsInf(float64(F16ToF32(F16FromF32(float32(math.Inf(-1))))), -1) {
		t.Error("-Inf should survive f16")
	}
	if !math.IsNaN(float64(F16ToF32(F16FromF32(float32(math.NaN()))))) {
		t.Error("NaN should survive f16")
	}
	// Overflow clamps to Inf.
	if !math.IsInf(float64(F16ToF32(F16FromF32(1e10))), 1) {
		t.Error("1e10 should overflow to +Inf in f16")
	}
	// Tiny values flush toward zero.
	if got := F16ToF32(F16FromF32(1e-10)); got != 0 {
		t.Errorf("1e-10 in f16 = %v, want 0", got)
	}
}

func TestF16RoundTripErrorBound(t *testing.T) {
	// Property: for normal-range values, f16 relative error <= 2^-11.
	f := func(v float32) bool {
		if v != v || v > 60000 || v < -60000 || (v != 0 && v < 1e-4 && v > -1e-4) {
			return true // outside the normal range under test
		}
		got := F16ToF32(F16FromF32(v))
		if v == 0 {
			return got == 0
		}
		rel := math.Abs(float64(got-v)) / math.Abs(float64(v))
		return rel <= 1.0/2048
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestF16Subnormals(t *testing.T) {
	// Smallest positive f16 subnormal is 2^-24.
	sub := float32(math.Ldexp(1, -24))
	h := F16FromF32(sub)
	if got := F16ToF32(h); got != sub {
		t.Errorf("subnormal round trip %v -> %v", sub, got)
	}
}

func TestNewZeroed(t *testing.T) {
	tt := New(F32, 3, 4)
	if tt.NumElements() != 12 || tt.NumBytes() != 48 {
		t.Fatalf("NumElements=%d NumBytes=%d", tt.NumElements(), tt.NumBytes())
	}
	for i, v := range tt.F32() {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestFromBytesLengthCheck(t *testing.T) {
	if _, err := FromBytes(F32, Shape{2, 2}, make([]byte, 15)); err == nil {
		t.Error("short buffer should error")
	}
	if _, err := FromBytes(F32, Shape{2, 2}, make([]byte, 16)); err != nil {
		t.Errorf("exact buffer: %v", err)
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromF32(Shape{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	b, err := a.Reshape(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.F32()[0] = 99
	if a.F32()[0] != 99 {
		t.Error("reshape should share the backing store")
	}
	if _, err := a.Reshape(4, 2); err == nil {
		t.Error("reshape to wrong element count should fail")
	}
}

func TestCloneIndependent(t *testing.T) {
	a := FromF32(Shape{2}, []float32{1, 2})
	b := a.Clone()
	b.F32()[0] = 5
	if a.F32()[0] != 1 {
		t.Error("clone should not share data")
	}
}

func TestAtSetAtAllDTypes(t *testing.T) {
	for _, dt := range []DType{F32, F16, I64, I32, U8} {
		tt := New(dt, 4)
		tt.SetAt(2, 7)
		if got := tt.At(2); got != 7 {
			t.Errorf("%s: At(2)=%v want 7", dt, got)
		}
	}
}

func TestToF32ToF16(t *testing.T) {
	a := FromF32(Shape{3}, []float32{1, 2.5, -3})
	h := a.ToF16()
	back := h.ToF32()
	if !AllClose(a, back, 1e-3, 1e-3) {
		t.Errorf("f16 conversion drifted: %v vs %v", a.F32(), back.F32())
	}
}

func TestAllClose(t *testing.T) {
	a := FromF32(Shape{2}, []float32{1, 2})
	b := FromF32(Shape{2}, []float32{1, 2.0001})
	if !AllClose(a, b, 1e-3, 1e-3) {
		t.Error("nearly-equal tensors should be close")
	}
	c := FromF32(Shape{2}, []float32{1, 3})
	if AllClose(a, c, 1e-3, 1e-3) {
		t.Error("different tensors should not be close")
	}
	d := FromF32(Shape{3}, []float32{1, 2, 3})
	if AllClose(a, d, 1, 1) {
		t.Error("different shapes should not be close")
	}
	nan := FromF32(Shape{2}, []float32{1, float32(math.NaN())})
	if AllClose(nan, nan, 1, 1) {
		t.Error("NaN should never compare close")
	}
}

func TestBroadcastShapes(t *testing.T) {
	got, err := BroadcastShapes(Shape{4, 1, 3}, Shape{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(Shape{4, 2, 3}) {
		t.Errorf("broadcast = %v", got)
	}
	if _, err := BroadcastShapes(Shape{3}, Shape{4}); err == nil {
		t.Error("incompatible shapes should fail")
	}
}

func TestShapeStrides(t *testing.T) {
	s := Shape{2, 3, 4}
	st := s.Strides()
	want := []int{12, 4, 1}
	for i := range want {
		if st[i] != want[i] {
			t.Fatalf("strides = %v, want %v", st, want)
		}
	}
}

func TestMetaSerializationRoundTrip(t *testing.T) {
	m := Meta{DType: F16, Shape: Shape{5, 7, 9}}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != m.EncodedLen() {
		t.Errorf("encoded %d bytes, EncodedLen says %d", buf.Len(), m.EncodedLen())
	}
	back, err := ReadMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(m) {
		t.Errorf("round trip %v -> %v", m, back)
	}
}

func TestMetaRejectsGarbage(t *testing.T) {
	if _, err := ReadMeta(bytes.NewReader([]byte{200, 1, 0, 0, 0, 0})); err == nil {
		t.Error("invalid dtype byte should error")
	}
	if _, err := ReadMeta(bytes.NewReader([]byte{0, 200})); err == nil {
		t.Error("huge rank should error")
	}
	if _, err := ReadMeta(bytes.NewReader([]byte{0, 1, 0, 0, 0, 0})); err == nil {
		t.Error("zero dim should error")
	}
}

func TestTensorSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(F32, 4, 5)
	a.RandN(rng, 1)
	var buf bytes.Buffer
	if err := Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !AllClose(a, back, 0, 0) {
		t.Error("serialization round trip changed values")
	}
}

func TestSerializationPropertyRoundTrip(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		a := FromF32(Shape{len(vals)}, vals)
		var buf bytes.Buffer
		if err := Write(&buf, a); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return bytes.Equal(a.Bytes(), back.Bytes()) && back.Shape().Equal(a.Shape())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWrapPinnedRelease(t *testing.T) {
	released := false
	buf := make([]byte, 8)
	tt, err := WrapPinned(F32, Shape{2}, buf, func() { released = true })
	if err != nil {
		t.Fatal(err)
	}
	if !tt.Pinned() {
		t.Error("tensor should report pinned")
	}
	tt.Release()
	if !released {
		t.Error("release func should run")
	}
	tt.Release() // idempotent
	// Unpinned tensors don't blow up.
	New(F32, 1).Release()
}

func TestFillAndRandN(t *testing.T) {
	a := New(F32, 10)
	a.Fill(3)
	for _, v := range a.F32() {
		if v != 3 {
			t.Fatal("fill failed")
		}
	}
	rng := rand.New(rand.NewSource(42))
	a.RandN(rng, 1)
	var sum float32
	for _, v := range a.F32() {
		sum += v
	}
	if sum == 30 {
		t.Error("RandN left the tensor unchanged")
	}
}

func TestStringForms(t *testing.T) {
	a := New(F16, 2, 3)
	if a.String() != "f16[2 3]" {
		t.Errorf("String() = %q", a.String())
	}
	m := MetaOf(a)
	if m.String() != "f16[2 3]" || m.Bytes() != 12 {
		t.Errorf("meta %q bytes %d", m.String(), m.Bytes())
	}
}
