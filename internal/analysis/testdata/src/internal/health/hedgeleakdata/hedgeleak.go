// Package hedgeleakdata is genie-lint test fixture data for the
// goroutine cancellation analyzer in the health scorer's hedge idiom.
// Its pretend path (genie/internal/health/...) places it inside
// goleak's scope: a hedged request races two attempts, and the losing
// attempt's goroutine must have a cancellation path — a loser that
// retries forever outlives every request it was racing for.
package hedgeleakdata

import (
	"context"
	"time"
)

type attempt struct {
	send    chan []byte
	results chan int
	fails   int
}

func (a *attempt) try() bool { a.fails++; return a.fails > 3 }

// hedgeWithoutCancel launches the backup attempt with nothing to stop
// it: if the primary wins, the loser keeps retrying for the life of
// the process, pinning its lane.
func (a *attempt) hedgeWithoutCancel() {
	go func() { // want "unconditional loop with no cancellation path"
		for {
			if a.try() {
				a.results <- 1
			}
			time.Sleep(time.Millisecond)
		}
	}()
}

// hedgeWithContext is the correct shape: the winner's caller cancels
// the context and the loser observes Done and exits.
func (a *attempt) hedgeWithContext(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			if a.try() {
				select {
				case a.results <- 1:
				case <-ctx.Done():
				}
				return
			}
		}
	}()
}

// probeLoop pumps a closable probe channel: closing send when the
// endpoint is dropped ends the goroutine, which counts as cancellable.
func (a *attempt) probeLoop() {
	go func() {
		for range a.send {
			a.try()
		}
	}()
}

// retryForever is the named-function form of the leak: its summary
// records the unconditional loop.
func retryForever(a *attempt) {
	for {
		a.try()
	}
}

// armBackup has no loop of its own — it records the hedge and hands
// off to the retry body.
func armBackup(a *attempt) {
	a.fails = 0
	retryForever(a)
}

// launchHedge hides the leak one call down — the go'd body has no loop
// of its own, but what it calls never returns.
func launchHedge(a *attempt) {
	go armBackup(a) // want "goroutine calls .*retryForever, which loops forever"
}

// oneShot fires a single bounded attempt; goroutines without an
// unconditional loop are not flagged.
func oneShot(a *attempt) {
	go func() {
		a.results <- 1
	}()
}
