package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counters tracks traffic through one endpoint; the evaluation's "Net
// [MB]" column reads these.
type Counters struct {
	BytesSent atomic.Int64
	BytesRecv atomic.Int64
	Calls     atomic.Int64
}

// Snapshot returns current values.
func (c *Counters) Snapshot() (sent, recv, calls int64) {
	return c.BytesSent.Load(), c.BytesRecv.Load(), c.Calls.Load()
}

// Reset zeroes the counters.
func (c *Counters) Reset() {
	c.BytesSent.Store(0)
	c.BytesRecv.Store(0)
	c.Calls.Store(0)
}

// Total returns sent+recv.
func (c *Counters) Total() int64 { return c.BytesSent.Load() + c.BytesRecv.Load() }

// Shaper emulates link characteristics on top of a fast local socket so
// small-scale real-transport experiments exhibit the paper's 25 Gbps +
// RPC-overhead regime. A nil *Shaper is a no-op.
type Shaper struct {
	// Bandwidth in bytes/s (0 = unlimited).
	Bandwidth float64
	// RTT added per call (half on send, half on receive).
	RTT time.Duration
	// PerCall is fixed software overhead added to every RPC, emulating
	// the TensorPipe/Python dispatch cost the paper measures.
	PerCall time.Duration
}

func (s *Shaper) delaySend(n int) {
	if s == nil {
		return
	}
	d := s.PerCall + s.RTT/2
	if s.Bandwidth > 0 {
		d += time.Duration(float64(n) / s.Bandwidth * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

func (s *Shaper) delayRecv(n int) {
	if s == nil {
		return
	}
	d := s.RTT / 2
	if s.Bandwidth > 0 {
		d += time.Duration(float64(n) / s.Bandwidth * float64(time.Second))
	}
	if d > 0 {
		time.Sleep(d)
	}
}

// Conn is a counted, optionally shaped, framed connection. It serializes
// concurrent calls (one outstanding request per conn, like a synchronous
// RPC channel).
type Conn struct {
	mu   sync.Mutex
	raw  net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	ctr  *Counters
	shp  *Shaper
	tel  *Telemetry
	dead atomic.Bool
	// feat holds the negotiated wire feature mask (see wirefeat.go).
	// Zero until a MsgHello exchange grants features; only the sending
	// side consults it — receiving compressed frames always works.
	feat atomic.Uint32
}

// NewConn wraps a net.Conn. counters may be shared across conns; shaper
// may be nil.
func NewConn(raw net.Conn, counters *Counters, shaper *Shaper) *Conn {
	if counters == nil {
		counters = &Counters{}
	}
	return &Conn{
		raw: raw,
		br:  bufio.NewReaderSize(raw, 1<<20),
		bw:  bufio.NewWriterSize(raw, 1<<20),
		ctr: counters,
		shp: shaper,
	}
}

// Counters returns the traffic counters for this conn.
func (c *Conn) Counters() *Counters { return c.ctr }

// SetFeatures installs the negotiated wire feature mask. Called by
// Client.Negotiate and the server's MsgHello handler once both sides
// agree; until then the conn speaks the legacy byte-identical protocol.
func (c *Conn) SetFeatures(f uint32) { c.feat.Store(f) }

// Features returns the negotiated wire feature mask (0 = legacy).
func (c *Conn) Features() uint32 { return c.feat.Load() }

// SetTelemetry attaches per-kind byte/call accounting (may be shared
// across conns; nil detaches).
func (c *Conn) SetTelemetry(t *Telemetry) { c.tel = t }

// Telemetry returns the attached per-kind accounting (nil when none).
func (c *Conn) Telemetry() *Telemetry { return c.tel }

// Close closes the underlying socket.
func (c *Conn) Close() error {
	c.dead.Store(true)
	return c.raw.Close()
}

// Dead reports whether the conn has been closed or poisoned by a failed
// round trip. A dead conn cannot be revived; callers should redial.
func (c *Conn) Dead() bool { return c.dead.Load() }

// Send writes one untraced frame.
func (c *Conn) Send(t MsgType, payload []byte) error {
	return c.SendEnv(t, Envelope{}, payload)
}

// SendEnv writes one frame carrying env (untraced when env is zero).
// On connections that negotiated FeatCompress, payloads that deflate
// smaller travel compressed; counters, telemetry, and the link shaper
// all see the bytes that actually crossed the wire.
func (c *Conn) SendEnv(t MsgType, env Envelope, payload []byte) error {
	var cp []byte
	if c.feat.Load()&FeatCompress != 0 {
		cp = compressPayload(payload)
	}
	wireLen := len(payload)
	if cp != nil {
		wireLen = len(cp)
	}
	c.shp.delaySend(wireLen)
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	if cp != nil {
		err = writeFrameCompressed(c.bw, t, env, cp)
	} else {
		err = WriteFrameEnv(c.bw, t, env, payload)
	}
	if err != nil {
		return err
	}
	if err := c.bw.Flush(); err != nil {
		return err
	}
	n := env.wireSize(wireLen)
	c.ctr.BytesSent.Add(n)
	c.tel.onSend(t, n)
	return nil
}

// Recv reads one frame, discarding any trace envelope.
func (c *Conn) Recv() (MsgType, []byte, error) {
	t, _, payload, err := c.RecvEnv()
	return t, payload, err
}

// RecvEnv reads one frame plus the peer's trace envelope. A malformed
// frame (oversize length prefix, corrupt header) poisons and closes the
// conn: after one bad frame the stream's boundaries can no longer be
// trusted, so continuing to read would desynchronize every later call.
func (c *Conn) RecvEnv() (MsgType, Envelope, []byte, error) {
	t, env, payload, wireLen, err := readFrameEnvFeat(c.br)
	if err != nil {
		if IsFrameError(err) {
			_ = c.Close()
		}
		return 0, Envelope{}, nil, err
	}
	n := env.wireSize(wireLen)
	c.ctr.BytesRecv.Add(n)
	c.tel.onRecv(t, n)
	c.shp.delayRecv(wireLen)
	return t, env, payload, nil
}

// Call performs one synchronous round trip and returns the response
// frame. MsgErr responses decode to an error.
func (c *Conn) Call(t MsgType, payload []byte) (MsgType, []byte, error) {
	return c.CallEnv(t, Envelope{}, payload)
}

// CallEnv performs one round trip with trace context attached to the
// request frame, so the server can parent its spans under the caller.
//
// A failed send or receive poisons the conn (Dead reports true and the
// socket is closed): the synchronous protocol cannot tell whether the
// peer consumed the request, so a response may still be in flight and
// would desynchronize the next call. RemoteError responses (MsgErr) are
// application-level and leave the conn healthy.
func (c *Conn) CallEnv(t MsgType, env Envelope, payload []byte) (MsgType, []byte, error) {
	c.ctr.Calls.Add(1)
	c.tel.onCall(t)
	if err := c.SendEnv(t, env, payload); err != nil {
		_ = c.Close()
		return 0, nil, fmt.Errorf("transport: send: %w", err)
	}
	rt, rp, err := c.Recv()
	if err != nil {
		_ = c.Close()
		return 0, nil, fmt.Errorf("transport: recv: %w", err)
	}
	if rt == MsgErr {
		return rt, nil, DecodeErr(rp)
	}
	return rt, rp, nil
}

// CallCtx is Call with the context's deadline and cancellation applied
// to the round trip's socket I/O.
func (c *Conn) CallCtx(ctx context.Context, t MsgType, payload []byte) (MsgType, []byte, error) {
	return c.CallEnvCtx(ctx, t, Envelope{}, payload)
}

// CallEnvCtx is CallEnv with per-call deadlines: the context's deadline
// is installed as the socket's read+write deadline for the duration of
// the round trip, and cancellation mid-call forces the blocked I/O to
// fail immediately. This is what keeps a hung or partitioned peer from
// wedging the caller forever — the call returns once ctx expires, the
// conn is poisoned (a late response can't be re-associated), and the
// caller can redial or fail over.
func (c *Conn) CallEnvCtx(ctx context.Context, t MsgType, env Envelope, payload []byte) (MsgType, []byte, error) {
	release, err := c.armDeadline(ctx)
	if err != nil {
		return 0, nil, fmt.Errorf("transport: call: %w", err)
	}
	rt, rp, err := c.CallEnv(t, env, payload)
	release()
	if err != nil && ctx != nil && !IsRemote(err) {
		if cerr := ctx.Err(); cerr != nil {
			// The I/O error was induced by expiry/cancel; surface the cause.
			return 0, nil, fmt.Errorf("transport: call: %w", cerr)
		}
		// The armed I/O deadline *is* the ctx deadline, so a raw timeout
		// means the ctx expired even if its own timer hasn't fired yet.
		if _, has := ctx.Deadline(); has && errors.Is(err, os.ErrDeadlineExceeded) {
			return 0, nil, fmt.Errorf("transport: call: %w", context.DeadlineExceeded)
		}
	}
	return rt, rp, err
}

// armDeadline applies ctx's deadline to the raw socket and spawns a
// watcher that yanks the deadline on cancellation. The returned release
// stops the watcher and clears the deadline; it must be called exactly
// once, after the round trip.
func (c *Conn) armDeadline(ctx context.Context) (release func(), err error) {
	if ctx == nil {
		return func() {}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	deadline, hasDeadline := ctx.Deadline()
	if hasDeadline {
		_ = c.raw.SetDeadline(deadline)
	}
	done := ctx.Done()
	if done == nil {
		if !hasDeadline {
			return func() {}, nil
		}
		return func() { _ = c.raw.SetDeadline(time.Time{}) }, nil
	}
	stop := make(chan struct{})
	var mu sync.Mutex
	released := false
	go func() {
		select {
		case <-done:
			// Force any blocked read/write on this conn to fail now —
			// unless release already ran. The guard matters: when the call
			// completes and the caller cancels its ctx immediately after,
			// this goroutine may not have been scheduled yet and sees both
			// channels ready; picking done here would plant a poison
			// deadline on the conn AFTER release cleared it, failing the
			// next, innocent call on this conn.
			mu.Lock()
			if !released {
				// SetDeadline never blocks; holding mu here is what makes
				// the released-check and the poison atomic against release.
				//lint:ignore lockscope SetDeadline is non-blocking
				_ = c.raw.SetDeadline(time.Unix(1, 0))
			}
			mu.Unlock()
		case <-stop:
		}
	}()
	return func() {
		mu.Lock()
		released = true
		mu.Unlock()
		close(stop)
		_ = c.raw.SetDeadline(time.Time{})
	}, nil
}

// Dial connects to a Genie server.
func Dial(addr string, counters *Counters, shaper *Shaper) (*Conn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if tc, ok := raw.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
	}
	return NewConn(raw, counters, shaper), nil
}

// Pipe returns two in-process connected endpoints (tests, examples).
func Pipe(counters *Counters, shaper *Shaper) (client, server *Conn) {
	a, b := net.Pipe()
	return NewConn(a, counters, shaper), NewConn(b, nil, nil)
}

// IsClosed reports whether err indicates a closed/broken connection.
func IsClosed(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "use of closed network connection") ||
		strings.Contains(msg, "EOF") ||
		strings.Contains(msg, "connection reset")
}
