package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// program.go is genie-lint's SSA-lite interprocedural layer. A Program
// indexes every function declaration across all packages the loader has
// type-checked (the analyzed packages and their module-local
// dependencies share one *types.Package world, so *types.Func identity
// is global), builds a static call graph, seeds a per-function Summary
// from each body, and propagates the summaries to a fixpoint. Analyzers
// query summaries through Pass.Prog to see through call boundaries the
// intraprocedural AST walks cannot: a KV key that escapes into a
// helper, a span ended by a callee, a goroutine target that loops
// forever two calls away.
//
// The representation is deliberately not full SSA: summaries are
// may-facts ("this function may block", "param 2 may reach a KV
// sink"), which is the right polarity for a linter — absence of a fact
// never causes a report, so imprecision degrades to silence, not
// noise.

// Summary is the fixpoint dataflow fact set for one function. All
// fields are may-facts, closed over the static call graph.
type Summary struct {
	// Blocks: the function may park the calling goroutine — a channel
	// operation outside a select-with-default, a blocking select,
	// time.Sleep, WaitGroup.Wait, or a call into a network package.
	Blocks      bool
	BlockReason string

	// Remote: the function may issue a remote operation (a transport
	// method or a runtime.Endpoint method) somewhere below it.
	Remote     bool
	RemoteName string

	// LoopsForever: the function contains (or unconditionally reaches)
	// an unconditional for-loop with no cancellation signal, no return,
	// and no loop-exiting break — once entered it never hands control
	// back.
	LoopsForever bool

	// TimerLeak: the function may allocate a timer/ticker that nothing
	// stops: time.Tick, time.After abandoned by a multi-case select, or
	// an unstopped NewTimer/NewTicker.
	TimerLeak   bool
	TimerReason string

	// RebuildsPlan: the function may replace a *pool.ShardPlan field —
	// it is (or calls into) a membership-rebuild section, after which
	// previously read plan snapshots are stale.
	RebuildsPlan bool

	// KVSinkParams marks parameters whose value may reach a KV binding
	// sink (transport.Binding.Key or a transport Exec.Keep value).
	KVSinkParams map[int]bool

	// EndsSpanParams marks span-typed parameters the function ends on
	// its own (directly or through a callee).
	EndsSpanParams map[int]bool
}

// argFlow records "our parameter param is passed as argument arg to
// callee" — the edge along which per-parameter facts propagate.
type argFlow struct {
	callee *types.Func
	arg    int
	param  int
}

type progFunc struct {
	decl    *ast.FuncDecl
	pkg     *Package
	callees []*types.Func // static module-local callees, source order
	flows   []argFlow
	sum     Summary
}

// Program is the module-wide function index plus fixpoint summaries.
// It is immutable after BuildProgram and safe for concurrent readers.
type Program struct {
	fns   map[*types.Func]*progFunc
	order []*types.Func // deterministic iteration order (by position)
}

// BuildProgram indexes every function in pkgs (packages with load
// errors are skipped), seeds summaries, and runs the propagator.
func BuildProgram(pkgs []*Package) *Program {
	p := &Program{fns: make(map[*types.Func]*progFunc)}
	for _, pkg := range pkgs {
		if len(pkg.Errs) > 0 {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				p.fns[fn] = &progFunc{decl: fd, pkg: pkg}
				p.order = append(p.order, fn)
			}
		}
	}
	sort.Slice(p.order, func(i, j int) bool { return p.order[i].Pos() < p.order[j].Pos() })
	for _, fn := range p.order {
		seedSummary(fn, p.fns[fn])
	}
	p.propagate()
	return p
}

// Summary returns the fixpoint summary of fn, if fn is a module-local
// declared function the program indexed.
func (p *Program) Summary(fn *types.Func) (Summary, bool) {
	if p == nil || fn == nil {
		return Summary{}, false
	}
	pf, ok := p.fns[fn]
	if !ok {
		return Summary{}, false
	}
	return pf.sum, true
}

// Decl resolves fn to its declaration and owning package (nil, nil when
// fn is not module-local or has no body).
func (p *Program) Decl(fn *types.Func) (*ast.FuncDecl, *Package) {
	if p == nil || fn == nil {
		return nil, nil
	}
	pf, ok := p.fns[fn]
	if !ok {
		return nil, nil
	}
	return pf.decl, pf.pkg
}

// propagate closes the seeded summaries over the call graph. Iteration
// order is deterministic (functions by position, callees in source
// order) so the "reason" strings — which surface in diagnostics — are
// stable across runs.
func (p *Program) propagate() {
	for changed := true; changed; {
		changed = false
		for _, fn := range p.order {
			pf := p.fns[fn]
			for _, c := range pf.callees {
				cp, ok := p.fns[c]
				if !ok {
					continue
				}
				cs := &cp.sum
				if cs.Blocks && !pf.sum.Blocks {
					pf.sum.Blocks, pf.sum.BlockReason = true, cs.BlockReason
					changed = true
				}
				if cs.Remote && !pf.sum.Remote {
					pf.sum.Remote, pf.sum.RemoteName = true, cs.RemoteName
					changed = true
				}
				if cs.LoopsForever && !pf.sum.LoopsForever {
					pf.sum.LoopsForever = true
					changed = true
				}
				if cs.TimerLeak && !pf.sum.TimerLeak {
					pf.sum.TimerLeak, pf.sum.TimerReason = true, cs.TimerReason
					changed = true
				}
				if cs.RebuildsPlan && !pf.sum.RebuildsPlan {
					pf.sum.RebuildsPlan = true
					changed = true
				}
			}
			for _, fl := range pf.flows {
				cp, ok := p.fns[fl.callee]
				if !ok {
					continue
				}
				if cp.sum.KVSinkParams[fl.arg] && !pf.sum.KVSinkParams[fl.param] {
					if pf.sum.KVSinkParams == nil {
						pf.sum.KVSinkParams = make(map[int]bool)
					}
					pf.sum.KVSinkParams[fl.param] = true
					changed = true
				}
				if cp.sum.EndsSpanParams[fl.arg] && !pf.sum.EndsSpanParams[fl.param] {
					if pf.sum.EndsSpanParams == nil {
						pf.sum.EndsSpanParams = make(map[int]bool)
					}
					pf.sum.EndsSpanParams[fl.param] = true
					changed = true
				}
			}
		}
	}
}

// paramIndex maps each named parameter object of decl to its position.
func paramIndex(info *types.Info, decl *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	if decl.Type.Params == nil {
		return out
	}
	i := 0
	for _, field := range decl.Type.Params.List {
		if len(field.Names) == 0 {
			i++ // unnamed parameter still occupies a position
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

// seedSummary derives the local (call-free) facts of one function.
// Control-flow facts (Blocks, LoopsForever, Remote, TimerLeak,
// RebuildsPlan) ignore nested function literals — a literal's body runs
// on its own schedule. Per-parameter facts (KV sinks, span ends) look
// inside literals too: a deferred closure that ends a span still ends
// it.
func seedSummary(fn *types.Func, pf *progFunc) {
	info := pf.pkg.Info
	body := pf.decl.Body
	params := paramIndex(info, pf.decl)

	polls := nonBlockingCommOps(body)
	walkIgnoringFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !polls[n] {
				pf.seedBlocks("channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !polls[n] {
				pf.seedBlocks("channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				pf.seedBlocks("blocking select")
			}
		case *ast.RangeStmt:
			if t, ok := info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					pf.seedBlocks("range over channel")
				}
			}
		case *ast.ForStmt:
			if n.Cond == nil && loopNeverExits(info, n.Body) {
				pf.sum.LoopsForever = true
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := unparen(lhs).(*ast.SelectorExpr); ok {
					if t, ok := info.Types[sel]; ok && isScopedNamed(t.Type, "genie/internal/pool", "ShardPlan") {
						pf.sum.RebuildsPlan = true
					}
				}
			}
		case *ast.CallExpr:
			pf.seedCall(info, n)
		}
		return true
	})
	seedTimers(info, body, pf)

	// Per-parameter facts: full walk, literals included.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !isKVKeepSink(info, lhs) {
					continue
				}
				if idx, ok := resolvedParam(info, params, n.Rhs[i]); ok {
					pf.markKVSink(idx)
				}
			}
		case *ast.CompositeLit:
			if !isScopedNamed(typeOfExpr(info, n), "genie/internal/transport", "Binding") {
				return true
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Key" {
					if idx, ok := resolvedParam(info, params, kv.Value); ok {
						pf.markKVSink(idx)
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if idx, ok := resolvedParam(info, params, sel.X); ok {
					if isSpanType(typeOfExpr(info, sel.X)) {
						pf.markSpanEnd(idx)
					}
				}
			}
			callee := calleeFunc(info, n)
			if callee == nil || callee == fn {
				return true
			}
			for argIdx, arg := range n.Args {
				if idx, ok := resolvedParam(info, params, arg); ok {
					pf.flows = append(pf.flows, argFlow{callee: callee, arg: argIdx, param: idx})
				}
			}
		}
		return true
	})
}

func (pf *progFunc) seedBlocks(reason string) {
	if !pf.sum.Blocks {
		pf.sum.Blocks, pf.sum.BlockReason = true, reason
	}
}

func (pf *progFunc) markKVSink(i int) {
	if pf.sum.KVSinkParams == nil {
		pf.sum.KVSinkParams = make(map[int]bool)
	}
	pf.sum.KVSinkParams[i] = true
}

func (pf *progFunc) markSpanEnd(i int) {
	if pf.sum.EndsSpanParams == nil {
		pf.sum.EndsSpanParams = make(map[int]bool)
	}
	pf.sum.EndsSpanParams[i] = true
}

// seedCall classifies one direct call for the control-flow facts and
// records the call-graph edge.
func (pf *progFunc) seedCall(info *types.Info, call *ast.CallExpr) {
	callee := calleeFunc(info, call)
	if callee == nil {
		return
	}
	name, pkg := callee.Name(), funcPkgPath(callee)
	recv := recvTypeString(callee)
	switch {
	case pkg == "time" && name == "Sleep":
		pf.seedBlocks("time.Sleep")
	case pkg == "sync" && name == "Wait" && recv == "*sync.WaitGroup":
		pf.seedBlocks("WaitGroup.Wait")
	case blockingPkgs[pkg] && name != "Close":
		pf.seedBlocks("call to " + callee.FullName())
	}
	switch scopePath(pkg) {
	case "genie/internal/transport":
		// Retrier methods pace themselves; encode/decode helpers are
		// pure. Remote means a method that can cross the wire.
		if recv != "" && !strings.Contains(recv, "Retrier") && name != "Close" {
			pf.seedRemote("transport." + name)
		}
	case "genie/internal/runtime":
		if strings.HasSuffix(recv, "runtime.Endpoint") {
			pf.seedRemote("Endpoint." + name)
		}
	}
	pf.callees = append(pf.callees, callee)
}

func (pf *progFunc) seedRemote(name string) {
	if !pf.sum.Remote {
		pf.sum.Remote, pf.sum.RemoteName = true, name
	}
}

// loopNeverExits reports whether a condition-less loop body offers no
// way out: no cancellation signal (select, channel receive, channel
// range, ctx.Done/Err), no return, and no loop-exiting break.
func loopNeverExits(info *types.Info, body *ast.BlockStmt) bool {
	if hasCancelSignalIn(info, body) || bodyBranches(body, token.BREAK) {
		return false
	}
	hasReturn := false
	walkIgnoringFuncLits(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			hasReturn = true
		}
		return !hasReturn
	})
	return !hasReturn
}

// nonBlockingCommOps collects the communication operands of every
// select that has a default case: those sends/receives are polls, not
// parks.
func nonBlockingCommOps(body *ast.BlockStmt) map[ast.Node]bool {
	polls := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok || !selectHasDefault(sel) {
			return true
		}
		for _, c := range sel.Body.List {
			comm := c.(*ast.CommClause).Comm
			switch s := comm.(type) {
			case *ast.SendStmt:
				polls[s] = true
			case *ast.ExprStmt:
				if u, ok := unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					polls[u] = true
				}
			case *ast.AssignStmt:
				for _, rhs := range s.Rhs {
					if u, ok := unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						polls[u] = true
					}
				}
			}
		}
		return true
	})
	return polls
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if c.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// seedTimers detects locally-leaked timers: time.Tick (never
// stoppable), time.After abandoned by a multi-case select, and
// NewTimer/NewTicker results that are neither stopped nor handed off.
func seedTimers(info *types.Info, body *ast.BlockStmt, pf *progFunc) {
	alloc := make(map[types.Object]string) // timer/ticker local -> allocator
	released := make(map[types.Object]bool)
	walkIgnoringFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, rhs := range n.Rhs {
					call, ok := unparen(rhs).(*ast.CallExpr)
					if ok && timerAllocName(info, call) != "" {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
							if obj := info.Defs[id]; obj != nil {
								alloc[obj] = timerAllocName(info, call)
								continue
							}
						}
					}
					// A timer local re-assigned or stored elsewhere has
					// a new owner; don't second-guess it.
					if id, ok := unparen(rhs).(*ast.Ident); ok {
						released[info.Uses[id]] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if id, ok := unparen(r).(*ast.Ident); ok {
					released[info.Uses[id]] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
				if id, ok := unparen(sel.X).(*ast.Ident); ok {
					released[info.Uses[id]] = true
				}
			}
			for _, arg := range n.Args {
				if id, ok := unparen(arg).(*ast.Ident); ok {
					released[info.Uses[id]] = true
				}
			}
			switch {
			case isFuncNamed(info, n, "time", "Tick"):
				pf.seedTimerLeak("time.Tick allocates a ticker that can never be stopped")
			}
		case *ast.SelectStmt:
			if len(n.Body.List) >= 2 && selectUsesAfter(info, n) {
				pf.seedTimerLeak("time.After in a multi-case select leaks its timer when another case fires first")
			}
		}
		return true
	})
	for obj, kind := range alloc {
		if !released[obj] {
			pf.seedTimerLeak(kind + " result " + obj.Name() + " is never stopped")
		}
	}
}

func (pf *progFunc) seedTimerLeak(reason string) {
	if !pf.sum.TimerLeak {
		pf.sum.TimerLeak, pf.sum.TimerReason = true, reason
	}
}

// timerAllocName returns "time.NewTimer"/"time.NewTicker" for the
// matching allocation calls, "" otherwise.
func timerAllocName(info *types.Info, call *ast.CallExpr) string {
	if isFuncNamed(info, call, "time", "NewTimer") {
		return "time.NewTimer"
	}
	if isFuncNamed(info, call, "time", "NewTicker") {
		return "time.NewTicker"
	}
	return ""
}

// selectUsesAfter reports whether any comm clause of sel receives from
// time.After.
func selectUsesAfter(info *types.Info, sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		comm := c.(*ast.CommClause).Comm
		if comm == nil {
			continue
		}
		found := false
		ast.Inspect(comm, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isFuncNamed(info, call, "time", "After") {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// isKVKeepSink reports whether lhs is an index into a transport
// Exec.Keep map (the per-request KV retention set).
func isKVKeepSink(info *types.Info, lhs ast.Expr) bool {
	ix, ok := unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(ix.X).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Keep" {
		return false
	}
	return isScopedNamed(typeOfExpr(info, sel.X), "genie/internal/transport", "Exec")
}

// resolvedParam resolves e (through parens) to a parameter of the
// enclosing function and returns its index.
func resolvedParam(info *types.Info, params map[types.Object]int, e ast.Expr) (int, bool) {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj := info.Uses[id]
	if obj == nil {
		return 0, false
	}
	idx, ok := params[obj]
	return idx, ok
}

// hasCancelSignalIn reports whether body contains any construct through
// which a stop can arrive: a channel receive (select case or direct), a
// range over a channel, or a context Done/Err call. Function literals
// are skipped — their bodies run on their own schedule.
func hasCancelSignalIn(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	walkIgnoringFuncLits(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := info.Types[n.X]; ok {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil {
				if (fn.Name() == "Done" || fn.Name() == "Err") && funcPkgPath(fn) == "context" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
