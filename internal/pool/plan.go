// Package pool implements the disaggregated backend pool: one model
// sharded across N network-attached backends with elastic membership.
// It is the layer the paper argues disaggregation needs to be judged
// at — a single backend holding the whole model never exercises the
// "accelerator pool" economics; a pool that shards by workload
// semantics (module groups, KV residency, phase costs) does.
//
// The subsystem has three parts:
//
//   - ShardPlan (this file): placement of the model's module units onto
//     members, driven by the roofline device cost model plus link
//     transfer costs — the generalization of scheduler.shardByMemory's
//     per-op seed to a pool-wide, strategy-selectable plan.
//   - Manager (pool.go): elastic membership. Backends Join and Leave at
//     runtime; the manager rebuilds the plan, installs/migrates shard
//     weights, and reuses lineage provenance (TrackedEndpoint.Failover)
//     to re-home a departed member's state without ever reading from it.
//   - session (session.go): end-to-end sharded execution behind the
//     runtime.Session prefill/step API, inserting cross-backend
//     activation and ΔKV transfers at shard boundaries, so the serving
//     engine batches over sharded sessions unchanged.
package pool

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/scheduler"
)

// Strategy selects how layers map onto members.
type Strategy int

const (
	// StrategyAuto evaluates every strategy's plan under the cost model
	// and keeps the cheapest feasible one.
	StrategyAuto Strategy = iota
	// StrategyMemory is the seed policy generalized: first-fit
	// consecutive bin-packing of module groups by weight footprint,
	// using as few members as fit allows.
	StrategyMemory
	// StrategyTensor interleaves module groups round-robin across
	// members — tensor-parallel-style balance at module-group
	// granularity (each member computes every M-th attention/MLP
	// group), bought with a boundary transfer per group.
	StrategyTensor
	// StrategyPipeline splits layers into contiguous, evenly sized
	// stages across all members — pipeline-parallel layer groups with
	// one boundary transfer per stage edge.
	StrategyPipeline
)

// String names the strategy as the -shard-strategy flag spells it.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyMemory:
		return "memory"
	case StrategyTensor:
		return "tensor"
	case StrategyPipeline:
		return "pipeline"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// ParseStrategy parses a -shard-strategy flag value.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "auto":
		return StrategyAuto, nil
	case "memory":
		return StrategyMemory, nil
	case "tensor":
		return StrategyTensor, nil
	case "pipeline":
		return StrategyPipeline, nil
	}
	return 0, fmt.Errorf("pool: unknown shard strategy %q (memory, tensor, pipeline, auto)", s)
}

// Candidate is one member offered to the planner.
type Candidate struct {
	Name string
	Spec device.Spec
	Link cluster.Link
	// HealthScore is the fail-slow scorer's composite score in (0, 1]
	// for this member (see internal/health); zero means unscored and is
	// treated as 1. The planner divides roofline kernel time by the
	// score, so a browned-out member looks proportionally slower to
	// placement and StrategyAuto routes layers away from it.
	HealthScore float64
	// Quarantined marks a member the fail-slow scorer has pulled from
	// service. It is still offered to the planner — dropping it could
	// make an otherwise-feasible model infeasible — but it sorts last
	// and its kernel time carries the worst-case penalty, so placement
	// avoids it whenever the healthy members have room.
	Quarantined bool
}

// minPlanScore floors the health divisor: a quarantined or near-dead
// member costs at most 1/minPlanScore × its roofline time, keeping
// estimates finite and comparable.
const minPlanScore = 0.05

// effectiveScore clamps a candidate's health score into [minPlanScore, 1].
func (c Candidate) effectiveScore() float64 {
	if c.Quarantined {
		return minPlanScore
	}
	s := c.HealthScore
	if s <= 0 || s > 1 {
		return 1
	}
	if s < minPlanScore {
		return minPlanScore
	}
	return s
}

// Shard is one contiguous run of layers owned by a single member. The
// first shard also runs the embeddings, the last one the head.
type Shard struct {
	Member      string
	Lo, Hi      int // layers [Lo, Hi)
	WeightBytes int64
}

// ShardPlan is a placement of the model across the pool.
type ShardPlan struct {
	Strategy Strategy
	// Version is the membership epoch the plan was built at; sessions
	// carry it so concurrent repairs are detected.
	Version int64
	// Owners maps each layer to its member. Embeddings ride with
	// Owners[0], the head with Owners[len-1].
	Owners []string
	// Weights is the per-member weight footprint (embed/head included).
	Weights map[string]int64
	// CutEdges counts shard boundaries; CutBytes is the activation
	// bytes crossing them per decode step.
	CutEdges int
	CutBytes int64
	// Estimate is the modeled per-decode-step latency: per-member
	// roofline kernel time + per-segment RPC overhead + boundary
	// transfers in both directions.
	Estimate time.Duration
}

// Members lists the distinct owners in pipeline order.
func (p *ShardPlan) Members() []string {
	var out []string
	seen := map[string]bool{}
	for _, o := range p.Owners {
		if !seen[o] {
			seen[o] = true
			out = append(out, o)
		}
	}
	return out
}

// Shards lists the contiguous same-owner layer runs in pipeline order.
func (p *ShardPlan) Shards() []Shard {
	var out []Shard
	for i := 0; i < len(p.Owners); {
		j := i
		for j < len(p.Owners) && p.Owners[j] == p.Owners[i] {
			j++
		}
		out = append(out, Shard{Member: p.Owners[i], Lo: i, Hi: j})
		i = j
	}
	return out
}

// shardFrom returns the contiguous run starting at layer.
func (p *ShardPlan) shardFrom(layer int) Shard {
	hi := layer
	for hi < len(p.Owners) && p.Owners[hi] == p.Owners[layer] {
		hi++
	}
	return Shard{Member: p.Owners[layer], Lo: layer, Hi: hi}
}

// unitAcct aggregates one placement unit's cost-model inputs.
type unitAcct struct {
	weight int64
	flops  float64
	bytes  int64
}

// modelUnits derives per-layer (plus embed and head) accounting from a
// captured decode-step SRG via scheduler.Units — the same module-group
// decomposition the per-op sharding seed uses, lifted to pool placement.
func modelUnits(m *models.GPT) (embed, head unitAcct, layers []unitAcct) {
	caches := make([]*nn.KVCache, m.Cfg.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{}
	}
	b, _ := m.BuildDecodeStep(0, 1, 1, caches)
	layers = make([]unitAcct, m.Cfg.Layers)
	for _, u := range scheduler.Units(b.Graph()) {
		switch {
		case layerOfUnit(u.Name) >= 0:
			i := layerOfUnit(u.Name)
			layers[i].weight += u.WeightBytes
			layers[i].flops += u.FLOPs
			layers[i].bytes += u.Bytes
		case strings.HasSuffix(u.Name, ".ln_f") || strings.HasSuffix(u.Name, ".lm_head"):
			head.weight += u.WeightBytes
			head.flops += u.FLOPs
			head.bytes += u.Bytes
		default:
			embed.weight += u.WeightBytes
			embed.flops += u.FLOPs
			embed.bytes += u.Bytes
		}
	}
	return embed, head, layers
}

// layerOfUnit extracts the block index from a module-group name
// ("gpt.blocks.3" → 3), or -1.
func layerOfUnit(name string) int {
	const pfx = ".blocks."
	i := strings.Index(name, pfx)
	if i < 0 {
		return -1
	}
	rest := name[i+len(pfx):]
	if j := strings.IndexByte(rest, '.'); j >= 0 {
		rest = rest[:j]
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return -1
	}
	return n
}

// BuildPlan places the model across members under the given strategy.
// It errors when no feasible placement exists (the combined pool is too
// small, or a single unit exceeds every member).
func BuildPlan(m *models.GPT, members []Candidate, strat Strategy, version int64) (*ShardPlan, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("pool: no members")
	}
	// Healthiest members first (stable, so unscored pools keep their
	// offered order): first-fit packing and pipeline staging then load
	// the members most likely to sustain it, and quarantined members are
	// reached only when everything healthier is full.
	ordered := append([]Candidate(nil), members...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].Quarantined != ordered[j].Quarantined {
			return !ordered[i].Quarantined
		}
		return ordered[i].effectiveScore() > ordered[j].effectiveScore()
	})
	embed, head, layers := modelUnits(m)
	pl := &planner{model: m, members: ordered, embed: embed, head: head, layers: layers}
	switch strat {
	case StrategyMemory, StrategyTensor, StrategyPipeline:
		owners, err := pl.place(strat)
		if err != nil {
			return nil, err
		}
		return pl.finish(strat, owners, version), nil
	case StrategyAuto:
		var best *ShardPlan
		for _, s := range []Strategy{StrategyMemory, StrategyPipeline, StrategyTensor} {
			owners, err := pl.place(s)
			if err != nil {
				continue
			}
			p := pl.finish(s, owners, version)
			if best == nil || p.Estimate < best.Estimate {
				best = p
			}
		}
		if best == nil {
			return nil, fmt.Errorf("pool: model does not fit across %d member(s) under any strategy (weights %d B)",
				len(members), m.Cfg.WeightBytes())
		}
		best.Strategy = StrategyAuto
		return best, nil
	}
	return nil, fmt.Errorf("pool: unknown strategy %v", strat)
}

type planner struct {
	model   *models.GPT
	members []Candidate
	embed   unitAcct
	head    unitAcct
	layers  []unitAcct
}

func (pl *planner) byName(name string) Candidate {
	for _, c := range pl.members {
		if c.Name == name {
			return c
		}
	}
	return Candidate{}
}

// place assigns owners per layer; it validates memory feasibility.
func (pl *planner) place(strat Strategy) ([]string, error) {
	L := len(pl.layers)
	M := len(pl.members)
	if M > L {
		// Spare members beyond one-per-layer stay unplaced: they are hot
		// spares for failover and rebalance-on-join targets.
		M = L
	}
	owners := make([]string, L)
	switch strat {
	case StrategyMemory:
		// First-fit consecutive packing by weight footprint, embed and
		// head folded into the boundary layers (they must ride with
		// them). Uses as few members as fit allows.
		need := make([]int64, L)
		for i, u := range pl.layers {
			need[i] = u.weight
		}
		need[0] += pl.embed.weight
		need[L-1] += pl.head.weight
		mi, used := 0, int64(0)
		for i := 0; i < L; i++ {
			for mi < len(pl.members) && used+need[i] > pl.members[mi].Spec.MemBytes && used > 0 {
				mi++
				used = 0
			}
			if mi >= len(pl.members) || need[i] > pl.members[mi].Spec.MemBytes {
				return nil, fmt.Errorf("pool: model does not fit across the pool (layer %d needs %d B)", i, need[i])
			}
			used += need[i]
			owners[i] = pl.members[mi].Name
		}
	case StrategyPipeline:
		// Even contiguous stages: member j owns layers [j·L/M, (j+1)·L/M).
		for i := 0; i < L; i++ {
			owners[i] = pl.members[i*M/L].Name
		}
	case StrategyTensor:
		// Round-robin module groups: member j computes every M-th group.
		for i := 0; i < L; i++ {
			owners[i] = pl.members[i%M].Name
		}
	default:
		return nil, fmt.Errorf("pool: unknown strategy %v", strat)
	}
	if err := pl.validate(owners); err != nil {
		return nil, err
	}
	return owners, nil
}

// weightOf computes the per-member weight footprint of a placement.
func (pl *planner) weightOf(owners []string) map[string]int64 {
	w := map[string]int64{}
	for i, o := range owners {
		w[o] += pl.layers[i].weight
	}
	w[owners[0]] += pl.embed.weight
	w[owners[len(owners)-1]] += pl.head.weight
	return w
}

func (pl *planner) validate(owners []string) error {
	for name, w := range pl.weightOf(owners) {
		if spec := pl.byName(name).Spec; w > spec.MemBytes {
			return fmt.Errorf("pool: member %q over budget: %d B of weights, %d B of memory",
				name, w, spec.MemBytes)
		}
	}
	return nil
}

// finish computes the placement's cut and cost summary.
func (pl *planner) finish(strat Strategy, owners []string, version int64) *ShardPlan {
	p := &ShardPlan{
		Strategy: strat,
		Version:  version,
		Owners:   owners,
		Weights:  pl.weightOf(owners),
	}
	// Decode-step activation crossing a boundary: one [1, dim] f32 row.
	actBytes := int64(pl.model.Cfg.Dim) * 4
	var est time.Duration
	// Kernel time per layer on its owner, embed/head on theirs, scaled
	// by the owner's health: a member running at score s delivers its
	// roofline throughput slowed by 1/s under the fail-slow model.
	kt := func(c Candidate, u unitAcct) time.Duration {
		t := c.Spec.KernelTime(u.flops, u.bytes)
		if s := c.effectiveScore(); s < 1 {
			t = time.Duration(float64(t) / s)
		}
		return t
	}
	est += kt(pl.byName(owners[0]), pl.embed)
	for i, u := range pl.layers {
		est += kt(pl.byName(owners[i]), u)
	}
	est += kt(pl.byName(owners[len(owners)-1]), pl.head)
	// Per segment one RPC; per boundary the activation moves down from
	// the producer and up to the consumer.
	prev := ""
	for _, o := range owners {
		if o == prev {
			continue
		}
		c := pl.byName(o)
		est += c.Link.RPCOverhead
		if prev != "" {
			p.CutEdges++
			p.CutBytes += actBytes
			est += pl.byName(prev).Link.TransferTime(actBytes) + c.Link.TransferTime(actBytes)
		}
		prev = o
	}
	p.Estimate = est
	return p
}
