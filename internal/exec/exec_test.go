package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"genie/internal/lazy"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/tensor/ops"
)

// binderFor resolves leaves against the builder's registered data.
func binderFor(b *lazy.Builder) Binder {
	return func(op, ref string) (*tensor.Tensor, error) {
		if op == "param" {
			if t, ok := b.ParamData(ref); ok {
				return t, nil
			}
		} else if t, ok := b.InputData(ref); ok {
			return t, nil
		}
		return nil, fmt.Errorf("no data for %s %q", op, ref)
	}
}

func TestGraphEvalMatchesDirectOps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xT := tensor.New(tensor.F32, 3, 4)
	wT := tensor.New(tensor.F32, 4, 5)
	xT.RandN(rng, 1)
	wT.RandN(rng, 1)

	b := lazy.NewBuilder("t")
	x := b.Input("x", xT)
	w := b.Param("w", wT)
	y := b.Softmax(b.MatMul(x, w))
	b.MarkOutput(y)

	vals, err := Graph(b.Graph(), binderFor(b))
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := ops.MatMul(xT, wT)
	direct = ops.Softmax(direct)
	if !tensor.AllClose(vals[y.ID()], direct, 1e-6, 1e-6) {
		t.Error("lazy evaluation diverges from direct ops")
	}
}

func TestEveryCapturableOpExecutes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := lazy.NewBuilder("all-ops")
	xT := tensor.New(tensor.F32, 4, 8)
	xT.RandN(rng, 1)
	wT := tensor.New(tensor.F32, 8, 8)
	wT.RandN(rng, 0.5)
	gT := tensor.New(tensor.F32, 8)
	gT.Fill(1)
	bT := tensor.New(tensor.F32, 8)
	idsT := tensor.FromI64(tensor.Shape{3}, []int64{0, 2, 1})
	imgT := tensor.New(tensor.F32, 2, 8, 8)
	imgT.RandN(rng, 1)
	kernT := tensor.New(tensor.F32, 4, 2, 3, 3)
	kernT.RandN(rng, 0.3)

	x := b.Input("x", xT)
	w := b.Param("w", wT)
	gamma := b.Param("gamma", gT)
	beta := b.Param("beta", bT)
	ids := b.Input("ids", idsT)
	img := b.Input("img", imgT)
	kern := b.Param("kern", kernT)

	mm := b.MatMul(x, w)
	mt := b.MatMulT(x, x)
	ad := b.Add(mm, x)
	sb := b.Sub(ad, x)
	ml := b.Mul(sb, sb)
	sc := b.Scale(ml, 0.5)
	sm := b.Softmax(sc)
	ge := b.GELU(sm)
	re := b.ReLU(ge)
	ln := b.LayerNorm(re, gamma, beta, 1e-5)
	em := b.Embedding(w, ids)
	eb := b.EmbeddingBag(w, ids, []int{0, 1})
	cc := b.Concat(0, em, eb)
	sl := b.SliceRows(cc, 0, 2)
	tr := b.Transpose2D(sl)
	rs := b.Reshape(tr, 16)
	am := b.ArgmaxLast(ln)
	cv := b.Conv2D(img, kern, 1, 1)
	mp := b.MaxPool2D(cv, 2)
	gp := b.MeanPoolAll(mp)
	_ = mt
	_ = rs
	_ = am
	_ = gp

	vals, err := Graph(b.Graph(), binderFor(b))
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check a few results against direct execution.
	dmm, _ := ops.MatMul(xT, wT)
	if !tensor.AllClose(vals[mm.ID()], dmm, 1e-6, 1e-6) {
		t.Error("matmul mismatch")
	}
	dem, _ := ops.Embedding(wT, idsT)
	if !tensor.AllClose(vals[em.ID()], dem, 0, 0) {
		t.Error("embedding mismatch")
	}
	dcv, _ := ops.Conv2D(imgT, kernT, 1, 1)
	if !tensor.AllClose(vals[cv.ID()], dcv, 1e-5, 1e-5) {
		t.Error("conv mismatch")
	}
	// Every declared node executed.
	if len(vals) != b.Graph().Len() {
		t.Errorf("evaluated %d of %d nodes", len(vals), b.Graph().Len())
	}
}

func TestTransformerBlockEvaluates(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	blk := nn.NewBlock(rng, 16, 4, 32)
	xT := tensor.New(tensor.F32, 5, 16)
	xT.RandN(rng, 1)

	b := lazy.NewBuilder("block")
	x := b.Input("x", xT)
	out, newK, newV := blk.ForwardKV(b, "block0", x, lazy.Value{}, lazy.Value{})
	b.MarkOutput(out)

	if err := b.Graph().Validate(); err != nil {
		t.Fatal(err)
	}
	vals, err := Graph(b.Graph(), binderFor(b))
	if err != nil {
		t.Fatal(err)
	}
	if !vals[out.ID()].Shape().Equal(tensor.Shape{5, 16}) {
		t.Errorf("block output shape %v", vals[out.ID()].Shape())
	}
	if !vals[newK.ID()].Shape().Equal(tensor.Shape{5, 16}) {
		t.Errorf("new K shape %v", vals[newK.ID()].Shape())
	}
	_ = newV
}

func TestBlockWithKVCacheMatchesFullRecompute(t *testing.T) {
	// The semantic core of the paper's evaluation: running attention over
	// (cache ++ new token) must equal attention over the full sequence.
	rng := rand.New(rand.NewSource(7))
	attn := nn.NewAttention(rng, 8, 2)

	full := tensor.New(tensor.F32, 4, 8)
	full.RandN(rng, 1)
	prefix, _ := ops.SliceRows(full, 0, 3)
	last, _ := ops.SliceRows(full, 3, 4)

	// Full pass.
	bFull := lazy.NewBuilder("full")
	xF := bFull.Input("x", full)
	outF, kF, vF := attn.ForwardKV(bFull, "attn", xF, lazy.Value{}, lazy.Value{})
	valsF, err := Graph(bFull.Graph(), binderFor(bFull))
	if err != nil {
		t.Fatal(err)
	}

	// Prefill on the prefix to obtain the cache.
	bPre := lazy.NewBuilder("prefill")
	xP := bPre.Input("x", prefix)
	_, kP, vP := attn.ForwardKV(bPre, "attn", xP, lazy.Value{}, lazy.Value{})
	valsP, err := Graph(bPre.Graph(), binderFor(bPre))
	if err != nil {
		t.Fatal(err)
	}

	// Decode step with the cache.
	bDec := lazy.NewBuilder("decode")
	xD := bDec.Input("x", last)
	cacheK := bDec.StatefulInput("kv.k", valsP[kP.ID()])
	cacheV := bDec.StatefulInput("kv.v", valsP[vP.ID()])
	outD, _, _ := attn.ForwardKV(bDec, "attn", xD, cacheK, cacheV)
	valsD, err := Graph(bDec.Graph(), binderFor(bDec))
	if err != nil {
		t.Fatal(err)
	}

	// The decode output row must equal the last row of the full pass.
	wantLast, _ := ops.SliceRows(valsF[outF.ID()], 3, 4)
	if !tensor.AllClose(valsD[outD.ID()], wantLast, 1e-4, 1e-5) {
		t.Errorf("cached decode diverges from full attention:\n%v\nvs\n%v",
			valsD[outD.ID()].F32(), wantLast.F32())
	}
	_ = kF
	_ = vF
}

func TestNodeErrors(t *testing.T) {
	if _, err := Node(&srg.Node{Op: "param", Ref: "w"}, nil); err == nil {
		t.Error("executing a leaf should fail")
	}
	if _, err := Node(&srg.Node{Op: "nonsense"}, nil); err == nil {
		t.Error("unknown op should fail")
	}
	if _, err := Node(&srg.Node{Op: "matmul"}, nil); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := Node(&srg.Node{Op: "scale"}, []*tensor.Tensor{tensor.New(tensor.F32, 1)}); err == nil {
		t.Error("missing attr should fail")
	}
	if _, err := Node(&srg.Node{Op: "concat", Attrs: map[string]string{"dim": "x"}},
		[]*tensor.Tensor{tensor.New(tensor.F32, 1)}); err == nil {
		t.Error("malformed attr should fail")
	}
}

func TestGraphBindFailurePropagates(t *testing.T) {
	b := lazy.NewBuilder("t")
	x := b.Input("x", tensor.New(tensor.F32, 1))
	b.MarkOutput(b.ReLU(x))
	_, err := Graph(b.Graph(), func(op, ref string) (*tensor.Tensor, error) {
		return nil, fmt.Errorf("boom")
	})
	if err == nil {
		t.Error("binder failure should propagate")
	}
}

func TestLinearForwardMatchesOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lin := nn.NewLinear(rng, 6, 4, true)
	lin.Bias.RandN(rng, 1)
	xT := tensor.New(tensor.F32, 2, 6)
	xT.RandN(rng, 1)

	b := lazy.NewBuilder("lin")
	x := b.Input("x", xT)
	y := lin.Forward(b, "fc", x)
	vals, err := Graph(b.Graph(), binderFor(b))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ops.MatMul(xT, lin.W)
	want, _ = ops.Add(want, lin.Bias)
	if !tensor.AllClose(vals[y.ID()], want, 1e-6, 1e-6) {
		t.Error("linear forward mismatch")
	}
}

func TestKVCacheAppend(t *testing.T) {
	c := &nn.KVCache{}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Error("empty cache should be zero")
	}
	k1 := tensor.FromF32(tensor.Shape{2, 3}, []float32{1, 2, 3, 4, 5, 6})
	c.Append(k1, k1)
	c.Append(k1, k1)
	if c.Len() != 4 {
		t.Errorf("cache len %d", c.Len())
	}
	if c.Bytes() != 2*4*3*4 {
		t.Errorf("cache bytes %d", c.Bytes())
	}
	if c.K.F32()[6] != 1 {
		t.Error("appended rows wrong")
	}
}

// TestNodeArityAndAttrErrorsTableDriven sweeps every op's failure arms:
// wrong arity, missing attributes, malformed attributes.
func TestNodeArityAndAttrErrorsTableDriven(t *testing.T) {
	t1 := tensor.New(tensor.F32, 2, 2)
	i64 := tensor.FromI64(tensor.Shape{1}, []int64{0})
	img := tensor.New(tensor.F32, 1, 4, 4)
	kern := tensor.New(tensor.F32, 1, 1, 2, 2)

	cases := []struct {
		name  string
		node  *srg.Node
		in    []*tensor.Tensor
		works bool
	}{
		{"matmul_t wrong arity", &srg.Node{Op: "matmul_t"}, []*tensor.Tensor{t1}, false},
		{"add wrong arity", &srg.Node{Op: "add"}, []*tensor.Tensor{t1}, false},
		{"sub wrong arity", &srg.Node{Op: "sub"}, []*tensor.Tensor{t1}, false},
		{"mul wrong arity", &srg.Node{Op: "mul"}, []*tensor.Tensor{t1}, false},
		{"scale bad attr", &srg.Node{Op: "scale", Attrs: map[string]string{"s": "x"}}, []*tensor.Tensor{t1}, false},
		{"scale ok", &srg.Node{Op: "scale", Attrs: map[string]string{"s": "2"}}, []*tensor.Tensor{t1}, true},
		{"causal_mask missing attr", &srg.Node{Op: "causal_mask"}, []*tensor.Tensor{t1}, false},
		{"causal_mask ok", &srg.Node{Op: "causal_mask", Attrs: map[string]string{"offset": "0"}}, []*tensor.Tensor{t1}, true},
		{"softmax wrong arity", &srg.Node{Op: "softmax"}, nil, false},
		{"gelu wrong arity", &srg.Node{Op: "gelu"}, nil, false},
		{"relu wrong arity", &srg.Node{Op: "relu"}, nil, false},
		{"layernorm missing eps", &srg.Node{Op: "layernorm"}, []*tensor.Tensor{t1, t1, t1}, false},
		{"embedding wrong arity", &srg.Node{Op: "embedding"}, []*tensor.Tensor{t1}, false},
		{"embedding_bag missing offsets", &srg.Node{Op: "embedding_bag"}, []*tensor.Tensor{t1, i64}, false},
		{"embedding_bag non-i64 ids", &srg.Node{Op: "embedding_bag",
			Attrs: map[string]string{"offsets": "0"}}, []*tensor.Tensor{t1, t1}, false},
		{"embedding_bag ok", &srg.Node{Op: "embedding_bag",
			Attrs: map[string]string{"offsets": "0"}}, []*tensor.Tensor{t1, i64}, true},
		{"concat no inputs", &srg.Node{Op: "concat", Attrs: map[string]string{"dim": "0"}}, nil, false},
		{"concat bad dim attr", &srg.Node{Op: "concat", Attrs: map[string]string{"dim": "z"}}, []*tensor.Tensor{t1}, false},
		{"slice missing attrs", &srg.Node{Op: "slice_rows"}, []*tensor.Tensor{t1}, false},
		{"slice missing end", &srg.Node{Op: "slice_rows", Attrs: map[string]string{"start": "0"}}, []*tensor.Tensor{t1}, false},
		{"slice ok", &srg.Node{Op: "slice_rows",
			Attrs: map[string]string{"start": "0", "end": "1"}}, []*tensor.Tensor{t1}, true},
		{"transpose wrong arity", &srg.Node{Op: "transpose2d"}, nil, false},
		{"reshape missing attr", &srg.Node{Op: "reshape"}, []*tensor.Tensor{t1}, false},
		{"reshape ok", &srg.Node{Op: "reshape", Attrs: map[string]string{"shape": "4"}}, []*tensor.Tensor{t1}, true},
		{"argmax wrong arity", &srg.Node{Op: "argmax_last"}, nil, false},
		{"conv2d missing stride", &srg.Node{Op: "conv2d", Attrs: map[string]string{"pad": "0"}},
			[]*tensor.Tensor{img, kern}, false},
		{"conv2d missing pad", &srg.Node{Op: "conv2d", Attrs: map[string]string{"stride": "1"}},
			[]*tensor.Tensor{img, kern}, false},
		{"conv2d ok", &srg.Node{Op: "conv2d",
			Attrs: map[string]string{"stride": "1", "pad": "0"}}, []*tensor.Tensor{img, kern}, true},
		{"maxpool missing k", &srg.Node{Op: "maxpool2d"}, []*tensor.Tensor{img}, false},
		{"maxpool ok", &srg.Node{Op: "maxpool2d", Attrs: map[string]string{"k": "2"}}, []*tensor.Tensor{img}, true},
		{"meanpool wrong arity", &srg.Node{Op: "meanpool"}, nil, false},
		{"meanpool ok", &srg.Node{Op: "meanpool"}, []*tensor.Tensor{img}, true},
		{"sum ok", &srg.Node{Op: "sum"}, []*tensor.Tensor{t1}, true},
		{"rope missing attrs", &srg.Node{Op: "rope"}, []*tensor.Tensor{t1}, false},
		{"rope missing base", &srg.Node{Op: "rope", Attrs: map[string]string{"start": "0"}}, []*tensor.Tensor{t1}, false},
		{"rope ok", &srg.Node{Op: "rope",
			Attrs: map[string]string{"start": "0", "base": "10000"}}, []*tensor.Tensor{t1}, true},
		{"fused missing stages", &srg.Node{Op: "fused"}, []*tensor.Tensor{t1}, false},
		{"fused unknown stage", &srg.Node{Op: "fused",
			Attrs: map[string]string{"stages": "explode"}}, []*tensor.Tensor{t1}, false},
		{"fused bad scale arg", &srg.Node{Op: "fused",
			Attrs: map[string]string{"stages": "scale:x"}}, []*tensor.Tensor{t1}, false},
		{"fused bad mask arg", &srg.Node{Op: "fused",
			Attrs: map[string]string{"stages": "causal_mask:x"}}, []*tensor.Tensor{t1}, false},
		{"fused ok", &srg.Node{Op: "fused",
			Attrs: map[string]string{"stages": "scale:2|relu|causal_mask:0|softmax"}}, []*tensor.Tensor{t1}, true},
	}
	for _, tc := range cases {
		_, err := Node(tc.node, tc.in)
		if tc.works && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.works && err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

func TestFusedMatchesUnfusedChain(t *testing.T) {
	x := tensor.FromF32(tensor.Shape{1, 4}, []float32{-2, -0.5, 0.5, 3})
	fused, err := Node(&srg.Node{Op: "fused",
		Attrs: map[string]string{"stages": "scale:2|gelu|relu"}},
		[]*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	step1 := ops.Scale(x, 2)
	step2 := ops.GELU(step1)
	want := ops.ReLU(step2)
	if !tensor.AllClose(fused, want, 1e-6, 1e-6) {
		t.Errorf("fused %v != chain %v", fused.F32(), want.F32())
	}
}
