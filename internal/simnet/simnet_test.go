package simnet

import (
	"testing"
	"time"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(3*time.Second, func() { got = append(got, 3) })
	s.Schedule(1*time.Second, func() { got = append(got, 1) })
	s.Schedule(2*time.Second, func() { got = append(got, 2) })
	end := s.Run()
	if end != 3*time.Second {
		t.Errorf("final time %v", end)
	}
	for i, v := range []int{1, 2, 3} {
		if got[i] != v {
			t.Fatalf("order %v", got)
		}
	}
}

func TestSameTimeEventsFIFO(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("fifo violated: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	var fired time.Duration
	s.Schedule(time.Second, func() {
		s.Schedule(2*time.Second, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 3*time.Second {
		t.Errorf("nested event at %v", fired)
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(-time.Second, func() { ran = true })
	if s.Run() != 0 || !ran {
		t.Error("negative delay should fire at t=0")
	}
}

func TestResourceSerializes(t *testing.T) {
	r := NewResource("gpu")
	s1, e1 := r.ReserveAt(0, time.Second)
	if s1 != 0 || e1 != time.Second {
		t.Errorf("first reservation [%v,%v)", s1, e1)
	}
	// Overlapping request queues behind the first.
	s2, e2 := r.ReserveAt(500*time.Millisecond, time.Second)
	if s2 != time.Second || e2 != 2*time.Second {
		t.Errorf("second reservation [%v,%v)", s2, e2)
	}
	// A later request after idle starts immediately.
	s3, _ := r.ReserveAt(5*time.Second, time.Second)
	if s3 != 5*time.Second {
		t.Errorf("third reservation at %v", s3)
	}
	if r.Busy() != 3*time.Second {
		t.Errorf("busy %v", r.Busy())
	}
	if r.FreeAt() != 6*time.Second {
		t.Errorf("free at %v", r.FreeAt())
	}
	r.Reset()
	if r.Busy() != 0 || r.FreeAt() != 0 {
		t.Error("reset failed")
	}
}

// TestPipelineOverlapOnResources demonstrates the throughput win the
// scheduler's CNN pipelining targets: two stages on two devices overlap
// across a stream, so N requests take ~N×stage instead of N×2×stage.
func TestPipelineOverlapOnResources(t *testing.T) {
	const n = 10
	stage := 100 * time.Millisecond

	// Sequential: both stages on one device.
	single := NewResource("gpu0")
	var at time.Duration
	for i := 0; i < n; i++ {
		_, end := single.ReserveAt(at, 2*stage)
		at = end
	}
	sequential := at

	// Pipelined: stage 1 on gpu0, stage 2 on gpu1.
	g0, g1 := NewResource("gpu0"), NewResource("gpu1")
	var done time.Duration
	for i := 0; i < n; i++ {
		_, e1 := g0.ReserveAt(0, stage)
		_, e2 := g1.ReserveAt(e1, stage)
		done = e2
	}
	if done >= sequential {
		t.Errorf("pipelined %v should beat sequential %v", done, sequential)
	}
	// Steady-state bound: ~ (n+1) × stage.
	if done > time.Duration(n+2)*stage {
		t.Errorf("pipelined %v worse than steady-state bound", done)
	}
}
