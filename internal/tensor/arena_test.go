package tensor

import "testing"

func TestScratchAllocatesZeroed(t *testing.T) {
	a := NewScratch(F32, 4, 8)
	for i, v := range a.F32() {
		if v != 0 {
			t.Fatalf("fresh scratch[%d] = %v, want 0", i, v)
		}
	}
	if a.Pinned() {
		t.Fatal("scratch tensors must not claim pinned (network) memory")
	}
}

// TestScratchBuffersComeBackZeroed is the dirty-recycle regression
// test: a released buffer full of garbage must never leak stale values
// into the next tensor carved from it — accumulate kernels (matmul2d's
// `out += a*b`) would silently fold them into results.
func TestScratchBuffersComeBackZeroed(t *testing.T) {
	// Drain cross-test pool state for this size class, then dirty one
	// buffer and recycle it until we observe reuse.
	for i := 0; i < 64; i++ {
		a := NewScratch(F32, 16, 16)
		for j := range a.F32() {
			a.F32()[j] = 1e30
		}
		a.Release()
		b := NewScratch(F32, 10, 7) // same class, different shape
		for j, v := range b.F32() {
			if v != 0 {
				t.Fatalf("iteration %d: recycled scratch[%d] = %v, want 0", i, j, v)
			}
		}
		b.Release()
	}
}

func TestScratchReleaseMakesTensorUnusable(t *testing.T) {
	a := NewScratch(F32, 8)
	a.Release()
	if a.Bytes() != nil {
		t.Fatal("released scratch tensor still exposes its buffer")
	}
	a.Release() // second release must be a no-op, not a double-put
}

func TestScratchDifferentShapesShareClasses(t *testing.T) {
	a := NewScratch(F32, 100) // 400 B -> 1 KiB class
	buf := &a.Bytes()[0]
	a.Release()
	b := NewScratch(F32, 5, 50) // 1000 B -> same class
	defer b.Release()
	if &b.Bytes()[0] != buf {
		t.Skip("pool did not hand the buffer back (valid under GC pressure)")
	}
	if b.NumBytes() != 1000 {
		t.Fatalf("reused tensor is %d bytes, want 1000", b.NumBytes())
	}
}

func TestScratchOversizeFallsBackToHeap(t *testing.T) {
	// Just over the largest class: must still work, just unpooled.
	n := (1 << scratchMaxBits) / 4 // f32 elements exactly at the top class
	a := NewScratch(F32, n+1)
	if a.NumElements() != n+1 {
		t.Fatalf("oversize scratch has %d elements", a.NumElements())
	}
	a.Release() // no-op for unpooled
	if a.Bytes() == nil {
		t.Fatal("Release on unpooled scratch must not drop the buffer")
	}
}

func TestScratchAllDTypes(t *testing.T) {
	for _, dt := range []DType{F32, F16, I64, I32, U8} {
		a := NewScratch(dt, 3, 5)
		if a.DType() != dt || a.NumElements() != 15 {
			t.Fatalf("scratch %s: got %s with %d elements", dt, a.DType(), a.NumElements())
		}
		for i := 0; i < 15; i++ {
			if a.At(i) != 0 {
				t.Fatalf("scratch %s element %d = %v", dt, i, a.At(i))
			}
		}
		a.Release()
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		bytes, class int
	}{
		{1, 0}, {1024, 0}, {1025, 1}, {2048, 1},
		{1 << scratchMaxBits, scratchMaxBits - scratchMinBits},
		{1<<scratchMaxBits + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.bytes); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.bytes, got, c.class)
		}
	}
}
