package obs

import (
	"sync"
	"time"

	"genie/internal/metrics"
)

// Window is a bounded sliding reservoir of durations with exact
// percentiles over the retained samples — the registry-side home for
// what serve's private collector used to do with raw slices and
// metrics.Percentile. Histograms answer Prometheus scrapes cheaply;
// the window answers /stats with the exact quantiles tests pin.
type Window struct {
	mu   sync.Mutex
	cap  int
	buf  []time.Duration
	next int
}

// NewWindow builds a reservoir retaining the most recent capacity
// samples (oldest overwritten first).
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = 8192
	}
	return &Window{cap: capacity}
}

// Observe records one duration.
func (w *Window) Observe(d time.Duration) {
	w.mu.Lock()
	if len(w.buf) < w.cap {
		w.buf = append(w.buf, d)
	} else {
		w.buf[w.next] = d
		w.next = (w.next + 1) % w.cap
	}
	w.mu.Unlock()
}

// Len reports retained samples.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.buf)
}

// Quantiles returns the requested quantiles plus the max over the
// retained samples, sorting one copy once.
func (w *Window) Quantiles(qs ...float64) (out []time.Duration, max time.Duration) {
	w.mu.Lock()
	s := append([]time.Duration(nil), w.buf...)
	w.mu.Unlock()
	out = make([]time.Duration, len(qs))
	if len(s) == 0 {
		return out, 0
	}
	sortDurations(s)
	for i, q := range qs {
		out[i] = metrics.Percentile(s, q)
	}
	return out, s[len(s)-1]
}

// sortDurations is an insertion-free pdq via sort.Slice without pulling
// sort into every caller.
func sortDurations(s []time.Duration) {
	// Small fixed shell sort: windows are ≤8192 entries and snapshot
	// paths are cold; avoids an interface-based sort.Slice allocation.
	gaps := []int{701, 301, 132, 57, 23, 10, 4, 1}
	for _, gap := range gaps {
		for i := gap; i < len(s); i++ {
			v := s[i]
			j := i
			for ; j >= gap && s[j-gap] > v; j -= gap {
				s[j] = s[j-gap]
			}
			s[j] = v
		}
	}
}
