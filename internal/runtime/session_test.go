package runtime

import (
	"strings"
	"testing"
)

// TestSessionMatchesGenerate: driving a Session step by step yields
// exactly Generate's tokens in every mode — the property the serving
// engine's continuous batching rests on.
func TestSessionMatchesGenerate(t *testing.T) {
	const steps = 5
	for _, mode := range []Mode{ModeLocal, ModeNaive, ModeDeltaKV, ModeSemAware} {
		t.Run(mode.String(), func(t *testing.T) {
			ref, _ := newRunner(t, 21)
			want, err := ref.Generate(mode, testPrompt, steps)
			if err != nil {
				t.Fatal(err)
			}

			r, _ := newRunner(t, 21)
			s, err := r.NewSession(mode)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			var got []int64
			tok, err := s.Prefill(testPrompt)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, tok)
			for len(got) < steps {
				tok, err = s.Step()
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, tok)
			}
			for i := range want.Tokens {
				if got[i] != want.Tokens[i] {
					t.Fatalf("%s session diverges at %d: %v vs %v",
						mode, i, got, want.Tokens)
				}
			}
		})
	}
}

// TestInterleavedScopedSessions: multiple sessions with distinct scopes
// share one backend, their decode steps interleaved at arbitrary
// boundaries, without corrupting each other's KV-cache state — the
// isolation continuous batching requires.
func TestInterleavedScopedSessions(t *testing.T) {
	const steps = 6
	for _, mode := range []Mode{ModeDeltaKV, ModeSemAware} {
		t.Run(mode.String(), func(t *testing.T) {
			ref, _ := newRunner(t, 33)
			want, err := ref.Generate(mode, testPrompt, steps)
			if err != nil {
				t.Fatal(err)
			}
			prompt2 := []int64{8, 1, 44, 2}
			ref2, _ := newRunner(t, 33)
			want2, err := ref2.Generate(mode, prompt2, steps)
			if err != nil {
				t.Fatal(err)
			}

			// One backend, one runner, two live sessions.
			r, _ := newRunner(t, 33)
			sessA, err := r.NewScopedSession(mode, "reqA/")
			if err != nil {
				t.Fatal(err)
			}
			sessB, err := r.NewScopedSession(mode, "reqB/")
			if err != nil {
				t.Fatal(err)
			}
			gotA := []int64{}
			gotB := []int64{}
			step := func(s *Session, got *[]int64) {
				t.Helper()
				var tok int64
				var err error
				if len(*got) == 0 {
					if s == sessA {
						tok, err = s.Prefill(testPrompt)
					} else {
						tok, err = s.Prefill(prompt2)
					}
				} else {
					tok, err = s.Step()
				}
				if err != nil {
					t.Fatal(err)
				}
				*got = append(*got, tok)
			}
			// Interleave: A, B, B, A, A, B, A, B, ...
			step(sessA, &gotA)
			step(sessB, &gotB)
			step(sessB, &gotB)
			step(sessA, &gotA)
			for len(gotA) < steps || len(gotB) < steps {
				if len(gotA) < steps {
					step(sessA, &gotA)
				}
				if len(gotB) < steps {
					step(sessB, &gotB)
				}
			}
			for i := 0; i < steps; i++ {
				if gotA[i] != want.Tokens[i] {
					t.Fatalf("%s session A diverges at %d: %v vs %v", mode, i, gotA, want.Tokens)
				}
				if gotB[i] != want2.Tokens[i] {
					t.Fatalf("%s session B diverges at %d: %v vs %v", mode, i, gotB, want2.Tokens)
				}
			}
			if err := sessA.Close(); err != nil {
				t.Fatal(err)
			}
			if err := sessB.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScopedSessionCloseFreesKV: closing a scoped session releases its
// per-request KV-cache residents so a long-lived backend doesn't leak
// memory across requests.
func TestScopedSessionCloseFreesKV(t *testing.T) {
	r, srv := newRunner(t, 44)
	s, err := r.NewScopedSession(ModeSemAware, "reqX/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Prefill(testPrompt); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	kvBefore := countScoped(srv, "reqX/")
	if kvBefore == 0 {
		t.Fatal("expected scoped KV residents after decode")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := countScoped(srv, "reqX/"); n != 0 {
		t.Fatalf("%d scoped residents leaked after Close", n)
	}
}

func countScoped(srv interface{ ResidentKeys() []string }, scope string) int {
	n := 0
	for _, k := range srv.ResidentKeys() {
		if strings.HasPrefix(k, scope) {
			n++
		}
	}
	return n
}
