// Command visionpipeline demonstrates §3.3's "Pipelined CNN inference":
// the frontend recognizes consecutive convolutional stages in a captured
// CNN, and the semantics-aware scheduler spreads them across two
// accelerators so a stream of images overlaps communication and
// computation. The example compares simulated stream completion time for
// single-device vs pipelined plans, then runs one image for real over
// two in-process backends to show the plan executes correctly.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"genie"
	"genie/internal/simnet"
	"genie/internal/srg"
	"genie/internal/transport"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	model := genie.NewCNNModel(rng, genie.TinyCNN)
	img := genie.NewTensor(genie.F32, 3, 32, 32)
	img.RandN(rng, 1)

	b, out := model.BuildForward(img)
	rep := genie.Annotate(b.Graph())
	fmt.Printf("frontend tagged %d conv-pipeline nodes\n", rep.Tagged["conv_pipeline"])

	pool := genie.NewCluster()
	for _, id := range []genie.AcceleratorID{"gpu0", "gpu1"} {
		if err := pool.AddAccelerator(&genie.Accelerator{
			ID: id, Spec: genie.A100,
			Link: genie.Link{Bandwidth: 25e9 / 8, RTT: 100 * time.Microsecond},
		}); err != nil {
			log.Fatal(err)
		}
	}

	model2 := genie.NewCostModel(genie.RDMAProfile)
	pipelined, err := genie.Schedule(b.Graph(), pool, genie.SemanticsAware{}, model2)
	if err != nil {
		log.Fatal(err)
	}
	sequential, err := genie.Schedule(b.Graph(), pool,
		genie.SemanticsAware{DisablePipeline: true}, model2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline stages: %d across 2 devices\n", len(pipelined.PipelineStages))

	// Stream throughput on the simulator: per-request stage times come
	// from the cost model; the pipeline overlaps stages across devices.
	const stream = 64
	seqDone := simulateStream(sequential, model2, pool, stream, false)
	pipeDone := simulateStream(pipelined, model2, pool, stream, true)
	fmt.Printf("simulated %d-image stream: sequential %v, pipelined %v (%.2fx)\n",
		stream, seqDone, pipeDone, float64(seqDone)/float64(pipeDone))

	// Execute the plan for real: every node on its assigned in-process
	// backend, activations crossing between them.
	logits := executePlanAcrossBackends(b, pipelined, out.Logits)
	fmt.Printf("real 2-backend execution: logits %v, argmax class %d\n",
		logits.Shape(), argmax(logits.F32()))
}

func simulateStream(plan *genie.Plan, model *genie.CostModel, pool *genie.Cluster, n int, pipelined bool) time.Duration {
	// Stage service times per device.
	if !pipelined || len(plan.PipelineStages) < 2 {
		var per time.Duration
		for _, node := range plan.Graph.Nodes() {
			per += model.NodeCompute(plan, pool, node.ID)
		}
		r := simnet.NewResource("gpu0")
		var end time.Duration
		for i := 0; i < n; i++ {
			_, end = r.ReserveAt(0, per)
		}
		return end
	}
	stageTime := make([]time.Duration, len(plan.PipelineStages))
	for si, stage := range plan.PipelineStages {
		for _, id := range stage {
			stageTime[si] += model.NodeCompute(plan, pool, id)
		}
	}
	res := make([]*simnet.Resource, len(plan.PipelineStages))
	for i := range res {
		res[i] = simnet.NewResource(fmt.Sprint("gpu", i%2))
	}
	var end time.Duration
	for i := 0; i < n; i++ {
		at := time.Duration(0)
		for si := range plan.PipelineStages {
			_, e := res[si].ReserveAt(at, stageTime[si])
			at = e
		}
		end = at
	}
	return end
}

// executePlanAcrossBackends walks the plan topologically, running each
// node on its assigned backend server and carrying cross-device values
// through the client.
func executePlanAcrossBackends(b *genie.Builder, plan *genie.Plan, want srg.NodeID) *genie.Tensor {
	servers := map[genie.AcceleratorID]*genie.Server{
		"gpu0": genie.NewServer(genie.A100),
		"gpu1": genie.NewServer(genie.A100),
	}
	g := b.Graph()
	vals := map[srg.NodeID]*genie.Tensor{}
	// Bind leaves locally, execute compute nodes via per-node exec on
	// the owning server (single-node subgraphs keep the example small).
	for _, n := range g.Nodes() {
		switch n.Op {
		case "param":
			t, _ := b.ParamData(n.Ref)
			vals[n.ID] = t
		case "input":
			t, _ := b.InputData(n.Ref)
			vals[n.ID] = t
		default:
			srv := servers[plan.DeviceOf(n.ID)]
			out, err := execSingle(srv, g, n, vals)
			if err != nil {
				log.Fatal(err)
			}
			vals[n.ID] = out
		}
	}
	return vals[want]
}

func execSingle(srv *genie.Server, g *genie.Graph, n *genie.Node, vals map[srg.NodeID]*genie.Tensor) (*genie.Tensor, error) {
	// Build a one-op subgraph with leaf inputs bound inline.
	sub := srg.New("node")
	var leafIDs []srg.NodeID
	for i, in := range n.Inputs {
		leaf := &srg.Node{Op: "input", Ref: fmt.Sprint("in", i), Output: g.Node(in).Output}
		id, err := sub.Add(leaf)
		if err != nil {
			return nil, err
		}
		leafIDs = append(leafIDs, id)
	}
	node := &srg.Node{Op: n.Op, Attrs: n.Attrs, Inputs: leafIDs, Output: n.Output, Cost: n.Cost}
	outID, err := sub.Add(node)
	if err != nil {
		return nil, err
	}
	ex := &transport.Exec{Graph: sub, Want: []srg.NodeID{outID}}
	for i, in := range n.Inputs {
		ex.Binds = append(ex.Binds, transport.Binding{Ref: fmt.Sprint("in", i), Inline: vals[in]})
	}
	ok, err := srv.Exec(ex)
	if err != nil {
		return nil, err
	}
	return ok.Results[outID], nil
}

func argmax(v []float32) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
