package genie

import (
	"math/rand"
	"net"
	"testing"
	"time"

	"genie/internal/cluster"
	"genie/internal/runtime"
	"genie/internal/scheduler"
	"genie/internal/srg"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// startPool brings up n live TCP backends and registers them as a
// heterogeneous cluster.
func startPool(t *testing.T, specs []DeviceSpec) (*Cluster, map[AcceleratorID]runtime.Endpoint) {
	t.Helper()
	cs := NewCluster()
	eps := map[AcceleratorID]runtime.Endpoint{}
	for i, spec := range specs {
		srv := NewServer(spec)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go func() { _ = Serve(srv, l) }()
		client, err := Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { client.Close() })
		id := AcceleratorID(spec.Name + "-" + string(rune('0'+i)))
		if err := cs.AddAccelerator(&Accelerator{
			ID: id, Spec: spec,
			Link: Link{Bandwidth: 25e9 / 8, RTT: 200 * time.Microsecond},
		}); err != nil {
			t.Fatal(err)
		}
		eps[id] = client
	}
	return cs, eps
}

// TestGlobalPlacementExecutesOnLiveBackends is the full §3.6 → §3.4 path:
// the coordinator classifies two tenants' SRGs, places them on different
// device classes, and the plan executor runs each plan against its live
// backend — with results matching local execution.
func TestGlobalPlacementExecutesOnLiveBackends(t *testing.T) {
	cs, eps := startPool(t, []DeviceSpec{H100, A10G})
	coord := NewCoordinator(cs, NewCostModel(RDMAProfile))

	// Tenant 1: an LLM prefill. Tenant 2: a recommendation query.
	rng := rand.New(rand.NewSource(31))
	gpt := NewGPTModel(rng, TinyGPT)
	gb, gout := gpt.BuildPrefill([]int64{2, 7, 1, 8})
	Annotate(gb.Graph())

	dlrm := NewDLRMModel(rng, TinyDLRM)
	db, dout := dlrm.BuildForward(DLRMRequest{
		Dense:     NewTensor(F32, 1, TinyDLRM.DenseFeatures),
		SparseIDs: [][]int64{{1, 2}, {3}, {4, 5}},
	})
	Annotate(db.Graph())

	subs := []Submission{
		{Tenant: "llm", Graph: gb.Graph(), SLO: SLOInteractive},
		{Tenant: "rec", Graph: db.Graph(), SLO: SLOBatch},
	}
	devices := map[string]AcceleratorID{}
	plans := map[string]*Plan{}
	for _, sub := range subs {
		plan, dev, err := coord.PlaceTenant(sub)
		if err != nil {
			t.Fatal(err)
		}
		devices[sub.Tenant] = dev
		plans[sub.Tenant] = plan
	}
	if devices["llm"] == devices["rec"] {
		t.Errorf("heterogeneous placement put both tenants on %q", devices["llm"])
	}

	// Execute each plan against its placed backend.
	runPlan := func(plan *Plan, b *Builder, want NodeID) *Tensor {
		t.Helper()
		pe := &runtime.PlanExecutor{EPs: eps}
		got, err := pe.Execute(plan, b, []srg.NodeID{want})
		if err != nil {
			t.Fatal(err)
		}
		return got[want]
	}
	gotNext := runPlan(plans["llm"], gb, gout.NextToken)
	gotScore := runPlan(plans["rec"], db, dout.Score)

	// Compare against local execution.
	wantVals, err := ExecuteLocal(gb)
	if err != nil {
		t.Fatal(err)
	}
	if gotNext.I64()[0] != wantVals[gout.NextToken].I64()[0] {
		t.Error("LLM tenant result diverges from local")
	}
	wantVals, err = ExecuteLocal(db)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(gotScore, wantVals[dout.Score], 1e-5, 1e-5) {
		t.Error("rec tenant result diverges from local")
	}
}

// TestShapedLoopbackMatchesPaperLinkRegime drives the real transport
// through a 25 Gbps shaper and checks a bulk upload is bandwidth-bound as
// the paper's testbed would be.
func TestShapedLoopbackMatchesPaperLinkRegime(t *testing.T) {
	srv := NewServer(A100)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() { _ = Serve(srv, l) }()

	var ctr Counters
	client, err := DialShaped(l.Addr().String(), &ctr, &Shaper{
		Bandwidth: 25e9 / 8, // 25 Gbps
		RTT:       time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// 16 MB at 3.125 GB/s ≈ 5.1 ms + RTT. Allow generous headroom but
	// require ≥ the theoretical floor.
	payload := NewTensor(U8, 16<<20)
	start := time.Now()
	if _, err := client.Upload("bulk", payload); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if floor := 5 * time.Millisecond; elapsed < floor {
		t.Errorf("shaped upload took %v, below the 25 Gbps floor %v", elapsed, floor)
	}
	if sent, _, _ := ctr.Snapshot(); sent < 16<<20 {
		t.Errorf("counter saw %d bytes", sent)
	}
}

// TestRuntimeHintsAdaptFromLiveTransport closes the measurement loop over
// a real socket: AdaptHints probes the live connection and the cluster's
// RTT estimate lands in a plausible loopback range.
func TestRuntimeHintsAdaptFromLiveTransport(t *testing.T) {
	cs, eps := startPool(t, []DeviceSpec{A100})
	var id AcceleratorID
	var ep runtime.Endpoint
	for k, v := range eps {
		id, ep = k, v
	}
	prober, ok := ep.(interface {
		Ping() (time.Duration, error)
	})
	if !ok {
		t.Fatal("endpoint is not probeable")
	}
	if err := adaptHints(cs, id, prober); err != nil {
		t.Fatal(err)
	}
	rtt := cs.Accelerator(id).Link.RTT
	if rtt <= 0 || rtt > 100*time.Millisecond {
		t.Errorf("adapted loopback RTT %v implausible", rtt)
	}
}

// adaptHints bridges the facade types to the scheduler helper.
func adaptHints(cs *cluster.State, id cluster.AcceleratorID, p scheduler.Prober) error {
	return scheduler.AdaptHints(cs, id, p, 3)
}

// TestPlanExecutorAttestedSegments runs a plan through verified
// execution: every segment's attestation must match.
func TestPlanExecutorAttestedSegments(t *testing.T) {
	cs, eps := startPool(t, []DeviceSpec{A100, A100})
	// Wrap endpoints to verify attestation on every exec.
	verified := map[AcceleratorID]runtime.Endpoint{}
	for id, ep := range eps {
		verified[id] = attestingEndpoint{ep.(*Client)}
	}
	rng := rand.New(rand.NewSource(41))
	cnn := NewCNNModel(rng, TinyCNN)
	img := NewTensor(F32, 3, 32, 32)
	img.RandN(rng, 1)
	b, out := cnn.BuildForward(img)
	Annotate(b.Graph())
	plan, err := Schedule(b.Graph(), cs, SemanticsAware{}, NewCostModel(RDMAProfile))
	if err != nil {
		t.Fatal(err)
	}
	pe := &runtime.PlanExecutor{EPs: verified}
	if _, err := pe.Execute(plan, b, []srg.NodeID{out.Logits}); err != nil {
		t.Fatalf("attested plan execution failed: %v", err)
	}
}

type attestingEndpoint struct{ c *Client }

func (a attestingEndpoint) Upload(key string, data *tensor.Tensor) (*transport.UploadOK, error) {
	return a.c.Upload(key, data)
}
func (a attestingEndpoint) Exec(x *transport.Exec) (*transport.ExecOK, error) {
	return a.c.ExecVerified(x)
}
func (a attestingEndpoint) Fetch(key string, epoch uint32) (*tensor.Tensor, error) {
	return a.c.Fetch(key, epoch)
}
func (a attestingEndpoint) Free(key string) error            { return a.c.Free(key) }
func (a attestingEndpoint) Stats() (*transport.Stats, error) { return a.c.Stats() }
