package serve

import (
	"context"
	"encoding/json"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"genie/internal/backend"
	"genie/internal/chaos"
	"genie/internal/device"
	"genie/internal/metrics"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/transport"
)

// servedBackend is one in-process backend whose client conn can be
// routed through a chaos plan, with explicit teardown for leak checks.
type servedBackend struct {
	srv          *backend.Server
	runner       *runtime.LLMRunner
	cconn, sconn *transport.Conn
}

func newServedBackend(gpt *models.GPT, plan *chaos.Plan) *servedBackend {
	rawC, rawS := net.Pipe()
	var clientSide net.Conn = rawC
	if plan != nil {
		clientSide = plan.WrapConn(rawC)
	}
	cconn := transport.NewConn(clientSide, nil, nil)
	sconn := transport.NewConn(rawS, nil, nil)
	srv := backend.NewServer(device.A100)
	go func() { _ = srv.Serve(sconn) }()
	return &servedBackend{
		srv:    srv,
		runner: &runtime.LLMRunner{Model: gpt, EP: transport.NewClient(cconn)},
		cconn:  cconn,
		sconn:  sconn,
	}
}

func (sb *servedBackend) stop() {
	_ = sb.cconn.Close()
	_ = sb.sconn.Close()
}

// TestBackendCrashRequeuesToHealthyLane: a chaos plan crashes backend
// b0 mid-decode; the in-flight request re-queues (not a 500), completes
// on b1, and the token stream the client observes is bit-identical to a
// fault-free run with no index delivered twice.
func TestBackendCrashRequeuesToHealthyLane(t *testing.T) {
	snap := metrics.SnapGoroutines()
	rng := rand.New(rand.NewSource(5))
	gpt := models.NewGPT(rng, models.TinyGPT)
	want := refTokens(t, unitPrompt, 5)

	// b0 crashes on its 3rd exec: prefill, one decode step, then loss
	// mid-decode with two tokens already delivered.
	plan := chaos.NewPlan(7, chaos.Config{CrashExecAt: 3})
	b0 := newServedBackend(gpt, nil)
	b0.srv.SetExecHook(plan.ExecHook(b0.srv.Crash))
	b1 := newServedBackend(gpt, nil)

	e, err := NewEngine(Config{
		Mode:             runtime.ModeSemAware,
		RetryBudget:      1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
	}, []Backend{
		{Name: "b0", Runner: b0.runner},
		{Name: "b1", Runner: b1.runner},
	})
	if err != nil {
		t.Fatal(err)
	}

	var emitted []int
	ar, err := e.enqueue(context.Background(), Request{
		Tenant: "alice", Prompt: unitPrompt, MaxTokens: 5,
		OnToken: func(tok Token) { emitted = append(emitted, tok.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drive the doomed lane until the crash re-queues the request.
	for i := 0; i < 10 && e.lanes[0].iterate(); i++ {
	}
	if isDone(ar) {
		t.Fatalf("request completed on the crashed lane: err=%v", ar.err)
	}
	if got := plan.Injected()["crash_exec"]; got != 1 {
		t.Fatalf("chaos injected %d crashes, want 1", got)
	}
	if st := e.Stats(); st.Requeued != 1 || st.Queued != 1 {
		t.Fatalf("after crash: requeued=%d queued=%d, want 1/1", st.Requeued, st.Queued)
	}

	// The healthy lane picks it up and finishes it.
	for i := 0; i < 50 && !isDone(ar); i++ {
		e.lanes[1].iterate()
	}
	if !isDone(ar) {
		t.Fatal("request never completed on the healthy lane")
	}
	if ar.err != nil {
		t.Fatalf("recovered request failed: %v", ar.err)
	}
	if ar.res.Backend != "b1" {
		t.Errorf("finished on %q, want b1", ar.res.Backend)
	}
	if len(ar.res.Tokens) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(ar.res.Tokens), len(want))
	}
	for i := range want {
		if ar.res.Tokens[i] != want[i] {
			t.Fatalf("token[%d] = %d after failover, want %d (full: %v vs %v)",
				i, ar.res.Tokens[i], want[i], ar.res.Tokens, want)
		}
	}
	// The stream saw every index exactly once, in order, across the
	// failover — the replayed prefix was suppressed.
	if len(emitted) != 5 {
		t.Fatalf("client observed %d token events, want 5: %v", len(emitted), emitted)
	}
	for i, idx := range emitted {
		if idx != i {
			t.Fatalf("token event order %v, want 0..4 each once", emitted)
		}
	}

	st := e.Stats()
	if st.Completed != 1 || st.Failed != 0 || st.Unavailable != 0 {
		t.Errorf("completed=%d failed=%d unavailable=%d, want 1/0/0",
			st.Completed, st.Failed, st.Unavailable)
	}
	if st.TokensOut != 5 {
		t.Errorf("tokens_out = %d, want 5 (no double-count across replay)", st.TokensOut)
	}
	if bh := st.Backends["b0"]; bh.Healthy || bh.Breaker != "open" || bh.Requeued != 1 {
		t.Errorf("b0 health = %+v, want open breaker with 1 requeue", bh)
	}
	if bh := st.Backends["b1"]; !bh.Healthy || bh.Breaker != "closed" {
		t.Errorf("b1 health = %+v, want closed breaker", bh)
	}

	b0.stop()
	b1.stop()
	snap.Check(t)
}

// TestRetryBudgetExhaustedSheds503: with every backend dead, a request
// burns its re-queue budget and sheds as HTTP 503 with a Retry-After
// hint; /healthz degrades and /stats carries the health transition.
func TestRetryBudgetExhaustedSheds503(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gpt := models.NewGPT(rng, models.TinyGPT)

	// Crash on the very first exec; the crash clears the resident store,
	// so every later attempt fails too (a permanently lost backend).
	plan := chaos.NewPlan(11, chaos.Config{CrashExecAt: 1})
	b0 := newServedBackend(gpt, nil)
	b0.srv.SetExecHook(plan.ExecHook(b0.srv.Crash))

	e, err := NewEngine(Config{
		Mode:             runtime.ModeSemAware,
		RetryBudget:      1,
		RetryAfter:       2 * time.Second,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Nanosecond, // probe immediately
	}, []Backend{{Name: "b0", Runner: b0.runner}})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	defer e.Stop()
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/generate", "application/json",
		strings.NewReader(`{"tenant":"alice","prompt":[3,14,15],"max_tokens":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	var body GenerateResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body.Error, "backend unavailable") {
		t.Errorf("error body %q does not name backend unavailability", body.Error)
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz = %d with no healthy backends, want 503", hz.StatusCode)
	}

	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st Stats
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Unavailable != 1 || st.Requeued != 1 {
		t.Errorf("unavailable=%d requeued=%d, want 1/1", st.Unavailable, st.Requeued)
	}
	if bh := st.Backends["b0"]; bh.Healthy || bh.Failures < 2 {
		t.Errorf("b0 health = %+v, want unhealthy with >=2 failures", bh)
	}
}

// TestHungPeerFailsOverWithinOpTimeout is the wedged-engine regression:
// b0's link silently swallows frames (a hung peer), the per-op timeout
// rescues the lane within its bound, the breaker opens, and the request
// completes on the healthy lane with the exact fault-free tokens.
func TestHungPeerFailsOverWithinOpTimeout(t *testing.T) {
	snap := metrics.SnapGoroutines()
	rng := rand.New(rand.NewSource(5))
	gpt := models.NewGPT(rng, models.TinyGPT)
	want := refTokens(t, unitPrompt, 3)

	plan := chaos.NewPlan(13, chaos.Config{DropWriteProb: 1})
	plan.SetActive(false) // let NewEngine install weights cleanly
	b0 := newServedBackend(gpt, plan)
	b1 := newServedBackend(gpt, nil)

	e, err := NewEngine(Config{
		Mode:             runtime.ModeSemAware,
		OpTimeout:        150 * time.Millisecond,
		RetryBudget:      1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
	}, []Backend{
		{Name: "b0", Runner: b0.runner},
		{Name: "b1", Runner: b1.runner},
	})
	if err != nil {
		t.Fatal(err)
	}
	plan.SetActive(true)

	ar, err := e.enqueue(context.Background(), Request{
		Tenant: "alice", Prompt: unitPrompt, MaxTokens: 3,
	})
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	e.lanes[0].iterate() // prefill hangs on the dropped frame until OpTimeout
	if wedged := time.Since(start); wedged > 2*time.Second {
		t.Fatalf("hung peer wedged the lane for %v", wedged)
	}
	if isDone(ar) {
		t.Fatalf("request retired on the hung lane: err=%v", ar.err)
	}
	if plan.Injected()["drop_write"] == 0 {
		t.Fatal("chaos dropped no writes")
	}

	for i := 0; i < 50 && !isDone(ar); i++ {
		e.lanes[1].iterate()
	}
	if !isDone(ar) || ar.err != nil {
		t.Fatalf("request did not recover on healthy lane: done=%v err=%v", isDone(ar), ar.err)
	}
	for i := range want {
		if ar.res.Tokens[i] != want[i] {
			t.Fatalf("tokens %v after hung-peer failover, want %v", ar.res.Tokens, want)
		}
	}
	st := e.Stats()
	if bh := st.Backends["b0"]; bh.Healthy || bh.Breaker != "open" {
		t.Errorf("b0 health = %+v, want open breaker after hang", bh)
	}

	b0.stop()
	b1.stop()
	snap.Check(t)
}

// TestBreakerProbeRejoinsRepairedBackend: after a failover, repairing
// the backend (reinstalling weights) and letting the cooldown lapse
// lets the half-open probe succeed, closing the breaker and returning
// the lane to service.
func TestBreakerProbeRejoinsRepairedBackend(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gpt := models.NewGPT(rng, models.TinyGPT)
	want := refTokens(t, unitPrompt, 2)

	plan := chaos.NewPlan(17, chaos.Config{CrashExecAt: 1})
	b0 := newServedBackend(gpt, nil)
	b0.srv.SetExecHook(plan.ExecHook(b0.srv.Crash))
	b1 := newServedBackend(gpt, nil)
	defer b0.stop()
	defer b1.stop()

	clk := NewFakeClock()
	e, err := NewEngine(Config{
		Mode:             runtime.ModeSemAware,
		Clock:            clk,
		RetryBudget:      1,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
	}, []Backend{
		{Name: "b0", Runner: b0.runner},
		{Name: "b1", Runner: b1.runner},
	})
	if err != nil {
		t.Fatal(err)
	}

	// First request: b0 crashes at prefill, request recovers on b1.
	ar, err := e.enqueue(context.Background(), Request{Tenant: "a", Prompt: unitPrompt, MaxTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	e.lanes[0].iterate()
	for i := 0; i < 50 && !isDone(ar); i++ {
		e.lanes[1].iterate()
	}
	if !isDone(ar) || ar.err != nil {
		t.Fatalf("first request did not fail over: %v", ar.err)
	}

	// Repair b0 (the crash wiped its weights), let the cooldown lapse,
	// and probe with fresh traffic: the half-open probe must succeed and
	// close the breaker.
	if _, err := b0.runner.InstallModelWeights(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(2 * time.Minute)
	ar2, err := e.enqueue(context.Background(), Request{Tenant: "a", Prompt: unitPrompt, MaxTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && !isDone(ar2); i++ {
		e.lanes[0].iterate()
	}
	if !isDone(ar2) || ar2.err != nil {
		t.Fatalf("probe request did not complete on repaired lane: %v", ar2.err)
	}
	if ar2.res.Backend != "b0" {
		t.Errorf("probe request finished on %q, want repaired b0", ar2.res.Backend)
	}
	for i := range want {
		if ar2.res.Tokens[i] != want[i] {
			t.Fatalf("repaired-lane tokens %v, want %v", ar2.res.Tokens, want)
		}
	}
	if bh := e.Stats().Backends["b0"]; !bh.Healthy || bh.Breaker != "closed" {
		t.Errorf("b0 health = %+v, want closed breaker after successful probe", bh)
	}
}
