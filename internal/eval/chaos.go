package eval

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"genie/internal/backend"
	"genie/internal/chaos"
	"genie/internal/device"
	"genie/internal/models"
	"genie/internal/runtime"
	"genie/internal/serve"
	"genie/internal/transport"
	"genie/internal/workload"
)

// ChaosServingConfig parameterizes the fault-tolerance benchmark: the
// online engine serves an open-loop arrival stream twice — once
// fault-free, once with one backend crashing mid-run — and the two
// runs are compared on goodput and recovery time.
type ChaosServingConfig struct {
	Mode     runtime.Mode
	Backends int
	MaxBatch int
	// Requests and Rate define the open-loop Poisson stream (req/s).
	Requests  int
	Rate      float64
	MaxTokens int
	Seed      int64
	// CrashExecAt crashes backend 0 (epoch bump + store wipe, the
	// server keeps answering) at its Nth exec call of the faulted run.
	CrashExecAt int64
	// RetryBudget bounds re-queues per request after backend loss.
	RetryBudget int
}

// DefaultChaosServingConfig mirrors the A10 online-serving setup with
// one mid-run backend crash. GENIE_CHAOS_SEED overrides the fault
// schedule seed at run time (see chaos.FromEnv).
func DefaultChaosServingConfig() ChaosServingConfig {
	return ChaosServingConfig{
		Mode:        runtime.ModeSemAware,
		Backends:    2,
		MaxBatch:    8,
		Requests:    24,
		Rate:        2000,
		MaxTokens:   6,
		Seed:        7,
		CrashExecAt: 40,
		RetryBudget: 2,
	}
}

// ChaosServingResult compares the faulted run against its fault-free
// baseline on the same arrival schedule.
type ChaosServingResult struct {
	Baseline OnlineServingResult
	Faulted  OnlineServingResult
	// Requeued / Unavailable are the faulted run's failover counters:
	// re-queues after backend loss, and requests shed 503 past budget.
	Requeued    int64
	Unavailable int64
	// ChaosSeed is the fault schedule seed (print it: a failure replays
	// with GENIE_CHAOS_SEED set to this value).
	ChaosSeed int64
	// Injected counts faults by kind as actually delivered.
	Injected map[string]int64
	// CrashAt is when backend 0 died, relative to run start; Recovery
	// is the gap from the crash to the next completed request — the
	// time the engine needed to re-queue, re-admit, and regenerate on a
	// healthy lane.
	CrashAt  time.Duration
	Recovery time.Duration
}

// RunChaosServing measures serving goodput under a mid-run backend
// crash against a fault-free baseline. Both runs replay the same
// Poisson arrivals and prompts; the faulted run arms a deterministic
// chaos plan that kills backend 0 at its CrashExecAt-th exec call.
func RunChaosServing(ctx context.Context, cfg ChaosServingConfig) (ChaosServingResult, error) {
	if cfg.Backends < 2 {
		return ChaosServingResult{}, fmt.Errorf("eval: chaos needs >= 2 backends, got %d", cfg.Backends)
	}
	if cfg.Mode == runtime.ModeLocal {
		return ChaosServingResult{}, fmt.Errorf("eval: chaos needs a remote mode (nothing to crash locally)")
	}
	out := ChaosServingResult{}

	base, _, err := runOnce(ctx, cfg, nil)
	if err != nil {
		return out, fmt.Errorf("eval: baseline run: %w", err)
	}
	out.Baseline = base

	plan := chaos.FromEnv(chaos.Config{CrashExecAt: cfg.CrashExecAt})
	out.ChaosSeed = plan.Seed()
	faulted, probe, err := runOnce(ctx, cfg, plan)
	if err != nil {
		return out, fmt.Errorf("eval: faulted run: %w", err)
	}
	out.Faulted = faulted
	out.Injected = plan.Injected()
	out.Requeued = probe.requeued
	out.Unavailable = probe.unavailable
	out.CrashAt = probe.crashAt
	out.Recovery = probe.recovery
	return out, nil
}

// chaosProbe carries the faulted run's failure-path observations.
type chaosProbe struct {
	requeued    int64
	unavailable int64
	crashAt     time.Duration
	recovery    time.Duration
}

// runOnce drives one engine run over the configured arrival stream.
// With a non-nil plan, backend 0 crashes per the plan's schedule and
// the probe reports when, plus how long the first post-crash completion
// took to land.
func runOnce(ctx context.Context, cfg ChaosServingConfig, plan *chaos.Plan) (OnlineServingResult, chaosProbe, error) {
	var probe chaosProbe
	var pool []serve.Backend
	var mu sync.Mutex
	start := time.Now()
	for i := 0; i < cfg.Backends; i++ {
		r := &runtime.LLMRunner{
			Model: models.NewGPT(rand.New(rand.NewSource(cfg.Seed)), models.TinyGPT),
		}
		cli, srvConn := transport.Pipe(nil, nil)
		bs := backend.NewServer(device.A100)
		if plan != nil && i == 0 {
			crash := func() {
				bs.Crash()
				mu.Lock()
				probe.crashAt = time.Since(start)
				mu.Unlock()
			}
			bs.SetExecHook(plan.ExecHook(crash))
		}
		go func() { _ = bs.Serve(srvConn) }()
		defer cli.Close()
		r.EP = transport.NewClient(cli)
		r.Counters = cli.Counters()
		pool = append(pool, serve.Backend{Name: fmt.Sprintf("b%d", i), Runner: r})
	}
	engine, err := serve.NewEngine(serve.Config{
		Mode:        cfg.Mode,
		MaxQueue:    cfg.Requests,
		MaxBatch:    cfg.MaxBatch,
		RetryBudget: cfg.RetryBudget,
		// Generous guard against a truly hung peer; fault-free ops finish
		// in milliseconds.
		OpTimeout: 2 * time.Second,
	}, pool)
	if err != nil {
		return OnlineServingResult{}, probe, err
	}
	engine.Start()
	defer engine.Stop()

	arrivals := workload.PoissonArrivals(cfg.Seed, cfg.Rate, cfg.Requests)
	prompts := workload.LLMTrace{
		Requests: cfg.Requests, Vocab: int(models.TinyGPT.Vocab),
		PromptMin: 4, PromptMax: 12, DecodeMin: cfg.MaxTokens, DecodeMax: cfg.MaxTokens,
	}.Generate(cfg.Seed)

	// start predates backend setup by microseconds; close enough for the
	// crash/recovery offsets, and it keeps one clock for everything.
	var wg sync.WaitGroup
	var firstAfterCrash time.Duration
	for i := 0; i < cfg.Requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(arrivals[i] - time.Since(start))
			_, err := engine.Submit(ctx, serve.Request{
				Tenant:    fmt.Sprintf("t%d", i%4),
				Prompt:    prompts[i].Prompt,
				MaxTokens: cfg.MaxTokens,
			})
			if err != nil {
				return
			}
			done := time.Since(start)
			mu.Lock()
			if probe.crashAt > 0 && done > probe.crashAt &&
				(firstAfterCrash == 0 || done < firstAfterCrash) {
				firstAfterCrash = done
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	drainCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := engine.Drain(drainCtx); err != nil {
		return OnlineServingResult{}, probe, fmt.Errorf("drain: %w", err)
	}
	makespan := time.Since(start)

	st := engine.Stats()
	probe.requeued = st.Requeued
	probe.unavailable = st.Unavailable
	if firstAfterCrash > 0 {
		probe.recovery = firstAfterCrash - probe.crashAt
	}
	return OnlineServingResult{
		Requests:      cfg.Requests,
		Completed:     st.Completed,
		Shed:          st.Shed,
		MeanOccupancy: st.MeanOccupancy,
		MaxOccupancy:  st.MaxOccupancy,
		P50Lat:        st.Latency.P50,
		P95Lat:        st.Latency.P95,
		P95TTFT:       st.TTFT.P95,
		TokensPerSec:  st.TokensPerSec,
		Makespan:      makespan,
	}, probe, nil
}
