package analysis

import "testing"

// One fixture package per analyzer, positives and negatives pinned by
// `// want` comments.

func TestCtxflowFixture(t *testing.T) {
	runWantTest(t, "ctxflow", fixtureDir("internal", "ctxflow"))
}

func TestLockscopeFixture(t *testing.T) {
	runWantTest(t, "lockscope", fixtureDir("internal", "lockscope"))
}

func TestGoleakFixture(t *testing.T) {
	runWantTest(t, "goleak", fixtureDir("internal", "serve", "goleakdata"))
}

func TestGoleakHedgeFixture(t *testing.T) {
	runWantTest(t, "goleak", fixtureDir("internal", "health", "hedgeleakdata"))
}

func TestErrcheckFixture(t *testing.T) {
	runWantTest(t, "errcheck", fixtureDir("internal", "errcheckdata"))
}

func TestTensormutFixture(t *testing.T) {
	runWantTest(t, "tensormut", fixtureDir("internal", "tmut"))
}

func TestRetrynakedFixture(t *testing.T) {
	runWantTest(t, "retrynaked", fixtureDir("internal", "retrynaked"))
}

func TestKvscopeFixture(t *testing.T) {
	runWantTest(t, "kvscope", fixtureDir("internal", "pool", "kvscopedata"))
}

func TestKvscopeOwnerFixture(t *testing.T) {
	runWantTest(t, "kvscope", fixtureDir("internal", "serve", "kvownerdata"))
}

func TestKvscopePrefixCacheFixture(t *testing.T) {
	runWantTest(t, "kvscope", fixtureDir("internal", "kvcache", "prefixkeydata"))
}

func TestPlanverFixture(t *testing.T) {
	runWantTest(t, "planver", fixtureDir("internal", "pool", "planverdata"))
}

func TestSpanbalanceFixture(t *testing.T) {
	runWantTest(t, "spanbalance", fixtureDir("internal", "serve", "spandata"))
}

func TestAtomicmixFixture(t *testing.T) {
	runWantTest(t, "atomicmix", fixtureDir("internal", "serve", "atomicmixdata"))
}

func TestTimerleakFixture(t *testing.T) {
	runWantTest(t, "timerleak", fixtureDir("internal", "serve", "timerleakdata"))
}

// TestFixtureScopeMapping pins the testdata/src path translation that
// makes fixture packages land inside each analyzer's scope.
func TestFixtureScopeMapping(t *testing.T) {
	pkg, _ := loadFixture(t, fixtureDir("internal", "serve", "goleakdata"))
	assertFixtureScoped(t, pkg, "genie/internal/serve/goleakdata")
}

// TestScopeGates verifies analyzers skip out-of-scope packages: goleak
// covers the goroutine-spawning layers (including simnet and eval, whose
// pumps must observe drain), and the plan/KV analyzers stay module-wide
// with ownership enforced inside the analyzer, not the gate.
func TestScopeGates(t *testing.T) {
	if !GoleakAnalyzer.AppliesTo("genie/internal/eval") {
		t.Error("goleak must apply to the eval harness")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/simnet") {
		t.Error("goleak must apply to the simulator fabric")
	}
	if GoleakAnalyzer.AppliesTo("genie/internal/models") {
		t.Error("goleak should not apply to genie/internal/models")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/serve") {
		t.Error("goleak must apply to genie/internal/serve")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/compute") {
		t.Error("goleak must apply to the kernel worker pool")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/obs") {
		t.Error("goleak must apply to the trace recorder")
	}
	if !CtxflowAnalyzer.AppliesTo("genie/internal/obs") {
		t.Error("ctxflow must apply to the observability package")
	}
	if CtxflowAnalyzer.AppliesTo("genie/cmd/genie-bench") {
		t.Error("ctxflow must not apply to binaries")
	}
	if TensormutAnalyzer.AppliesTo("genie/internal/nn") {
		t.Error("tensormut must not apply to the nn kernels")
	}
	if !TensormutAnalyzer.AppliesTo("genie/internal/serve") {
		t.Error("tensormut must apply outside the kernel packages")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/chaos") {
		t.Error("goleak must apply to the fault injector")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/pool") {
		t.Error("goleak must apply to the backend pool")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/kvcache") {
		t.Error("goleak must apply to the prefix cache")
	}
	if !GoleakAnalyzer.AppliesTo("genie/internal/health") {
		t.Error("goleak must apply to the health scorer's probe and hedge paths")
	}
	if !kvOwnerScope("genie/internal/kvcache") {
		t.Error("kvcache is a KV plan owner — its strategies place prefix KV on backends")
	}
	if kvOwnerScope("genie/internal/serve") {
		t.Error("serve must not be a KV plan owner")
	}
	if !CtxflowAnalyzer.AppliesTo("genie/internal/chaos") {
		t.Error("ctxflow must apply to the fault injector")
	}
	if !RetrynakedAnalyzer.AppliesTo("genie/internal/lineage") {
		t.Error("retrynaked must apply to internal packages")
	}
	if RetrynakedAnalyzer.AppliesTo("genie/cmd/genie-bench") {
		t.Error("retrynaked must not apply to binaries")
	}
	if !KvscopeAnalyzer.AppliesTo("genie/internal/serve") {
		t.Error("kvscope must apply everywhere internal — ownership is judged inside the analyzer")
	}
	if !PlanverAnalyzer.AppliesTo("genie/internal/pool") {
		t.Error("planver must apply to the pool")
	}
	if !SpanbalanceAnalyzer.AppliesTo("genie/internal/runtime") {
		t.Error("spanbalance must apply to the runtime")
	}
	if SpanbalanceAnalyzer.AppliesTo("genie/cmd/genie-lint") {
		t.Error("spanbalance must not apply to binaries")
	}
	if !TimerleakAnalyzer.AppliesTo("genie/internal/transport") {
		t.Error("timerleak must apply to the transport retry paths")
	}
}
