package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicmixAnalyzer flags variables accessed both through sync/atomic
// and with plain loads/stores. Mixing the two disciplines voids the
// memory-model guarantees the atomic half was supposed to buy: the
// plain access races with every atomic one, and the race detector only
// catches it on the schedules it happens to see. The fix is one
// discipline per word — usually the typed wrappers (atomic.Int64 and
// friends), which make plain access unrepresentable.
//
// Detection is package-local and field-precise: pass one collects every
// variable whose address is taken by a sync/atomic call
// (atomic.AddInt64(&s.n, 1) records s.n's field object), pass two
// reports every other use of those objects.
var AtomicmixAnalyzer = &Analyzer{
	Name: "atomicmix",
	Doc:  "no variable accessed both atomically and with plain loads/stores",
	AppliesTo: func(scope string) bool {
		return hasPrefixPath(scope, "genie/internal")
	},
	Run: runAtomicmix,
}

func runAtomicmix(pass *Pass) {
	atomicObjs := make(map[types.Object]string) // object -> atomic func name
	atomicSites := make(map[*ast.Ident]bool)    // idents inside &x of atomic calls
	litKeys := make(map[*ast.Ident]bool)        // composite-literal field keys (initialization)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn == nil || funcPkgPath(fn) != "sync/atomic" || recvTypeString(fn) != "" {
					return true
				}
				if !isAtomicAccessor(fn.Name()) || len(n.Args) == 0 {
					return true
				}
				u, ok := unparen(n.Args[0]).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					return true
				}
				id, obj := addressedVar(pass.Info, u.X)
				if obj != nil {
					atomicObjs[obj] = "atomic." + fn.Name()
					atomicSites[id] = true
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							litKeys[key] = true
						}
					}
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || atomicSites[id] || litKeys[id] {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				return true
			}
			if via, ok := atomicObjs[obj]; ok {
				pass.Reportf(id.Pos(),
					"%s is accessed with %s elsewhere but plainly here; mixed atomic/plain access races — use one discipline (atomic.Int64-style typed atomics make this impossible)",
					obj.Name(), via)
			}
			return true
		})
	}
}

// isAtomicAccessor matches the sync/atomic package-level functions that
// take an address: Add*, Load*, Store*, Swap*, CompareAndSwap*, And*,
// Or*.
func isAtomicAccessor(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// addressedVar resolves the operand of &x to its variable object:
// a plain ident, or the field of a selector/index path.
func addressedVar(info *types.Info, e ast.Expr) (*ast.Ident, types.Object) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		return e, info.Uses[e]
	case *ast.SelectorExpr:
		return e.Sel, info.Uses[e.Sel]
	case *ast.IndexExpr:
		// &arr[i]: attribute the access to the array/slice variable.
		return addressedVar(info, e.X)
	}
	return nil, nil
}
