package models

import (
	"fmt"
	"math/rand"

	"genie/internal/lazy"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/tensor"
)

// MoE is a Mixture-of-Experts layer — the paper's canonical example of
// data-dependent control flow that defeats purely static graphs (§3.7,
// §5 "The semantic boundary"). Genie's answer is the *re-capture point*:
// the frontend captures the gate as one SRG, executes it, and then
// captures only the selected expert's subgraph as a second SRG. Each
// capture is static and schedulable; dynamism lives between captures.
type MoE struct {
	Dim     int
	Gate    *nn.Linear
	Experts []*nn.MLP
}

// NewMoE builds a gate plus nExperts feed-forward experts.
func NewMoE(rng *rand.Rand, dim, hidden, nExperts int) *MoE {
	m := &MoE{Dim: dim, Gate: nn.NewLinear(rng, dim, nExperts, true)}
	for i := 0; i < nExperts; i++ {
		m.Experts = append(m.Experts, nn.NewMLP(rng, dim, hidden))
	}
	return m
}

// BuildGate captures the routing decision: scores = x @ Wg, expert =
// argmax. This is the first capture; its result determines what the
// second capture contains.
func (m *MoE) BuildGate(x *tensor.Tensor) (*lazy.Builder, srg.NodeID) {
	b := lazy.NewBuilder("moe.gate")
	var out srg.NodeID
	b.InModule("moe", func() {
		xin := b.Input("x", x)
		scores := m.Gate.Forward(b, "gate", xin)
		choice := b.ArgmaxLast(scores)
		b.MarkOutput(choice)
		out = choice.ID()
	})
	return b, out
}

// BuildExpert is the re-capture point: after the gate's value is known,
// capture only the chosen expert's computation. The resulting SRG is
// fully static — the conditional has been resolved by execution, not
// encoded in the graph.
func (m *MoE) BuildExpert(expert int, x *tensor.Tensor) (*lazy.Builder, srg.NodeID) {
	if expert < 0 || expert >= len(m.Experts) {
		panic(fmt.Sprintf("models: expert %d of %d", expert, len(m.Experts)))
	}
	b := lazy.NewBuilder(fmt.Sprintf("moe.expert%d", expert))
	var out srg.NodeID
	b.InModule("moe", func() {
		xin := b.Input("x", x)
		y := m.Experts[expert].Forward(b, fmt.Sprintf("experts.%d", expert), xin)
		b.MarkOutput(y)
		out = y.ID()
	})
	return b, out
}

// Route executes the full MoE forward via re-capture against the given
// graph evaluator (local or remote): gate capture → execute → expert
// capture → execute. eval abstracts the execution site so the same
// control flow runs in-process or against a disaggregated backend.
func (m *MoE) Route(x *tensor.Tensor,
	eval func(b *lazy.Builder, want srg.NodeID) (*tensor.Tensor, error)) (int, *tensor.Tensor, error) {
	gb, gateOut := m.BuildGate(x)
	choiceT, err := eval(gb, gateOut)
	if err != nil {
		return 0, nil, fmt.Errorf("models: gate: %w", err)
	}
	expert := int(choiceT.I64()[0])
	eb, expertOut := m.BuildExpert(expert, x)
	y, err := eval(eb, expertOut)
	if err != nil {
		return 0, nil, fmt.Errorf("models: expert %d: %w", expert, err)
	}
	return expert, y, nil
}
