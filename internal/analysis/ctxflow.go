package analysis

import (
	"go/ast"
	"go/types"
)

// CtxflowAnalyzer enforces context propagation in library code. The
// paper's semantics-aware path works because cancellation travels with
// the request from the gateway through the runtime to the transport; a
// context minted mid-stack (context.Background/TODO) or a context
// parameter that is accepted but never consulted silently detaches
// everything below it from the caller's lifetime — the drain and
// deadline machinery then cannot reach the remote session.
//
// Rules, scoped to genie/internal/... (non-test files):
//
//	CF1: no context.Background() or context.TODO() calls. Library code
//	     receives its context; only binaries (cmd/, examples/) and tests
//	     mint root contexts.
//	CF2: a named context.Context parameter must be used somewhere in the
//	     function body. Accept-and-drop is how propagation holes start;
//	     an intentionally unused context is spelled "_".
var CtxflowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "context must flow: no context.Background/TODO in internal packages, no dropped ctx parameters",
	AppliesTo: func(scope string) bool {
		return hasPrefixPath(scope, "genie/internal")
	},
	Run: runCtxflow,
}

func runCtxflow(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(pass.Info, n)
				if fn != nil && funcPkgPath(fn) == "context" &&
					(fn.Name() == "Background" || fn.Name() == "TODO") {
					pass.Reportf(n.Pos(),
						"context.%s() in library code: accept a context.Context and propagate it", fn.Name())
				}
			case *ast.FuncDecl:
				checkCtxParamUsed(pass, n)
			}
			return true
		})
	}
}

// checkCtxParamUsed implements CF2 for one declared function.
func checkCtxParamUsed(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || fn.Type.Params == nil {
		return
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.Info.Defs[name]
			if obj == nil || !isContextType(obj.Type()) {
				continue
			}
			if !objUsed(pass.Info, fn.Body, obj) {
				pass.Reportf(name.Pos(),
					"context parameter %q is never used: propagate it or rename it to _", name.Name)
			}
		}
	}
}

// objUsed reports whether obj is referenced anywhere under n.
func objUsed(info *types.Info, n ast.Node, obj types.Object) bool {
	used := false
	ast.Inspect(n, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
