package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Meta is the lightweight tensor descriptor that travels on SRG edges and
// in transport frame headers: shape, dtype, and derived byte size. It is
// the "Tensor Metadata" edge annotation from §3.1 of the paper.
type Meta struct {
	DType DType
	Shape Shape
}

// MetaOf extracts the descriptor from a concrete tensor.
func MetaOf(t *Tensor) Meta {
	return Meta{DType: t.DType(), Shape: t.Shape().Clone()}
}

// Bytes returns the serialized payload size this descriptor implies.
func (m Meta) Bytes() int { return m.Shape.NumElements() * m.DType.Size() }

// NumElements returns the element count.
func (m Meta) NumElements() int { return m.Shape.NumElements() }

// String renders like "f32[2 3]".
func (m Meta) String() string { return fmt.Sprintf("%s%v", m.DType, m.Shape) }

// Equal reports descriptor equality.
func (m Meta) Equal(o Meta) bool { return m.DType == o.DType && m.Shape.Equal(o.Shape) }

// maxRank bounds decoded ranks to keep malformed input from allocating
// unbounded memory.
const maxRank = 16

// WriteTo encodes the descriptor as: u8 dtype, u8 rank, rank×u32 dims.
func (m Meta) WriteTo(w io.Writer) (int64, error) {
	if len(m.Shape) > maxRank {
		return 0, fmt.Errorf("tensor: rank %d exceeds max %d", len(m.Shape), maxRank)
	}
	buf := make([]byte, 2+4*len(m.Shape))
	buf[0] = byte(m.DType)
	buf[1] = byte(len(m.Shape))
	for i, d := range m.Shape {
		binary.LittleEndian.PutUint32(buf[2+4*i:], uint32(d))
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadMeta decodes a descriptor written by WriteTo.
func ReadMeta(r io.Reader) (Meta, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Meta{}, err
	}
	dt := DType(hdr[0])
	if dt > I8 {
		return Meta{}, fmt.Errorf("tensor: invalid dtype byte %d", hdr[0])
	}
	rank := int(hdr[1])
	if rank > maxRank {
		return Meta{}, fmt.Errorf("tensor: rank %d exceeds max %d", rank, maxRank)
	}
	dims := make([]byte, 4*rank)
	if _, err := io.ReadFull(r, dims); err != nil {
		return Meta{}, err
	}
	shape := make(Shape, rank)
	for i := range shape {
		shape[i] = int(binary.LittleEndian.Uint32(dims[4*i:]))
		if shape[i] <= 0 {
			return Meta{}, fmt.Errorf("tensor: invalid dim %d", shape[i])
		}
	}
	return Meta{DType: dt, Shape: shape}, nil
}

// EncodedLen returns the number of bytes WriteTo will produce.
func (m Meta) EncodedLen() int { return 2 + 4*len(m.Shape) }

// Write serializes a full tensor (meta + payload) to w. I8 tensors carry
// a trailing scale section (u8 axis, u32 count, count×f32) so quantized
// weights survive checkpointing; the count is 0 for unscaled int8 data.
// Pre-I8 encodings are unchanged byte for byte.
func Write(w io.Writer, t *Tensor) error {
	if _, err := MetaOf(t).WriteTo(w); err != nil {
		return err
	}
	if _, err := w.Write(t.Bytes()); err != nil {
		return err
	}
	if t.DType() != I8 {
		return nil
	}
	sc := t.Scales()
	buf := make([]byte, 5+4*len(sc))
	buf[0] = byte(t.QuantAxis())
	binary.LittleEndian.PutUint32(buf[1:], uint32(len(sc)))
	for i, s := range sc {
		binary.LittleEndian.PutUint32(buf[5+4*i:], f32bits(s))
	}
	_, err := w.Write(buf)
	return err
}

// Read deserializes a tensor written by Write.
func Read(r io.Reader) (*Tensor, error) {
	m, err := ReadMeta(r)
	if err != nil {
		return nil, err
	}
	data := make([]byte, m.Bytes())
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	t, err := FromBytes(m.DType, m.Shape, data)
	if err != nil || m.DType != I8 {
		return t, err
	}
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	axis := int(hdr[0])
	n := int(binary.LittleEndian.Uint32(hdr[1:]))
	if n == 0 {
		return t, nil
	}
	if axis >= m.Shape.Rank() || n != m.Shape[axis] {
		return nil, fmt.Errorf("tensor: %d scales for axis %d of %v", n, axis, m.Shape)
	}
	raw := make([]byte, 4*n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, err
	}
	scales := make([]float32, n)
	for i := range scales {
		scales[i] = f32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	if err := t.AttachScales(axis, scales); err != nil {
		return nil, err
	}
	return t, nil
}
