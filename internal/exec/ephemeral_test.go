package exec

import (
	"math/rand"
	"testing"

	"genie/internal/lazy"
	"genie/internal/srg"
	"genie/internal/tensor"
)

// TestGraphEphemeralMatchesGraph: ephemeral evaluation must return
// bit-identical keep values while releasing everything else.
func TestGraphEphemeralMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xT := tensor.New(tensor.F32, 6, 16)
	wT := tensor.New(tensor.F32, 16, 16)
	gT := tensor.Full(tensor.F32, 1, 16)
	bT := tensor.New(tensor.F32, 16)
	xT.RandN(rng, 1)
	wT.RandN(rng, 0.5)

	build := func() (*lazy.Builder, lazy.Value) {
		b := lazy.NewBuilder("eph")
		x := b.Input("x", xT)
		w := b.Param("w", wT)
		gamma := b.Param("gamma", gT)
		beta := b.Param("beta", bT)
		h := b.GELU(b.MatMul(x, w))
		h = b.LayerNorm(h, gamma, beta, 1e-5)
		y := b.Softmax(b.MatMul(h, w))
		b.MarkOutput(y)
		return b, y
	}

	b1, y1 := build()
	all, err := Graph(b1.Graph(), binderFor(b1))
	if err != nil {
		t.Fatal(err)
	}
	b2, y2 := build()
	kept, err := GraphEphemeral(b2.Graph(), binderFor(b2), map[srg.NodeID]bool{y2.ID(): true})
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != 1 {
		t.Fatalf("ephemeral returned %d values, want 1", len(kept))
	}
	want, got := all[y1.ID()].F32(), kept[y2.ID()].F32()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("ephemeral diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestGraphEphemeralDoesNotReleaseLeaves: binder-owned tensors (weights,
// caches, inline payloads) must survive evaluation untouched.
func TestGraphEphemeralDoesNotReleaseLeaves(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xT := tensor.NewScratch(tensor.F32, 4, 8) // pooled leaf: worst case
	wT := tensor.New(tensor.F32, 8, 8)
	xT.RandN(rng, 1)
	wT.RandN(rng, 1)
	b := lazy.NewBuilder("leaves")
	x := b.Input("x", xT)
	w := b.Param("w", wT)
	y := b.MatMul(x, w)
	b.MarkOutput(y)
	if _, err := GraphEphemeral(b.Graph(), binderFor(b), map[srg.NodeID]bool{y.ID(): true}); err != nil {
		t.Fatal(err)
	}
	if xT.Bytes() == nil || wT.Bytes() == nil {
		t.Fatal("ephemeral evaluation released a leaf tensor")
	}
}

// TestGraphEphemeralReshapeAliasSafety: a kept reshape output shares
// its input's buffer; the input must not be recycled underneath it.
func TestGraphEphemeralReshapeAliasSafety(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xT := tensor.New(tensor.F32, 4, 8)
	wT := tensor.New(tensor.F32, 8, 8)
	xT.RandN(rng, 1)
	wT.RandN(rng, 1)
	b := lazy.NewBuilder("alias")
	x := b.Input("x", xT)
	w := b.Param("w", wT)
	mm := b.MatMul(x, w) // intermediate: would normally be released
	rs := b.Reshape(mm, 8, 4)
	b.MarkOutput(rs)
	kept, err := GraphEphemeral(b.Graph(), binderFor(b), map[srg.NodeID]bool{rs.ID(): true})
	if err != nil {
		t.Fatal(err)
	}
	got := kept[rs.ID()]
	if got.Bytes() == nil {
		t.Fatal("kept reshape output was released")
	}
	// Recompute the product directly; if mm's buffer had been recycled
	// the reshaped view would now hold garbage.
	all, err := Graph(b.Graph(), binderFor(b))
	if err != nil {
		t.Fatal(err)
	}
	want := all[mm.ID()].F32()
	for i, v := range got.F32() {
		if v != want[i] {
			t.Fatalf("reshape alias corrupted at %d: %v vs %v", i, v, want[i])
		}
	}
}

// TestGraphEphemeralKeepUnknownNode: asking for a node the graph never
// produced is an error, not a nil tensor.
func TestGraphEphemeralKeepUnknownNode(t *testing.T) {
	b := lazy.NewBuilder("missing")
	x := b.Input("x", tensor.Full(tensor.F32, 1, 2, 2))
	y := b.GELU(x)
	b.MarkOutput(y)
	if _, err := GraphEphemeral(b.Graph(), binderFor(b), map[srg.NodeID]bool{srg.NodeID(9999): true}); err == nil {
		t.Fatal("keep of unknown node should fail")
	}
}
