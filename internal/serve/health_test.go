package serve

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"genie/internal/health"
	"genie/internal/metrics"
	"genie/internal/models"
	"genie/internal/runtime"
)

// healthTestEngine builds a two-lane engine with the fail-slow scorer
// wired, returning the engine, the two backends, and the scorer.
func healthTestEngine(t *testing.T) (*Engine, *servedBackend, *servedBackend, *health.Set) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	gpt := models.NewGPT(rng, models.TinyGPT)
	b0 := newServedBackend(gpt, nil)
	b1 := newServedBackend(gpt, nil)
	hs := health.NewSet(health.Config{})
	e, err := NewEngine(Config{
		Mode:          runtime.ModeSemAware,
		Health:        hs,
		HealthOpFloor: 2 * time.Second, // generous: these tests quarantine by hand, not by deadline
		RetryBudget:   1,
	}, []Backend{
		{Name: "b0", Runner: b0.runner},
		{Name: "b1", Runner: b1.runner},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e, b0, b1, hs
}

// sicken feeds tracker samples until it reaches want (or gives up).
func sicken(t *testing.T, tr *health.Tracker, d time.Duration, want health.State) {
	t.Helper()
	for i := 0; i < 100 && tr.State() != want; i++ {
		tr.Observe(d, false)
	}
	if tr.State() != want {
		t.Fatalf("tracker stuck at %v, want %v", tr.State(), want)
	}
}

// TestQuarantinedLaneDrainsWithoutStateLoss: a request decoding on a
// lane that goes Quarantined mid-generation re-queues through the
// failover path and completes on the healthy lane with bit-identical
// tokens — and without burning the client's backend-loss retry budget
// (quarantine is the engine's decision, not the backend's failure).
func TestQuarantinedLaneDrainsWithoutStateLoss(t *testing.T) {
	snap := metrics.SnapGoroutines()
	e, b0, b1, hs := healthTestEngine(t)
	want := refTokens(t, unitPrompt, 6)

	// Establish the baseline: b1 fast, then request lands on b0.
	for i := 0; i < 10; i++ {
		hs.Endpoint("b1").Observe(time.Millisecond, false)
	}
	var emitted []int
	ar, err := e.enqueue(context.Background(), Request{
		Tenant: "alice", Prompt: unitPrompt, MaxTokens: 6,
		OnToken: func(tok Token) { emitted = append(emitted, tok.Index) },
	})
	if err != nil {
		t.Fatal(err)
	}
	e.lanes[0].iterate() // prefill + one decode step on b0
	if isDone(ar) {
		t.Fatal("request finished before the fault window")
	}

	// b0 browns out: 50× the baseline quarantines it.
	sicken(t, hs.Endpoint("b0"), 50*time.Millisecond, health.Quarantined)

	// The next step boundary drains b0's batch back to the queue.
	if !e.lanes[0].iterate() {
		t.Fatal("quarantined lane reported no work for its drain")
	}
	if n := e.lanes[0].activeN.Load(); n != 0 {
		t.Fatalf("quarantined lane still holds %d active requests", n)
	}
	if st := e.Stats(); st.Queued != 1 || st.Requeued != 1 {
		t.Fatalf("after drain: queued=%d requeued=%d, want 1/1", st.Queued, st.Requeued)
	}
	// And it must not re-admit its own drained request.
	if e.lanes[0].admit() {
		t.Fatal("quarantined lane re-admitted work")
	}

	// The healthy lane finishes it; the stream is bit-identical with no
	// index delivered twice.
	for i := 0; i < 50 && !isDone(ar); i++ {
		e.lanes[1].iterate()
	}
	if !isDone(ar) || ar.err != nil {
		t.Fatalf("request did not recover: done=%v err=%v", isDone(ar), ar.err)
	}
	if ar.res.Backend != "b1" {
		t.Errorf("finished on %q, want b1", ar.res.Backend)
	}
	for i := range want {
		if ar.res.Tokens[i] != want[i] {
			t.Fatalf("tokens %v after quarantine drain, want %v", ar.res.Tokens, want)
		}
	}
	for i, idx := range emitted {
		if idx != i {
			t.Fatalf("token event order %v, want each index once", emitted)
		}
	}
	st := e.Stats()
	if st.Unavailable != 0 || st.Failed != 0 {
		t.Errorf("unavailable=%d failed=%d, want 0/0 (drain must not burn retry budget)",
			st.Unavailable, st.Failed)
	}
	if bh := st.Backends["b0"]; bh.Health != "quarantined" || bh.Healthy || bh.Score != 0 {
		t.Errorf("b0 = %+v, want quarantined/unhealthy/score 0", bh)
	}
	if bh := st.Backends["b1"]; bh.Health != "healthy" || !bh.Healthy {
		t.Errorf("b1 = %+v, want healthy", bh)
	}
	if eh, ok := st.Health["b0"]; !ok || !eh.Quarantined {
		t.Errorf("stats health block missing quarantined b0: %+v", st.Health)
	}

	b0.stop()
	b1.stop()
	snap.Check(t)
}

// TestSuspectLaneYieldsToHealthy: a Suspect lane leaves queued work for
// healthy lanes with batch room, but still serves as overflow when the
// healthy capacity is saturated.
func TestSuspectLaneYieldsToHealthy(t *testing.T) {
	e, b0, b1, hs := healthTestEngine(t)
	defer b0.stop()
	defer b1.stop()

	for i := 0; i < 10; i++ {
		hs.Endpoint("b1").Observe(time.Millisecond, false)
	}
	// 4× the baseline: Suspect, not Quarantined.
	sicken(t, hs.Endpoint("b0"), 4*time.Millisecond, health.Suspect)

	ar, err := e.enqueue(context.Background(), Request{Tenant: "a", Prompt: unitPrompt, MaxTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The suspect lane must not take it while b1 is healthy with room.
	if e.lanes[0].admit() {
		t.Fatal("suspect lane admitted work despite healthy room elsewhere")
	}
	if st := e.Stats(); st.Queued != 1 {
		t.Fatalf("queued = %d after suspect refusal, want 1", st.Queued)
	}
	for i := 0; i < 50 && !isDone(ar); i++ {
		e.lanes[1].iterate()
	}
	if !isDone(ar) || ar.err != nil {
		t.Fatalf("healthy lane did not serve: %v", ar.err)
	}
	if ar.res.Backend != "b1" {
		t.Errorf("served by %q, want healthy b1", ar.res.Backend)
	}

	// Saturate b1 (its tracker stops being Healthy): the suspect lane
	// becomes admissible again as overflow.
	sicken(t, hs.Endpoint("b1"), 50*time.Millisecond, health.Quarantined)
	ar2, err := e.enqueue(context.Background(), Request{Tenant: "a", Prompt: unitPrompt, MaxTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50 && !isDone(ar2); i++ {
		e.lanes[0].iterate()
	}
	if !isDone(ar2) || ar2.err != nil {
		t.Fatalf("suspect lane did not serve overflow: %v", ar2.err)
	}
	if ar2.res.Backend != "b0" {
		t.Errorf("overflow served by %q, want suspect b0", ar2.res.Backend)
	}
}

// TestHealthzDegradedReportsQuarantine: with one lane quarantined and
// one healthy, /healthz returns 503 with per-lane JSON detail so an
// external balancer can rotate the gateway out of the hot path.
func TestHealthzDegradedReportsQuarantine(t *testing.T) {
	e, b0, b1, hs := healthTestEngine(t)
	defer b0.stop()
	defer b1.stop()
	ts := httptest.NewServer(NewHandler(e))
	defer ts.Close()

	// Fully healthy: 200.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz = %d on healthy engine, want 200", resp.StatusCode)
	}

	for i := 0; i < 10; i++ {
		hs.Endpoint("b1").Observe(time.Millisecond, false)
	}
	sicken(t, hs.Endpoint("b0"), 50*time.Millisecond, health.Quarantined)

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz = %d with a quarantined lane, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("degraded /healthz missing Retry-After")
	}
	var hr HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "degraded" {
		t.Errorf("status = %q, want degraded", hr.Status)
	}
	if len(hr.Quarantined) != 1 || hr.Quarantined[0] != "b0" {
		t.Errorf("quarantined = %v, want [b0]", hr.Quarantined)
	}
	if lh := hr.Lanes["b0"]; lh.Health != "quarantined" {
		t.Errorf("lane detail b0 = %+v, want quarantined", lh)
	}
	if lh := hr.Lanes["b1"]; lh.Health != "healthy" || !lh.Healthy {
		t.Errorf("lane detail b1 = %+v, want healthy", lh)
	}
}
