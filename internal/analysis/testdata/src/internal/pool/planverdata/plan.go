// Package planverdata is genie-lint test fixture data for the
// ShardPlan version-discipline analyzer. Its pretend path
// (genie/internal/pool/...) is inside the pool scope, so this file —
// named plan.go — is a legitimate plan constructor.
package planverdata

import "genie/internal/pool"

// build constructs a fresh plan the legitimate way: field writes are
// allowed here because plan.go holds the version-bumping constructors.
func build(version int64, owners []string) *pool.ShardPlan {
	pl := &pool.ShardPlan{}
	pl.Version = version
	pl.Owners = owners
	return pl
}
