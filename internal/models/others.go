package models

import (
	"fmt"
	"math/rand"

	"genie/internal/lazy"
	"genie/internal/nn"
	"genie/internal/srg"
	"genie/internal/tensor"
)

// --- Vision CNN (Table 1 "Computer Vision": layer-parallel, regular,
// pipeline-friendly) ---

// CNNConfig describes a simple staged convolutional classifier.
type CNNConfig struct {
	InChannels int
	ImageSize  int
	// StageChannels lists output channels per conv stage; each stage is
	// conv3x3(pad 1) + ReLU + 2x2 maxpool.
	StageChannels []int
	Classes       int
}

// TinyCNN is a runnable 3-stage configuration.
var TinyCNN = CNNConfig{
	InChannels: 3, ImageSize: 32,
	StageChannels: []int{8, 16, 32},
	Classes:       10,
}

// ResNetLike approximates a production vision backbone for cost
// accounting (not instantiated with real weights).
var ResNetLike = CNNConfig{
	InChannels: 3, ImageSize: 224,
	StageChannels: []int{64, 128, 256, 512},
	Classes:       1000,
}

// CNN is a runnable staged convolutional model.
type CNN struct {
	Cfg    CNNConfig
	Stages []*nn.Conv2D
	Head   *nn.Linear
}

// NewCNN initializes real weights.
func NewCNN(rng *rand.Rand, cfg CNNConfig) *CNN {
	m := &CNN{Cfg: cfg}
	in := cfg.InChannels
	for _, out := range cfg.StageChannels {
		m.Stages = append(m.Stages, nn.NewConv2D(rng, in, out, 3, 1, 1))
		in = out
	}
	m.Head = nn.NewLinear(rng, in, cfg.Classes, true)
	return m
}

// CNNOutputs indexes a captured CNN graph.
type CNNOutputs struct {
	Logits srg.NodeID
	// StageOuts are the per-stage boundary activations — the pipeline
	// cut points.
	StageOuts []srg.NodeID
}

// BuildForward captures classification of one image [c,h,w].
func (m *CNN) BuildForward(img *tensor.Tensor) (*lazy.Builder, CNNOutputs) {
	b := lazy.NewBuilder("cnn.forward")
	b.SetModality(srg.ModalityVision)
	var out CNNOutputs
	b.InModule("cnn", func() {
		x := b.Input("image", img)
		for i, st := range m.Stages {
			x = st.Forward(b, fmt.Sprintf("stages.%d", i), x)
			x = b.MaxPool2D(x, 2)
			out.StageOuts = append(out.StageOuts, x.ID())
		}
		pooled := b.MeanPoolAll(x)
		flat := b.Reshape(pooled, 1, pooled.Shape()[0])
		logits := m.Head.Forward(b, "head", flat)
		b.MarkOutput(logits)
		out.Logits = logits.ID()
	})
	return b, out
}

// --- DLRM-style recommender (Table 1 "Recommendation": sparse + dense
// mix, hot/cold embeddings, tiering) ---

// DLRMConfig describes a recommendation model.
type DLRMConfig struct {
	// DenseFeatures is the dense input width.
	DenseFeatures int
	// Tables lists (rows) for each sparse embedding table.
	TableRows []int
	EmbedDim  int
	// BottomHidden/TopHidden are MLP widths.
	BottomHidden int
	TopHidden    int
}

// TinyDLRM is a runnable configuration.
var TinyDLRM = DLRMConfig{
	DenseFeatures: 8,
	TableRows:     []int{64, 128, 256},
	EmbedDim:      16,
	BottomHidden:  32,
	TopHidden:     32,
}

// DLRM is a runnable recommendation model.
type DLRM struct {
	Cfg    DLRMConfig
	Tables []*nn.EmbeddingBag
	Bottom *nn.Linear
	Mid    *nn.Linear
	Top    *nn.Linear
}

// NewDLRM initializes real weights.
func NewDLRM(rng *rand.Rand, cfg DLRMConfig) *DLRM {
	m := &DLRM{Cfg: cfg}
	for _, rows := range cfg.TableRows {
		m.Tables = append(m.Tables, nn.NewEmbeddingBag(rng, rows, cfg.EmbedDim))
	}
	m.Bottom = nn.NewLinear(rng, cfg.DenseFeatures, cfg.EmbedDim, true)
	width := cfg.EmbedDim * (1 + len(cfg.TableRows))
	m.Mid = nn.NewLinear(rng, width, cfg.TopHidden, true)
	m.Top = nn.NewLinear(rng, cfg.TopHidden, 1, true)
	return m
}

// DLRMRequest is one inference request: dense features plus per-table
// sparse id bags.
type DLRMRequest struct {
	Dense *tensor.Tensor // [1, DenseFeatures]
	// SparseIDs[t] are the ids for table t (single bag per request).
	SparseIDs [][]int64
}

// DLRMOutputs indexes a captured DLRM graph.
type DLRMOutputs struct {
	Score srg.NodeID
	// Lookups are the embedding_bag nodes (sparse tier).
	Lookups []srg.NodeID
}

// BuildForward captures one request's scoring pass.
func (m *DLRM) BuildForward(req DLRMRequest) (*lazy.Builder, DLRMOutputs) {
	if len(req.SparseIDs) != len(m.Tables) {
		panic(fmt.Sprintf("models: %d sparse bags for %d tables", len(req.SparseIDs), len(m.Tables)))
	}
	b := lazy.NewBuilder("dlrm.forward")
	var out DLRMOutputs
	b.InModule("dlrm", func() {
		b.SetModality(srg.ModalityDense)
		dense := b.Input("dense", req.Dense)
		bottom := m.Bottom.Forward(b, "bottom", dense)
		bottom = b.ReLU(bottom)

		b.SetModality(srg.ModalitySparse)
		feats := []lazy.Value{bottom}
		for i, tbl := range m.Tables {
			ids := b.Input(fmt.Sprintf("sparse.%d", i),
				tensor.FromI64(tensor.Shape{len(req.SparseIDs[i])}, req.SparseIDs[i]))
			e := tbl.Lookup(b, fmt.Sprintf("tables.%d", i), ids, []int{0})
			out.Lookups = append(out.Lookups, e.ID())
			feats = append(feats, e)
		}
		b.SetModality(srg.ModalityDense)
		x := b.Concat(1, feats...)
		x = b.ReLU(m.Mid.Forward(b, "mid", x))
		score := m.Top.Forward(b, "top", x)
		b.MarkOutput(score)
		out.Score = score.ID()
	})
	return b, out
}

// --- Multi-modal fusion model (Table 1 "Multi-modal": cross-modal
// fusion, heterogeneous patterns) ---

// MultiModal fuses a CNN image encoder with a text embedding into a
// joint answer head (a miniature VQA model).
type MultiModal struct {
	Vision *CNN
	Text   *nn.Embedding
	Fuse   *nn.Linear
	Head   *nn.Linear
	dim    int
}

// NewMultiModal initializes real weights. dim is the joint width.
func NewMultiModal(rng *rand.Rand, cnnCfg CNNConfig, vocab, dim, answers int) *MultiModal {
	visOut := cnnCfg.StageChannels[len(cnnCfg.StageChannels)-1]
	return &MultiModal{
		Vision: NewCNN(rng, cnnCfg),
		Text:   nn.NewEmbedding(rng, vocab, dim),
		Fuse:   nn.NewLinear(rng, visOut+dim, dim, true),
		Head:   nn.NewLinear(rng, dim, answers, true),
		dim:    dim,
	}
}

// MMOutputs indexes a captured multi-modal graph.
type MMOutputs struct {
	Answer srg.NodeID
	// FusionNode is where the modalities merge.
	FusionNode srg.NodeID
}

// BuildForward captures answering one (image, question) pair; the
// question is mean-pooled token embeddings.
func (m *MultiModal) BuildForward(img *tensor.Tensor, question []int64) (*lazy.Builder, MMOutputs) {
	b := lazy.NewBuilder("mm.forward")
	var out MMOutputs
	b.InModule("mm", func() {
		// Vision branch.
		b.SetModality(srg.ModalityVision)
		x := b.Input("image", img)
		for i, st := range m.Vision.Stages {
			x = st.Forward(b, fmt.Sprintf("vision.stages.%d", i), x)
			x = b.MaxPool2D(x, 2)
		}
		vis := b.MeanPoolAll(x)
		visFlat := b.Reshape(vis, 1, vis.Shape()[0])

		// Text branch.
		b.SetModality(srg.ModalityText)
		q := b.Input("question", tensor.FromI64(tensor.Shape{len(question)}, question))
		qe := m.Text.Lookup(b, "text.wte", q)
		// Mean pool tokens: sum rows via ones-matmul then scale.
		qt := b.Transpose2D(qe) // [dim, t]
		ones := b.Input("ones", tensor.Full(tensor.F32, 1, len(question), 1))
		qsum := b.MatMul(qt, ones) // [dim, 1]
		qvec := b.Scale(b.Reshape(qsum, 1, m.dim), 1/float32(len(question)))

		// Fusion.
		b.SetModality(srg.ModalityUnknown)
		joint := b.Concat(1, visFlat, qvec)
		out.FusionNode = joint.ID()
		h := b.ReLU(m.Fuse.Forward(b, "fuse", joint))
		ans := m.Head.Forward(b, "head", h)
		b.MarkOutput(ans)
		out.Answer = ans.ID()
	})
	return b, out
}
