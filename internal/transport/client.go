package transport

import (
	"context"
	"fmt"
	"time"

	"genie/internal/obs"
	"genie/internal/tensor"
)

// Client is the typed RPC surface over a framed connection to one
// backend.
type Client struct {
	conn *Conn
}

// NewClient wraps a connection.
func NewClient(conn *Conn) *Client { return &Client{conn: conn} }

// Conn exposes the underlying connection (for counters).
func (c *Client) Conn() *Conn { return c.conn }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Ping measures a protocol round trip.
func (c *Client) Ping() (time.Duration, error) {
	return c.PingCtx(nil)
}

// PingCtx is Ping with the context's deadline applied — the liveness
// probe used to confirm a backend recovered before routing work back.
func (c *Client) PingCtx(ctx context.Context) (time.Duration, error) {
	start := time.Now()
	t, _, err := c.conn.CallCtx(ctx, MsgPing, nil)
	if err != nil {
		return 0, err
	}
	if t != MsgPong {
		return 0, fmt.Errorf("transport: ping got %d", t)
	}
	return time.Since(start), nil
}

// Upload stores a tensor remotely under key.
func (c *Client) Upload(key string, data *tensor.Tensor) (*UploadOK, error) {
	return c.UploadCtx(nil, key, data)
}

// UploadCtx is Upload carrying trace context: a "transport.upload"
// span wraps the round trip and rides the wire envelope. A nil or
// untraced ctx degrades to the plain path.
func (c *Client) UploadCtx(ctx context.Context, key string, data *tensor.Tensor) (*UploadOK, error) {
	payload := EncodeUpload(&Upload{Key: key, Data: data})
	_, span := obs.StartSpan(ctx, "transport.upload")
	span.SetAttrInt("send_bytes", int64(len(payload)))
	t, p, err := c.conn.CallEnvCtx(ctx, MsgUpload, Envelope{Trace: span.TraceID(), Span: span.SpanID()}, payload)
	span.SetAttrInt("recv_bytes", int64(len(p)))
	span.End()
	if err != nil {
		return nil, err
	}
	if t != MsgUploadOK {
		return nil, fmt.Errorf("transport: upload got %d", t)
	}
	return DecodeUploadOK(p)
}

// Exec ships a subgraph for remote execution.
func (c *Client) Exec(x *Exec) (*ExecOK, error) {
	return c.ExecCtx(nil, x)
}

// ExecCtx is Exec carrying trace context: a "transport.exec" span
// wraps the round trip, and the span IDs ride the wire envelope so the
// server parents its execution span under this one.
func (c *Client) ExecCtx(ctx context.Context, x *Exec) (*ExecOK, error) {
	payload, err := EncodeExec(x)
	if err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(ctx, "transport.exec")
	span.SetAttrInt("send_bytes", int64(len(payload)))
	t, p, err := c.conn.CallEnvCtx(ctx, MsgExec, Envelope{Trace: span.TraceID(), Span: span.SpanID()}, payload)
	span.SetAttrInt("recv_bytes", int64(len(p)))
	span.End()
	if err != nil {
		return nil, err
	}
	if t != MsgExecOK {
		return nil, fmt.Errorf("transport: exec got %d", t)
	}
	return DecodeExecOK(p)
}

// ExecVerified ships a subgraph and verifies the server's execution
// attestation: the response must echo the fingerprint of the graph that
// was sent. A mismatch means the server executed something else
// (tampering, misrouting, or a buggy proxy) and is returned as an error
// with the results discarded.
func (c *Client) ExecVerified(x *Exec) (*ExecOK, error) {
	want := x.Graph.Fingerprint()
	ok, err := c.Exec(x)
	if err != nil {
		return nil, err
	}
	if ok.GraphFP != want {
		return nil, fmt.Errorf("transport: execution attestation mismatch: sent %s, server ran %s",
			want, ok.GraphFP)
	}
	return ok, nil
}

// Fetch retrieves a resident object; epoch 0 skips staleness checking.
func (c *Client) Fetch(key string, epoch uint32) (*tensor.Tensor, error) {
	return c.FetchCtx(nil, key, epoch)
}

// FetchCtx is Fetch with the context's deadline applied to the round
// trip.
func (c *Client) FetchCtx(ctx context.Context, key string, epoch uint32) (*tensor.Tensor, error) {
	t, p, err := c.conn.CallCtx(ctx, MsgFetch, EncodeFetch(&Fetch{Key: key, Epoch: epoch}))
	if err != nil {
		return nil, err
	}
	if t != MsgTensor {
		return nil, fmt.Errorf("transport: fetch got %d", t)
	}
	return DecodeTensorMsg(p)
}

// Free releases a resident object.
func (c *Client) Free(key string) error {
	t, _, err := c.conn.Call(MsgFree, EncodeFetch(&Fetch{Key: key}))
	if err != nil {
		return err
	}
	if t != MsgFreeOK {
		return fmt.Errorf("transport: free got %d", t)
	}
	return nil
}

// Crash injects a server failure (drops all resident state).
func (c *Client) Crash() error {
	t, _, err := c.conn.Call(MsgCrash, nil)
	if err != nil {
		return err
	}
	if t != MsgCrashOK {
		return fmt.Errorf("transport: crash got %d", t)
	}
	return nil
}

// Stats fetches server counters.
func (c *Client) Stats() (*Stats, error) {
	t, p, err := c.conn.Call(MsgStats, nil)
	if err != nil {
		return nil, err
	}
	if t != MsgStatsOK {
		return nil, fmt.Errorf("transport: stats got %d", t)
	}
	return DecodeStats(p)
}
