// Package quant implements the raw-speed tier's precision lowering
// (ROADMAP item 2): symmetric per-channel int8 weight quantization and
// f16 weight narrowing, plus the dynamic per-row activation quantizer
// the int8 matmul kernels use at execute time.
//
// The scheme is deliberately the simplest one with a provable error
// bound: symmetric linear quantization, scale = maxabs/127 per output
// channel, no zero point. Dequantized value = int8 * scale, so the
// worst-case per-element error is scale/2 — the bound the parity suite
// checks analytically (DESIGN.md §11).
package quant

import (
	"fmt"

	"genie/internal/tensor"
)

// Mode selects the weight precision tier.
type Mode uint8

const (
	Off  Mode = iota // weights stay f32
	Int8             // per-channel symmetric int8 + f32 scales
	F16              // IEEE half, no scales
)

// String implements fmt.Stringer ("off", "int8", "f16").
func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Int8:
		return "int8"
	case F16:
		return "f16"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// ParseMode converts a -quant flag value to a Mode.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off", "":
		return Off, nil
	case "int8", "i8":
		return Int8, nil
	case "f16", "fp16", "half":
		return F16, nil
	}
	return Off, fmt.Errorf("quant: unknown mode %q (want int8|f16|off)", s)
}

// maxAbsCol returns the max |v| down column c of a row-major
// [rows, cols] matrix.
func maxAbsCol(w []float32, rows, cols, c int) float32 {
	var m float32
	for i := 0; i < rows; i++ {
		v := w[i*cols+c]
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

func maxAbsRow(row []float32) float32 {
	var m float32
	for _, v := range row {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// QuantizeLinear lowers a rank-2 f32 weight matrix to symmetric
// per-channel int8 along axis (0 = per row, 1 = per column). Each
// channel's scale is maxabs/127; all-zero channels get scale 1 so
// dequantization stays well-defined. The returned tensor has the same
// shape, dtype I8, and the scales attached.
func QuantizeLinear(w *tensor.Tensor, axis int) (*tensor.Tensor, error) {
	if w.DType() != tensor.F32 {
		return nil, fmt.Errorf("quant: QuantizeLinear on %s (want f32)", w.DType())
	}
	if w.Shape().Rank() != 2 {
		return nil, fmt.Errorf("quant: QuantizeLinear on rank-%d tensor (want 2)", w.Shape().Rank())
	}
	if axis != 0 && axis != 1 {
		return nil, fmt.Errorf("quant: axis %d (want 0 or 1)", axis)
	}
	rows, cols := w.Shape()[0], w.Shape()[1]
	src := w.F32()
	out := tensor.New(tensor.I8, rows, cols)
	dst := out.I8()

	nch := w.Shape()[axis]
	scales := make([]float32, nch)
	if axis == 0 {
		for r := 0; r < rows; r++ {
			scales[r] = scaleFor(maxAbsRow(src[r*cols : (r+1)*cols]))
		}
		for r := 0; r < rows; r++ {
			inv := 1 / scales[r]
			row, qrow := src[r*cols:(r+1)*cols], dst[r*cols:(r+1)*cols]
			for j, v := range row {
				qrow[j] = clampI8(v * inv)
			}
		}
	} else {
		for c := 0; c < cols; c++ {
			scales[c] = scaleFor(maxAbsCol(src, rows, cols, c))
		}
		for r := 0; r < rows; r++ {
			row, qrow := src[r*cols:(r+1)*cols], dst[r*cols:(r+1)*cols]
			for j, v := range row {
				qrow[j] = clampI8(v / scales[j])
			}
		}
	}
	if err := out.AttachScales(axis, scales); err != nil {
		return nil, err
	}
	return out, nil
}

// scaleFor maps a channel's max magnitude to its quantization scale.
// All-zero channels quantize exactly with any scale; 1 keeps the math
// finite.
func scaleFor(maxabs float32) float32 {
	if maxabs == 0 {
		return 1
	}
	return maxabs / 127
}

func clampI8(v float32) int8 {
	// Round half away from zero, clamp to the symmetric int8 range.
	if v >= 0 {
		v += 0.5
	} else {
		v -= 0.5
	}
	if v > 127 {
		return 127
	}
	if v < -127 {
		return -127
	}
	return int8(v)
}

// Dequantize expands an I8 tensor with attached scales back to f32.
// Mostly a test utility: the kernels dequantize on store instead.
func Dequantize(q *tensor.Tensor) (*tensor.Tensor, error) {
	if q.DType() != tensor.I8 {
		return nil, fmt.Errorf("quant: Dequantize on %s (want i8)", q.DType())
	}
	return q.ToF32(), nil
}

// QuantizeRow dynamically quantizes one f32 activation row into qrow
// (symmetric, single scale) and returns the scale. Used per execute by
// the int8 matmul: weights are quantized once offline, activations here.
func QuantizeRow(row []float32, qrow []int8) float32 {
	s := scaleFor(maxAbsRow(row))
	inv := 1 / s
	for j, v := range row {
		qrow[j] = clampI8(v * inv)
	}
	return s
}
