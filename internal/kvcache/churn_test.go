package kvcache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"genie/internal/metrics"
	"genie/internal/models"
	"genie/internal/runtime"
)

// TestConcurrentChurnUnderTightBudget hammers one shared Manager from
// many goroutines with overlapping prompts under a budget small enough
// to force constant eviction. Run under -race this exercises every
// lock-ordering path (lookup/insert/split/evict/unpin interleavings);
// the goroutine snapshot catches leaked session state.
func TestConcurrentChurnUnderTightBudget(t *testing.T) {
	snap := metrics.SnapGoroutines()

	rng := rand.New(rand.NewSource(3))
	model := models.NewGPT(rng, models.TinyGPT)
	cfg := model.Cfg
	// ~4 pages of 4 tokens: almost everything gets evicted almost
	// immediately, so pins are load-bearing.
	mgr, err := NewManager(Config{
		Model:       model,
		BudgetBytes: 4 * 4 * cfg.KVBytesPerToken(),
		PageTokens:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := mgr.Runner()

	// A small family of prompts sharing prefixes pairwise, so splits and
	// duplicate inserts happen constantly.
	prompts := [][]int64{
		{1, 2, 3, 4, 5, 6},
		{1, 2, 3, 4, 9, 9},
		{1, 2, 7, 7, 7, 7},
		{8, 8, 8, 8, 8, 8},
	}

	const workers = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				prompt := prompts[(w+i)%len(prompts)]
				s, err := r.NewScopedSession(runtime.ModeLocal, fmt.Sprintf("w%d-%d/", w, i))
				if err != nil {
					errs <- err
					return
				}
				if _, err := s.Prefill(prompt); err != nil {
					errs <- err
					return
				}
				for k := 0; k < 2; k++ {
					if _, err := s.Step(); err != nil {
						errs <- err
						return
					}
				}
				if err := s.Close(); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := mgr.Snapshot()
	if st.Evictions == 0 {
		t.Fatal("tight-budget churn produced no evictions")
	}
	if st.ResidentBytes > 4*4*cfg.KVBytesPerToken() {
		t.Fatalf("resident %d bytes over budget with all sessions closed", st.ResidentBytes)
	}
	// Every session closed, so every pin is released: nothing may linger
	// in the registry holding nodes hostage from the evict sweep.
	mgr.mu.Lock()
	if n := len(mgr.pins); n != 0 {
		t.Errorf("%d pins still registered after all sessions closed", n)
	}
	mgr.mu.Unlock()

	snap.Check(t)
}

// TestChurnParityAfterEvictions: after heavy eviction churn the cache
// must still produce bit-identical tokens (evicting must never corrupt
// surviving neighbours — splits share pages by reference).
func TestChurnParityAfterEvictions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := models.NewGPT(rng, models.TinyGPT)
	baseline := &runtime.LLMRunner{Model: model}
	mgr, err := NewManager(Config{Model: model, BudgetBytes: 3 * 4 * model.Cfg.KVBytesPerToken(), PageTokens: 4})
	if err != nil {
		t.Fatal(err)
	}
	cached := mgr.Runner()

	prompt := []int64{11, 12, 13, 14, 15, 16}
	want := generateScoped(t, baseline, runtime.ModeLocal, "", prompt, 4)
	for i := 0; i < 8; i++ {
		churn := []int64{40 + int64(i)*4, 41 + int64(i)*4, 42 + int64(i)*4, 43 + int64(i)*4}
		generateScoped(t, cached, runtime.ModeLocal, "", churn, 2)
		got := generateScoped(t, cached, runtime.ModeLocal, "", prompt, 4)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("iteration %d diverges at step %d: %v vs %v", i, j, got, want)
			}
		}
	}
	if mgr.Snapshot().Evictions == 0 {
		t.Fatal("churn loop produced no evictions")
	}
}
