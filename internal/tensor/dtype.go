// Package tensor implements the dense tensor substrate used throughout
// Genie. It provides shapes, strides, dtypes, views, and binary
// serialization. Real numeric kernels live in the ops subpackage.
//
// The paper's prototype builds on PyTorch tensors; this package is the
// from-scratch stand-in that gives the lazy frontend something concrete to
// defer, the transport something concrete to move, and the backend
// something concrete to execute.
package tensor

import "fmt"

// DType identifies the element type of a tensor.
type DType uint8

// Supported element types. F16 is stored as uint16 bit patterns (IEEE 754
// half); kernels widen to float32 for arithmetic, which mirrors how
// accelerators treat fp16 accumulation.
const (
	F32 DType = iota // 32-bit IEEE float
	F16              // 16-bit IEEE float (stored as uint16 bits)
	I64              // 64-bit signed integer (token ids, indices)
	I32              // 32-bit signed integer
	U8               // 8-bit unsigned integer (images, masks)
	I8               // 8-bit signed integer (quantized weights; see AttachScales)
)

// Size returns the number of bytes per element.
func (d DType) Size() int {
	switch d {
	case F32, I32:
		return 4
	case F16:
		return 2
	case I64:
		return 8
	case U8, I8:
		return 1
	}
	panic(fmt.Sprintf("tensor: unknown dtype %d", d))
}

// String implements fmt.Stringer.
func (d DType) String() string {
	switch d {
	case F32:
		return "f32"
	case F16:
		return "f16"
	case I64:
		return "i64"
	case I32:
		return "i32"
	case U8:
		return "u8"
	case I8:
		return "i8"
	}
	return fmt.Sprintf("dtype(%d)", uint8(d))
}

// ParseDType converts the String form back to a DType.
func ParseDType(s string) (DType, error) {
	switch s {
	case "f32":
		return F32, nil
	case "f16":
		return F16, nil
	case "i64":
		return I64, nil
	case "i32":
		return I32, nil
	case "u8":
		return U8, nil
	case "i8":
		return I8, nil
	}
	return 0, fmt.Errorf("tensor: unknown dtype %q", s)
}

// F16FromF32 converts a float32 to IEEE 754 half-precision bits with
// round-to-nearest-even. Out-of-range values clamp to ±Inf.
func F16FromF32(f float32) uint16 {
	bits := f32bits(f)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127 + 15
	mant := bits & 0x7fffff

	if exp >= 0x1f { // overflow or already Inf/NaN
		if int32(bits>>23&0xff) == 0xff && mant != 0 {
			return sign | 0x7e00 // NaN
		}
		return sign | 0x7c00 // Inf
	}
	if exp <= 0 { // subnormal or zero
		if exp < -10 {
			return sign
		}
		mant |= 0x800000
		shift := uint32(14 - exp)
		half := uint32(1) << (shift - 1)
		rounded := (mant + half) >> shift
		// Round-to-nearest-even tie break.
		if mant&((half<<1)-1) == half && rounded&1 == 1 {
			rounded--
		}
		return sign | uint16(rounded)
	}
	// Normal number: round mantissa from 23 to 10 bits.
	rounded := mant + 0xfff + (mant >> 13 & 1)
	if rounded&0x800000 != 0 {
		rounded = 0
		exp++
		if exp >= 0x1f {
			return sign | 0x7c00
		}
	}
	return sign | uint16(exp)<<10 | uint16(rounded>>13)
}

// F16ToF32 converts IEEE 754 half-precision bits to float32.
func F16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf / NaN
		return f32frombits(sign | 0x7f800000 | mant<<13)
	case exp == 0 && mant == 0:
		return f32frombits(sign)
	case exp == 0: // subnormal: renormalize
		for mant&0x400 == 0 {
			mant <<= 1
			exp--
		}
		mant &= 0x3ff
		exp++
		fallthrough
	default:
		return f32frombits(sign | (exp+127-15)<<23 | mant<<13)
	}
}
