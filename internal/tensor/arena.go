package tensor

import "sync"

// Scratch arena: a size-classed sync.Pool of kernel activation buffers.
//
// Every decode step allocates the same cast of intermediates (attention
// scores, projected activations, logits) and drops them a few nodes
// later; allocating each from the heap makes the allocator — not the
// kernels — the hot path. NewScratch hands out pooled buffers instead,
// using the same release-func discipline pinned transport buffers
// already follow: the tensor owns its buffer until Release(), which
// recycles it. A tensor that is never released is merely collected by
// the GC — forgetting to release is a missed reuse, never a bug.
//
// Recycled buffers are dirty. Every pooled allocation is explicitly
// zeroed before the tensor is handed out, because accumulate-style
// kernels (matmul2d writes `out[j] += ...`) silently fold stale values
// into results otherwise. TestScratchBuffersComeBackZeroed is the
// regression gate for that hazard.

// scratchMinBits/scratchMaxBits bound the pooled size classes:
// 1 KiB .. 64 MiB, one class per power of two. Requests above the top
// class fall through to plain allocation (rare: a 64 MiB activation is
// bigger than anything the bundled models produce).
const (
	scratchMinBits = 10
	scratchMaxBits = 26
)

var scratchClasses [scratchMaxBits - scratchMinBits + 1]sync.Pool

// classFor returns the class index whose capacity (1<<(scratchMinBits+i))
// holds nbytes, or -1 when nbytes exceeds the largest class.
func classFor(nbytes int) int {
	for i := 0; i <= scratchMaxBits-scratchMinBits; i++ {
		if nbytes <= 1<<(scratchMinBits+i) {
			return i
		}
	}
	return -1
}

// NewScratch allocates a zeroed tensor like New, but backed by the
// scratch arena when the size fits a class. Calling Release() returns
// the buffer for reuse; after Release the tensor must not be touched
// (its data is nil, so a stale use panics rather than corrupting a
// recycled buffer).
func NewScratch(dt DType, shape ...int) *Tensor {
	s := Shape(shape)
	if !s.Valid() {
		return New(dt, shape...) // New panics with the canonical message
	}
	nbytes := s.NumElements() * dt.Size()
	cls := classFor(nbytes)
	if cls < 0 {
		return New(dt, shape...)
	}
	// The pool traffics in *scratchBuf so reuse allocates nothing but
	// the Tensor header: the put closure is built once per buffer, on
	// first allocation, and rides along on every recycle.
	sb, ok := scratchClasses[cls].Get().(*scratchBuf)
	if ok {
		clear(sb.data[:nbytes]) // recycled buffers are dirty; accumulate kernels need zeros
	} else {
		sb = &scratchBuf{data: make([]byte, 1<<(scratchMinBits+cls))}
		sb.put = func() { scratchClasses[cls].Put(sb) }
	}
	return &Tensor{shape: s.Clone(), dtype: dt, data: sb.data[:nbytes], release: sb.put}
}

// scratchBuf is one pooled arena buffer plus its recycle closure.
type scratchBuf struct {
	data []byte
	put  func()
}
