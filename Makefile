# Genie build/test entry points. `make check` is the gate every change
# must pass: full build, vet, and the test suite under the race
# detector (the serving engine is aggressively concurrent).

GO ?= go

.PHONY: all build vet test race check bench

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

check: build vet race

bench:
	$(GO) run ./cmd/genie-bench
