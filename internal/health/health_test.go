package health

import (
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic dwell tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func testSet(clk *fakeClock, over func(*Config)) *Set {
	cfg := Config{Now: clk.now}
	if over != nil {
		over(&cfg)
	}
	return NewSet(cfg)
}

// feed pushes n identical samples.
func feed(t *Tracker, n int, d time.Duration, failed bool) {
	for i := 0; i < n; i++ {
		t.Observe(d, failed)
	}
}

func TestHealthyBaseline(t *testing.T) {
	s := testSet(newFakeClock(), nil)
	a := s.Endpoint("a")
	b := s.Endpoint("b")
	feed(a, 20, time.Millisecond, false)
	feed(b, 20, time.Millisecond, false)
	if st := a.State(); st != Healthy {
		t.Fatalf("a state = %v, want Healthy", st)
	}
	if sc := a.Score(); sc < 0.99 {
		t.Fatalf("a score = %v, want ~1", sc)
	}
	if s.Endpoint("a") != a {
		t.Fatal("Endpoint not idempotent")
	}
}

func TestSlowLaneGraduatesToQuarantine(t *testing.T) {
	s := testSet(newFakeClock(), nil)
	a := s.Endpoint("a")
	b := s.Endpoint("b")
	feed(a, 20, time.Millisecond, false)
	// b starts equally fast, then browns out mildly (4×): that lands in
	// the suspect band and stays there.
	feed(b, 20, time.Millisecond, false)
	for i := 0; i < 40 && b.State() != Suspect; i++ {
		b.Observe(4*time.Millisecond, false)
	}
	if st := b.State(); st != Suspect {
		t.Fatalf("b state = %v after 4x slowdown, want Suspect", st)
	}
	// Then severely (50×): one sample is enough to cross the quarantine
	// ratio once the EWMA folds it in.
	for i := 0; i < 40 && b.State() != Quarantined; i++ {
		b.Observe(50*time.Millisecond, false)
	}
	if st := b.State(); st != Quarantined {
		t.Fatalf("b state = %v, want Quarantined", st)
	}
	if sc := b.Score(); sc != 0 {
		t.Fatalf("quarantined score = %v, want 0", sc)
	}
	if st := a.State(); st != Healthy {
		t.Fatalf("healthy peer state = %v, want Healthy", st)
	}
}

func TestErrorRateQuarantines(t *testing.T) {
	s := testSet(newFakeClock(), nil)
	a := s.Endpoint("a")
	feed(s.Endpoint("b"), 20, time.Millisecond, false)
	feed(a, 10, time.Millisecond, false)
	for i := 0; i < 40 && a.State() != Quarantined; i++ {
		a.Observe(time.Millisecond, true)
	}
	if st := a.State(); st != Quarantined {
		t.Fatalf("a state = %v, want Quarantined (errEwma path)", st)
	}
}

func TestQuarantineDwellAndReinstate(t *testing.T) {
	clk := newFakeClock()
	s := testSet(clk, func(c *Config) {
		c.Cooldown = time.Second
		c.ReinstateStreak = 3
	})
	a := s.Endpoint("a")
	feed(s.Endpoint("b"), 20, time.Millisecond, false)
	feed(a, 20, time.Millisecond, false)
	for i := 0; i < 60 && a.State() != Quarantined; i++ {
		a.Observe(100*time.Millisecond, false)
	}
	if a.State() != Quarantined {
		t.Fatal("setup: a should be Quarantined")
	}
	// Dwell not elapsed: still quarantined.
	clk.advance(500 * time.Millisecond)
	if st := a.State(); st != Quarantined {
		t.Fatalf("state = %v before dwell elapsed, want Quarantined", st)
	}
	clk.advance(600 * time.Millisecond)
	if st := a.State(); st != Reinstating {
		t.Fatalf("state = %v after dwell, want Reinstating", st)
	}
	// Two successes: still on trial. Third: healthy, with the sick-era
	// EWMA forgotten so the next judged call doesn't re-quarantine.
	a.Observe(time.Millisecond, false)
	a.Observe(time.Millisecond, false)
	if st := a.State(); st != Reinstating {
		t.Fatalf("state = %v mid-streak, want Reinstating", st)
	}
	a.Observe(time.Millisecond, false)
	if st := a.State(); st != Healthy {
		t.Fatalf("state = %v after streak, want Healthy", st)
	}
	feed(a, 10, time.Millisecond, false)
	if st := a.State(); st != Healthy {
		t.Fatalf("state = %v after recovery traffic, want Healthy (stale EWMA leaked)", st)
	}
}

func TestReinstateFailureRequarantines(t *testing.T) {
	clk := newFakeClock()
	s := testSet(clk, func(c *Config) { c.Cooldown = time.Second })
	a := s.Endpoint("a")
	feed(s.Endpoint("b"), 20, time.Millisecond, false)
	feed(a, 20, time.Millisecond, false)
	for i := 0; i < 60 && a.State() != Quarantined; i++ {
		a.Observe(100*time.Millisecond, false)
	}
	clk.advance(2 * time.Second)
	if a.State() != Reinstating {
		t.Fatal("setup: a should be Reinstating")
	}
	a.Observe(time.Millisecond, true)
	if st := a.State(); st != Quarantined {
		t.Fatalf("state = %v after trial failure, want Quarantined", st)
	}
}

func TestHealthiestRanking(t *testing.T) {
	s := testSet(newFakeClock(), nil)
	a := s.Endpoint("a")
	b := s.Endpoint("b")
	feed(a, 20, time.Millisecond, false)
	feed(b, 20, 10*time.Millisecond, false)
	ranked := s.Healthiest([]string{"b", "a", "c"})
	if ranked[0] != "a" {
		t.Fatalf("ranked = %v, want a first (fastest)", ranked)
	}
	// c is unknown: score 1, ties with a at the top by name order after a.
	if ranked[len(ranked)-1] != "b" {
		t.Fatalf("ranked = %v, want b last (slowest)", ranked)
	}
}

func TestProbePacing(t *testing.T) {
	clk := newFakeClock()
	s := testSet(clk, func(c *Config) { c.ProbeInterval = 100 * time.Millisecond })
	a := s.Endpoint("a")
	// A fresh tracker is not immediately due: probing at first sight
	// would block a new lane in a ping exactly when traffic arrives.
	if a.ProbeDue() {
		t.Fatal("fresh tracker should wait a full interval before probing")
	}
	clk.advance(150 * time.Millisecond)
	if !a.ProbeDue() {
		t.Fatal("first probe should be due after an idle interval")
	}
	if a.ProbeDue() {
		t.Fatal("second probe immediately after should not be due")
	}
	if w := a.ProbeWait(); w <= 0 || w > 100*time.Millisecond {
		t.Fatalf("ProbeWait = %v, want (0, 100ms]", w)
	}
	clk.advance(150 * time.Millisecond)
	if !a.ProbeDue() {
		t.Fatal("probe should be due after the interval")
	}
	a.ObserveProbe(time.Millisecond, false)
	if got := a.snapshot().Probes; got != 1 {
		t.Fatalf("probe count = %d, want 1", got)
	}
}

func TestDeadlines(t *testing.T) {
	s := testSet(newFakeClock(), nil)
	a := s.Endpoint("a")
	// No baseline yet: hedge uses the floor, op deadline passes the cap
	// through.
	if d := s.HedgeDeadline(5 * time.Millisecond); d != 5*time.Millisecond {
		t.Fatalf("HedgeDeadline floor = %v, want 5ms", d)
	}
	if d := s.OpDeadline(time.Millisecond, time.Second); d != time.Second {
		t.Fatalf("OpDeadline without samples = %v, want cap", d)
	}
	feed(a, 20, time.Millisecond, false)
	// Baseline 1ms, HedgeFactor 4 → 4ms (floor 1ms).
	if d := s.HedgeDeadline(time.Millisecond); d < 3*time.Millisecond || d > 6*time.Millisecond {
		t.Fatalf("HedgeDeadline = %v, want ~4ms", d)
	}
	// Healthy max 1ms × DeadlineFactor 4 = 4ms, floored at 2ms, capped 1s.
	if d := s.OpDeadline(2*time.Millisecond, time.Second); d < 2*time.Millisecond || d > 8*time.Millisecond {
		t.Fatalf("OpDeadline = %v, want ~4ms", d)
	}
	if d := s.OpDeadline(2*time.Millisecond, 3*time.Millisecond); d != 3*time.Millisecond {
		t.Fatalf("OpDeadline cap = %v, want 3ms", d)
	}
}

func TestSnapshot(t *testing.T) {
	s := testSet(newFakeClock(), nil)
	feed(s.Endpoint("a"), 10, 2*time.Millisecond, false)
	snap := s.Snapshot()
	eh, ok := snap["a"]
	if !ok {
		t.Fatal("snapshot missing endpoint a")
	}
	if eh.State != "healthy" || eh.Samples != 10 || eh.P50 != 2*time.Millisecond {
		t.Fatalf("snapshot = %+v", eh)
	}
	if eh.Quarantined {
		t.Fatal("healthy endpoint marked quarantined")
	}
}
