package runtime

import (
	"context"
	"errors"
	"fmt"
)

// ErrStopped reports a generation loop interrupted by Stop or context
// cancellation.
var ErrStopped = errors.New("runtime: generation stopped")

// Token is one streamed generation event. A terminal event carries Err
// (io-style: the channel closes after it); successful completion closes
// the channel without a terminal error event.
type Token struct {
	// Index is the decode step (0-based).
	Index int
	// ID is the generated token.
	ID int64
	// Err, when non-nil, terminates the stream (transport failure,
	// cancellation).
	Err error
}

// Stream generates tokens asynchronously, delivering each as soon as its
// decode step completes — the interactive-serving surface over the same
// mode implementations Generate uses. Cancelling ctx stops the loop at
// the next step boundary.
//
// The returned channel is closed when generation finishes, fails, or is
// cancelled.
func (r *LLMRunner) Stream(ctx context.Context, mode Mode, prompt []int64, steps int) <-chan Token {
	out := make(chan Token, 1)
	go func() {
		defer close(out)
		// A per-stream runner clone so OnToken and stop state never race
		// concurrent streams over the same model/endpoint.
		rr := &LLMRunner{Model: r.Model, EP: r.EP, Counters: r.Counters, WeightsResident: r.WeightsResident}
		idx := 0
		rr.OnToken = func(token int64) bool {
			select {
			case out <- Token{Index: idx, ID: token}:
				idx++
			case <-ctx.Done():
				return false
			}
			select {
			case <-ctx.Done():
				return false
			default:
				return true
			}
		}
		if _, err := rr.Generate(mode, prompt, steps); err != nil {
			if errors.Is(err, ErrStopped) && ctx.Err() != nil {
				err = fmt.Errorf("%w: %v", ErrStopped, ctx.Err())
			}
			select {
			case out <- Token{Index: idx, Err: err}:
			case <-ctx.Done():
			}
		}
	}()
	return out
}

// emit runs the OnToken hook (if any); a false return requests stop.
func (r *LLMRunner) emit(token int64) error {
	if r.OnToken == nil {
		return nil
	}
	if !r.OnToken(token) {
		return ErrStopped
	}
	return nil
}
