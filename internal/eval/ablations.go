package eval

import (
	"fmt"
	"math/rand"
	"time"

	"genie/internal/cluster"
	"genie/internal/device"
	"genie/internal/frontend"
	"genie/internal/global"
	"genie/internal/models"
	"genie/internal/nn"
	"genie/internal/scheduler"
	"genie/internal/simnet"
	"genie/internal/srg"
	"genie/internal/tensor"
)

// --- A1: stateful co-location on/off (§3.3) ---

// ColocationResult compares a decode loop with the KV cache pinned next
// to compute (co-located) against one where a blind placement moves the
// cache across the wire every step.
type ColocationResult struct {
	ColocatedLatency time.Duration
	ColocatedBytes   int64
	MovedLatency     time.Duration
	MovedBytes       int64
}

// AblationColocation simulates N decode steps at paper scale with and
// without stateful co-location.
func AblationColocation(cfg LLMSimConfig) ColocationResult {
	m := cfg.Model
	T, N := cfg.PromptLen, cfg.DecodeLen
	var r ColocationResult

	// Co-located: the semantics-aware decode (cache stays put).
	t := newTimeline(cfg)
	for s := 0; s < N; s++ {
		t.call(8, m.LogitsBytes(), m.DecodeFLOPs(T+s), m.DecodeBytesTouched(T+s))
	}
	r.ColocatedLatency, r.ColocatedBytes = t.now, t.net

	// Moved: each step the full cache crosses the wire to wherever the
	// op landed, and the updated cache comes back.
	t = newTimeline(cfg)
	for s := 0; s < N; s++ {
		kv := m.KVBytes(T + s)
		t.call(8+kv, m.LogitsBytes()+kv+m.KVBytesPerToken(),
			m.DecodeFLOPs(T+s), m.DecodeBytesTouched(T+s))
	}
	r.MovedLatency, r.MovedBytes = t.now, t.net
	return r
}

// --- A2: pipelined CNN inference vs sequential (§3.3) ---

// PipelineResult compares stream completion time.
type PipelineResult struct {
	Stages     int
	Devices    int
	Sequential time.Duration
	Pipelined  time.Duration
}

// Speedup returns sequential/pipelined.
func (p PipelineResult) Speedup() float64 {
	if p.Pipelined == 0 {
		return 0
	}
	return float64(p.Sequential) / float64(p.Pipelined)
}

// AblationPipeline simulates a stream of images through a
// ResNet-like CNN on nDevices accelerators, sequential vs pipelined.
func AblationPipeline(spec device.Spec, nDevices, streamLen int) PipelineResult {
	cfg := models.ResNetLike
	// Per-stage cost: conv3x3 at each stage's resolution/width.
	stageCost := make([]time.Duration, len(cfg.StageChannels))
	in := cfg.InChannels
	size := cfg.ImageSize
	for i, out := range cfg.StageChannels {
		flops := 2.0 * float64(out*in*9*size*size)
		bytes := int64(4 * (in*size*size + out*size*size + out*in*9))
		stageCost[i] = spec.KernelTime(flops, bytes)
		in = out
		size /= 2
	}

	res := PipelineResult{Stages: len(stageCost), Devices: nDevices}

	// Sequential: whole model per image on one device.
	var total time.Duration
	for _, c := range stageCost {
		total += c
	}
	seq := simnet.NewResource("gpu0")
	var end time.Duration
	for i := 0; i < streamLen; i++ {
		_, end = seq.ReserveAt(0, total)
	}
	res.Sequential = end

	// Pipelined: stage s on device s%nDevices; images flow through.
	devs := make([]*simnet.Resource, nDevices)
	for i := range devs {
		devs[i] = simnet.NewResource(fmt.Sprint("gpu", i))
	}
	for i := 0; i < streamLen; i++ {
		at := time.Duration(0)
		for s, c := range stageCost {
			_, e := devs[s%nDevices].ReserveAt(at, c)
			at = e
		}
		if at > end || i == 0 {
			end = at
		}
	}
	res.Pipelined = end
	return res
}

// --- A3: dynamic recomputation vs fetch under congestion (§3.3) ---

// RecomputePoint is one congestion level's outcome.
type RecomputePoint struct {
	Congestion  float64
	FetchTime   time.Duration
	RecompTime  time.Duration
	ChoseRecomp bool
}

// AblationRecompute sweeps link congestion for an intermediate tensor of
// the given size and producer cost, reporting when recomputation wins.
func AblationRecompute(spec device.Spec, link cluster.Link, rpc scheduler.RPCProfile,
	tensorBytes int64, producerFLOPs float64, congestions []float64) []RecomputePoint {
	var out []RecomputePoint
	recomp := spec.KernelTime(producerFLOPs, tensorBytes)
	for _, c := range congestions {
		l := link
		l.Congestion = c
		fetch := rpc.CallTime(l, tensorBytes)
		out = append(out, RecomputePoint{
			Congestion:  c,
			FetchTime:   fetch,
			RecompTime:  recomp,
			ChoseRecomp: recomp < fetch,
		})
	}
	return out
}

// --- A5: lineage recovery vs full restart (§3.5) ---

// LineageCostPoint compares recovering a decode loop at a given depth via
// lineage replay against restarting the whole session (weights + prefill
// + decode replay from scratch including re-upload).
type LineageCostPoint struct {
	Depth       int
	ReplayCost  time.Duration
	FullRestart time.Duration
}

// AblationLineageRecovery models recovery cost at paper scale: replay
// re-executes prefill + depth decode kernels on a standby that already
// holds weights; full restart re-ships weights through the transport
// first.
func AblationLineageRecovery(cfg LLMSimConfig, depths []int) []LineageCostPoint {
	m := cfg.Model
	T := cfg.PromptLen
	var out []LineageCostPoint
	for _, d := range depths {
		// Replay: prefill kernel + d decode kernels (weights already
		// resident on the standby pool).
		replay := cfg.Device.KernelTime(m.PrefillFLOPs(T), m.WeightBytes()+m.KVBytes(T))
		for s := 0; s < d; s++ {
			replay += cfg.Device.KernelTime(m.DecodeFLOPs(T+s), m.DecodeBytesTouched(T+s))
		}
		// Full restart: weight shipment + the same compute.
		t := newTimeline(cfg)
		t.call(m.WeightBytes(), 0, 0, 0)
		restart := t.now + replay
		out = append(out, LineageCostPoint{Depth: d, ReplayCost: replay, FullRestart: restart})
	}
	return out
}

// --- A6: cross-tenant decode batching (§3.6) ---

// BatchingPoint is one batch size's throughput gain.
type BatchingPoint struct {
	Batch   int
	Speedup float64
}

// AblationGlobalBatching sweeps same-model decode batch sizes at GPT-J
// scale.
func AblationGlobalBatching(spec device.Spec, cfg models.GPTConfig, hist int, sizes []int) []BatchingPoint {
	var out []BatchingPoint
	for _, n := range sizes {
		out = append(out, BatchingPoint{
			Batch: n,
			Speedup: global.BatchSpeedup(spec, cfg.WeightBytes(),
				cfg.KVBytes(hist), cfg.DecodeFLOPs(hist), n),
		})
	}
	return out
}

// --- Table 1: workload characterization ---

// Table1Row is one workload family's semantic profile as derived by the
// frontend, plus whether the scheduler applied the row's key
// optimization — the claim Table 1 makes qualitatively, verified
// mechanically.
type Table1Row struct {
	Workload        string
	DetectedPhases  []srg.Phase
	KeyOptimization string
	Applied         bool
}

// Table1 builds the four Table-1 workloads, annotates them, schedules
// them, and checks each row's key optimization fired.
func Table1() ([]Table1Row, error) {
	rng := rand.New(rand.NewSource(1))
	cs := cluster.NewState()
	link := cluster.Link{Bandwidth: 25e9 / 8, RTT: time.Millisecond}
	for _, id := range []cluster.AcceleratorID{"gpu0", "gpu1"} {
		if err := cs.AddAccelerator(&cluster.Accelerator{ID: id, Spec: device.A100, Link: link}); err != nil {
			return nil, err
		}
	}
	model := scheduler.NewCostModel(scheduler.RDMAProfile)
	var rows []Table1Row

	// LLM serving: phase-aware allocation (decode pinned with cache).
	gpt := models.NewGPT(rng, models.TinyGPT)
	caches := make([]*nn.KVCache, gpt.Cfg.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{
			K: tensor.New(tensor.F32, 4, gpt.Cfg.Dim),
			V: tensor.New(tensor.F32, 4, gpt.Cfg.Dim),
		}
	}
	db, _ := gpt.BuildDecodeStep(1, 4, 4, caches)
	rep := frontend.Annotate(db.Graph())
	plan, err := scheduler.Schedule(db.Graph(), cs, scheduler.SemanticsAware{}, model)
	if err != nil {
		return nil, err
	}
	cacheKept := 0
	for id := range plan.KeepRemote {
		if db.Graph().Node(id).Residency == srg.ResidencyStatefulKVCache {
			cacheKept++
		}
	}
	rows = append(rows, Table1Row{
		Workload: "LLM Serving", DetectedPhases: rep.Phases,
		KeyOptimization: "phase-aware allocation (KV pinned remote)",
		Applied:         cacheKept > 0,
	})

	// Computer vision: pipeline parallelism.
	cnn := models.NewCNN(rng, models.TinyCNN)
	cb, _ := cnn.BuildForward(tensor.New(tensor.F32, 3, 32, 32))
	rep = frontend.Annotate(cb.Graph())
	plan, err = scheduler.Schedule(cb.Graph(), cs, scheduler.SemanticsAware{}, model)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Table1Row{
		Workload: "Computer Vision", DetectedPhases: rep.Phases,
		KeyOptimization: "pipeline parallelism",
		Applied:         len(plan.PipelineStages) > 1,
	})

	// Recommendation: intelligent data tiering (sparse phase exposed).
	dlrm := models.NewDLRM(rng, models.TinyDLRM)
	rb, rout := dlrm.BuildForward(models.DLRMRequest{
		Dense:     tensor.New(tensor.F32, 1, models.TinyDLRM.DenseFeatures),
		SparseIDs: [][]int64{{1}, {2}, {3}},
	})
	rep = frontend.Annotate(rb.Graph())
	sparseTagged := true
	for _, id := range rout.Lookups {
		if rb.Graph().Node(id).Phase != srg.PhaseSparse {
			sparseTagged = false
		}
	}
	rows = append(rows, Table1Row{
		Workload: "Recommendation", DetectedPhases: rep.Phases,
		KeyOptimization: "intelligent data tiering (sparse phase exposed)",
		Applied:         sparseTagged,
	})

	// Multi-modal: modality-aware placement (fusion point identified).
	mm := models.NewMultiModal(rng, models.TinyCNN, 64, 16, 8)
	mb, mout := mm.BuildForward(tensor.New(tensor.F32, 3, 32, 32), []int64{1, 2, 3})
	rep = frontend.Annotate(mb.Graph())
	rows = append(rows, Table1Row{
		Workload: "Multi-modal", DetectedPhases: rep.Phases,
		KeyOptimization: "modality-aware placement (fusion point identified)",
		Applied:         mb.Graph().Node(mout.FusionNode).Phase == srg.PhaseFusion,
	})
	return rows, nil
}

// --- Fig. 1: the framework layer as narrow waist ---

// NarrowWaistResult quantifies Fig. 1's layering claim: how much semantic
// information survives at each disaggregation point. Lowering an SRG to
// a driver-level call stream erases phases, residency, and modality; the
// numbers make the "semantic translation gap" concrete.
type NarrowWaistResult struct {
	Workload string
	// SRG-level semantic facts.
	SRGPhases     int
	SRGResidency  int // distinct residency classes
	SRGModalities int
	// Driver-level view: an ordered op stream with sizes only.
	DriverOps int
	// Everything else is zero by construction at driver level.
}

// Fig1NarrowWaist lowers each workload's SRG to a driver-level call
// stream and counts surviving semantics.
func Fig1NarrowWaist() []NarrowWaistResult {
	rng := rand.New(rand.NewSource(2))
	var out []NarrowWaistResult
	add := func(name string, g *srg.Graph) {
		frontend.Annotate(g)
		phases := map[srg.Phase]bool{}
		res := map[srg.Residency]bool{}
		mods := map[srg.Modality]bool{}
		ops := 0
		for _, n := range g.Nodes() {
			if n.Phase != srg.PhaseUnknown {
				phases[n.Phase] = true
			}
			if n.Residency != srg.ResidencyUnknown {
				res[n.Residency] = true
			}
			if n.Modality != srg.ModalityUnknown {
				mods[n.Modality] = true
			}
			if n.Op != "param" && n.Op != "input" {
				ops++ // the only thing a driver-level replay sees
			}
		}
		out = append(out, NarrowWaistResult{
			Workload:  name,
			SRGPhases: len(phases), SRGResidency: len(res), SRGModalities: len(mods),
			DriverOps: ops,
		})
	}

	gpt := models.NewGPT(rng, models.TinyGPT)
	caches := make([]*nn.KVCache, gpt.Cfg.Layers)
	for i := range caches {
		caches[i] = &nn.KVCache{
			K: tensor.New(tensor.F32, 4, gpt.Cfg.Dim),
			V: tensor.New(tensor.F32, 4, gpt.Cfg.Dim),
		}
	}
	db, _ := gpt.BuildDecodeStep(1, 4, 4, caches)
	add("llm-decode", db.Graph())

	cnn := models.NewCNN(rng, models.TinyCNN)
	cb, _ := cnn.BuildForward(tensor.New(tensor.F32, 3, 32, 32))
	add("cnn", cb.Graph())

	mm := models.NewMultiModal(rng, models.TinyCNN, 64, 16, 8)
	mb, _ := mm.BuildForward(tensor.New(tensor.F32, 3, 32, 32), []int64{1, 2})
	add("multimodal", mb.Graph())
	return out
}

// --- §5: learned semantic lexicon accuracy ---

// LearnedLexiconResult reports the learned recognizer's accuracy on
// held-out graphs (novel seeds, sizes, and sequence lengths it never saw
// in training).
type LearnedLexiconResult struct {
	TrainGraphs int
	TestGraphs  int
	Correct     int
}

// Accuracy returns the held-out classification accuracy.
func (r LearnedLexiconResult) Accuracy() float64 {
	if r.TestGraphs == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.TestGraphs)
}

// LearnedLexicon trains the nearest-centroid recognizer on a few labeled
// captures per phase and evaluates it on held-out variants.
func LearnedLexicon() (LearnedLexiconResult, error) {
	mkDecode := func(seed int64, hist int) *srg.Graph {
		rng := rand.New(rand.NewSource(seed))
		m := models.NewGPT(rng, models.TinyGPT)
		caches := make([]*nn.KVCache, m.Cfg.Layers)
		for i := range caches {
			caches[i] = &nn.KVCache{
				K: tensor.New(tensor.F32, hist, m.Cfg.Dim),
				V: tensor.New(tensor.F32, hist, m.Cfg.Dim),
			}
		}
		b, _ := m.BuildDecodeStep(1, hist, hist, caches)
		return b.Graph()
	}
	mkPrefill := func(seed int64, n int) *srg.Graph {
		rng := rand.New(rand.NewSource(seed))
		m := models.NewGPT(rng, models.TinyGPT)
		prompt := make([]int64, n)
		b, _ := m.BuildPrefill(prompt)
		return b.Graph()
	}
	mkCNN := func(seed int64) *srg.Graph {
		rng := rand.New(rand.NewSource(seed))
		m := models.NewCNN(rng, models.TinyCNN)
		b, _ := m.BuildForward(tensor.New(tensor.F32, 3, 32, 32))
		return b.Graph()
	}
	mkSparse := func(seed int64) *srg.Graph {
		rng := rand.New(rand.NewSource(seed))
		m := models.NewDLRM(rng, models.TinyDLRM)
		b, _ := m.BuildForward(models.DLRMRequest{
			Dense:     tensor.New(tensor.F32, 1, models.TinyDLRM.DenseFeatures),
			SparseIDs: [][]int64{{1}, {2}, {3}},
		})
		return b.Graph()
	}

	rec := &frontend.LearnedRecognizer{}
	train := map[srg.Phase][]*srg.Graph{
		srg.PhaseLLMDecode:  {mkDecode(1, 4), mkDecode(2, 16)},
		srg.PhaseLLMPrefill: {mkPrefill(3, 8), mkPrefill(4, 24)},
		srg.PhaseCVStage:    {mkCNN(5)},
		srg.PhaseSparse:     {mkSparse(6)},
	}
	var res LearnedLexiconResult
	for _, gs := range train {
		res.TrainGraphs += len(gs)
	}
	if err := rec.Train(train); err != nil {
		return res, err
	}

	type labeled struct {
		g    *srg.Graph
		want srg.Phase
	}
	var tests []labeled
	for seed := int64(50); seed < 56; seed++ {
		tests = append(tests,
			labeled{mkDecode(seed, int(seed%20)+2), srg.PhaseLLMDecode},
			labeled{mkPrefill(seed, int(seed%30)+3), srg.PhaseLLMPrefill},
			labeled{mkCNN(seed), srg.PhaseCVStage},
			labeled{mkSparse(seed), srg.PhaseSparse},
		)
	}
	res.TestGraphs = len(tests)
	for _, tc := range tests {
		if got, _, ok := rec.Classify(tc.g); ok && got == tc.want {
			res.Correct++
		}
	}
	return res, nil
}
