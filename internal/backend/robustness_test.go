package backend

import (
	"net"
	"testing"
	"time"

	"genie/internal/device"
	"genie/internal/tensor"
	"genie/internal/transport"
)

// startRawServer returns a live listener address for robustness probing.
func startRawServer(t *testing.T) string {
	t.Helper()
	srv := NewServer(device.A100)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go func() { _ = srv.Listen(l) }()
	return l.Addr().String()
}

// TestServerSurvivesMalformedPayloads sends garbage payloads for every
// message type: the server must answer MsgErr (not crash, not hang) and
// the connection must remain usable.
func TestServerSurvivesMalformedPayloads(t *testing.T) {
	addr := startRawServer(t)
	conn, err := transport.Dial(addr, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	for _, mt := range []transport.MsgType{
		transport.MsgUpload, transport.MsgExec, transport.MsgFetch, transport.MsgFree,
	} {
		rt, _, err := conn.Call(mt, garbage)
		if err == nil && rt != transport.MsgErr && rt != transport.MsgFreeOK {
			t.Errorf("msg %d: garbage accepted (reply %d)", mt, rt)
		}
	}
	// Unknown message type → MsgErr.
	if _, _, err := conn.Call(transport.MsgType(250), nil); err == nil {
		t.Error("unknown message type should error")
	}
	// Connection still healthy afterwards.
	client := transport.NewClient(conn)
	if _, err := client.Ping(); err != nil {
		t.Fatalf("connection broken after garbage: %v", err)
	}
}

// TestServerSurvivesAbruptDisconnect opens and kills connections
// mid-protocol; the server keeps serving others.
func TestServerSurvivesAbruptDisconnect(t *testing.T) {
	addr := startRawServer(t)
	for i := 0; i < 5; i++ {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		// Write half a frame header, then slam the door.
		_, _ = raw.Write([]byte{0x10, 0x00})
		_ = raw.Close()
	}
	conn, err := transport.Dial(addr, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	client := transport.NewClient(conn)
	if _, err := client.Ping(); err != nil {
		t.Fatalf("server unusable after abrupt disconnects: %v", err)
	}
}

// TestServerRejectsOversizedFrameHeader verifies the frame-size guard
// closes the connection rather than allocating attacker-controlled
// gigabytes.
func TestServerRejectsOversizedFrameHeader(t *testing.T) {
	addr := startRawServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// 4 GiB-1 length header.
	_, err = raw.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(transport.MsgPing)})
	if err != nil {
		t.Fatal(err)
	}
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := raw.Read(buf); err == nil {
		t.Log("server replied; acceptable if it was an error frame")
	}
	// Fresh connections still work.
	conn, err := transport.Dial(addr, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := transport.NewClient(conn).Ping(); err != nil {
		t.Fatalf("server unusable after oversized frame: %v", err)
	}
}

// TestConcurrentMixedWorkload hammers one server with concurrent uploads,
// execs, fetches, and crashes to shake out races (run with -race).
func TestConcurrentMixedWorkload(t *testing.T) {
	addr := startRawServer(t)
	const workers = 6
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			conn, err := transport.Dial(addr, nil, nil)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			c := transport.NewClient(conn)
			for i := 0; i < 25; i++ {
				key := "w" + string(rune('a'+w))
				data := make([]float32, 16)
				data[0] = float32(i)
				tns := tensorFrom(data)
				if _, err := c.Upload(key, tns); err != nil {
					errs <- err
					return
				}
				if _, err := c.Fetch(key, 0); err != nil {
					// Concurrent crashes may race this; only transport
					// failures are fatal.
					if transport.IsClosed(err) {
						errs <- err
						return
					}
				}
				if i%10 == 9 && w == 0 {
					if err := c.Crash(); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func tensorFrom(v []float32) *tensor.Tensor {
	return tensor.FromF32(tensor.Shape{len(v)}, v)
}
