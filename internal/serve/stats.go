package serve

import (
	"sync"
	"time"

	"genie/internal/metrics"
)

// sampleCap bounds the latency reservoirs; beyond it the collector
// overwrites the oldest samples (a sliding window over recent traffic).
const sampleCap = 8192

// LatencySummary is a percentile digest of one duration population.
type LatencySummary struct {
	P50 time.Duration `json:"p50"`
	P95 time.Duration `json:"p95"`
	P99 time.Duration `json:"p99"`
	Max time.Duration `json:"max"`
}

// Stats is the engine's observable state — the /stats payload.
type Stats struct {
	// Queued is the current admission-queue depth; Active the number of
	// requests holding a slot in a running decode batch.
	Queued int `json:"queued"`
	Active int `json:"active"`
	// Lifecycle counters.
	Admitted  int64 `json:"admitted"`
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"` // rejected at admission (queue full)
	Expired   int64 `json:"expired"`
	Cancelled int64 `json:"cancelled"`
	Failed    int64 `json:"failed"`
	TokensOut int64 `json:"tokens_out"`
	// Continuous-batching occupancy: how many requests shared a decode
	// iteration. Mean > 1 means the engine actually merged requests.
	MaxOccupancy  int     `json:"max_occupancy"`
	MeanOccupancy float64 `json:"mean_occupancy"`
	// TTFT is measured admission → first token; Latency admission →
	// completion (successful requests only).
	TTFT         LatencySummary `json:"ttft"`
	Latency      LatencySummary `json:"latency"`
	TokensPerSec float64        `json:"tokens_per_sec"`
	Uptime       time.Duration  `json:"uptime_ns"`
}

// collector accumulates engine telemetry; all methods are safe for
// concurrent use from lanes and Submit.
type collector struct {
	clock Clock

	mu        sync.Mutex
	start     time.Time
	admitted  int64
	completed int64
	shed      int64
	expired   int64
	cancelled int64
	failed    int64
	tokensOut int64

	occSum     int64
	occSamples int64
	occMax     int

	ttfts []time.Duration
	ttftI int
	lats  []time.Duration
	latI  int
}

func newCollector(clock Clock) *collector {
	return &collector{clock: clock, start: clock.Now()}
}

func (c *collector) count(f func(*collector)) {
	c.mu.Lock()
	f(c)
	c.mu.Unlock()
}

// occupancy records one decode iteration that stepped n requests.
func (c *collector) occupancy(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.occSum += int64(n)
	c.occSamples++
	if n > c.occMax {
		c.occMax = n
	}
	c.mu.Unlock()
}

func appendCapped(s []time.Duration, i *int, d time.Duration) []time.Duration {
	if len(s) < sampleCap {
		return append(s, d)
	}
	s[*i] = d
	*i = (*i + 1) % sampleCap
	return s
}

func (c *collector) recordTTFT(d time.Duration) {
	c.mu.Lock()
	c.ttfts = appendCapped(c.ttfts, &c.ttftI, d)
	c.mu.Unlock()
}

func (c *collector) recordLatency(d time.Duration) {
	c.mu.Lock()
	c.lats = appendCapped(c.lats, &c.latI, d)
	c.mu.Unlock()
}

func summarize(samples []time.Duration) LatencySummary {
	if len(samples) == 0 {
		return LatencySummary{}
	}
	s := append([]time.Duration(nil), samples...)
	// PercentileOf sorts its own copy, but we need max too — sort once.
	return LatencySummary{
		P50: metrics.PercentileOf(s, 0.50),
		P95: metrics.PercentileOf(s, 0.95),
		P99: metrics.PercentileOf(s, 0.99),
		Max: maxOf(s),
	}
}

func maxOf(s []time.Duration) time.Duration {
	m := s[0]
	for _, d := range s[1:] {
		if d > m {
			m = d
		}
	}
	return m
}

// snapshot renders counters into a Stats (queue/active filled by caller).
func (c *collector) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Admitted:     c.admitted,
		Completed:    c.completed,
		Shed:         c.shed,
		Expired:      c.expired,
		Cancelled:    c.cancelled,
		Failed:       c.failed,
		TokensOut:    c.tokensOut,
		MaxOccupancy: c.occMax,
		TTFT:         summarize(c.ttfts),
		Latency:      summarize(c.lats),
		Uptime:       c.clock.Now().Sub(c.start),
	}
	if c.occSamples > 0 {
		st.MeanOccupancy = float64(c.occSum) / float64(c.occSamples)
	}
	if up := st.Uptime.Seconds(); up > 0 {
		st.TokensPerSec = float64(c.tokensOut) / up
	}
	return st
}
