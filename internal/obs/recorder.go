package obs

import (
	"sync"
	"sync/atomic"
)

// Recorder keeps the most recent completed spans in a fixed ring
// buffer. Span.End hands spans to a buffered channel and returns; a
// single drain goroutine owns the ring, so End never contends with
// Snapshot readers on the hot path. When the ingest queue is full the
// span is dropped (and counted) rather than blocking a decode step.
type Recorder struct {
	ch    chan Span
	flush chan chan struct{}
	done  chan struct{}
	wg    sync.WaitGroup
	once  sync.Once

	mu   sync.Mutex
	ring []Span
	next int
	full bool

	dropped atomic.Int64
}

// NewRecorder starts a recorder whose ring holds capacity spans. Stop
// must be called to release the drain goroutine.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 4096
	}
	r := &Recorder{
		ch:    make(chan Span, 256),
		flush: make(chan chan struct{}),
		done:  make(chan struct{}),
		ring:  make([]Span, 0, capacity),
	}
	r.wg.Add(1)
	go r.drain(capacity)
	return r
}

// drain is the recorder's single writer; it exits when Stop closes
// done (the cancellation path genie-lint's goleak analyzer demands).
func (r *Recorder) drain(capacity int) {
	defer r.wg.Done()
	for {
		select {
		case s := <-r.ch:
			r.append(s, capacity)
		case ack := <-r.flush:
			for {
				select {
				case s := <-r.ch:
					r.append(s, capacity)
					continue
				default:
				}
				break
			}
			close(ack)
		case <-r.done:
			return
		}
	}
}

func (r *Recorder) append(s Span, capacity int) {
	r.mu.Lock()
	if len(r.ring) < capacity {
		r.ring = append(r.ring, s)
	} else {
		r.ring[r.next] = s
		r.next = (r.next + 1) % capacity
		r.full = true
	}
	r.mu.Unlock()
}

// add enqueues a completed span without blocking.
func (r *Recorder) add(s Span) {
	select {
	case r.ch <- s:
	default:
		r.dropped.Add(1)
	}
}

// Stop terminates the drain goroutine. Idempotent.
func (r *Recorder) Stop() {
	r.once.Do(func() { close(r.done) })
	r.wg.Wait()
}

// Dropped reports spans discarded because the ingest queue was full.
func (r *Recorder) Dropped() int64 { return r.dropped.Load() }

// Snapshot returns the ring's contents, oldest first. It first asks the
// drain goroutine to absorb everything already enqueued, so a snapshot
// taken after a request completes sees all of that request's spans.
func (r *Recorder) Snapshot() []Span {
	ack := make(chan struct{})
	select {
	case r.flush <- ack:
		<-ack
	case <-r.done:
		// Stopped: whatever is in the ring is what there is.
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, len(r.ring))
	if r.full {
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = append(out, r.ring...)
	}
	return out
}
