// Package spandata is genie-lint test fixture data for the
// span-balance analyzer: every obs span started must be ended on every
// path out of the function, with the interprocedural summaries
// extending End through helpers.
package spandata

import (
	"context"
	"errors"

	"genie/internal/obs"
)

var errBoom = errors.New("boom")

// leakOnEarlyReturn skips End on the error path.
func leakOnEarlyReturn(ctx context.Context, fail bool) error {
	_, span := obs.StartSpan(ctx, "serve.step") // want "span \"span\" is not ended on every path"
	if fail {
		return errBoom
	}
	span.End()
	return nil
}

// deferEnd is the canonical shape; no finding.
func deferEnd(ctx context.Context, fail bool) error {
	_, span := obs.StartSpan(ctx, "serve.ok")
	defer span.End()
	if fail {
		return errBoom
	}
	return nil
}

// deferClosureEnd ends inside a deferred closure; still balanced.
func deferClosureEnd(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "serve.closure")
	defer func() {
		span.SetAttr("done", "true")
		span.End()
	}()
}

// endSpan is the helper whose summary says it ends its parameter.
func endSpan(sp *obs.Span, err error) {
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
}

// helperEndsIt hands the span to endSpan on every path; no finding —
// only the summaries know endSpan closes it.
func helperEndsIt(ctx context.Context, err error) {
	_, span := obs.StartSpan(ctx, "serve.helper")
	endSpan(span, err)
}

// leakThroughHelper ends through the helper on one path only: the
// early return leaks. The old AST-local view had no idea whether
// endSpan closes the span; the summary makes the leak precise.
func leakThroughHelper(ctx context.Context, fail bool) error {
	_, span := obs.StartSpan(ctx, "serve.partial") // want "span \"span\" is not ended on every path"
	if fail {
		return errBoom
	}
	endSpan(span, nil)
	return nil
}

// discarded drops the span on the floor.
func discarded(ctx context.Context) {
	_, _ = obs.StartSpan(ctx, "serve.discard") // want "discarded without End"
}

// loopLeak starts a span every iteration and never ends it: one leak
// per pass, reported at the start site.
func loopLeak(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		_, span := obs.StartSpan(ctx, "serve.iter") // want "span \"span\" is not ended on every path"
		span.SetAttr("step", "decode")
	}
}

// loopBalanced ends each iteration's span; no finding.
func loopBalanced(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		_, span := obs.StartSpan(ctx, "serve.iter")
		span.End()
	}
}

// continueLeak leaves the iteration early with the span still open.
func continueLeak(ctx context.Context, vals []int) {
	for _, v := range vals {
		_, span := obs.StartSpan(ctx, "serve.val") // want "span \"span\" is not ended on every path"
		if v < 0 {
			continue
		}
		span.End()
	}
}

// holder takes ownership of stored spans.
type holder struct{ sp *obs.Span }

// handedOff stores the span in a field: ownership moves, tracking
// stops, nothing is reported.
func handedOff(ctx context.Context, h *holder) {
	_, span := obs.StartSpan(ctx, "serve.field")
	h.sp = span
}

// goHandoff gives the span to a goroutine; same ownership transfer.
func goHandoff(ctx context.Context, done chan struct{}) {
	_, span := obs.StartSpan(ctx, "serve.bg")
	go func() {
		<-done
		span.End()
	}()
}
